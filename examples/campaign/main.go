// Campaign: a streaming multi-trial experiment with confidence intervals,
// a resumable JSONL stream, a baseline snapshot and a regression check.
//
// A campaign.Spec is an experiment frame over the scenario registries: which
// algorithm × topology × daemon × fault grid to cover, and a per-cell trial
// policy (fixed or adaptive — stop once the 95% confidence interval of the
// primary metric is tight enough). Trials stream to a JSONL sink as they
// complete, so an interrupted campaign resumes from its last completed trial
// and reproduces an uninterrupted run byte for byte. Aggregates snapshot
// into versioned baselines that Compare diffs with noise-aware thresholds —
// the machinery behind `sdrbench -campaign` / `-compare` and the CI bench
// gate.
//
// Run with:
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"maps"
	"os"
	"path/filepath"

	"sdr/internal/campaign"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "sdr-campaign")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. Describe the experiment frame: a 2×2 scenario grid, and an adaptive
	//    trial policy — every cell runs at least 4 seeded trials and keeps
	//    going (up to 16) until the 95% CI of its mean move count is within
	//    ±10%.
	spec := campaign.Spec{
		ID:         "demo",
		Algorithms: []string{"unison", "bfstree"},
		Topologies: []string{"ring", "tree"},
		Daemons:    []string{"distributed-random"},
		Faults:     []string{"random-all"},
		Sizes:      []int{12},
		Seed:       2024,
		MinTrials:  4,
		MaxTrials:  16,
		CITarget:   0.10,
		Metric:     campaign.MetricMoves,
	}

	// 2. Run it. Every completed trial is appended to the JSONL stream
	//    immediately; re-running with Resume after an interruption would
	//    continue from the last recorded trial.
	stream := filepath.Join(dir, "CAMPAIGN_demo.jsonl")
	res, err := campaign.Run(spec, stream, campaign.Options{Parallel: 4, Progress: os.Stdout})
	if err != nil {
		return err
	}
	table := res.Table()
	fmt.Println()
	if err := table.Render(os.Stdout); err != nil {
		return err
	}

	// 3. Snapshot the aggregates as a versioned baseline — the artifact a CI
	//    gate commits and later compares against.
	baseline := res.Snapshot(campaign.CollectMeta())
	fmt.Printf("\nbaseline %s: %d cells at commit %.12s (%s)\n",
		baseline.ID, len(baseline.Cells), baseline.Meta.Commit, baseline.Meta.GoVersion)

	// 4. Compare the baseline against a doctored copy with a 25% slowdown
	//    injected into one cell: the delta clears the combined CI
	//    half-widths and the +10% threshold, so it is flagged as a
	//    regression (a plain re-run of the same binary compares clean).
	slowed := res.Snapshot(campaign.Meta{})
	slowed.Cells = append([]campaign.CellAggregate(nil), slowed.Cells...)
	slowed.Cells[0].Metrics = maps.Clone(slowed.Cells[0].Metrics)
	m := slowed.Cells[0].Metrics[campaign.MetricMoves]
	m.Mean *= 1.25
	m.CILow *= 1.25
	m.CIHigh *= 1.25
	slowed.Cells[0].Metrics[campaign.MetricMoves] = m

	fmt.Println()
	comparison, err := campaign.Compare(baseline, slowed, campaign.CompareOptions{})
	if err != nil {
		return err
	}
	if err := comparison.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ngate verdict: %d regression(s) — a CI job would %s\n",
		comparison.Regressions, map[bool]string{true: "fail", false: "pass"}[comparison.Regressions > 0])
	return nil
}
