// Silent self-stabilizing BFS spanning tree via the cooperative reset.
//
// The paper presents SDR as a general method: composing any locally checkable
// input algorithm with the reset yields a self-stabilizing solution, and for
// static problems the result is silent (Section 1.1). This example exercises
// that claim on a third instantiation beyond the two the paper evaluates: a
// breadth-first spanning tree construction, described as the scenario Spec
// "bfstree" + "random-all". The composition B ∘ SDR runs from an arbitrarily
// corrupted configuration; it terminates (silence) in a configuration whose
// distances and parent pointers form the exact BFS tree.
//
// Run with:
//
//	go run ./examples/spanningtree [n] [seed]
package main

import (
	"fmt"
	"os"
	"strconv"

	"sdr/internal/core"
	"sdr/internal/scenario"
	"sdr/internal/sim"
	"sdr/internal/spantree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spanningtree example:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	n, seed := 18, int64(5)
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 3 {
			return fmt.Errorf("invalid size %q", args[0])
		}
		n = v
	}
	if len(args) > 1 {
		v, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("invalid seed %q", args[1])
		}
		seed = v
	}

	run, err := scenario.Spec{
		Algorithm: "bfstree",
		Topology:  "random",
		N:         n,
		Daemon:    "distributed-random",
		Fault:     "random-all", // distances, parent pointers and reset machinery all corrupted
		Seed:      seed,
	}.Resolve()
	if err != nil {
		return err
	}
	g := run.Graph
	fmt.Printf("network: random connected graph, n=%d m=%d D=%d, root=%d\n\n", g.N(), g.M(), g.Diameter(), run.Spec.Params.Root)
	fmt.Println("corrupted distances:", spantree.Distances(run.Start))
	fmt.Println("corrupted parents  :", spantree.Parents(run.Start))

	observer := run.Observer()
	res := run.Execute(sim.WithStepHook(observer.Hook()))
	if !res.Terminated {
		return fmt.Errorf("the composition did not terminate — silence is violated")
	}

	fmt.Printf("\nterminated after %d moves and %d rounds (silent)\n", res.Moves, res.Rounds)
	fmt.Printf("reset structure: %d segments, max %d SDR moves per process (bound %d), %d alive-root creations\n",
		observer.Segments(), observer.MaxSDRMoves(), core.MaxSDRMovesPerProcess(g.N()), observer.AliveRootViolations())

	fmt.Println("\nfinal distances:", spantree.Distances(res.Final))
	fmt.Println("final parents  :", spantree.Parents(res.Final))
	if report := run.Report(res); !report.OK {
		return fmt.Errorf("the terminal configuration is not the exact BFS tree")
	}
	fmt.Println("\nthe terminal configuration is the exact BFS spanning tree of the network")
	return nil
}
