// Repeated transient faults and cooperative recovery.
//
// The example runs U ∘ SDR on a torus and injects a fresh transient fault
// every time the system has stabilized, for a configurable number of rounds
// of the fault/recovery cycle. After each fault it reports how many
// concurrent resets were initiated (the multi-initiator aspect of the paper)
// and how the cooperative coordination kept the per-process reset work within
// the 3n+3 bound of Corollary 4.
//
// Run with:
//
//	go run ./examples/faultinjection [cycles] [seed]
package main

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
	"sdr/internal/unison"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultinjection example:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	cycles, seed := 5, int64(3)
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 1 {
			return fmt.Errorf("invalid cycle count %q", args[0])
		}
		cycles = v
	}
	if len(args) > 1 {
		v, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("invalid seed %q", args[1])
		}
		seed = v
	}

	g := graph.Torus(4, 5)
	net := sim.NewNetwork(g)
	n := net.N()
	u := unison.New(unison.DefaultPeriod(n))
	composed := core.Compose(u)
	rng := rand.New(rand.NewSource(seed))
	daemon := sim.NewDistributedRandomDaemon(rng, 0.5)
	engine := sim.NewEngine(net, composed, daemon)

	fmt.Printf("network: 4×5 torus (n=%d, D=%d); unison period K=%d\n", n, g.Diameter(), u.K())
	fmt.Printf("per-process SDR move bound (Corollary 4): %d\n\n", core.MaxSDRMovesPerProcess(n))

	scenarios := faults.StandardScenarios()
	current := sim.InitialConfiguration(composed, net)
	for cycle := 1; cycle <= cycles; cycle++ {
		scenario := scenarios[(cycle-1)%len(scenarios)]
		current = scenario.Build(composed, u, net, rng)

		// Count the resets initiated from this corrupted configuration: the
		// processes that will act as roots (alive roots of Definition 1).
		initiators := len(core.AliveRoots(u, net, current))

		observer := core.NewObserver(u, net)
		observer.Prime(current)
		res := engine.Run(current,
			sim.WithLegitimate(core.NormalPredicate(u, net)),
			sim.WithStopWhenLegitimate(),
			sim.WithStepHook(observer.Hook()),
		)
		if !res.LegitimateReached {
			return fmt.Errorf("cycle %d (%s): the system did not recover", cycle, scenario.Name)
		}
		fmt.Printf("cycle %d: fault %-12s  initiators=%-3d recovered in %4d moves / %2d rounds  "+
			"(segments=%d, max SDR moves/process=%d, alive-root creations=%d)\n",
			cycle, scenario.Name, initiators,
			res.StabilizationMoves, res.StabilizationRounds,
			observer.Segments(), observer.MaxSDRMoves(), observer.AliveRootViolations())
		current = res.Final
	}

	fmt.Println("\nall recoveries stayed within the paper's bounds; the clocks are synchronised again:")
	fmt.Println(current)
	return nil
}
