// Mid-run fault injection and topology churn.
//
// The example resolves one churn scenario — U ∘ SDR on a torus, perturbed
// while it runs by a seeded churn schedule (see internal/churn) — executes
// it, and prints the per-event recovery table: for every injected event, the
// steps/moves/rounds the cooperative reset needed to bring the system back
// to a legitimate configuration, plus the overall availability (the fraction
// of steps spent legitimate despite the ongoing perturbation). The reset
// observer runs alongside to show the per-process SDR work staying within
// the 3n+3 bound of Corollary 4 across all recoveries.
//
// Run with:
//
//	go run ./examples/faultinjection [churn-schedule] [seed]
//
// where churn-schedule is a registered name (sdrsim -list) or a grammar form
// like "periodic:events=4,every=150,kinds=corrupt-fraction+edge-drop".
package main

import (
	"fmt"
	"os"
	"strconv"

	"sdr/internal/core"
	"sdr/internal/scenario"
	"sdr/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultinjection example:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	churn, seed := "poisson-mixed", int64(3)
	if len(args) > 0 {
		churn = args[0]
	}
	if len(args) > 1 {
		v, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("invalid seed %q", args[1])
		}
		seed = v
	}

	run, err := scenario.Spec{
		Algorithm: "unison",
		Topology:  "torus",
		N:         20, // rounded up to the 5×5 torus
		Daemon:    "distributed-random",
		Fault:     "random-all",
		Churn:     churn,
		Seed:      seed,
	}.Resolve()
	if err != nil {
		return err
	}
	n := run.Net.N()
	fmt.Printf("network: 5×5 torus (n=%d, D=%d); algorithm %s\n", n, run.Graph.Diameter(), run.Alg.Name())
	fmt.Printf("churn  : %s, events at steps %v\n", run.Churn.Schedule(), run.Churn.Times())
	fmt.Printf("per-process SDR move bound (Corollary 4): %d\n\n", core.MaxSDRMovesPerProcess(n))

	observer := run.Observer()
	res := run.Execute(sim.WithStepHook(observer.Hook()))
	if !res.LegitimateReached {
		return fmt.Errorf("the system never stabilized within the step bound")
	}
	fmt.Printf("first stabilization: %d moves / %d rounds / %d steps\n\n",
		res.StabilizationMoves, res.StabilizationRounds, res.StabilizationSteps)

	fmt.Printf("%-3s %-20s %-7s %-12s %-10s %-10s %-10s\n",
		"#", "event", "step", "legit-before", "rec-steps", "rec-moves", "rec-rounds")
	recovered := 0
	for i, ev := range res.Events {
		steps, moves, rounds := "-", "-", "-"
		if ev.Recovered {
			recovered++
			steps = strconv.Itoa(ev.RecoverySteps)
			moves = strconv.Itoa(ev.RecoveryMoves)
			rounds = strconv.Itoa(ev.RecoveryRounds)
		}
		fmt.Printf("%-3d %-20s %-7d %-12v %-10s %-10s %-10s\n",
			i, ev.Label, ev.Step, ev.LegitimateBefore, steps, moves, rounds)
	}
	fmt.Printf("\nrecovered from %d of %d events; availability %.3f over %d steps\n",
		recovered, len(res.Events), res.Availability(), res.Steps)
	fmt.Printf("reset work: segments=%d, max SDR moves/process=%d (bound %d), alive-root creations=%d\n",
		observer.Segments(), observer.MaxSDRMoves(), core.MaxSDRMovesPerProcess(n), observer.AliveRootViolations())
	if recovered < len(res.Events) {
		return fmt.Errorf("%d event(s) were not recovered from within the step bound", len(res.Events)-recovered)
	}
	fmt.Println("\nthe clocks are synchronised again despite the mid-run churn:")
	fmt.Println(res.Final)
	return nil
}
