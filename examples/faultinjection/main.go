// Repeated transient faults and cooperative recovery.
//
// The example resolves one scenario (U ∘ SDR on a torus) and then injects a
// fresh transient fault from each registered fault model in turn, for a
// configurable number of fault/recovery cycles. After each fault it reports
// how many concurrent resets were initiated (the multi-initiator aspect of
// the paper) and how the cooperative coordination kept the per-process reset
// work within the 3n+3 bound of Corollary 4.
//
// Run with:
//
//	go run ./examples/faultinjection [cycles] [seed]
package main

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"sdr/internal/core"
	"sdr/internal/scenario"
	"sdr/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultinjection example:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	cycles, seed := 5, int64(3)
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 1 {
			return fmt.Errorf("invalid cycle count %q", args[0])
		}
		cycles = v
	}
	if len(args) > 1 {
		v, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("invalid seed %q", args[1])
		}
		seed = v
	}

	// One resolved scenario provides the network, algorithm, daemon and
	// engine for every cycle; only the fault model rotates.
	base, err := scenario.Spec{
		Algorithm: "unison",
		Topology:  "torus",
		N:         20, // rounded up to the 5×5 torus
		Daemon:    "distributed-random",
		Fault:     "none",
		Seed:      seed,
	}.Resolve()
	if err != nil {
		return err
	}
	n := base.Net.N()
	fmt.Printf("network: %s torus (n=%d, D=%d); algorithm %s\n", "5×5", n, base.Graph.Diameter(), base.Alg.Name())
	fmt.Printf("per-process SDR move bound (Corollary 4): %d\n\n", core.MaxSDRMovesPerProcess(n))

	// The corrupting fault models, rotated across cycles.
	var corruptions []scenario.FaultEntry
	for _, name := range scenario.FaultModels() {
		if name == "none" {
			continue
		}
		entry, err := scenario.FaultByName(name)
		if err != nil {
			return err
		}
		corruptions = append(corruptions, entry)
	}

	rng := rand.New(rand.NewSource(seed))
	var current *sim.Configuration
	for cycle := 1; cycle <= cycles; cycle++ {
		fault := corruptions[(cycle-1)%len(corruptions)]
		current, err = fault.Build(base.Alg, base.Inner, base.Net, rng)
		if err != nil {
			return err
		}

		// Count the resets initiated from this corrupted configuration: the
		// processes that will act as roots (alive roots of Definition 1).
		initiators := len(core.AliveRoots(base.Inner, base.Net, current))

		observer := core.NewObserver(base.Inner, base.Net)
		observer.Prime(current)
		res := base.Engine.Run(current, append(base.Options(), sim.WithStepHook(observer.Hook()))...)
		if !res.LegitimateReached {
			return fmt.Errorf("cycle %d (%s): the system did not recover", cycle, fault.Name)
		}
		fmt.Printf("cycle %d: fault %-12s  initiators=%-3d recovered in %4d moves / %2d rounds  "+
			"(segments=%d, max SDR moves/process=%d, alive-root creations=%d)\n",
			cycle, fault.Name, initiators,
			res.StabilizationMoves, res.StabilizationRounds,
			observer.Segments(), observer.MaxSDRMoves(), observer.AliveRootViolations())
		current = res.Final
	}

	fmt.Println("\nall recoveries stayed within the paper's bounds; the clocks are synchronised again:")
	fmt.Println(current)
	return nil
}
