// Quickstart: self-stabilizing unison on a ring, through the declarative
// scenario API.
//
// The whole experiment is one scenario.Spec: the algorithm (U ∘ SDR, the
// composition the paper's cooperative reset makes self-stabilizing), the
// topology, the daemon and the fault model are registry names, and Resolve
// assembles the ready-to-run engine. Running it shows that the system
// recovers a legitimate clock configuration within the bounds proven in the
// paper (3n rounds, O(D·n²) moves).
//
// Run with:
//
//	go run ./examples/quickstart
//
// Explore the registries with:
//
//	go run ./cmd/sdrsim -list
package main

import (
	"fmt"
	"os"

	"sdr/internal/scenario"
	"sdr/internal/sim"
	"sdr/internal/unison"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 12

	// 1. Describe the whole experiment declaratively: every axis names a
	//    registry entry, and the seed makes the run fully reproducible.
	spec := scenario.Spec{
		Algorithm: "unison", // Algorithm U composed with the cooperative reset SDR
		Topology:  "ring",   // an anonymous ring of n processes
		N:         n,
		Daemon:    "distributed-random",
		Fault:     "random-all", // a transient fault corrupted every variable
		Seed:      2024,
	}

	// 2. Resolve the description into a concrete network, algorithm, daemon
	//    and corrupted starting configuration.
	run, err := spec.Resolve()
	if err != nil {
		return err
	}
	fmt.Println("corrupted start:", run.Start)

	// 3. Execute. U ∘ SDR is non-terminating, so the run stops at the first
	//    legitimate (normal) configuration.
	result := run.Execute()
	if !result.LegitimateReached {
		return fmt.Errorf("the system did not stabilize (this should be impossible)")
	}
	fmt.Println("stabilized  :", result.Final)
	fmt.Printf("cost        : %d moves, %d rounds\n", result.StabilizationMoves, result.StabilizationRounds)
	fmt.Printf("paper bounds: ≤ %d moves (Theorem 6), ≤ %d rounds (Theorem 7)\n",
		unison.MaxStabilizationMoves(n, run.Graph.Diameter()), unison.MaxStabilizationRounds(n))

	// 4. After stabilization the clocks keep ticking while never drifting by
	//    more than one increment across an edge (the unison specification).
	u := run.Inner.(*unison.Unison)
	ticker := unison.NewTickCounter(n)
	run.Engine.Run(result.Final,
		sim.WithMaxSteps(40*n),
		sim.WithStepHook(ticker.Hook()),
	)
	fmt.Printf("liveness    : every process ticked at least %d times in the next %d steps\n", ticker.Min(), 40*n)
	fmt.Printf("safety      : maximum clock drift across an edge is %d (allowed: 1)\n",
		unison.MaxDrift(u, run.Net, result.Final))
	return nil
}
