// Quickstart: self-stabilizing unison on a ring.
//
// The example builds the composition U ∘ SDR (Algorithm U made
// self-stabilizing by the cooperative reset of the paper), corrupts every
// process's state arbitrarily, runs the system under a distributed daemon,
// and shows that it recovers a legitimate clock configuration within the
// bounds proven in the paper (3n rounds, O(D·n²) moves).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
	"sdr/internal/unison"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 12
	const seed = 2024

	// 1. The network: an anonymous ring of n processes.
	g := graph.Ring(n)
	net := sim.NewNetwork(g)

	// 2. The algorithm: Algorithm U with period K = n+1, composed with the
	//    cooperative reset SDR. The composition is what makes U
	//    self-stabilizing (Theorem 6 of the paper).
	u := unison.New(unison.DefaultPeriod(n))
	composed := core.Compose(u)

	// 3. A transient fault: every variable of every process (clocks and reset
	//    machinery alike) is replaced by an arbitrary value.
	rng := rand.New(rand.NewSource(seed))
	start := faults.RandomConfiguration(composed, net, rng)
	fmt.Println("corrupted start:", start)

	// 4. Run under a distributed daemon until the system reaches a normal
	//    configuration (every process clean and locally correct).
	daemon := sim.NewDistributedRandomDaemon(rng, 0.5)
	engine := sim.NewEngine(net, composed, daemon)
	result := engine.Run(start,
		sim.WithLegitimate(core.NormalPredicate(u, net)),
		sim.WithStopWhenLegitimate(),
	)

	if !result.LegitimateReached {
		return fmt.Errorf("the system did not stabilize (this should be impossible)")
	}
	fmt.Println("stabilized  :", result.Final)
	fmt.Printf("cost        : %d moves, %d rounds\n", result.StabilizationMoves, result.StabilizationRounds)
	fmt.Printf("paper bounds: ≤ %d moves (Theorem 6), ≤ %d rounds (Theorem 7)\n",
		unison.MaxStabilizationMoves(n, g.Diameter()), unison.MaxStabilizationRounds(n))

	// 5. After stabilization the clocks keep ticking while never drifting by
	//    more than one increment across an edge (the unison specification).
	ticker := unison.NewTickCounter(n)
	engine.Run(result.Final,
		sim.WithMaxSteps(40*n),
		sim.WithStepHook(ticker.Hook()),
	)
	fmt.Printf("liveness    : every process ticked at least %d times in the next %d steps\n", ticker.Min(), 40*n)
	fmt.Printf("safety      : maximum clock drift across an edge is %d (allowed: 1)\n",
		unison.MaxDrift(u, net, result.Final))
	return nil
}
