// Clock synchronisation on a random network: U ∘ SDR versus the
// Boulinier-Petit-Villain baseline.
//
// The example reproduces, on one concrete workload, the comparison of
// Section 5.3 of the paper: both self-stabilizing unison algorithms are
// described as scenario Specs differing only in the Algorithm axis, so they
// resolve to the same random network (same seed → same topology) and the
// same kind of corrupted start. The paper's claim is that U ∘ SDR has the
// better move complexity: O(D·n²) against O(D·n³ + α·n²).
//
// Run with:
//
//	go run ./examples/unison [n] [seed]
package main

import (
	"fmt"
	"os"
	"strconv"

	"sdr/internal/scenario"
	"sdr/internal/sim"
	"sdr/internal/unison"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "unison example:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	n, seed := 20, int64(7)
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 4 {
			return fmt.Errorf("invalid size %q", args[0])
		}
		n = v
	}
	if len(args) > 1 {
		v, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("invalid seed %q", args[1])
		}
		seed = v
	}

	spec := scenario.Spec{
		Algorithm: "unison",
		Topology:  "random",
		N:         n,
		Daemon:    "distributed-random",
		Fault:     "random-all",
		Seed:      seed,
		Params:    scenario.Params{EdgeProb: 0.2},
	}

	// --- U ∘ SDR -----------------------------------------------------------
	sdrRun, err := spec.Resolve()
	if err != nil {
		return err
	}
	g := sdrRun.Graph
	fmt.Printf("network: random connected graph, n=%d m=%d Δ=%d D=%d\n\n", g.N(), g.M(), g.MaxDegree(), g.Diameter())
	sdrRes := sdrRun.Execute()
	fmt.Println("U ∘ SDR (this paper)")
	report(sdrRes)
	fmt.Printf("  proven bound: %d moves (O(D·n²), Theorem 6), %d rounds (Theorem 7)\n\n",
		unison.MaxStabilizationMoves(g.N(), g.Diameter()), unison.MaxStabilizationRounds(g.N()))

	// --- BPV baseline: the same Spec with one axis changed ------------------
	bpvSpec := spec
	bpvSpec.Algorithm = "bpv"
	bpvRun, err := bpvSpec.Resolve()
	if err != nil {
		return err
	}
	bpvRes := bpvRun.Execute()
	bpv := bpvRun.Alg.(*unison.BPV)
	fmt.Printf("BPV baseline (K=%d, α=%d)\n", bpv.K(), bpv.Alpha())
	report(bpvRes)
	fmt.Printf("  reported complexity: O(D·n³ + α·n²) moves\n\n")

	if sdrRes.LegitimateReached && bpvRes.LegitimateReached && bpvRes.StabilizationMoves > 0 {
		ratio := float64(bpvRes.StabilizationMoves) / float64(max(sdrRes.StabilizationMoves, 1))
		fmt.Printf("summary: on this workload the BPV baseline needed %.1f× the moves of U ∘ SDR\n", ratio)
	}
	return nil
}

func report(res sim.Result) {
	if !res.LegitimateReached {
		fmt.Println("  did NOT stabilize within the step bound")
		return
	}
	fmt.Printf("  stabilized after %d moves, %d rounds, %d steps\n",
		res.StabilizationMoves, res.StabilizationRounds, res.StabilizationSteps)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
