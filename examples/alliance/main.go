// 1-minimal (f,g)-alliances on an identified network, with recovery.
//
// The example computes, with FGA ∘ SDR, several of the alliance variants the
// paper lists in Section 6.1 (dominating set, global offensive / defensive /
// powerful alliances) on one random identified network. It then injects a
// transient fault into the converged system and shows that the composition
// recovers a (possibly different) 1-minimal alliance, within the proven
// bounds.
//
// Run with:
//
//	go run ./examples/alliance [n] [seed]
package main

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"sdr/internal/alliance"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "alliance example:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	n, seed := 16, int64(11)
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 4 {
			return fmt.Errorf("invalid size %q", args[0])
		}
		n = v
	}
	if len(args) > 1 {
		v, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("invalid seed %q", args[1])
		}
		seed = v
	}

	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(n, 0.4, rng)
	net := sim.NewNetwork(g)
	fmt.Printf("network: random identified graph, n=%d m=%d Δ=%d\n\n", g.N(), g.M(), g.MaxDegree())

	specs := []alliance.Spec{
		alliance.DominatingSet(),
		alliance.GlobalOffensiveAlliance(),
		alliance.GlobalDefensiveAlliance(),
		alliance.GlobalPowerfulAlliance(),
	}
	for _, spec := range specs {
		if err := demo(spec, g, net, seed); err != nil {
			return err
		}
	}
	return nil
}

func demo(spec alliance.Spec, g *graph.Graph, net *sim.Network, seed int64) error {
	fmt.Printf("— %s —\n", spec.Name)
	if err := spec.Validate(g); err != nil {
		fmt.Printf("  skipped: %v\n\n", err)
		return nil
	}
	composed := alliance.NewSelfStabilizing(spec)
	daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)
	engine := sim.NewEngine(net, composed, daemon)

	// Phase 1: converge from the pre-defined initial configuration (every
	// process in the alliance).
	res := engine.Run(sim.InitialConfiguration(composed, net))
	members := alliance.Members(res.Final)
	fmt.Printf("  converged : %v (size %d) in %d moves / %d rounds\n",
		members, len(members), res.Moves, res.Rounds)
	fmt.Printf("  1-minimal : %v (move bound %d, round bound %d)\n",
		alliance.Is1Minimal(g, spec, members),
		alliance.MaxStabilizationMoves(g.N(), g.M(), g.MaxDegree()),
		alliance.MaxStabilizationRounds(g.N()))

	// Phase 2: a transient fault corrupts half of the processes (application
	// variables and reset machinery alike); the composition recovers.
	rng := rand.New(rand.NewSource(seed + 1))
	corrupted := faults.CorruptFraction(composed, net, res.Final, 0.5, rng)
	res2 := engine.Run(corrupted)
	recovered := alliance.Members(res2.Final)
	fmt.Printf("  after fault: recovered %v (size %d) in %d moves; 1-minimal: %v\n\n",
		recovered, len(recovered), res2.Moves, alliance.Is1Minimal(g, spec, recovered))
	if !res2.Terminated {
		return fmt.Errorf("alliance: %s did not re-converge after the fault", spec.Name)
	}
	return nil
}
