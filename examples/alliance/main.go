// 1-minimal (f,g)-alliances on an identified network, with recovery.
//
// The example computes, with FGA ∘ SDR, several of the alliance variants the
// paper lists in Section 6.1 (dominating set, global offensive / defensive /
// powerful alliances) on one random identified network. Each variant is its
// own entry in the scenario algorithm registry, so the sweep is a loop over
// registry names. After convergence a transient fault corrupts half of the
// processes, and the composition recovers a (possibly different) 1-minimal
// alliance within the proven bounds.
//
// Run with:
//
//	go run ./examples/alliance [n] [seed]
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"sdr/internal/alliance"
	"sdr/internal/faults"
	"sdr/internal/scenario"
	"sdr/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "alliance example:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	n, seed := 16, int64(11)
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 4 {
			return fmt.Errorf("invalid size %q", args[0])
		}
		n = v
	}
	if len(args) > 1 {
		v, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("invalid seed %q", args[1])
		}
		seed = v
	}

	variants := []string{
		"dominating-set",
		"global-offensive-alliance",
		"global-defensive-alliance",
		"global-powerful-alliance",
	}
	for _, name := range variants {
		if err := demo(name, n, seed); err != nil {
			return err
		}
	}
	return nil
}

func demo(name string, n int, seed int64) error {
	fmt.Printf("— %s —\n", name)
	// Phase 1: converge from the pre-defined initial configuration (every
	// process in the alliance).
	run, err := scenario.Spec{
		Algorithm: name,
		Topology:  "random",
		N:         n,
		Daemon:    "distributed-random",
		Fault:     "none",
		Seed:      seed,
		Params:    scenario.Params{EdgeProb: 0.4},
	}.Resolve()
	if errors.Is(err, scenario.ErrUnsatisfiable) {
		fmt.Printf("  skipped: %v\n\n", err)
		return nil
	}
	if err != nil {
		return err
	}
	g := run.Graph
	res := run.Execute()
	members := alliance.Members(res.Final)
	fmt.Printf("  network   : n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("  converged : %v (size %d) in %d moves / %d rounds\n",
		members, len(members), res.Moves, res.Rounds)
	fmt.Printf("  1-minimal : %v (move bound %d, round bound %d)\n",
		run.Report(res).OK,
		alliance.MaxStabilizationMoves(g.N(), g.M(), g.MaxDegree()),
		alliance.MaxStabilizationRounds(g.N()))

	// Phase 2: a transient fault corrupts half of the processes (application
	// variables and reset machinery alike); the composition recovers. The
	// corruption reuses the resolved run's engine on the converged state.
	corrupted, err := faults.CorruptFraction(run.Alg, run.Net, res.Final, 0.5, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return err
	}
	res2 := run.Engine.Run(corrupted, sim.WithMaxSteps(run.Spec.MaxSteps))
	recovered := alliance.Members(res2.Final)
	fmt.Printf("  after fault: recovered %v (size %d) in %d moves; 1-minimal: %v\n\n",
		recovered, len(recovered), res2.Moves, run.Report(res2).OK)
	if !res2.Terminated {
		return fmt.Errorf("alliance: %s did not re-converge after the fault", name)
	}
	return nil
}
