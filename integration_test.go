package sdr_test

import (
	"math/rand"
	"testing"

	"sdr/internal/alliance"
	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
	"sdr/internal/spantree"
	"sdr/internal/unison"
)

// TestEndToEndUnisonRecovery is the README quickstart as a test: U ∘ SDR on a
// ring recovers from a fully corrupted configuration within the paper's
// bounds and then satisfies the unison specification.
func TestEndToEndUnisonRecovery(t *testing.T) {
	const n = 12
	g := graph.Ring(n)
	net := sim.NewNetwork(g)
	u := unison.New(unison.DefaultPeriod(n))
	composed := core.Compose(u)
	rng := rand.New(rand.NewSource(2024))

	start := faults.MustRandomConfiguration(composed, net, rng)
	daemon := sim.NewDistributedRandomDaemon(rng, 0.5)
	engine := sim.NewEngine(net, composed, daemon)
	res := engine.Run(start,
		sim.WithLegitimate(core.NormalPredicate(u, net)),
		sim.WithStopWhenLegitimate(),
	)
	if !res.LegitimateReached {
		t.Fatal("the composition did not stabilize")
	}
	if res.StabilizationRounds > unison.MaxStabilizationRounds(n) {
		t.Errorf("stabilization took %d rounds, bound is %d", res.StabilizationRounds, unison.MaxStabilizationRounds(n))
	}
	if res.StabilizationMoves > unison.MaxStabilizationMoves(n, g.Diameter()) {
		t.Errorf("stabilization took %d moves, bound is %d", res.StabilizationMoves, unison.MaxStabilizationMoves(n, g.Diameter()))
	}

	ticker := unison.NewTickCounter(n)
	safety := unison.SafetyPredicate(u, net)
	violations := 0
	engine.Run(res.Final,
		sim.WithMaxSteps(40*n),
		sim.WithStepHook(ticker.Hook()),
		sim.WithStepHook(func(info sim.StepInfo) {
			if !safety(info.After) {
				violations++
			}
		}),
	)
	if violations > 0 {
		t.Errorf("unison safety violated %d times after stabilization", violations)
	}
	if ticker.Min() == 0 {
		t.Error("liveness: some clock never ticked after stabilization")
	}
}

// TestEndToEndAllianceRecovery converges FGA ∘ SDR, injects a fault into the
// converged system, and checks that it recovers a 1-minimal alliance — the
// scenario of the alliance example.
func TestEndToEndAllianceRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomConnected(14, 0.4, rng)
	net := sim.NewNetwork(g)
	spec := alliance.GlobalPowerfulAlliance()
	if err := spec.Validate(g); err != nil {
		t.Skipf("spec not solvable on this random graph: %v", err)
	}
	composed := alliance.NewSelfStabilizing(spec)
	daemon := sim.NewDistributedRandomDaemon(rng, 0.5)
	engine := sim.NewEngine(net, composed, daemon)

	res := engine.Run(sim.InitialConfiguration(composed, net))
	if !res.Terminated {
		t.Fatal("FGA ∘ SDR did not terminate from γ_init")
	}
	if !alliance.Is1Minimal(g, spec, alliance.Members(res.Final)) {
		t.Fatal("the converged alliance is not 1-minimal")
	}

	corrupted := faults.MustCorruptFraction(composed, net, res.Final, 0.5, rng)
	res2 := engine.Run(corrupted)
	if !res2.Terminated {
		t.Fatal("FGA ∘ SDR did not recover after the fault")
	}
	if !alliance.Is1Minimal(g, spec, alliance.Members(res2.Final)) {
		t.Error("the recovered alliance is not 1-minimal")
	}
	if res2.Moves > alliance.MaxStabilizationMoves(g.N(), g.M(), g.MaxDegree()) {
		t.Errorf("recovery took %d moves, exceeding the O(Δ·n·m) bound", res2.Moves)
	}
}

// TestEndToEndThreeInstantiationsShareTheReset runs the three instantiations
// on the same topology and checks the SDR-level guarantees hold identically:
// same bound, no alive-root creations, silent termination where applicable.
func TestEndToEndThreeInstantiationsShareTheReset(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := graph.Grid(3, 4)
	net := sim.NewNetwork(g)

	instantiations := []struct {
		name   string
		comp   *core.Composed
		silent bool
	}{
		{"unison", core.Compose(unison.New(unison.DefaultPeriod(g.N()))), false},
		{"alliance", alliance.NewSelfStabilizing(alliance.DominatingSet()), true},
		{"spantree", spantree.NewSelfStabilizing(g, 0), true},
	}
	for _, inst := range instantiations {
		inst := inst
		t.Run(inst.name, func(t *testing.T) {
			start := faults.MustRandomConfiguration(inst.comp, net, rng)
			observer := core.NewObserver(inst.comp.Inner(), net)
			observer.Prime(start)
			daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(5)), 0.5)
			res := sim.NewEngine(net, inst.comp, daemon).Run(start,
				sim.WithMaxSteps(500_000),
				sim.WithLegitimate(core.NormalPredicate(inst.comp.Inner(), net)),
				sim.WithStepHook(observer.Hook()),
				sim.WithStopWhenLegitimate(),
			)
			if !res.LegitimateReached {
				t.Fatal("did not reach a normal configuration")
			}
			if res.StabilizationRounds > core.MaxResetRounds(g.N()) {
				t.Errorf("normal configuration reached after %d rounds, bound %d",
					res.StabilizationRounds, core.MaxResetRounds(g.N()))
			}
			if observer.AliveRootViolations() != 0 {
				t.Errorf("%d alive roots created", observer.AliveRootViolations())
			}
			if observer.MaxSDRMoves() > core.MaxSDRMovesPerProcess(g.N()) {
				t.Errorf("a process executed %d SDR moves, bound %d",
					observer.MaxSDRMoves(), core.MaxSDRMovesPerProcess(g.N()))
			}
			if inst.silent {
				full := sim.NewEngine(net, inst.comp, daemon).Run(res.Final, sim.WithMaxSteps(500_000))
				if !full.Terminated {
					t.Error("a static instantiation must terminate (silence)")
				}
			}
		})
	}
}
