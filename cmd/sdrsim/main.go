// Command sdrsim runs one simulated execution of a reproduced algorithm on a
// chosen topology, under a chosen daemon, from a chosen (possibly corrupted)
// starting configuration, and prints the trace summary and the stabilization
// measurements. It is a thin flag parser over the internal/scenario
// registries: every combination it can run is a scenario.Spec, and -list
// shows everything the registries know.
//
// Usage examples:
//
//	sdrsim -algorithm unison -topology ring -n 16 -daemon distributed-random -scenario random-all
//	sdrsim -algorithm alliance -spec dominating-set -topology random -n 12 -trace
//	sdrsim -algorithm bpv -topology ring -n 10 -scenario random-all
//	sdrsim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sdr/internal/core"
	"sdr/internal/scenario"
	"sdr/internal/sim"
	"sdr/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdrsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sdrsim", flag.ContinueOnError)
	var (
		sp        scenario.Spec
		list      = fs.Bool("list", false, "list the registered algorithms, topologies, daemons and fault models, then exit")
		showTrace = fs.Bool("trace", false, "print the full step-by-step trace")
		format    = fs.String("format", "text", "trace format when -trace is set: text, csv, json")
	)
	fs.StringVar(&sp.Algorithm, "algorithm", "unison", "algorithm registry entry (see -list)")
	fs.StringVar(&sp.Params.AllianceSpec, "spec", "dominating-set", "alliance spec for the generic alliance entries (see -list)")
	fs.StringVar(&sp.Topology, "topology", "ring", "topology registry entry (see -list)")
	fs.IntVar(&sp.N, "n", 12, "number of processes (rounded by structured topologies)")
	fs.IntVar(&sp.Params.K, "k", 0, "unison period K (0 means n+1)")
	fs.IntVar(&sp.Params.Root, "root", 0, "root process of the spanning-tree algorithms")
	fs.StringVar(&sp.Daemon, "daemon", "distributed-random", "daemon registry entry (see -list)")
	fs.StringVar(&sp.Fault, "scenario", "random-all", "fault-model registry entry (see -list)")
	fs.Int64Var(&sp.Seed, "seed", 1, "random seed")
	fs.IntVar(&sp.MaxSteps, "max-steps", 2_000_000, "step bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		printRegistries(out)
		return nil
	}
	return simulate(sp, *showTrace, *format, out)
}

// printRegistries renders the scenario registries, one section per axis.
func printRegistries(out io.Writer) {
	section := func(title string, names []string, describe func(string) string) {
		fmt.Fprintf(out, "%s:\n", title)
		for _, name := range names {
			fmt.Fprintf(out, "  %-32s %s\n", name, describe(name))
		}
		fmt.Fprintln(out)
	}
	section("algorithms", scenario.Algorithms(), func(name string) string {
		e, _ := scenario.AlgorithmByName(name)
		return e.Description
	})
	section("topologies", scenario.Topologies(), func(name string) string {
		e, _ := scenario.TopologyByName(name)
		return e.Description
	})
	section("daemons", scenario.Daemons(), func(name string) string {
		e, _ := scenario.DaemonByName(name)
		return e.Description
	})
	section("fault models", scenario.FaultModels(), func(name string) string {
		e, _ := scenario.FaultByName(name)
		return e.Description
	})
}

func simulate(sp scenario.Spec, showTrace bool, format string, out io.Writer) error {
	run, err := sp.Resolve()
	if err != nil {
		return err
	}

	recorder := trace.NewRecorder(run.Net.N(), trace.WithMaxEvents(10_000))
	opts := []sim.Option{sim.WithStepHook(recorder.Hook())}
	observer := run.Observer()
	if observer != nil {
		opts = append(opts, sim.WithStepHook(observer.Hook()))
	}
	res := run.Execute(opts...)

	g := run.Graph
	fmt.Fprintf(out, "algorithm : %s\n", run.Alg.Name())
	fmt.Fprintf(out, "topology  : %s (n=%d m=%d Δ=%d D=%d)\n", run.Spec.Topology, g.N(), g.M(), g.MaxDegree(), g.Diameter())
	fmt.Fprintf(out, "daemon    : %s, scenario: %s, seed: %d\n", run.Daemon.Name(), run.Spec.Fault, run.Spec.Seed)
	fmt.Fprintf(out, "steps     : %d, moves: %d, rounds: %d, terminated: %v\n", res.Steps, res.Moves, res.Rounds, res.Terminated)
	if run.Legitimate != nil {
		if res.LegitimateReached {
			fmt.Fprintf(out, "stabilized: after %d moves / %d rounds / %d steps\n",
				res.StabilizationMoves, res.StabilizationRounds, res.StabilizationSteps)
		} else {
			fmt.Fprintln(out, "stabilized: NOT reached within the step bound")
		}
	}
	if observer != nil {
		fmt.Fprintf(out, "reset     : segments=%d, max SDR moves/process=%d (bound %d), alive-root creations=%d\n",
			observer.Segments(), observer.MaxSDRMoves(), core.MaxSDRMovesPerProcess(run.Net.N()), observer.AliveRootViolations())
	}
	for _, line := range run.Report(res).Lines {
		fmt.Fprintln(out, line)
	}

	if showTrace {
		switch format {
		case "text":
			return recorder.WriteText(out)
		case "csv":
			return recorder.WriteCSV(out)
		case "json":
			return recorder.WriteJSON(out)
		default:
			return fmt.Errorf("unknown trace format %q", format)
		}
	}
	fmt.Fprint(out, recorder.Summary())
	return nil
}
