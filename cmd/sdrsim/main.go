// Command sdrsim runs one simulated execution of a reproduced algorithm on a
// chosen topology, under a chosen daemon, from a chosen (possibly corrupted)
// starting configuration, and prints the trace summary and the stabilization
// measurements. It is a thin flag parser over the internal/scenario
// registries: every combination it can run is a scenario.Spec, and -list
// shows everything the registries know.
//
// Beyond simulation, -verify switches to exhaustive certification: instead
// of sampling one daemon schedule, every daemon choice (up to the selection
// cap) is explored from a set of seeded corrupted starts and the run's
// convergence property is model-checked on the reachable space.
//
// Usage examples:
//
//	sdrsim -algorithm unison -topology ring -n 16 -daemon distributed-random -scenario random-all
//	sdrsim -algorithm alliance -spec dominating-set -topology random -n 12 -trace
//	sdrsim -algorithm bpv -topology ring -n 10 -scenario random-all
//	sdrsim -algorithm unison -topology ring -n 5 -verify -verify-starts 8
//	sdrsim -algorithm unison -topology torus -n 16 -churn poisson-mixed
//	sdrsim -algorithm unison -topology torus -n 1024 -profile-steps 4
//	sdrsim -list
//	sdrsim -list -json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"sdr/internal/core"
	"sdr/internal/obs"
	"sdr/internal/scenario"
	"sdr/internal/sim"
	"sdr/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdrsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sdrsim", flag.ContinueOnError)
	var (
		sp        scenario.Spec
		vo        scenario.VerifyOptions
		list      = fs.Bool("list", false, "list the registered algorithms, topologies, daemons and fault models, then exit")
		jsonList  = fs.Bool("json", false, "with -list, print the machine-readable registry dump (the same bytes sdrbench -list -json prints and sdrd serves at /v1/registry)")
		showTrace = fs.Bool("trace", false, "print the full step-by-step trace")
		format    = fs.String("format", "text", "trace format when -trace is set: text, csv, json")
		verify    = fs.Bool("verify", false, "exhaustively certify the run's convergence property instead of simulating one schedule (small n only)")
	)
	fs.IntVar(&vo.Starts, "verify-starts", 4, "number of seeded corrupted starts the verification explores from")
	fs.IntVar(&vo.MaxConfigurations, "verify-max-configs", 0, "configuration cap of the exploration (0 = checker default)")
	fs.IntVar(&vo.MaxSelectionSize, "verify-max-selection", 1, "daemon selection size cap: k certifies daemons activating ≤ k processes per step; 0 is exact but exponential in the enabled-set size")
	fs.IntVar(&vo.Workers, "verify-workers", 0, "exploration worker pool size (0 = one per CPU); verdicts are identical for every value")
	fs.StringVar(&sp.Algorithm, "algorithm", "unison", "algorithm registry entry (see -list)")
	fs.StringVar(&sp.Params.AllianceSpec, "spec", "dominating-set", "alliance spec for the generic alliance entries (see -list)")
	fs.StringVar(&sp.Topology, "topology", "ring", "topology registry entry (see -list)")
	fs.IntVar(&sp.N, "n", 12, "number of processes (rounded by structured topologies)")
	fs.IntVar(&sp.Params.K, "k", 0, "unison period K (0 means n+1)")
	fs.IntVar(&sp.Params.Root, "root", 0, "root process of the spanning-tree algorithms")
	fs.StringVar(&sp.Daemon, "daemon", "distributed-random", "daemon registry entry (see -list)")
	fs.StringVar(&sp.Fault, "scenario", "random-all", "fault-model registry entry (see -list)")
	fs.StringVar(&sp.Churn, "churn", "", "mid-run churn schedule: a registered name or a grammar form like periodic:events=3,every=200 (see -list); empty runs statically")
	fs.Int64Var(&sp.Seed, "seed", 1, "random seed")
	fs.IntVar(&sp.MaxSteps, "max-steps", 2_000_000, "step bound")
	fs.IntVar(&sp.Shards, "shards", 0, "engine shard count (see sim.WithShards); 0 or 1 runs the sequential engine, >1 runs sharded (bit-identical for -daemon synchronous, locally-central daemon family otherwise)")
	profileSteps := fs.Int("profile-steps", 0, "sample every k-th engine step and append a per-phase timing block to the report (0 = off; timing is observational, the run itself is unchanged)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profileSteps < 0 {
		return fmt.Errorf("-profile-steps must be ≥ 0, got %d", *profileSteps)
	}
	if *list {
		if *jsonList {
			return scenario.WriteRegistryJSON(out)
		}
		printRegistries(out)
		return nil
	}
	if *verify {
		if sp.Churn != "" {
			return fmt.Errorf("-churn is not supported with -verify: exhaustive certification explores static runs only")
		}
		if sp.Shards > 1 {
			return fmt.Errorf("-shards is not supported with -verify: exhaustive certification explores the sequential engine only")
		}
		if vo.Workers <= 0 {
			vo.Workers = runtime.NumCPU()
		}
		return certify(sp, vo, out)
	}
	return simulate(sp, *showTrace, *format, *profileSteps, out)
}

// certify resolves the Spec and model-checks its convergence property on the
// space reachable from the seeded starts, under every daemon choice up to
// the selection cap.
func certify(sp scenario.Spec, vo scenario.VerifyOptions, out io.Writer) error {
	run, err := sp.Resolve()
	if err != nil {
		return err
	}
	g := run.Graph
	fmt.Fprintf(out, "algorithm : %s\n", run.Alg.Name())
	fmt.Fprintf(out, "topology  : %s (n=%d m=%d Δ=%d D=%d)\n", run.Spec.Topology, g.N(), g.M(), g.MaxDegree(), g.Diameter())
	daemons := "every daemon"
	if vo.MaxSelectionSize > 0 {
		daemons = fmt.Sprintf("every daemon activating ≤%d process(es) per step", vo.MaxSelectionSize)
	}
	fmt.Fprintf(out, "verify    : scenario %s, seed %d, %d start(s), %s\n", run.Spec.Fault, run.Spec.Seed, max(vo.Starts, 1), daemons)

	report, verr := run.Verify(vo)
	if verr != nil && report.Configurations == 0 {
		// The verification never started (no legitimacy predicate, start
		// construction failed): a setup error, not a refuted property.
		return verr
	}
	fmt.Fprintf(out, "explored  : %d configurations, %d transitions, depth %d, complete=%v\n",
		report.Configurations, report.Transitions, report.Depth, report.Complete)
	fmt.Fprintf(out, "coverage  : %d terminal, %d legitimate, %d selection-capped, %d distinct local states\n",
		report.TerminalConfigurations, report.LegitimateConfigurations, report.CappedSelections, report.DistinctLocalStates)
	switch {
	case verr != nil:
		fmt.Fprintf(out, "verdict   : REFUTED — %v\n", verr)
		return fmt.Errorf("verification refuted the convergence property")
	case !report.Complete:
		fmt.Fprintln(out, "verdict   : INCOMPLETE — the configuration cap was hit before the reachable space was covered; raise -verify-max-configs")
		return fmt.Errorf("verification incomplete: explored %d configurations", report.Configurations)
	default:
		fmt.Fprintln(out, "verdict   : CERTIFIED — every execution from the explored starts reaches the legitimate set")
		return nil
	}
}

// printRegistries renders the scenario registries, one section per axis.
func printRegistries(out io.Writer) {
	section := func(title string, names []string, describe func(string) string) {
		fmt.Fprintf(out, "%s:\n", title)
		for _, name := range names {
			fmt.Fprintf(out, "  %-32s %s\n", name, describe(name))
		}
		fmt.Fprintln(out)
	}
	section("algorithms", scenario.Algorithms(), func(name string) string {
		e, _ := scenario.AlgorithmByName(name)
		return e.Description
	})
	section("topologies", scenario.Topologies(), func(name string) string {
		e, _ := scenario.TopologyByName(name)
		return e.Description
	})
	section("daemons", scenario.Daemons(), func(name string) string {
		e, _ := scenario.DaemonByName(name)
		return e.Description
	})
	section("fault models", scenario.FaultModels(), func(name string) string {
		e, _ := scenario.FaultByName(name)
		return e.Description
	})
	section("churn schedules", scenario.ChurnSchedules(), func(name string) string {
		e, _ := scenario.ChurnByName(name)
		return e.Description
	})
}

func simulate(sp scenario.Spec, showTrace bool, format string, profileSteps int, out io.Writer) error {
	run, err := sp.Resolve()
	if err != nil {
		return err
	}

	recorder := trace.NewRecorder(run.Net.N(), trace.WithMaxEvents(10_000))
	opts := []sim.Option{sim.WithStepHook(recorder.Hook())}
	var prof *obs.PhaseProfiler
	if profileSteps > 0 {
		prof = obs.NewPhaseProfiler(profileSteps)
		opts = append(opts, sim.WithProfiler(prof))
	}
	observer := run.Observer()
	if observer != nil {
		opts = append(opts, sim.WithStepHook(observer.Hook()))
	}
	// Topology stats are captured before the run: churn events mutate the
	// graph in place, and the header should describe the starting topology.
	g := run.Graph
	topoLine := fmt.Sprintf("%s (n=%d m=%d Δ=%d D=%d)", run.Spec.Topology, g.N(), g.M(), g.MaxDegree(), g.Diameter())
	res := run.Execute(opts...)

	fmt.Fprintf(out, "algorithm : %s\n", run.Alg.Name())
	fmt.Fprintf(out, "topology  : %s\n", topoLine)
	fmt.Fprintf(out, "daemon    : %s, scenario: %s, seed: %d\n", run.Daemon.Name(), run.Spec.Fault, run.Spec.Seed)
	if run.Spec.Shards > 1 {
		fmt.Fprintf(out, "sharding  : %d shards (exact for the synchronous daemon, locally-central family otherwise)\n", run.Spec.Shards)
	}
	if run.Churn != nil {
		fmt.Fprintf(out, "churn     : %s, events at steps %v\n", run.Churn.Schedule(), run.Churn.Times())
	}
	fmt.Fprintf(out, "steps     : %d, moves: %d, rounds: %d, terminated: %v\n", res.Steps, res.Moves, res.Rounds, res.Terminated)
	if run.Legitimate != nil {
		if res.LegitimateReached {
			fmt.Fprintf(out, "stabilized: after %d moves / %d rounds / %d steps\n",
				res.StabilizationMoves, res.StabilizationRounds, res.StabilizationSteps)
		} else {
			fmt.Fprintln(out, "stabilized: NOT reached within the step bound")
		}
	}
	if len(res.Events) > 0 {
		recovered := 0
		for _, ev := range res.Events {
			if ev.Recovered {
				recovered++
			}
		}
		fmt.Fprintf(out, "recovery  : %d/%d events recovered, availability %.3f\n",
			recovered, len(res.Events), res.Availability())
		fmt.Fprintf(out, "  %-3s %-20s %-7s %-6s %-10s %-10s %-10s %s\n",
			"#", "event", "step", "legit", "rec-steps", "rec-moves", "rec-rounds", "recovered")
		for i, ev := range res.Events {
			steps, moves, rounds := "-", "-", "-"
			if ev.Recovered {
				steps = fmt.Sprintf("%d", ev.RecoverySteps)
				moves = fmt.Sprintf("%d", ev.RecoveryMoves)
				rounds = fmt.Sprintf("%d", ev.RecoveryRounds)
			}
			fmt.Fprintf(out, "  %-3d %-20s %-7d %-6v %-10s %-10s %-10s %v\n",
				i, ev.Label, ev.Step, ev.LegitimateBefore, steps, moves, rounds, ev.Recovered)
		}
	}
	if observer != nil {
		fmt.Fprintf(out, "reset     : segments=%d, max SDR moves/process=%d (bound %d), alive-root creations=%d\n",
			observer.Segments(), observer.MaxSDRMoves(), core.MaxSDRMovesPerProcess(run.Net.N()), observer.AliveRootViolations())
	}
	for _, line := range run.Report(res).Lines {
		fmt.Fprintln(out, line)
	}
	if prof != nil {
		printProfile(out, prof.Profile())
	}

	if showTrace {
		switch format {
		case "text":
			return recorder.WriteText(out)
		case "csv":
			return recorder.WriteCSV(out)
		case "json":
			return recorder.WriteJSON(out)
		default:
			return fmt.Errorf("unknown trace format %q", format)
		}
	}
	fmt.Fprint(out, recorder.Summary())
	return nil
}

// printProfile renders the sampled phase timings as a trailing report block:
// one line per global phase with its mean per sampled step and share of the
// step wall time, per-shard breakdowns indented beneath, and a closing line
// whose coverage shows how much of the wall the named phases account for.
func printProfile(out io.Writer, p obs.EngineProfile) {
	if p.SampledSteps == 0 {
		fmt.Fprintln(out, "profile   : no steps sampled")
		return
	}
	fmt.Fprintf(out, "profile   : %d of %d steps sampled (every %d)\n", p.SampledSteps, p.Steps, p.Every)
	n := float64(p.SampledSteps)
	for _, ph := range p.Phases {
		fmt.Fprintf(out, "  %-18s %10.1fµs/step  %5.1f%%\n",
			ph.Phase, float64(ph.Total.Nanoseconds())/n/1e3, 100*float64(ph.Total)/float64(p.StepWall))
	}
	for _, sb := range p.Shards {
		for _, ph := range sb.Phases {
			fmt.Fprintf(out, "  %-18s %10.1fµs/step  %5.1f%%\n",
				fmt.Sprintf("%s[shard %d]", ph.Phase, sb.Shard),
				float64(ph.Total.Nanoseconds())/n/1e3, 100*float64(ph.Total)/float64(p.StepWall))
		}
	}
	fmt.Fprintf(out, "  %-18s %10.1fµs/step  cover %.0f%%\n",
		"step_wall", float64(p.StepWall.Nanoseconds())/n/1e3, 100*p.Coverage())
}
