// Command sdrsim runs one simulated execution of a reproduced algorithm on a
// chosen topology, under a chosen daemon, from a chosen (possibly corrupted)
// starting configuration, and prints the trace summary and the stabilization
// measurements.
//
// Usage examples:
//
//	sdrsim -algorithm unison -topology ring -n 16 -daemon distributed-random -scenario random-all
//	sdrsim -algorithm alliance -spec dominating-set -topology random -n 12 -trace
//	sdrsim -algorithm bpv -topology ring -n 10 -scenario random-all
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"sdr/internal/alliance"
	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
	"sdr/internal/spantree"
	"sdr/internal/trace"
	"sdr/internal/unison"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdrsim:", err)
		os.Exit(1)
	}
}

type options struct {
	algorithm string
	spec      string
	topology  string
	n         int
	k         int
	daemon    string
	scenario  string
	seed      int64
	maxSteps  int
	showTrace bool
	format    string
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sdrsim", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.algorithm, "algorithm", "unison", "algorithm to run: unison, unison-standalone, alliance, alliance-standalone, bfstree, bpv")
	fs.StringVar(&o.spec, "spec", "dominating-set", "alliance spec: dominating-set, 2-domination, 2-tuple-domination, global-offensive-alliance, global-defensive-alliance, global-powerful-alliance")
	fs.StringVar(&o.topology, "topology", "ring", "topology: ring, path, star, complete, tree, grid, torus, hypercube, random")
	fs.IntVar(&o.n, "n", 12, "number of processes (rounded by structured topologies)")
	fs.IntVar(&o.k, "k", 0, "unison period K (0 means n+1)")
	fs.StringVar(&o.daemon, "daemon", "distributed-random", "daemon: synchronous, central-random, distributed-random, locally-central, round-robin, greedy-adversarial")
	fs.StringVar(&o.scenario, "scenario", "random-all", "fault scenario for composed algorithms: random-all, inner-only, fake-wave, half-corrupt, none")
	fs.Int64Var(&o.seed, "seed", 1, "random seed")
	fs.IntVar(&o.maxSteps, "max-steps", 2_000_000, "step bound")
	fs.BoolVar(&o.showTrace, "trace", false, "print the full step-by-step trace")
	fs.StringVar(&o.format, "format", "text", "trace format when -trace is set: text, csv, json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return simulate(o, out)
}

func simulate(o options, out io.Writer) error {
	g, err := buildTopology(o.topology, o.n, o.seed)
	if err != nil {
		return err
	}
	net := sim.NewNetwork(g)
	rng := rand.New(rand.NewSource(o.seed))

	alg, inner, legit, err := buildAlgorithm(o, g)
	if err != nil {
		return err
	}
	daemon, err := buildDaemon(o.daemon, o.seed)
	if err != nil {
		return err
	}
	start, err := buildStart(o.scenario, alg, inner, net, rng)
	if err != nil {
		return err
	}

	recorder := trace.NewRecorder(net.N(), trace.WithMaxEvents(10_000))
	runOpts := []sim.Option{
		sim.WithMaxSteps(o.maxSteps),
		sim.WithStepHook(recorder.Hook()),
	}
	var observer *core.Observer
	if inner != nil {
		observer = core.NewObserver(inner, net)
		observer.Prime(start)
		runOpts = append(runOpts, sim.WithStepHook(observer.Hook()))
	}
	if legit != nil {
		runOpts = append(runOpts, sim.WithLegitimate(legit))
	}
	if !terminatingAlgorithm(o.algorithm) {
		runOpts = append(runOpts, sim.WithStopWhenLegitimate())
	}

	eng := sim.NewEngine(net, alg, daemon)
	res := eng.Run(start, runOpts...)

	fmt.Fprintf(out, "algorithm : %s\n", alg.Name())
	fmt.Fprintf(out, "topology  : %s (n=%d m=%d Δ=%d D=%d)\n", o.topology, g.N(), g.M(), g.MaxDegree(), g.Diameter())
	fmt.Fprintf(out, "daemon    : %s, scenario: %s, seed: %d\n", daemon.Name(), o.scenario, o.seed)
	fmt.Fprintf(out, "steps     : %d, moves: %d, rounds: %d, terminated: %v\n", res.Steps, res.Moves, res.Rounds, res.Terminated)
	if legit != nil {
		if res.LegitimateReached {
			fmt.Fprintf(out, "stabilized: after %d moves / %d rounds / %d steps\n",
				res.StabilizationMoves, res.StabilizationRounds, res.StabilizationSteps)
		} else {
			fmt.Fprintln(out, "stabilized: NOT reached within the step bound")
		}
	}
	if observer != nil {
		fmt.Fprintf(out, "reset     : segments=%d, max SDR moves/process=%d (bound %d), alive-root creations=%d\n",
			observer.Segments(), observer.MaxSDRMoves(), core.MaxSDRMovesPerProcess(net.N()), observer.AliveRootViolations())
	}
	printOutcome(o, out, net, res)

	if o.showTrace {
		switch o.format {
		case "text":
			return recorder.WriteText(out)
		case "csv":
			return recorder.WriteCSV(out)
		case "json":
			return recorder.WriteJSON(out)
		default:
			return fmt.Errorf("unknown trace format %q", o.format)
		}
	}
	fmt.Fprint(out, recorder.Summary())
	return nil
}

// printOutcome prints the algorithm-specific result of the run.
func printOutcome(o options, out io.Writer, net *sim.Network, res sim.Result) {
	switch {
	case strings.HasPrefix(o.algorithm, "alliance"):
		members := alliance.Members(res.Final)
		spec, err := specByName(o.spec)
		if err != nil {
			return
		}
		fmt.Fprintf(out, "alliance  : %v (size %d)\n", members, len(members))
		fmt.Fprintf(out, "valid     : alliance=%v, 1-minimal=%v\n",
			alliance.IsAlliance(net.Graph(), spec, members),
			alliance.Is1Minimal(net.Graph(), spec, members))
	case o.algorithm == "bfstree":
		err := spantree.VerifyTree(net.Graph(), 0, res.Final)
		fmt.Fprintf(out, "bfs tree  : distances=%v\n", spantree.Distances(res.Final))
		fmt.Fprintf(out, "valid     : %v\n", err == nil)
	case o.algorithm == "unison" || o.algorithm == "unison-standalone":
		fmt.Fprintf(out, "final     : %s\n", res.Final)
	}
}

func terminatingAlgorithm(name string) bool {
	return strings.HasPrefix(name, "alliance") || name == "bfstree"
}

func buildTopology(name string, n int, seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "ring":
		return graph.Ring(n), nil
	case "path":
		return graph.Path(n), nil
	case "star":
		return graph.Star(n), nil
	case "complete":
		return graph.Complete(n), nil
	case "tree":
		return graph.RandomTree(n, rng), nil
	case "grid":
		side := 2
		for side*side < n {
			side++
		}
		return graph.Grid(side, (n+side-1)/side), nil
	case "torus":
		side := 3
		for side*side < n {
			side++
		}
		return graph.Torus(side, side), nil
	case "hypercube":
		d := 1
		for (1 << uint(d)) < n {
			d++
		}
		return graph.Hypercube(d), nil
	case "random":
		return graph.RandomConnected(n, 0.3, rng), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func specByName(name string) (alliance.Spec, error) {
	for _, s := range alliance.StandardSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	var known []string
	for _, s := range alliance.StandardSpecs() {
		known = append(known, s.Name)
	}
	return alliance.Spec{}, fmt.Errorf("unknown alliance spec %q (known: %s)", name, strings.Join(known, ", "))
}

// buildAlgorithm returns the algorithm to run, the inner Resettable when the
// algorithm is a composition (nil otherwise), and the legitimacy predicate.
func buildAlgorithm(o options, g *graph.Graph) (sim.Algorithm, core.Resettable, sim.Predicate, error) {
	net := sim.NewNetwork(g)
	k := o.k
	if k <= 0 {
		k = unison.DefaultPeriod(g.N())
	}
	switch o.algorithm {
	case "unison":
		u := unison.New(k)
		comp := core.Compose(u)
		return comp, u, core.NormalPredicate(u, net), nil
	case "unison-standalone":
		u := unison.New(k)
		return core.NewStandalone(u), nil, nil, nil
	case "alliance":
		spec, err := specByName(o.spec)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := spec.Validate(g); err != nil {
			return nil, nil, nil, err
		}
		fga := alliance.NewFGA(spec)
		comp := core.Compose(fga)
		return comp, fga, core.NormalPredicate(fga, net), nil
	case "alliance-standalone":
		spec, err := specByName(o.spec)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := spec.Validate(g); err != nil {
			return nil, nil, nil, err
		}
		return core.NewStandalone(alliance.NewFGA(spec)), nil, nil, nil
	case "bfstree":
		bfs := spantree.NewFor(g, 0)
		comp := core.Compose(bfs)
		return comp, bfs, core.NormalPredicate(bfs, net), nil
	case "bpv":
		bpv := unison.NewBPVFor(g)
		return bpv, nil, bpv.LegitimatePredicate(g), nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown algorithm %q", o.algorithm)
	}
}

func buildDaemon(name string, seed int64) (sim.Daemon, error) {
	for _, df := range sim.StandardDaemonFactories() {
		if df.Name == name {
			return df.New(seed), nil
		}
	}
	var known []string
	for _, df := range sim.StandardDaemonFactories() {
		known = append(known, df.Name)
	}
	return nil, fmt.Errorf("unknown daemon %q (known: %s)", name, strings.Join(known, ", "))
}

func buildStart(scenario string, alg sim.Algorithm, inner core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error) {
	if scenario == "none" || inner == nil {
		if scenario != "none" && scenario != "random-all" {
			return nil, fmt.Errorf("scenario %q requires a composed algorithm", scenario)
		}
		if scenario == "random-all" {
			if _, ok := alg.(sim.Enumerable); ok {
				return faults.RandomConfiguration(alg, net, rng), nil
			}
		}
		return sim.InitialConfiguration(alg, net), nil
	}
	for _, s := range faults.StandardScenarios() {
		if s.Name == scenario {
			return s.Build(alg, inner, net, rng), nil
		}
	}
	var known []string
	for _, s := range faults.StandardScenarios() {
		known = append(known, s.Name)
	}
	return nil, fmt.Errorf("unknown scenario %q (known: %s, none)", scenario, strings.Join(known, ", "))
}
