package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sdr/internal/scenario"
)

func TestSimulateUnison(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-algorithm", "unison", "-topology", "ring", "-n", "8", "-seed", "3"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"U(K=9)∘SDR", "stabilized", "reset", "moves by rule"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestSimulateAllianceWithTrace(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-algorithm", "alliance", "-spec", "dominating-set",
		"-topology", "random", "-n", "9", "-seed", "2", "-trace", "-format", "csv",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "1-minimal=true") {
		t.Errorf("the alliance run should report a 1-minimal output:\n%s", text)
	}
	if !strings.Contains(text, "step,round,process,rule") {
		t.Errorf("the CSV trace header is missing:\n%s", text)
	}
}

// TestProfileStepsFlag pins two things: the profile block appears (with the
// sequential engine's phases and the coverage line), and profiling is purely
// additive — the report lines before the block are byte-identical to an
// unprofiled run.
func TestProfileStepsFlag(t *testing.T) {
	base := []string{"-algorithm", "unison", "-topology", "ring", "-n", "8", "-seed", "3"}
	var plain, profiled bytes.Buffer
	if err := run(base, &plain); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(append(append([]string{}, base...), "-profile-steps", "2"), &profiled); err != nil {
		t.Fatalf("run -profile-steps: %v", err)
	}
	text := profiled.String()
	for _, want := range []string{"profile   :", "guard_eval", "step_wall", "cover"} {
		if !strings.Contains(text, want) {
			t.Errorf("profiled output missing %q:\n%s", want, text)
		}
	}
	// Strip the profile block (the only wall-clock-dependent lines) and the
	// two outputs must match exactly.
	var stripped []string
	inBlock := false
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, "profile   :"):
			inBlock = true
			continue
		case inBlock && strings.HasPrefix(line, "  "):
			continue
		default:
			inBlock = false
		}
		stripped = append(stripped, line)
	}
	if got := strings.Join(stripped, "\n"); got != plain.String() {
		t.Errorf("profiling changed the report:\n--- plain\n%s--- profiled (stripped)\n%s", plain.String(), got)
	}
	if err := run([]string{"-profile-steps", "-1"}, &plain); err == nil {
		t.Error("negative -profile-steps must be rejected")
	}
}

func TestSimulateStandaloneAndBPV(t *testing.T) {
	for _, algo := range []string{"unison-standalone", "alliance-standalone", "bpv"} {
		var out bytes.Buffer
		args := []string{"-algorithm", algo, "-topology", "ring", "-n", "6", "-scenario", "none", "-max-steps", "500"}
		if err := run(args, &out); err != nil {
			t.Errorf("algorithm %s: %v", algo, err)
		}
	}
}

func TestSimulateAllTopologies(t *testing.T) {
	for _, top := range []string{"ring", "path", "star", "complete", "tree", "grid", "torus", "hypercube", "random"} {
		var out bytes.Buffer
		args := []string{"-topology", top, "-n", "8", "-seed", "4", "-max-steps", "50000"}
		if err := run(args, &out); err != nil {
			t.Errorf("topology %s: %v", top, err)
		}
	}
}

func TestSimulateAllDaemonsAndScenarios(t *testing.T) {
	for _, daemon := range []string{"synchronous", "central-random", "distributed-random", "locally-central", "round-robin", "greedy-adversarial"} {
		var out bytes.Buffer
		args := []string{"-daemon", daemon, "-n", "6", "-max-steps", "20000"}
		if err := run(args, &out); err != nil {
			t.Errorf("daemon %s: %v", daemon, err)
		}
	}
	for _, scenario := range []string{"random-all", "inner-only", "fake-wave", "half-corrupt", "none"} {
		var out bytes.Buffer
		args := []string{"-scenario", scenario, "-n", "6", "-max-steps", "20000"}
		if err := run(args, &out); err != nil {
			t.Errorf("scenario %s: %v", scenario, err)
		}
	}
}

func TestSimulateJSONTrace(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "6", "-trace", "-format", "json", "-max-steps", "5000"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "\"events\"") {
		t.Errorf("JSON trace missing events:\n%s", out.String())
	}
}

func TestSimulateRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-algorithm", "nope"},
		{"-topology", "nope"},
		{"-daemon", "nope"},
		{"-scenario", "nope"},
		{"-algorithm", "alliance", "-spec", "nope"},
		{"-trace", "-format", "nope"},
		{"-algorithm", "alliance", "-spec", "2-tuple-domination", "-topology", "path", "-n", "6"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should be rejected", args)
		}
	}
}

// TestListJSONMatchesRegistryDump pins -list -json to the shared encoder:
// the CLI output must be byte-identical to scenario.WriteRegistryJSON (and
// therefore to sdrbench -list -json and the sdrd /v1/registry body).
func TestListJSONMatchesRegistryDump(t *testing.T) {
	var got bytes.Buffer
	if err := run([]string{"-list", "-json"}, &got); err != nil {
		t.Fatalf("run -list -json: %v", err)
	}
	var want bytes.Buffer
	if err := scenario.WriteRegistryJSON(&want); err != nil {
		t.Fatalf("WriteRegistryJSON: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("-list -json diverged from scenario.WriteRegistryJSON:\ngot:\n%s\nwant:\n%s", got.Bytes(), want.Bytes())
	}
	if !json.Valid(got.Bytes()) {
		t.Errorf("-list -json output is not valid JSON:\n%s", got.Bytes())
	}
}

func TestShardsFlagSynchronousIdentical(t *testing.T) {
	base := []string{"-algorithm", "unison", "-topology", "torus", "-n", "64", "-daemon", "synchronous", "-seed", "5"}
	var seq, sharded bytes.Buffer
	if err := run(base, &seq); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if err := run(append(append([]string{}, base...), "-shards", "4"), &sharded); err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	// The sharded output carries one extra header line; past it the two
	// reports must be byte-identical (the synchronous daemon is exact).
	text := sharded.String()
	if !strings.Contains(text, "sharding  : 4 shards") {
		t.Fatalf("sharded output missing the sharding header:\n%s", text)
	}
	stripped := strings.Replace(text, "sharding  : 4 shards (exact for the synchronous daemon, locally-central family otherwise)\n", "", 1)
	if stripped != seq.String() {
		t.Errorf("sharded synchronous output diverges from sequential:\n--- sequential\n%s--- sharded\n%s", seq.String(), text)
	}
}

func TestShardsRejectedUnderVerify(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-algorithm", "unison", "-topology", "ring", "-n", "4", "-verify", "-shards", "2"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("-verify -shards 2 must be rejected, got %v", err)
	}
}
