package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// goldenCases are the representative Specs whose rendered output is pinned.
// Every run is fully seeded, so the output is deterministic; regenerate with
//
//	go test ./cmd/sdrsim -run TestGolden -update
var goldenCases = []struct {
	name string
	args []string
}{
	{"unison_ring", []string{"-algorithm", "unison", "-topology", "ring", "-n", "8", "-daemon", "distributed-random", "-scenario", "random-all", "-seed", "3"}},
	{"unison_standalone_none", []string{"-algorithm", "unison-standalone", "-topology", "path", "-n", "6", "-scenario", "none", "-max-steps", "60"}},
	{"alliance_complete", []string{"-algorithm", "global-defensive-alliance", "-topology", "complete", "-n", "8", "-scenario", "random-all", "-seed", "2"}},
	{"alliance_generic_spec", []string{"-algorithm", "alliance", "-spec", "2-domination", "-topology", "random", "-n", "10", "-seed", "4"}},
	{"bfstree_grid", []string{"-algorithm", "bfstree", "-topology", "grid", "-n", "9", "-scenario", "fake-wave", "-seed", "5"}},
	{"bpv_ring", []string{"-algorithm", "bpv", "-topology", "ring", "-n", "8", "-scenario", "random-all", "-seed", "6"}},
	{"verify_unison_ring", []string{"-algorithm", "unison", "-topology", "ring", "-n", "4", "-verify", "-verify-starts", "4", "-seed", "2"}},
	{"verify_alliance_ring", []string{"-algorithm", "dominating-set", "-topology", "ring", "-n", "5", "-verify", "-verify-starts", "3", "-verify-max-selection", "0", "-seed", "2"}},
	{"churn_unison_ring", []string{"-algorithm", "unison", "-topology", "ring", "-n", "8", "-daemon", "distributed-random", "-scenario", "random-all", "-churn", "periodic:events=3,every=100,kinds=corrupt-fraction+node-crash+edge-drop", "-seed", "11"}},
	{"trace_text", []string{"-algorithm", "unison", "-topology", "ring", "-n", "5", "-seed", "7", "-trace", "-format", "text", "-max-steps", "100000"}},
	{"trace_json", []string{"-algorithm", "unison", "-topology", "ring", "-n", "5", "-seed", "7", "-trace", "-format", "json", "-max-steps", "100000"}},
	{"list", []string{"-list"}},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err != nil {
				t.Fatalf("run %v: %v", tc.args, err)
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (run with -update to create): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
			}
		})
	}
}
