// Command sdrd serves the simulation stack as a long-running HTTP+JSON
// service (internal/server): clients submit scenario specs, sweep grids or
// full campaign specs as jobs, follow their campaign JSONL record streams
// live, and read queue/dedup/memoization statistics. Identical submissions
// are deduplicated by content hash — concurrent duplicates attach to the
// in-flight job, repeats of completed jobs are answered from a bounded
// result cache without re-running anything.
//
// The record stream a job serves is byte-identical to the CAMPAIGN_<id>.jsonl
// file an offline `sdrbench -campaign` run writes for the same spec and seed.
//
// Observability: GET /metrics exposes the shared obs registry (queue depth,
// job/dedup/backpressure counters, request and job latency histograms,
// records/sec, memo hit rate) in Prometheus text format, request and
// job-lifecycle events go to structured stderr logs, and -pprof additionally
// mounts GET /debug/pprof/* for runtime profiles.
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting
// submissions, interrupts in-flight campaigns at their next record boundary
// (the same checkpoint semantics as the CLI's SIGINT handling), and exits
// once every stream is flushed.
//
// Usage:
//
//	sdrd [-addr :8321] [-workers 2] [-queue 16] [-parallel 8] [-cache 64] [-memo-cap 0] [-pprof] [-log-json]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sdr/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdrd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdrd", flag.ContinueOnError)
	var cfg server.Config
	addr := fs.String("addr", ":8321", "listen address")
	fs.IntVar(&cfg.Workers, "workers", 2, "number of jobs executed concurrently")
	fs.IntVar(&cfg.QueueDepth, "queue", 16, "max queued (accepted, not started) jobs; beyond this, submissions get 429")
	fs.IntVar(&cfg.Parallel, "parallel", 0, "per-job trial parallelism (0 = one per CPU); record streams are identical for every value")
	fs.IntVar(&cfg.ResultCache, "cache", 64, "completed jobs retained for dedup and record serving (LRU)")
	fs.IntVar(&cfg.MemoCap, "memo-cap", 0, "max entries per cell's transition-memo table (0 = the sim package default)")
	pprofOn := fs.Bool("pprof", false, "mount GET /debug/pprof/* (exposes stacks and heap contents; opt-in)")
	logJSON := fs.Bool("log-json", false, "emit structured logs as JSON instead of logfmt-style text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	cfg.Logger = logger

	mgr := server.NewManager(cfg)
	api := server.New(mgr)
	if *pprofOn {
		api.EnablePprof()
	}
	srv := &http.Server{Addr: *addr, Handler: api}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String(),
		"workers", cfg.Workers, "queue", cfg.QueueDepth, "pprof", *pprofOn)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process outright
	logger.Info("draining: interrupting jobs at their next record boundary")
	// Drain first so every record log finishes and followers disconnect;
	// only then can Shutdown's wait for active connections complete.
	mgr.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained, exiting")
	return nil
}
