// Command sdrload is a small load generator for a running sdrd instance,
// used by the CI service-smoke job. It submits a batch of scenario jobs —
// each distinct spec several times, so the service's content-hash dedup must
// engage — waits for every job to finish, drains each record stream, then
// fetches /v1/stats, writes it to -out, and fails unless the run completed
// and at least one submission was answered by dedup.
//
// Usage:
//
//	sdrload [-url http://localhost:8321] [-specs 4] [-repeat 3] [-n 8] [-out stats.json]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdrload:", err)
		os.Exit(1)
	}
}

type submitResponse struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Deduped    bool   `json:"deduped"`
	RecordsURL string `json:"records_url"`
}

type jobStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Records int    `json:"records"`
	Error   string `json:"error"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdrload", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8321", "base URL of the sdrd instance")
	specs := fs.Int("specs", 4, "number of distinct scenario specs to submit")
	repeat := fs.Int("repeat", 3, "times each distinct spec is submitted (repeats must dedup)")
	n := fs.Int("n", 8, "network size of the submitted scenarios")
	out := fs.String("out", "", "write the final /v1/stats body to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := *url
	client := &http.Client{Timeout: 5 * time.Minute}

	// Each distinct spec is submitted -repeat times concurrently: the first
	// submission creates the job, the rest must dedup onto it.
	type result struct {
		resp submitResponse
		err  error
	}
	total := *specs * *repeat
	results := make([]result, total)
	var wg sync.WaitGroup
	for i := 0; i < *specs; i++ {
		body, err := json.Marshal(map[string]any{
			"spec": map[string]any{
				"algorithm": "unison",
				"topology":  "ring",
				"n":         *n,
				"daemon":    "distributed-random",
				"fault":     "random-all",
				"seed":      int64(i + 1),
			},
		})
		if err != nil {
			return err
		}
		for r := 0; r < *repeat; r++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				results[slot].resp, results[slot].err = submit(client, base, body)
			}(i**repeat + r)
		}
	}
	wg.Wait()

	ids := make(map[string]bool)
	deduped := 0
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
		ids[r.resp.ID] = true
		if r.resp.Deduped {
			deduped++
		}
	}
	fmt.Printf("sdrload: %d submissions → %d distinct jobs, %d deduped at submit\n", total, len(ids), deduped)

	for id := range ids {
		st, err := await(client, base, id)
		if err != nil {
			return err
		}
		if st.State != "done" {
			return fmt.Errorf("job %s finished as %q: %s", id, st.State, st.Error)
		}
		n, err := drainRecords(client, base, id)
		if err != nil {
			return err
		}
		if n != st.Records {
			return fmt.Errorf("job %s: stream served %d lines, status reports %d", id, n, st.Records)
		}
		fmt.Printf("sdrload: job %s done, %d stream lines\n", id, n)
	}

	stats, err := get(client, base+"/v1/stats")
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, stats, 0o644); err != nil {
			return err
		}
	}
	var parsed struct {
		JobsDone  int `json:"jobs_done"`
		DedupHits int `json:"dedup_hits"`
	}
	if err := json.Unmarshal(stats, &parsed); err != nil {
		return fmt.Errorf("parse /v1/stats: %w", err)
	}
	fmt.Printf("sdrload: stats jobs_done=%d dedup_hits=%d\n", parsed.JobsDone, parsed.DedupHits)
	if parsed.JobsDone < len(ids) {
		return fmt.Errorf("expected ≥ %d done jobs, stats report %d", len(ids), parsed.JobsDone)
	}
	if parsed.DedupHits == 0 {
		return fmt.Errorf("expected non-zero dedup hits (%d duplicate submissions were sent)", total-*specs)
	}
	return nil
}

func submit(client *http.Client, base string, body []byte) (submitResponse, error) {
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return submitResponse{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return submitResponse{}, err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return submitResponse{}, fmt.Errorf("submit: %s: %s", resp.Status, data)
	}
	var sr submitResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		return submitResponse{}, fmt.Errorf("submit: parse response: %w", err)
	}
	return sr, nil
}

func await(client *http.Client, base, id string) (jobStatus, error) {
	deadline := time.Now().Add(4 * time.Minute)
	for {
		data, err := get(client, base+"/v1/jobs/"+id)
		if err != nil {
			return jobStatus{}, err
		}
		var st jobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return jobStatus{}, fmt.Errorf("parse status: %w", err)
		}
		switch st.State {
		case "done", "failed", "interrupted":
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s after timeout", id, st.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// drainRecords reads the job's full record stream and counts its lines.
func drainRecords(client *http.Client, base, id string) (int, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id + "/records")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("records: %s", resp.Status)
	}
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		n++
	}
	return n, sc.Err()
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, data)
	}
	return data, nil
}
