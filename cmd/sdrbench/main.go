// Command sdrbench regenerates the experiment tables of the reproduction
// (E1-E10 and the ablations A1-A3; see DESIGN.md for the per-experiment
// index). By default every experiment is run with the full configuration;
// use -experiment to run a single one and -quick for a fast, smaller sweep.
//
// Beyond the paper's tables, -sweep runs an arbitrary algorithm × topology ×
// daemon × fault grid through the scenario registries, -verify sweeps
// exhaustive convergence certification (model checking every daemon choice,
// small n only) over the same grid, and -json writes every rendered table as
// machine-readable BENCH_<id>.json so the benchmark trajectory can be
// tracked across revisions.
//
// -profile-steps k samples every k-th engine step of one profiled run per
// grid cell and prints the per-phase timing table (guard evaluation, daemon
// selection, rule execution, accounting; per-shard execute/boundary-exchange
// with -shards > 1) — with -json it lands as BENCH_PROFILE.json.
//
// -campaign runs a JSON campaign spec (internal/campaign): trials stream to
// CAMPAIGN_<id>.jsonl as they complete (resumable with -resume after an
// interruption), and the per-cell aggregates snapshot to a versioned
// baseline BENCH_<ID>.json. -compare diffs two baselines benchstat-style
// with noise-aware thresholds and exits non-zero on significant regression —
// the CI bench gate.
//
// Usage:
//
//	sdrbench [-experiment E5] [-quick] [-markdown] [-sizes 8,16,32] [-trials 5] [-seed 1] [-parallel 8] [-json] [-json-dir out]
//	sdrbench -sweep -algorithms unison,bfstree -topologies ring,tree,grid -daemons synchronous,distributed-random -sizes 8
//	sdrbench -churn "periodic-corrupt;poisson-mixed" -algorithms unison -topologies ring,torus -sizes 8,16
//	sdrbench -verify -algorithms unison,dominating-set -topologies ring,tree -sizes 4,5,6 -json
//	sdrbench -profile-steps 4 -algorithms unison -topologies torus -sizes 1024 [-shards 4] [-json]
//	sdrbench -campaign spec.json [-resume] [-json-dir out] [-parallel 8]
//	sdrbench -compare [-metric moves] [-threshold 0.1] baselines/BENCH_GATE.json out/BENCH_GATE.json
//	sdrbench -list
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"sdr/internal/bench"
	"sdr/internal/campaign"
	"sdr/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdrbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sdrbench", flag.ContinueOnError)
	var (
		experiment   = fs.String("experiment", "", "run only the experiment with this id (E1..E10, A1..A3); empty runs all")
		quick        = fs.Bool("quick", false, "use the quick configuration (small sizes, few trials)")
		markdown     = fs.Bool("markdown", false, "emit GitHub-flavoured markdown tables instead of aligned text")
		sizes        = fs.String("sizes", "", "comma-separated list of network sizes overriding the configuration")
		trials       = fs.Int("trials", 0, "number of trials per point (0 keeps the configuration default)")
		seed         = fs.Int64("seed", 0, "base random seed (0 keeps the configuration default)")
		parallel     = fs.Int("parallel", 0, "max number of concurrently executed trials (0 = one per CPU, 1 = sequential); tables are identical for every value")
		list         = fs.Bool("list", false, "list the experiments and the scenario registries, then exit")
		jsonOut      = fs.Bool("json", false, "additionally write each table as machine-readable BENCH_<id>.json; with -list, print the machine-readable registry dump instead")
		jsonDir      = fs.String("json-dir", ".", "directory the -json files are written to")
		sweep        = fs.Bool("sweep", false, "run a custom algorithm×topology×daemon×fault grid instead of the paper's tables")
		algorithms   = fs.String("algorithms", "unison", "comma-separated algorithm registry entries for -sweep/-verify")
		topologies   = fs.String("topologies", "ring", "comma-separated topology registry entries for -sweep/-verify")
		daemons      = fs.String("daemons", "distributed-random", "comma-separated daemon registry entries for -sweep")
		faultList    = fs.String("faults", "random-all", "comma-separated fault-model registry entries for -sweep/-verify")
		churnList    = fs.String("churn", "", "semicolon-separated churn schedules (names or grammar forms, whose options contain commas); runs the RECOVERY sweep: per-event re-stabilization costs over the -algorithms × -topologies × ... grid")
		campaignPath = fs.String("campaign", "", "run the JSON campaign spec at this path: stream trials to CAMPAIGN_<id>.jsonl and snapshot a baseline BENCH_<ID>.json in -json-dir")
		resume       = fs.Bool("resume", false, "continue an interrupted -campaign from its JSONL checkpoint")
		compare      = fs.Bool("compare", false, "compare two baseline files (old new) and exit non-zero on significant regression")
		metric       = fs.String("metric", "", "metric compared by -compare (default: the old baseline's primary metric)")
		threshold    = fs.Float64("threshold", 0, "relative mean regression -compare flags (0 = the default 0.10 = +10%)")
		verify       = fs.Bool("verify", false, "exhaustively certify convergence over the -algorithms × -topologies × -sizes grid (model checking, small n only)")
		vStarts      = fs.Int("verify-starts", 4, "number of seeded corrupted starts per -verify cell")
		vMaxConfig   = fs.Int("verify-max-configs", 0, "configuration cap per -verify exploration (0 = checker default)")
		vMaxSel      = fs.Int("verify-max-selection", 1, "daemon selection size cap for -verify: k certifies daemons activating ≤ k processes per step; 0 is exact but exponential")
		shards       = fs.Int("shards", 0, "engine shard count for -sweep/-churn cells (see sim.WithShards); 0 or 1 runs the sequential engine, >1 runs sharded (exact for the synchronous daemon, locally-central family otherwise; memoization is dropped)")
		shardBench   = fs.Bool("shard-bench", false, "benchmark the sharded synchronous engine: one large torus unison∘SDR run per -shard-counts entry, with bit-identity checked across shard counts (writes BENCH_SHARD.json with -json)")
		shardN       = fs.Int("shard-n", 1_000_000, "approximate network size of the -shard-bench torus (rounded up to the next square)")
		shardSteps   = fs.Int("shard-steps", 12, "synchronous steps each -shard-bench run executes")
		shardCounts  = fs.String("shard-counts", "1,2,4", "comma-separated shard counts -shard-bench compares (first entry is the speedup baseline)")
		profileSteps = fs.Int("profile-steps", 0, "sample every k-th engine step and print the per-phase timing table over the -algorithms × -topologies × -daemons × -sizes grid (with -shards > 1: per-shard breakdown); writes BENCH_PROFILE.json with -json")
		memo         = fs.Bool("memo", true, "share each cell's neighbourhood→enabled-rules table across its trials (results are bit-identical either way; -memo=false for A/B timing)")
		memoCap      = fs.Int("memo-cap", 0, "max entries per memo table (0 = the sim package default)")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("create -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start -cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sdrbench: create -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sdrbench: write -memprofile:", err)
			}
		}()
	}

	if *list {
		if *jsonOut {
			// Machine-readable registry dump: the same bytes sdrsim -list
			// -json prints and sdrd serves at GET /v1/registry.
			return scenario.WriteRegistryJSON(out)
		}
		fmt.Fprintln(out, "experiments:")
		for _, e := range bench.Experiments() {
			fmt.Fprintf(out, "  %-4s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(out)
		fmt.Fprintf(out, "sweep algorithms : %s\n", strings.Join(scenario.Algorithms(), ", "))
		fmt.Fprintf(out, "sweep topologies : %s\n", strings.Join(scenario.Topologies(), ", "))
		fmt.Fprintf(out, "sweep daemons    : %s\n", strings.Join(scenario.Daemons(), ", "))
		fmt.Fprintf(out, "sweep faults     : %s\n", strings.Join(scenario.FaultModels(), ", "))
		fmt.Fprintf(out, "churn schedules  : %s\n", strings.Join(scenario.ChurnSchedules(), ", "))
		return nil
	}

	if *compare {
		return runCompare(fs.Args(), *metric, *threshold, out)
	}

	cfg := bench.FullConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			return err
		}
		cfg.Sizes = parsed
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Parallel = *parallel
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.NumCPU()
	}
	cfg.MemoOff = !*memo
	cfg.MemoCap = *memoCap
	if *shards < 0 {
		return fmt.Errorf("-shards must be ≥ 0, got %d", *shards)
	}
	cfg.Shards = *shards

	emit := func(table bench.Table) error {
		if *markdown {
			if err := table.Markdown(out); err != nil {
				return err
			}
		} else {
			if err := table.Render(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		if *jsonOut {
			if err := writeTableJSON(*jsonDir, table, out); err != nil {
				return err
			}
		}
		return nil
	}

	if *shardBench {
		counts, err := parseCounts(*shardCounts)
		if err != nil {
			return fmt.Errorf("-shard-counts: %w", err)
		}
		table, err := bench.RunShardBench(*shardN, *shardSteps, counts, cfg.Seed)
		if err != nil {
			return err
		}
		if err := emit(table); err != nil {
			return err
		}
		if table.Violations > 0 {
			return fmt.Errorf("%d shard count(s) diverged from the first shard count's final configuration", table.Violations)
		}
		return nil
	}

	if *profileSteps != 0 {
		if *profileSteps < 0 {
			return fmt.Errorf("-profile-steps must be ≥ 1, got %d", *profileSteps)
		}
		sw := scenario.Sweep{
			Algorithms: splitNames(*algorithms),
			Topologies: splitNames(*topologies),
			Daemons:    splitNames(*daemons),
			Faults:     splitNames(*faultList),
			Sizes:      cfg.Sizes,
			Trials:     1,
			Seed:       cfg.Seed,
			MaxSteps:   cfg.MaxSteps,
			Shards:     cfg.Shards,
		}
		table, err := bench.RunProfile(sw, *profileSteps, cfg)
		if err != nil {
			return err
		}
		return emit(table)
	}

	if *campaignPath != "" {
		return runCampaign(*campaignPath, *jsonDir, *resume, *markdown, cfg, out)
	}

	if *verify {
		if cfg.Shards > 1 {
			return fmt.Errorf("-shards is not supported with -verify: exhaustive certification explores the sequential engine only")
		}
		if *sizes == "" {
			// Exhaustive exploration is exponential in n; default to the
			// certifiable sizes instead of the sampling sweep's n ≤ 64.
			cfg.Sizes = []int{4, 5, 6}
		}
		sw := scenario.Sweep{
			Algorithms: splitNames(*algorithms),
			Topologies: splitNames(*topologies),
			Faults:     splitNames(*faultList),
			Sizes:      cfg.Sizes,
			Seed:       cfg.Seed,
		}
		table, err := bench.RunVerify(sw, bench.VerifyConfig{
			Starts:            *vStarts,
			MaxConfigurations: *vMaxConfig,
			MaxSelectionSize:  *vMaxSel,
		}, cfg.Parallel)
		if err != nil {
			return err
		}
		if err := emit(table); err != nil {
			return err
		}
		if table.Violations > 0 {
			return fmt.Errorf("%d verification cell(s) were refuted or incomplete", table.Violations)
		}
		return nil
	}

	if *churnList != "" {
		sw := scenario.Sweep{
			Algorithms: splitNames(*algorithms),
			Topologies: splitNames(*topologies),
			Daemons:    splitNames(*daemons),
			Faults:     splitNames(*faultList),
			Churns:     splitNamesOn(*churnList, ";"),
			Sizes:      cfg.Sizes,
			Trials:     cfg.Trials,
			Seed:       cfg.Seed,
			MaxSteps:   cfg.MaxSteps,
			Shards:     cfg.Shards,
		}
		table, err := bench.RunRecovery(sw, cfg)
		if err != nil {
			return err
		}
		if err := emit(table); err != nil {
			return err
		}
		if table.Violations > 0 {
			return fmt.Errorf("%d churn cell(s) had unrecovered events or failed their correctness check", table.Violations)
		}
		return nil
	}

	if *sweep {
		sw := scenario.Sweep{
			Algorithms: splitNames(*algorithms),
			Topologies: splitNames(*topologies),
			Daemons:    splitNames(*daemons),
			Faults:     splitNames(*faultList),
			Sizes:      cfg.Sizes,
			Trials:     cfg.Trials,
			Seed:       cfg.Seed,
			MaxSteps:   cfg.MaxSteps,
			Shards:     cfg.Shards,
		}
		table, err := bench.RunSweep(sw, cfg)
		if err != nil {
			return err
		}
		if err := emit(table); err != nil {
			return err
		}
		if table.Violations > 0 {
			return fmt.Errorf("%d sweep cell(s) failed their correctness check", table.Violations)
		}
		return nil
	}

	experiments := bench.Experiments()
	if *experiment != "" {
		e, err := bench.ExperimentByID(*experiment)
		if err != nil {
			return err
		}
		experiments = []bench.Experiment{e}
	}

	violations := 0
	for _, e := range experiments {
		table := e.Run(cfg)
		violations += table.Violations
		if err := emit(table); err != nil {
			return err
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d measurement(s) violated a proven bound or failed a correctness check", violations)
	}
	return nil
}

// campaignInterrupt returns the channel campaign.Run polls for a graceful
// stop — closed on the first SIGINT/SIGTERM — plus a cleanup restoring the
// default signal disposition (so a second signal kills the process outright).
// Tests override the variable to trigger deterministic interrupts.
var campaignInterrupt = func() (<-chan struct{}, func()) {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		if _, ok := <-sigs; ok {
			signal.Stop(sigs)
			close(stop)
		}
	}()
	return stop, func() { signal.Stop(sigs); close(sigs) }
}

// runCampaign executes the campaign spec file: trial records stream to
// <jsonDir>/CAMPAIGN_<id>.jsonl, the aggregate table renders to out, and the
// baseline snapshot is written as <jsonDir>/BENCH_<ID>.json (rotating any
// previous snapshot). SIGINT/SIGTERM stop the campaign gracefully: the JSONL
// checkpoint is flushed, and the run exits non-zero with a -resume hint.
// Only cfg's execution knobs are read: Parallel, and MemoOff/MemoCap (a
// -memo=false run disables memoization even when the spec leaves it on).
func runCampaign(specPath, jsonDir string, resume, markdown bool, cfg bench.Config, out io.Writer) error {
	spec, err := campaign.LoadSpec(specPath)
	if err != nil {
		return err
	}
	if cfg.MemoOff {
		spec.MemoOff = true
	}
	jsonlPath := filepath.Join(jsonDir, fmt.Sprintf("CAMPAIGN_%s.jsonl", spec.ID))
	fmt.Fprintf(out, "campaign %s → %s\n", spec.ID, jsonlPath)
	interrupt, stopNotify := campaignInterrupt()
	defer stopNotify()
	res, err := campaign.Run(spec, jsonlPath, campaign.Options{
		Parallel:  cfg.Parallel,
		MemoCap:   cfg.MemoCap,
		Resume:    resume,
		Progress:  out,
		Interrupt: interrupt,
	})
	if errors.Is(err, campaign.ErrInterrupted) {
		return fmt.Errorf("%w; completed trials are checkpointed in %s — resume with -resume", err, jsonlPath)
	}
	if err != nil {
		return err
	}
	table := res.Table()
	if markdown {
		if err := table.Markdown(out); err != nil {
			return err
		}
	} else {
		if err := table.Render(out); err != nil {
			return err
		}
	}
	baselinePath := filepath.Join(jsonDir, fmt.Sprintf("BENCH_%s.json", table.ID))
	if err := writeJSONFile(baselinePath, out, func(f io.Writer) error {
		return campaign.WriteBaseline(f, res.Snapshot(campaign.CollectMeta()))
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "baseline: %s\n", baselinePath)
	if table.Violations > 0 {
		return fmt.Errorf("%d campaign cell(s) failed their correctness check", table.Violations)
	}
	return nil
}

// runCompare diffs two baseline files and fails on significant regression.
func runCompare(paths []string, metric string, threshold float64, out io.Writer) error {
	if len(paths) != 2 {
		return fmt.Errorf("-compare needs exactly two baseline files (old new), got %d", len(paths))
	}
	old, err := campaign.LoadBaseline(paths[0])
	if err != nil {
		return err
	}
	cur, err := campaign.LoadBaseline(paths[1])
	if err != nil {
		return err
	}
	comparison, err := campaign.Compare(old, cur, campaign.CompareOptions{Metric: metric, Threshold: threshold})
	if err != nil {
		return err
	}
	if err := comparison.Render(out); err != nil {
		return err
	}
	if comparison.Compared == 0 {
		// Zero matched cells means the gate checked nothing (wrong artifact,
		// renamed campaign, unrecorded metric) — that must not pass.
		return fmt.Errorf("no comparable cells between %s and %s on %s", paths[0], paths[1], comparison.Metric)
	}
	if comparison.Regressions > 0 {
		return fmt.Errorf("%d cell(s) regressed significantly on %s", comparison.Regressions, comparison.Metric)
	}
	return nil
}

// writeTableJSON writes the table as BENCH_<id>.json in dir, noting any
// rotation of an earlier table on out.
func writeTableJSON(dir string, table bench.Table, out io.Writer) error {
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", table.ID))
	return writeJSONFile(path, out, func(f io.Writer) error {
		return table.JSON(f)
	})
}

// writeJSONFile writes a JSON artifact at path via write, first rotating any
// existing file to a numbered backup (path.1, path.2, ...) instead of
// silently overwriting earlier results; rotations are noted on out.
func writeJSONFile(path string, out io.Writer, write func(io.Writer) error) error {
	if backup, err := rotateExisting(path); err != nil {
		return err
	} else if backup != "" {
		fmt.Fprintf(out, "note: rotated existing %s to %s\n", path, backup)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// rotateExisting moves an existing file at path to the first free numbered
// backup and returns the backup name ("" when path did not exist).
func rotateExisting(path string) (string, error) {
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		return "", nil
	} else if err != nil {
		return "", fmt.Errorf("stat %s: %w", path, err)
	}
	for k := 1; ; k++ {
		backup := fmt.Sprintf("%s.%d", path, k)
		if _, err := os.Stat(backup); errors.Is(err, os.ErrNotExist) {
			if err := os.Rename(path, backup); err != nil {
				return "", fmt.Errorf("rotate %s: %w", path, err)
			}
			return backup, nil
		} else if err != nil {
			return "", fmt.Errorf("stat %s: %w", backup, err)
		}
	}
}

// splitNames parses a comma-separated name list, dropping empty parts.
func splitNames(s string) []string { return splitNamesOn(s, ",") }

// splitNamesOn parses a name list on the given separator, dropping empty
// parts. The churn flag separates on semicolons because churn grammar forms
// contain commas.
func splitNamesOn(s, sep string) []string {
	var names []string
	for _, part := range strings.Split(s, sep) {
		part = strings.TrimSpace(part)
		if part != "" {
			names = append(names, part)
		}
	}
	return names
}

// parseCounts parses a comma-separated list of shard counts (integers ≥ 1).
func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("invalid shard count %q (want integers ≥ 1)", part)
		}
		counts = append(counts, k)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("no shard counts given")
	}
	return counts, nil
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid size %q (want integers ≥ 2)", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return sizes, nil
}
