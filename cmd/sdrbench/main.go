// Command sdrbench regenerates the experiment tables of the reproduction
// (E1-E10 and the ablations A1-A3; see DESIGN.md for the per-experiment
// index). By default every experiment is run with the full configuration;
// use -experiment to run a single one and -quick for a fast, smaller sweep.
//
// Usage:
//
//	sdrbench [-experiment E5] [-quick] [-markdown] [-sizes 8,16,32] [-trials 5] [-seed 1] [-parallel 8]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"sdr/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdrbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sdrbench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "", "run only the experiment with this id (E1..E10, A1..A3); empty runs all")
		quick      = fs.Bool("quick", false, "use the quick configuration (small sizes, few trials)")
		markdown   = fs.Bool("markdown", false, "emit GitHub-flavoured markdown tables instead of aligned text")
		sizes      = fs.String("sizes", "", "comma-separated list of network sizes overriding the configuration")
		trials     = fs.Int("trials", 0, "number of trials per point (0 keeps the configuration default)")
		seed       = fs.Int64("seed", 0, "base random seed (0 keeps the configuration default)")
		parallel   = fs.Int("parallel", 0, "max number of concurrently executed trials (0 = one per CPU, 1 = sequential); tables are identical for every value")
		list       = fs.Bool("list", false, "list the experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(out, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := bench.FullConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			return err
		}
		cfg.Sizes = parsed
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Parallel = *parallel
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.NumCPU()
	}

	experiments := bench.Experiments()
	if *experiment != "" {
		e, err := bench.ExperimentByID(*experiment)
		if err != nil {
			return err
		}
		experiments = []bench.Experiment{e}
	}

	violations := 0
	for _, e := range experiments {
		table := e.Run(cfg)
		violations += table.Violations
		var err error
		if *markdown {
			err = table.Markdown(out)
		} else {
			err = table.Render(out)
			fmt.Fprintln(out)
		}
		if err != nil {
			return err
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d measurement(s) violated a proven bound or failed a correctness check", violations)
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid size %q (want integers ≥ 2)", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return sizes, nil
}
