// Command sdrbench regenerates the experiment tables of the reproduction
// (E1-E10 and the ablations A1-A3; see DESIGN.md for the per-experiment
// index). By default every experiment is run with the full configuration;
// use -experiment to run a single one and -quick for a fast, smaller sweep.
//
// Beyond the paper's tables, -sweep runs an arbitrary algorithm × topology ×
// daemon × fault grid through the scenario registries, -verify sweeps
// exhaustive convergence certification (model checking every daemon choice,
// small n only) over the same grid, and -json writes every rendered table as
// machine-readable BENCH_<id>.json so the benchmark trajectory can be
// tracked across revisions.
//
// Usage:
//
//	sdrbench [-experiment E5] [-quick] [-markdown] [-sizes 8,16,32] [-trials 5] [-seed 1] [-parallel 8] [-json] [-json-dir out]
//	sdrbench -sweep -algorithms unison,bfstree -topologies ring,tree,grid -daemons synchronous,distributed-random -sizes 8
//	sdrbench -verify -algorithms unison,dominating-set -topologies ring,tree -sizes 4,5,6 -json
//	sdrbench -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"sdr/internal/bench"
	"sdr/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdrbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sdrbench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "", "run only the experiment with this id (E1..E10, A1..A3); empty runs all")
		quick      = fs.Bool("quick", false, "use the quick configuration (small sizes, few trials)")
		markdown   = fs.Bool("markdown", false, "emit GitHub-flavoured markdown tables instead of aligned text")
		sizes      = fs.String("sizes", "", "comma-separated list of network sizes overriding the configuration")
		trials     = fs.Int("trials", 0, "number of trials per point (0 keeps the configuration default)")
		seed       = fs.Int64("seed", 0, "base random seed (0 keeps the configuration default)")
		parallel   = fs.Int("parallel", 0, "max number of concurrently executed trials (0 = one per CPU, 1 = sequential); tables are identical for every value")
		list       = fs.Bool("list", false, "list the experiments and the scenario registries, then exit")
		jsonOut    = fs.Bool("json", false, "additionally write each table as machine-readable BENCH_<id>.json")
		jsonDir    = fs.String("json-dir", ".", "directory the -json files are written to")
		sweep      = fs.Bool("sweep", false, "run a custom algorithm×topology×daemon×fault grid instead of the paper's tables")
		algorithms = fs.String("algorithms", "unison", "comma-separated algorithm registry entries for -sweep/-verify")
		topologies = fs.String("topologies", "ring", "comma-separated topology registry entries for -sweep/-verify")
		daemons    = fs.String("daemons", "distributed-random", "comma-separated daemon registry entries for -sweep")
		faultList  = fs.String("faults", "random-all", "comma-separated fault-model registry entries for -sweep/-verify")
		verify     = fs.Bool("verify", false, "exhaustively certify convergence over the -algorithms × -topologies × -sizes grid (model checking, small n only)")
		vStarts    = fs.Int("verify-starts", 4, "number of seeded corrupted starts per -verify cell")
		vMaxConfig = fs.Int("verify-max-configs", 0, "configuration cap per -verify exploration (0 = checker default)")
		vMaxSel    = fs.Int("verify-max-selection", 1, "daemon selection size cap for -verify: k certifies daemons activating ≤ k processes per step; 0 is exact but exponential")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(out, "experiments:")
		for _, e := range bench.Experiments() {
			fmt.Fprintf(out, "  %-4s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(out)
		fmt.Fprintf(out, "sweep algorithms : %s\n", strings.Join(scenario.Algorithms(), ", "))
		fmt.Fprintf(out, "sweep topologies : %s\n", strings.Join(scenario.Topologies(), ", "))
		fmt.Fprintf(out, "sweep daemons    : %s\n", strings.Join(scenario.Daemons(), ", "))
		fmt.Fprintf(out, "sweep faults     : %s\n", strings.Join(scenario.FaultModels(), ", "))
		return nil
	}

	cfg := bench.FullConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			return err
		}
		cfg.Sizes = parsed
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Parallel = *parallel
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.NumCPU()
	}

	emit := func(table bench.Table) error {
		if *markdown {
			if err := table.Markdown(out); err != nil {
				return err
			}
		} else {
			if err := table.Render(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		if *jsonOut {
			if err := writeTableJSON(*jsonDir, table); err != nil {
				return err
			}
		}
		return nil
	}

	if *verify {
		if *sizes == "" {
			// Exhaustive exploration is exponential in n; default to the
			// certifiable sizes instead of the sampling sweep's n ≤ 64.
			cfg.Sizes = []int{4, 5, 6}
		}
		sw := scenario.Sweep{
			Algorithms: splitNames(*algorithms),
			Topologies: splitNames(*topologies),
			Faults:     splitNames(*faultList),
			Sizes:      cfg.Sizes,
			Seed:       cfg.Seed,
		}
		table, err := bench.RunVerify(sw, bench.VerifyConfig{
			Starts:            *vStarts,
			MaxConfigurations: *vMaxConfig,
			MaxSelectionSize:  *vMaxSel,
		}, cfg.Parallel)
		if err != nil {
			return err
		}
		if err := emit(table); err != nil {
			return err
		}
		if table.Violations > 0 {
			return fmt.Errorf("%d verification cell(s) were refuted or incomplete", table.Violations)
		}
		return nil
	}

	if *sweep {
		sw := scenario.Sweep{
			Algorithms: splitNames(*algorithms),
			Topologies: splitNames(*topologies),
			Daemons:    splitNames(*daemons),
			Faults:     splitNames(*faultList),
			Sizes:      cfg.Sizes,
			Trials:     cfg.Trials,
			Seed:       cfg.Seed,
			MaxSteps:   cfg.MaxSteps,
		}
		table, err := bench.RunSweep(sw, cfg.Parallel)
		if err != nil {
			return err
		}
		if err := emit(table); err != nil {
			return err
		}
		if table.Violations > 0 {
			return fmt.Errorf("%d sweep cell(s) failed their correctness check", table.Violations)
		}
		return nil
	}

	experiments := bench.Experiments()
	if *experiment != "" {
		e, err := bench.ExperimentByID(*experiment)
		if err != nil {
			return err
		}
		experiments = []bench.Experiment{e}
	}

	violations := 0
	for _, e := range experiments {
		table := e.Run(cfg)
		violations += table.Violations
		if err := emit(table); err != nil {
			return err
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d measurement(s) violated a proven bound or failed a correctness check", violations)
	}
	return nil
}

// writeTableJSON writes the table as BENCH_<id>.json in dir.
func writeTableJSON(dir string, table bench.Table) error {
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", table.ID))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := table.JSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitNames parses a comma-separated name list, dropping empty parts.
func splitNames(s string) []string {
	var names []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			names = append(names, part)
		}
	}
	return names
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid size %q (want integers ≥ 2)", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return sizes, nil
}
