package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdr/internal/scenario"
)

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, want := range []string{"E1", "E10", "A3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %s:\n%s", want, out.String())
		}
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-experiment", "E8", "-sizes", "6", "-trials", "1", "-seed", "5"}, &out)
	if err != nil {
		t.Fatalf("run E8: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "E8") || !strings.Contains(text, "bound 5n+4") {
		t.Errorf("unexpected E8 output:\n%s", text)
	}
	if !strings.Contains(text, "OK") {
		t.Errorf("the E8 run should report no violations:\n%s", text)
	}
}

func TestRunSingleExperimentMarkdown(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-experiment", "E3", "-quick", "-sizes", "6", "-trials", "1", "-markdown"}, &out)
	if err != nil {
		t.Fatalf("run E3 markdown: %v", err)
	}
	if !strings.Contains(out.String(), "### E3") || !strings.Contains(out.String(), "|") {
		t.Errorf("markdown output looks wrong:\n%s", out.String())
	}
}

func TestParallelFlagDeterministic(t *testing.T) {
	var sequential, parallel bytes.Buffer
	base := []string{"-experiment", "E8", "-sizes", "6,8", "-trials", "2", "-seed", "5"}
	if err := run(append(base, "-parallel", "1"), &sequential); err != nil {
		t.Fatalf("run sequential: %v", err)
	}
	if err := run(append(base, "-parallel", "4"), &parallel); err != nil {
		t.Fatalf("run parallel: %v", err)
	}
	if sequential.String() != parallel.String() {
		t.Errorf("-parallel changed the table:\n%s\nvs\n%s", sequential.String(), parallel.String())
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-experiment", "E8", "-sizes", "6", "-trials", "1", "-seed", "5", "-json", "-json-dir", dir}, &out)
	if err != nil {
		t.Fatalf("run E8 -json: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_E8.json"))
	if err != nil {
		t.Fatalf("BENCH_E8.json not written: %v", err)
	}
	var table struct {
		ID         string
		Columns    []string
		Rows       [][]string
		Violations int
	}
	if err := json.Unmarshal(data, &table); err != nil {
		t.Fatalf("BENCH_E8.json is not valid JSON: %v", err)
	}
	if table.ID != "E8" || len(table.Rows) == 0 || len(table.Columns) == 0 {
		t.Errorf("unexpected JSON table: %+v", table)
	}
	if table.Violations != 0 {
		t.Errorf("E8 reported %d violations", table.Violations)
	}
}

func TestSweepMode(t *testing.T) {
	var out bytes.Buffer
	args := []string{
		"-sweep",
		"-algorithms", "unison,bfstree,dominating-set",
		"-topologies", "ring,tree,grid",
		"-daemons", "synchronous,distributed-random",
		"-sizes", "8", "-trials", "1", "-seed", "3",
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("run -sweep: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "SWEEP") || !strings.Contains(text, "dominating-set") {
		t.Errorf("sweep output looks wrong:\n%s", text)
	}
	if got := strings.Count(text, "yes"); got != 3*3*2 {
		t.Errorf("expected %d ok cells, counted %d:\n%s", 3*3*2, got, text)
	}

	// Unknown registry names must be rejected.
	var errOut bytes.Buffer
	if err := run([]string{"-sweep", "-algorithms", "nope"}, &errOut); err == nil {
		t.Error("a sweep over an unknown algorithm must fail")
	}
}

func TestChurnMode(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{
		"-churn", "periodic:events=2,every=100,kinds=corrupt-fraction+edge-drop",
		"-algorithms", "unison",
		"-topologies", "ring,torus",
		"-daemons", "distributed-random",
		"-sizes", "8", "-trials", "2", "-seed", "7",
		"-json", "-json-dir", dir,
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("run -churn: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"RECOVERY", "rec-rounds(p50)", "avail(mean)"} {
		if !strings.Contains(text, want) {
			t.Errorf("churn output missing %q:\n%s", want, text)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_RECOVERY.json"))
	if err != nil {
		t.Fatalf("BENCH_RECOVERY.json not written: %v", err)
	}
	var table struct {
		ID         string
		Rows       [][]string
		Violations int
	}
	if err := json.Unmarshal(data, &table); err != nil {
		t.Fatalf("BENCH_RECOVERY.json is not valid JSON: %v", err)
	}
	if table.ID != "RECOVERY" || len(table.Rows) != 2 || table.Violations != 0 {
		t.Errorf("unexpected recovery table: %+v", table)
	}

	// An unparseable schedule must be rejected.
	var errOut bytes.Buffer
	if err := run([]string{"-churn", "no-such-schedule"}, &errOut); err == nil {
		t.Error("an unknown churn schedule must fail")
	}
}

func TestVerifyMode(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{
		"-verify",
		"-algorithms", "unison,dominating-set",
		"-topologies", "ring",
		"-sizes", "4,5", "-seed", "1",
		"-verify-starts", "3",
		"-json", "-json-dir", dir,
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("run -verify: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "VERIFY") || strings.Count(text, "certified") != 4 {
		t.Errorf("verify output looks wrong:\n%s", text)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_VERIFY.json"))
	if err != nil {
		t.Fatalf("BENCH_VERIFY.json not written: %v", err)
	}
	var table struct {
		ID         string
		Rows       [][]string
		Violations int
	}
	if err := json.Unmarshal(data, &table); err != nil {
		t.Fatalf("BENCH_VERIFY.json is not valid JSON: %v", err)
	}
	if table.ID != "VERIFY" || len(table.Rows) != 4 || table.Violations != 0 {
		t.Errorf("unexpected verification table: %+v", table)
	}

	// A truncated exploration must fail the command (non-zero exit), so CI
	// cannot silently pass an uncovered space.
	var truncated bytes.Buffer
	err = run([]string{"-verify", "-algorithms", "unison", "-topologies", "ring", "-sizes", "5", "-verify-max-configs", "20"}, &truncated)
	if err == nil {
		t.Error("an incomplete verification must fail the command")
	}
}

func TestListIncludesRegistries(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, want := range []string{"sweep algorithms", "unison-uncoop", "hypercube", "greedy-adversarial", "fake-wave"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "E42"}, &out); err == nil {
		t.Error("an unknown experiment id must be rejected")
	}
}

func TestParseSizes(t *testing.T) {
	sizes, err := parseSizes("8, 16,24")
	if err != nil || len(sizes) != 3 || sizes[0] != 8 || sizes[2] != 24 {
		t.Errorf("parseSizes = %v, %v", sizes, err)
	}
	for _, bad := range []string{"", "abc", "8,-2", "1"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) should fail", bad)
		}
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("unknown flags must be rejected")
	}
}

// TestListJSONMatchesRegistryDump pins -list -json to the shared encoder:
// the CLI output must be byte-identical to scenario.WriteRegistryJSON (and
// therefore to sdrsim -list -json and the sdrd /v1/registry body).
func TestListJSONMatchesRegistryDump(t *testing.T) {
	var got bytes.Buffer
	if err := run([]string{"-list", "-json"}, &got); err != nil {
		t.Fatalf("run -list -json: %v", err)
	}
	var want bytes.Buffer
	if err := scenario.WriteRegistryJSON(&want); err != nil {
		t.Fatalf("WriteRegistryJSON: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("-list -json diverged from scenario.WriteRegistryJSON:\ngot:\n%s\nwant:\n%s", got.Bytes(), want.Bytes())
	}
}

func TestShardBenchMode(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{
		"-shard-bench", "-shard-n", "256", "-shard-steps", "4",
		"-shard-counts", "1,2", "-seed", "9", "-json", "-json-dir", dir,
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("run -shard-bench: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "SHARD") || strings.Count(text, "true") != 2 {
		t.Errorf("shard bench output looks wrong:\n%s", text)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_SHARD.json"))
	if err != nil {
		t.Fatalf("read BENCH_SHARD.json: %v", err)
	}
	var table struct {
		ID         string
		Rows       [][]string
		Violations int
	}
	if err := json.Unmarshal(data, &table); err != nil {
		t.Fatalf("unmarshal BENCH_SHARD.json: %v", err)
	}
	if table.ID != "SHARD" || len(table.Rows) != 2 || table.Violations != 0 {
		t.Errorf("unexpected BENCH_SHARD.json: %+v", table)
	}
}

func TestProfileStepsMode(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{
		"-profile-steps", "2",
		"-algorithms", "unison", "-topologies", "torus",
		"-daemons", "synchronous", "-sizes", "64",
		"-seed", "7", "-json", "-json-dir", dir,
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("run -profile-steps: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"PROFILE", "guard_eval", "step_wall", "cover"} {
		if !strings.Contains(text, want) {
			t.Errorf("profile output missing %q:\n%s", want, text)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_PROFILE.json"))
	if err != nil {
		t.Fatalf("read BENCH_PROFILE.json: %v", err)
	}
	var table struct {
		ID   string
		Rows [][]string
	}
	if err := json.Unmarshal(data, &table); err != nil {
		t.Fatalf("unmarshal BENCH_PROFILE.json: %v", err)
	}
	if table.ID != "PROFILE" || len(table.Rows) == 0 {
		t.Errorf("unexpected BENCH_PROFILE.json: %+v", table)
	}

	if err := run([]string{"-profile-steps", "-3"}, &out); err == nil {
		t.Error("negative -profile-steps must be rejected")
	}
}

func TestShardedSweepMatchesSequentialSynchronous(t *testing.T) {
	base := []string{
		"-sweep",
		"-algorithms", "unison,bfstree",
		"-topologies", "ring,grid",
		"-daemons", "synchronous",
		"-sizes", "16", "-trials", "2", "-seed", "3",
	}
	var seq, sharded bytes.Buffer
	if err := run(base, &seq); err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	if err := run(append(append([]string{}, base...), "-shards", "2"), &sharded); err != nil {
		t.Fatalf("sharded sweep: %v", err)
	}
	// Sharded cells skip memoization, so the memo-hit% column differs (and
	// with it the column padding); every measurement column must agree
	// (synchronous sharding is exact). Normalize by splitting rows into
	// fields and blanking memo-hit values ("-" or a percentage).
	normalize := func(s string) string {
		var lines []string
		for _, l := range strings.Split(s, "\n") {
			f := strings.Fields(l)
			for i, tok := range f {
				if tok == "-" || strings.HasSuffix(tok, "%") {
					f[i] = "_"
				}
			}
			lines = append(lines, strings.Join(f, " "))
		}
		return strings.Join(lines, "\n")
	}
	if normalize(seq.String()) != normalize(sharded.String()) {
		t.Errorf("sharded synchronous sweep diverges:\n--- sequential\n%s--- sharded\n%s", seq.String(), sharded.String())
	}
}

func TestShardsRejectedUnderVerify(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-verify", "-shards", "2", "-sizes", "4", "-algorithms", "unison", "-topologies", "ring"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("-verify -shards 2 must be rejected, got %v", err)
	}
}
