package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, want := range []string{"E1", "E10", "A3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %s:\n%s", want, out.String())
		}
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-experiment", "E8", "-sizes", "6", "-trials", "1", "-seed", "5"}, &out)
	if err != nil {
		t.Fatalf("run E8: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "E8") || !strings.Contains(text, "bound 5n+4") {
		t.Errorf("unexpected E8 output:\n%s", text)
	}
	if !strings.Contains(text, "OK") {
		t.Errorf("the E8 run should report no violations:\n%s", text)
	}
}

func TestRunSingleExperimentMarkdown(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-experiment", "E3", "-quick", "-sizes", "6", "-trials", "1", "-markdown"}, &out)
	if err != nil {
		t.Fatalf("run E3 markdown: %v", err)
	}
	if !strings.Contains(out.String(), "### E3") || !strings.Contains(out.String(), "|") {
		t.Errorf("markdown output looks wrong:\n%s", out.String())
	}
}

func TestParallelFlagDeterministic(t *testing.T) {
	var sequential, parallel bytes.Buffer
	base := []string{"-experiment", "E8", "-sizes", "6,8", "-trials", "2", "-seed", "5"}
	if err := run(append(base, "-parallel", "1"), &sequential); err != nil {
		t.Fatalf("run sequential: %v", err)
	}
	if err := run(append(base, "-parallel", "4"), &parallel); err != nil {
		t.Fatalf("run parallel: %v", err)
	}
	if sequential.String() != parallel.String() {
		t.Errorf("-parallel changed the table:\n%s\nvs\n%s", sequential.String(), parallel.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "E42"}, &out); err == nil {
		t.Error("an unknown experiment id must be rejected")
	}
}

func TestParseSizes(t *testing.T) {
	sizes, err := parseSizes("8, 16,24")
	if err != nil || len(sizes) != 3 || sizes[0] != 8 || sizes[2] != 24 {
		t.Errorf("parseSizes = %v, %v", sizes, err)
	}
	for _, bad := range []string{"", "abc", "8,-2", "1"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) should fail", bad)
		}
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("unknown flags must be rejected")
	}
}
