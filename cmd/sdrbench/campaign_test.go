package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sdr/internal/campaign"
)

// writeSpec writes a small campaign spec file and returns its path.
func writeSpec(t *testing.T, dir string) string {
	t.Helper()
	spec := campaign.Spec{
		ID:         "gate",
		Algorithms: []string{"unison", "bfstree"},
		Topologies: []string{"ring", "tree"},
		Daemons:    []string{"synchronous"},
		Faults:     []string{"random-all"},
		Sizes:      []int{8},
		Seed:       1,
		MinTrials:  8,
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "gate.campaign.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCampaignMode(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	var out bytes.Buffer
	if err := run([]string{"-campaign", spec, "-json-dir", dir, "-parallel", "2"}, &out); err != nil {
		t.Fatalf("run -campaign: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"campaign gate", "GATE", "trials=8", "baseline:"} {
		if !strings.Contains(text, want) {
			t.Errorf("campaign output missing %q:\n%s", want, text)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "CAMPAIGN_gate.jsonl")); err != nil {
		t.Errorf("JSONL stream not written: %v", err)
	}
	b, err := campaign.LoadBaseline(filepath.Join(dir, "BENCH_GATE.json"))
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	if b.ID != "gate" || b.Metric != "moves" || len(b.Cells) != 4 {
		t.Errorf("unexpected baseline: id=%q metric=%q cells=%d", b.ID, b.Metric, len(b.Cells))
	}
	if b.Meta.GoVersion == "" || b.Meta.Host == "" {
		t.Errorf("baseline meta not fingerprinted: %+v", b.Meta)
	}

	// Re-running without -resume must refuse the existing JSONL stream.
	if err := run([]string{"-campaign", spec, "-json-dir", dir}, &out); err == nil {
		t.Error("rerunning onto an existing stream without -resume must fail")
	}
	// With -resume the completed campaign is a no-op that re-renders and
	// rotates the baseline instead of overwriting it.
	out.Reset()
	if err := run([]string{"-campaign", spec, "-json-dir", dir, "-resume"}, &out); err != nil {
		t.Fatalf("resume of a completed campaign: %v", err)
	}
	if !strings.Contains(out.String(), "rotated existing") {
		t.Errorf("expected a rotation note:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_GATE.json.1")); err != nil {
		t.Errorf("previous baseline not rotated: %v", err)
	}
}

// interruptingWriter closes stop the first time a per-cell progress line
// passes through it, simulating a SIGINT arriving after the first completed
// cell — a deterministic cut point.
type interruptingWriter struct {
	stop chan struct{}
	once sync.Once
	buf  bytes.Buffer
}

func (w *interruptingWriter) Write(p []byte) (int, error) {
	w.buf.Write(p)
	if bytes.Contains(p, []byte("trials=")) {
		w.once.Do(func() { close(w.stop) })
	}
	return len(p), nil
}

// TestCampaignInterruptCheckpointsAndHintsResume pins the signal-handling
// contract of -campaign: an interrupt mid-campaign flushes the JSONL
// checkpoint, fails the run (main exits non-zero) with a "resume with
// -resume" hint, and a later -resume completes the byte-identical stream.
func TestCampaignInterruptCheckpointsAndHintsResume(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)

	// Uninterrupted reference stream.
	refDir := filepath.Join(dir, "ref")
	os.MkdirAll(refDir, 0o755)
	var refOut bytes.Buffer
	if err := run([]string{"-campaign", spec, "-json-dir", refDir}, &refOut); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(filepath.Join(refDir, "CAMPAIGN_gate.jsonl"))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the override stands in for the SIGINT/SIGTERM notifier
	// and fires after the first completed cell.
	orig := campaignInterrupt
	defer func() { campaignInterrupt = orig }()
	w := &interruptingWriter{stop: make(chan struct{})}
	campaignInterrupt = func() (<-chan struct{}, func()) { return w.stop, func() {} }
	err = run([]string{"-campaign", spec, "-json-dir", dir}, w)
	if err == nil || !strings.Contains(err.Error(), "resume with -resume") {
		t.Fatalf("interrupted campaign must fail with a resume hint, got %v\n%s", err, w.buf.String())
	}
	jsonlPath := filepath.Join(dir, "CAMPAIGN_gate.jsonl")
	partial, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatalf("interrupted campaign left no checkpoint: %v", err)
	}
	if !bytes.HasPrefix(whole, partial) || len(partial) == len(whole) {
		t.Fatalf("checkpoint is not a strict prefix of the uninterrupted stream:\n%q", partial)
	}

	// Resuming completes the stream byte-identically.
	campaignInterrupt = func() (<-chan struct{}, func()) { return make(chan struct{}), func() {} }
	var out bytes.Buffer
	if err := run([]string{"-campaign", spec, "-json-dir", dir, "-resume"}, &out); err != nil {
		t.Fatalf("resume after interrupt: %v\n%s", err, out.String())
	}
	resumed, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, whole) {
		t.Errorf("resumed stream diverged from the uninterrupted one:\n%q\nvs\n%q", resumed, whole)
	}
}

func TestCompareModeToleratesRerunAndFlagsSlowdown(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	oldDir, newDir := filepath.Join(dir, "old"), filepath.Join(dir, "new")
	os.MkdirAll(oldDir, 0o755)
	os.MkdirAll(newDir, 0o755)
	var out bytes.Buffer
	if err := run([]string{"-campaign", spec, "-json-dir", oldDir}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-campaign", spec, "-json-dir", newDir}, &out); err != nil {
		t.Fatal(err)
	}
	oldPath := filepath.Join(oldDir, "BENCH_GATE.json")
	newPath := filepath.Join(newDir, "BENCH_GATE.json")

	// Seeded re-runs of the same binary must pass the gate.
	out.Reset()
	if err := run([]string{"-compare", oldPath, newPath}, &out); err != nil {
		t.Fatalf("comparing two seeded re-runs must pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 regression(s)") {
		t.Errorf("expected a clean comparison:\n%s", out.String())
	}

	// Injecting a ≥20% slowdown into one cell must fail the gate.
	b, err := campaign.LoadBaseline(newPath)
	if err != nil {
		t.Fatal(err)
	}
	slow := b.Cells[0].Metrics["moves"]
	slow.Mean *= 1.25
	slow.CILow *= 1.25
	slow.CIHigh *= 1.25
	b.Cells[0].Metrics["moves"] = slow
	var buf bytes.Buffer
	if err := campaign.WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	slowPath := filepath.Join(dir, "BENCH_SLOW.json")
	if err := os.WriteFile(slowPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"-compare", oldPath, slowPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("a 25%% injected slowdown must fail the gate, got err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("comparison table should flag the regression:\n%s", out.String())
	}

	// A custom threshold above the injected delta passes.
	out.Reset()
	if err := run([]string{"-compare", "-threshold", "0.5", oldPath, slowPath}, &out); err != nil {
		t.Fatalf("a +50%% threshold must tolerate a +25%% delta: %v", err)
	}

	// A comparison that matches zero cells (here: a metric the baselines
	// never recorded) must fail rather than vacuously pass the gate.
	out.Reset()
	err = run([]string{"-compare", "-metric", "duration_ns", oldPath, newPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "no comparable cells") {
		t.Fatalf("a vacuous comparison must fail the gate, got %v", err)
	}
}

func TestCompareUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-compare", "only-one.json"}, &out); err == nil {
		t.Error("-compare with one file must fail")
	}
	if err := run([]string{"-compare", "a.json", "b.json"}, &out); err == nil {
		t.Error("-compare with missing files must fail")
	}
}

func TestCampaignBadSpec(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"id":"x","algorithms":["nope"],"topologies":["ring"],"daemons":["synchronous"],"sizes":[6]}`), 0o644)
	var out bytes.Buffer
	if err := run([]string{"-campaign", bad, "-json-dir", dir}, &out); err == nil {
		t.Error("a spec naming an unknown algorithm must fail")
	}
	if err := run([]string{"-campaign", filepath.Join(dir, "missing.json")}, &out); err == nil {
		t.Error("a missing spec file must fail")
	}
}

// TestJSONDirRotatesExistingTables pins the -json-dir overwrite bugfix:
// rerunning into the same directory rotates BENCH_<id>.json to a numbered
// backup instead of silently clobbering it.
func TestJSONDirRotatesExistingTables(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-experiment", "E8", "-sizes", "6", "-trials", "1", "-seed", "5", "-json", "-json-dir", dir}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(filepath.Join(dir, "BENCH_E8.json"))
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rotated existing") {
		t.Errorf("rerun should note the rotation:\n%s", out.String())
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	backup1, err := os.ReadFile(filepath.Join(dir, "BENCH_E8.json.1"))
	if err != nil {
		t.Fatalf("first run's table was not rotated: %v", err)
	}
	if !bytes.Equal(first, backup1) {
		t.Error("rotation must preserve the previous table bytes")
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_E8.json.2")); err != nil {
		t.Errorf("second backup missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_E8.json")); err != nil {
		t.Errorf("current table missing: %v", err)
	}
}
