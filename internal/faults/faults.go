// Package faults builds the corrupted configurations from which
// self-stabilization is exercised: uniformly random configurations over the
// whole state space, partial corruptions of a correct configuration, and
// targeted corruptions aimed at the reset machinery (fake broadcast/feedback
// waves, inconsistent distance values).
//
// Self-stabilization quantifies over every possible initial configuration;
// these generators sample that space for the experiments and tests.
package faults

import (
	"fmt"
	"math/rand"

	"sdr/internal/core"
	"sdr/internal/sim"
)

// RandomConfiguration returns a configuration in which every process state
// is drawn uniformly from the algorithm's enumerated state space. The
// algorithm must implement sim.Enumerable.
func RandomConfiguration(alg sim.Algorithm, net *sim.Network, rng *rand.Rand) *sim.Configuration {
	enum, ok := alg.(sim.Enumerable)
	if !ok {
		panic(fmt.Sprintf("faults: algorithm %s does not enumerate its states", alg.Name()))
	}
	states := make([]sim.State, net.N())
	for u := range states {
		options := enum.EnumerateStates(u, net)
		if len(options) == 0 {
			panic(fmt.Sprintf("faults: algorithm %s enumerated no states for process %d", alg.Name(), u))
		}
		states[u] = options[rng.Intn(len(options))].Clone()
	}
	return sim.NewConfiguration(states)
}

// CorruptFraction returns a copy of base in which each process state is
// replaced, with probability fraction, by a uniformly random state from the
// algorithm's state space. fraction is clamped to [0, 1].
func CorruptFraction(alg sim.Algorithm, net *sim.Network, base *sim.Configuration, fraction float64, rng *rand.Rand) *sim.Configuration {
	enum, ok := alg.(sim.Enumerable)
	if !ok {
		panic(fmt.Sprintf("faults: algorithm %s does not enumerate its states", alg.Name()))
	}
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	c := base.Clone()
	for u := 0; u < net.N(); u++ {
		if rng.Float64() >= fraction {
			continue
		}
		options := enum.EnumerateStates(u, net)
		c.SetState(u, options[rng.Intn(len(options))].Clone())
	}
	return c
}

// CorruptProcesses returns a copy of base in which exactly the listed
// processes get uniformly random states.
func CorruptProcesses(alg sim.Algorithm, net *sim.Network, base *sim.Configuration, processes []int, rng *rand.Rand) *sim.Configuration {
	enum, ok := alg.(sim.Enumerable)
	if !ok {
		panic(fmt.Sprintf("faults: algorithm %s does not enumerate its states", alg.Name()))
	}
	c := base.Clone()
	for _, u := range processes {
		options := enum.EnumerateStates(u, net)
		c.SetState(u, options[rng.Intn(len(options))].Clone())
	}
	return c
}

// CorruptedInner returns a copy of base (a configuration of a composition
// I ∘ SDR) in which the inner states of a random subset of processes are
// corrupted while the SDR variables are left clean. This models the typical
// post-fault situation of the paper's "typical execution": the application
// state is inconsistent but no reset is running yet.
func CorruptedInner(inner core.Resettable, net *sim.Network, base *sim.Configuration, fraction float64, rng *rand.Rand) *sim.Configuration {
	enum, ok := inner.(core.InnerEnumerable)
	if !ok {
		panic(fmt.Sprintf("faults: inner algorithm %s does not enumerate its states", inner.Name()))
	}
	c := base.Clone()
	for u := 0; u < net.N(); u++ {
		if rng.Float64() >= fraction {
			continue
		}
		options := enum.EnumerateInner(u, net)
		c.SetState(u, core.WithInner(c.State(u), options[rng.Intn(len(options))].Clone()))
	}
	return c
}

// FakeResetWave returns a copy of base (a configuration of I ∘ SDR) in which
// a random subset of processes is put into an arbitrary phase of a
// non-existent reset: random status in {RB, RF} and random distance in
// [0, maxDistance]. Inner states are left untouched, so the resulting
// configuration typically violates P_R2 and exercises the SDR-level error
// handling (Section 3.4).
func FakeResetWave(net *sim.Network, base *sim.Configuration, fraction float64, maxDistance int, rng *rand.Rand) *sim.Configuration {
	if maxDistance < 0 {
		maxDistance = 0
	}
	c := base.Clone()
	statuses := []core.Status{core.StatusRB, core.StatusRF}
	for u := 0; u < net.N(); u++ {
		if rng.Float64() >= fraction {
			continue
		}
		sdr := core.SDRState{
			St: statuses[rng.Intn(len(statuses))],
			D:  rng.Intn(maxDistance + 1),
		}
		c.SetState(u, core.WithSDR(c.State(u), sdr))
	}
	return c
}

// Scenario names a canned corruption recipe used by the benchmark harness so
// that tables can label their workloads.
type Scenario struct {
	// Name labels the scenario in result tables.
	Name string
	// Build produces the corrupted starting configuration for the composed
	// algorithm on the network.
	Build func(alg sim.Algorithm, inner core.Resettable, net *sim.Network, rng *rand.Rand) *sim.Configuration
}

// StandardScenarios returns the corruption scenarios used across the
// experiment suite for compositions I ∘ SDR.
func StandardScenarios() []Scenario {
	return []Scenario{
		{
			Name: "random-all",
			Build: func(alg sim.Algorithm, _ core.Resettable, net *sim.Network, rng *rand.Rand) *sim.Configuration {
				return RandomConfiguration(alg, net, rng)
			},
		},
		{
			Name: "inner-only",
			Build: func(alg sim.Algorithm, inner core.Resettable, net *sim.Network, rng *rand.Rand) *sim.Configuration {
				base := sim.InitialConfiguration(alg, net)
				return CorruptedInner(inner, net, base, 0.5, rng)
			},
		},
		{
			Name: "fake-wave",
			Build: func(alg sim.Algorithm, _ core.Resettable, net *sim.Network, rng *rand.Rand) *sim.Configuration {
				base := sim.InitialConfiguration(alg, net)
				return FakeResetWave(net, base, 0.4, net.N(), rng)
			},
		},
		{
			Name: "half-corrupt",
			Build: func(alg sim.Algorithm, _ core.Resettable, net *sim.Network, rng *rand.Rand) *sim.Configuration {
				base := sim.InitialConfiguration(alg, net)
				return CorruptFraction(alg, net, base, 0.5, rng)
			},
		},
	}
}
