// Package faults builds the corrupted configurations from which
// self-stabilization is exercised: uniformly random configurations over the
// whole state space, partial corruptions of a correct configuration, and
// targeted corruptions aimed at the reset machinery (fake broadcast/feedback
// waves, inconsistent distance values).
//
// Self-stabilization quantifies over every possible initial configuration;
// these generators sample that space for the experiments and tests. Builders
// that draw from an algorithm's enumerated state space return an error when
// the algorithm does not enumerate it (the scenario registry surfaces such
// errors to the user); the Must* variants panic instead, for tests and
// examples where the algorithm is statically known to be enumerable.
package faults

import (
	"fmt"
	"math/rand"

	"sdr/internal/core"
	"sdr/internal/sim"
)

// enumerator returns the algorithm's state enumeration, or an error when the
// algorithm does not (usefully) enumerate: wrappers may implement
// sim.Enumerable yet return an empty space for non-enumerable inners, so the
// space of process 0 is probed too.
func enumerator(alg sim.Algorithm, net *sim.Network) (sim.Enumerable, error) {
	enum, ok := alg.(sim.Enumerable)
	if !ok || len(enum.EnumerateStates(0, net)) == 0 {
		return nil, fmt.Errorf("faults: algorithm %s does not enumerate its states", alg.Name())
	}
	return enum, nil
}

// RandomConfiguration returns a configuration in which every process state
// is drawn uniformly from the algorithm's enumerated state space. It returns
// an error when the algorithm does not implement sim.Enumerable (or
// enumerates an empty space).
func RandomConfiguration(alg sim.Algorithm, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error) {
	enum, err := enumerator(alg, net)
	if err != nil {
		return nil, err
	}
	states := make([]sim.State, net.N())
	for u := range states {
		options := enum.EnumerateStates(u, net)
		if len(options) == 0 {
			return nil, fmt.Errorf("faults: algorithm %s enumerated no states for process %d", alg.Name(), u)
		}
		states[u] = options[rng.Intn(len(options))].Clone()
	}
	return sim.NewConfiguration(states), nil
}

// MustRandomConfiguration is RandomConfiguration for algorithms known to be
// enumerable; it panics on error.
func MustRandomConfiguration(alg sim.Algorithm, net *sim.Network, rng *rand.Rand) *sim.Configuration {
	c, err := RandomConfiguration(alg, net, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// CorruptFraction returns a copy of base in which each process state is
// replaced, with probability fraction, by a uniformly random state from the
// algorithm's state space. fraction is clamped to [0, 1]. It returns an
// error when the algorithm does not enumerate its states.
func CorruptFraction(alg sim.Algorithm, net *sim.Network, base *sim.Configuration, fraction float64, rng *rand.Rand) (*sim.Configuration, error) {
	enum, err := enumerator(alg, net)
	if err != nil {
		return nil, err
	}
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	c := base.Clone()
	for u := 0; u < net.N(); u++ {
		if rng.Float64() >= fraction {
			continue
		}
		options := enum.EnumerateStates(u, net)
		c.SetState(u, options[rng.Intn(len(options))].Clone())
	}
	return c, nil
}

// MustCorruptFraction is CorruptFraction for algorithms known to be
// enumerable; it panics on error.
func MustCorruptFraction(alg sim.Algorithm, net *sim.Network, base *sim.Configuration, fraction float64, rng *rand.Rand) *sim.Configuration {
	c, err := CorruptFraction(alg, net, base, fraction, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// CorruptProcesses returns a copy of base in which exactly the listed
// processes get uniformly random states. It returns an error when the
// algorithm does not enumerate its states.
func CorruptProcesses(alg sim.Algorithm, net *sim.Network, base *sim.Configuration, processes []int, rng *rand.Rand) (*sim.Configuration, error) {
	enum, err := enumerator(alg, net)
	if err != nil {
		return nil, err
	}
	c := base.Clone()
	for _, u := range processes {
		options := enum.EnumerateStates(u, net)
		c.SetState(u, options[rng.Intn(len(options))].Clone())
	}
	return c, nil
}

// MustCorruptProcesses is CorruptProcesses for algorithms known to be
// enumerable; it panics on error.
func MustCorruptProcesses(alg sim.Algorithm, net *sim.Network, base *sim.Configuration, processes []int, rng *rand.Rand) *sim.Configuration {
	c, err := CorruptProcesses(alg, net, base, processes, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// CorruptedInner returns a copy of base (a configuration of a composition
// I ∘ SDR) in which the inner states of a random subset of processes are
// corrupted while the SDR variables are left clean. This models the typical
// post-fault situation of the paper's "typical execution": the application
// state is inconsistent but no reset is running yet. It returns an error
// when the inner algorithm does not enumerate its states.
func CorruptedInner(inner core.Resettable, net *sim.Network, base *sim.Configuration, fraction float64, rng *rand.Rand) (*sim.Configuration, error) {
	enum, ok := inner.(core.InnerEnumerable)
	if !ok || len(enum.EnumerateInner(0, net)) == 0 {
		return nil, fmt.Errorf("faults: inner algorithm %s does not enumerate its states", inner.Name())
	}
	c := base.Clone()
	for u := 0; u < net.N(); u++ {
		if rng.Float64() >= fraction {
			continue
		}
		options := enum.EnumerateInner(u, net)
		c.SetState(u, core.WithInner(c.State(u), options[rng.Intn(len(options))].Clone()))
	}
	return c, nil
}

// MustCorruptedInner is CorruptedInner for inner algorithms known to be
// enumerable; it panics on error.
func MustCorruptedInner(inner core.Resettable, net *sim.Network, base *sim.Configuration, fraction float64, rng *rand.Rand) *sim.Configuration {
	c, err := CorruptedInner(inner, net, base, fraction, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// FakeResetWave returns a copy of base (a configuration of I ∘ SDR) in which
// a random subset of processes is put into an arbitrary phase of a
// non-existent reset: random status in {RB, RF} and random distance in
// [0, maxDistance]. Inner states are left untouched, so the resulting
// configuration typically violates P_R2 and exercises the SDR-level error
// handling (Section 3.4). It has no failure mode and hence no error return.
func FakeResetWave(net *sim.Network, base *sim.Configuration, fraction float64, maxDistance int, rng *rand.Rand) *sim.Configuration {
	if maxDistance < 0 {
		maxDistance = 0
	}
	c := base.Clone()
	statuses := []core.Status{core.StatusRB, core.StatusRF}
	for u := 0; u < net.N(); u++ {
		if rng.Float64() >= fraction {
			continue
		}
		sdr := core.SDRState{
			St: statuses[rng.Intn(len(statuses))],
			D:  rng.Intn(maxDistance + 1),
		}
		c.SetState(u, core.WithSDR(c.State(u), sdr))
	}
	return c
}

// Scenario names a canned corruption recipe used by the benchmark harness so
// that tables can label their workloads.
type Scenario struct {
	// Name labels the scenario in result tables.
	Name string
	// Build produces the corrupted starting configuration for the composed
	// algorithm on the network. It fails when the recipe's requirements
	// (an enumerated state space) are not met.
	Build func(alg sim.Algorithm, inner core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error)
}

// StandardScenarios returns the corruption scenarios used across the
// experiment suite for compositions I ∘ SDR.
func StandardScenarios() []Scenario {
	return []Scenario{
		{
			Name: "random-all",
			Build: func(alg sim.Algorithm, _ core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error) {
				return RandomConfiguration(alg, net, rng)
			},
		},
		{
			Name: "inner-only",
			Build: func(alg sim.Algorithm, inner core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error) {
				base := sim.InitialConfiguration(alg, net)
				return CorruptedInner(inner, net, base, 0.5, rng)
			},
		},
		{
			Name: "fake-wave",
			Build: func(alg sim.Algorithm, _ core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error) {
				base := sim.InitialConfiguration(alg, net)
				return FakeResetWave(net, base, 0.4, net.N(), rng), nil
			},
		},
		{
			Name: "half-corrupt",
			Build: func(alg sim.Algorithm, _ core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error) {
				base := sim.InitialConfiguration(alg, net)
				return CorruptFraction(alg, net, base, 0.5, rng)
			},
		},
	}
}
