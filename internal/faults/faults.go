// Package faults builds the corrupted configurations from which
// self-stabilization is exercised: uniformly random configurations over the
// whole state space, partial corruptions of a correct configuration, and
// targeted corruptions aimed at the reset machinery (fake broadcast/feedback
// waves, inconsistent distance values).
//
// Self-stabilization quantifies over every possible initial configuration;
// these generators sample that space for the experiments and tests. Builders
// that draw from an algorithm's enumerated state space return an error when
// the algorithm does not enumerate it (the scenario registry surfaces such
// errors to the user); the Must* variants panic instead, for tests and
// examples where the algorithm is statically known to be enumerable.
package faults

import (
	"fmt"
	"math/rand"

	"sdr/internal/core"
	"sdr/internal/sim"
)

// sampler draws uniform states from an algorithm's enumerated space. It
// prefers the indexed fast path (sim.IndexedEnumerable) so that the
// product-shaped composed space is never materialized per draw; both paths
// consume the shared rng identically — one Intn over the same count — so a
// seeded corruption is bit-identical whichever path runs.
type sampler struct {
	name    string
	enum    sim.Enumerable
	indexed sim.IndexedEnumerable // non-nil when the fast path is available
}

// newSampler builds a sampler, or an error when the algorithm does not
// (usefully) enumerate: wrappers may implement sim.Enumerable yet report an
// empty space for non-enumerable inners, so the space of process 0 is probed
// too.
func newSampler(alg sim.Algorithm, net *sim.Network) (sampler, error) {
	err := fmt.Errorf("faults: algorithm %s does not enumerate its states", alg.Name())
	if ix, ok := alg.(sim.IndexedEnumerable); ok {
		if ix.StateCount(0, net) == 0 {
			return sampler{}, err
		}
		return sampler{name: alg.Name(), indexed: ix}, nil
	}
	enum, ok := alg.(sim.Enumerable)
	if !ok || len(enum.EnumerateStates(0, net)) == 0 {
		return sampler{}, err
	}
	return sampler{name: alg.Name(), enum: enum}, nil
}

// draw returns a freshly owned state of process u drawn uniformly from its
// enumerated space.
func (s sampler) draw(u int, net *sim.Network, rng *rand.Rand) (sim.State, error) {
	if s.indexed != nil {
		n := s.indexed.StateCount(u, net)
		if n == 0 {
			return nil, fmt.Errorf("faults: algorithm %s enumerated no states for process %d", s.name, u)
		}
		return s.indexed.StateAt(u, net, rng.Intn(n)), nil
	}
	options := s.enum.EnumerateStates(u, net)
	if len(options) == 0 {
		return nil, fmt.Errorf("faults: algorithm %s enumerated no states for process %d", s.name, u)
	}
	return options[rng.Intn(len(options))].Clone(), nil
}

// RandomConfiguration returns a configuration in which every process state
// is drawn uniformly from the algorithm's enumerated state space. It returns
// an error when the algorithm does not implement sim.Enumerable (or
// enumerates an empty space).
func RandomConfiguration(alg sim.Algorithm, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error) {
	smp, err := newSampler(alg, net)
	if err != nil {
		return nil, err
	}
	states := make([]sim.State, net.N())
	for u := range states {
		if states[u], err = smp.draw(u, net, rng); err != nil {
			return nil, err
		}
	}
	return sim.NewConfiguration(states), nil
}

// MustRandomConfiguration is RandomConfiguration for algorithms known to be
// enumerable; it panics on error.
func MustRandomConfiguration(alg sim.Algorithm, net *sim.Network, rng *rand.Rand) *sim.Configuration {
	c, err := RandomConfiguration(alg, net, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// CorruptFraction returns a copy of base in which each process state is
// replaced, with probability fraction, by a uniformly random state from the
// algorithm's state space. fraction is clamped to [0, 1]. It returns an
// error when the algorithm does not enumerate its states.
func CorruptFraction(alg sim.Algorithm, net *sim.Network, base *sim.Configuration, fraction float64, rng *rand.Rand) (*sim.Configuration, error) {
	smp, err := newSampler(alg, net)
	if err != nil {
		return nil, err
	}
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	c := base.Clone()
	for u := 0; u < net.N(); u++ {
		if rng.Float64() >= fraction {
			continue
		}
		st, err := smp.draw(u, net, rng)
		if err != nil {
			return nil, err
		}
		c.SetState(u, st)
	}
	return c, nil
}

// MustCorruptFraction is CorruptFraction for algorithms known to be
// enumerable; it panics on error.
func MustCorruptFraction(alg sim.Algorithm, net *sim.Network, base *sim.Configuration, fraction float64, rng *rand.Rand) *sim.Configuration {
	c, err := CorruptFraction(alg, net, base, fraction, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// CorruptProcesses returns a copy of base in which exactly the listed
// processes get uniformly random states. It returns an error when the
// algorithm does not enumerate its states.
func CorruptProcesses(alg sim.Algorithm, net *sim.Network, base *sim.Configuration, processes []int, rng *rand.Rand) (*sim.Configuration, error) {
	smp, err := newSampler(alg, net)
	if err != nil {
		return nil, err
	}
	c := base.Clone()
	for _, u := range processes {
		st, err := smp.draw(u, net, rng)
		if err != nil {
			return nil, err
		}
		c.SetState(u, st)
	}
	return c, nil
}

// MustCorruptProcesses is CorruptProcesses for algorithms known to be
// enumerable; it panics on error.
func MustCorruptProcesses(alg sim.Algorithm, net *sim.Network, base *sim.Configuration, processes []int, rng *rand.Rand) *sim.Configuration {
	c, err := CorruptProcesses(alg, net, base, processes, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// CorruptedInner returns a copy of base (a configuration of a composition
// I ∘ SDR) in which the inner states of a random subset of processes are
// corrupted while the SDR variables are left clean. This models the typical
// post-fault situation of the paper's "typical execution": the application
// state is inconsistent but no reset is running yet. It returns an error
// when the inner algorithm does not enumerate its states.
func CorruptedInner(inner core.Resettable, net *sim.Network, base *sim.Configuration, fraction float64, rng *rand.Rand) (*sim.Configuration, error) {
	ix, indexed := inner.(core.InnerIndexedEnumerable)
	enum, ok := inner.(core.InnerEnumerable)
	if indexed {
		ok = ix.InnerStateCount(0, net) > 0
	} else if ok {
		ok = len(enum.EnumerateInner(0, net)) > 0
	}
	if !ok {
		return nil, fmt.Errorf("faults: inner algorithm %s does not enumerate its states", inner.Name())
	}
	c := base.Clone()
	for u := 0; u < net.N(); u++ {
		if rng.Float64() >= fraction {
			continue
		}
		// Both paths consume the rng identically: one Intn over the same
		// count.
		var in sim.State
		if indexed {
			in = ix.InnerStateAt(u, net, rng.Intn(ix.InnerStateCount(u, net)))
		} else {
			options := enum.EnumerateInner(u, net)
			in = options[rng.Intn(len(options))].Clone()
		}
		c.SetState(u, core.WithInner(c.State(u), in))
	}
	return c, nil
}

// MustCorruptedInner is CorruptedInner for inner algorithms known to be
// enumerable; it panics on error.
func MustCorruptedInner(inner core.Resettable, net *sim.Network, base *sim.Configuration, fraction float64, rng *rand.Rand) *sim.Configuration {
	c, err := CorruptedInner(inner, net, base, fraction, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// FakeResetWave returns a copy of base (a configuration of I ∘ SDR) in which
// a random subset of processes is put into an arbitrary phase of a
// non-existent reset: random status in {RB, RF} and random distance in
// [0, maxDistance]. Inner states are left untouched, so the resulting
// configuration typically violates P_R2 and exercises the SDR-level error
// handling (Section 3.4). It has no failure mode and hence no error return.
func FakeResetWave(net *sim.Network, base *sim.Configuration, fraction float64, maxDistance int, rng *rand.Rand) *sim.Configuration {
	if maxDistance < 0 {
		maxDistance = 0
	}
	c := base.Clone()
	statuses := []core.Status{core.StatusRB, core.StatusRF}
	for u := 0; u < net.N(); u++ {
		if rng.Float64() >= fraction {
			continue
		}
		sdr := core.SDRState{
			St: statuses[rng.Intn(len(statuses))],
			D:  rng.Intn(maxDistance + 1),
		}
		c.SetState(u, core.WithSDR(c.State(u), sdr))
	}
	return c
}

// Scenario names a canned corruption recipe used by the benchmark harness so
// that tables can label their workloads.
type Scenario struct {
	// Name labels the scenario in result tables.
	Name string
	// Build produces the corrupted starting configuration for the composed
	// algorithm on the network. It fails when the recipe's requirements
	// (an enumerated state space) are not met.
	Build func(alg sim.Algorithm, inner core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error)
}

// StandardScenarios returns the corruption scenarios used across the
// experiment suite for compositions I ∘ SDR.
func StandardScenarios() []Scenario {
	return []Scenario{
		{
			Name: "random-all",
			Build: func(alg sim.Algorithm, _ core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error) {
				return RandomConfiguration(alg, net, rng)
			},
		},
		{
			Name: "inner-only",
			Build: func(alg sim.Algorithm, inner core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error) {
				base := sim.InitialConfiguration(alg, net)
				return CorruptedInner(inner, net, base, 0.5, rng)
			},
		},
		{
			Name: "fake-wave",
			Build: func(alg sim.Algorithm, _ core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error) {
				base := sim.InitialConfiguration(alg, net)
				return FakeResetWave(net, base, 0.4, net.N(), rng), nil
			},
		},
		{
			Name: "half-corrupt",
			Build: func(alg sim.Algorithm, _ core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error) {
				base := sim.InitialConfiguration(alg, net)
				return CorruptFraction(alg, net, base, 0.5, rng)
			},
		},
	}
}
