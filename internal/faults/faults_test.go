package faults

import (
	"math/rand"
	"testing"

	"sdr/internal/core"
	"sdr/internal/graph"
	"sdr/internal/sim"
	"sdr/internal/unison"
)

func testSetup(t *testing.T) (*sim.Network, *unison.Unison, *core.Composed) {
	t.Helper()
	g := graph.Ring(8)
	u := unison.New(unison.DefaultPeriod(g.N()))
	return sim.NewNetwork(g), u, core.Compose(u)
}

func TestRandomConfigurationCoversStateSpace(t *testing.T) {
	net, _, comp := testSetup(t)
	rng := rand.New(rand.NewSource(1))
	seenNonClean, seenNonZeroClock := false, false
	for trial := 0; trial < 50; trial++ {
		cfg, err := RandomConfiguration(comp, net, rng)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.N() != net.N() {
			t.Fatalf("configuration has %d states, want %d", cfg.N(), net.N())
		}
		for u := 0; u < cfg.N(); u++ {
			cs := cfg.State(u).(core.ComposedState)
			if cs.SDR.St != core.StatusC {
				seenNonClean = true
			}
			if cs.Inner.(unison.ClockState).C != 0 {
				seenNonZeroClock = true
			}
		}
	}
	if !seenNonClean || !seenNonZeroClock {
		t.Error("random configurations should cover both SDR and inner variables")
	}
}

func TestRandomConfigurationRequiresEnumerable(t *testing.T) {
	net, _, _ := testSetup(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomConfiguration(nonEnumerable{}, net, rng); err == nil {
		t.Error("RandomConfiguration must fail for non-enumerable algorithms")
	}
	base := sim.InitialConfiguration(nonEnumerable{}, net)
	if _, err := CorruptFraction(nonEnumerable{}, net, base, 0.5, rng); err == nil {
		t.Error("CorruptFraction must fail for non-enumerable algorithms")
	}
	if _, err := CorruptProcesses(nonEnumerable{}, net, base, []int{0}, rng); err == nil {
		t.Error("CorruptProcesses must fail for non-enumerable algorithms")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRandomConfiguration must panic for non-enumerable algorithms")
		}
	}()
	MustRandomConfiguration(nonEnumerable{}, net, rng)
}

// nonEnumerable is an algorithm without EnumerateStates.
type nonEnumerable struct{}

func (nonEnumerable) Name() string                             { return "opaque" }
func (nonEnumerable) Rules() []sim.Rule                        { return nil }
func (nonEnumerable) InitialState(int, *sim.Network) sim.State { return unison.ClockState{} }

func TestCorruptFraction(t *testing.T) {
	net, _, comp := testSetup(t)
	base := sim.InitialConfiguration(comp, net)
	rng := rand.New(rand.NewSource(2))

	// Fraction 0: nothing changes.
	same := MustCorruptFraction(comp, net, base, 0, rng)
	if !same.Equal(base) {
		t.Error("fraction 0 must leave the configuration unchanged")
	}
	// The base configuration itself must never be mutated.
	MustCorruptFraction(comp, net, base, 1, rng)
	if !base.Equal(sim.InitialConfiguration(comp, net)) {
		t.Error("CorruptFraction must not modify the base configuration")
	}
	// Out-of-range fractions are clamped rather than rejected.
	clamped := MustCorruptFraction(comp, net, base, 7.5, rng)
	if clamped.N() != base.N() {
		t.Error("clamped corruption must keep the configuration size")
	}
}

func TestCorruptProcesses(t *testing.T) {
	net, _, comp := testSetup(t)
	base := sim.InitialConfiguration(comp, net)
	rng := rand.New(rand.NewSource(3))
	corrupted := MustCorruptProcesses(comp, net, base, []int{2, 5}, rng)
	for u := 0; u < net.N(); u++ {
		changed := !corrupted.State(u).Equal(base.State(u))
		if changed && u != 2 && u != 5 {
			t.Errorf("process %d changed although it was not targeted", u)
		}
	}
}

func TestCorruptedInnerKeepsSDRClean(t *testing.T) {
	net, u, comp := testSetup(t)
	base := sim.InitialConfiguration(comp, net)
	rng := rand.New(rand.NewSource(4))
	cfg := MustCorruptedInner(u, net, base, 1.0, rng)
	for p := 0; p < net.N(); p++ {
		cs := cfg.State(p).(core.ComposedState)
		if cs.SDR.St != core.StatusC {
			t.Errorf("process %d: SDR state %v should stay clean under inner-only corruption", p, cs.SDR)
		}
	}
}

func TestFakeResetWaveKeepsInnerStates(t *testing.T) {
	net, _, comp := testSetup(t)
	base := sim.InitialConfiguration(comp, net)
	rng := rand.New(rand.NewSource(5))
	cfg := FakeResetWave(net, base, 1.0, net.N(), rng)
	changedStatus := 0
	for p := 0; p < net.N(); p++ {
		cs := cfg.State(p).(core.ComposedState)
		if !cs.Inner.Equal(base.State(p).(core.ComposedState).Inner) {
			t.Errorf("process %d: the inner state must be untouched by a fake wave", p)
		}
		if cs.SDR.St != core.StatusC {
			changedStatus++
			if cs.SDR.St != core.StatusRB && cs.SDR.St != core.StatusRF {
				t.Errorf("process %d: unexpected status %v", p, cs.SDR.St)
			}
			if cs.SDR.D < 0 || cs.SDR.D > net.N() {
				t.Errorf("process %d: distance %d out of the requested range", p, cs.SDR.D)
			}
		}
	}
	if changedStatus == 0 {
		t.Error("a full-fraction fake wave should corrupt at least one status")
	}
	// Negative maximum distances are clamped to 0.
	clamped := FakeResetWave(net, base, 1.0, -3, rng)
	for p := 0; p < net.N(); p++ {
		if d := clamped.State(p).(core.ComposedState).SDR.D; d != 0 {
			t.Errorf("process %d: distance %d, want 0 with a clamped maximum", p, d)
		}
	}
}

func TestStandardScenariosProduceRecoverableStarts(t *testing.T) {
	// Every standard scenario must produce a configuration from which the
	// composition stabilizes — this is the integration contract the benchmark
	// harness relies on.
	net, u, comp := testSetup(t)
	for _, scenario := range StandardScenarios() {
		scenario := scenario
		t.Run(scenario.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			start, err := scenario.Build(comp, u, net, rng)
			if err != nil {
				t.Fatal(err)
			}
			if start.N() != net.N() {
				t.Fatalf("scenario produced %d states for %d processes", start.N(), net.N())
			}
			res := sim.NewEngine(net, comp, sim.NewDistributedRandomDaemon(rng, 0.5)).Run(start,
				sim.WithMaxSteps(200_000),
				sim.WithLegitimate(core.NormalPredicate(u, net)),
				sim.WithStopWhenLegitimate(),
			)
			if !res.LegitimateReached {
				t.Errorf("scenario %s produced a start from which the system did not stabilize", scenario.Name)
			}
		})
	}
}

func TestScenarioNamesAreUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range StandardScenarios() {
		if s.Name == "" || s.Build == nil {
			t.Errorf("scenario %+v is incomplete", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
}
