// Package alliance implements the (f,g)-alliance instantiation of the paper
// (Section 6): Algorithm FGA (Algorithm 3), which computes a 1-minimal
// (f,g)-alliance in identified networks, its self-stabilizing composition
// FGA ∘ SDR, verifiers for the alliance properties, and the six special
// cases listed in Section 6.1 (dominating sets, k-domination, k-tuple
// domination, global offensive / defensive / powerful alliances).
//
// Given a graph G = (V, E) and two non-negative integer functions f and g on
// nodes, a set A ⊆ V is an (f,g)-alliance when every node u ∉ A has at least
// f(u) neighbours in A and every node v ∈ A has at least g(v) neighbours in
// A. A is 1-minimal when removing any single member breaks the alliance.
package alliance

import (
	"fmt"

	"sdr/internal/graph"
)

// Spec describes the (f,g) requirement pair of an alliance instance. F and G
// receive the node index and its degree so that degree-dependent instances
// (offensive, defensive, powerful alliances) and arbitrary per-node
// requirements can both be expressed.
type Spec struct {
	// Name labels the instance in traces and benchmark tables.
	Name string
	// F returns f(u): the number of neighbours inside the alliance a node
	// outside the alliance must have.
	F func(u, degree int) int
	// G returns g(u): the number of neighbours inside the alliance a node
	// inside the alliance must have.
	G func(u, degree int) int
}

// Validate checks the paper's solvability assumption δ_u ≥ max(f(u), g(u))
// for every node of the graph, and that f and g are non-negative.
func (s Spec) Validate(g *graph.Graph) error {
	if s.F == nil || s.G == nil {
		return fmt.Errorf("alliance: spec %q must define both F and G", s.Name)
	}
	for u := 0; u < g.N(); u++ {
		deg := g.Degree(u)
		fu, gu := s.F(u, deg), s.G(u, deg)
		if fu < 0 || gu < 0 {
			return fmt.Errorf("alliance: spec %q has negative requirement at node %d (f=%d, g=%d)", s.Name, u, fu, gu)
		}
		if deg < fu || deg < gu {
			return fmt.Errorf("alliance: spec %q violates δ_u ≥ max(f(u), g(u)) at node %d (δ=%d, f=%d, g=%d)",
				s.Name, u, deg, fu, gu)
		}
	}
	return nil
}

// FOf returns f(u) on graph g.
func (s Spec) FOf(g *graph.Graph, u int) int { return s.F(u, g.Degree(u)) }

// GOf returns g(u) on graph g.
func (s Spec) GOf(g *graph.Graph, u int) int { return s.G(u, g.Degree(u)) }

// Constant returns a spec with constant requirements f and g for every node.
func Constant(name string, f, g int) Spec {
	return Spec{
		Name: name,
		F:    func(int, int) int { return f },
		G:    func(int, int) int { return g },
	}
}

// The six special cases of Section 6.1.

// DominatingSet is the (1,0)-alliance: every node outside the set has a
// neighbour in the set.
func DominatingSet() Spec { return Constant("dominating-set", 1, 0) }

// KDomination is the (k,0)-alliance: every node outside the set has at least
// k neighbours in the set.
func KDomination(k int) Spec {
	return Constant(fmt.Sprintf("%d-domination", k), k, 0)
}

// KTupleDomination is the (k, k-1)-alliance.
func KTupleDomination(k int) Spec {
	return Constant(fmt.Sprintf("%d-tuple-domination", k), k, k-1)
}

// GlobalOffensiveAlliance is the (f,0)-alliance with f(u) = ⌈(δ_u+1)/2⌉.
func GlobalOffensiveAlliance() Spec {
	return Spec{
		Name: "global-offensive-alliance",
		F:    func(_, degree int) int { return (degree + 2) / 2 },
		G:    func(int, int) int { return 0 },
	}
}

// GlobalDefensiveAlliance is the (1,g)-alliance with g(u) = ⌈(δ_u+1)/2⌉.
func GlobalDefensiveAlliance() Spec {
	return Spec{
		Name: "global-defensive-alliance",
		F:    func(int, int) int { return 1 },
		G:    func(_, degree int) int { return (degree + 2) / 2 },
	}
}

// GlobalPowerfulAlliance is the (f,g)-alliance with f(u) = ⌈(δ_u+1)/2⌉ and
// g(u) = ⌈δ_u/2⌉.
func GlobalPowerfulAlliance() Spec {
	return Spec{
		Name: "global-powerful-alliance",
		F:    func(_, degree int) int { return (degree + 2) / 2 },
		G:    func(_, degree int) int { return (degree + 1) / 2 },
	}
}

// StandardSpecs returns the six special-case specs of Section 6.1 with k = 2
// for the parametric families, used by experiment E10.
func StandardSpecs() []Spec {
	return []Spec{
		DominatingSet(),
		KDomination(2),
		KTupleDomination(2),
		GlobalOffensiveAlliance(),
		GlobalDefensiveAlliance(),
		GlobalPowerfulAlliance(),
	}
}
