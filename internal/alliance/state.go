package alliance

import (
	"fmt"

	"sdr/internal/sim"
)

// NoPointer is the ⊥ value of the pointer variable ptr_u.
const NoPointer = -1

// FGAState is the local state of Algorithm FGA (Algorithm 3): the four
// variables col_u, scr_u, canQ_u and ptr_u.
type FGAState struct {
	// Col reports whether the process belongs to the alliance (the output).
	Col bool
	// Scr is the score scr_u ∈ {-1, 0, 1}; scr_u ≤ 0 means no neighbour of u
	// may quit the alliance.
	Scr int
	// CanQ reports whether the process may quit the alliance.
	CanQ bool
	// Ptr is the identifier of the member of the closed neighbourhood the
	// process currently approves for leaving the alliance, or NoPointer (⊥).
	Ptr int
}

var _ sim.State = FGAState{}

// Clone implements sim.State.
func (s FGAState) Clone() sim.State { return s }

// Equal implements sim.State.
func (s FGAState) Equal(other sim.State) bool {
	o, ok := other.(FGAState)
	return ok && s == o
}

// String implements sim.State.
func (s FGAState) String() string {
	col, canQ := 0, 0
	if s.Col {
		col = 1
	}
	if s.CanQ {
		canQ = 1
	}
	ptr := "⊥"
	if s.Ptr != NoPointer {
		ptr = fmt.Sprintf("%d", s.Ptr)
	}
	return fmt.Sprintf("col=%d scr=%+d q=%d p=%s", col, s.Scr, canQ, ptr)
}

// ResetFGAState is the pre-defined state installed by the reset(u) macro and
// used as γ_init: col = true, scr = 1, canQ = true, ptr = ⊥.
func ResetFGAState() FGAState {
	return FGAState{Col: true, Scr: 1, CanQ: true, Ptr: NoPointer}
}

// fgaOf extracts an FGA state, panicking on foreign state types so that
// wiring mistakes surface immediately.
func fgaOf(s sim.State) FGAState {
	fs, ok := s.(FGAState)
	if !ok {
		panic(fmt.Sprintf("alliance: expected FGAState, got %T", s))
	}
	return fs
}
