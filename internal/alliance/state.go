package alliance

import (
	"fmt"
	"strconv"

	"sdr/internal/sim"
)

// NoPointer is the ⊥ value of the pointer variable ptr_u.
const NoPointer = -1

// FGAState is the local state of Algorithm FGA (Algorithm 3): the four
// variables col_u, scr_u, canQ_u and ptr_u.
type FGAState struct {
	// Col reports whether the process belongs to the alliance (the output).
	Col bool
	// Scr is the score scr_u ∈ {-1, 0, 1}; scr_u ≤ 0 means no neighbour of u
	// may quit the alliance.
	Scr int
	// CanQ reports whether the process may quit the alliance.
	CanQ bool
	// Ptr is the identifier of the member of the closed neighbourhood the
	// process currently approves for leaving the alliance, or NoPointer (⊥).
	Ptr int
}

var _ sim.State = FGAState{}

// Clone implements sim.State.
func (s FGAState) Clone() sim.State { return s }

// Equal implements sim.State.
func (s FGAState) Equal(other sim.State) bool {
	o, ok := other.(FGAState)
	return ok && s == o
}

// String implements sim.State.
func (s FGAState) String() string {
	col, canQ := 0, 0
	if s.Col {
		col = 1
	}
	if s.CanQ {
		canQ = 1
	}
	ptr := "⊥"
	if s.Ptr != NoPointer {
		ptr = fmt.Sprintf("%d", s.Ptr)
	}
	return fmt.Sprintf("col=%d scr=%+d q=%d p=%s", col, s.Scr, canQ, ptr)
}

// AppendStateKey implements sim.KeyAppender: exactly the String() bytes,
// without allocating.
func (s FGAState) AppendStateKey(dst []byte) []byte {
	dst = append(dst, "col="...)
	if s.Col {
		dst = append(dst, '1')
	} else {
		dst = append(dst, '0')
	}
	// %+d always renders a sign, including "+0".
	dst = append(dst, " scr="...)
	if s.Scr >= 0 {
		dst = append(dst, '+')
	}
	dst = strconv.AppendInt(dst, int64(s.Scr), 10)
	dst = append(dst, " q="...)
	if s.CanQ {
		dst = append(dst, '1')
	} else {
		dst = append(dst, '0')
	}
	dst = append(dst, " p="...)
	if s.Ptr == NoPointer {
		return append(dst, "⊥"...)
	}
	return strconv.AppendInt(dst, int64(s.Ptr), 10)
}

// Key64 implements sim.KeyedState: the two booleans, the zigzagged score (4
// bits) and the zigzagged pointer, when score and pointer fit.
func (s FGAState) Key64() (uint64, bool) {
	zs, zp := sim.ZigZag64(s.Scr), sim.ZigZag64(s.Ptr)
	if zs >= 1<<4 || zp >= 1<<56 {
		return 0, false
	}
	key := zp<<8 | zs<<4
	if s.Col {
		key |= 1
	}
	if s.CanQ {
		key |= 2
	}
	return key, true
}

// ResetFGAState is the pre-defined state installed by the reset(u) macro and
// used as γ_init: col = true, scr = 1, canQ = true, ptr = ⊥.
func ResetFGAState() FGAState {
	return FGAState{Col: true, Scr: 1, CanQ: true, Ptr: NoPointer}
}

// fgaOf extracts an FGA state, panicking on foreign state types so that
// wiring mistakes surface immediately.
func fgaOf(s sim.State) FGAState {
	fs, ok := s.(FGAState)
	if !ok {
		panic(fmt.Sprintf("alliance: expected FGAState, got %T", s))
	}
	return fs
}
