package alliance

import (
	"fmt"

	"sdr/internal/graph"
)

// membersIn counts the neighbours of u that belong to the set.
func membersIn(g *graph.Graph, set map[int]bool, u int) int {
	count := 0
	for i, deg := 0, g.Degree(u); i < deg; i++ {
		if set[g.Neighbor(u, i)] {
			count++
		}
	}
	return count
}

// toSet converts a member slice to a membership map.
func toSet(members []int) map[int]bool {
	set := make(map[int]bool, len(members))
	for _, u := range members {
		set[u] = true
	}
	return set
}

// IsAlliance reports whether the given member set is an (f,g)-alliance of g
// under the spec: every node outside the set has at least f(u) neighbours in
// it, and every node inside has at least g(u).
func IsAlliance(g *graph.Graph, spec Spec, members []int) bool {
	return ExplainAlliance(g, spec, members) == nil
}

// ExplainAlliance returns nil when members is an (f,g)-alliance and an error
// naming the first violating node otherwise.
func ExplainAlliance(g *graph.Graph, spec Spec, members []int) error {
	set := toSet(members)
	for u := 0; u < g.N(); u++ {
		in := membersIn(g, set, u)
		if set[u] {
			if need := spec.GOf(g, u); in < need {
				return fmt.Errorf("alliance: member %d has %d neighbours in the alliance, needs g(%d)=%d", u, in, u, need)
			}
		} else {
			if need := spec.FOf(g, u); in < need {
				return fmt.Errorf("alliance: non-member %d has %d neighbours in the alliance, needs f(%d)=%d", u, in, u, need)
			}
		}
	}
	return nil
}

// Is1Minimal reports whether members is a 1-minimal (f,g)-alliance: it is an
// alliance but removing any single member breaks the alliance property.
func Is1Minimal(g *graph.Graph, spec Spec, members []int) bool {
	return Explain1Minimal(g, spec, members) == nil
}

// Explain1Minimal returns nil when members is a 1-minimal (f,g)-alliance and
// an error describing the first violation otherwise (either not an alliance,
// or a member whose removal keeps the alliance property).
func Explain1Minimal(g *graph.Graph, spec Spec, members []int) error {
	if err := ExplainAlliance(g, spec, members); err != nil {
		return err
	}
	for i, drop := range members {
		reduced := make([]int, 0, len(members)-1)
		reduced = append(reduced, members[:i]...)
		reduced = append(reduced, members[i+1:]...)
		if IsAlliance(g, spec, reduced) {
			return fmt.Errorf("alliance: not 1-minimal: removing member %d still yields an (f,g)-alliance", drop)
		}
	}
	return nil
}

// IsMinimal reports whether members is a minimal (f,g)-alliance: no proper
// subset of it is an alliance. The check enumerates all proper subsets and is
// therefore only usable for small alliances (it is exponential in their
// size); tests use it on small graphs to exercise Property 1 of the paper.
func IsMinimal(g *graph.Graph, spec Spec, members []int) bool {
	if !IsAlliance(g, spec, members) {
		return false
	}
	n := len(members)
	if n > 20 {
		panic(fmt.Sprintf("alliance: IsMinimal is exponential; refusing alliance of size %d", n))
	}
	for mask := 0; mask < (1 << uint(n)); mask++ {
		if mask == (1<<uint(n))-1 {
			continue // the full set is not a proper subset
		}
		var subset []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				subset = append(subset, members[i])
			}
		}
		if IsAlliance(g, spec, subset) {
			return false
		}
	}
	return true
}

// AllNodes returns the trivial alliance containing every node. Under the
// solvability assumption δ_u ≥ max(f(u), g(u)) it is always an
// (f,g)-alliance; it is the starting point FGA reduces from.
func AllNodes(g *graph.Graph) []int {
	members := make([]int, g.N())
	for u := range members {
		members[u] = u
	}
	return members
}

// GreedyMinimize reduces members to a 1-minimal alliance by repeatedly
// removing, in increasing node order, any member whose removal keeps the
// alliance property. It is a simple sequential comparator used in tests to
// cross-check that 1-minimal alliances exist and to compare sizes against
// FGA's distributed output.
func GreedyMinimize(g *graph.Graph, spec Spec, members []int) []int {
	current := append([]int(nil), members...)
	for {
		removed := false
		for i := 0; i < len(current); i++ {
			candidate := make([]int, 0, len(current)-1)
			candidate = append(candidate, current[:i]...)
			candidate = append(candidate, current[i+1:]...)
			if IsAlliance(g, spec, candidate) {
				current = candidate
				removed = true
				break
			}
		}
		if !removed {
			return current
		}
	}
}
