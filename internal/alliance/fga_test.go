package alliance

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sdr/internal/core"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

func TestNewFGAValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFGA with nil requirement functions must panic")
		}
	}()
	NewFGA(Spec{Name: "broken"})
}

func TestFGAStateBasics(t *testing.T) {
	s := FGAState{Col: true, Scr: 1, CanQ: true, Ptr: 4}
	if !s.Equal(s.Clone()) {
		t.Error("clone must equal the original")
	}
	if s.Equal(FGAState{Col: true, Scr: 1, CanQ: true, Ptr: NoPointer}) {
		t.Error("states differing in the pointer must not be equal")
	}
	if s.Equal(ResetFGAState()) {
		t.Error("distinct states must not be equal")
	}
	if !strings.Contains(s.String(), "p=4") || !strings.Contains(ResetFGAState().String(), "p=⊥") {
		t.Error("the rendering must show the pointer, with ⊥ for no pointer")
	}
}

func TestFGAResettableContract(t *testing.T) {
	g := graph.Complete(4)
	net := sim.NewNetwork(g)
	fga := NewFGA(GlobalPowerfulAlliance())
	if fga.Spec().Name != GlobalPowerfulAlliance().Name {
		t.Error("Spec() must return the constructed spec")
	}
	if err := fga.Validate(g); err != nil {
		t.Errorf("the powerful alliance is solvable on K4: %v", err)
	}
	if !strings.Contains(fga.Name(), "FGA") {
		t.Errorf("name %q should mention FGA", fga.Name())
	}
	if !fga.IsReset(0, net, fga.ResetState(0, net)) || !fga.IsReset(0, net, fga.InitialInner(0, net)) {
		t.Error("reset and initial states must satisfy P_reset (Requirement 2e)")
	}
	for _, bad := range []FGAState{
		{Col: false, Scr: 1, CanQ: true, Ptr: NoPointer},
		{Col: true, Scr: 0, CanQ: true, Ptr: NoPointer},
		{Col: true, Scr: 1, CanQ: false, Ptr: NoPointer},
		{Col: true, Scr: 1, CanQ: true, Ptr: 2},
	} {
		if fga.IsReset(0, net, bad) {
			t.Errorf("%v must not satisfy P_reset", bad)
		}
	}
	if err := core.CheckRequirements(fga, net); err != nil {
		t.Errorf("FGA must satisfy the composition requirements on K4: %v", err)
	}
}

func TestFGARequirementsOnAllSpecsAndTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	topologies := []*graph.Graph{graph.Complete(5), graph.Ring(6), graph.RandomConnected(8, 0.6, rng)}
	for _, g := range topologies {
		net := sim.NewNetwork(g)
		for _, spec := range StandardSpecs() {
			if spec.Validate(g) != nil {
				continue
			}
			if err := core.CheckRequirements(NewFGA(spec), net); err != nil {
				t.Errorf("spec %s on n=%d: %v", spec.Name, g.N(), err)
			}
		}
	}
}

func TestFGAEnumerateInner(t *testing.T) {
	g := graph.Star(4) // centre 0 has degree 3, leaves have degree 1
	net := sim.NewNetwork(g)
	fga := NewFGA(DominatingSet())
	// 2 col × 3 scr × 2 canQ × (2 + degree) pointers.
	if got, want := len(fga.EnumerateInner(0, net)), 12*(2+3); got != want {
		t.Errorf("centre enumerates %d states, want %d", got, want)
	}
	if got, want := len(fga.EnumerateInner(1, net)), 12*(2+1); got != want {
		t.Errorf("leaf enumerates %d states, want %d", got, want)
	}
	// The indexed enumeration must agree positionally at every process.
	for u := 0; u < net.N(); u++ {
		states := fga.EnumerateInner(u, net)
		if got := fga.InnerStateCount(u, net); got != len(states) {
			t.Fatalf("InnerStateCount(%d) = %d, want %d", u, got, len(states))
		}
		for i, want := range states {
			if got := fga.InnerStateAt(u, net, i); !got.Equal(want) {
				t.Fatalf("InnerStateAt(%d, %d) = %s, want %s", u, i, got, want)
			}
		}
	}
}

// fgaConfig builds a plain (standalone) FGA configuration.
func fgaConfig(states ...FGAState) *sim.Configuration {
	out := make([]sim.State, len(states))
	for i, s := range states {
		out[i] = s
	}
	return sim.NewConfiguration(out)
}

func TestICorrectCases(t *testing.T) {
	// Path 0-1-2 with the (1,1)-alliance.
	g := graph.Path(3)
	net := sim.NewNetwork(g)
	fga := NewFGA(Constant("test", 1, 1))
	view := func(c *sim.Configuration, u int) core.InnerView {
		return core.NewStandaloneView(net.View(c, u))
	}
	member := func(scr int, ptr int) FGAState { return FGAState{Col: true, Scr: scr, CanQ: true, Ptr: ptr} }

	// All members, everyone consistent: correct.
	all := fgaConfig(member(1, NoPointer), member(1, NoPointer), member(1, NoPointer))
	for u := 0; u < 3; u++ {
		if !fga.ICorrect(view(all, u)) {
			t.Errorf("process %d should be I-correct in the all-member configuration", u)
		}
	}

	// Node 0 outside with no member neighbour at all: realScr(0) < 0.
	starved := fgaConfig(
		FGAState{Col: false, Scr: 1, CanQ: false, Ptr: NoPointer},
		FGAState{Col: false, Scr: 1, CanQ: false, Ptr: NoPointer},
		member(1, NoPointer))
	if fga.ICorrect(view(starved, 0)) {
		t.Error("a non-member with no member neighbour must be I-incorrect (realScr < 0)")
	}

	// Pointer at a member neighbour while scr ≠ realScr = 0: none of the
	// disjuncts of P_ICorrect holds, so the state must be flagged.
	cfg := fgaConfig(member(1, 1), member(0, NoPointer), member(1, NoPointer))
	if fga.ICorrect(view(cfg, 0)) {
		t.Error("approving a member neighbour while one's own slack is 0 must be I-incorrect")
	}

	// Self-approval by a member is accepted (documented deviation).
	selfApprove := fgaConfig(
		FGAState{Col: true, Scr: 0, CanQ: true, Ptr: net.ID(0)},
		member(1, NoPointer), member(1, NoPointer))
	if !fga.ICorrect(view(selfApprove, 0)) {
		t.Error("a member approving itself must be I-correct")
	}

	// The middle process points at a neighbour that has already left the
	// alliance, with scr=1 still set: the third disjunct accepts this
	// transient state (realScr(1) = 0 because only node 0 is still a member).
	left := fgaConfig(
		member(1, NoPointer),
		FGAState{Col: true, Scr: 1, CanQ: false, Ptr: net.ID(2)},
		FGAState{Col: false, Scr: 1, CanQ: false, Ptr: NoPointer})
	if !fga.ICorrect(view(left, 1)) {
		t.Error("pointing at a departed process with scr=1 is a legitimate transient state")
	}

	// Pointer at an identifier outside the closed neighbourhood: incorrect
	// (unless scr = realScr = 1 holds, which it does not here).
	dangling := fgaConfig(
		FGAState{Col: true, Scr: 0, CanQ: true, Ptr: 99},
		member(1, NoPointer), member(1, NoPointer))
	if fga.ICorrect(view(dangling, 0)) {
		t.Error("a dangling pointer with scr ≠ 1 must be I-incorrect")
	}
}

func TestStandaloneFGATerminatesIn1MinimalAlliance(t *testing.T) {
	// Theorems 8 and 9 (with Corollary 10): from γ_init, FGA alone terminates
	// within the O(Δ·m) move bound and 5n+4 rounds, and the output is a
	// 1-minimal (f,g)-alliance. Swept over specs, topologies and daemons.
	rng := rand.New(rand.NewSource(77))
	topologies := map[string]*graph.Graph{
		"ring9":     graph.Ring(9),
		"complete6": graph.Complete(6),
		"grid3x3":   graph.Grid(3, 3),
		"random10":  graph.RandomConnected(10, 0.45, rng),
		"star7":     graph.Star(7),
	}
	for name, g := range topologies {
		for _, spec := range StandardSpecs() {
			if spec.Validate(g) != nil {
				continue
			}
			for _, df := range sim.StandardDaemonFactories() {
				if df.Name == "greedy-adversarial" {
					continue // quadratic lookahead, covered elsewhere
				}
				net := sim.NewNetwork(g)
				alg := core.NewStandalone(NewFGA(spec))
				res := sim.NewEngine(net, alg, df.New(int64(g.N()))).Run(
					sim.InitialConfiguration(alg, net), sim.WithMaxSteps(400_000))
				if !res.Terminated {
					t.Fatalf("%s/%s/%s: FGA did not terminate", name, spec.Name, df.Name)
				}
				members := Members(res.Final)
				if err := Explain1Minimal(g, spec, members); err != nil {
					t.Errorf("%s/%s/%s: %v", name, spec.Name, df.Name, err)
				}
				if res.Moves > MaxStandaloneMoves(g.N(), g.M(), g.MaxDegree()) {
					t.Errorf("%s/%s/%s: %d moves exceed the O(Δ·m) bound %d",
						name, spec.Name, df.Name, res.Moves, MaxStandaloneMoves(g.N(), g.M(), g.MaxDegree()))
				}
				if res.Rounds > MaxStandaloneRounds(g.N()) {
					t.Errorf("%s/%s/%s: %d rounds exceed the 5n+4 bound %d",
						name, spec.Name, df.Name, res.Rounds, MaxStandaloneRounds(g.N()))
				}
			}
		}
	}
}

func TestRemovalsAreLocallyCentral(t *testing.T) {
	// The approval pointers make removals locally central: in every step, at
	// most one process of any closed neighbourhood leaves the alliance.
	rng := rand.New(rand.NewSource(13))
	g := graph.RandomConnected(12, 0.4, rng)
	net := sim.NewNetwork(g)
	alg := core.NewStandalone(NewFGA(GlobalOffensiveAlliance()))
	violations := 0
	hook := func(info sim.StepInfo) {
		var leavers []int
		for i, u := range info.Activated {
			if info.Rules[i] == RuleClr {
				leavers = append(leavers, u)
			}
		}
		for i := 0; i < len(leavers); i++ {
			for j := i + 1; j < len(leavers); j++ {
				a, b := leavers[i], leavers[j]
				if a == b || g.HasEdge(a, b) {
					violations++
				}
				for k := 0; k < g.Degree(a); k++ {
					if w := g.Neighbor(a, k); g.HasEdge(w, b) || w == b {
						violations++
					}
				}
			}
		}
	}
	res := sim.NewEngine(net, alg, sim.SynchronousDaemon{}).Run(
		sim.InitialConfiguration(alg, net), sim.WithMaxSteps(100_000), sim.WithStepHook(hook))
	if !res.Terminated {
		t.Fatal("FGA did not terminate under the synchronous daemon")
	}
	if violations > 0 {
		t.Errorf("%d pairs of removals shared a closed neighbourhood", violations)
	}
}

func TestMembershipNeverGrows(t *testing.T) {
	// The col variable only moves from true to false in FGA (fact (1) of the
	// termination proof): the alliance shrinks monotonically in standalone
	// executions.
	g := graph.Complete(7)
	net := sim.NewNetwork(g)
	alg := core.NewStandalone(NewFGA(KTupleDomination(2)))
	prev := len(Members(sim.InitialConfiguration(alg, net)))
	grew := false
	hook := func(info sim.StepInfo) {
		cur := len(Members(info.After))
		if cur > prev {
			grew = true
		}
		prev = cur
	}
	daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(2)), 0.6)
	sim.NewEngine(net, alg, daemon).Run(sim.InitialConfiguration(alg, net),
		sim.WithMaxSteps(100_000), sim.WithStepHook(hook))
	if grew {
		t.Error("the alliance grew during a standalone execution of FGA")
	}
}

func TestMembersAcceptsComposedAndPlainStates(t *testing.T) {
	plain := fgaConfig(
		FGAState{Col: true, Scr: 1, CanQ: true, Ptr: NoPointer},
		FGAState{Col: false, Scr: 1, CanQ: false, Ptr: NoPointer})
	if got := Members(plain); len(got) != 1 || got[0] != 0 {
		t.Errorf("Members(plain) = %v, want [0]", got)
	}
	composed := sim.NewConfiguration([]sim.State{
		core.ComposedState{SDR: core.CleanSDRState(), Inner: FGAState{Col: false, Scr: 1, CanQ: false, Ptr: NoPointer}},
		core.ComposedState{SDR: core.CleanSDRState(), Inner: FGAState{Col: true, Scr: 1, CanQ: true, Ptr: NoPointer}},
	})
	if got := Members(composed); len(got) != 1 || got[0] != 1 {
		t.Errorf("Members(composed) = %v, want [1]", got)
	}
}

func TestTerminalPredicate(t *testing.T) {
	g := graph.Path(3)
	net := sim.NewNetwork(g)
	pred := TerminalPredicate(DominatingSet(), net)
	oneMinimal := fgaConfig(
		FGAState{Col: false, Scr: 1, CanQ: false, Ptr: NoPointer},
		FGAState{Col: true, Scr: 1, CanQ: true, Ptr: NoPointer},
		FGAState{Col: false, Scr: 1, CanQ: false, Ptr: NoPointer})
	if !pred(oneMinimal) {
		t.Error("{1} is a 1-minimal dominating set of the 3-path")
	}
	full := fgaConfig(ResetFGAState(), ResetFGAState(), ResetFGAState())
	if pred(full) {
		t.Error("the full set is not 1-minimal on a 3-path")
	}
}

func TestBoundsFormulas(t *testing.T) {
	if MaxStandaloneMovesPerProcess(3, 5) != 8*3*5+18*3+24 {
		t.Error("MaxStandaloneMovesPerProcess formula mismatch")
	}
	if MaxStandaloneMoves(10, 20, 5) != 16*5*20+36*20+24*10 {
		t.Error("MaxStandaloneMoves formula mismatch")
	}
	if MaxStandaloneRounds(10) != 54 {
		t.Error("MaxStandaloneRounds formula mismatch")
	}
	if MaxStabilizationMoves(10, 20, 5) != 11*(16*20*5+36*20+27*10) {
		t.Error("MaxStabilizationMoves formula mismatch")
	}
	if MaxStabilizationRounds(10) != 30+54 {
		t.Error("MaxStabilizationRounds formula mismatch")
	}
}

func TestQuickStandaloneFGAOnRandomGraphs(t *testing.T) {
	// Property: on random connected graphs, FGA from γ_init terminates in a
	// 1-minimal dominating set (and respects the move bound).
	property := func(seed int64, rawN uint8) bool {
		n := int(rawN%10) + 4
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, 0.4, rng)
		spec := DominatingSet()
		net := sim.NewNetwork(g)
		alg := core.NewStandalone(NewFGA(spec))
		res := sim.NewEngine(net, alg, sim.NewDistributedRandomDaemon(rng, 0.5)).Run(
			sim.InitialConfiguration(alg, net), sim.WithMaxSteps(300_000))
		if !res.Terminated {
			return false
		}
		if res.Moves > MaxStandaloneMoves(g.N(), g.M(), g.MaxDegree()) {
			return false
		}
		return Is1Minimal(g, spec, Members(res.Final))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
