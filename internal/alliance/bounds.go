package alliance

import "sdr/internal/core"

// Theoretical bounds of Section 6, exported so that tests and benchmarks can
// assert measured costs against them.

// MaxStandaloneMovesPerProcess is the per-process move bound of Lemma 25: a
// process v executes at most 8·δ_v·Δ + 18·δ_v + 24 moves in any execution of
// FGA alone.
func MaxStandaloneMovesPerProcess(degree, maxDegree int) int {
	return 8*degree*maxDegree + 18*degree + 24
}

// MaxStandaloneMoves is the total move bound of Corollary 11: any execution
// of FGA alone contains at most 16·Δ·m + 36·m + 24·n moves, i.e. O(Δ·m).
func MaxStandaloneMoves(n, m, maxDegree int) int {
	return 16*maxDegree*m + 36*m + 24*n
}

// MaxStandaloneRounds is the round bound of Theorem 10 / Corollary 12:
// starting from a configuration satisfying P_Clean ∧ P_ICorrect everywhere
// (in particular from γ_init), FGA terminates within at most 5n + 4 rounds.
func MaxStandaloneRounds(n int) int { return 5*n + 4 }

// MaxStabilizationMoves is the move bound derived in Section 6.5 for
// Theorem 12: any execution of FGA ∘ SDR terminates within at most
// (n+1)·(16·m·Δ + 36·m + 27·n) moves, i.e. O(Δ·n·m).
func MaxStabilizationMoves(n, m, maxDegree int) int {
	return (n + 1) * (16*m*maxDegree + 36*m + 27*n)
}

// MaxStabilizationRounds is the round bound of Theorem 14: FGA ∘ SDR reaches
// a terminal configuration within at most 8n + 4 rounds (3n for SDR to reach
// a normal configuration, then 5n + 4 for FGA to terminate).
func MaxStabilizationRounds(n int) int {
	return core.MaxResetRounds(n) + MaxStandaloneRounds(n)
}
