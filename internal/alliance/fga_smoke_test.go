package alliance

import (
	"math/rand"
	"testing"

	"sdr/internal/core"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

// TestFGASmoke is an early end-to-end check: FGA alone, from γ_init, on a few
// small topologies and specs, terminates in a 1-minimal (f,g)-alliance.
func TestFGASmoke(t *testing.T) {
	topologies := map[string]*graph.Graph{
		"ring8":     graph.Ring(8),
		"complete5": graph.Complete(5),
		"grid3x3":   graph.Grid(3, 3),
	}
	for name, g := range topologies {
		for _, spec := range []Spec{DominatingSet(), GlobalPowerfulAlliance()} {
			t.Run(name+"/"+spec.Name, func(t *testing.T) {
				if err := spec.Validate(g); err != nil {
					t.Skipf("spec not solvable on this topology: %v", err)
				}
				net := sim.NewNetwork(g)
				alg := core.NewStandalone(NewFGA(spec))
				daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(1)), 0.5)
				eng := sim.NewEngine(net, alg, daemon)
				res := eng.Run(sim.InitialConfiguration(alg, net), sim.WithMaxSteps(200_000))
				if !res.Terminated {
					t.Fatalf("FGA did not terminate (steps=%d moves=%d)", res.Steps, res.Moves)
				}
				members := Members(res.Final)
				if err := Explain1Minimal(g, spec, members); err != nil {
					t.Fatalf("terminal alliance %v is not 1-minimal: %v", members, err)
				}
			})
		}
	}
}

// TestFGAComposedSmoke is an early end-to-end check of FGA ∘ SDR from a
// random (corrupted) configuration.
func TestFGAComposedSmoke(t *testing.T) {
	g := graph.Ring(7)
	spec := DominatingSet()
	net := sim.NewNetwork(g)
	composed := NewSelfStabilizing(spec)
	rng := rand.New(rand.NewSource(42))
	daemon := sim.NewDistributedRandomDaemon(rng, 0.6)
	eng := sim.NewEngine(net, composed, daemon)

	// Random composed configuration over the full state space.
	enum := composed
	states := make([]sim.State, net.N())
	for u := range states {
		options := enum.EnumerateStates(u, net)
		states[u] = options[rng.Intn(len(options))].Clone()
	}
	start := sim.NewConfiguration(states)

	res := eng.Run(start, sim.WithMaxSteps(500_000))
	if !res.Terminated {
		t.Fatalf("FGA∘SDR did not terminate (steps=%d moves=%d final=%s)", res.Steps, res.Moves, res.Final)
	}
	members := Members(res.Final)
	if err := Explain1Minimal(g, spec, members); err != nil {
		t.Fatalf("terminal alliance %v is not 1-minimal: %v", members, err)
	}
}
