package alliance

import (
	"testing"

	"sdr/internal/core"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

// ruleByName returns the inner rule with the given name.
func ruleByName(t *testing.T, a *FGA, name string) core.InnerRule {
	t.Helper()
	for _, r := range a.InnerRules() {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("rule %s not found", name)
	return core.InnerRule{}
}

// pathView returns the standalone inner view of process u on a 3-path.
func pathView(net *sim.Network, c *sim.Configuration, u int) core.InnerView {
	return core.NewStandaloneView(net.View(c, u))
}

func TestRuleClrSemantics(t *testing.T) {
	// Path 0-1-2, dominating set (f=1, g=0). Everyone is a member with scr=1
	// and the whole closed neighbourhood of process 1 approves process 1...
	// except that bestPtr prefers the smallest identifier, which is 0. Build
	// the approval for 0 instead and check rule_Clr fires exactly there.
	g := graph.Path(3)
	net := sim.NewNetwork(g)
	fga := NewFGA(DominatingSet())
	clr := ruleByName(t, fga, RuleClr)

	cfg := fgaConfig(
		FGAState{Col: true, Scr: 1, CanQ: true, Ptr: 0},
		FGAState{Col: true, Scr: 1, CanQ: true, Ptr: 0},
		FGAState{Col: true, Scr: 1, CanQ: true, Ptr: 1},
	)
	if !clr.Guard(pathView(net, cfg, 0)) {
		t.Fatal("rule_Clr should be enabled at process 0 (full approval of N[0])")
	}
	if clr.Guard(pathView(net, cfg, 1)) {
		t.Error("rule_Clr must not be enabled at process 1: its own pointer names 0")
	}
	next := clr.Action(pathView(net, cfg, 0)).(FGAState)
	if next.Col {
		t.Error("rule_Clr must clear col")
	}
	if next.CanQ {
		t.Error("after leaving, the process can no longer quit (canQ must be recomputed to false)")
	}
	if next.Scr != 0 {
		// Process 0 now outside: #InAll = 1 = f(0) → realScr = 0.
		t.Errorf("after leaving, scr should be realScr = 0, got %d", next.Scr)
	}
}

func TestRuleP1P2TwoStepSwitch(t *testing.T) {
	// The approval switch happens in two atomic steps: P1 clears the pointer,
	// P2 points at the new best candidate.
	g := graph.Path(3)
	net := sim.NewNetwork(g)
	fga := NewFGA(DominatingSet())
	p1 := ruleByName(t, fga, RuleP1)
	p2 := ruleByName(t, fga, RuleP2)

	// Process 1 points at 2 (stale) while the best candidate in N[1] is 0
	// (smallest identifier with canQ).
	cfg := fgaConfig(
		FGAState{Col: true, Scr: 1, CanQ: true, Ptr: NoPointer},
		FGAState{Col: true, Scr: 1, CanQ: true, Ptr: 2},
		FGAState{Col: true, Scr: 1, CanQ: true, Ptr: NoPointer},
	)
	if !p1.Guard(pathView(net, cfg, 1)) {
		t.Fatal("rule_P1 should be enabled: the pointer is stale and not ⊥")
	}
	if p2.Guard(pathView(net, cfg, 1)) {
		t.Error("rule_P2 must wait until the pointer has been cleared")
	}
	mid := p1.Action(pathView(net, cfg, 1)).(FGAState)
	if mid.Ptr != NoPointer {
		t.Fatalf("rule_P1 must clear the pointer, got %v", mid)
	}

	cfg2 := fgaConfig(
		FGAState{Col: true, Scr: 1, CanQ: true, Ptr: NoPointer},
		mid,
		FGAState{Col: true, Scr: 1, CanQ: true, Ptr: NoPointer},
	)
	if p1.Guard(pathView(net, cfg2, 1)) {
		t.Error("rule_P1 must be disabled once the pointer is ⊥")
	}
	if !p2.Guard(pathView(net, cfg2, 1)) {
		t.Fatal("rule_P2 should now be enabled")
	}
	after := p2.Action(pathView(net, cfg2, 1)).(FGAState)
	if after.Ptr != 0 {
		t.Errorf("rule_P2 must point at the smallest-identifier candidate 0, got %v", after)
	}
}

func TestRuleQRefreshesScoreAndClearsPointer(t *testing.T) {
	// Path 0-1-2 with the (1,1)-alliance: process 1's neighbour 2 has left,
	// so realScr(1) drops to 0; rule_Q refreshes scr/canQ and clears the
	// pointer because the slack is gone.
	g := graph.Path(3)
	net := sim.NewNetwork(g)
	fga := NewFGA(Constant("test", 1, 1))
	q := ruleByName(t, fga, RuleQ)

	// Process 1 still points at the best candidate (node 0, the smallest
	// identifier with canQ), so P_updPtr is false; but its score is stale
	// (realScr dropped to 0 after node 2 left), so rule_Q must fire and, in
	// doing so, clear the pointer.
	cfg := fgaConfig(
		FGAState{Col: true, Scr: 1, CanQ: true, Ptr: NoPointer},
		FGAState{Col: true, Scr: 1, CanQ: true, Ptr: 0},
		FGAState{Col: false, Scr: 0, CanQ: false, Ptr: NoPointer},
	)
	if !q.Guard(pathView(net, cfg, 1)) {
		t.Fatal("rule_Q should be enabled at process 1 (stale scr after the departure)")
	}
	next := q.Action(pathView(net, cfg, 1)).(FGAState)
	if next.Scr != 0 {
		t.Errorf("rule_Q must refresh scr to realScr = 0, got %d", next.Scr)
	}
	if next.Ptr != NoPointer {
		t.Errorf("rule_Q must clear the pointer when realScr ≤ 0, got %v", next)
	}
	if next.CanQ {
		t.Error("rule_Q must refresh canQ: neighbour 2's scr is no longer 1")
	}
}

// TestDeviationRegression encodes the counterexample that motivated the
// documented deviation from the paper's bestPtr macro (DESIGN.md,
// "Deviations"): a degree-1 member m with f(m) = g(m) = #InAll(m) = 1 whose
// only neighbour approves it. With the literal macro the configuration is
// terminal and not 1-minimal; with the corrected macro m approves itself, is
// removed, and the terminal alliance is 1-minimal.
func TestDeviationRegression(t *testing.T) {
	// Star centre 0 with leaves 1, 2, 3 under the global powerful alliance:
	// leaves have degree 1, so f = g = 1 for them.
	g := graph.Star(4)
	spec := GlobalPowerfulAlliance()
	if err := spec.Validate(g); err != nil {
		t.Fatalf("the powerful alliance is solvable on a star: %v", err)
	}
	net := sim.NewNetwork(g)
	alg := core.NewStandalone(NewFGA(spec))
	res := sim.NewEngine(net, alg, sim.SynchronousDaemon{}).Run(
		sim.InitialConfiguration(alg, net), sim.WithMaxSteps(50_000))
	if !res.Terminated {
		t.Fatal("FGA did not terminate")
	}
	members := Members(res.Final)
	if err := Explain1Minimal(g, spec, members); err != nil {
		t.Fatalf("terminal alliance %v is not 1-minimal: %v", members, err)
	}
	// The 1-minimal powerful alliance on a star keeps the centre and exactly
	// enough leaves; in particular at least one leaf must have been removed,
	// which is only possible through self-approval at score 0.
	if len(members) == g.N() {
		t.Error("no process ever left the alliance; the removal machinery did not run")
	}
}

func TestBestPtrScoreGuardStillProtectsNeighbours(t *testing.T) {
	// The correction only exempts the self-candidate: a process with scr ≤ 0
	// must still not approve a neighbour.
	g := graph.Path(3)
	net := sim.NewNetwork(g)
	fga := NewFGA(Constant("test", 1, 1))
	p2 := ruleByName(t, fga, RuleP2)

	// Process 1 has no slack (scr would be 0 after refresh) and its neighbour
	// 0 asks to leave (canQ). bestPtr(1) must stay ⊥, so P2 must be disabled.
	cfg := fgaConfig(
		FGAState{Col: true, Scr: 0, CanQ: true, Ptr: NoPointer},
		FGAState{Col: true, Scr: 0, CanQ: false, Ptr: NoPointer},
		FGAState{Col: false, Scr: 1, CanQ: false, Ptr: NoPointer},
	)
	if p2.Guard(pathView(net, cfg, 1)) {
		t.Error("a process without slack must not approve a neighbour")
	}
}
