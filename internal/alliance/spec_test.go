package alliance

import (
	"strings"
	"testing"

	"sdr/internal/graph"
)

func TestConstantSpec(t *testing.T) {
	s := Constant("test", 2, 1)
	if s.F(0, 5) != 2 || s.G(3, 7) != 1 {
		t.Error("constant spec must ignore node and degree")
	}
	g := graph.Complete(4)
	if s.FOf(g, 0) != 2 || s.GOf(g, 0) != 1 {
		t.Error("FOf/GOf must evaluate the spec on the graph")
	}
}

func TestSpecValidate(t *testing.T) {
	ring := graph.Ring(5) // every degree is 2
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Constant("ok", 1, 0), true},
		{Constant("ok2", 2, 2), true},
		{Constant("f-too-big", 3, 0), false},
		{Constant("g-too-big", 1, 3), false},
		{Constant("negative", -1, 0), false},
		{Spec{Name: "nil-funcs"}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate(ring)
		if c.ok && err != nil {
			t.Errorf("spec %q should be valid on a ring: %v", c.spec.Name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("spec %q should be rejected on a ring", c.spec.Name)
		}
	}
}

func TestSpecialCaseDefinitions(t *testing.T) {
	// Check the six §6.1 instances give the expected thresholds on known
	// degrees.
	cases := []struct {
		spec   Spec
		degree int
		wantF  int
		wantG  int
	}{
		{DominatingSet(), 4, 1, 0},
		{KDomination(3), 4, 3, 0},
		{KTupleDomination(3), 4, 3, 2},
		{GlobalOffensiveAlliance(), 4, 3, 0}, // ⌈(4+1)/2⌉ = 3
		{GlobalOffensiveAlliance(), 5, 3, 0}, // ⌈(5+1)/2⌉ = 3
		{GlobalDefensiveAlliance(), 4, 1, 3},
		{GlobalPowerfulAlliance(), 4, 3, 2}, // ⌈5/2⌉=3, ⌈4/2⌉=2
		{GlobalPowerfulAlliance(), 5, 3, 3}, // ⌈6/2⌉=3, ⌈5/2⌉=3
	}
	for _, c := range cases {
		if got := c.spec.F(0, c.degree); got != c.wantF {
			t.Errorf("%s: f(degree %d) = %d, want %d", c.spec.Name, c.degree, got, c.wantF)
		}
		if got := c.spec.G(0, c.degree); got != c.wantG {
			t.Errorf("%s: g(degree %d) = %d, want %d", c.spec.Name, c.degree, got, c.wantG)
		}
	}
}

func TestStandardSpecs(t *testing.T) {
	specs := StandardSpecs()
	if len(specs) != 6 {
		t.Fatalf("expected the 6 special cases of §6.1, got %d", len(specs))
	}
	names := make(map[string]bool)
	for _, s := range specs {
		if s.Name == "" || s.F == nil || s.G == nil {
			t.Errorf("spec %+v is incomplete", s)
		}
		names[s.Name] = true
	}
	if len(names) != 6 {
		t.Error("spec names must be distinct")
	}
	// All six are solvable on a complete graph of 6 nodes (degree 5).
	k6 := graph.Complete(6)
	for _, s := range specs {
		if err := s.Validate(k6); err != nil {
			t.Errorf("%s should be solvable on K6: %v", s.Name, err)
		}
	}
}

func TestParametricSpecNames(t *testing.T) {
	if !strings.Contains(KDomination(4).Name, "4") || !strings.Contains(KTupleDomination(5).Name, "5") {
		t.Error("parametric spec names should carry the parameter")
	}
}
