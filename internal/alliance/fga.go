package alliance

import (
	"fmt"

	"sdr/internal/core"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

// FGA is Algorithm 3 of the paper: a distributed (non self-stabilizing)
// algorithm that computes a 1-minimal (f,g)-alliance in an identified
// network, designed to be composed with SDR. Starting from the pre-defined
// configuration where every process is in the alliance, processes leave one
// at a time (locally centrally, thanks to the approval pointers) until the
// alliance is 1-minimal.
//
// It implements core.Resettable so that core.Compose(FGA) is the
// self-stabilizing FGA ∘ SDR of Section 6.5.
type FGA struct {
	spec Spec
}

var (
	_ core.Resettable      = (*FGA)(nil)
	_ core.InnerEnumerable = (*FGA)(nil)
)

// NewFGA returns Algorithm FGA for the given (f,g) specification.
func NewFGA(spec Spec) *FGA {
	if spec.F == nil || spec.G == nil {
		panic(fmt.Sprintf("alliance: spec %q must define both F and G", spec.Name))
	}
	return &FGA{spec: spec}
}

// Spec returns the (f,g) specification the algorithm solves.
func (a *FGA) Spec() Spec { return a.spec }

// Validate checks the solvability assumption δ_u ≥ max(f(u), g(u)) on g.
func (a *FGA) Validate(g *graph.Graph) error { return a.spec.Validate(g) }

// Name implements core.Resettable.
func (a *FGA) Name() string { return "FGA(" + a.spec.Name + ")" }

// InitialInner implements core.Resettable: in γ_init every process is in the
// alliance with scr = 1, canQ = true and ptr = ⊥.
func (a *FGA) InitialInner(int, *sim.Network) sim.State { return ResetFGAState() }

// ResetState implements core.Resettable: the reset(u) macro re-installs the
// pre-defined state.
func (a *FGA) ResetState(int, *sim.Network) sim.State { return ResetFGAState() }

// IsReset implements core.Resettable:
// P_reset(u) ≡ col_u ∧ ptr_u = ⊥ ∧ canQ_u ∧ scr_u = 1. The reset state is the
// same for every process, so the process index and network are unused.
func (a *FGA) IsReset(_ int, _ *sim.Network, inner sim.State) bool {
	s, ok := inner.(FGAState)
	return ok && s.Col && s.Ptr == NoPointer && s.CanQ && s.Scr == 1
}

// f returns f(u) for the viewed process.
func (a *FGA) f(v core.InnerView) int { return a.spec.F(v.Process(), v.Degree()) }

// g returns g(u) for the viewed process.
func (a *FGA) g(v core.InnerView) int { return a.spec.G(v.Process(), v.Degree()) }

// inAll is the macro #InAll(u) = |{w ∈ N(u) | col_w}|.
func (a *FGA) inAll(v core.InnerView) int {
	return v.CountNeighbors(func(s sim.State) bool { return fgaOf(s).Col })
}

// realScr is the macro realScr(u): the sign of the slack between #InAll(u)
// and the requirement that applies to u (g(u) inside the alliance, f(u)
// outside), clamped to {-1, 0, 1}.
func (a *FGA) realScr(v core.InnerView) int {
	in := a.inAll(v)
	need := a.f(v)
	if fgaOf(v.Self()).Col {
		need = a.g(v)
	}
	switch {
	case in < need:
		return -1
	case in == need:
		return 0
	default:
		return 1
	}
}

// pCanQuit is P_canQuit(u) ≡ col_u ∧ #InAll(u) ≥ f(u) ∧ (∀v ∈ N(u), scr_v = 1).
func (a *FGA) pCanQuit(v core.InnerView) bool {
	if !fgaOf(v.Self()).Col || a.inAll(v) < a.f(v) {
		return false
	}
	return v.AllNeighbors(func(s sim.State) bool { return fgaOf(s).Scr == 1 })
}

// pToQuit is P_toQuit(u) ≡ P_canQuit(u) ∧ (∀v ∈ N[u], ptr_v = u): u has the
// full approval of its closed neighbourhood to leave the alliance.
func (a *FGA) pToQuit(v core.InnerView) bool {
	if !a.pCanQuit(v) {
		return false
	}
	id := v.ID()
	if fgaOf(v.Self()).Ptr != id {
		return false
	}
	return v.AllNeighbors(func(s sim.State) bool { return fgaOf(s).Ptr == id })
}

// bestPtr is the macro bestPtr(u), evaluated with the given values of the
// process's own scr and canQ variables (upd(u) recomputes them before
// assigning the pointer, so callers pass either the current or the freshly
// computed values):
//
//	if ∀v ∈ N[u], ¬canQ_v return ⊥;
//	let b be the member of N[u] with canQ of smallest identifier;
//	if b = u return u;
//	if scr_u ≤ 0 return ⊥; otherwise return b.
//
// Faithfulness note: the paper's macro returns ⊥ whenever scr_u ≤ 0, before
// looking at the candidates. That literal version deadlocks in a corner case
// the proof of Theorem 8 overlooks: a member m with #InAll(m) = g(m) (so
// realScr(m) = 0) whose removal keeps the alliance valid can never approve
// itself, so rule_Clr(m) never fires and the terminal alliance is not
// 1-minimal. Approving oneself is safe regardless of one's own score — a
// process leaving the alliance does not reduce its own #InAll — so the
// self-candidate is exempted from the score guard. The score guard is kept
// verbatim for neighbour candidates, which is what the closure of
// realScr(u) ≥ 0 (Lemma 22) relies on. See DESIGN.md, "Deviations".
func (a *FGA) bestPtr(v core.InnerView, selfScr int, selfCanQ bool) int {
	best := NoPointer
	if selfCanQ {
		best = v.ID()
	}
	for i := 0; i < v.Degree(); i++ {
		if !fgaOf(v.Neighbor(i)).CanQ {
			continue
		}
		if id := v.NeighborID(i); best == NoPointer || id < best {
			best = id
		}
	}
	if best == NoPointer || best == v.ID() {
		return best
	}
	if selfScr <= 0 {
		return NoPointer
	}
	return best
}

// pUpdPtr is P_updPtr(u) ≡ ¬P_toQuit(u) ∧ ptr_u ≠ bestPtr(u), evaluated on
// the current variable values.
func (a *FGA) pUpdPtr(v core.InnerView) bool {
	if a.pToQuit(v) {
		return false
	}
	self := fgaOf(v.Self())
	return self.Ptr != a.bestPtr(v, self.Scr, self.CanQ)
}

// colOfPointer resolves ptr within the closed neighbourhood of the view and
// returns the col variable of the pointed process. found is false when the
// pointer is ⊥ or does not name any member of N[u] (which can only happen in
// corrupted configurations).
func (a *FGA) colOfPointer(v core.InnerView, ptr int) (col, found bool) {
	if ptr == NoPointer {
		return false, false
	}
	if v.ID() == ptr {
		return fgaOf(v.Self()).Col, true
	}
	for i := 0; i < v.Degree(); i++ {
		if v.NeighborID(i) == ptr {
			return fgaOf(v.Neighbor(i)).Col, true
		}
	}
	return false, false
}

// ICorrect implements core.Resettable:
//
//	P_ICorrect(u) ≡ realScr(u) ≥ 0 ∧
//	                [(scr_u = realScr(u) = 1) ∨ ptr_u = ⊥ ∨
//	                 (ptr_u = u ∧ col_u) ∨
//	                 (ptr_u ≠ ⊥ ∧ scr_u = 1 ∧ ¬col_{ptr_u})]
//
// The third disjunct (self-approval by an alliance member) is the companion
// of the bestPtr deviation documented above: a member that approves itself
// never loses an alliance neighbour in the same step (that neighbour would
// need ptr_u to point at it), so the state is locally consistent even when
// scr_u < 1. The remaining disjuncts are the paper's.
func (a *FGA) ICorrect(v core.InnerView) bool {
	rs := a.realScr(v)
	if rs < 0 {
		return false
	}
	self := fgaOf(v.Self())
	if self.Scr == 1 && rs == 1 {
		return true
	}
	if self.Ptr == NoPointer {
		return true
	}
	if self.Ptr == v.ID() && self.Col {
		return true
	}
	if self.Scr != 1 {
		return false
	}
	col, found := a.colOfPointer(v, self.Ptr)
	return found && !col
}

// cmpVar applies the macro cmpVar(u) to the given state: scr := realScr(u),
// canQ := P_canQuit(u). Both macros read the neighbours' current values and
// the given col value of the process itself.
func (a *FGA) cmpVar(v core.InnerView, s FGAState) FGAState {
	in := a.inAll(v)
	need := a.f(v)
	if s.Col {
		need = a.g(v)
	}
	switch {
	case in < need:
		s.Scr = -1
	case in == need:
		s.Scr = 0
	default:
		s.Scr = 1
	}
	canQuit := s.Col && in >= a.f(v) &&
		v.AllNeighbors(func(ns sim.State) bool { return fgaOf(ns).Scr == 1 })
	s.CanQ = canQuit
	return s
}

// upd applies the macro upd(u): cmpVar(u) followed by ptr := bestPtr(u),
// where bestPtr reads the freshly computed scr and canQ of the process.
func (a *FGA) upd(v core.InnerView, s FGAState) FGAState {
	s = a.cmpVar(v, s)
	s.Ptr = a.bestPtr(v, s.Scr, s.CanQ)
	return s
}

// Names of the four FGA rules.
const (
	// RuleClr is rule_Clr(u): the process leaves the alliance.
	RuleClr = "Clr"
	// RuleP1 is rule_P1(u): first half of an approval switch (ptr := ⊥).
	RuleP1 = "P1"
	// RuleP2 is rule_P2(u): second half of an approval switch (ptr := bestPtr).
	RuleP2 = "P2"
	// RuleQ is rule_Q(u): refresh scr and canQ after a neighbourhood change.
	RuleQ = "Q"
)

// InnerRules implements core.Resettable. P_ICorrect(u) appears in every guard
// of Algorithm 3; it is added by the composition (and by core.Standalone), so
// the rules below only carry P_Clean(u) and the rule-specific part.
func (a *FGA) InnerRules() []core.InnerRule {
	return []core.InnerRule{
		{
			// rule_Clr(u): P_toQuit(u) → col_u := false; upd(u);
			Name: RuleClr,
			Guard: func(v core.InnerView) bool {
				return v.Clean() && a.pToQuit(v)
			},
			Action: func(v core.InnerView) sim.State {
				s := fgaOf(v.Self())
				s.Col = false
				return a.upd(v, s)
			},
		},
		{
			// rule_P1(u): P_updPtr(u) ∧ ptr_u ≠ ⊥ → ptr_u := ⊥; cmpVar(u);
			Name: RuleP1,
			Guard: func(v core.InnerView) bool {
				return v.Clean() && a.pUpdPtr(v) && fgaOf(v.Self()).Ptr != NoPointer
			},
			Action: func(v core.InnerView) sim.State {
				s := fgaOf(v.Self())
				s.Ptr = NoPointer
				return a.cmpVar(v, s)
			},
		},
		{
			// rule_P2(u): P_updPtr(u) ∧ ptr_u = ⊥ → upd(u);
			Name: RuleP2,
			Guard: func(v core.InnerView) bool {
				return v.Clean() && a.pUpdPtr(v) && fgaOf(v.Self()).Ptr == NoPointer
			},
			Action: func(v core.InnerView) sim.State {
				return a.upd(v, fgaOf(v.Self()))
			},
		},
		{
			// rule_Q(u): ¬P_toQuit(u) ∧ ¬P_updPtr(u) ∧
			//            (scr_u ≠ realScr(u) ∨ canQ_u ≠ P_canQuit(u))
			//            → cmpVar(u); if realScr(u) ≤ 0 then ptr_u := ⊥;
			Name: RuleQ,
			Guard: func(v core.InnerView) bool {
				if !v.Clean() || a.pToQuit(v) || a.pUpdPtr(v) {
					return false
				}
				self := fgaOf(v.Self())
				return self.Scr != a.realScr(v) || self.CanQ != a.pCanQuit(v)
			},
			Action: func(v core.InnerView) sim.State {
				s := a.cmpVar(v, fgaOf(v.Self()))
				if a.realScr(v) <= 0 {
					s.Ptr = NoPointer
				}
				return s
			},
		},
	}
}

// EnumerateInner implements core.InnerEnumerable: every combination of
// col ∈ {false, true}, scr ∈ {-1, 0, 1}, canQ ∈ {false, true} and
// ptr ∈ {⊥} ∪ {identifiers of N[u]}.
func (a *FGA) EnumerateInner(u int, net *sim.Network) []sim.State {
	pointers := []int{NoPointer, net.ID(u)}
	for i, deg := 0, net.Degree(u); i < deg; i++ {
		pointers = append(pointers, net.ID(net.Neighbor(u, i)))
	}
	var out []sim.State
	for _, col := range []bool{false, true} {
		for _, scr := range []int{-1, 0, 1} {
			for _, canQ := range []bool{false, true} {
				for _, ptr := range pointers {
					out = append(out, FGAState{Col: col, Scr: scr, CanQ: canQ, Ptr: ptr})
				}
			}
		}
	}
	return out
}

// InnerStateCount implements core.InnerIndexedEnumerable: 2 colours × 3
// scores × 2 quit flags × (⊥ + the closed neighbourhood) pointers.
func (a *FGA) InnerStateCount(u int, net *sim.Network) int {
	return 12 * (net.Degree(u) + 2)
}

// InnerStateAt implements core.InnerIndexedEnumerable, reproducing
// EnumerateInner's order: col outermost, then scr, then canQ, the pointer
// (⊥, own id, neighbours in local-label order) innermost.
func (a *FGA) InnerStateAt(u int, net *sim.Network, i int) sim.State {
	span := net.Degree(u) + 2
	rest, pi := i/span, i%span
	s := FGAState{CanQ: rest%2 == 1}
	rest /= 2
	s.Scr = rest%3 - 1
	s.Col = rest/3 == 1
	switch pi {
	case 0:
		s.Ptr = NoPointer
	case 1:
		s.Ptr = net.ID(u)
	default:
		s.Ptr = net.ID(net.Neighbor(u, pi-2))
	}
	return s
}

// NewSelfStabilizing returns the self-stabilizing composition FGA ∘ SDR for
// the given specification (Theorem 13).
func NewSelfStabilizing(spec Spec) *core.Composed {
	return core.Compose(NewFGA(spec))
}

// NewSelfStabilizingUncooperative returns the ablation variant of FGA ∘ SDR
// in which resets do not cooperate (see core.WithUncooperativeResets).
func NewSelfStabilizingUncooperative(spec Spec) *core.Composed {
	return core.Compose(NewFGA(spec), core.WithUncooperativeResets())
}

// Members returns the sorted list of processes whose col variable is true in
// the configuration. It accepts configurations of both FGA alone (FGAState)
// and FGA ∘ SDR (core.ComposedState wrapping FGAState).
func Members(c *sim.Configuration) []int {
	var members []int
	for u := 0; u < c.N(); u++ {
		s := c.State(u)
		if cs, ok := s.(core.ComposedState); ok {
			s = cs.Inner
		}
		if fgaOf(s).Col {
			members = append(members, u)
		}
	}
	return members
}

// TerminalPredicate returns the predicate "the configuration is terminal for
// FGA and the col variables form a 1-minimal (f,g)-alliance", used as the
// legitimacy/terminal check of experiments E7-E10. It works on both
// standalone and composed configurations.
func TerminalPredicate(spec Spec, net *sim.Network) sim.Predicate {
	return func(c *sim.Configuration) bool {
		return Is1Minimal(net.Graph(), spec, Members(c))
	}
}
