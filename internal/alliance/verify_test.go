package alliance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdr/internal/graph"
)

func TestIsAllianceDominatingSet(t *testing.T) {
	// Path 0-1-2-3-4: {1,3} dominates every node.
	g := graph.Path(5)
	spec := DominatingSet()
	if !IsAlliance(g, spec, []int{1, 3}) {
		t.Error("{1,3} dominates a 5-path")
	}
	if IsAlliance(g, spec, []int{1}) {
		t.Error("{1} leaves nodes 3 and 4 undominated")
	}
	if !IsAlliance(g, spec, AllNodes(g)) {
		t.Error("the full node set is always a (1,0)-alliance")
	}
	if err := ExplainAlliance(g, spec, []int{0}); err == nil {
		t.Error("ExplainAlliance must report the violation")
	}
}

func TestIsAllianceInnerRequirement(t *testing.T) {
	// With g=1 a singleton member with no member neighbour violates the
	// inner requirement even if outsiders are fine.
	g := graph.Complete(4)
	spec := Constant("test", 1, 1)
	if IsAlliance(g, spec, []int{0}) {
		t.Error("a lone member with g=1 needs a member neighbour")
	}
	if !IsAlliance(g, spec, []int{0, 1}) {
		t.Error("{0,1} in K4 satisfies f=1 and g=1")
	}
}

func TestIs1Minimal(t *testing.T) {
	g := graph.Path(5)
	spec := DominatingSet()
	if !Is1Minimal(g, spec, []int{1, 3}) {
		t.Error("{1,3} is a 1-minimal dominating set of a 5-path")
	}
	if Is1Minimal(g, spec, []int{0, 1, 3}) {
		t.Error("{0,1,3} is not 1-minimal: node 0 is redundant")
	}
	if Is1Minimal(g, spec, []int{1}) {
		t.Error("a non-alliance is never 1-minimal")
	}
	if err := Explain1Minimal(g, spec, []int{0, 1, 3}); err == nil {
		t.Error("Explain1Minimal must report the redundant member")
	}
}

func TestIsMinimalAndProperty1(t *testing.T) {
	g := graph.Ring(6)
	spec := DominatingSet()
	minimal := []int{0, 3}
	if !IsMinimal(g, spec, minimal) {
		t.Error("{0,3} is a minimal dominating set of a 6-ring")
	}
	// Property 1.1: every minimal alliance is 1-minimal.
	if !Is1Minimal(g, spec, minimal) {
		t.Error("a minimal alliance must be 1-minimal (Property 1.1)")
	}
	if IsMinimal(g, spec, AllNodes(g)) {
		t.Error("the full ring is not a minimal dominating set")
	}
	if IsMinimal(g, spec, []int{0}) {
		t.Error("a non-alliance is not minimal")
	}
}

func TestIsMinimalRefusesLargeSets(t *testing.T) {
	g := graph.Complete(25)
	defer func() {
		if recover() == nil {
			t.Error("IsMinimal must refuse alliances of more than 20 members")
		}
	}()
	IsMinimal(g, DominatingSet(), AllNodes(g))
}

func TestGreedyMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, g := range []*graph.Graph{graph.Ring(8), graph.Complete(6), graph.RandomConnected(10, 0.4, rng)} {
		for _, spec := range []Spec{DominatingSet(), GlobalOffensiveAlliance()} {
			if spec.Validate(g) != nil {
				continue
			}
			reduced := GreedyMinimize(g, spec, AllNodes(g))
			if err := Explain1Minimal(g, spec, reduced); err != nil {
				t.Errorf("%s: greedy result %v is not 1-minimal: %v", spec.Name, reduced, err)
			}
		}
	}
}

func TestQuickFullSetIsAllianceWhenSolvable(t *testing.T) {
	// Property: on any random connected graph, for any constant spec
	// satisfying the solvability assumption, the full node set is an
	// (f,g)-alliance and GreedyMinimize yields a 1-minimal one.
	property := func(seed int64, rawN uint8, rawF, rawG uint8) bool {
		n := int(rawN%8) + 3
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, 0.5, rng)
		minDeg := g.MinDegree()
		if minDeg == 0 {
			return true
		}
		f := int(rawF) % (minDeg + 1)
		gg := int(rawG) % (minDeg + 1)
		spec := Constant("prop", f, gg)
		if spec.Validate(g) != nil {
			return true
		}
		if !IsAlliance(g, spec, AllNodes(g)) {
			return false
		}
		return Is1Minimal(g, spec, GreedyMinimize(g, spec, AllNodes(g)))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickProperty1MinimalImplies1Minimal(t *testing.T) {
	// Property 1.1 of the paper, checked by brute force on small random
	// graphs: every minimal (f,g)-alliance is 1-minimal.
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(6, 0.5, rng)
		spec := DominatingSet()
		reduced := GreedyMinimize(g, spec, AllNodes(g))
		if !IsMinimal(g, spec, reduced) {
			// GreedyMinimize yields a 1-minimal alliance, which for f ≥ g is
			// also minimal (Property 1.2) — but the property under test here
			// only needs implication in the other direction, so skip.
			return true
		}
		return Is1Minimal(g, spec, reduced)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickProperty1Part2(t *testing.T) {
	// Property 1.2: when f(u) ≥ g(u) everywhere, every 1-minimal alliance is
	// minimal. Checked on small graphs with the (1,0) and (2,1) instances.
	property := func(seed int64, tuple bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(6, 0.6, rng)
		spec := DominatingSet()
		if tuple {
			spec = KTupleDomination(2)
		}
		if spec.Validate(g) != nil {
			return true
		}
		reduced := GreedyMinimize(g, spec, AllNodes(g))
		if !Is1Minimal(g, spec, reduced) {
			return false
		}
		return IsMinimal(g, spec, reduced)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
