// Package trace records executions of the simulator for inspection, export
// and the CLI tools: per-step events, per-process and per-rule move
// histograms, and compact textual / CSV / JSON renderings.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"sdr/internal/sim"
)

// Event is one recorded step of an execution.
type Event struct {
	// Step is the 0-based step index.
	Step int `json:"step"`
	// Round is the 0-based round index the step belongs to.
	Round int `json:"round"`
	// Activated lists the processes that moved, ascending.
	Activated []int `json:"activated"`
	// Rules gives, for each activated process, the executed rule name.
	Rules []string `json:"rules"`
	// After is the textual rendering of the configuration after the step
	// (recorded only when the recorder keeps configurations).
	After string `json:"after,omitempty"`
}

// Recorder collects events and move statistics from a run through a step
// hook. The zero value is not usable; call NewRecorder.
type Recorder struct {
	n                  int
	keepConfigurations bool
	maxEvents          int

	events        []Event
	truncated     bool
	movesByRule   map[string]int
	movesByProc   []int
	activatedHist map[int]int // selection size -> count
}

// RecorderOption customises a Recorder.
type RecorderOption func(*Recorder)

// WithConfigurations makes the recorder store the textual rendering of the
// configuration after every step (memory-heavy; off by default).
func WithConfigurations() RecorderOption {
	return func(r *Recorder) { r.keepConfigurations = true }
}

// WithMaxEvents caps the number of stored events; further steps are still
// counted in the histograms but their events are dropped and Truncated
// reports true. 0 means no cap.
func WithMaxEvents(maxEvents int) RecorderOption {
	return func(r *Recorder) { r.maxEvents = maxEvents }
}

// NewRecorder returns a recorder for a network of n processes.
func NewRecorder(n int, opts ...RecorderOption) *Recorder {
	r := &Recorder{
		n:             n,
		movesByRule:   make(map[string]int),
		movesByProc:   make([]int, n),
		activatedHist: make(map[int]int),
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Hook returns the sim.StepHook to register with sim.WithStepHook.
func (r *Recorder) Hook() sim.StepHook {
	return func(info sim.StepInfo) { r.observe(info) }
}

func (r *Recorder) observe(info sim.StepInfo) {
	for i, u := range info.Activated {
		if u >= 0 && u < r.n {
			r.movesByProc[u]++
		}
		r.movesByRule[info.Rules[i]]++
	}
	r.activatedHist[len(info.Activated)]++

	if r.maxEvents > 0 && len(r.events) >= r.maxEvents {
		r.truncated = true
		return
	}
	ev := Event{
		Step:      info.Step,
		Round:     info.Round,
		Activated: append([]int(nil), info.Activated...),
		Rules:     append([]string(nil), info.Rules...),
	}
	if r.keepConfigurations {
		ev.After = info.After.String()
	}
	r.events = append(r.events, ev)
}

// Events returns the recorded events (shared slice; callers must not modify
// the entries).
func (r *Recorder) Events() []Event { return r.events }

// Truncated reports whether events were dropped because of WithMaxEvents.
func (r *Recorder) Truncated() bool { return r.truncated }

// Moves returns the total number of recorded moves.
func (r *Recorder) Moves() int {
	total := 0
	for _, m := range r.movesByProc {
		total += m
	}
	return total
}

// MovesByProcess returns a copy of the per-process move counts.
func (r *Recorder) MovesByProcess() []int {
	out := make([]int, len(r.movesByProc))
	copy(out, r.movesByProc)
	return out
}

// MovesByRule returns a copy of the per-rule move counts.
func (r *Recorder) MovesByRule() map[string]int {
	out := make(map[string]int, len(r.movesByRule))
	for k, v := range r.movesByRule {
		out[k] = v
	}
	return out
}

// SelectionSizeHistogram returns a copy of the histogram of daemon selection
// sizes (how many processes were activated per step).
func (r *Recorder) SelectionSizeHistogram() map[int]int {
	out := make(map[int]int, len(r.activatedHist))
	for k, v := range r.activatedHist {
		out[k] = v
	}
	return out
}

// Summary renders the move histograms as a human-readable block.
func (r *Recorder) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "moves: %d over %d steps (%d processes)\n", r.Moves(), len(r.events), r.n)

	rules := make([]string, 0, len(r.movesByRule))
	for name := range r.movesByRule {
		rules = append(rules, name)
	}
	sort.Strings(rules)
	b.WriteString("moves by rule:\n")
	for _, name := range rules {
		fmt.Fprintf(&b, "  %-12s %d\n", name, r.movesByRule[name])
	}

	b.WriteString("moves by process:\n")
	for u, m := range r.movesByProc {
		fmt.Fprintf(&b, "  p%-3d %d\n", u, m)
	}
	return b.String()
}

// WriteText writes every recorded event as one line "step round [procs] rules"
// to w, followed by the summary.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, ev := range r.events {
		line := fmt.Sprintf("step %4d  round %3d  activated %v  rules %v", ev.Step, ev.Round, ev.Activated, ev.Rules)
		if ev.After != "" {
			line += "  -> " + ev.After
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return fmt.Errorf("trace: write text: %w", err)
		}
	}
	if r.truncated {
		if _, err := fmt.Fprintln(w, "... (event log truncated)"); err != nil {
			return fmt.Errorf("trace: write text: %w", err)
		}
	}
	_, err := io.WriteString(w, r.Summary())
	if err != nil {
		return fmt.Errorf("trace: write text: %w", err)
	}
	return nil
}

// WriteCSV writes the recorded events as CSV rows
// "step,round,process,rule" (one row per activated process).
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "step,round,process,rule\n"); err != nil {
		return fmt.Errorf("trace: write csv: %w", err)
	}
	for _, ev := range r.events {
		for i, u := range ev.Activated {
			if _, err := fmt.Fprintf(w, "%d,%d,%d,%s\n", ev.Step, ev.Round, u, ev.Rules[i]); err != nil {
				return fmt.Errorf("trace: write csv: %w", err)
			}
		}
	}
	return nil
}

// JSONExport is the exported shape of a recorded trace.
type JSONExport struct {
	Processes      int            `json:"processes"`
	Moves          int            `json:"moves"`
	MovesByRule    map[string]int `json:"movesByRule"`
	MovesByProcess []int          `json:"movesByProcess"`
	Truncated      bool           `json:"truncated"`
	Events         []Event        `json:"events"`
}

// WriteJSON writes the whole trace as a single JSON document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	export := JSONExport{
		Processes:      r.n,
		Moves:          r.Moves(),
		MovesByRule:    r.MovesByRule(),
		MovesByProcess: r.MovesByProcess(),
		Truncated:      r.truncated,
		Events:         r.events,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(export); err != nil {
		return fmt.Errorf("trace: write json: %w", err)
	}
	return nil
}
