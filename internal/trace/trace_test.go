package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"sdr/internal/core"
	"sdr/internal/graph"
	"sdr/internal/sim"
	"sdr/internal/unison"
)

// recordedRun runs a short composed execution with a recorder attached and
// returns both.
func recordedRun(t *testing.T, opts ...RecorderOption) (*Recorder, sim.Result) {
	t.Helper()
	g := graph.Ring(6)
	u := unison.New(unison.DefaultPeriod(g.N()))
	comp := core.Compose(u)
	net := sim.NewNetwork(g)
	rec := NewRecorder(net.N(), opts...)
	daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(3)), 0.5)
	res := sim.NewEngine(net, comp, daemon).Run(sim.InitialConfiguration(comp, net),
		sim.WithMaxSteps(50),
		sim.WithStepHook(rec.Hook()),
	)
	return rec, res
}

func TestRecorderCountsMatchEngine(t *testing.T) {
	rec, res := recordedRun(t)
	if rec.Moves() != res.Moves {
		t.Errorf("recorder counted %d moves, engine reports %d", rec.Moves(), res.Moves)
	}
	byProc := rec.MovesByProcess()
	for u, m := range res.MovesPerProcess {
		if byProc[u] != m {
			t.Errorf("process %d: recorder %d vs engine %d", u, byProc[u], m)
		}
	}
	byRule := rec.MovesByRule()
	for name, m := range res.MovesPerRule {
		if byRule[name] != m {
			t.Errorf("rule %s: recorder %d vs engine %d", name, byRule[name], m)
		}
	}
	if len(rec.Events()) != res.Steps {
		t.Errorf("recorded %d events for %d steps", len(rec.Events()), res.Steps)
	}
	total := 0
	for size, count := range rec.SelectionSizeHistogram() {
		if size <= 0 {
			t.Errorf("selection size %d should be positive", size)
		}
		total += count
	}
	if total != res.Steps {
		t.Errorf("histogram covers %d steps, want %d", total, res.Steps)
	}
}

func TestRecorderConfigurationsOption(t *testing.T) {
	rec, _ := recordedRun(t, WithConfigurations())
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	for _, ev := range events {
		if ev.After == "" {
			t.Fatal("WithConfigurations must record the post-step configuration")
		}
	}
	recPlain, _ := recordedRun(t)
	if recPlain.Events()[0].After != "" {
		t.Error("configurations must not be recorded by default")
	}
}

func TestRecorderMaxEvents(t *testing.T) {
	rec, res := recordedRun(t, WithMaxEvents(5))
	if len(rec.Events()) != 5 {
		t.Errorf("recorded %d events, want the cap of 5", len(rec.Events()))
	}
	if !rec.Truncated() {
		t.Error("the recorder must report truncation")
	}
	if rec.Moves() != res.Moves {
		t.Error("truncation must not affect the move histograms")
	}
}

func TestSummary(t *testing.T) {
	rec, _ := recordedRun(t)
	s := rec.Summary()
	for _, want := range []string{"moves:", "moves by rule:", "moves by process:", "p0"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestWriteText(t *testing.T) {
	rec, _ := recordedRun(t, WithMaxEvents(3), WithConfigurations())
	var buf bytes.Buffer
	if err := rec.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"step", "activated", "truncated", "moves by rule"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q", want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	rec, res := recordedRun(t)
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "step,round,process,rule" {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	if len(lines)-1 != res.Moves {
		t.Errorf("CSV has %d data rows, want one per move (%d)", len(lines)-1, res.Moves)
	}
	for _, line := range lines[1:] {
		if len(strings.Split(line, ",")) != 4 {
			t.Errorf("CSV row %q does not have 4 fields", line)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	rec, res := recordedRun(t)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var export JSONExport
	if err := json.Unmarshal(buf.Bytes(), &export); err != nil {
		t.Fatalf("the JSON export does not parse: %v", err)
	}
	if export.Processes != 6 || export.Moves != res.Moves || len(export.Events) != res.Steps {
		t.Errorf("export summary mismatch: %+v", export)
	}
	if len(export.MovesByProcess) != 6 {
		t.Errorf("export has %d per-process counters, want 6", len(export.MovesByProcess))
	}
}

// TestExportMatrix pins the JSON and CSV export paths across the recorder's
// option matrix: event cap (unbounded vs truncating) × configuration keeping
// (on vs off). The run is fully deterministic, so the exports of a truncated
// recorder must be exact prefixes of the unbounded recorder's exports — same
// events, same bytes per row — with only the truncation marker and the After
// fields varying by option.
func TestExportMatrix(t *testing.T) {
	type variant struct {
		name        string
		maxEvents   int
		keepConfigs bool
	}
	variants := []variant{
		{"unbounded", 0, false},
		{"unbounded-configs", 0, true},
		{"truncated", 4, false},
		{"truncated-configs", 4, true},
	}
	type export struct {
		csv  string
		json JSONExport
		res  sim.Result
	}
	exports := make(map[string]export)
	for _, v := range variants {
		var opts []RecorderOption
		if v.maxEvents > 0 {
			opts = append(opts, WithMaxEvents(v.maxEvents))
		}
		if v.keepConfigs {
			opts = append(opts, WithConfigurations())
		}
		rec, res := recordedRun(t, opts...)
		var csvBuf, jsonBuf bytes.Buffer
		if err := rec.WriteCSV(&csvBuf); err != nil {
			t.Fatalf("%s: WriteCSV: %v", v.name, err)
		}
		if err := rec.WriteJSON(&jsonBuf); err != nil {
			t.Fatalf("%s: WriteJSON: %v", v.name, err)
		}
		var ex JSONExport
		if err := json.Unmarshal(jsonBuf.Bytes(), &ex); err != nil {
			t.Fatalf("%s: JSON export does not parse: %v", v.name, err)
		}
		exports[v.name] = export{csv: csvBuf.String(), json: ex, res: res}

		wantEvents := res.Steps
		if v.maxEvents > 0 && v.maxEvents < wantEvents {
			wantEvents = v.maxEvents
		}
		if len(ex.Events) != wantEvents {
			t.Errorf("%s: %d exported events, want %d", v.name, len(ex.Events), wantEvents)
		}
		if ex.Truncated != (v.maxEvents > 0 && res.Steps > v.maxEvents) {
			t.Errorf("%s: truncated = %v with %d steps and cap %d", v.name, ex.Truncated, res.Steps, v.maxEvents)
		}
		// The histograms always cover the whole run, cap or not.
		if ex.Moves != res.Moves {
			t.Errorf("%s: exported %d moves, engine reports %d", v.name, ex.Moves, res.Moves)
		}
		for _, ev := range ex.Events {
			if v.keepConfigs && ev.After == "" {
				t.Errorf("%s: event %d lost its configuration", v.name, ev.Step)
			}
			if !v.keepConfigs && ev.After != "" {
				t.Errorf("%s: event %d carries a configuration without the option", v.name, ev.Step)
			}
		}
	}

	// Prefix pinning: the deterministic run makes the truncated CSV exactly
	// the head of the unbounded CSV, and the truncated event list exactly the
	// head of the unbounded event list.
	full, cut := exports["unbounded"], exports["truncated"]
	if !strings.HasPrefix(full.csv, cut.csv) {
		t.Errorf("truncated CSV is not a prefix of the full CSV:\n--- truncated\n%s--- full\n%s", cut.csv, full.csv)
	}
	for i, ev := range cut.json.Events {
		fe := full.json.Events[i]
		if ev.Step != fe.Step || ev.Round != fe.Round ||
			len(ev.Activated) != len(fe.Activated) || len(ev.Rules) != len(fe.Rules) {
			t.Errorf("truncated event %d diverges from the full export: %+v vs %+v", i, ev, fe)
		}
	}
	// Keeping configurations must not perturb what is recorded, only add the
	// After field: the configs-on CSV is byte-identical (CSV never includes
	// configurations).
	if exports["unbounded-configs"].csv != full.csv {
		t.Error("WithConfigurations changed the CSV export")
	}
}

// failingWriter fails after a fixed number of writes, to exercise the error
// paths of the writers.
type failingWriter struct{ remaining int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, errWriteFailed
	}
	w.remaining--
	return len(p), nil
}

var errWriteFailed = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestWriterErrorsArePropagated(t *testing.T) {
	rec, _ := recordedRun(t)
	if err := rec.WriteText(&failingWriter{remaining: 1}); err == nil {
		t.Error("WriteText must propagate write failures")
	}
	if err := rec.WriteCSV(&failingWriter{remaining: 0}); err == nil {
		t.Error("WriteCSV must propagate write failures")
	}
	if err := rec.WriteJSON(&failingWriter{remaining: 0}); err == nil {
		t.Error("WriteJSON must propagate write failures")
	}
}
