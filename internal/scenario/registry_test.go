package scenario

import (
	"math/rand"
	"testing"

	"sdr/internal/alliance"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

// The completeness tests pin the registries to the exported surface of the
// library: every exported topology generator, daemon factory, fault scenario
// and alliance spec must be reachable through a registry entry, and every
// registered name must resolve to a working entry. Adding a constructor
// without registering it fails here.

func TestEveryRegisteredNameResolves(t *testing.T) {
	for _, name := range Algorithms() {
		if _, err := AlgorithmByName(name); err != nil {
			t.Errorf("algorithm %q: %v", name, err)
		}
	}
	for _, name := range Topologies() {
		entry, err := TopologyByName(name)
		if err != nil {
			t.Errorf("topology %q: %v", name, err)
			continue
		}
		g := entry.Build(8, Params{}, rand.New(rand.NewSource(1)))
		if err := g.Validate(); err != nil {
			t.Errorf("topology %q builds an invalid graph: %v", name, err)
		}
		if entry.Description == "" {
			t.Errorf("topology %q has no description", name)
		}
	}
	for _, name := range Daemons() {
		entry, err := DaemonByName(name)
		if err != nil {
			t.Errorf("daemon %q: %v", name, err)
			continue
		}
		if d := entry.New(1); d == nil || d.Name() != name {
			t.Errorf("daemon %q builds %v", name, d)
		}
		if entry.Description == "" {
			t.Errorf("daemon %q has no description", name)
		}
	}
	for _, name := range FaultModels() {
		if _, err := FaultByName(name); err != nil {
			t.Errorf("fault model %q: %v", name, err)
		}
	}
}

// topologyGeneratorCoverage maps every exported graph generator to the
// registry entry that wraps it. Adding a generator to internal/graph without
// registering a topology fails the coverage test below.
var topologyGeneratorCoverage = map[string]string{
	"Ring":             "ring",
	"Path":             "path",
	"Star":             "star",
	"Complete":         "complete",
	"BinaryTree":       "binary-tree",
	"Grid":             "grid",
	"Torus":            "torus",
	"Hypercube":        "hypercube",
	"Caterpillar":      "caterpillar",
	"Lollipop":         "lollipop",
	"RandomTree":       "tree",
	"RandomConnected":  "random",
	"RandomRegularish": "random-regular",
}

func TestEveryGraphGeneratorRegistered(t *testing.T) {
	for generator, name := range topologyGeneratorCoverage {
		if _, err := TopologyByName(name); err != nil {
			t.Errorf("generator graph.%s has no registry entry %q: %v", generator, name, err)
		}
	}
	// Spot-check that the entries actually produce the advertised shapes.
	shapes := map[string]func(g *graph.Graph) bool{
		"ring":      func(g *graph.Graph) bool { return g.N() == 8 && g.M() == 8 },
		"path":      func(g *graph.Graph) bool { return g.N() == 8 && g.M() == 7 },
		"star":      func(g *graph.Graph) bool { return g.N() == 8 && g.Degree(0) == 7 },
		"complete":  func(g *graph.Graph) bool { return g.N() == 8 && g.M() == 28 },
		"grid":      func(g *graph.Graph) bool { return g.N() == 8 }, // 2×4
		"torus":     func(g *graph.Graph) bool { return g.N() == 9 }, // 3×3 ≥ 8
		"hypercube": func(g *graph.Graph) bool { return g.N() == 8 }, // 2³
		"tree":      func(g *graph.Graph) bool { return g.N() == 8 && g.M() == 7 },
	}
	for name, check := range shapes {
		entry, err := TopologyByName(name)
		if err != nil {
			t.Fatalf("topology %q: %v", name, err)
		}
		if g := entry.Build(8, Params{}, rand.New(rand.NewSource(2))); !check(g) {
			t.Errorf("topology %q built unexpected shape: n=%d m=%d", name, g.N(), g.M())
		}
	}
}

func TestEveryDaemonFactoryRegistered(t *testing.T) {
	factories := sim.StandardDaemonFactories()
	names := Daemons()
	if len(names) < len(factories) {
		t.Fatalf("%d daemons registered for %d standard factories", len(names), len(factories))
	}
	for i, df := range factories {
		if i >= len(names) || names[i] != df.Name {
			t.Errorf("standard daemon %q missing or out of order in the registry (got %v)", df.Name, names)
		}
	}
}

func TestEveryFaultScenarioRegistered(t *testing.T) {
	if _, err := FaultByName("none"); err != nil {
		t.Error("the none fault model must be registered")
	}
	for _, s := range faults.StandardScenarios() {
		if _, err := FaultByName(s.Name); err != nil {
			t.Errorf("standard scenario %q has no registry entry: %v", s.Name, err)
		}
	}
}

func TestEveryAllianceSpecRegistered(t *testing.T) {
	for _, spec := range alliance.StandardSpecs() {
		for _, name := range []string{spec.Name, spec.Name + "-standalone"} {
			entry, err := AlgorithmByName(name)
			if err != nil {
				t.Errorf("alliance spec %q has no registry entry %q: %v", spec.Name, name, err)
				continue
			}
			if entry.Kind != "alliance" {
				t.Errorf("entry %q has kind %q, want alliance", name, entry.Kind)
			}
		}
	}
	// The unison, BPV and spanning-tree families must be present with their
	// ± SDR variants.
	for _, name := range []string{"unison", "unison-standalone", "unison-uncoop", "bpv", "bfstree", "bfstree-standalone", "alliance", "alliance-standalone"} {
		if _, err := AlgorithmByName(name); err != nil {
			t.Errorf("core algorithm %q not registered: %v", name, err)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering a duplicate name must panic")
		}
	}()
	RegisterDaemon(DaemonEntry{Name: "synchronous", New: func(int64) sim.Daemon { return sim.SynchronousDaemon{} }})
}
