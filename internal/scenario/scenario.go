// Package scenario is the declarative experiment-description layer of the
// reproduction: named registries for algorithms, topologies, daemons and
// fault models, plus a Spec struct that resolves a (algorithm × topology ×
// daemon × fault × seed) description into a ready-to-run sim.Engine.
//
// The package separates the *model* (the algorithms and the simulation
// engine) from the *experiment configuration* (which combination runs, from
// which corrupted start, under which scheduler), the same move DEVS-style
// simulation frameworks make. Every consumer of the repository — the
// cmd/sdrsim and cmd/sdrbench CLIs, the internal/bench experiment runners
// and the runnable examples — constructs its runs through a Spec, so adding
// a new scenario is a registry entry instead of edits in five call sites.
//
// A Spec names registry entries; Resolve builds the concrete run:
//
//	run, err := scenario.Spec{
//	    Algorithm: "unison",
//	    Topology:  "ring",
//	    N:         16,
//	    Daemon:    "distributed-random",
//	    Fault:     "random-all",
//	    Seed:      1,
//	}.Resolve()
//	res := run.Execute()
//
// Sweep expands cross-products of Spec axes into the (cell × trial) grids
// consumed by the internal/bench parallel worker pool.
package scenario

import (
	"errors"
	"fmt"
	"math/rand"

	"sdr/internal/churn"
	"sdr/internal/core"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

// ErrUnknown reports a Spec field that names no registry entry.
var ErrUnknown = errors.New("scenario: unknown name")

// ErrUnsatisfiable reports a Spec whose algorithm cannot run on the resolved
// topology (e.g. an (f,g)-alliance requirement exceeding a node degree).
// Sweeps treat it as "skip this cell" rather than a hard failure.
var ErrUnsatisfiable = errors.New("scenario: spec unsatisfiable on this topology")

// Params carries the numeric knobs of Spec that individual registry entries
// interpret; unset (zero) fields take entry-specific defaults.
type Params struct {
	// K is the unison clock period; 0 means the paper's default n+1.
	K int
	// AllianceSpec names the (f,g)-alliance instance used by the generic
	// "alliance" and "alliance-standalone" entries; "" means dominating-set.
	AllianceSpec string
	// Root is the root process of the BFS spanning tree algorithms.
	Root int
	// EdgeProb is the edge probability of the random topologies; 0 means the
	// family default (0.25 for "random").
	EdgeProb float64
	// MinDegree is the degree floor of the random-regular topology; 0 means 3.
	MinDegree int
	// Legs is the number of pendant nodes per spine node of the caterpillar
	// topology; 0 means 1.
	Legs int
}

// Spec is a declarative description of one run: which algorithm on which
// topology, under which daemon, from which corrupted start. All axis fields
// name registry entries; Resolve turns the description into a ready-to-run
// engine.
type Spec struct {
	// Algorithm names an algorithm registry entry (see Algorithms).
	Algorithm string
	// Topology names a topology registry entry (see Topologies).
	Topology string
	// N is the requested network size; structured families round it as
	// documented by their registry entry.
	N int
	// Daemon names a daemon registry entry (see Daemons).
	Daemon string
	// Fault names a fault-model registry entry (see Faults); "" means "none"
	// (start from the algorithm's pre-defined initial configuration).
	Fault string
	// Churn names a churn-schedule registry entry, or is a schedule in the
	// churn grammar ("pattern:key=value,..."); "" means no mid-run
	// perturbation. See ChurnSchedules and internal/churn.
	Churn string
	// Seed derives all randomness of the run: the topology, the corrupted
	// start and the daemon are all seeded from it, so a Spec is fully
	// reproducible.
	Seed int64
	// MaxSteps bounds the execution; 0 means sim.DefaultMaxSteps.
	MaxSteps int
	// Shards is the number of engine shards the run executes on (see
	// sim.WithShards); 0 or 1 means the sequential engine. Synchronous-daemon
	// runs are bit-identical across shard counts; other daemons switch to the
	// locally-central sharded family, so their measurements are only
	// comparable at a fixed shard count.
	Shards int
	// Params carries the entry-specific numeric knobs.
	Params Params
}

// withDefaults fills the zero axis fields.
func (s Spec) withDefaults() Spec {
	if s.Fault == "" {
		s.Fault = "none"
	}
	if s.MaxSteps <= 0 {
		s.MaxSteps = sim.DefaultMaxSteps
	}
	return s
}

// Run is a resolved Spec: the concrete network, algorithm, daemon and
// starting configuration, assembled into an engine ready to execute.
type Run struct {
	// Spec is the resolved description (with defaults filled in).
	Spec Spec
	// Entry is the algorithm registry entry the run was built from.
	Entry AlgorithmEntry
	// Graph is the generated topology.
	Graph *graph.Graph
	// Net is the network the algorithm runs on.
	Net *sim.Network
	// Alg is the built algorithm.
	Alg sim.Algorithm
	// Inner is the inner Resettable when Alg is a composition I ∘ SDR,
	// nil otherwise.
	Inner core.Resettable
	// Legitimate is the legitimacy predicate used to measure stabilization,
	// nil when the entry defines none.
	Legitimate sim.Predicate
	// Terminating reports whether executions of Alg terminate (silent
	// algorithms); non-terminating runs stop at the first legitimate
	// configuration instead.
	Terminating bool
	// Daemon is the scheduling adversary.
	Daemon sim.Daemon
	// Start is the (possibly corrupted) starting configuration.
	Start *sim.Configuration
	// Churn is the resolved mid-run perturbation injector, nil when the
	// Spec requests none. Injectors are single-use: re-executing the run
	// requires re-resolving the Spec.
	Churn *churn.Injector
	// Engine is the assembled engine.
	Engine *sim.Engine
}

// Resolve builds the run a Spec describes. All randomness derives from
// Spec.Seed: the topology and the fault injection consume one seeded RNG in
// that order, and the daemon gets its own RNG seeded with the same value, so
// equal Specs resolve to identical runs.
func (s Spec) Resolve() (*Run, error) {
	s = s.withDefaults()
	entry, err := AlgorithmByName(s.Algorithm)
	if err != nil {
		return nil, err
	}
	topo, err := TopologyByName(s.Topology)
	if err != nil {
		return nil, err
	}
	daemonEntry, err := DaemonByName(s.Daemon)
	if err != nil {
		return nil, err
	}
	fault, err := FaultByName(s.Fault)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(s.Seed))
	g := topo.Build(s.N, s.Params, rng)
	net := sim.NewNetwork(g)
	asm, err := entry.Build(g, net, s.Params)
	if err != nil {
		return nil, err
	}
	if fault.ComposedOnly && asm.Inner == nil {
		return nil, fmt.Errorf("scenario: fault %q requires a composed algorithm, %q is not one", s.Fault, s.Algorithm)
	}
	start, err := fault.Build(asm.Algorithm, asm.Inner, net, rng)
	if err != nil {
		return nil, err
	}
	var injector *churn.Injector
	if s.Churn != "" {
		sched, err := ResolveChurn(s.Churn)
		if err != nil {
			return nil, err
		}
		// The injector continues the topology/fault rng stream: schedule
		// times and event amplitudes are part of the same seeded derivation,
		// so equal Specs resolve to bit-identical perturbed runs.
		injector, err = churn.NewInjector(sched, asm.Algorithm, asm.Inner, net, rng)
		if err != nil {
			return nil, err
		}
	}
	daemon := daemonEntry.New(s.Seed)
	return &Run{
		Spec:        s,
		Entry:       entry,
		Graph:       g,
		Net:         net,
		Alg:         asm.Algorithm,
		Inner:       asm.Inner,
		Legitimate:  asm.Legitimate,
		Terminating: asm.Terminating,
		Daemon:      daemon,
		Start:       start,
		Churn:       injector,
		Engine:      sim.NewEngine(net, asm.Algorithm, daemon),
	}, nil
}

// MustResolve is Resolve for specs known to be valid (registry-driven
// internal sweeps); it panics on error.
func (s Spec) MustResolve() *Run {
	run, err := s.Resolve()
	if err != nil {
		panic(err)
	}
	return run
}

// Options assembles the engine options a run executes under: the step bound,
// the legitimacy predicate when the entry defines one, the churn injector
// when the Spec requests one, and — for non-terminating algorithms —
// stopping at the first legitimate configuration (for churn runs the engine
// defers that stop until the schedule is exhausted and the system has
// recovered). extra options (hooks, rule-choice policies) are appended.
func (r *Run) Options(extra ...sim.Option) []sim.Option {
	opts := []sim.Option{sim.WithMaxSteps(r.Spec.MaxSteps)}
	if r.Legitimate != nil {
		opts = append(opts, sim.WithLegitimate(r.Legitimate))
		if !r.Terminating {
			opts = append(opts, sim.WithStopWhenLegitimate())
		}
	}
	if r.Churn != nil {
		opts = append(opts, sim.WithInjector(r.Churn))
	}
	if r.Spec.Shards > 1 {
		opts = append(opts, sim.WithShards(r.Spec.Shards))
	}
	return append(opts, extra...)
}

// Execute runs the engine from the resolved start under Options.
func (r *Run) Execute(extra ...sim.Option) sim.Result {
	return r.Engine.Run(r.Start, r.Options(extra...)...)
}

// Observer returns a reset observer primed with the starting configuration,
// or nil when the algorithm is not a composition. Pass its Hook to Execute
// to track segments, per-process SDR moves and alive-root creations.
func (r *Run) Observer() *core.Observer {
	if r.Inner == nil {
		return nil
	}
	o := core.NewObserver(r.Inner, r.Net)
	o.Prime(r.Start)
	return o
}

// Report renders the algorithm-specific outcome of a finished run: the
// computed output (alliance members, tree distances, clock values), the
// correctness verdict of the entry's checker, and whether the run met its
// goal (termination or stabilization).
func (r *Run) Report(res sim.Result) Report {
	if r.Entry.Report == nil {
		return Report{OK: true}
	}
	return r.Entry.Report(r, res)
}

// Report is the algorithm-specific outcome of a run.
type Report struct {
	// Lines are rendered outcome lines for human-readable output.
	Lines []string
	// OK is the correctness verdict: the output satisfies the algorithm's
	// specification (and the run stabilized/terminated as required).
	OK bool
}
