package scenario

import (
	"errors"
	"fmt"
	"math/rand"

	"sdr/internal/checker"
	"sdr/internal/sim"
)

// ErrUnverifiable reports a Spec whose algorithm entry defines no legitimacy
// predicate, so there is no convergence property to certify.
var ErrUnverifiable = errors.New("scenario: spec has no legitimacy predicate to verify against")

// VerifySeedStride separates the derived seeds of the extra starting
// configurations a verification explores from. A large prime distinct from
// TrialSeedStride keeps the start streams disjoint from sweep-trial streams.
const VerifySeedStride = 7_368_787

// VerifyOptions bounds the exhaustive certification of a resolved Spec.
type VerifyOptions struct {
	// Starts is the number of seeded starting configurations the exploration
	// grows from (≤ 0 means 1). The first start is the run's own Start;
	// further starts re-draw the Spec's fault model from seeds derived with
	// VerifySeedStride, so a verification is as reproducible as the run.
	Starts int
	// MaxConfigurations caps the explored set (0 means the checker default).
	MaxConfigurations int
	// MaxSelectionSize caps the daemon selections branched on. 0 explores
	// every non-empty subset of the enabled set — exact for the fully
	// distributed unfair daemon, but exponential in the enabled-set size; a
	// cap k certifies convergence under every daemon activating at most k
	// processes per step (k = 1 is the central daemon).
	MaxSelectionSize int
	// Workers bounds the exploration's worker pool (≤ 1 explores
	// sequentially); verdicts are bit-identical for every value. With
	// Workers > 1 rule guards and the legitimacy predicate are evaluated
	// concurrently; every registry entry satisfies the required purity.
	Workers int
	// Progress, when non-nil, receives per-level exploration progress.
	Progress func(checker.ExploreProgress)
}

// VerifyStarts builds the count seeded starting configurations a
// verification of this run explores from: the run's own Start followed by
// fresh draws of the Spec's fault model under derived seeds.
func (r *Run) VerifyStarts(count int) ([]*sim.Configuration, error) {
	if count < 1 {
		count = 1
	}
	fault, err := FaultByName(r.Spec.Fault)
	if err != nil {
		return nil, err
	}
	starts := make([]*sim.Configuration, 0, count)
	starts = append(starts, r.Start)
	for i := 1; i < count; i++ {
		rng := rand.New(rand.NewSource(r.Spec.Seed + int64(i)*VerifySeedStride))
		start, err := fault.Build(r.Alg, r.Inner, r.Net, rng)
		if err != nil {
			return nil, fmt.Errorf("scenario: verify start %d: %w", i, err)
		}
		starts = append(starts, start)
	}
	return starts, nil
}

// Verify exhaustively explores every configuration reachable from the run's
// seeded starts under every daemon choice (capped by MaxSelectionSize) and
// certifies convergence to the entry's legitimate set: no reachable cycle of
// illegitimate configurations and no illegitimate terminal configuration.
// The returned report carries the coverage counters even when verification
// fails; a nil error together with Report.Complete means the property is
// certified on the whole reachable space.
//
// This is the model-checking counterpart of Execute: where Execute samples
// one daemon schedule, Verify branches on all of them, which is what the
// paper's convergence theorems (Theorems 5–7 for U ∘ SDR, Theorems 12–14 for
// FGA ∘ SDR) quantify over. It is only tractable for small n.
func (r *Run) Verify(opts VerifyOptions) (checker.ExploreReport, error) {
	if r.Legitimate == nil {
		return checker.ExploreReport{}, fmt.Errorf("%w: algorithm %q", ErrUnverifiable, r.Spec.Algorithm)
	}
	starts, err := r.VerifyStarts(opts.Starts)
	if err != nil {
		return checker.ExploreReport{}, err
	}
	return checker.Explore(r.Net, r.Alg, starts, checker.ExploreOptions{
		MaxConfigurations: opts.MaxConfigurations,
		MaxSelectionSize:  opts.MaxSelectionSize,
		Legitimate:        r.Legitimate,
		// Terminal configurations must themselves be legitimate (for SDR
		// compositions, terminal ⇔ normal, Theorem 1); checking it as a
		// per-configuration predicate also covers truncated explorations.
		TerminalOK: r.Legitimate,
		Workers:    opts.Workers,
		Progress:   opts.Progress,
	})
}
