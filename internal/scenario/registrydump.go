package scenario

import (
	"encoding/json"
	"fmt"
	"io"
)

// The machine-readable registry dump is the one encoding of "everything the
// registries know": `sdrsim -list -json`, `sdrbench -list -json` and the
// sdrd GET /v1/registry endpoint all emit it through WriteRegistryJSON, so
// the three outputs are byte-identical by construction (pinned by tests in
// cmd/ and internal/server).

// RegistryEntry is one named registry entry in a dump.
type RegistryEntry struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// RegistryDump is the machine-readable snapshot of every scenario registry,
// each axis in registration order.
type RegistryDump struct {
	Algorithms []RegistryEntry `json:"algorithms"`
	Topologies []RegistryEntry `json:"topologies"`
	Daemons    []RegistryEntry `json:"daemons"`
	Faults     []RegistryEntry `json:"faults"`
	Churns     []RegistryEntry `json:"churns"`
}

// CollectRegistry snapshots the scenario registries.
func CollectRegistry() RegistryDump {
	return RegistryDump{
		Algorithms: dumpAxis(Algorithms(), func(n string) (string, error) {
			e, err := AlgorithmByName(n)
			return e.Description, err
		}),
		Topologies: dumpAxis(Topologies(), func(n string) (string, error) {
			e, err := TopologyByName(n)
			return e.Description, err
		}),
		Daemons: dumpAxis(Daemons(), func(n string) (string, error) {
			e, err := DaemonByName(n)
			return e.Description, err
		}),
		Faults: dumpAxis(FaultModels(), func(n string) (string, error) {
			e, err := FaultByName(n)
			return e.Description, err
		}),
		Churns: dumpAxis(ChurnSchedules(), func(n string) (string, error) {
			e, err := ChurnByName(n)
			return e.Description, err
		}),
	}
}

// dumpAxis renders one registry axis; a name that fails to resolve is a
// programming error (the names come from the registry itself).
func dumpAxis(names []string, describe func(string) (string, error)) []RegistryEntry {
	out := make([]RegistryEntry, len(names))
	for i, n := range names {
		desc, err := describe(n)
		if err != nil {
			panic(fmt.Sprintf("scenario: registry dump: %v", err))
		}
		out[i] = RegistryEntry{Name: n, Description: desc}
	}
	return out
}

// WriteRegistryJSON writes the registry dump as indented JSON with a
// trailing newline — the exact bytes of the CLIs' -list -json output and of
// the sdrd /v1/registry response body.
func WriteRegistryJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(CollectRegistry()); err != nil {
		return fmt.Errorf("scenario: encode registry dump: %w", err)
	}
	return nil
}
