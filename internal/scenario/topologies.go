package scenario

import (
	"math/rand"

	"sdr/internal/graph"
)

// TopologyEntry is one named topology family of the registry. Build returns
// a connected graph with approximately n nodes; families with structural
// constraints round n as documented by Description.
type TopologyEntry struct {
	// Name is the registry key.
	Name string
	// Description is a one-line summary of the family and its parameter
	// conventions (rounding, Params fields consumed) for -list output.
	Description string
	// Build generates the graph. Random families consume rng; deterministic
	// families ignore it.
	Build func(n int, p Params, rng *rand.Rand) *graph.Graph
}

var topologyRegistry = newRegistry[TopologyEntry]("topology")

// RegisterTopology adds an entry to the topology registry. It panics on
// duplicate names; call it from init functions or test setup only.
func RegisterTopology(e TopologyEntry) { topologyRegistry.add(e.Name, e) }

// Topologies returns the registered topology names in registration order.
func Topologies() []string { return topologyRegistry.list() }

// TopologyByName returns the entry with the given name.
func TopologyByName(name string) (TopologyEntry, error) { return topologyRegistry.lookup(name) }

// nearSquareGrid builds the largest r×c grid with r·c ≤ n and r, c ≥ 2 as
// close to square as possible (falls back to a path for n < 4). This is the
// convention the experiment tables have always used.
func nearSquareGrid(n int) *graph.Graph {
	if n < 4 {
		return graph.Path(n)
	}
	rows := 2
	for r := 2; r*r <= n; r++ {
		rows = r
	}
	return graph.Grid(rows, n/rows)
}

// edgeProbOr returns Params.EdgeProb or the family default.
func edgeProbOr(p Params, def float64) float64 {
	if p.EdgeProb > 0 {
		return p.EdgeProb
	}
	return def
}

func init() {
	RegisterTopology(TopologyEntry{
		Name:        "ring",
		Description: "cycle C_n (exact n, n ≥ 3); worst case for wave algorithms",
		Build:       func(n int, _ Params, _ *rand.Rand) *graph.Graph { return graph.Ring(n) },
	})
	RegisterTopology(TopologyEntry{
		Name:        "path",
		Description: "path P_n (exact n)",
		Build:       func(n int, _ Params, _ *rand.Rand) *graph.Graph { return graph.Path(n) },
	})
	RegisterTopology(TopologyEntry{
		Name:        "star",
		Description: "star K_{1,n-1} with node 0 at the centre (exact n); low diameter, high degree",
		Build:       func(n int, _ Params, _ *rand.Rand) *graph.Graph { return graph.Star(n) },
	})
	RegisterTopology(TopologyEntry{
		Name:        "complete",
		Description: "complete graph K_n (exact n)",
		Build:       func(n int, _ Params, _ *rand.Rand) *graph.Graph { return graph.Complete(n) },
	})
	RegisterTopology(TopologyEntry{
		Name:        "binary-tree",
		Description: "complete-ish binary tree rooted at 0 (exact n)",
		Build:       func(n int, _ Params, _ *rand.Rand) *graph.Graph { return graph.BinaryTree(n) },
	})
	RegisterTopology(TopologyEntry{
		Name:        "tree",
		Description: "uniformly random labelled tree (exact n)",
		Build:       func(n int, _ Params, rng *rand.Rand) *graph.Graph { return graph.RandomTree(n, rng) },
	})
	RegisterTopology(TopologyEntry{
		Name:        "grid",
		Description: "largest near-square r×c grid with r·c ≤ n (rounds n down; path for n < 4)",
		Build:       func(n int, _ Params, _ *rand.Rand) *graph.Graph { return nearSquareGrid(n) },
	})
	RegisterTopology(TopologyEntry{
		Name:        "torus",
		Description: "smallest s×s torus with s² ≥ n, s ≥ 3 (rounds n up)",
		Build: func(n int, _ Params, _ *rand.Rand) *graph.Graph {
			side := 3
			for side*side < n {
				side++
			}
			return graph.Torus(side, side)
		},
	})
	RegisterTopology(TopologyEntry{
		Name:        "hypercube",
		Description: "smallest hypercube Q_d with 2^d ≥ n (rounds n up to a power of two)",
		Build: func(n int, _ Params, _ *rand.Rand) *graph.Graph {
			d := 1
			for (1 << uint(d)) < n {
				d++
			}
			return graph.Hypercube(d)
		},
	})
	RegisterTopology(TopologyEntry{
		Name:        "caterpillar",
		Description: "caterpillar tree: spine of ⌈n/(legs+1)⌉ nodes with Params.Legs pendant nodes each (default 1 leg)",
		Build: func(n int, p Params, _ *rand.Rand) *graph.Graph {
			legs := p.Legs
			if legs <= 0 {
				legs = 1
			}
			spine := (n + legs) / (legs + 1)
			if spine < 1 {
				spine = 1
			}
			return graph.Caterpillar(spine, legs)
		},
	})
	RegisterTopology(TopologyEntry{
		Name:        "lollipop",
		Description: "lollipop: clique of ⌈n/2⌉ (≥ 3) joined to a path of the remaining nodes; stresses the daemon",
		Build: func(n int, _ Params, _ *rand.Rand) *graph.Graph {
			clique := (n + 1) / 2
			if clique < 3 {
				clique = 3
			}
			path := n - clique
			if path < 1 {
				path = 1
			}
			return graph.Lollipop(clique, path)
		},
	})
	RegisterTopology(TopologyEntry{
		Name:        "random",
		Description: "random connected graph: random tree plus each extra edge with probability Params.EdgeProb (default 0.25)",
		Build: func(n int, p Params, rng *rand.Rand) *graph.Graph {
			return graph.RandomConnected(n, edgeProbOr(p, 0.25), rng)
		},
	})
	RegisterTopology(TopologyEntry{
		Name:        "random-dense",
		Description: "random connected graph with edge probability 0.5; degree grows with n",
		Build: func(n int, _ Params, rng *rand.Rand) *graph.Graph {
			return graph.RandomConnected(n, 0.5, rng)
		},
	})
	RegisterTopology(TopologyEntry{
		Name:        "random-sparse",
		Description: "random connected graph with edge probability 0.2",
		Build: func(n int, _ Params, rng *rand.Rand) *graph.Graph {
			return graph.RandomConnected(n, 0.2, rng)
		},
	})
	RegisterTopology(TopologyEntry{
		Name:        "random-regular",
		Description: "random connected graph with minimum degree Params.MinDegree (default 3) when feasible",
		Build: func(n int, p Params, rng *rand.Rand) *graph.Graph {
			minDeg := p.MinDegree
			if minDeg <= 0 {
				minDeg = 3
			}
			return graph.RandomRegularish(n, minDeg, rng)
		},
	})
}
