package scenario

import (
	"errors"
	"testing"
)

func TestVerifyCertifiesUnisonRing(t *testing.T) {
	run := (Spec{
		Algorithm: "unison",
		Topology:  "ring",
		N:         4,
		Daemon:    "synchronous",
		Fault:     "random-all",
		Seed:      3,
	}).MustResolve()
	report, err := run.Verify(VerifyOptions{Starts: 3, MaxSelectionSize: 1, Workers: 2})
	if err != nil {
		t.Fatalf("U∘SDR on a 4-ring must be certified: %v", err)
	}
	if !report.Complete {
		t.Error("the reachable space of a 4-ring must be covered completely")
	}
	if report.Configurations == 0 || report.LegitimateConfigurations == 0 {
		t.Errorf("implausible coverage: %+v", report)
	}
}

func TestVerifyRequiresLegitimacyPredicate(t *testing.T) {
	// Standalone entries define no legitimate set, so there is no
	// convergence property to certify.
	run := (Spec{
		Algorithm: "unison-standalone",
		Topology:  "ring",
		N:         4,
		Daemon:    "synchronous",
		Fault:     "none",
		Seed:      1,
	}).MustResolve()
	if _, err := run.Verify(VerifyOptions{}); !errors.Is(err, ErrUnverifiable) {
		t.Errorf("expected ErrUnverifiable, got %v", err)
	}
}

func TestVerifyStartsSeededAndReproducible(t *testing.T) {
	spec := Spec{
		Algorithm: "dominating-set",
		Topology:  "ring",
		N:         5,
		Daemon:    "synchronous",
		Fault:     "random-all",
		Seed:      7,
	}
	a := spec.MustResolve()
	b := spec.MustResolve()
	sa, err := a.VerifyStarts(5)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.VerifyStarts(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != 5 || len(sb) != 5 {
		t.Fatalf("expected 5 starts, got %d and %d", len(sa), len(sb))
	}
	if !sa[0].Equal(a.Start) {
		t.Error("the first verify start must be the run's own Start")
	}
	for i := range sa {
		if !sa[i].Equal(sb[i]) {
			t.Errorf("start %d not reproducible:\n  %s\n  %s", i, sa[i], sb[i])
		}
	}
	// The derived starts should actually differ from each other (the fault
	// model draws fresh corruption per seed).
	distinct := false
	for i := 1; i < len(sa); i++ {
		if !sa[i].Equal(sa[0]) {
			distinct = true
		}
	}
	if !distinct {
		t.Error("derived starts are all identical; the seed derivation is broken")
	}
}
