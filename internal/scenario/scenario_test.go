package scenario

import (
	"errors"
	"reflect"
	"testing"

	"sdr/internal/sim"
)

func TestResolveEveryAlgorithm(t *testing.T) {
	// Every registered algorithm must resolve and execute on a small ring
	// (degree 2 satisfies every Section 6.1 alliance requirement) from both
	// a clean and a fully random start.
	for _, name := range Algorithms() {
		for _, fault := range []string{"none", "random-all"} {
			sp := Spec{
				Algorithm: name,
				Topology:  "ring",
				N:         6,
				Daemon:    "distributed-random",
				Fault:     fault,
				Seed:      5,
				MaxSteps:  50_000,
			}
			run, err := sp.Resolve()
			if err != nil {
				t.Errorf("Resolve(%s, %s): %v", name, fault, err)
				continue
			}
			if run.Alg == nil || run.Engine == nil || run.Start == nil || run.Daemon == nil {
				t.Errorf("Resolve(%s, %s): incomplete run %+v", name, fault, run)
				continue
			}
			entry, _ := AlgorithmByName(name)
			if entry.Composed != (run.Inner != nil) {
				t.Errorf("%s: Composed=%v but Inner=%v", name, entry.Composed, run.Inner)
			}
			res := run.Execute()
			// A run must either make progress, terminate, or stop because
			// its clean start is already legitimate.
			if res.Steps == 0 && !res.Terminated && !res.LegitimateReached {
				t.Errorf("%s/%s: execution made no progress", name, fault)
			}
			// The report must render without panicking even on truncated runs.
			_ = run.Report(res)
		}
	}
}

func TestResolveDeterministic(t *testing.T) {
	sp := Spec{Algorithm: "unison", Topology: "random", N: 10, Daemon: "distributed-random", Fault: "random-all", Seed: 42, MaxSteps: 100_000}
	a := sp.MustResolve()
	b := sp.MustResolve()
	if !a.Start.Equal(b.Start) {
		t.Fatal("equal specs resolved to different starting configurations")
	}
	ra, rb := a.Execute(), b.Execute()
	ra.Final, rb.Final = nil, nil // pointer-carrying field compared separately
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("equal specs produced different results:\n%+v\n%+v", ra, rb)
	}
}

func TestResolveUnknownNames(t *testing.T) {
	base := Spec{Algorithm: "unison", Topology: "ring", N: 6, Daemon: "synchronous", Seed: 1}
	cases := []Spec{
		func() Spec { s := base; s.Algorithm = "nope"; return s }(),
		func() Spec { s := base; s.Topology = "nope"; return s }(),
		func() Spec { s := base; s.Daemon = "nope"; return s }(),
		func() Spec { s := base; s.Fault = "nope"; return s }(),
		func() Spec { s := base; s.Algorithm = "alliance"; s.Params.AllianceSpec = "nope"; return s }(),
	}
	for i, sp := range cases {
		if _, err := sp.Resolve(); !errors.Is(err, ErrUnknown) {
			t.Errorf("case %d: got %v, want ErrUnknown", i, err)
		}
	}
}

func TestResolveUnsatisfiableSpec(t *testing.T) {
	// A path's endpoints have degree 1 < the 2-tuple-domination requirement.
	sp := Spec{Algorithm: "2-tuple-domination", Topology: "path", N: 6, Daemon: "synchronous", Seed: 1}
	if _, err := sp.Resolve(); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("got %v, want ErrUnsatisfiable", err)
	}
}

func TestResolveComposedOnlyFault(t *testing.T) {
	sp := Spec{Algorithm: "bpv", Topology: "ring", N: 6, Daemon: "synchronous", Fault: "fake-wave", Seed: 1}
	if _, err := sp.Resolve(); err == nil {
		t.Fatal("a composed-only fault on a non-composed algorithm must be rejected")
	}
}

func TestExecuteStopsNonTerminatingAtLegitimate(t *testing.T) {
	sp := Spec{Algorithm: "unison", Topology: "ring", N: 8, Daemon: "synchronous", Fault: "random-all", Seed: 3, MaxSteps: 100_000}
	run := sp.MustResolve()
	if run.Terminating {
		t.Fatal("U∘SDR is not a terminating algorithm")
	}
	res := run.Execute()
	if !res.LegitimateReached {
		t.Fatal("the run did not stabilize")
	}
	if res.HitStepLimit {
		t.Fatal("a stabilizing run must not hit the step bound")
	}

	// Terminating compositions run to termination instead.
	bsp := sp
	bsp.Algorithm = "bfstree"
	brun := bsp.MustResolve()
	if !brun.Terminating {
		t.Fatal("B∘SDR is a terminating algorithm")
	}
	bres := brun.Execute()
	if !bres.Terminated {
		t.Fatal("B∘SDR did not terminate")
	}
	if !bres.LegitimateReached || bres.StabilizationMoves > bres.Moves {
		t.Fatalf("stabilization accounting looks wrong: %+v", bres)
	}
}

func TestObserverTracksCompositions(t *testing.T) {
	sp := Spec{Algorithm: "unison", Topology: "ring", N: 8, Daemon: "synchronous", Fault: "random-all", Seed: 9, MaxSteps: 100_000}
	run := sp.MustResolve()
	obs := run.Observer()
	if obs == nil {
		t.Fatal("compositions must expose an observer")
	}
	run.Execute(sim.WithStepHook(obs.Hook()))
	if obs.Segments() < 0 || obs.MaxSDRMoves() < 0 {
		t.Fatalf("observer returned nonsense: segments=%d moves=%d", obs.Segments(), obs.MaxSDRMoves())
	}

	bsp := sp
	bsp.Algorithm = "bpv"
	if brun := bsp.MustResolve(); brun.Observer() != nil {
		t.Fatal("non-composed algorithms must not expose an observer")
	}
}

func TestParamsKnobs(t *testing.T) {
	// Params.K overrides the unison period.
	sp := Spec{Algorithm: "unison", Topology: "ring", N: 6, Daemon: "synchronous", Seed: 1, Params: Params{K: 19}}
	run := sp.MustResolve()
	if got := run.Alg.Name(); got != "U(K=19)∘SDR" {
		t.Errorf("Params.K ignored: algorithm name %q", got)
	}
	// Params.EdgeProb steers the random topology density.
	dense := Spec{Algorithm: "unison", Topology: "random", N: 12, Daemon: "synchronous", Seed: 1, Params: Params{EdgeProb: 0.9}}.MustResolve()
	sparse := Spec{Algorithm: "unison", Topology: "random", N: 12, Daemon: "synchronous", Seed: 1, Params: Params{EdgeProb: 0.05}}.MustResolve()
	if dense.Graph.M() <= sparse.Graph.M() {
		t.Errorf("EdgeProb ignored: dense m=%d, sparse m=%d", dense.Graph.M(), sparse.Graph.M())
	}
}
