package scenario

import (
	"fmt"
)

// TrialSeedStride separates the derived seeds of consecutive trials of a
// sweep cell. A large prime keeps the per-trial RNG streams disjoint from
// the small seed offsets users typically pick.
const TrialSeedStride = 1_000_003

// Sweep is a declarative cross-product of Spec axes. Expanding it yields one
// cell per (algorithm × topology × size × daemon × fault) combination, in
// that nesting order; each cell runs Trials seeded executions. The
// (cell × trial) grid is what the internal/bench parallel worker pool
// consumes.
type Sweep struct {
	// Algorithms, Topologies, Daemons and Faults name registry entries.
	// Empty Faults defaults to {"none"}.
	Algorithms []string
	Topologies []string
	Daemons    []string
	Faults     []string
	// Churns names churn schedules (registry entries or grammar forms); the
	// empty slice defaults to {""} (no mid-run perturbation).
	Churns []string
	// Sizes is the sweep of network sizes n.
	Sizes []int
	// Trials is the number of seeded repetitions per cell (≤ 0 means 1).
	Trials int
	// Seed is the base seed; trial t of every cell derives seed
	// Seed + t·SeedStride.
	Seed int64
	// SeedStride separates the seeds of consecutive trials; 0 means
	// TrialSeedStride.
	SeedStride int64
	// MaxSteps bounds each execution; 0 means sim.DefaultMaxSteps.
	MaxSteps int
	// Shards is the engine shard count shared by every cell (see
	// Spec.Shards); 0 or 1 means the sequential engine. It is a shared knob,
	// not a sweep axis: non-synchronous daemons change semantics with the
	// shard count, so a sweep mixing shard counts would compare different
	// adversaries.
	Shards int
	// Params carries the entry-specific knobs shared by every cell.
	Params Params
}

// Cell is one point of an expanded sweep.
type Cell struct {
	Algorithm string
	Topology  string
	N         int
	Daemon    string
	Fault     string
	Churn     string
}

// Cells expands the cross-product in table order: algorithms outermost, then
// topologies, sizes, daemons, faults and churn schedules.
func (s Sweep) Cells() []Cell {
	faultAxis := s.Faults
	if len(faultAxis) == 0 {
		faultAxis = []string{"none"}
	}
	churnAxis := s.Churns
	if len(churnAxis) == 0 {
		churnAxis = []string{""}
	}
	var cells []Cell
	for _, alg := range s.Algorithms {
		for _, top := range s.Topologies {
			for _, n := range s.Sizes {
				for _, d := range s.Daemons {
					for _, f := range faultAxis {
						for _, c := range churnAxis {
							cells = append(cells, Cell{Algorithm: alg, Topology: top, N: n, Daemon: d, Fault: f, Churn: c})
						}
					}
				}
			}
		}
	}
	return cells
}

// Trial returns the Spec of the given cell's trial-th repetition.
func (s Sweep) Trial(c Cell, trial int) Spec {
	stride := s.SeedStride
	if stride == 0 {
		stride = TrialSeedStride
	}
	return Spec{
		Algorithm: c.Algorithm,
		Topology:  c.Topology,
		N:         c.N,
		Daemon:    c.Daemon,
		Fault:     c.Fault,
		Churn:     c.Churn,
		Seed:      s.Seed + int64(trial)*stride,
		MaxSteps:  s.MaxSteps,
		Shards:    s.Shards,
		Params:    s.Params,
	}
}

// Validate checks that every axis resolves to a registry entry and that the
// sweep is non-empty, without building any topology.
func (s Sweep) Validate() error {
	if len(s.Algorithms) == 0 || len(s.Topologies) == 0 || len(s.Daemons) == 0 || len(s.Sizes) == 0 {
		return fmt.Errorf("scenario: sweep needs at least one algorithm, topology, daemon and size")
	}
	for _, name := range s.Algorithms {
		if _, err := AlgorithmByName(name); err != nil {
			return err
		}
	}
	for _, name := range s.Topologies {
		if _, err := TopologyByName(name); err != nil {
			return err
		}
	}
	for _, name := range s.Daemons {
		if _, err := DaemonByName(name); err != nil {
			return err
		}
	}
	for _, name := range s.Faults {
		if _, err := FaultByName(name); err != nil {
			return err
		}
	}
	for _, name := range s.Churns {
		if name == "" {
			continue
		}
		if _, err := ResolveChurn(name); err != nil {
			return err
		}
	}
	return nil
}
