package scenario

import (
	"reflect"
	"strings"
	"testing"

	"sdr/internal/churn"
)

func TestChurnRegistryEntriesAreComplete(t *testing.T) {
	names := ChurnSchedules()
	if len(names) == 0 {
		t.Fatal("no churn schedules registered")
	}
	for _, name := range names {
		entry, err := ChurnByName(name)
		if err != nil {
			t.Fatalf("ChurnByName(%q): %v", name, err)
		}
		if entry.Description == "" {
			t.Errorf("churn schedule %q has no description", name)
		}
		if err := entry.Schedule.Validate(); err != nil {
			t.Errorf("churn schedule %q is invalid: %v", name, err)
		}
	}
}

func TestResolveChurnFallsBackToGrammar(t *testing.T) {
	sched, err := ResolveChurn("periodic:events=2,every=50")
	if err != nil {
		t.Fatalf("grammar fallback: %v", err)
	}
	if sched.Events != 2 || sched.Every != 50 {
		t.Errorf("parsed schedule %+v", sched)
	}
	if _, err := ResolveChurn("no-such-schedule"); err == nil {
		t.Error("unresolvable churn name must error")
	} else if !strings.Contains(err.Error(), "periodic-corrupt") {
		t.Errorf("the error should list the registered schedules, got: %v", err)
	}
}

func TestChurnRunRecordsAndRecoversEvents(t *testing.T) {
	spec := Spec{
		Algorithm: "unison",
		Topology:  "ring",
		N:         8,
		Daemon:    "distributed-random",
		Fault:     "random-all",
		Churn:     "periodic:events=3,every=100,kinds=corrupt-fraction+node-crash+edge-drop",
		Seed:      11,
		MaxSteps:  300_000,
	}
	run, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if run.Churn == nil {
		t.Fatal("resolved run has no churn injector")
	}
	res := run.Execute()
	if len(res.Events) != 3 {
		t.Fatalf("recorded %d events, want 3: %+v", len(res.Events), res.Events)
	}
	for i, ev := range res.Events {
		if !ev.Recovered {
			t.Errorf("event %d (%s at step %d) never recovered", i, ev.Label, ev.Step)
		}
		if ev.RecoverySteps < 0 || ev.RecoveryMoves < 0 || ev.RecoveryRounds < 0 {
			t.Errorf("event %d has negative recovery costs: %+v", i, ev)
		}
	}
	if !res.LegitimateReached {
		t.Error("churn run never stabilized at all")
	}
	if res.LegitimateSteps == 0 || res.Availability() <= 0 {
		t.Errorf("availability not tracked: %d legitimate of %d steps", res.LegitimateSteps, res.Steps)
	}
}

func TestChurnRunsAreDeterministic(t *testing.T) {
	spec := Spec{
		Algorithm: "unison",
		Topology:  "torus",
		N:         9,
		Daemon:    "distributed-random",
		Fault:     "half-corrupt",
		Churn:     "poisson-mixed",
		Seed:      5,
		MaxSteps:  300_000,
	}
	execute := func() ([]int, []string, int, int) {
		run, err := spec.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		times := run.Churn.Times()
		res := run.Execute()
		labels := make([]string, len(res.Events))
		for i, ev := range res.Events {
			labels[i] = ev.Label
		}
		return times, labels, res.Steps, res.Moves
	}
	t1, l1, s1, m1 := execute()
	t2, l2, s2, m2 := execute()
	if !reflect.DeepEqual(t1, t2) || !reflect.DeepEqual(l1, l2) || s1 != s2 || m1 != m2 {
		t.Errorf("same spec produced different churn runs:\n(%v,%v,%d,%d)\n(%v,%v,%d,%d)",
			t1, l1, s1, m1, t2, l2, s2, m2)
	}
}

func TestChurnRequirementsSurfaceAtResolve(t *testing.T) {
	spec := Spec{
		Algorithm: "unison-standalone",
		Topology:  "ring",
		N:         6,
		Daemon:    "synchronous",
		Churn:     "periodic:kinds=fake-reset-wave",
		Seed:      1,
	}
	if _, err := spec.Resolve(); err == nil {
		t.Error("fake-reset-wave churn on a non-composed algorithm must fail to resolve")
	}
}

func TestPartitionHealPresetRuns(t *testing.T) {
	spec := Spec{
		Algorithm: "unison",
		Topology:  "ring",
		N:         8,
		Daemon:    "distributed-random",
		Fault:     "none",
		Churn:     "partition-heal",
		Seed:      3,
		MaxSteps:  500_000,
	}
	run, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	res := run.Execute()
	if len(res.Events) != 4 {
		t.Fatalf("recorded %d events, want 4", len(res.Events))
	}
	if got := []string{res.Events[0].Label, res.Events[1].Label}; got[0] != string(churn.Partition) || got[1] != string(churn.Heal) {
		t.Errorf("event labels %v, want partition then heal", got)
	}
	// The run must end on a healed, connected network.
	if !run.Graph.Connected() {
		t.Error("network still partitioned after the final heal")
	}
	if last := res.Events[len(res.Events)-1]; !last.Recovered {
		t.Errorf("final heal never recovered: %+v", last)
	}
}
