package scenario

import (
	"errors"
	"fmt"

	"sdr/internal/churn"
)

// ChurnEntry is one named churn schedule of the registry: a preset mid-run
// perturbation schedule (see internal/churn) usable anywhere a Spec.Churn
// value is accepted.
type ChurnEntry struct {
	// Name is the registry key.
	Name string
	// Description is a one-line summary for -list output.
	Description string
	// Schedule is the preset schedule.
	Schedule churn.Schedule
}

var churnRegistry = newRegistry[ChurnEntry]("churn schedule")

// RegisterChurn adds an entry to the churn-schedule registry. It panics on
// duplicate names; call it from init functions or test setup only.
func RegisterChurn(e ChurnEntry) { churnRegistry.add(e.Name, e) }

// ChurnSchedules returns the registered churn-schedule names in registration
// order.
func ChurnSchedules() []string { return churnRegistry.list() }

// ChurnByName returns the entry with the given name.
func ChurnByName(name string) (ChurnEntry, error) { return churnRegistry.lookup(name) }

// ResolveChurn turns a Spec.Churn value into a schedule: a registered preset
// name, or — when no preset matches — the churn schedule grammar
// ("pattern:key=value,...", see churn.Parse).
func ResolveChurn(name string) (churn.Schedule, error) {
	if entry, err := ChurnByName(name); err == nil {
		return entry.Schedule, nil
	} else if !errors.Is(err, ErrUnknown) {
		return churn.Schedule{}, err
	}
	sched, parseErr := churn.Parse(name)
	if parseErr != nil {
		return churn.Schedule{}, fmt.Errorf("scenario: churn %q names no registered schedule (%v) and does not parse as a schedule: %w",
			name, ChurnSchedules(), parseErr)
	}
	return sched, nil
}

func init() {
	RegisterChurn(ChurnEntry{
		Name:        "periodic-corrupt",
		Description: "5 periodic corrupt-fraction events (30% of the processes every 200 steps)",
		Schedule: churn.Schedule{
			Pattern:    churn.Periodic,
			EventKinds: []churn.Kind{churn.CorruptFraction},
		},
	})
	RegisterChurn(ChurnEntry{
		Name:        "poisson-mixed",
		Description: "6 Poisson-arrival events (mean gap 150 steps) mixing corruption, crash-reboots and edge churn",
		Schedule: churn.Schedule{
			Pattern:    churn.Poisson,
			Events:     6,
			Every:      150,
			EventKinds: []churn.Kind{churn.CorruptFraction, churn.NodeCrash, churn.EdgeDrop, churn.EdgeAdd},
			Count:      2,
		},
	})
	RegisterChurn(ChurnEntry{
		Name:        "burst-corrupt",
		Description: "2 bursts of 3 corrupt-processes events at consecutive steps, 400 steps apart",
		Schedule: churn.Schedule{
			Pattern:    churn.BurstPattern,
			Events:     6,
			Every:      400,
			Burst:      3,
			EventKinds: []churn.Kind{churn.CorruptProcesses},
			Count:      2,
		},
	})
	RegisterChurn(ChurnEntry{
		Name:        "adversarial-hub",
		Description: "4 worst-node events every 250 steps: crash-reboot and corruption of the max-degree hub's closed neighbourhood",
		Schedule: churn.Schedule{
			Pattern:    churn.Adversarial,
			Events:     4,
			Every:      250,
			EventKinds: []churn.Kind{churn.NodeCrash, churn.CorruptProcesses},
		},
	})
	RegisterChurn(ChurnEntry{
		Name:        "partition-heal",
		Description: "2 partition/heal cycles: cut the network in halves for 300 steps, then re-join it",
		Schedule: churn.Schedule{
			Pattern:    churn.Periodic,
			Events:     4,
			Every:      300,
			EventKinds: []churn.Kind{churn.Partition, churn.Heal},
		},
	})
}
