package scenario

import (
	"fmt"
	"math/rand"

	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/sim"
)

// FaultEntry is one named fault model of the registry: a recipe producing
// the (possibly corrupted) starting configuration of a run.
type FaultEntry struct {
	// Name is the registry key.
	Name string
	// Description is a one-line summary for -list output.
	Description string
	// ComposedOnly marks recipes that corrupt the reset machinery and hence
	// only apply to compositions I ∘ SDR.
	ComposedOnly bool
	// Build produces the starting configuration. inner is nil for
	// non-composed algorithms.
	Build func(alg sim.Algorithm, inner core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error)
}

var faultRegistry = newRegistry[FaultEntry]("fault model")

// RegisterFault adds an entry to the fault-model registry. It panics on
// duplicate names; call it from init functions or test setup only.
func RegisterFault(e FaultEntry) { faultRegistry.add(e.Name, e) }

// FaultModels returns the registered fault-model names in registration order.
func FaultModels() []string { return faultRegistry.list() }

// FaultByName returns the entry with the given name.
func FaultByName(name string) (FaultEntry, error) { return faultRegistry.lookup(name) }

// faultDescriptions documents the standard scenarios; keyed by scenario name.
var faultDescriptions = map[string]string{
	"random-all":   "every variable of every process drawn uniformly from the state space",
	"inner-only":   "clean reset machinery, half of the application states corrupted",
	"fake-wave":    "40% of the processes put into an arbitrary phase of a non-existent reset",
	"half-corrupt": "half of the processes get uniformly random full states",
}

func init() {
	RegisterFault(FaultEntry{
		Name:        "none",
		Description: "no fault: start from the algorithm's pre-defined initial configuration γ_init",
		Build: func(alg sim.Algorithm, _ core.Resettable, net *sim.Network, _ *rand.Rand) (*sim.Configuration, error) {
			return sim.InitialConfiguration(alg, net), nil
		},
	})
	// The faults package scenarios become registry entries; the completeness
	// test asserts every standard scenario is registered. Builders that need
	// an enumerated state space report the requirement themselves.
	for _, s := range faults.StandardScenarios() {
		s := s
		RegisterFault(FaultEntry{
			Name:         s.Name,
			Description:  faultDescriptions[s.Name],
			ComposedOnly: s.Name == "inner-only" || s.Name == "fake-wave",
			Build: func(alg sim.Algorithm, inner core.Resettable, net *sim.Network, rng *rand.Rand) (*sim.Configuration, error) {
				cfg, err := s.Build(alg, inner, net, rng)
				if err != nil {
					return nil, fmt.Errorf("scenario: fault %q: %w", s.Name, err)
				}
				return cfg, nil
			},
		})
	}
}
