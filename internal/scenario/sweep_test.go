package scenario

import (
	"errors"
	"testing"
)

func TestSweepCellsOrderAndCount(t *testing.T) {
	sw := Sweep{
		Algorithms: []string{"a1", "a2"},
		Topologies: []string{"t1", "t2", "t3"},
		Daemons:    []string{"d1"},
		Faults:     []string{"f1", "f2"},
		Sizes:      []int{4, 8},
	}
	cells := sw.Cells()
	if got, want := len(cells), 2*3*2*1*2; got != want {
		t.Fatalf("expanded %d cells, want %d", got, want)
	}
	// Nesting order: algorithm > topology > size > daemon > fault.
	if cells[0] != (Cell{"a1", "t1", 4, "d1", "f1", ""}) {
		t.Errorf("first cell %+v", cells[0])
	}
	if cells[1] != (Cell{"a1", "t1", 4, "d1", "f2", ""}) {
		t.Errorf("second cell %+v (fault must be innermost)", cells[1])
	}
	if cells[len(cells)-1] != (Cell{"a2", "t3", 8, "d1", "f2", ""}) {
		t.Errorf("last cell %+v", cells[len(cells)-1])
	}

	// Empty fault axis defaults to none.
	sw.Faults = nil
	if cells := sw.Cells(); cells[0].Fault != "none" {
		t.Errorf("empty fault axis expanded to %q, want none", cells[0].Fault)
	}
}

func TestSweepTrialSeeds(t *testing.T) {
	sw := Sweep{Seed: 100, MaxSteps: 42, Params: Params{K: 7}}
	c := Cell{Algorithm: "unison", Topology: "ring", N: 6, Daemon: "synchronous", Fault: "none"}
	sp0 := sw.Trial(c, 0)
	sp2 := sw.Trial(c, 2)
	if sp0.Seed != 100 || sp2.Seed != 100+2*TrialSeedStride {
		t.Errorf("trial seeds %d, %d", sp0.Seed, sp2.Seed)
	}
	if sp0.MaxSteps != 42 || sp0.Params.K != 7 || sp0.Algorithm != "unison" {
		t.Errorf("cell fields not threaded through: %+v", sp0)
	}
	sw.SeedStride = 5
	if got := sw.Trial(c, 3).Seed; got != 115 {
		t.Errorf("custom stride seed %d, want 115", got)
	}
}

func TestSweepValidate(t *testing.T) {
	good := Sweep{
		Algorithms: []string{"unison"},
		Topologies: []string{"ring"},
		Daemons:    []string{"synchronous"},
		Faults:     []string{"random-all"},
		Sizes:      []int{6},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid sweep rejected: %v", err)
	}
	for _, bad := range []Sweep{
		{Topologies: []string{"ring"}, Daemons: []string{"synchronous"}, Sizes: []int{6}},
		{Algorithms: []string{"nope"}, Topologies: []string{"ring"}, Daemons: []string{"synchronous"}, Sizes: []int{6}},
		{Algorithms: []string{"unison"}, Topologies: []string{"nope"}, Daemons: []string{"synchronous"}, Sizes: []int{6}},
		{Algorithms: []string{"unison"}, Topologies: []string{"ring"}, Daemons: []string{"nope"}, Sizes: []int{6}},
		{Algorithms: []string{"unison"}, Topologies: []string{"ring"}, Daemons: []string{"synchronous"}, Faults: []string{"nope"}, Sizes: []int{6}},
	} {
		err := bad.Validate()
		if err == nil {
			t.Errorf("invalid sweep %+v accepted", bad)
		}
		if len(bad.Algorithms) == 1 && bad.Algorithms[0] == "nope" && !errors.Is(err, ErrUnknown) {
			t.Errorf("unknown name error not wrapped: %v", err)
		}
	}
}
