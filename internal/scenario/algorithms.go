package scenario

import (
	"fmt"

	"sdr/internal/alliance"
	"sdr/internal/core"
	"sdr/internal/graph"
	"sdr/internal/sim"
	"sdr/internal/spantree"
	"sdr/internal/unison"
)

// Assembly is what an algorithm registry entry builds for a concrete
// network: the algorithm itself plus the metadata the run pipeline needs.
type Assembly struct {
	// Algorithm is the built algorithm.
	Algorithm sim.Algorithm
	// Inner is the inner Resettable when Algorithm is a composition I ∘ SDR,
	// nil otherwise.
	Inner core.Resettable
	// Legitimate is the legitimacy predicate used to measure stabilization
	// (nil when the entry defines none).
	Legitimate sim.Predicate
	// Terminating reports whether executions terminate (silent algorithms).
	Terminating bool
}

// AlgorithmEntry is one named algorithm of the registry.
type AlgorithmEntry struct {
	// Name is the registry key.
	Name string
	// Kind groups variants of the same algorithm family ("unison", "bpv",
	// "alliance", "bfstree") for presentation purposes.
	Kind string
	// Composed reports whether the entry builds a composition I ∘ SDR.
	Composed bool
	// Description is a one-line summary for -list output.
	Description string
	// Build assembles the algorithm on the given network.
	Build func(g *graph.Graph, net *sim.Network, p Params) (Assembly, error)
	// Report renders the algorithm-specific outcome of a finished run
	// (optional; nil means "no output check").
	Report func(r *Run, res sim.Result) Report
}

var algorithmRegistry = newRegistry[AlgorithmEntry]("algorithm")

// RegisterAlgorithm adds an entry to the algorithm registry. It panics on
// duplicate names; call it from init functions or test setup only.
func RegisterAlgorithm(e AlgorithmEntry) { algorithmRegistry.add(e.Name, e) }

// Algorithms returns the registered algorithm names in registration order.
func Algorithms() []string { return algorithmRegistry.list() }

// AlgorithmByName returns the entry with the given name.
func AlgorithmByName(name string) (AlgorithmEntry, error) { return algorithmRegistry.lookup(name) }

// periodOf returns the unison period for Params.K on an n-process network.
func periodOf(p Params, n int) int {
	if p.K > 0 {
		return p.K
	}
	return unison.DefaultPeriod(n)
}

// allianceSpecByName returns the Section 6.1 alliance spec with the given
// name ("" means dominating-set).
func allianceSpecByName(name string) (alliance.Spec, error) {
	if name == "" {
		return alliance.DominatingSet(), nil
	}
	for _, s := range alliance.StandardSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	var known []string
	for _, s := range alliance.StandardSpecs() {
		known = append(known, s.Name)
	}
	return alliance.Spec{}, fmt.Errorf("%w: alliance spec %q (known: %v)", ErrUnknown, name, known)
}

// buildAllianceComposed assembles FGA ∘ SDR for the given spec.
func buildAllianceComposed(spec alliance.Spec, g *graph.Graph, net *sim.Network) (Assembly, error) {
	if err := spec.Validate(g); err != nil {
		return Assembly{}, fmt.Errorf("%w: %v", ErrUnsatisfiable, err)
	}
	fga := alliance.NewFGA(spec)
	return Assembly{
		Algorithm:   core.Compose(fga),
		Inner:       fga,
		Legitimate:  core.NormalPredicate(fga, net),
		Terminating: true,
	}, nil
}

// buildAllianceStandalone assembles FGA alone for the given spec.
func buildAllianceStandalone(spec alliance.Spec, g *graph.Graph) (Assembly, error) {
	if err := spec.Validate(g); err != nil {
		return Assembly{}, fmt.Errorf("%w: %v", ErrUnsatisfiable, err)
	}
	return Assembly{Algorithm: core.NewStandalone(alliance.NewFGA(spec)), Terminating: true}, nil
}

// allianceReport renders the alliance outcome: the member set and whether it
// is a 1-minimal (f,g)-alliance.
func allianceReport(spec alliance.Spec) func(r *Run, res sim.Result) Report {
	return func(r *Run, res sim.Result) Report {
		members := alliance.Members(res.Final)
		isAlliance := alliance.IsAlliance(r.Graph, spec, members)
		minimal := alliance.Is1Minimal(r.Graph, spec, members)
		return Report{
			Lines: []string{
				fmt.Sprintf("alliance  : %v (size %d)", members, len(members)),
				fmt.Sprintf("valid     : alliance=%v, 1-minimal=%v", isAlliance, minimal),
			},
			OK: res.Terminated && isAlliance && minimal,
		}
	}
}

func init() {
	RegisterAlgorithm(AlgorithmEntry{
		Name:        "unison",
		Kind:        "unison",
		Composed:    true,
		Description: "Algorithm U ∘ SDR: self-stabilizing unison via the cooperative reset (Section 5); K = n+1 unless Params.K is set",
		Build: func(g *graph.Graph, net *sim.Network, p Params) (Assembly, error) {
			u := unison.New(periodOf(p, g.N()))
			return Assembly{
				Algorithm:  core.Compose(u),
				Inner:      u,
				Legitimate: core.NormalPredicate(u, net),
			}, nil
		},
		Report: unisonReport,
	})
	RegisterAlgorithm(AlgorithmEntry{
		Name:        "unison-standalone",
		Kind:        "unison",
		Description: "Algorithm U alone from its pre-defined initial configuration (not self-stabilizing)",
		Build: func(g *graph.Graph, net *sim.Network, p Params) (Assembly, error) {
			return Assembly{Algorithm: core.NewStandalone(unison.New(periodOf(p, g.N())))}, nil
		},
		Report: unisonReport,
	})
	RegisterAlgorithm(AlgorithmEntry{
		Name:        "unison-uncoop",
		Kind:        "unison",
		Composed:    true,
		Description: "ablation A1: U ∘ SDR with uncooperative resets (joining processes become roots of their own reset)",
		Build: func(g *graph.Graph, net *sim.Network, p Params) (Assembly, error) {
			u := unison.New(periodOf(p, g.N()))
			return Assembly{
				Algorithm:  core.Compose(u, core.WithUncooperativeResets()),
				Inner:      u,
				Legitimate: core.NormalPredicate(u, net),
			}, nil
		},
		Report: unisonReport,
	})
	RegisterAlgorithm(AlgorithmEntry{
		Name:        "bpv",
		Kind:        "bpv",
		Description: "Boulinier-Petit-Villain self-stabilizing unison, the Section 5.3 baseline; K and α derived from the topology",
		Build: func(g *graph.Graph, net *sim.Network, p Params) (Assembly, error) {
			b := unison.NewBPVFor(g)
			return Assembly{Algorithm: b, Legitimate: b.LegitimatePredicate(g)}, nil
		},
		Report: func(r *Run, res sim.Result) Report {
			return Report{OK: res.LegitimateReached}
		},
	})
	RegisterAlgorithm(AlgorithmEntry{
		Name:        "bfstree",
		Kind:        "bfstree",
		Composed:    true,
		Description: "extension: silent self-stabilizing BFS spanning tree via B ∘ SDR, rooted at Params.Root",
		Build: func(g *graph.Graph, net *sim.Network, p Params) (Assembly, error) {
			bfs := spantree.NewFor(g, p.Root)
			return Assembly{
				Algorithm:   core.Compose(bfs),
				Inner:       bfs,
				Legitimate:  core.NormalPredicate(bfs, net),
				Terminating: true,
			}, nil
		},
		Report: bfsReport,
	})
	RegisterAlgorithm(AlgorithmEntry{
		Name:        "bfstree-standalone",
		Kind:        "bfstree",
		Description: "BFS spanning tree algorithm B alone from its pre-defined initial configuration",
		Build: func(g *graph.Graph, net *sim.Network, p Params) (Assembly, error) {
			return Assembly{Algorithm: core.NewStandalone(spantree.NewFor(g, p.Root)), Terminating: true}, nil
		},
		Report: bfsReport,
	})
	RegisterAlgorithm(AlgorithmEntry{
		Name:        "alliance",
		Kind:        "alliance",
		Composed:    true,
		Description: "FGA ∘ SDR for the alliance spec named by Params.AllianceSpec (default dominating-set)",
		Build: func(g *graph.Graph, net *sim.Network, p Params) (Assembly, error) {
			spec, err := allianceSpecByName(p.AllianceSpec)
			if err != nil {
				return Assembly{}, err
			}
			return buildAllianceComposed(spec, g, net)
		},
		Report: func(r *Run, res sim.Result) Report {
			spec, err := allianceSpecByName(r.Spec.Params.AllianceSpec)
			if err != nil {
				return Report{}
			}
			return allianceReport(spec)(r, res)
		},
	})
	RegisterAlgorithm(AlgorithmEntry{
		Name:        "alliance-standalone",
		Kind:        "alliance",
		Description: "FGA alone for the alliance spec named by Params.AllianceSpec (default dominating-set)",
		Build: func(g *graph.Graph, net *sim.Network, p Params) (Assembly, error) {
			spec, err := allianceSpecByName(p.AllianceSpec)
			if err != nil {
				return Assembly{}, err
			}
			return buildAllianceStandalone(spec, g)
		},
		Report: func(r *Run, res sim.Result) Report {
			spec, err := allianceSpecByName(r.Spec.Params.AllianceSpec)
			if err != nil {
				return Report{}
			}
			return allianceReport(spec)(r, res)
		},
	})
	// The six Section 6.1 special cases, each as composed and standalone
	// entries, so that sweeps can name them directly.
	for _, spec := range alliance.StandardSpecs() {
		spec := spec
		RegisterAlgorithm(AlgorithmEntry{
			Name:        spec.Name,
			Kind:        "alliance",
			Composed:    true,
			Description: fmt.Sprintf("FGA ∘ SDR computing a 1-minimal %s (Section 6.1)", spec.Name),
			Build: func(g *graph.Graph, net *sim.Network, p Params) (Assembly, error) {
				return buildAllianceComposed(spec, g, net)
			},
			Report: allianceReport(spec),
		})
		RegisterAlgorithm(AlgorithmEntry{
			Name:        spec.Name + "-standalone",
			Kind:        "alliance",
			Description: fmt.Sprintf("FGA alone computing a 1-minimal %s from γ_init", spec.Name),
			Build: func(g *graph.Graph, net *sim.Network, p Params) (Assembly, error) {
				return buildAllianceStandalone(spec, g)
			},
			Report: allianceReport(spec),
		})
	}
}

// unisonReport renders the unison outcome: the final clock configuration.
func unisonReport(r *Run, res sim.Result) Report {
	ok := true
	if r.Legitimate != nil {
		ok = res.LegitimateReached
	}
	return Report{
		Lines: []string{fmt.Sprintf("final     : %s", res.Final)},
		OK:    ok,
	}
}

// bfsReport renders the spanning-tree outcome: the distance vector and the
// exactness of the tree.
func bfsReport(r *Run, res sim.Result) Report {
	err := spantree.VerifyTree(r.Graph, r.Spec.Params.Root, res.Final)
	return Report{
		Lines: []string{
			fmt.Sprintf("bfs tree  : distances=%v", spantree.Distances(res.Final)),
			fmt.Sprintf("valid     : %v", err == nil),
		},
		OK: res.Terminated && err == nil,
	}
}
