package scenario

import (
	"sdr/internal/sim"
)

// DaemonEntry is one named scheduling adversary of the registry.
type DaemonEntry struct {
	// Name is the registry key.
	Name string
	// Description is a one-line summary for -list output.
	Description string
	// New builds a daemon from the given seed.
	New func(seed int64) sim.Daemon
}

var daemonRegistry = newRegistry[DaemonEntry]("daemon")

// RegisterDaemon adds an entry to the daemon registry. It panics on
// duplicate names; call it from init functions or test setup only.
func RegisterDaemon(e DaemonEntry) { daemonRegistry.add(e.Name, e) }

// Daemons returns the registered daemon names in registration order.
func Daemons() []string { return daemonRegistry.list() }

// DaemonByName returns the entry with the given name.
func DaemonByName(name string) (DaemonEntry, error) { return daemonRegistry.lookup(name) }

// daemonDescriptions documents the standard daemons; keyed by factory name.
var daemonDescriptions = map[string]string{
	"synchronous":        "activates every enabled process in every step",
	"central-random":     "activates one uniformly random enabled process per step (central daemon)",
	"distributed-random": "activates each enabled process independently with probability 0.5",
	"locally-central":    "activates a random maximal independent subset of the enabled processes",
	"round-robin":        "activates one process per step, cycling through process indices (weakly fair)",
	"greedy-adversarial": "one-step lookahead: activates the process leaving the most processes enabled",
}

func init() {
	// The registry mirrors sim.StandardDaemonFactories so that daemon names
	// resolve identically everywhere; the completeness test asserts the two
	// stay in sync.
	for _, df := range sim.StandardDaemonFactories() {
		df := df
		RegisterDaemon(DaemonEntry{
			Name:        df.Name,
			Description: daemonDescriptions[df.Name],
			New:         df.New,
		})
	}
}
