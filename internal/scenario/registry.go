package scenario

import (
	"fmt"
	"strings"
)

// registry is an ordered name → entry table. Registration order is preserved
// so that listings group entries logically (e.g. an algorithm next to its
// standalone variant).
type registry[E any] struct {
	kind    string
	names   []string
	entries map[string]E
}

func newRegistry[E any](kind string) *registry[E] {
	return &registry[E]{kind: kind, entries: make(map[string]E)}
}

// add registers an entry; duplicate names are programming errors.
func (r *registry[E]) add(name string, e E) {
	if name == "" {
		panic(fmt.Sprintf("scenario: empty %s name", r.kind))
	}
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate %s %q", r.kind, name))
	}
	r.names = append(r.names, name)
	r.entries[name] = e
}

// lookup returns the entry with the given name or an ErrUnknown-wrapped
// error listing the registered names.
func (r *registry[E]) lookup(name string) (E, error) {
	if e, ok := r.entries[name]; ok {
		return e, nil
	}
	var zero E
	return zero, fmt.Errorf("%w: %s %q (known: %s)", ErrUnknown, r.kind, name, strings.Join(r.names, ", "))
}

// list returns the registered names in registration order.
func (r *registry[E]) list() []string {
	return append([]string(nil), r.names...)
}
