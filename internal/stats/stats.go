// Package stats provides the small statistical helpers the benchmark harness
// and the experiment reports rely on: summaries of samples (min / mean / max /
// standard deviation) and least-squares fits used to check the growth shape
// of measured costs against the paper's asymptotic bounds.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	// Count is the number of samples.
	Count int
	// Min, Max, Mean and Median summarise the sample.
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	// StdDev is the population standard deviation.
	StdDev float64
}

// Summarize computes a Summary of the samples. It returns a zero Summary for
// an empty sample.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(samples), Min: samples[0], Max: samples[0]}
	sum := 0.0
	for _, x := range samples {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(samples))

	varSum := 0.0
	for _, x := range samples {
		d := x - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(len(samples)))

	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// SummarizeInts is Summarize over integer samples.
func SummarizeInts(samples []int) Summary {
	floats := make([]float64, len(samples))
	for i, x := range samples {
		floats[i] = float64(x)
	}
	return Summarize(floats)
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f mean=%.1f median=%.1f max=%.1f sd=%.1f",
		s.Count, s.Min, s.Mean, s.Median, s.Max, s.StdDev)
}

// Fit is a least-squares fit y ≈ Slope·x + Intercept with its coefficient of
// determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits y ≈ a·x + b by least squares. It returns a zero fit when
// fewer than two points are supplied or all x values coincide.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Fit{}
	}
	n := float64(len(xs))
	var sumX, sumY, sumXX, sumXY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
		sumXX += xs[i] * xs[i]
		sumXY += xs[i] * ys[i]
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return Fit{}
	}
	slope := (n*sumXY - sumX*sumY) / den
	intercept := (sumY - slope*sumX) / n

	meanY := sumY / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// GrowthExponent estimates the exponent p of a power-law relationship
// y ≈ c·x^p by fitting a line in log-log space. It ignores non-positive
// samples and returns 0 when fewer than two usable points remain. The
// experiment reports use it to compare measured growth against the paper's
// asymptotic bounds (e.g. moves growing roughly like n² for U ∘ SDR).
func GrowthExponent(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return 0
	}
	return LinearFit(lx, ly).Slope
}

// Ratio returns a/b, or 0 when b is 0; it keeps benchmark tables free of
// division-by-zero special cases.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
