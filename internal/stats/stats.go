// Package stats provides the small statistical helpers the benchmark harness
// and the experiment reports rely on: summaries of samples (min / mean / max /
// standard deviation) and least-squares fits used to check the growth shape
// of measured costs against the paper's asymptotic bounds.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	// Count is the number of samples.
	Count int
	// Min, Max, Mean and Median summarise the sample.
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	// StdDev is the population standard deviation.
	StdDev float64
}

// Summarize computes a Summary of the samples. It returns a zero Summary for
// an empty sample.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(samples), Min: samples[0], Max: samples[0]}
	sum := 0.0
	for _, x := range samples {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(samples))

	varSum := 0.0
	for _, x := range samples {
		d := x - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(len(samples)))

	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// SummarizeInts is Summarize over integer samples.
func SummarizeInts(samples []int) Summary {
	floats := make([]float64, len(samples))
	for i, x := range samples {
		floats[i] = float64(x)
	}
	return Summarize(floats)
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f mean=%.1f median=%.1f max=%.1f sd=%.1f",
		s.Count, s.Min, s.Mean, s.Median, s.Max, s.StdDev)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of the samples using
// linear interpolation between closest ranks (the R-7 method used by numpy
// and spreadsheets): rank = p/100·(n-1), interpolated between the two
// surrounding order statistics. p ≤ 0 returns the minimum, p ≥ 100 the
// maximum, and an empty sample returns 0. The input is not modified.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile over an already ascending-sorted sample.
func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 || n == 1 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Aggregate is the full per-cell statistics record of a campaign: the
// Summary moments plus tail percentiles and a two-sided 95% confidence
// interval of the mean. Unlike Summary.StdDev (population), Aggregate.StdDev
// is the sample (n-1) standard deviation, the one the CI is built from.
type Aggregate struct {
	// Count is the number of samples.
	Count int `json:"count"`
	// Min, Max and Mean summarise the sample.
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// StdDev is the sample (n-1) standard deviation; 0 for fewer than two
	// samples.
	StdDev float64 `json:"stddev"`
	// P50, P95 and P99 are linearly interpolated percentiles.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// CILow and CIHigh bound the two-sided Student-t 95% confidence interval
	// of the mean. For fewer than two samples the interval collapses to
	// [Mean, Mean]; callers that stop sampling on CI width must therefore
	// enforce their own minimum sample count.
	CILow  float64 `json:"ci_low"`
	CIHigh float64 `json:"ci_high"`
}

// AggregateSamples computes the Aggregate of the samples. It returns a zero
// Aggregate for an empty sample and does not modify the input.
func AggregateSamples(samples []float64) Aggregate {
	if len(samples) == 0 {
		return Aggregate{}
	}
	n := len(samples)
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	a := Aggregate{
		Count: n,
		Min:   sorted[0],
		Max:   sorted[n-1],
		P50:   percentileSorted(sorted, 50),
		P95:   percentileSorted(sorted, 95),
		P99:   percentileSorted(sorted, 99),
	}
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	a.Mean = sum / float64(n)
	a.CILow, a.CIHigh = a.Mean, a.Mean
	if n < 2 {
		return a
	}
	varSum := 0.0
	for _, x := range sorted {
		d := x - a.Mean
		varSum += d * d
	}
	a.StdDev = math.Sqrt(varSum / float64(n-1))
	half := TQuantile975(n-1) * a.StdDev / math.Sqrt(float64(n))
	a.CILow, a.CIHigh = a.Mean-half, a.Mean+half
	return a
}

// AggregateInts is AggregateSamples over integer samples.
func AggregateInts(samples []int) Aggregate {
	floats := make([]float64, len(samples))
	for i, x := range samples {
		floats[i] = float64(x)
	}
	return AggregateSamples(floats)
}

// CIHalfWidth returns half the width of the 95% confidence interval.
func (a Aggregate) CIHalfWidth() float64 {
	return (a.CIHigh - a.CILow) / 2
}

// RelativeCIHalfWidth returns the CI half-width as a fraction of the absolute
// mean (0 when the mean is 0) — the quantity adaptive campaigns drive under
// their precision target.
func (a Aggregate) RelativeCIHalfWidth() float64 {
	if a.Mean == 0 {
		return 0
	}
	return a.CIHalfWidth() / math.Abs(a.Mean)
}

// String renders the aggregate compactly.
func (a Aggregate) String() string {
	return fmt.Sprintf("n=%d mean=%.1f±%.1f sd=%.1f p50=%.1f p95=%.1f p99=%.1f",
		a.Count, a.Mean, a.CIHalfWidth(), a.StdDev, a.P50, a.P95, a.P99)
}

// tTable holds two-sided 95% Student-t critical values t_{0.975,df} at the
// listed degrees of freedom; intermediate df interpolate linearly in 1/df,
// which is accurate to three decimals over this range.
var tTableDF = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
	16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 40, 60, 120}

var tTableVal = []float64{12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
	2.306, 2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
	2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
	2.048, 2.045, 2.042, 2.021, 2.000, 1.980}

// TQuantile975 returns the two-sided 95% Student-t critical value
// t_{0.975,df} (the multiplier of the standard error in a 95% confidence
// interval) for df ≥ 1 degrees of freedom, via table lookup with 1/df
// interpolation and the normal limit 1.96 beyond df = 120.
func TQuantile975(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= 30 {
		return tTableVal[df-1]
	}
	if df >= 120 {
		// Interpolate toward the normal limit 1.960 in 1/df (df = ∞ maps to
		// frac = 1).
		frac := (1/120.0 - 1/float64(df)) / (1 / 120.0)
		return 1.980 + frac*(1.960-1.980)
	}
	// 30 < df < 120: find the surrounding table entries.
	i := sort.SearchInts(tTableDF, df)
	if tTableDF[i] == df {
		return tTableVal[i]
	}
	loDF, hiDF := float64(tTableDF[i-1]), float64(tTableDF[i])
	frac := (1/loDF - 1/float64(df)) / (1/loDF - 1/hiDF)
	return tTableVal[i-1] + frac*(tTableVal[i]-tTableVal[i-1])
}

// Fit is a least-squares fit y ≈ Slope·x + Intercept with its coefficient of
// determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits y ≈ a·x + b by least squares. It returns a zero fit when
// fewer than two points are supplied or all x values coincide.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Fit{}
	}
	n := float64(len(xs))
	var sumX, sumY, sumXX, sumXY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
		sumXX += xs[i] * xs[i]
		sumXY += xs[i] * ys[i]
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return Fit{}
	}
	slope := (n*sumXY - sumX*sumY) / den
	intercept := (sumY - slope*sumX) / n

	meanY := sumY / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// GrowthExponent estimates the exponent p of a power-law relationship
// y ≈ c·x^p by fitting a line in log-log space. It ignores non-positive
// samples and returns 0 when fewer than two usable points remain. The
// experiment reports use it to compare measured growth against the paper's
// asymptotic bounds (e.g. moves growing roughly like n² for U ∘ SDR).
func GrowthExponent(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return 0
	}
	return LinearFit(lx, ly).Slope
}

// Ratio returns a/b, or 0 when b is 0; it keeps benchmark tables free of
// division-by-zero special cases.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
