package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.Max != 0 {
		t.Errorf("empty summary should be zero, got %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("count/min/max wrong: %+v", s)
	}
	if !almostEqual(s.Mean, 5) {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if !almostEqual(s.StdDev, 2) {
		t.Errorf("stddev = %v, want 2", s.StdDev)
	}
	if !almostEqual(s.Median, 4.5) {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if !almostEqual(s.Median, 5) {
		t.Errorf("median = %v, want 5", s.Median)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{1, 2, 3})
	if !almostEqual(s.Mean, 2) || s.Count != 3 {
		t.Errorf("SummarizeInts = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	for _, want := range []string{"n=3", "mean=2.0", "min=1.0", "max=3.0"} {
		if !strings.Contains(str, want) {
			t.Errorf("summary string %q missing %q", str, want)
		}
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	fit := LinearFit(xs, ys)
	if !almostEqual(fit.Slope, 2) || !almostEqual(fit.Intercept, 1) || !almostEqual(fit.R2, 1) {
		t.Errorf("fit = %+v, want slope 2, intercept 1, R² 1", fit)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if fit := LinearFit([]float64{1}, []float64{2}); fit.Slope != 0 || fit.R2 != 0 {
		t.Errorf("a single point cannot be fitted: %+v", fit)
	}
	if fit := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); fit.Slope != 0 {
		t.Errorf("identical x values cannot be fitted: %+v", fit)
	}
	if fit := LinearFit([]float64{1, 2}, []float64{1}); fit.Slope != 0 {
		t.Errorf("mismatched lengths cannot be fitted: %+v", fit)
	}
}

func TestGrowthExponent(t *testing.T) {
	// y = 5·x² gives exponent 2 in log-log space.
	xs := []float64{2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * x * x
	}
	if got := GrowthExponent(xs, ys); !almostEqual(got, 2) {
		t.Errorf("exponent = %v, want 2", got)
	}
	// Non-positive samples are ignored; too few points give 0.
	if got := GrowthExponent([]float64{0, -1}, []float64{1, 1}); got != 0 {
		t.Errorf("exponent of unusable samples = %v, want 0", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(5, 0) != 0 {
		t.Error("Ratio must divide and guard against zero denominators")
	}
}

func TestQuickSummaryBounds(t *testing.T) {
	// Mean and median always lie between min and max; stddev is non-negative.
	f := func(raw []float64) bool {
		var samples []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				samples = append(samples, x)
			}
		}
		if len(samples) == 0 {
			return true
		}
		s := Summarize(samples)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLinearFitRecoversLines(t *testing.T) {
	// Fitting exact lines recovers slope and intercept with R² = 1.
	f := func(slopeRaw, interceptRaw int8) bool {
		slope := float64(slopeRaw) / 4
		intercept := float64(interceptRaw) / 4
		xs := []float64{1, 2, 3, 5, 8}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + intercept
		}
		fit := LinearFit(xs, ys)
		return math.Abs(fit.Slope-slope) < 1e-6 && math.Abs(fit.Intercept-intercept) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
