package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.Max != 0 {
		t.Errorf("empty summary should be zero, got %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("count/min/max wrong: %+v", s)
	}
	if !almostEqual(s.Mean, 5) {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if !almostEqual(s.StdDev, 2) {
		t.Errorf("stddev = %v, want 2", s.StdDev)
	}
	if !almostEqual(s.Median, 4.5) {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if !almostEqual(s.Median, 5) {
		t.Errorf("median = %v, want 5", s.Median)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{1, 2, 3})
	if !almostEqual(s.Mean, 2) || s.Count != 3 {
		t.Errorf("SummarizeInts = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	for _, want := range []string{"n=3", "mean=2.0", "min=1.0", "max=3.0"} {
		if !strings.Contains(str, want) {
			t.Errorf("summary string %q missing %q", str, want)
		}
	}
}

func TestPercentileInterpolation(t *testing.T) {
	samples := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ p, want float64 }{
		{0, 1},     // boundary: minimum
		{100, 4},   // boundary: maximum
		{-5, 1},    // clamped below
		{150, 4},   // clamped above
		{50, 2.5},  // midpoint interpolates between 2 and 3
		{25, 1.75}, // rank 0.75 between 1 and 2
		{75, 3.25},
		{99, 3.97}, // near-boundary interpolation, not snapped to max
	}
	for _, c := range cases {
		if got := Percentile(samples, c.p); !almostEqual(got, c.want) {
			t.Errorf("Percentile(%v, %v) = %v, want %v", samples, c.p, got, c.want)
		}
	}
	if samples[0] != 4 {
		t.Error("Percentile must not reorder its input")
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile of the empty sample = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile of a singleton = %v, want 7", got)
	}
}

func TestAggregateEmpty(t *testing.T) {
	a := AggregateSamples(nil)
	if a.Count != 0 || a.Mean != 0 || a.CILow != 0 || a.CIHigh != 0 || a.P99 != 0 {
		t.Errorf("empty aggregate should be zero, got %+v", a)
	}
}

func TestAggregateSingleTrial(t *testing.T) {
	a := AggregateSamples([]float64{42})
	if a.Count != 1 || a.Mean != 42 || a.Min != 42 || a.Max != 42 {
		t.Errorf("singleton aggregate wrong: %+v", a)
	}
	if a.StdDev != 0 {
		t.Errorf("singleton stddev = %v, want 0", a.StdDev)
	}
	if a.CILow != 42 || a.CIHigh != 42 || a.CIHalfWidth() != 0 {
		t.Errorf("singleton CI must collapse to the mean: %+v", a)
	}
	if a.P50 != 42 || a.P95 != 42 || a.P99 != 42 {
		t.Errorf("singleton percentiles wrong: %+v", a)
	}
}

func TestAggregateConstantSeries(t *testing.T) {
	a := AggregateSamples([]float64{5, 5, 5, 5, 5, 5})
	if a.StdDev != 0 {
		t.Errorf("constant-series stddev = %v, want 0", a.StdDev)
	}
	if a.CILow != 5 || a.CIHigh != 5 {
		t.Errorf("zero-variance CI must be zero width: [%v, %v]", a.CILow, a.CIHigh)
	}
	if a.RelativeCIHalfWidth() != 0 {
		t.Errorf("zero-variance relative half-width = %v, want 0", a.RelativeCIHalfWidth())
	}
}

func TestAggregateKnownValues(t *testing.T) {
	// Sample 2,4,4,4,5,5,7,9: mean 5, sample stddev sqrt(32/7).
	a := AggregateSamples([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if a.Count != 8 || !almostEqual(a.Mean, 5) {
		t.Errorf("count/mean wrong: %+v", a)
	}
	wantSD := math.Sqrt(32.0 / 7.0)
	if !almostEqual(a.StdDev, wantSD) {
		t.Errorf("sample stddev = %v, want %v", a.StdDev, wantSD)
	}
	// 95% CI with df = 7: mean ± 2.365·sd/√8.
	half := 2.365 * wantSD / math.Sqrt(8)
	if !almostEqual(a.CIHalfWidth(), half) {
		t.Errorf("CI half-width = %v, want %v", a.CIHalfWidth(), half)
	}
	if !almostEqual(a.RelativeCIHalfWidth(), half/5) {
		t.Errorf("relative half-width = %v, want %v", a.RelativeCIHalfWidth(), half/5)
	}
	if !almostEqual(a.P50, 4.5) {
		t.Errorf("p50 = %v, want 4.5", a.P50)
	}
}

func TestAggregateInts(t *testing.T) {
	a := AggregateInts([]int{1, 2, 3})
	if a.Count != 3 || !almostEqual(a.Mean, 2) || !almostEqual(a.StdDev, 1) {
		t.Errorf("AggregateInts = %+v", a)
	}
}

func TestAggregateString(t *testing.T) {
	str := AggregateSamples([]float64{1, 2, 3}).String()
	for _, want := range []string{"n=3", "mean=2.0", "p50=2.0"} {
		if !strings.Contains(str, want) {
			t.Errorf("aggregate string %q missing %q", str, want)
		}
	}
}

func TestTQuantile975(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {7, 2.365}, {30, 2.042},
		{40, 2.021}, {60, 2.000}, {120, 1.980},
	}
	for _, c := range cases {
		if got := TQuantile975(c.df); !almostEqual(got, c.want) {
			t.Errorf("TQuantile975(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// Between table entries the value interpolates monotonically.
	if got := TQuantile975(50); got <= 2.000 || got >= 2.021 {
		t.Errorf("TQuantile975(50) = %v, want within (2.000, 2.021)", got)
	}
	// Beyond the table the value decays toward the normal limit.
	if got := TQuantile975(1000); got <= 1.960 || got >= 1.980 {
		t.Errorf("TQuantile975(1000) = %v, want within (1.960, 1.980)", got)
	}
	if got := TQuantile975(0); got != 0 {
		t.Errorf("TQuantile975(0) = %v, want 0", got)
	}
}

func TestQuickAggregateBounds(t *testing.T) {
	// The CI always contains the mean, percentiles are ordered and bounded.
	f := func(raw []float64) bool {
		var samples []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				samples = append(samples, x)
			}
		}
		if len(samples) == 0 {
			return true
		}
		a := AggregateSamples(samples)
		return a.CILow <= a.Mean+1e-9 && a.Mean <= a.CIHigh+1e-9 &&
			a.Min <= a.P50+1e-9 && a.P50 <= a.P95+1e-9 &&
			a.P95 <= a.P99+1e-9 && a.P99 <= a.Max+1e-9 &&
			a.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	fit := LinearFit(xs, ys)
	if !almostEqual(fit.Slope, 2) || !almostEqual(fit.Intercept, 1) || !almostEqual(fit.R2, 1) {
		t.Errorf("fit = %+v, want slope 2, intercept 1, R² 1", fit)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if fit := LinearFit([]float64{1}, []float64{2}); fit.Slope != 0 || fit.R2 != 0 {
		t.Errorf("a single point cannot be fitted: %+v", fit)
	}
	if fit := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); fit.Slope != 0 {
		t.Errorf("identical x values cannot be fitted: %+v", fit)
	}
	if fit := LinearFit([]float64{1, 2}, []float64{1}); fit.Slope != 0 {
		t.Errorf("mismatched lengths cannot be fitted: %+v", fit)
	}
}

func TestGrowthExponent(t *testing.T) {
	// y = 5·x² gives exponent 2 in log-log space.
	xs := []float64{2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * x * x
	}
	if got := GrowthExponent(xs, ys); !almostEqual(got, 2) {
		t.Errorf("exponent = %v, want 2", got)
	}
	// Non-positive samples are ignored; too few points give 0.
	if got := GrowthExponent([]float64{0, -1}, []float64{1, 1}); got != 0 {
		t.Errorf("exponent of unusable samples = %v, want 0", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(5, 0) != 0 {
		t.Error("Ratio must divide and guard against zero denominators")
	}
}

func TestQuickSummaryBounds(t *testing.T) {
	// Mean and median always lie between min and max; stddev is non-negative.
	f := func(raw []float64) bool {
		var samples []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				samples = append(samples, x)
			}
		}
		if len(samples) == 0 {
			return true
		}
		s := Summarize(samples)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLinearFitRecoversLines(t *testing.T) {
	// Fitting exact lines recovers slope and intercept with R² = 1.
	f := func(slopeRaw, interceptRaw int8) bool {
		slope := float64(slopeRaw) / 4
		intercept := float64(interceptRaw) / 4
		xs := []float64{1, 2, 3, 5, 8}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + intercept
		}
		fit := LinearFit(xs, ys)
		return math.Abs(fit.Slope-slope) < 1e-6 && math.Abs(fit.Intercept-intercept) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
