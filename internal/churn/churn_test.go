package churn

import (
	"math/rand"
	"reflect"
	"testing"

	"sdr/internal/graph"
	"sdr/internal/sim"
)

// intState is a minimal enumerable test state.
type intState int

func (s intState) Clone() sim.State           { return s }
func (s intState) Equal(other sim.State) bool { o, ok := other.(intState); return ok && s == o }
func (s intState) String() string             { return "x" }

// fakeAlg is a minimal enumerable algorithm for injector tests.
type fakeAlg struct{}

func (fakeAlg) Name() string { return "fake" }
func (fakeAlg) Rules() []sim.Rule {
	return []sim.Rule{{
		Name:   "inc",
		Guard:  func(v sim.View) bool { return v.Self().(intState) < 2 },
		Action: func(v sim.View) sim.State { return v.Self().(intState) + 1 },
	}}
}
func (fakeAlg) InitialState(u int, net *sim.Network) sim.State { return intState(0) }
func (fakeAlg) EnumerateStates(u int, net *sim.Network) []sim.State {
	return []sim.State{intState(0), intState(1), intState(2)}
}

// bareAlg is fakeAlg without state enumeration (no embedding: promoted
// methods would make it sim.Enumerable again).
type bareAlg struct{}

func (bareAlg) Name() string                                   { return "bare" }
func (bareAlg) Rules() []sim.Rule                              { return fakeAlg{}.Rules() }
func (bareAlg) InitialState(u int, net *sim.Network) sim.State { return intState(0) }

var _ sim.Enumerable = fakeAlg{}

func ringNet(n int) *sim.Network {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		g.MustAddEdge(u, (u+1)%n)
	}
	return sim.NewNetwork(g)
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"periodic",
		"poisson:events=6,every=150",
		"burst:burst=2,every=400,kinds=corrupt-processes,count=2",
		"adversarial:every=250,kinds=node-crash",
		"periodic:events=4,every=100,kinds=partition+heal",
	}
	for _, spec := range cases {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		again, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)=%q): %v", spec, s.String(), err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Errorf("Parse(%q) round-trip mismatch:\n first %+v\nsecond %+v", spec, s, again)
		}
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"tidal",                        // unknown pattern
		"periodic:every",               // missing value
		"periodic:every=ten",           // non-integer
		"periodic:cadence=5",           // unknown key
		"periodic:kinds=meteor-strike", // unknown kind
		"periodic:fraction=1.5",        // out of range
		"periodic:events=0",            // no events
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error, got none", spec)
		}
	}
}

func TestScheduleTimesDeterministic(t *testing.T) {
	for _, pattern := range Patterns() {
		s := Schedule{Pattern: pattern, Events: 8}.withDefaults()
		a := s.times(rand.New(rand.NewSource(7)))
		b := s.times(rand.New(rand.NewSource(7)))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different times: %v vs %v", pattern, a, b)
		}
		if len(a) != s.Events {
			t.Errorf("%s: got %d times for %d events", pattern, len(a), s.Events)
		}
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				t.Errorf("%s: times not sorted: %v", pattern, a)
			}
		}
	}
	// Poisson arrivals must actually depend on the seed.
	s := Schedule{Pattern: Poisson, Events: 8}.withDefaults()
	a := s.times(rand.New(rand.NewSource(1)))
	b := s.times(rand.New(rand.NewSource(2)))
	if reflect.DeepEqual(a, b) {
		t.Errorf("poisson: different seeds produced identical times %v", a)
	}
}

func TestNewInjectorValidatesRequirements(t *testing.T) {
	net := ringNet(6)
	rng := rand.New(rand.NewSource(1))
	if _, err := NewInjector(Schedule{Pattern: Periodic, EventKinds: []Kind{CorruptFraction}}, bareAlg{}, nil, net, rng); err == nil {
		t.Errorf("corrupt-fraction on a non-enumerable algorithm: expected error")
	}
	if _, err := NewInjector(Schedule{Pattern: Periodic, EventKinds: []Kind{FakeResetWave}}, fakeAlg{}, nil, net, rng); err == nil {
		t.Errorf("fake-reset-wave on a non-composed algorithm: expected error")
	}
	if _, err := NewInjector(Schedule{Pattern: Periodic, EventKinds: []Kind{NodeCrash}}, bareAlg{}, nil, net, rng); err != nil {
		t.Errorf("node-crash needs no capabilities, got error: %v", err)
	}
}

func TestDroppableEdgesKeepConnectivity(t *testing.T) {
	net := ringNet(8) // every ring edge is a bridge once one is gone
	inj, err := NewInjector(Schedule{Pattern: Periodic, EventKinds: []Kind{EdgeDrop}, Count: 3}, fakeAlg{}, nil, net, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	p := sim.InjectionPoint{Net: net, Config: sim.InitialConfiguration(fakeAlg{}, net)}
	drops := inj.droppableEdges(p, 3)
	if len(drops) != 1 {
		t.Fatalf("on a ring exactly one edge is removable without disconnecting; got %v", drops)
	}
	probe := net.Graph().Clone()
	probe.MustRemoveEdge(drops[0][0], drops[0][1])
	if !probe.Connected() {
		t.Fatalf("dropping %v disconnects the ring", drops[0])
	}
}

func TestPartitionHealRoundTrip(t *testing.T) {
	net := ringNet(8)
	inj, err := NewInjector(Schedule{Pattern: Periodic, Events: 2, EventKinds: []Kind{Partition, Heal}}, fakeAlg{}, nil, net, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	p := sim.InjectionPoint{Net: net, Config: sim.InitialConfiguration(fakeAlg{}, net)}
	part := inj.build(Partition, p)
	if len(part.DropEdges) == 0 {
		t.Fatalf("partition produced no cut on a ring")
	}
	for _, e := range part.DropEdges {
		net.Graph().MustRemoveEdge(e[0], e[1])
	}
	if net.Graph().Connected() {
		t.Fatalf("removing the cut %v left the ring connected", part.DropEdges)
	}
	heal := inj.build(Heal, p)
	if !reflect.DeepEqual(heal.AddEdges, part.DropEdges) {
		t.Errorf("heal re-adds %v, partition dropped %v", heal.AddEdges, part.DropEdges)
	}
	for _, e := range heal.AddEdges {
		net.Graph().MustAddEdge(e[0], e[1])
	}
	if !net.Graph().Connected() {
		t.Fatalf("healed ring is disconnected")
	}
	if second := inj.build(Heal, p); len(second.AddEdges) != 0 {
		t.Errorf("second heal without an open partition re-added %v", second.AddEdges)
	}
}
