package churn

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Parse builds a Schedule from its textual form:
//
//	<pattern>[:key=value,...]
//
// where <pattern> is periodic, poisson, burst or adversarial, and the keys
// are the schedule knobs: events, every, start, burst, fraction, count and
// kinds (a "+"-separated list of event kinds). Examples:
//
//	periodic
//	periodic:every=100,events=4,kinds=corrupt-fraction
//	poisson:every=150,events=6,kinds=node-crash+edge-drop+edge-add
//	burst:burst=3,every=400,kinds=corrupt-processes,count=2
//	adversarial:every=250,kinds=node-crash
//
// Unset keys take the Schedule defaults. The scenario layer accepts either a
// registered schedule name or this grammar wherever a churn schedule is
// named.
func Parse(spec string) (Schedule, error) {
	pattern, rest, hasKeys := strings.Cut(spec, ":")
	s := Schedule{Pattern: Pattern(pattern)}
	if hasKeys {
		for _, kv := range strings.Split(rest, ",") {
			key, value, ok := strings.Cut(kv, "=")
			if !ok {
				return Schedule{}, fmt.Errorf("churn: malformed schedule option %q (want key=value)", kv)
			}
			if err := s.setOption(key, value); err != nil {
				return Schedule{}, err
			}
		}
	}
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// setOption applies one key=value pair of the grammar.
func (s *Schedule) setOption(key, value string) error {
	// The zero value of every knob means "use the default", so an explicit
	// zero (or worse) in the grammar would be silently replaced; reject it.
	parseInt := func(min int) (int, error) {
		v, err := strconv.Atoi(value)
		if err != nil {
			return 0, fmt.Errorf("churn: schedule option %s=%q is not an integer", key, value)
		}
		if v < min {
			return 0, fmt.Errorf("churn: schedule option %s=%d must be at least %d", key, v, min)
		}
		return v, nil
	}
	switch key {
	case "events":
		v, err := parseInt(1)
		if err != nil {
			return err
		}
		s.Events = v
	case "every":
		v, err := parseInt(1)
		if err != nil {
			return err
		}
		s.Every = v
	case "start":
		v, err := parseInt(0)
		if err != nil {
			return err
		}
		s.Start = v
	case "burst":
		v, err := parseInt(1)
		if err != nil {
			return err
		}
		s.Burst = v
	case "count":
		v, err := parseInt(1)
		if err != nil {
			return err
		}
		s.Count = v
	case "fraction":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("churn: schedule option fraction=%q is not a number", value)
		}
		s.Fraction = v
	case "kinds":
		for _, k := range strings.Split(value, "+") {
			s.EventKinds = append(s.EventKinds, Kind(k))
		}
	default:
		return fmt.Errorf("churn: unknown schedule option %q", key)
	}
	return nil
}

// String renders the schedule in the canonical form Parse accepts, listing
// only the knobs that differ from the defaults.
func (s Schedule) String() string {
	def := Schedule{Pattern: s.Pattern}.withDefaults()
	var opts []string
	if s.Events != def.Events {
		opts = append(opts, fmt.Sprintf("events=%d", s.Events))
	}
	if s.Every != def.Every {
		opts = append(opts, fmt.Sprintf("every=%d", s.Every))
	}
	if s.Start != def.Start && s.Start != s.Every {
		opts = append(opts, fmt.Sprintf("start=%d", s.Start))
	}
	if s.Burst != def.Burst {
		opts = append(opts, fmt.Sprintf("burst=%d", s.Burst))
	}
	if len(s.EventKinds) > 0 && !kindsEqual(s.EventKinds, def.EventKinds) {
		names := make([]string, len(s.EventKinds))
		for i, k := range s.EventKinds {
			names[i] = string(k)
		}
		opts = append(opts, "kinds="+strings.Join(names, "+"))
	}
	if s.Fraction != def.Fraction && s.Fraction != 0 {
		opts = append(opts, fmt.Sprintf("fraction=%g", s.Fraction))
	}
	if s.Count != def.Count && s.Count != 0 {
		opts = append(opts, fmt.Sprintf("count=%d", s.Count))
	}
	if len(opts) == 0 {
		return string(s.Pattern)
	}
	sort.Strings(opts)
	return string(s.Pattern) + ":" + strings.Join(opts, ",")
}

func kindsEqual(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
