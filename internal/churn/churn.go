// Package churn defines seeded mid-run perturbation schedules: sequences of
// fault and topology events applied to a running execution at step
// boundaries, through the sim.Injector hook of the engine.
//
// The paper's claim is recovery: an SDR-composed algorithm re-stabilizes
// after *any* transient fault. Initial-configuration corruption (package
// faults) exercises a single fault before time zero; a churn schedule
// exercises repeated faults and node/edge churn while the system runs, and
// the engine reports per-event recovery costs (sim.EventRecovery) plus the
// fraction of steps spent legitimate.
//
// A Schedule is deterministic by construction: generating it twice from the
// same seed yields the same event times, kinds and amplitudes, so churn
// experiments are exactly as reproducible as static ones.
package churn

import (
	"fmt"
	"math/rand"

	"sdr/internal/core"
	"sdr/internal/sim"
)

// Kind names one perturbation event type.
type Kind string

// The event vocabulary.
const (
	// CorruptFraction redraws each process state uniformly from the
	// algorithm's state space with probability Fraction (requires
	// sim.Enumerable).
	CorruptFraction Kind = "corrupt-fraction"
	// CorruptProcesses redraws the states of Count targeted processes
	// (requires sim.Enumerable).
	CorruptProcesses Kind = "corrupt-processes"
	// FakeResetWave puts each process, with probability Fraction, into an
	// arbitrary phase of a non-existent reset (composed algorithms only).
	FakeResetWave Kind = "fake-reset-wave"
	// NodeCrash models a crash-reboot of Count targeted processes: each
	// rejoins immediately with its pre-defined initial state (amnesia); the
	// process set itself is fixed for the run.
	NodeCrash Kind = "node-crash"
	// EdgeDrop removes up to Count edges whose removal keeps the network
	// connected (candidates that would disconnect it are skipped).
	EdgeDrop Kind = "edge-drop"
	// EdgeAdd inserts up to Count edges between currently non-adjacent
	// process pairs.
	EdgeAdd Kind = "edge-add"
	// Partition cuts the network in two halves by removing every edge
	// across a random BFS-grown bisection; the cut is remembered until the
	// next Heal. A second Partition before a Heal is a no-op.
	Partition Kind = "partition"
	// Heal re-inserts the edges removed by the last Partition (those still
	// absent); a Heal without an open partition is a no-op.
	Heal Kind = "heal"
)

// Kinds returns every event kind, in declaration order.
func Kinds() []Kind {
	return []Kind{CorruptFraction, CorruptProcesses, FakeResetWave,
		NodeCrash, EdgeDrop, EdgeAdd, Partition, Heal}
}

// valid reports whether k is a known event kind.
func (k Kind) valid() bool {
	for _, known := range Kinds() {
		if k == known {
			return true
		}
	}
	return false
}

// needsEnumerable reports whether events of kind k draw random states from
// the algorithm's enumerated state space.
func (k Kind) needsEnumerable() bool {
	return k == CorruptFraction || k == CorruptProcesses
}

// composedOnly reports whether events of kind k corrupt the reset machinery
// and hence only apply to compositions I ∘ SDR.
func (k Kind) composedOnly() bool { return k == FakeResetWave }

// Pattern names the arrival process of a schedule.
type Pattern string

// The schedule patterns.
const (
	// Periodic fires events at Start, Start+Every, Start+2·Every, ...
	Periodic Pattern = "periodic"
	// Poisson fires events with exponentially distributed inter-arrival
	// times of mean Every steps (each gap at least one step), starting
	// after Start.
	Poisson Pattern = "poisson"
	// BurstPattern fires bursts of Burst events at consecutive step
	// boundaries; bursts start at Start, Start+Every, ...
	BurstPattern Pattern = "burst"
	// Adversarial fires periodically like Periodic but targets the worst
	// node: process-targeted events (corrupt-processes, node-crash) hit the
	// closed neighbourhood of the current maximum-degree process instead of
	// random processes.
	Adversarial Pattern = "adversarial"
)

// Patterns returns every schedule pattern, in declaration order.
func Patterns() []Pattern { return []Pattern{Periodic, Poisson, BurstPattern, Adversarial} }

// Schedule describes a seeded sequence of perturbation events. The zero
// value is not valid; fill Pattern and rely on withDefaults for the knobs.
type Schedule struct {
	// Pattern is the arrival process.
	Pattern Pattern
	// Events is the total number of events (default 5).
	Events int
	// Every is the period (Periodic, Adversarial), the mean inter-arrival
	// time (Poisson) or the gap between burst starts (BurstPattern), in
	// steps (default 200).
	Every int
	// Start is the first step boundary at which an event may fire
	// (default Every).
	Start int
	// Burst is the number of events per burst, BurstPattern only
	// (default 3).
	Burst int
	// EventKinds cycle across the events of the schedule (default
	// {CorruptFraction}).
	EventKinds []Kind
	// Fraction is the per-process corruption probability of CorruptFraction
	// and FakeResetWave events (default 0.3).
	Fraction float64
	// Count is the number of processes or edges targeted by
	// CorruptProcesses, NodeCrash, EdgeDrop and EdgeAdd events (default 1).
	Count int
}

// withDefaults fills the zero knobs.
func (s Schedule) withDefaults() Schedule {
	if s.Events == 0 {
		s.Events = 5
	}
	if s.Every == 0 {
		s.Every = 200
	}
	if s.Start == 0 {
		s.Start = s.Every
	}
	if s.Burst == 0 {
		s.Burst = 3
	}
	if len(s.EventKinds) == 0 {
		s.EventKinds = []Kind{CorruptFraction}
	}
	if s.Fraction == 0 {
		s.Fraction = 0.3
	}
	if s.Count == 0 {
		s.Count = 1
	}
	return s
}

// Validate reports whether the schedule (after defaults) is well-formed.
func (s Schedule) Validate() error {
	s = s.withDefaults()
	switch s.Pattern {
	case Periodic, Poisson, BurstPattern, Adversarial:
	default:
		return fmt.Errorf("churn: unknown schedule pattern %q", s.Pattern)
	}
	if s.Events < 1 {
		return fmt.Errorf("churn: schedule needs at least one event, got %d", s.Events)
	}
	if s.Every < 1 {
		return fmt.Errorf("churn: event period must be at least one step, got %d", s.Every)
	}
	if s.Start < 0 {
		return fmt.Errorf("churn: negative start step %d", s.Start)
	}
	if s.Burst < 1 {
		return fmt.Errorf("churn: burst size must be at least one event, got %d", s.Burst)
	}
	if s.Fraction < 0 || s.Fraction > 1 {
		return fmt.Errorf("churn: corruption fraction %g outside [0,1]", s.Fraction)
	}
	if s.Count < 1 {
		return fmt.Errorf("churn: event target count must be at least one, got %d", s.Count)
	}
	for _, k := range s.EventKinds {
		if !k.valid() {
			return fmt.Errorf("churn: unknown event kind %q", k)
		}
	}
	return nil
}

// times generates the sorted fire steps of the schedule's events; len(times)
// equals Events. Poisson draws consume the rng; the other patterns are
// arithmetic.
func (s Schedule) times(rng *rand.Rand) []int {
	times := make([]int, 0, s.Events)
	switch s.Pattern {
	case Poisson:
		cur := s.Start
		for i := 0; i < s.Events; i++ {
			cur += 1 + int(rng.ExpFloat64()*float64(s.Every))
			times = append(times, cur)
		}
	case BurstPattern:
		for i := 0; len(times) < s.Events; i++ {
			start := s.Start + i*s.Every
			for j := 0; j < s.Burst && len(times) < s.Events; j++ {
				times = append(times, start+j)
			}
		}
	default: // Periodic, Adversarial
		for i := 0; i < s.Events; i++ {
			times = append(times, s.Start+i*s.Every)
		}
	}
	return times
}

// requirements returns an error when the schedule's event kinds need
// capabilities the algorithm does not have: an enumerated state space for
// corruption kinds, a composition I ∘ SDR for reset-machinery kinds. The
// error mirrors the fault-model registry's phrasing.
func (s Schedule) requirements(alg sim.Algorithm, inner core.Resettable, net *sim.Network) error {
	for _, k := range s.EventKinds {
		if k.needsEnumerable() {
			ok := false
			switch e := alg.(type) {
			case sim.IndexedEnumerable:
				ok = e.StateCount(0, net) > 0
			case sim.Enumerable:
				ok = len(e.EnumerateStates(0, net)) > 0
			}
			if !ok {
				return fmt.Errorf("churn: event %q requires algorithm %s to enumerate its states", k, alg.Name())
			}
		}
		if k.composedOnly() && inner == nil {
			return fmt.Errorf("churn: event %q requires a composed algorithm, %s is not one", k, alg.Name())
		}
	}
	return nil
}
