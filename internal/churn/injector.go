package churn

import (
	"math/rand"

	"sdr/internal/core"
	"sdr/internal/sim"
)

// Injector realises a Schedule as a sim.Injector: the event times and kinds
// are fixed at construction from a seeded rng, and each event's amplitude
// (which processes, which states, which edges) is drawn from the same rng at
// fire time. Events fire in schedule order, one Inject call each, so the rng
// stream — and hence the whole run — is reproducible from the seed
// regardless of when the events fire.
//
// At a terminal configuration the engine offers the injector a boundary even
// though no step can execute; the injector then fast-forwards, firing its
// next pending event immediately (a silent algorithm that terminated early
// would otherwise never experience the rest of the schedule). Fast-forward
// changes an event's fire step but not the rng draw order, so the event
// contents stay deterministic.
type Injector struct {
	sched   Schedule
	alg     sim.Algorithm
	enum    sim.Enumerable        // nil when the algorithm does not enumerate
	indexed sim.IndexedEnumerable // nil when the fast path is unavailable
	inner   core.Resettable
	rng     *rand.Rand

	times []int
	kinds []Kind
	next  int

	// healEdges is the cut of the currently open partition, nil when none.
	healEdges [][2]int
}

var _ sim.Injector = (*Injector)(nil)

// NewInjector builds the injector of a schedule for one run. All randomness
// (event times for Poisson arrivals, event amplitudes) derives from rng. It
// fails when the schedule is invalid or its event kinds require capabilities
// the algorithm does not have (an enumerated state space, a composition).
func NewInjector(sched Schedule, alg sim.Algorithm, inner core.Resettable, net *sim.Network, rng *rand.Rand) (*Injector, error) {
	sched = sched.withDefaults()
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	if err := sched.requirements(alg, inner, net); err != nil {
		return nil, err
	}
	inj := &Injector{
		sched: sched,
		alg:   alg,
		inner: inner,
		rng:   rng,
		times: sched.times(rng),
		kinds: make([]Kind, sched.Events),
	}
	if enum, ok := alg.(sim.Enumerable); ok {
		inj.enum = enum
	}
	if ix, ok := alg.(sim.IndexedEnumerable); ok {
		inj.indexed = ix
	}
	for i := range inj.kinds {
		inj.kinds[i] = sched.EventKinds[i%len(sched.EventKinds)]
	}
	return inj, nil
}

// Schedule returns the schedule the injector realises (with defaults
// filled).
func (i *Injector) Schedule() Schedule { return i.sched }

// Times returns a copy of the generated event fire steps.
func (i *Injector) Times() []int { return append([]int(nil), i.times...) }

// Done implements sim.Injector.
func (i *Injector) Done() bool { return i.next >= len(i.times) }

// Inject implements sim.Injector: it fires the next scheduled event when its
// time has come (or immediately at a terminal configuration), one event per
// call.
func (i *Injector) Inject(p sim.InjectionPoint) *sim.Injection {
	if i.Done() {
		return nil
	}
	if p.Step < i.times[i.next] && !p.Terminal {
		return nil
	}
	kind := i.kinds[i.next]
	i.next++
	return i.build(kind, p)
}

// build draws the amplitude of one event and returns the injection. Events
// that cannot apply in the current topology (heal without an open partition,
// edge-drop on a bridge-only graph) return an empty injection: the event
// still happened and still gets a recovery record, it just had no effect.
func (i *Injector) build(kind Kind, p sim.InjectionPoint) *sim.Injection {
	injn := &sim.Injection{Label: string(kind)}
	n := p.Net.N()
	switch kind {
	case CorruptFraction:
		for u := 0; u < n; u++ {
			if i.rng.Float64() >= i.sched.Fraction {
				continue
			}
			injn.SetStates = append(injn.SetStates, sim.StateChange{Process: u, State: i.randomState(u, p.Net)})
		}
	case CorruptProcesses:
		for _, u := range i.targets(p, i.sched.Count) {
			injn.SetStates = append(injn.SetStates, sim.StateChange{Process: u, State: i.randomState(u, p.Net)})
		}
	case FakeResetWave:
		statuses := []core.Status{core.StatusRB, core.StatusRF}
		for u := 0; u < n; u++ {
			if i.rng.Float64() >= i.sched.Fraction {
				continue
			}
			sdr := core.SDRState{
				St: statuses[i.rng.Intn(len(statuses))],
				D:  i.rng.Intn(n + 1),
			}
			injn.SetStates = append(injn.SetStates, sim.StateChange{Process: u, State: core.WithSDR(p.Config.State(u), sdr)})
		}
	case NodeCrash:
		for _, u := range i.targets(p, i.sched.Count) {
			injn.SetStates = append(injn.SetStates, sim.StateChange{Process: u, State: i.alg.InitialState(u, p.Net)})
		}
	case EdgeDrop:
		injn.DropEdges = i.droppableEdges(p, i.sched.Count)
	case EdgeAdd:
		injn.AddEdges = i.missingEdges(p, i.sched.Count)
	case Partition:
		if i.healEdges == nil {
			cut := i.partitionCut(p)
			if len(cut) > 0 {
				i.healEdges = cut
				injn.DropEdges = cut
			}
		}
	case Heal:
		if i.healEdges != nil {
			for _, e := range i.healEdges {
				// EdgeAdd events may have re-inserted a cut edge meanwhile.
				if !p.Net.Graph().HasEdge(e[0], e[1]) {
					injn.AddEdges = append(injn.AddEdges, e)
				}
			}
			i.healEdges = nil
		}
	}
	return injn
}

// randomState draws a uniform state for process u from the enumerated state
// space. NewInjector validated enumerability for the kinds that call this.
// The indexed fast path consumes the rng identically to the enumerating one
// (one Intn over the same count), so event contents do not depend on which
// path runs.
func (i *Injector) randomState(u int, net *sim.Network) sim.State {
	if i.indexed != nil {
		return i.indexed.StateAt(u, net, i.rng.Intn(i.indexed.StateCount(u, net)))
	}
	options := i.enum.EnumerateStates(u, net)
	return options[i.rng.Intn(len(options))].Clone()
}

// targets picks the processes a targeted event hits: count uniformly random
// distinct processes, or — under the Adversarial pattern — the closed
// neighbourhood of the current maximum-degree process (the worst place to
// hit a reset-based algorithm: every corruption there collides with the
// highest number of neighbours).
func (i *Injector) targets(p sim.InjectionPoint, count int) []int {
	n := p.Net.N()
	if i.sched.Pattern == Adversarial {
		hub := 0
		for u := 1; u < n; u++ {
			if p.Net.Degree(u) > p.Net.Degree(hub) {
				hub = u
			}
		}
		targets := make([]int, 0, p.Net.Degree(hub)+1)
		targets = append(targets, hub)
		for j, deg := 0, p.Net.Degree(hub); j < deg; j++ {
			targets = append(targets, p.Net.Neighbor(hub, j))
		}
		return targets
	}
	if count > n {
		count = n
	}
	return i.rng.Perm(n)[:count]
}

// droppableEdges picks up to count edges whose cumulative removal keeps the
// network connected, probing removals on a clone of the current graph.
func (i *Injector) droppableEdges(p sim.InjectionPoint, count int) [][2]int {
	g := p.Net.Graph()
	edges := g.Edges()
	probe := g.Clone()
	var drops [][2]int
	for _, pi := range i.rng.Perm(len(edges)) {
		if len(drops) == count {
			break
		}
		e := edges[pi]
		probe.MustRemoveEdge(e[0], e[1])
		if probe.Connected() {
			drops = append(drops, e)
		} else {
			probe.MustAddEdge(e[0], e[1])
		}
	}
	return drops
}

// missingEdges picks up to count uniformly random non-adjacent process
// pairs.
func (i *Injector) missingEdges(p sim.InjectionPoint, count int) [][2]int {
	g := p.Net.Graph()
	n := g.N()
	var missing [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				missing = append(missing, [2]int{u, v})
			}
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if count > len(missing) {
		count = len(missing)
	}
	perm := i.rng.Perm(len(missing))
	adds := make([][2]int, 0, count)
	for _, pi := range perm[:count] {
		adds = append(adds, missing[pi])
	}
	return adds
}

// partitionCut grows a BFS ball of ⌈n/2⌉ processes from a random start and
// returns the edges crossing the bisection (the cut removed by a Partition
// event). It returns nil when the cut would be empty (n < 2).
func (i *Injector) partitionCut(p sim.InjectionPoint) [][2]int {
	g := p.Net.Graph()
	n := g.N()
	if n < 2 {
		return nil
	}
	side := make([]bool, n)
	start := i.rng.Intn(n)
	side[start] = true
	queue := []int{start}
	size := 1
	target := (n + 1) / 2
	for len(queue) > 0 && size < target {
		u := queue[0]
		queue = queue[1:]
		for j, deg := 0, g.Degree(u); j < deg; j++ {
			v := g.Neighbor(u, j)
			if side[v] || size >= target {
				continue
			}
			side[v] = true
			size++
			queue = append(queue, v)
		}
	}
	var cut [][2]int
	for _, e := range g.Edges() {
		if side[e[0]] != side[e[1]] {
			cut = append(cut, e)
		}
	}
	return cut
}
