package bench

import (
	"strconv"
	"strings"
	"testing"

	"sdr/internal/scenario"
)

// profileSweep is a one-cell grid sized so a sequential profiled run samples
// a meaningful number of steps.
func profileSweep(shards int) scenario.Sweep {
	return scenario.Sweep{
		Algorithms: []string{"unison"},
		Topologies: []string{"torus"},
		Daemons:    []string{"synchronous"},
		Faults:     []string{"random-all"},
		Sizes:      []int{256},
		Trials:     1,
		Seed:       5,
		MaxSteps:   200_000,
		Shards:     shards,
	}
}

// phaseRows indexes a PROFILE table's rows by (phase, shard) for one cell.
func phaseRows(t *testing.T, table Table) map[[2]string][]string {
	t.Helper()
	rows := make(map[[2]string][]string)
	for _, r := range table.Rows {
		if len(r) != len(table.Columns) {
			t.Fatalf("ragged row %v", r)
		}
		rows[[2]string{r[4], r[5]}] = r
	}
	return rows
}

// cellFloat parses one numeric cell of a PROFILE row.
func cellFloat(t *testing.T, row []string, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("row %v col %d: %v", row, col, err)
	}
	return v
}

func TestRunProfileSequentialSumsToStepWall(t *testing.T) {
	table, err := RunProfile(profileSweep(0), 1, Config{})
	if err != nil {
		t.Fatalf("RunProfile: %v", err)
	}
	rows := phaseRows(t, table)
	wall, ok := rows[[2]string{"step_wall", "-"}]
	if !ok {
		t.Fatalf("no step_wall row:\n%v", table.Rows)
	}
	var phaseTotal float64
	for key, r := range rows {
		if key[0] == "step_wall" || key[1] != "-" {
			continue
		}
		phaseTotal += cellFloat(t, r, 8)
	}
	// The named phases bracket every piece of real per-step work; what they
	// miss is loop glue and the clock reads themselves. Requiring ≥ 80% of
	// the step wall (and never more than 100% + rounding) pins that the table
	// is internally consistent without being flaky on timer noise.
	wallTotal := cellFloat(t, wall, 8)
	if phaseTotal < 0.8*wallTotal || phaseTotal > 1.01*wallTotal+0.05 {
		t.Errorf("phase totals %.2fms inconsistent with step wall %.2fms:\n%v", phaseTotal, wallTotal, table.Rows)
	}
	for _, phase := range []string{"select", "execute", "guard_eval", "account"} {
		if _, ok := rows[[2]string{phase, "-"}]; !ok {
			t.Errorf("sequential profile missing phase %q", phase)
		}
	}
}

func TestRunProfileShardedBreakdown(t *testing.T) {
	table, err := RunProfile(profileSweep(4), 1, Config{})
	if err != nil {
		t.Fatalf("RunProfile: %v", err)
	}
	rows := phaseRows(t, table)
	for _, phase := range []string{"select", "execute", "merge", "boundary_exchange", "account"} {
		if _, ok := rows[[2]string{phase, "-"}]; !ok {
			t.Errorf("sharded profile missing global phase %q", phase)
		}
	}
	// n=256 on a torus is 4 shard words, so all 4 requested shards are real:
	// each must contribute an execute breakdown row.
	for shard := 0; shard < 4; shard++ {
		if _, ok := rows[[2]string{"execute", strconv.Itoa(shard)}]; !ok {
			t.Errorf("no execute breakdown row for shard %d:\n%v", shard, table.Rows)
		}
	}
}

func TestRunProfileSkipsUnsatisfiable(t *testing.T) {
	sw := scenario.Sweep{
		Algorithms: []string{"2-tuple-domination"},
		Topologies: []string{"path"},
		Daemons:    []string{"synchronous"},
		Sizes:      []int{6},
		Trials:     1,
		Seed:       1,
		MaxSteps:   10_000,
	}
	table, err := RunProfile(sw, 1, Config{})
	if err != nil {
		t.Fatalf("RunProfile: %v", err)
	}
	if len(table.Rows) != 0 {
		t.Fatalf("unsatisfiable cell produced rows: %v", table.Rows)
	}
	found := false
	for _, n := range table.Notes {
		if strings.Contains(n, "unsatisfiable") {
			found = true
		}
	}
	if !found {
		t.Errorf("skip note missing: %v", table.Notes)
	}
}
