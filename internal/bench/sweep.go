package bench

import (
	"errors"
	"fmt"

	"sdr/internal/scenario"
	"sdr/internal/stats"
)

// RunSweep runs an arbitrary algorithm × topology × size × daemon × fault
// grid through the scenario pipeline and renders one row per cell — the
// -sweep mode of cmd/sdrbench and the CI smoke grid. Cells whose algorithm
// cannot run on the resolved topology (scenario.ErrUnsatisfiable) are
// reported as skipped; any other resolution error fails the sweep. A row
// whose runs do not reach their goal (termination or stabilization, plus the
// algorithm's own output check) counts as a violation.
func RunSweep(sw scenario.Sweep, parallel int) (Table, error) {
	if err := sw.Validate(); err != nil {
		return Table{}, err
	}
	trials := sw.Trials
	if trials <= 0 {
		trials = 1
		sw.Trials = 1
	}
	t := Table{
		ID:      "SWEEP",
		Title:   fmt.Sprintf("custom scenario sweep (%d trials per cell, base seed %d)", trials, sw.Seed),
		Columns: []string{"algorithm", "topology", "n", "daemon", "fault", "moves(mean)", "rounds(max)", "ok"},
	}
	cells := sw.Cells()
	type trial struct {
		moves, rounds int
		ok, skipped   bool
		err           error
	}
	results := MapGrid(parallel, len(cells), trials, func(ci, tr int) trial {
		run, err := sw.Trial(cells[ci], tr).Resolve()
		if err != nil {
			return trial{skipped: errors.Is(err, scenario.ErrUnsatisfiable), err: err}
		}
		res := run.Execute()
		return trial{moves: res.Moves, rounds: res.Rounds, ok: run.Report(res).OK}
	})
	for ci, c := range cells {
		var moves []int
		maxRounds, skipped := 0, 0
		ok := true
		for _, tr := range results[ci] {
			if tr.err != nil {
				if !tr.skipped {
					return Table{}, tr.err
				}
				skipped++
				continue
			}
			moves = append(moves, tr.moves)
			maxRounds = maxInt(maxRounds, tr.rounds)
			ok = ok && tr.ok
		}
		if len(moves) == 0 {
			// Every trial was unsatisfiable on its resolved topology.
			t.AddRow(c.Algorithm, c.Topology, itoa(c.N), c.Daemon, c.Fault, "skipped", "-", boolCell(true))
			continue
		}
		// Trials that did run are judged normally even when sibling trials
		// were skipped (random topologies can be unsatisfiable per seed);
		// a partially skipped cell must not mask a real violation.
		if skipped > 0 {
			t.AddNote("%s/%s n=%d: %d of %d trials skipped as unsatisfiable", c.Algorithm, c.Topology, c.N, skipped, trials)
		}
		if !ok {
			t.Violations++
		}
		t.AddRow(c.Algorithm, c.Topology, itoa(c.N), c.Daemon, c.Fault,
			ftoa(stats.SummarizeInts(moves).Mean), itoa(maxRounds), boolCell(ok))
	}
	return t, nil
}
