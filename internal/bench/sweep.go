package bench

import (
	"errors"
	"fmt"

	"sdr/internal/scenario"
	"sdr/internal/sim"
	"sdr/internal/stats"
)

// RunSweep runs an arbitrary algorithm × topology × size × daemon × fault
// grid through the scenario pipeline and renders one row per cell — the
// -sweep mode of cmd/sdrbench and the CI smoke grid. Cells whose algorithm
// cannot run on the resolved topology (scenario.ErrUnsatisfiable) are
// reported as skipped; any other resolution error fails the sweep. A row
// whose runs do not reach their goal (termination or stabilization, plus the
// algorithm's own output check) counts as a violation. Only cfg's execution
// knobs are read (Parallel, MemoOff, MemoCap); the grid itself comes from sw.
func RunSweep(sw scenario.Sweep, cfg Config) (Table, error) {
	if err := sw.Validate(); err != nil {
		return Table{}, err
	}
	if sw.Shards > 1 {
		// Sharded cells run unmemoized: WithMemo + WithShards is a validation
		// error (the memo table is not safe for concurrent guard evaluation).
		cfg.MemoOff = true
	}
	trials := sw.Trials
	if trials <= 0 {
		trials = 1
		sw.Trials = 1
	}
	t := Table{
		ID:      "SWEEP",
		Title:   fmt.Sprintf("custom scenario sweep (%d trials per cell, base seed %d)", trials, sw.Seed),
		Columns: []string{"algorithm", "topology", "n", "daemon", "fault", "moves(mean)", "rounds(max)", "memo-hit%", "ok"},
	}
	cells := sw.Cells()
	shares := cfg.memoShares(len(cells))
	type trial struct {
		moves, rounds int
		memo          sim.MemoStats
		ok, skipped   bool
		err           error
	}
	results := MapGridWarm(cfg.Parallel, len(cells), trials, func(ci, tr int) trial {
		run, err := sw.Trial(cells[ci], tr).Resolve()
		if err != nil {
			return trial{skipped: errors.Is(err, scenario.ErrUnsatisfiable), err: err}
		}
		res := run.Execute(memoOpt(shares, ci, tr)...)
		return trial{moves: res.Moves, rounds: res.Rounds, memo: res.Memo, ok: run.Report(res).OK}
	})
	for ci, c := range cells {
		var moves []int
		var memo sim.MemoStats
		maxRounds, skipped := 0, 0
		ok := true
		for _, tr := range results[ci] {
			if tr.err != nil {
				if !tr.skipped {
					return Table{}, tr.err
				}
				skipped++
				continue
			}
			moves = append(moves, tr.moves)
			maxRounds = maxInt(maxRounds, tr.rounds)
			memo.Add(tr.memo)
			ok = ok && tr.ok
		}
		if len(moves) == 0 {
			// Every trial was unsatisfiable on its resolved topology.
			t.AddRow(c.Algorithm, c.Topology, itoa(c.N), c.Daemon, c.Fault, "skipped", "-", "-", boolCell(true))
			continue
		}
		// Trials that did run are judged normally even when sibling trials
		// were skipped (random topologies can be unsatisfiable per seed);
		// a partially skipped cell must not mask a real violation.
		if skipped > 0 {
			t.AddNote("%s/%s n=%d: %d of %d trials skipped as unsatisfiable", c.Algorithm, c.Topology, c.N, skipped, trials)
		}
		if !ok {
			t.Violations++
		}
		t.AddRow(c.Algorithm, c.Topology, itoa(c.N), c.Daemon, c.Fault,
			ftoa(stats.SummarizeInts(moves).Mean), itoa(maxRounds), memoHitCell(memo), boolCell(ok))
	}
	return t, nil
}
