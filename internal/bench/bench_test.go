package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sdr/internal/scenario"
)

// tinyConfig keeps the experiment smoke tests fast.
func tinyConfig() Config {
	return Config{Sizes: []int{6, 8}, Trials: 2, Seed: 7, MaxSteps: 300_000}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 14 {
		t.Fatalf("expected 14 experiments (E1-E10, A1-A3, X1), got %d", len(exps))
	}
	seen := make(map[string]bool)
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v is incomplete", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestExperimentByID(t *testing.T) {
	if _, err := ExperimentByID("e5"); err != nil {
		t.Errorf("lookup of e5 (case-insensitive) failed: %v", err)
	}
	if _, err := ExperimentByID("E99"); err == nil {
		t.Error("lookup of unknown experiment should fail")
	}
}

// TestAllExperimentsRunCleanly runs every experiment with a tiny
// configuration and requires that no bound is violated and every table has
// rows. This is the integration test of the whole harness: graph generators,
// simulator, SDR, both instantiations, the baseline and the fault injectors
// all participate.
func TestAllExperimentsRunCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
	cfg := tinyConfig()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			table := e.Run(cfg)
			if table.ID != e.ID {
				t.Errorf("table id %q does not match experiment id %q", table.ID, e.ID)
			}
			if len(table.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			if table.Violations != 0 {
				var buf bytes.Buffer
				_ = table.Render(&buf)
				t.Fatalf("experiment reported %d violations:\n%s", table.Violations, buf.String())
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Errorf("row %v has %d cells for %d columns", row, len(row), len(table.Columns))
				}
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	table := Table{
		ID:      "T",
		Title:   "test table",
		Columns: []string{"a", "bb"},
	}
	table.AddRow("1", "2")
	table.AddRow("333", "4")
	table.AddNote("a note %d", 7)

	var text bytes.Buffer
	if err := table.Render(&text); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := text.String()
	for _, want := range []string{"T — test table", "a    bb", "333", "note: a note 7", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}

	var md bytes.Buffer
	if err := table.Markdown(&md); err != nil {
		t.Fatalf("markdown: %v", err)
	}
	if !strings.Contains(md.String(), "| a | bb |") {
		t.Errorf("markdown output missing header row:\n%s", md.String())
	}

	table.Violations = 2
	text.Reset()
	if err := table.Render(&text); err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.Contains(text.String(), "VIOLATIONS: 2") {
		t.Errorf("rendered table should flag violations:\n%s", text.String())
	}
}

func TestConfigDefaults(t *testing.T) {
	var empty Config
	filled := empty.withDefaults()
	if len(filled.Sizes) == 0 || filled.Trials == 0 || filled.MaxSteps == 0 || filled.Seed == 0 {
		t.Errorf("withDefaults left zero fields: %+v", filled)
	}
	custom := Config{Sizes: []int{5}, Trials: 9, Seed: 3, MaxSteps: 10}
	if got := custom.withDefaults(); got.Trials != 9 || got.MaxSteps != 10 || got.Seed != 3 || len(got.Sizes) != 1 {
		t.Errorf("withDefaults overwrote custom fields: %+v", got)
	}
}

func TestStandardTopologiesConnected(t *testing.T) {
	for _, name := range append(StandardTopologies(), DenseTopologies()...) {
		entry, err := scenario.TopologyByName(name)
		if err != nil {
			t.Fatalf("sweep topology %q is not registered: %v", name, err)
		}
		for _, n := range []int{5, 9, 16} {
			g := entry.Build(n, scenario.Params{}, newTestRand())
			if err := g.Validate(); err != nil {
				t.Errorf("topology %s(n=%d) invalid: %v", name, n, err)
			}
		}
	}
}

func TestRunSweepGrid(t *testing.T) {
	sw := scenario.Sweep{
		Algorithms: []string{"unison", "bfstree"},
		Topologies: []string{"ring", "grid"},
		Daemons:    []string{"synchronous"},
		Faults:     []string{"random-all"},
		Sizes:      []int{6},
		Trials:     2,
		Seed:       3,
		MaxSteps:   200_000,
	}
	table, err := RunSweep(sw, Config{Parallel: 2})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if got, want := len(table.Rows), 4; got != want {
		t.Fatalf("sweep produced %d rows, want %d", got, want)
	}
	if table.Violations != 0 {
		var buf bytes.Buffer
		_ = table.Render(&buf)
		t.Fatalf("sweep reported violations:\n%s", buf.String())
	}
}

func TestRunSweepSkipsUnsatisfiableCells(t *testing.T) {
	// 2-tuple-domination needs degree ≥ 2 everywhere; a path's endpoints
	// have degree 1, so the cell must be skipped rather than fail.
	sw := scenario.Sweep{
		Algorithms: []string{"2-tuple-domination"},
		Topologies: []string{"path"},
		Daemons:    []string{"synchronous"},
		Sizes:      []int{6},
		Trials:     1,
		Seed:       1,
		MaxSteps:   10_000,
	}
	table, err := RunSweep(sw, Config{Parallel: 1})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if len(table.Rows) != 1 || table.Rows[0][5] != "skipped" {
		t.Fatalf("unsatisfiable cell not skipped: %v", table.Rows)
	}
	if _, err := RunSweep(scenario.Sweep{Algorithms: []string{"nope"}, Topologies: []string{"ring"}, Daemons: []string{"synchronous"}, Sizes: []int{5}}, Config{Parallel: 1}); err == nil {
		t.Error("a sweep naming an unknown algorithm must be rejected")
	}
}

func TestTableJSON(t *testing.T) {
	table := Table{ID: "T", Title: "json", Columns: []string{"a"}}
	table.AddRow("1")
	var buf bytes.Buffer
	if err := table.JSON(&buf); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded Table
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if decoded.ID != "T" || len(decoded.Rows) != 1 || decoded.Rows[0][0] != "1" {
		t.Errorf("round-trip mismatch: %+v", decoded)
	}
}
