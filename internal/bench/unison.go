package bench

import (
	"math/rand"

	"sdr/internal/faults"
	"sdr/internal/sim"
	"sdr/internal/stats"
	"sdr/internal/unison"
)

// Experiments E4-E6 exercise the unison instantiation U ∘ SDR (Section 5):
// the 3n round bound of Theorem 7, the O(D·n²) move bound of Theorem 6, and
// the comparison against the Boulinier-Petit-Villain baseline of Section 5.3.

// RunE4UnisonRounds measures the stabilization time in rounds of U ∘ SDR from
// corrupted clock configurations, against the 3n bound of Theorem 7.
func RunE4UnisonRounds(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E4",
		Title:   "U∘SDR stabilization rounds vs the 3n bound (Theorem 7)",
		Columns: []string{"topology", "n", "daemon", "rounds(max)", "rounds(mean)", "bound 3n", "within"},
	}
	scenario := scenarioByName("inner-only")
	cells := standardSweepCells(cfg)
	type trial struct{ rounds, bound int }
	results := mapGrid(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		c := cells[ci]
		seed := cfg.Seed + int64(tr)*4001
		rng := rand.New(rand.NewSource(seed))
		w := buildUnisonWorkload(c.top, c.n, rng)
		start := corruptedStart(scenario, w.comp, w.net, rng)
		m := runComposed(w.comp, w.net, c.df.New(seed), start, cfg.MaxSteps, true)
		return trial{rounds: m.result.StabilizationRounds, bound: unison.MaxStabilizationRounds(w.net.N())}
	})
	for ci, c := range cells {
		var rounds []int
		bound := 0
		for _, tr := range results[ci] {
			rounds = append(rounds, tr.rounds)
			bound = tr.bound
		}
		summary := stats.SummarizeInts(rounds)
		within := summary.Max <= float64(bound) && summary.Min >= 0
		if !within {
			t.Violations++
		}
		t.AddRow(c.top.Name, itoa(c.n), c.df.Name,
			itoa(int(summary.Max)), ftoa(summary.Mean), itoa(bound), boolCell(within))
	}
	return t
}

// RunE5UnisonMoves measures the stabilization time in moves of U ∘ SDR and
// compares it to the explicit (3D+3)·n² + (3D+1)·(n-1) + 1 bound behind
// Theorem 6, reporting the growth exponent of moves versus n per topology.
func RunE5UnisonMoves(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E5",
		Title:   "U∘SDR stabilization moves vs the O(D·n²) bound (Theorem 6)",
		Columns: []string{"topology", "n", "D", "daemon", "moves(max)", "moves(mean)", "bound", "within"},
	}
	scenario := scenarioByName("random-all")
	cells := standardSweepCells(cfg)
	type trial struct{ moves, bound, diameter int }
	results := mapGrid(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		c := cells[ci]
		seed := cfg.Seed + int64(tr)*5003
		rng := rand.New(rand.NewSource(seed))
		w := buildUnisonWorkload(c.top, c.n, rng)
		diameter := w.graph.Diameter()
		start := corruptedStart(scenario, w.comp, w.net, rng)
		m := runComposed(w.comp, w.net, c.df.New(seed), start, cfg.MaxSteps, true)
		return trial{
			moves:    m.result.StabilizationMoves,
			bound:    unison.MaxStabilizationMoves(w.net.N(), diameter),
			diameter: diameter,
		}
	})
	// Per-topology growth fits over the distributed-random rows.
	growth := map[string][2][]float64{}
	for ci, c := range cells {
		var moves []int
		bound, diameter := 0, 0
		for _, tr := range results[ci] {
			moves = append(moves, tr.moves)
			bound = tr.bound
			diameter = tr.diameter
		}
		summary := stats.SummarizeInts(moves)
		within := summary.Max <= float64(bound) && summary.Min >= 0
		if !within {
			t.Violations++
		}
		if c.df.Name == "distributed-random" {
			g := growth[c.top.Name]
			g[0] = append(g[0], float64(c.n))
			g[1] = append(g[1], summary.Mean)
			growth[c.top.Name] = g
		}
		t.AddRow(c.top.Name, itoa(c.n), itoa(diameter), c.df.Name,
			itoa(int(summary.Max)), ftoa(summary.Mean), itoa(bound), boolCell(within))
	}
	for _, top := range StandardTopologies() {
		if g, ok := growth[top.Name]; ok && len(g[0]) >= 2 {
			t.AddNote("%s: measured moves grow like n^%.2f under the distributed-random daemon (paper bound: O(D·n²))",
				top.Name, stats.GrowthExponent(g[0], g[1]))
		}
	}
	return t
}

// RunE6UnisonVsBPV compares the stabilization moves of U ∘ SDR against the
// Boulinier-Petit-Villain baseline on the same topologies and the same
// uniformly random initial configurations. The paper's claim (Section 5.3) is
// that U ∘ SDR has the better move complexity: O(D·n²) versus O(D·n³ + α·n²).
func RunE6UnisonVsBPV(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E6",
		Title:   "U∘SDR vs BPV baseline: stabilization moves on the same workloads",
		Columns: []string{"topology", "n", "sdr-moves(mean)", "bpv-moves(mean)", "ratio bpv/sdr", "sdr wins"},
	}
	type cell struct {
		top Topology
		n   int
	}
	var cells []cell
	for _, top := range StandardTopologies() {
		for _, n := range cfg.Sizes {
			cells = append(cells, cell{top: top, n: n})
		}
	}
	type trial struct{ sdrMoves, bpvMoves int }
	results := mapGrid(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		c := cells[ci]
		seed := cfg.Seed + int64(tr)*6007
		rng := rand.New(rand.NewSource(seed))
		w := buildUnisonWorkload(c.top, c.n, rng)

		// U ∘ SDR from a uniformly random composed configuration.
		start := faults.RandomConfiguration(w.comp, w.net, rng)
		daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)
		m := runComposed(w.comp, w.net, daemon, start, cfg.MaxSteps, true)

		// BPV on the same topology from a uniformly random configuration.
		bpv := unison.NewBPVFor(w.graph)
		bpvStart := faults.RandomConfiguration(bpv, w.net, rng)
		bpvDaemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed+1)), 0.5)
		eng := sim.NewEngine(w.net, bpv, bpvDaemon)
		res := eng.Run(bpvStart,
			sim.WithMaxSteps(cfg.MaxSteps),
			sim.WithLegitimate(bpv.LegitimatePredicate(w.graph)),
			sim.WithStopWhenLegitimate(),
		)
		return trial{sdrMoves: m.result.StabilizationMoves, bpvMoves: res.StabilizationMoves}
	})
	var ratioAccum []float64
	for ci, c := range cells {
		var sdrMoves, bpvMoves []int
		for _, tr := range results[ci] {
			if tr.sdrMoves >= 0 {
				sdrMoves = append(sdrMoves, tr.sdrMoves)
			}
			if tr.bpvMoves >= 0 {
				bpvMoves = append(bpvMoves, tr.bpvMoves)
			}
		}
		sdrMean := stats.SummarizeInts(sdrMoves).Mean
		bpvMean := stats.SummarizeInts(bpvMoves).Mean
		ratio := stats.Ratio(bpvMean, sdrMean)
		ratioAccum = append(ratioAccum, ratio)
		t.AddRow(c.top.Name, itoa(c.n), ftoa(sdrMean), ftoa(bpvMean), ftoa(ratio), boolCell(sdrMean <= bpvMean || ratio >= 1))
	}
	t.AddNote("mean bpv/sdr move ratio across the sweep: %.2f (>1 means U∘SDR needs fewer moves, matching the paper's comparison)",
		stats.Summarize(ratioAccum).Mean)
	return t
}
