package bench

import (
	"sdr/internal/stats"
	"sdr/internal/unison"
)

// Experiments E4-E6 exercise the unison instantiation U ∘ SDR (Section 5):
// the 3n round bound of Theorem 7, the O(D·n²) move bound of Theorem 6, and
// the comparison against the Boulinier-Petit-Villain baseline of Section 5.3.

// RunE4UnisonRounds measures the stabilization time in rounds of U ∘ SDR from
// corrupted clock configurations, against the 3n bound of Theorem 7.
func RunE4UnisonRounds(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E4",
		Title:   "U∘SDR stabilization rounds vs the 3n bound (Theorem 7)",
		Columns: []string{"topology", "n", "daemon", "rounds(max)", "rounds(mean)", "bound 3n", "within"},
	}
	sweep := sweepFor(cfg, 4001, []string{"unison"}, StandardTopologies(), defaultDaemons(), []string{"inner-only"})
	cells := sweep.Cells()
	shares := cfg.memoShares(len(cells))
	type trial struct{ rounds, bound int }
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		m := runObserved(sweep.Trial(cells[ci], tr), memoOpt(shares, ci, tr)...)
		return trial{rounds: m.result.StabilizationRounds, bound: unison.MaxStabilizationRounds(m.run.Net.N())}
	})
	for ci, c := range cells {
		var rounds []int
		bound := 0
		for _, tr := range results[ci] {
			rounds = append(rounds, tr.rounds)
			bound = tr.bound
		}
		summary := stats.SummarizeInts(rounds)
		within := summary.Max <= float64(bound) && summary.Min >= 0
		if !within {
			t.Violations++
		}
		t.AddRow(c.Topology, itoa(c.N), c.Daemon,
			itoa(int(summary.Max)), ftoa(summary.Mean), itoa(bound), boolCell(within))
	}
	return t
}

// RunE5UnisonMoves measures the stabilization time in moves of U ∘ SDR and
// compares it to the explicit (3D+3)·n² + (3D+1)·(n-1) + 1 bound behind
// Theorem 6, reporting the growth exponent of moves versus n per topology.
func RunE5UnisonMoves(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E5",
		Title:   "U∘SDR stabilization moves vs the O(D·n²) bound (Theorem 6)",
		Columns: []string{"topology", "n", "D", "daemon", "moves(max)", "moves(mean)", "bound", "within"},
	}
	sweep := sweepFor(cfg, 5003, []string{"unison"}, StandardTopologies(), defaultDaemons(), []string{"random-all"})
	cells := sweep.Cells()
	shares := cfg.memoShares(len(cells))
	type trial struct{ moves, bound, diameter int }
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		m := runObserved(sweep.Trial(cells[ci], tr), memoOpt(shares, ci, tr)...)
		diameter := m.run.Graph.Diameter()
		return trial{
			moves:    m.result.StabilizationMoves,
			bound:    unison.MaxStabilizationMoves(m.run.Net.N(), diameter),
			diameter: diameter,
		}
	})
	// Per-topology growth fits over the distributed-random rows.
	growth := map[string][2][]float64{}
	for ci, c := range cells {
		var moves []int
		bound, diameter := 0, 0
		for _, tr := range results[ci] {
			moves = append(moves, tr.moves)
			bound = tr.bound
			diameter = tr.diameter
		}
		summary := stats.SummarizeInts(moves)
		within := summary.Max <= float64(bound) && summary.Min >= 0
		if !within {
			t.Violations++
		}
		if c.Daemon == "distributed-random" {
			g := growth[c.Topology]
			g[0] = append(g[0], float64(c.N))
			g[1] = append(g[1], summary.Mean)
			growth[c.Topology] = g
		}
		t.AddRow(c.Topology, itoa(c.N), itoa(diameter), c.Daemon,
			itoa(int(summary.Max)), ftoa(summary.Mean), itoa(bound), boolCell(within))
	}
	for _, top := range StandardTopologies() {
		if g, ok := growth[top]; ok && len(g[0]) >= 2 {
			t.AddNote("%s: measured moves grow like n^%.2f under the distributed-random daemon (paper bound: O(D·n²))",
				top, stats.GrowthExponent(g[0], g[1]))
		}
	}
	return t
}

// RunE6UnisonVsBPV compares the stabilization moves of U ∘ SDR against the
// Boulinier-Petit-Villain baseline on the same topologies and the same kind
// of uniformly random initial configurations. The paper's claim (Section
// 5.3) is that U ∘ SDR has the better move complexity: O(D·n²) versus
// O(D·n³ + α·n²). Both legs resolve from the same seed, so they run on
// identical graphs.
func RunE6UnisonVsBPV(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E6",
		Title:   "U∘SDR vs BPV baseline: stabilization moves on the same workloads",
		Columns: []string{"topology", "n", "sdr-moves(mean)", "bpv-moves(mean)", "ratio bpv/sdr", "sdr wins"},
	}
	sweep := sweepFor(cfg, 6007, []string{"unison"}, StandardTopologies(), []string{"distributed-random"}, []string{"random-all"})
	cells := sweep.Cells()
	sdrShares := cfg.memoShares(len(cells))
	bpvShares := cfg.memoShares(len(cells))
	type trial struct{ sdrMoves, bpvMoves int }
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		sdrSpec := sweep.Trial(cells[ci], tr)
		m := runObserved(sdrSpec, memoOpt(sdrShares, ci, tr)...)

		// BPV on the same topology (same seed → same graph) from the same
		// kind of uniformly random configuration.
		bpvSpec := sdrSpec
		bpvSpec.Algorithm = "bpv"
		b := runPlain(bpvSpec, memoOpt(bpvShares, ci, tr)...)
		return trial{sdrMoves: m.result.StabilizationMoves, bpvMoves: b.result.StabilizationMoves}
	})
	var ratioAccum []float64
	for ci, c := range cells {
		var sdrMoves, bpvMoves []int
		for _, tr := range results[ci] {
			if tr.sdrMoves >= 0 {
				sdrMoves = append(sdrMoves, tr.sdrMoves)
			}
			if tr.bpvMoves >= 0 {
				bpvMoves = append(bpvMoves, tr.bpvMoves)
			}
		}
		sdrMean := stats.SummarizeInts(sdrMoves).Mean
		bpvMean := stats.SummarizeInts(bpvMoves).Mean
		ratio := stats.Ratio(bpvMean, sdrMean)
		ratioAccum = append(ratioAccum, ratio)
		t.AddRow(c.Topology, itoa(c.N), ftoa(sdrMean), ftoa(bpvMean), ftoa(ratio), boolCell(sdrMean <= bpvMean || ratio >= 1))
	}
	t.AddNote("mean bpv/sdr move ratio across the sweep: %.2f (>1 means U∘SDR needs fewer moves, matching the paper's comparison)",
		stats.Summarize(ratioAccum).Mean)
	return t
}
