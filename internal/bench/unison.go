package bench

import (
	"math/rand"

	"sdr/internal/faults"
	"sdr/internal/sim"
	"sdr/internal/stats"
	"sdr/internal/unison"
)

// Experiments E4-E6 exercise the unison instantiation U ∘ SDR (Section 5):
// the 3n round bound of Theorem 7, the O(D·n²) move bound of Theorem 6, and
// the comparison against the Boulinier-Petit-Villain baseline of Section 5.3.

// RunE4UnisonRounds measures the stabilization time in rounds of U ∘ SDR from
// corrupted clock configurations, against the 3n bound of Theorem 7.
func RunE4UnisonRounds(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E4",
		Title:   "U∘SDR stabilization rounds vs the 3n bound (Theorem 7)",
		Columns: []string{"topology", "n", "daemon", "rounds(max)", "rounds(mean)", "bound 3n", "within"},
	}
	scenario := scenarioByName("inner-only")
	for _, top := range StandardTopologies() {
		for _, n := range cfg.Sizes {
			for _, df := range defaultDaemons() {
				var rounds []int
				bound := 0
				for trial := 0; trial < cfg.Trials; trial++ {
					seed := cfg.Seed + int64(trial)*4001
					rng := rand.New(rand.NewSource(seed))
					w := buildUnisonWorkload(top, n, rng)
					bound = unison.MaxStabilizationRounds(w.net.N())
					start := corruptedStart(scenario, w.comp, w.net, rng)
					m := runComposed(w.comp, w.net, df.New(seed), start, cfg.MaxSteps, true)
					rounds = append(rounds, m.result.StabilizationRounds)
				}
				summary := stats.SummarizeInts(rounds)
				within := summary.Max <= float64(bound) && summary.Min >= 0
				if !within {
					t.Violations++
				}
				t.AddRow(top.Name, itoa(n), df.Name,
					itoa(int(summary.Max)), ftoa(summary.Mean), itoa(bound), boolCell(within))
			}
		}
	}
	return t
}

// RunE5UnisonMoves measures the stabilization time in moves of U ∘ SDR and
// compares it to the explicit (3D+3)·n² + (3D+1)·(n-1) + 1 bound behind
// Theorem 6, reporting the growth exponent of moves versus n per topology.
func RunE5UnisonMoves(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E5",
		Title:   "U∘SDR stabilization moves vs the O(D·n²) bound (Theorem 6)",
		Columns: []string{"topology", "n", "D", "daemon", "moves(max)", "moves(mean)", "bound", "within"},
	}
	scenario := scenarioByName("random-all")
	for _, top := range StandardTopologies() {
		var ns, moveMeans []float64
		for _, n := range cfg.Sizes {
			for _, df := range defaultDaemons() {
				var moves []int
				bound, diameter := 0, 0
				for trial := 0; trial < cfg.Trials; trial++ {
					seed := cfg.Seed + int64(trial)*5003
					rng := rand.New(rand.NewSource(seed))
					w := buildUnisonWorkload(top, n, rng)
					diameter = w.graph.Diameter()
					bound = unison.MaxStabilizationMoves(w.net.N(), diameter)
					start := corruptedStart(scenario, w.comp, w.net, rng)
					m := runComposed(w.comp, w.net, df.New(seed), start, cfg.MaxSteps, true)
					moves = append(moves, m.result.StabilizationMoves)
				}
				summary := stats.SummarizeInts(moves)
				within := summary.Max <= float64(bound) && summary.Min >= 0
				if !within {
					t.Violations++
				}
				if df.Name == "distributed-random" {
					ns = append(ns, float64(n))
					moveMeans = append(moveMeans, summary.Mean)
				}
				t.AddRow(top.Name, itoa(n), itoa(diameter), df.Name,
					itoa(int(summary.Max)), ftoa(summary.Mean), itoa(bound), boolCell(within))
			}
		}
		if len(ns) >= 2 {
			t.AddNote("%s: measured moves grow like n^%.2f under the distributed-random daemon (paper bound: O(D·n²))",
				top.Name, stats.GrowthExponent(ns, moveMeans))
		}
	}
	return t
}

// RunE6UnisonVsBPV compares the stabilization moves of U ∘ SDR against the
// Boulinier-Petit-Villain baseline on the same topologies and the same
// uniformly random initial configurations. The paper's claim (Section 5.3) is
// that U ∘ SDR has the better move complexity: O(D·n²) versus O(D·n³ + α·n²).
func RunE6UnisonVsBPV(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E6",
		Title:   "U∘SDR vs BPV baseline: stabilization moves on the same workloads",
		Columns: []string{"topology", "n", "sdr-moves(mean)", "bpv-moves(mean)", "ratio bpv/sdr", "sdr wins"},
	}
	var ratioAccum []float64
	for _, top := range StandardTopologies() {
		for _, n := range cfg.Sizes {
			var sdrMoves, bpvMoves []int
			for trial := 0; trial < cfg.Trials; trial++ {
				seed := cfg.Seed + int64(trial)*6007
				rng := rand.New(rand.NewSource(seed))
				w := buildUnisonWorkload(top, n, rng)

				// U ∘ SDR from a uniformly random composed configuration.
				start := faults.RandomConfiguration(w.comp, w.net, rng)
				daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)
				m := runComposed(w.comp, w.net, daemon, start, cfg.MaxSteps, true)
				if m.result.StabilizationMoves >= 0 {
					sdrMoves = append(sdrMoves, m.result.StabilizationMoves)
				}

				// BPV on the same topology from a uniformly random configuration.
				bpv := unison.NewBPVFor(w.graph)
				bpvStart := faults.RandomConfiguration(bpv, w.net, rng)
				bpvDaemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed+1)), 0.5)
				eng := sim.NewEngine(w.net, bpv, bpvDaemon)
				res := eng.Run(bpvStart,
					sim.WithMaxSteps(cfg.MaxSteps),
					sim.WithLegitimate(bpv.LegitimatePredicate(w.graph)),
					sim.WithStopWhenLegitimate(),
				)
				if res.StabilizationMoves >= 0 {
					bpvMoves = append(bpvMoves, res.StabilizationMoves)
				}
			}
			sdrMean := stats.SummarizeInts(sdrMoves).Mean
			bpvMean := stats.SummarizeInts(bpvMoves).Mean
			ratio := stats.Ratio(bpvMean, sdrMean)
			ratioAccum = append(ratioAccum, ratio)
			t.AddRow(top.Name, itoa(n), ftoa(sdrMean), ftoa(bpvMean), ftoa(ratio), boolCell(sdrMean <= bpvMean || ratio >= 1))
		}
	}
	t.AddNote("mean bpv/sdr move ratio across the sweep: %.2f (>1 means U∘SDR needs fewer moves, matching the paper's comparison)",
		stats.Summarize(ratioAccum).Mean)
	return t
}
