package bench

import (
	"bytes"
	"reflect"
	"testing"

	"sdr/internal/scenario"
)

func recoveryTestSweep() scenario.Sweep {
	return scenario.Sweep{
		Algorithms: []string{"unison"},
		Topologies: []string{"ring", "torus"},
		Daemons:    []string{"distributed-random"},
		Faults:     []string{"random-all"},
		Churns:     []string{"periodic:events=2,every=100", "poisson:events=2,every=80,kinds=corrupt-fraction+edge-drop"},
		Sizes:      []int{8},
		Trials:     2,
		Seed:       7,
		MaxSteps:   300_000,
	}
}

func TestRunRecoveryGrid(t *testing.T) {
	table, err := RunRecovery(recoveryTestSweep(), Config{Parallel: 2})
	if err != nil {
		t.Fatalf("RunRecovery: %v", err)
	}
	if got, want := len(table.Rows), 4; got != want {
		t.Fatalf("recovery sweep produced %d rows, want %d", got, want)
	}
	if table.Violations != 0 {
		var buf bytes.Buffer
		_ = table.Render(&buf)
		t.Fatalf("recovery sweep reported violations:\n%s", buf.String())
	}
	for _, row := range table.Rows {
		// events = trials × schedule events = 2 × 2.
		if row[6] != "4" || row[7] != "4" {
			t.Errorf("row %v: want 4 events, all recovered", row)
		}
	}
}

// TestRunRecoveryDeterministicAcrossParallelism pins the acceptance
// criterion: the same sweep renders a bit-identical RECOVERY table at
// -parallel 1 and -parallel 8.
func TestRunRecoveryDeterministicAcrossParallelism(t *testing.T) {
	seq, err := RunRecovery(recoveryTestSweep(), Config{Parallel: 1})
	if err != nil {
		t.Fatalf("RunRecovery(parallel=1): %v", err)
	}
	par, err := RunRecovery(recoveryTestSweep(), Config{Parallel: 8})
	if err != nil {
		t.Fatalf("RunRecovery(parallel=8): %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("RECOVERY table differs across parallelism:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestRunRecoveryRequiresChurn(t *testing.T) {
	sw := recoveryTestSweep()
	sw.Churns = nil
	if _, err := RunRecovery(sw, Config{Parallel: 1}); err == nil {
		t.Error("a recovery sweep without churn schedules must be rejected")
	}
	sw.Churns = []string{""}
	if _, err := RunRecovery(sw, Config{Parallel: 1}); err == nil {
		t.Error("a recovery sweep with an empty churn schedule must be rejected")
	}
}
