package bench

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"sdr/internal/obs"
	"sdr/internal/scenario"
	"sdr/internal/sim"
)

// RunProfile runs one profiled trial per cell of the grid and renders the
// engine's per-phase step timing — the -profile-steps mode of cmd/sdrbench.
// Every `every`-th step is phase-timed (see obs.PhaseProfiler); each cell
// contributes one row per phase plus a closing step-wall row whose total the
// phase totals must (nearly) sum to — the coverage column makes the residual
// (loop glue and the timing calls themselves) visible. Sharded grids
// (sw.Shards > 1) additionally get a per-shard breakdown row for each
// parallel phase.
//
// Cells run strictly sequentially, never overlapped, so the timings are not
// distorted by sibling cells competing for cores; only cfg's MemoOff/MemoCap
// knobs are read. Unsatisfiable cells are skipped with a note. Wall-clock
// numbers are hardware-bound: the table records GOMAXPROCS for context and
// is excluded from byte-reproducibility expectations.
func RunProfile(sw scenario.Sweep, every int, cfg Config) (Table, error) {
	if err := sw.Validate(); err != nil {
		return Table{}, err
	}
	if every < 1 {
		every = 1
	}
	if sw.Shards > 1 {
		cfg.MemoOff = true
	}
	t := Table{
		ID: "PROFILE",
		Title: fmt.Sprintf("engine phase timing (every %s step sampled, base seed %d)",
			ordinal(every), sw.Seed),
		Columns: []string{"algorithm", "topology", "n", "daemon", "phase", "shard",
			"samples", "mean/step(µs)", "total(ms)", "share"},
	}
	for _, c := range sw.Cells() {
		run, err := sw.Trial(c, 0).Resolve()
		if err != nil {
			if errors.Is(err, scenario.ErrUnsatisfiable) {
				t.AddNote("%s/%s n=%d %s: skipped (unsatisfiable)", c.Algorithm, c.Topology, c.N, c.Daemon)
				continue
			}
			return Table{}, err
		}
		prof := obs.NewPhaseProfiler(every)
		opts := append(cfg.memoSelf(), sim.WithProfiler(prof))
		run.Execute(opts...)
		p := prof.Profile()
		if p.SampledSteps == 0 {
			t.AddNote("%s/%s n=%d %s: no steps sampled", c.Algorithm, c.Topology, c.N, c.Daemon)
			continue
		}
		cell := []string{c.Algorithm, c.Topology, itoa(c.N), c.Daemon}
		for _, ph := range p.Phases {
			t.AddRow(append(cell, ph.Phase, "-",
				itoa(ph.Count),
				usPerStep(ph.Total, p.SampledSteps),
				msTotal(ph.Total),
				share(ph.Total, p.StepWall))...)
		}
		for _, sb := range p.Shards {
			for _, ph := range sb.Phases {
				t.AddRow(append(cell, ph.Phase, itoa(sb.Shard),
					itoa(ph.Count),
					usPerStep(ph.Total, p.SampledSteps),
					msTotal(ph.Total),
					share(ph.Total, p.StepWall))...)
			}
		}
		t.AddRow(append(cell, "step_wall", "-",
			itoa(p.SampledSteps),
			usPerStep(p.StepWall, p.SampledSteps),
			msTotal(p.StepWall),
			fmt.Sprintf("cover %.0f%%", 100*p.Coverage()))...)
	}
	t.AddNote("share is each phase's fraction of the sampled step wall time; the step_wall row's cover%% is the fraction the named phases account for")
	t.AddNote("GOMAXPROCS=%d NumCPU=%d shards=%d; wall-clock numbers are hardware-bound", runtime.GOMAXPROCS(0), runtime.NumCPU(), maxInt(sw.Shards, 1))
	return t, nil
}

// usPerStep renders a phase total as mean microseconds per sampled step.
func usPerStep(d time.Duration, steps int) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/float64(steps)/1e3)
}

// msTotal renders a duration in milliseconds.
func msTotal(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds()*1e3)
}

// share renders a phase total as a percentage of the sampled step wall time.
func share(d, wall time.Duration) string {
	if wall <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(d)/float64(wall))
}

// ordinal renders 1 → "1st", 2 → "2nd", 4 → "4th" for the table title.
func ordinal(k int) string {
	switch {
	case k%100/10 == 1:
		return fmt.Sprintf("%dth", k)
	case k%10 == 1:
		return fmt.Sprintf("%dst", k)
	case k%10 == 2:
		return fmt.Sprintf("%dnd", k)
	case k%10 == 3:
		return fmt.Sprintf("%drd", k)
	default:
		return fmt.Sprintf("%dth", k)
	}
}
