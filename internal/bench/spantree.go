package bench

import (
	"sdr/internal/core"
	"sdr/internal/stats"
)

// RunX1SpanningTree is the extension experiment X1: the paper's generality
// claim exercised on a third instantiation, a silent self-stabilizing BFS
// spanning tree (B ∘ SDR). It measures stabilization moves and rounds from
// corrupted configurations, checks silence (termination) and the exactness of
// the resulting tree, and verifies that the SDR-level bounds (3n rounds to a
// normal configuration, 3n+3 SDR moves per process) continue to hold.
func RunX1SpanningTree(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "X1",
		Title:   "extension: silent self-stabilizing BFS spanning tree via B∘SDR",
		Columns: []string{"topology", "n", "scenario", "moves(mean)", "rounds(max)", "sdr-rounds-bound", "sdr-moves/proc(max)", "bound 3n+3", "root-creations", "tree-exact", "within"},
	}
	sweep := sweepFor(cfg, 13007, []string{"bfstree"}, StandardTopologies(), []string{"distributed-random"}, []string{"random-all", "fake-wave"})
	cells := sweep.Cells()
	shares := cfg.memoShares(len(cells))
	type trial struct {
		moves, rounds, sdrMoves, sdrBound, rootCreations int
		normalRoundsOK, treeExact                        bool
	}
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		m := runObserved(sweep.Trial(cells[ci], tr), memoOpt(shares, ci, tr)...)
		n := m.run.Net.N()
		return trial{
			moves:          m.result.Moves,
			rounds:         m.result.Rounds,
			sdrMoves:       m.observer.MaxSDRMoves(),
			sdrBound:       core.MaxSDRMovesPerProcess(n),
			rootCreations:  m.observer.AliveRootViolations(),
			normalRoundsOK: m.result.StabilizationRounds >= 0 && m.result.StabilizationRounds <= core.MaxResetRounds(n),
			treeExact:      m.run.Report(m.result).OK,
		}
	})
	for ci, c := range cells {
		var moves []int
		maxRounds, maxSDRMoves, sdrBound, rootCreations := 0, 0, 0, 0
		normalRoundsOK, treesExact := true, true
		for _, tr := range results[ci] {
			moves = append(moves, tr.moves)
			maxRounds = maxInt(maxRounds, tr.rounds)
			maxSDRMoves = maxInt(maxSDRMoves, tr.sdrMoves)
			sdrBound = tr.sdrBound
			rootCreations += tr.rootCreations
			normalRoundsOK = normalRoundsOK && tr.normalRoundsOK
			treesExact = treesExact && tr.treeExact
		}
		within := normalRoundsOK && treesExact && maxSDRMoves <= sdrBound && rootCreations == 0
		if !within {
			t.Violations++
		}
		t.AddRow(c.Topology, itoa(c.N), c.Fault,
			ftoa(stats.SummarizeInts(moves).Mean), itoa(maxRounds), boolCell(normalRoundsOK),
			itoa(maxSDRMoves), itoa(sdrBound), itoa(rootCreations), boolCell(treesExact), boolCell(within))
	}
	return t
}
