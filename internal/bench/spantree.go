package bench

import (
	"math/rand"

	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/sim"
	"sdr/internal/spantree"
	"sdr/internal/stats"
)

// RunX1SpanningTree is the extension experiment X1: the paper's generality
// claim exercised on a third instantiation, a silent self-stabilizing BFS
// spanning tree (B ∘ SDR). It measures stabilization moves and rounds from
// corrupted configurations, checks silence (termination) and the exactness of
// the resulting tree, and verifies that the SDR-level bounds (3n rounds to a
// normal configuration, 3n+3 SDR moves per process) continue to hold.
func RunX1SpanningTree(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "X1",
		Title:   "extension: silent self-stabilizing BFS spanning tree via B∘SDR",
		Columns: []string{"topology", "n", "scenario", "moves(mean)", "rounds(max)", "sdr-rounds-bound", "sdr-moves/proc(max)", "bound 3n+3", "root-creations", "tree-exact", "within"},
	}
	type cell struct {
		top          Topology
		n            int
		scenarioName string
	}
	var cells []cell
	for _, top := range StandardTopologies() {
		for _, n := range cfg.Sizes {
			for _, scenarioName := range []string{"random-all", "fake-wave"} {
				cells = append(cells, cell{top: top, n: n, scenarioName: scenarioName})
			}
		}
	}
	type trial struct {
		moves, rounds, sdrMoves, sdrBound, rootCreations int
		normalRoundsOK, treeExact                        bool
	}
	results := mapGrid(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		c := cells[ci]
		scenario := scenarioByName(c.scenarioName)
		seed := cfg.Seed + int64(tr)*13007
		rng := rand.New(rand.NewSource(seed))
		g := c.top.Build(c.n, rng)
		root := 0
		bfs := spantree.NewFor(g, root)
		comp := core.Compose(bfs)
		net := sim.NewNetwork(g)

		var start *sim.Configuration
		if c.scenarioName == "random-all" {
			start = faults.RandomConfiguration(comp, net, rng)
		} else {
			start = scenario.Build(comp, bfs, net, rng)
		}

		observer := core.NewObserver(bfs, net)
		observer.Prime(start)
		daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)
		eng := sim.NewEngine(net, comp, daemon)
		res := eng.Run(start,
			sim.WithMaxSteps(cfg.MaxSteps),
			sim.WithLegitimate(core.NormalPredicate(bfs, net)),
			sim.WithStepHook(observer.Hook()),
		)
		return trial{
			moves:          res.Moves,
			rounds:         res.Rounds,
			sdrMoves:       observer.MaxSDRMoves(),
			sdrBound:       core.MaxSDRMovesPerProcess(g.N()),
			rootCreations:  observer.AliveRootViolations(),
			normalRoundsOK: res.StabilizationRounds >= 0 && res.StabilizationRounds <= core.MaxResetRounds(g.N()),
			treeExact:      res.Terminated && spantree.VerifyTree(g, root, res.Final) == nil,
		}
	})
	for ci, c := range cells {
		var moves []int
		maxRounds, maxSDRMoves, sdrBound, rootCreations := 0, 0, 0, 0
		normalRoundsOK, treesExact := true, true
		for _, tr := range results[ci] {
			moves = append(moves, tr.moves)
			maxRounds = maxInt(maxRounds, tr.rounds)
			maxSDRMoves = maxInt(maxSDRMoves, tr.sdrMoves)
			sdrBound = tr.sdrBound
			rootCreations += tr.rootCreations
			normalRoundsOK = normalRoundsOK && tr.normalRoundsOK
			treesExact = treesExact && tr.treeExact
		}
		within := normalRoundsOK && treesExact && maxSDRMoves <= sdrBound && rootCreations == 0
		if !within {
			t.Violations++
		}
		t.AddRow(c.top.Name, itoa(c.n), c.scenarioName,
			ftoa(stats.SummarizeInts(moves).Mean), itoa(maxRounds), boolCell(normalRoundsOK),
			itoa(maxSDRMoves), itoa(sdrBound), itoa(rootCreations), boolCell(treesExact), boolCell(within))
	}
	return t
}
