package bench

import (
	"math/rand"

	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/sim"
	"sdr/internal/spantree"
	"sdr/internal/stats"
)

// RunX1SpanningTree is the extension experiment X1: the paper's generality
// claim exercised on a third instantiation, a silent self-stabilizing BFS
// spanning tree (B ∘ SDR). It measures stabilization moves and rounds from
// corrupted configurations, checks silence (termination) and the exactness of
// the resulting tree, and verifies that the SDR-level bounds (3n rounds to a
// normal configuration, 3n+3 SDR moves per process) continue to hold.
func RunX1SpanningTree(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "X1",
		Title:   "extension: silent self-stabilizing BFS spanning tree via B∘SDR",
		Columns: []string{"topology", "n", "scenario", "moves(mean)", "rounds(max)", "sdr-rounds-bound", "sdr-moves/proc(max)", "bound 3n+3", "root-creations", "tree-exact", "within"},
	}
	for _, top := range StandardTopologies() {
		for _, n := range cfg.Sizes {
			for _, scenarioName := range []string{"random-all", "fake-wave"} {
				scenario := scenarioByName(scenarioName)
				var moves []int
				maxRounds, maxSDRMoves, sdrBound, rootCreations := 0, 0, 0, 0
				normalRoundsOK, treesExact := true, true
				for trial := 0; trial < cfg.Trials; trial++ {
					seed := cfg.Seed + int64(trial)*13007
					rng := rand.New(rand.NewSource(seed))
					g := top.Build(n, rng)
					root := 0
					bfs := spantree.NewFor(g, root)
					comp := core.Compose(bfs)
					net := sim.NewNetwork(g)
					sdrBound = core.MaxSDRMovesPerProcess(g.N())

					var start *sim.Configuration
					if scenarioName == "random-all" {
						start = faults.RandomConfiguration(comp, net, rng)
					} else {
						start = scenario.Build(comp, bfs, net, rng)
					}

					observer := core.NewObserver(bfs, net)
					observer.Prime(start)
					daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)
					eng := sim.NewEngine(net, comp, daemon)
					res := eng.Run(start,
						sim.WithMaxSteps(cfg.MaxSteps),
						sim.WithLegitimate(core.NormalPredicate(bfs, net)),
						sim.WithStepHook(observer.Hook()),
					)
					moves = append(moves, res.Moves)
					if res.Rounds > maxRounds {
						maxRounds = res.Rounds
					}
					if m := observer.MaxSDRMoves(); m > maxSDRMoves {
						maxSDRMoves = m
					}
					rootCreations += observer.AliveRootViolations()
					if res.StabilizationRounds < 0 || res.StabilizationRounds > core.MaxResetRounds(g.N()) {
						normalRoundsOK = false
					}
					if !res.Terminated || spantree.VerifyTree(g, root, res.Final) != nil {
						treesExact = false
					}
				}
				within := normalRoundsOK && treesExact && maxSDRMoves <= sdrBound && rootCreations == 0
				if !within {
					t.Violations++
				}
				t.AddRow(top.Name, itoa(n), scenarioName,
					ftoa(stats.SummarizeInts(moves).Mean), itoa(maxRounds), boolCell(normalRoundsOK),
					itoa(maxSDRMoves), itoa(sdrBound), itoa(rootCreations), boolCell(treesExact), boolCell(within))
			}
		}
	}
	return t
}
