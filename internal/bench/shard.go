package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"sdr/internal/scenario"
	"sdr/internal/sim"
)

// RunShardBench measures the sharded engine against the sequential one on a
// single large synchronous unison∘SDR run: one torus of about n processes,
// one corrupted start, a fixed step budget, executed once per shard count.
// The synchronous daemon is the engine's exact daemon under sharding, so
// besides the wall-clock column the table checks that every shard count
// produces the byte-identical final configuration (a checksum mismatch counts
// as a violation).
//
// The speedup column is relative to the first shard count (conventionally 1,
// the sequential engine). On a single-CPU host the sharded runs cannot
// overlap, so the honest expectation there is speedup ≈ 1 with a small
// coordination overhead; the GOMAXPROCS note in the table records the
// parallelism the numbers were taken under.
func RunShardBench(n, steps int, shardCounts []int, seed int64) (Table, error) {
	if n <= 0 {
		n = 1_000_000
	}
	if steps <= 0 {
		steps = 12
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	if seed == 0 {
		seed = 1
	}
	t := Table{
		ID:      "SHARD",
		Title:   fmt.Sprintf("sharded synchronous engine: torus unison∘SDR, n≈%d, %d steps, seed %d", n, steps, seed),
		Columns: []string{"shards", "n", "steps", "moves", "resolve", "run", "speedup", "final-sum", "identical"},
	}
	var baseline time.Duration
	var baseSum uint64
	for i, k := range shardCounts {
		if k < 1 {
			return Table{}, fmt.Errorf("bench: shard count %d < 1", k)
		}
		spec := scenario.Spec{
			Algorithm: "unison",
			Topology:  "torus",
			N:         n,
			Daemon:    "synchronous",
			Fault:     "random-all",
			Seed:      seed,
			MaxSteps:  steps,
			Shards:    k,
		}
		resolveStart := time.Now()
		run, err := spec.Resolve()
		if err != nil {
			return Table{}, err
		}
		resolve := time.Since(resolveStart)
		// Run the engine directly, without the registry's stop-at-legitimacy
		// option: random-all corruption converges in a handful of synchronous
		// steps at any n, and after convergence unison keeps every process
		// enabled, so the full step budget measures steady-state throughput.
		runStart := time.Now()
		res := run.Engine.Run(run.Start, sim.WithMaxSteps(steps), sim.WithShards(k))
		elapsed := time.Since(runStart)
		sum := configChecksum(res.Final)
		if i == 0 {
			baseline, baseSum = elapsed, sum
		}
		identical := sum == baseSum
		if !identical {
			t.Violations++
		}
		t.AddRow(
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", res.Final.N()),
			fmt.Sprintf("%d", res.Steps),
			fmt.Sprintf("%d", res.Moves),
			fmt.Sprintf("%.2fs", resolve.Seconds()),
			fmt.Sprintf("%.2fs", elapsed.Seconds()),
			fmt.Sprintf("%.2fx", baseline.Seconds()/elapsed.Seconds()),
			fmt.Sprintf("%016x", sum),
			fmt.Sprintf("%v", identical),
		)
		// Two full state vectors per engine dominate the footprint at this
		// scale; release this run's before resolving the next.
		run = nil
		res = sim.Result{}
		runtime.GC()
	}
	t.AddNote("GOMAXPROCS=%d NumCPU=%d; speedup is wall-clock of the first row over each row", runtime.GOMAXPROCS(0), runtime.NumCPU())
	t.AddNote("synchronous sharding is exact: every row must reproduce the first row's final-sum")
	return t, nil
}

// configChecksum is an FNV-64a hash of the rendered per-process states, a
// cheap order-sensitive fingerprint of a final configuration.
func configChecksum(c *sim.Configuration) uint64 {
	h := fnv.New64a()
	c.ForEach(func(u int, s sim.State) {
		h.Write([]byte(s.String()))
		h.Write([]byte{'|'})
	})
	return h.Sum64()
}
