package bench

import (
	"fmt"
	"math/rand"

	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
	"sdr/internal/unison"
)

// Topology names a parameterised topology family used by the sweeps.
type Topology struct {
	// Name labels the family in result tables.
	Name string
	// Build returns a connected graph with (approximately) n nodes; families
	// with structural constraints (grids, hypercubes) may round n.
	Build func(n int, rng *rand.Rand) *graph.Graph
}

// StandardTopologies returns the topology families used across the
// experiment suite.
func StandardTopologies() []Topology {
	return []Topology{
		{Name: "ring", Build: func(n int, _ *rand.Rand) *graph.Graph { return graph.Ring(n) }},
		{Name: "tree", Build: func(n int, rng *rand.Rand) *graph.Graph { return graph.RandomTree(n, rng) }},
		{Name: "grid", Build: func(n int, _ *rand.Rand) *graph.Graph { return squareGrid(n) }},
		{Name: "random", Build: func(n int, rng *rand.Rand) *graph.Graph { return graph.RandomConnected(n, 0.25, rng) }},
	}
}

// DenseTopologies returns families whose degree grows with n, used by the
// alliance experiments (where Δ and m drive the bounds).
func DenseTopologies() []Topology {
	return []Topology{
		{Name: "complete", Build: func(n int, _ *rand.Rand) *graph.Graph { return graph.Complete(n) }},
		{Name: "random-dense", Build: func(n int, rng *rand.Rand) *graph.Graph { return graph.RandomConnected(n, 0.5, rng) }},
		{Name: "random-sparse", Build: func(n int, rng *rand.Rand) *graph.Graph { return graph.RandomConnected(n, 0.2, rng) }},
	}
}

// squareGrid builds the largest r×c grid with r·c ≤ n and r, c ≥ 2 as close
// to square as possible (falls back to a path for n < 4).
func squareGrid(n int) *graph.Graph {
	if n < 4 {
		return graph.Path(n)
	}
	rows := 2
	for r := 2; r*r <= n; r++ {
		rows = r
	}
	cols := n / rows
	return graph.Grid(rows, cols)
}

// measurement is one measured execution of a composition I ∘ SDR.
type measurement struct {
	result   sim.Result
	observer *core.Observer
	netSize  int
}

// runComposed runs the composed algorithm from the given start until it
// reaches a normal configuration (and keeps running to termination or the
// step bound when stopAtNormal is false), under the given daemon, recording
// the SDR observer quantities.
func runComposed(
	composed *core.Composed,
	net *sim.Network,
	daemon sim.Daemon,
	start *sim.Configuration,
	maxSteps int,
	stopAtNormal bool,
) measurement {
	observer := core.NewObserver(composed.Inner(), net)
	observer.Prime(start)
	opts := []sim.Option{
		sim.WithMaxSteps(maxSteps),
		sim.WithLegitimate(core.NormalPredicate(composed.Inner(), net)),
		sim.WithStepHook(observer.Hook()),
	}
	if stopAtNormal {
		opts = append(opts, sim.WithStopWhenLegitimate())
	}
	eng := sim.NewEngine(net, composed, daemon)
	res := eng.Run(start, opts...)
	return measurement{result: res, observer: observer, netSize: net.N()}
}

// unisonWorkload bundles the pieces of one U ∘ SDR measurement point.
type unisonWorkload struct {
	algo  *unison.Unison
	comp  *core.Composed
	net   *sim.Network
	graph *graph.Graph
}

// buildUnisonWorkload builds U ∘ SDR with the default period K = n+1 on the
// given topology.
func buildUnisonWorkload(top Topology, n int, rng *rand.Rand) unisonWorkload {
	g := top.Build(n, rng)
	u := unison.New(unison.DefaultPeriod(g.N()))
	return unisonWorkload{
		algo:  u,
		comp:  core.Compose(u),
		net:   sim.NewNetwork(g),
		graph: g,
	}
}

// corruptedStart builds a corrupted starting configuration for a composition
// using the named fault scenario.
func corruptedStart(scenario faults.Scenario, comp *core.Composed, net *sim.Network, rng *rand.Rand) *sim.Configuration {
	return scenario.Build(comp, comp.Inner(), net, rng)
}

// scenarioByName returns the standard fault scenario with the given name.
func scenarioByName(name string) faults.Scenario {
	for _, s := range faults.StandardScenarios() {
		if s.Name == name {
			return s
		}
	}
	panic(fmt.Sprintf("bench: unknown fault scenario %q", name))
}

// defaultDaemons returns the daemon factories used by the sweep experiments:
// the synchronous daemon (fast, deterministic) and a distributed random
// daemon (samples the unfair daemon).
func defaultDaemons() []sim.DaemonFactory {
	return []sim.DaemonFactory{
		{Name: "synchronous", New: func(int64) sim.Daemon { return sim.SynchronousDaemon{} }},
		{Name: "distributed-random", New: func(seed int64) sim.Daemon {
			return sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)
		}},
	}
}

// itoa formats an integer cell.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// ftoa formats a float cell with one decimal.
func ftoa(v float64) string { return fmt.Sprintf("%.1f", v) }

// boolCell formats a yes/no cell.
func boolCell(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}
