package bench

import (
	"fmt"

	"sdr/internal/core"
	"sdr/internal/scenario"
	"sdr/internal/sim"
)

// The experiment runners describe their workloads declaratively: each
// experiment is a scenario.Sweep (which algorithm × topology × daemon ×
// fault grid to run) plus the per-experiment metrics extracted from the
// results. All construction goes through the scenario registries; nothing in
// this package calls an algorithm, topology or daemon constructor directly.

// StandardTopologies returns the topology registry names used across the
// sweep experiments: bounded-degree families of increasing irregularity.
func StandardTopologies() []string {
	return []string{"ring", "tree", "grid", "random"}
}

// DenseTopologies returns the topology registry names whose degree grows
// with n, used by the alliance experiments (where Δ and m drive the bounds).
func DenseTopologies() []string {
	return []string{"complete", "random-dense", "random-sparse"}
}

// defaultDaemons returns the daemon registry names used by the sweep
// experiments: the synchronous daemon (fast, deterministic) and a
// distributed random daemon (samples the unfair daemon).
func defaultDaemons() []string {
	return []string{"synchronous", "distributed-random"}
}

// sweepFor assembles the scenario.Sweep of one experiment: the standard
// topology/daemon grid over the configured sizes, with the experiment's
// algorithms, fault models and trial-seed stride.
func sweepFor(cfg Config, stride int64, algorithms, topologies, daemons, faultModels []string) scenario.Sweep {
	return scenario.Sweep{
		Algorithms: algorithms,
		Topologies: topologies,
		Daemons:    daemons,
		Faults:     faultModels,
		Sizes:      cfg.Sizes,
		Trials:     cfg.Trials,
		Seed:       cfg.Seed,
		SeedStride: stride,
		MaxSteps:   cfg.MaxSteps,
	}
}

// measurement is one measured execution of a resolved scenario.
type measurement struct {
	run      *scenario.Run
	result   sim.Result
	observer *core.Observer
}

// runObserved resolves and executes the spec with a primed reset observer
// hooked into the run (compositions only; the observer is nil otherwise).
// Non-terminating algorithms stop at their first legitimate configuration —
// for compositions this loses no SDR activity, since the normal set is
// closed and SDR rules are disabled in it. extra options (memo shares) are
// appended.
func runObserved(sp scenario.Spec, extra ...sim.Option) measurement {
	run := sp.MustResolve()
	observer := run.Observer()
	var opts []sim.Option
	if observer != nil {
		opts = append(opts, sim.WithStepHook(observer.Hook()))
	}
	opts = append(opts, extra...)
	res := run.Execute(opts...)
	return measurement{run: run, result: res, observer: observer}
}

// runPlain resolves and executes the spec without instrumentation.
func runPlain(sp scenario.Spec, extra ...sim.Option) measurement {
	run := sp.MustResolve()
	return measurement{run: run, result: run.Execute(extra...)}
}

// itoa formats an integer cell.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// ftoa formats a float cell with one decimal.
func ftoa(v float64) string { return fmt.Sprintf("%.1f", v) }

// boolCell formats a yes/no cell.
func boolCell(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}
