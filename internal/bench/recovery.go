package bench

import (
	"errors"
	"fmt"

	"sdr/internal/scenario"
	"sdr/internal/sim"
	"sdr/internal/stats"
)

// RunRecovery runs a churn sweep — algorithm × topology × size × daemon ×
// fault × churn schedule — and renders one RECOVERY row per cell with the
// per-event re-stabilization costs: how many events fired, how many the
// system recovered from, the p50/p95 recovery rounds and mean recovery moves
// pooled over every recovered event of every trial, and the mean availability
// (fraction of steps spent in a legitimate configuration). It is the
// -churn mode of cmd/sdrbench.
//
// Per-trial seeding makes the table bit-identical at every parallelism
// level: each trial resolves its own scenario (and hence its own single-use
// churn injector) from a seed derived only from the sweep's base seed and the
// trial index. Only cfg's execution knobs are read (Parallel, MemoOff,
// MemoCap); the grid itself comes from sw.
func RunRecovery(sw scenario.Sweep, cfg Config) (Table, error) {
	if len(sw.Churns) == 0 {
		return Table{}, fmt.Errorf("bench: recovery sweep needs at least one churn schedule (see scenario.ChurnSchedules)")
	}
	for _, c := range sw.Churns {
		if c == "" {
			return Table{}, fmt.Errorf("bench: recovery sweep churn schedules must be non-empty")
		}
	}
	if err := sw.Validate(); err != nil {
		return Table{}, err
	}
	if sw.Shards > 1 {
		// Sharded cells run unmemoized, as in RunSweep.
		cfg.MemoOff = true
	}
	trials := sw.Trials
	if trials <= 0 {
		trials = 1
		sw.Trials = 1
	}
	t := Table{
		ID:    "RECOVERY",
		Title: fmt.Sprintf("mid-run churn: per-event re-stabilization costs (%d trials per cell, base seed %d)", trials, sw.Seed),
		Columns: []string{"algorithm", "topology", "n", "daemon", "fault", "churn",
			"events", "recovered", "rec-rounds(p50)", "rec-rounds(p95)", "rec-moves(mean)", "avail(mean)", "memo-hit%", "ok"},
	}
	cells := sw.Cells()
	shares := cfg.memoShares(len(cells))
	type trial struct {
		events, recovered int
		recRounds         []float64
		recMoves          []int
		availability      float64
		memo              sim.MemoStats
		legitimate, ok    bool
		skipped           bool
		err               error
	}
	results := MapGridWarm(cfg.Parallel, len(cells), trials, func(ci, tr int) trial {
		run, err := sw.Trial(cells[ci], tr).Resolve()
		if err != nil {
			return trial{skipped: errors.Is(err, scenario.ErrUnsatisfiable), err: err}
		}
		res := run.Execute(memoOpt(shares, ci, tr)...)
		out := trial{
			events:       len(res.Events),
			availability: res.Availability(),
			memo:         res.Memo,
			legitimate:   res.LegitimateReached,
			ok:           run.Report(res).OK,
		}
		for _, ev := range res.Events {
			if ev.Recovered {
				out.recovered++
				out.recRounds = append(out.recRounds, float64(ev.RecoveryRounds))
				out.recMoves = append(out.recMoves, ev.RecoveryMoves)
			}
		}
		return out
	})
	for ci, c := range cells {
		var recRounds []float64
		var recMoves []int
		var avail []float64
		var memo sim.MemoStats
		events, recovered, skipped := 0, 0, 0
		ran, ok := 0, true
		for _, tr := range results[ci] {
			if tr.err != nil {
				if !tr.skipped {
					return Table{}, tr.err
				}
				skipped++
				continue
			}
			ran++
			events += tr.events
			recovered += tr.recovered
			recRounds = append(recRounds, tr.recRounds...)
			recMoves = append(recMoves, tr.recMoves...)
			avail = append(avail, tr.availability)
			memo.Add(tr.memo)
			ok = ok && tr.ok
		}
		if ran == 0 {
			t.AddRow(c.Algorithm, c.Topology, itoa(c.N), c.Daemon, c.Fault, c.Churn,
				"skipped", "-", "-", "-", "-", "-", "-", boolCell(true))
			continue
		}
		if skipped > 0 {
			t.AddNote("%s/%s n=%d: %d of %d trials skipped as unsatisfiable", c.Algorithm, c.Topology, c.N, skipped, trials)
		}
		// A cell is in violation when an event was never recovered from
		// within the step budget, or the final output failed its check.
		ok = ok && recovered == events
		if !ok {
			t.Violations++
		}
		p50, p95 := "-", "-"
		movesMean := "-"
		if len(recRounds) > 0 {
			p50 = ftoa(stats.Percentile(recRounds, 50))
			p95 = ftoa(stats.Percentile(recRounds, 95))
			movesMean = ftoa(stats.SummarizeInts(recMoves).Mean)
		}
		t.AddRow(c.Algorithm, c.Topology, itoa(c.N), c.Daemon, c.Fault, c.Churn,
			itoa(events), itoa(recovered), p50, p95, movesMean,
			fmt.Sprintf("%.3f", stats.Summarize(avail).Mean), memoHitCell(memo), boolCell(ok))
	}
	return t, nil
}
