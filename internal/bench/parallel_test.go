package bench

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestMapGridOrderAndCoverage(t *testing.T) {
	var calls atomic.Int64
	for _, workers := range []int{0, 1, 3, 16} {
		calls.Store(0)
		got := MapGrid(workers, 4, 3, func(cell, trial int) [2]int {
			calls.Add(1)
			return [2]int{cell, trial}
		})
		if calls.Load() != 12 {
			t.Fatalf("workers=%d: %d calls, want 12", workers, calls.Load())
		}
		for c := 0; c < 4; c++ {
			for tr := 0; tr < 3; tr++ {
				if got[c][tr] != [2]int{c, tr} {
					t.Fatalf("workers=%d: result[%d][%d] = %v", workers, c, tr, got[c][tr])
				}
			}
		}
	}
}

// TestMapGridWarmBarrier pins the warm-up contract the memo-share protocol
// rests on: every cell's trial 0 completes before any trial ≥ 1 of any cell
// starts, and the combined results still cover the grid in order.
func TestMapGridWarmBarrier(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var warmDone atomic.Int64
		got := MapGridWarm(workers, 4, 3, func(cell, trial int) [2]int {
			if trial == 0 {
				warmDone.Add(1)
			} else if warmDone.Load() != 4 {
				t.Errorf("workers=%d: trial %d of cell %d started with only %d warm trials done",
					workers, trial, cell, warmDone.Load())
			}
			return [2]int{cell, trial}
		})
		for c := 0; c < 4; c++ {
			for tr := 0; tr < 3; tr++ {
				if got[c][tr] != [2]int{c, tr} {
					t.Fatalf("workers=%d: result[%d][%d] = %v", workers, c, tr, got[c][tr])
				}
			}
		}
	}
	if got := MapGridWarm(2, 2, 1, func(cell, trial int) int { return cell*10 + trial }); !reflect.DeepEqual(got, [][]int{{0}, {10}}) {
		t.Fatalf("single-trial grid = %v", got)
	}
}

// TestMapGridContextCancel pins the cancellation contract server jobs abort
// through: a cancelled context stops further dispatch, in-flight calls
// complete, and the executed pairs form a prefix of (cell, trial) order.
func TestMapGridContextCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var calls atomic.Int64
		got := MapGridContext(ctx, workers, 3, 3, func(cell, trial int) bool {
			calls.Add(1)
			return true
		})
		// A context cancelled before dispatch runs nothing (the buffered
		// dispatch channel may admit up to `workers` in-flight pairs after a
		// mid-grid cancel, but never before the first dispatch attempt).
		if workers == 1 && calls.Load() != 0 {
			t.Fatalf("workers=%d: %d calls after pre-cancelled context, want 0", workers, calls.Load())
		}
		executed := 0
		prefixEnded := false
		for c := 0; c < 3; c++ {
			for tr := 0; tr < 3; tr++ {
				if got[c][tr] {
					if prefixEnded {
						t.Fatalf("workers=%d: executed pair (%d,%d) after a gap — not a prefix", workers, c, tr)
					}
					executed++
				} else {
					prefixEnded = true
				}
			}
		}
		if int64(executed) != calls.Load() {
			t.Fatalf("workers=%d: %d executed results vs %d calls", workers, executed, calls.Load())
		}
	}
}

// TestMapGridContextMidCancel cancels mid-grid from inside fn and checks the
// executed set is still a contiguous prefix.
func TestMapGridContextMidCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := MapGridContext(ctx, 1, 2, 4, func(cell, trial int) bool {
		if cell == 0 && trial == 2 {
			cancel()
		}
		return true
	})
	want := [][]bool{{true, true, true, false}, {false, false, false, false}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mid-grid cancel executed %v, want %v", got, want)
	}
}

func TestMapGridEmptyGrid(t *testing.T) {
	got := MapGrid(8, 0, 5, func(cell, trial int) int { t.Fatal("must not be called"); return 0 })
	if len(got) != 0 {
		t.Fatalf("empty grid returned %v", got)
	}
}

// TestParallelTrialsDeterministic is the determinism contract of the worker
// pool: the same configuration must produce bit-identical tables whether the
// (cell × trial) grid runs sequentially or fanned out, because every trial
// derives all randomness from its own seed.
func TestParallelTrialsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism sweep skipped in -short mode")
	}
	cfg := Config{Sizes: []int{6}, Trials: 2, Seed: 11, MaxSteps: 200_000}
	for _, e := range []string{"E1", "E6", "E9", "A2"} {
		exp, err := ExperimentByID(e)
		if err != nil {
			t.Fatal(err)
		}
		sequential := cfg
		sequential.Parallel = 1
		parallel := cfg
		parallel.Parallel = 4
		seqTable := exp.Run(sequential)
		parTable := exp.Run(parallel)
		if !reflect.DeepEqual(seqTable, parTable) {
			t.Errorf("%s: parallel table differs from sequential table:\n%+v\n%+v", e, parTable, seqTable)
		}
	}
}
