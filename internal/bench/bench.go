// Package bench is the experiment harness of the reproduction: one runner per
// quantitative claim of the paper (experiments E1-E10 of DESIGN.md) plus the
// ablations A1-A3. The same runners back the root-level testing.B benchmarks
// and the cmd/sdrbench CLI, so the tables printed by both always agree.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config sizes an experiment run. Quick configurations keep unit tests and
// testing.B iterations fast; the full configuration is what cmd/sdrbench
// uses to regenerate the complete tables.
type Config struct {
	// Sizes is the sweep of network sizes n.
	Sizes []int
	// Trials is the number of random repetitions per point (different seeds,
	// corrupted starts and daemon randomness).
	Trials int
	// Seed is the base seed; every trial derives its own seed from it.
	Seed int64
	// MaxSteps bounds each simulated execution.
	MaxSteps int
	// Parallel is the maximum number of concurrently executed trials;
	// values ≤ 1 run the grid sequentially. Per-trial seeding makes the
	// tables identical for every value.
	Parallel int
	// MemoOff disables cross-trial transition memoization. The zero value
	// keeps it on: trial 0 of every cell fills the cell's neighbourhood →
	// enabled-rules table and the remaining trials share it read-only.
	// Memoized tables are bit-identical to unmemoized ones; the switch only
	// exists for A/B timing and debugging.
	MemoOff bool
	// MemoCap bounds the per-cell memo table entry count; 0 means
	// sim.DefaultMemoEntries. Past the cap trials fall back to direct guard
	// evaluation for uncached neighbourhoods.
	MemoCap int
	// Shards is the engine shard count sweeps run their cells on (see
	// sim.WithShards); 0 or 1 means the sequential engine. Sharded cells run
	// unmemoized: the memo table is not safe for concurrent guard evaluation,
	// so the sweep runners drop their memo shares when Shards > 1.
	Shards int
}

// QuickConfig returns the configuration used by unit tests and by the
// testing.B benchmarks: small sizes, few trials.
func QuickConfig() Config {
	return Config{
		Sizes:    []int{8, 12, 16},
		Trials:   3,
		Seed:     1,
		MaxSteps: 400_000,
	}
}

// FullConfig returns the configuration used by cmd/sdrbench to regenerate
// the complete experiment tables.
func FullConfig() Config {
	return Config{
		Sizes:    []int{8, 16, 24, 32, 48, 64},
		Trials:   5,
		Seed:     1,
		MaxSteps: 4_000_000,
	}
}

// withDefaults fills zero fields from QuickConfig so that partially
// constructed configurations behave sensibly.
func (c Config) withDefaults() Config {
	q := QuickConfig()
	if len(c.Sizes) == 0 {
		c.Sizes = q.Sizes
	}
	if c.Trials <= 0 {
		c.Trials = q.Trials
	}
	if c.Seed == 0 {
		c.Seed = q.Seed
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = q.MaxSteps
	}
	return c
}

// Table is one experiment's result table: the rows cmd/sdrbench prints and
// EXPERIMENTS.md records.
type Table struct {
	// ID is the experiment identifier (E1, ..., A3).
	ID string
	// Title describes the paper claim the table checks.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows (cells already formatted).
	Rows [][]string
	// Notes carries free-form observations (e.g. growth-exponent fits).
	Notes []string
	// Violations counts rows in which a measured cost exceeded the proven
	// bound or a correctness check failed; 0 means the experiment agrees with
	// the paper.
	Violations int
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return fmt.Errorf("bench: render table: %w", err)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, cell)
		}
		_, err := fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return fmt.Errorf("bench: render table: %w", err)
	}
	if err := writeRow(separators(widths)); err != nil {
		return fmt.Errorf("bench: render table: %w", err)
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return fmt.Errorf("bench: render table: %w", err)
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", note); err != nil {
			return fmt.Errorf("bench: render table: %w", err)
		}
	}
	status := "OK (all measurements within the proven bounds)"
	if t.Violations > 0 {
		status = fmt.Sprintf("VIOLATIONS: %d row(s) exceeded a bound or failed a check", t.Violations)
	}
	if _, err := fmt.Fprintf(w, "  %s\n", status); err != nil {
		return fmt.Errorf("bench: render table: %w", err)
	}
	return nil
}

// Markdown renders the table as a GitHub-flavoured markdown table, used to
// regenerate the EXPERIMENTS.md sections.
func (t *Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return fmt.Errorf("bench: render markdown: %w", err)
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return fmt.Errorf("bench: render markdown: %w", err)
	}
	if _, err := fmt.Fprintf(w, "|%s\n", strings.Repeat("---|", len(t.Columns))); err != nil {
		return fmt.Errorf("bench: render markdown: %w", err)
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return fmt.Errorf("bench: render markdown: %w", err)
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", note); err != nil {
			return fmt.Errorf("bench: render markdown: %w", err)
		}
	}
	_, err := fmt.Fprintln(w)
	if err != nil {
		return fmt.Errorf("bench: render markdown: %w", err)
	}
	return nil
}

// JSON writes the table as an indented JSON object, the machine-readable
// form behind cmd/sdrbench -json (one BENCH_<ID>.json per table), so the
// benchmark trajectory can be tracked across revisions instead of only
// pretty-printed.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("bench: render json: %w", err)
	}
	return nil
}

func separators(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	// ID is the experiment identifier (E1, ..., E10, A1, ..., A3).
	ID string
	// Title summarises the paper claim being reproduced.
	Title string
	// Run regenerates the experiment's table under the given configuration.
	Run func(cfg Config) Table
}

// Experiments returns every experiment of the suite, in the order of the
// per-experiment index of DESIGN.md.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "SDR reaches a normal configuration within 3n rounds (Corollary 5)", Run: RunE1ResetRounds},
		{ID: "E2", Title: "each process executes at most 3n+3 SDR moves (Corollary 4)", Run: RunE2ResetMovesPerProcess},
		{ID: "E3", Title: "at most n+1 segments and no alive-root creation (Theorem 3, Remark 5)", Run: RunE3Segments},
		{ID: "E4", Title: "U∘SDR stabilizes within 3n rounds (Theorem 7)", Run: RunE4UnisonRounds},
		{ID: "E5", Title: "U∘SDR stabilizes in O(D·n²) moves (Theorem 6)", Run: RunE5UnisonMoves},
		{ID: "E6", Title: "U∘SDR vs the BPV baseline in stabilization moves (Section 5.3)", Run: RunE6UnisonVsBPV},
		{ID: "E7", Title: "FGA terminates in O(Δ·m) moves (Corollary 11)", Run: RunE7FGAMoves},
		{ID: "E8", Title: "FGA terminates within 5n+4 rounds from clean states (Theorem 10)", Run: RunE8FGARounds},
		{ID: "E9", Title: "FGA∘SDR stabilizes in O(Δ·n·m) moves and 8n+4 rounds (Theorems 12-14)", Run: RunE9AllianceStabilization},
		{ID: "E10", Title: "outputs are correct: 1-minimal alliances and unison safety/liveness (Theorems 8, 11; Corollary 7)", Run: RunE10Correctness},
		{ID: "A1", Title: "ablation: cooperative vs uncooperative resets", Run: RunA1NoCooperation},
		{ID: "A2", Title: "ablation: daemon sensitivity", Run: RunA2Daemons},
		{ID: "A3", Title: "ablation: unison period sensitivity", Run: RunA3Period},
		{ID: "X1", Title: "extension: silent self-stabilizing BFS spanning tree via B∘SDR", Run: RunX1SpanningTree},
	}
}

// ExperimentByID returns the experiment with the given identifier
// (case-insensitive), or an error listing the known identifiers.
func ExperimentByID(id string) (Experiment, error) {
	want := strings.ToUpper(strings.TrimSpace(id))
	var known []string
	for _, e := range Experiments() {
		if e.ID == want {
			return e, nil
		}
		known = append(known, e.ID)
	}
	sort.Strings(known)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (known: %s)", id, strings.Join(known, ", "))
}

// RunAll runs every experiment and returns the tables in suite order.
func RunAll(cfg Config) []Table {
	var tables []Table
	for _, e := range Experiments() {
		tables = append(tables, e.Run(cfg))
	}
	return tables
}
