package bench

import (
	"bytes"
	"reflect"
	"testing"

	"sdr/internal/scenario"
)

func verifyTestSweep() scenario.Sweep {
	return scenario.Sweep{
		Algorithms: []string{"unison", "dominating-set"},
		Topologies: []string{"ring"},
		Faults:     []string{"random-all"},
		Sizes:      []int{4, 5},
		Seed:       1,
	}
}

func TestRunVerifyCertifiesGrid(t *testing.T) {
	table, err := RunVerify(verifyTestSweep(), VerifyConfig{Starts: 3, MaxSelectionSize: 1, Workers: 2}, 1)
	if err != nil {
		t.Fatalf("RunVerify: %v", err)
	}
	if got, want := len(table.Rows), 4; got != want {
		t.Fatalf("verify table has %d rows, want %d", got, want)
	}
	if table.Violations != 0 {
		var buf bytes.Buffer
		_ = table.Render(&buf)
		t.Fatalf("verification reported violations:\n%s", buf.String())
	}
	verdictCol := len(table.Columns) - 1
	for _, row := range table.Rows {
		if row[verdictCol] != "certified" {
			t.Errorf("cell %v not certified", row)
		}
	}
}

// TestRunVerifyParallelDeterministic pins the acceptance property: the table
// is bit-identical whether the cells and explorations run sequentially or
// fanned out over worker pools.
func TestRunVerifyParallelDeterministic(t *testing.T) {
	sequential, err := RunVerify(verifyTestSweep(), VerifyConfig{Starts: 3, MaxSelectionSize: 1, Workers: 1}, 1)
	if err != nil {
		t.Fatalf("sequential RunVerify: %v", err)
	}
	parallel, err := RunVerify(verifyTestSweep(), VerifyConfig{Starts: 3, MaxSelectionSize: 1, Workers: 6}, 4)
	if err != nil {
		t.Fatalf("parallel RunVerify: %v", err)
	}
	if !reflect.DeepEqual(sequential, parallel) {
		t.Errorf("parallel verification table diverged:\n%+v\nvs\n%+v", sequential, parallel)
	}
}

func TestRunVerifySkipsUnsatisfiableCells(t *testing.T) {
	sw := scenario.Sweep{
		Algorithms: []string{"2-tuple-domination"},
		Topologies: []string{"path"},
		Faults:     []string{"random-all"},
		Sizes:      []int{5},
		Seed:       1,
	}
	table, err := RunVerify(sw, VerifyConfig{Starts: 2, MaxSelectionSize: 1}, 1)
	if err != nil {
		t.Fatalf("RunVerify: %v", err)
	}
	if len(table.Rows) != 1 || table.Rows[0][len(table.Columns)-1] != "skipped" {
		t.Fatalf("unsatisfiable cell not skipped: %v", table.Rows)
	}
	if table.Violations != 0 {
		t.Errorf("a skipped cell must not count as a violation")
	}
}

// TestRunVerifyReportsTruncation asserts a configuration cap too small to
// cover the reachable space yields an incomplete verdict and a violation,
// not a silent pass.
func TestRunVerifyReportsTruncation(t *testing.T) {
	sw := verifyTestSweep()
	sw.Algorithms = []string{"unison"}
	sw.Sizes = []int{5}
	table, err := RunVerify(sw, VerifyConfig{Starts: 3, MaxSelectionSize: 1, MaxConfigurations: 20}, 1)
	if err != nil {
		t.Fatalf("RunVerify: %v", err)
	}
	if table.Violations != 1 {
		t.Errorf("truncated cell must count as a violation, table: %+v", table)
	}
	verdictCol := len(table.Columns) - 1
	if table.Rows[0][verdictCol] != "incomplete" {
		t.Errorf("verdict = %q, want incomplete", table.Rows[0][verdictCol])
	}
}

func TestRunVerifyRejectsUnverifiableAlgorithm(t *testing.T) {
	sw := verifyTestSweep()
	sw.Algorithms = []string{"unison-standalone"}
	if _, err := RunVerify(sw, VerifyConfig{}, 1); err == nil {
		t.Error("an algorithm without a legitimacy predicate must fail the verify sweep")
	}
}
