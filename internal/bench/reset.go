package bench

import (
	"math/rand"

	"sdr/internal/core"
	"sdr/internal/sim"
	"sdr/internal/stats"
)

// Experiments E1-E3 exercise the reset layer itself (with Algorithm U as the
// inner algorithm): the round bound of Corollary 5, the per-process SDR move
// bound of Corollary 4, and the segment / alive-root structure of Theorem 3
// and Remark 5.

// sweepCell is one (topology, size, daemon) point of the standard sweep.
type sweepCell struct {
	top Topology
	n   int
	df  sim.DaemonFactory
}

// standardSweepCells enumerates the (topology × size × daemon) grid in table
// order.
func standardSweepCells(cfg Config) []sweepCell {
	var cells []sweepCell
	for _, top := range StandardTopologies() {
		for _, n := range cfg.Sizes {
			for _, df := range defaultDaemons() {
				cells = append(cells, sweepCell{top: top, n: n, df: df})
			}
		}
	}
	return cells
}

// RunE1ResetRounds measures, over the standard topology/daemon/fault sweep,
// the number of rounds until the composition reaches a normal configuration,
// and compares it to the 3n bound of Corollary 5.
func RunE1ResetRounds(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E1",
		Title:   "rounds to reach a normal configuration vs the 3n bound (Corollary 5)",
		Columns: []string{"topology", "n", "daemon", "scenario", "rounds(max)", "rounds(mean)", "bound 3n", "within"},
	}
	scenario := scenarioByName("random-all")
	cells := standardSweepCells(cfg)
	type trial struct{ rounds, bound int }
	results := mapGrid(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		c := cells[ci]
		seed := cfg.Seed + int64(tr)*1001
		rng := rand.New(rand.NewSource(seed))
		w := buildUnisonWorkload(c.top, c.n, rng)
		start := corruptedStart(scenario, w.comp, w.net, rng)
		m := runComposed(w.comp, w.net, c.df.New(seed), start, cfg.MaxSteps, true)
		return trial{rounds: m.result.StabilizationRounds, bound: core.MaxResetRounds(w.net.N())}
	})
	for ci, c := range cells {
		var rounds []int
		bound := 0
		for _, tr := range results[ci] {
			rounds = append(rounds, tr.rounds)
			bound = tr.bound
		}
		summary := stats.SummarizeInts(rounds)
		within := summary.Max <= float64(bound) && summary.Min >= 0
		if !within {
			t.Violations++
		}
		t.AddRow(c.top.Name, itoa(c.n), c.df.Name, scenario.Name,
			itoa(int(summary.Max)), ftoa(summary.Mean), itoa(bound), boolCell(within))
	}
	return t
}

// RunE2ResetMovesPerProcess measures the maximum number of SDR-rule moves any
// single process executes during a whole run, and compares it to the 3n+3
// bound of Corollary 4.
func RunE2ResetMovesPerProcess(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E2",
		Title:   "maximum SDR moves per process vs the 3n+3 bound (Corollary 4)",
		Columns: []string{"topology", "n", "daemon", "scenario", "sdr-moves/proc(max)", "bound 3n+3", "within"},
	}
	type cell struct {
		sweepCell
		scenarioName string
	}
	var cells []cell
	for _, top := range StandardTopologies() {
		for _, n := range cfg.Sizes {
			for _, df := range defaultDaemons() {
				for _, scenarioName := range []string{"random-all", "fake-wave"} {
					cells = append(cells, cell{sweepCell{top, n, df}, scenarioName})
				}
			}
		}
	}
	type trial struct{ maxMoves, bound int }
	results := mapGrid(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		c := cells[ci]
		seed := cfg.Seed + int64(tr)*2003
		rng := rand.New(rand.NewSource(seed))
		w := buildUnisonWorkload(c.top, c.n, rng)
		start := corruptedStart(scenarioByName(c.scenarioName), w.comp, w.net, rng)
		// Stopping at the first normal configuration loses no SDR activity:
		// the normal set is closed, and SDR rules are disabled in it.
		m := runComposed(w.comp, w.net, c.df.New(seed), start, cfg.MaxSteps, true)
		return trial{maxMoves: m.observer.MaxSDRMoves(), bound: core.MaxSDRMovesPerProcess(w.net.N())}
	})
	for ci, c := range cells {
		maxMoves, bound := 0, 0
		for _, tr := range results[ci] {
			maxMoves = maxInt(maxMoves, tr.maxMoves)
			bound = tr.bound
		}
		within := maxMoves <= bound
		if !within {
			t.Violations++
		}
		t.AddRow(c.top.Name, itoa(c.n), c.df.Name, c.scenarioName, itoa(maxMoves), itoa(bound), boolCell(within))
	}
	return t
}

// RunE3Segments measures the number of segments of each execution and checks
// that no alive root is ever created and that the per-segment SDR rule
// sequence of every process matches the language of Theorem 4.
func RunE3Segments(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E3",
		Title:   "segments, alive-root creations and the Theorem 4 rule language",
		Columns: []string{"topology", "n", "daemon", "segments(max)", "bound n+1", "root-creations", "language-ok", "within"},
	}
	scenario := scenarioByName("random-all")
	cells := standardSweepCells(cfg)
	type trial struct {
		segments, bound, rootCreations int
		languageOK                     bool
	}
	results := mapGrid(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		c := cells[ci]
		seed := cfg.Seed + int64(tr)*3001
		rng := rand.New(rand.NewSource(seed))
		w := buildUnisonWorkload(c.top, c.n, rng)
		start := corruptedStart(scenario, w.comp, w.net, rng)
		// As in E2, the SDR-level quantities are fully determined before the
		// first normal configuration.
		m := runComposed(w.comp, w.net, c.df.New(seed), start, cfg.MaxSteps, true)
		return trial{
			segments:      m.observer.Segments(),
			bound:         core.MaxSegments(w.net.N()),
			rootCreations: m.observer.AliveRootViolations(),
			languageOK:    m.observer.LanguageViolation() == "",
		}
	})
	for ci, c := range cells {
		maxSegments, rootCreations, bound := 0, 0, 0
		languageOK := true
		for _, tr := range results[ci] {
			maxSegments = maxInt(maxSegments, tr.segments)
			rootCreations += tr.rootCreations
			bound = tr.bound
			languageOK = languageOK && tr.languageOK
		}
		within := maxSegments <= bound && rootCreations == 0 && languageOK
		if !within {
			t.Violations++
		}
		t.AddRow(c.top.Name, itoa(c.n), c.df.Name,
			itoa(maxSegments), itoa(bound), itoa(rootCreations), boolCell(languageOK), boolCell(within))
	}
	return t
}
