package bench

import (
	"math/rand"

	"sdr/internal/core"
	"sdr/internal/stats"
)

// Experiments E1-E3 exercise the reset layer itself (with Algorithm U as the
// inner algorithm): the round bound of Corollary 5, the per-process SDR move
// bound of Corollary 4, and the segment / alive-root structure of Theorem 3
// and Remark 5.

// RunE1ResetRounds measures, over the standard topology/daemon/fault sweep,
// the number of rounds until the composition reaches a normal configuration,
// and compares it to the 3n bound of Corollary 5.
func RunE1ResetRounds(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E1",
		Title:   "rounds to reach a normal configuration vs the 3n bound (Corollary 5)",
		Columns: []string{"topology", "n", "daemon", "scenario", "rounds(max)", "rounds(mean)", "bound 3n", "within"},
	}
	scenario := scenarioByName("random-all")
	for _, top := range StandardTopologies() {
		for _, n := range cfg.Sizes {
			for _, df := range defaultDaemons() {
				var rounds []int
				bound := 0
				for trial := 0; trial < cfg.Trials; trial++ {
					seed := cfg.Seed + int64(trial)*1001
					rng := rand.New(rand.NewSource(seed))
					w := buildUnisonWorkload(top, n, rng)
					bound = core.MaxResetRounds(w.net.N())
					start := corruptedStart(scenario, w.comp, w.net, rng)
					m := runComposed(w.comp, w.net, df.New(seed), start, cfg.MaxSteps, true)
					rounds = append(rounds, m.result.StabilizationRounds)
				}
				summary := stats.SummarizeInts(rounds)
				within := summary.Max <= float64(bound) && summary.Min >= 0
				if !within {
					t.Violations++
				}
				t.AddRow(top.Name, itoa(n), df.Name, scenario.Name,
					itoa(int(summary.Max)), ftoa(summary.Mean), itoa(bound), boolCell(within))
			}
		}
	}
	return t
}

// RunE2ResetMovesPerProcess measures the maximum number of SDR-rule moves any
// single process executes during a whole run, and compares it to the 3n+3
// bound of Corollary 4.
func RunE2ResetMovesPerProcess(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E2",
		Title:   "maximum SDR moves per process vs the 3n+3 bound (Corollary 4)",
		Columns: []string{"topology", "n", "daemon", "scenario", "sdr-moves/proc(max)", "bound 3n+3", "within"},
	}
	for _, top := range StandardTopologies() {
		for _, n := range cfg.Sizes {
			for _, df := range defaultDaemons() {
				for _, scenarioName := range []string{"random-all", "fake-wave"} {
					scenario := scenarioByName(scenarioName)
					maxMoves := 0
					bound := 0
					for trial := 0; trial < cfg.Trials; trial++ {
						seed := cfg.Seed + int64(trial)*2003
						rng := rand.New(rand.NewSource(seed))
						w := buildUnisonWorkload(top, n, rng)
						bound = core.MaxSDRMovesPerProcess(w.net.N())
						start := corruptedStart(scenario, w.comp, w.net, rng)
						// Stopping at the first normal configuration loses no
						// SDR activity: the normal set is closed, and SDR
						// rules are disabled in it.
						m := runComposed(w.comp, w.net, df.New(seed), start, cfg.MaxSteps, true)
						if mm := m.observer.MaxSDRMoves(); mm > maxMoves {
							maxMoves = mm
						}
					}
					within := maxMoves <= bound
					if !within {
						t.Violations++
					}
					t.AddRow(top.Name, itoa(n), df.Name, scenarioName, itoa(maxMoves), itoa(bound), boolCell(within))
				}
			}
		}
	}
	return t
}

// RunE3Segments measures the number of segments of each execution and checks
// that no alive root is ever created and that the per-segment SDR rule
// sequence of every process matches the language of Theorem 4.
func RunE3Segments(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E3",
		Title:   "segments, alive-root creations and the Theorem 4 rule language",
		Columns: []string{"topology", "n", "daemon", "segments(max)", "bound n+1", "root-creations", "language-ok", "within"},
	}
	scenario := scenarioByName("random-all")
	for _, top := range StandardTopologies() {
		for _, n := range cfg.Sizes {
			for _, df := range defaultDaemons() {
				maxSegments, rootCreations := 0, 0
				languageOK := true
				bound := 0
				for trial := 0; trial < cfg.Trials; trial++ {
					seed := cfg.Seed + int64(trial)*3001
					rng := rand.New(rand.NewSource(seed))
					w := buildUnisonWorkload(top, n, rng)
					bound = core.MaxSegments(w.net.N())
					start := corruptedStart(scenario, w.comp, w.net, rng)
					// As in E2, the SDR-level quantities are fully determined
					// before the first normal configuration.
					m := runComposed(w.comp, w.net, df.New(seed), start, cfg.MaxSteps, true)
					if s := m.observer.Segments(); s > maxSegments {
						maxSegments = s
					}
					rootCreations += m.observer.AliveRootViolations()
					if m.observer.LanguageViolation() != "" {
						languageOK = false
					}
				}
				within := maxSegments <= bound && rootCreations == 0 && languageOK
				if !within {
					t.Violations++
				}
				t.AddRow(top.Name, itoa(n), df.Name,
					itoa(maxSegments), itoa(bound), itoa(rootCreations), boolCell(languageOK), boolCell(within))
			}
		}
	}
	return t
}
