package bench

import (
	"sdr/internal/core"
	"sdr/internal/stats"
)

// Experiments E1-E3 exercise the reset layer itself (with Algorithm U as the
// inner algorithm): the round bound of Corollary 5, the per-process SDR move
// bound of Corollary 4, and the segment / alive-root structure of Theorem 3
// and Remark 5. Each is a declarative sweep over the standard grid; the
// scenario registries do all the construction.

// RunE1ResetRounds measures, over the standard topology/daemon/fault sweep,
// the number of rounds until the composition reaches a normal configuration,
// and compares it to the 3n bound of Corollary 5.
func RunE1ResetRounds(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E1",
		Title:   "rounds to reach a normal configuration vs the 3n bound (Corollary 5)",
		Columns: []string{"topology", "n", "daemon", "scenario", "rounds(max)", "rounds(mean)", "bound 3n", "within"},
	}
	sweep := sweepFor(cfg, 1001, []string{"unison"}, StandardTopologies(), defaultDaemons(), []string{"random-all"})
	cells := sweep.Cells()
	shares := cfg.memoShares(len(cells))
	type trial struct{ rounds, bound int }
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		m := runObserved(sweep.Trial(cells[ci], tr), memoOpt(shares, ci, tr)...)
		return trial{rounds: m.result.StabilizationRounds, bound: core.MaxResetRounds(m.run.Net.N())}
	})
	for ci, c := range cells {
		var rounds []int
		bound := 0
		for _, tr := range results[ci] {
			rounds = append(rounds, tr.rounds)
			bound = tr.bound
		}
		summary := stats.SummarizeInts(rounds)
		within := summary.Max <= float64(bound) && summary.Min >= 0
		if !within {
			t.Violations++
		}
		t.AddRow(c.Topology, itoa(c.N), c.Daemon, c.Fault,
			itoa(int(summary.Max)), ftoa(summary.Mean), itoa(bound), boolCell(within))
	}
	return t
}

// RunE2ResetMovesPerProcess measures the maximum number of SDR-rule moves any
// single process executes during a whole run, and compares it to the 3n+3
// bound of Corollary 4.
func RunE2ResetMovesPerProcess(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E2",
		Title:   "maximum SDR moves per process vs the 3n+3 bound (Corollary 4)",
		Columns: []string{"topology", "n", "daemon", "scenario", "sdr-moves/proc(max)", "bound 3n+3", "within"},
	}
	sweep := sweepFor(cfg, 2003, []string{"unison"}, StandardTopologies(), defaultDaemons(), []string{"random-all", "fake-wave"})
	cells := sweep.Cells()
	shares := cfg.memoShares(len(cells))
	type trial struct{ maxMoves, bound int }
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		m := runObserved(sweep.Trial(cells[ci], tr), memoOpt(shares, ci, tr)...)
		return trial{maxMoves: m.observer.MaxSDRMoves(), bound: core.MaxSDRMovesPerProcess(m.run.Net.N())}
	})
	for ci, c := range cells {
		maxMoves, bound := 0, 0
		for _, tr := range results[ci] {
			maxMoves = maxInt(maxMoves, tr.maxMoves)
			bound = tr.bound
		}
		within := maxMoves <= bound
		if !within {
			t.Violations++
		}
		t.AddRow(c.Topology, itoa(c.N), c.Daemon, c.Fault, itoa(maxMoves), itoa(bound), boolCell(within))
	}
	return t
}

// RunE3Segments measures the number of segments of each execution and checks
// that no alive root is ever created and that the per-segment SDR rule
// sequence of every process matches the language of Theorem 4.
func RunE3Segments(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E3",
		Title:   "segments, alive-root creations and the Theorem 4 rule language",
		Columns: []string{"topology", "n", "daemon", "segments(max)", "bound n+1", "root-creations", "language-ok", "within"},
	}
	sweep := sweepFor(cfg, 3001, []string{"unison"}, StandardTopologies(), defaultDaemons(), []string{"random-all"})
	cells := sweep.Cells()
	shares := cfg.memoShares(len(cells))
	type trial struct {
		segments, bound, rootCreations int
		languageOK                     bool
	}
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		m := runObserved(sweep.Trial(cells[ci], tr), memoOpt(shares, ci, tr)...)
		return trial{
			segments:      m.observer.Segments(),
			bound:         core.MaxSegments(m.run.Net.N()),
			rootCreations: m.observer.AliveRootViolations(),
			languageOK:    m.observer.LanguageViolation() == "",
		}
	})
	for ci, c := range cells {
		maxSegments, rootCreations, bound := 0, 0, 0
		languageOK := true
		for _, tr := range results[ci] {
			maxSegments = maxInt(maxSegments, tr.segments)
			rootCreations += tr.rootCreations
			bound = tr.bound
			languageOK = languageOK && tr.languageOK
		}
		within := maxSegments <= bound && rootCreations == 0 && languageOK
		if !within {
			t.Violations++
		}
		t.AddRow(c.Topology, itoa(c.N), c.Daemon,
			itoa(maxSegments), itoa(bound), itoa(rootCreations), boolCell(languageOK), boolCell(within))
	}
	return t
}
