package bench

import (
	"errors"
	"fmt"

	"sdr/internal/checker"
	"sdr/internal/scenario"
)

// VerifyConfig sizes an exhaustive verification sweep: how many seeded
// starts each cell explores from and how the exploration is bounded. The
// zero value takes the scenario defaults (1 start, checker configuration
// cap, exact selections, sequential exploration).
type VerifyConfig struct {
	// Starts is the number of seeded corrupted starts per cell.
	Starts int
	// MaxConfigurations caps each cell's explored set (0 = checker default).
	MaxConfigurations int
	// MaxSelectionSize caps the daemon selections branched on (0 = exact,
	// exponential in the enabled-set size; k certifies daemons activating at
	// most k processes per step).
	MaxSelectionSize int
	// Workers bounds each exploration's worker pool; verdicts are
	// bit-identical for every value. ≤ 0 splits RunVerify's parallelism
	// budget between the cell grid and the per-cell explorations, so the
	// total worker count stays near the budget instead of multiplying.
	Workers int
}

// RunVerify sweeps exhaustive verification over an algorithm × topology ×
// size × fault grid: every cell is certified by checker.Explore through
// scenario's Run.Verify instead of sampled by the engine — the -verify mode
// of cmd/sdrbench. The sweep's daemon axis is irrelevant (the exploration
// branches on every daemon choice up to the selection cap) and defaults to
// a single entry; cells whose algorithm cannot run on the resolved topology
// are reported as skipped. A cell whose exploration finds a property
// violation (a cycle avoiding the legitimate set, an illegitimate terminal
// configuration) or cannot cover the reachable space within the
// configuration cap counts as a violation.
func RunVerify(sw scenario.Sweep, vc VerifyConfig, parallel int) (Table, error) {
	if len(sw.Daemons) == 0 {
		sw.Daemons = []string{"synchronous"}
	}
	sw.Trials = 1
	if err := sw.Validate(); err != nil {
		return Table{}, err
	}
	selections := "exact"
	if vc.MaxSelectionSize > 0 {
		selections = fmt.Sprintf("≤%d", vc.MaxSelectionSize)
	}
	starts := vc.Starts
	if starts < 1 {
		starts = 1
	}
	t := Table{
		ID: "VERIFY",
		Title: fmt.Sprintf("exhaustive convergence certification (%d starts per cell, selections %s, base seed %d)",
			starts, selections, sw.Seed),
		Columns: []string{"algorithm", "topology", "n", "fault", "configs", "transitions", "depth", "terminal", "legit", "verdict"},
	}
	cells := sw.Cells()
	workers := vc.Workers
	if workers <= 0 {
		// Split the parallelism budget between the cell grid and the
		// explorations inside each cell: parallel cells each get
		// parallel/#grid-workers exploration workers, so the total stays
		// near `parallel` instead of multiplying to parallel².
		gridWorkers := min(parallel, max(len(cells), 1))
		workers = max(1, parallel/max(gridWorkers, 1))
	}
	type cellResult struct {
		report  checker.ExploreReport
		verdict string
		ok      bool
		skipped bool
		err     error
	}
	results := MapGrid(parallel, len(cells), 1, func(ci, _ int) cellResult {
		run, err := sw.Trial(cells[ci], 0).Resolve()
		if err != nil {
			return cellResult{skipped: errors.Is(err, scenario.ErrUnsatisfiable), err: err}
		}
		report, err := run.Verify(scenario.VerifyOptions{
			Starts:            starts,
			MaxConfigurations: vc.MaxConfigurations,
			MaxSelectionSize:  vc.MaxSelectionSize,
			Workers:           workers,
		})
		switch {
		case err != nil && errors.Is(err, scenario.ErrUnverifiable):
			return cellResult{err: err}
		case err != nil:
			return cellResult{report: report, verdict: "REFUTED", err: err}
		case !report.Complete:
			return cellResult{report: report, verdict: "incomplete"}
		default:
			return cellResult{report: report, verdict: "certified", ok: true}
		}
	})
	cappedCells := 0
	for ci, c := range cells {
		r := results[ci][0]
		if r.verdict == "" {
			if !r.skipped {
				return Table{}, r.err
			}
			t.AddRow(c.Algorithm, c.Topology, itoa(c.N), c.Fault, "-", "-", "-", "-", "-", "skipped")
			continue
		}
		if !r.ok {
			t.Violations++
		}
		if r.err != nil {
			t.AddNote("%s/%s n=%d: %v", c.Algorithm, c.Topology, c.N, r.err)
		} else if !r.report.Complete {
			t.AddNote("%s/%s n=%d: exploration truncated at %d configurations; raise the configuration cap to certify",
				c.Algorithm, c.Topology, c.N, r.report.Configurations)
		}
		if r.report.CappedSelections > 0 {
			cappedCells++
		}
		t.AddRow(c.Algorithm, c.Topology, itoa(c.N), c.Fault,
			itoa(r.report.Configurations), itoa(r.report.Transitions), itoa(r.report.Depth),
			itoa(r.report.TerminalConfigurations), itoa(r.report.LegitimateConfigurations),
			r.verdict)
	}
	if cappedCells > 0 {
		t.AddNote("%d cell(s) branched on capped selections: their verdicts certify convergence under every daemon activating ≤%d processes per step (set the cap to 0 for the fully distributed daemon, at exponential cost)",
			cappedCells, vc.MaxSelectionSize)
	}
	return t, nil
}
