package bench

import (
	"math/rand"

	"sdr/internal/alliance"
	"sdr/internal/core"
	"sdr/internal/sim"
	"sdr/internal/unison"
)

// Experiments E7-E10 exercise the (f,g)-alliance instantiation FGA and
// FGA ∘ SDR (Section 6) and the end-to-end correctness claims of both
// instantiations.

// allianceSpecs returns the specs swept by E7-E9: one degree-independent and
// one degree-dependent instance.
func allianceSpecs() []alliance.Spec {
	return []alliance.Spec{
		alliance.DominatingSet(),
		alliance.GlobalPowerfulAlliance(),
	}
}

// runStandaloneFGA runs FGA alone from γ_init to termination.
func runStandaloneFGA(spec alliance.Spec, top Topology, n int, seed int64, maxSteps int) (sim.Result, *sim.Network) {
	rng := rand.New(rand.NewSource(seed))
	g := top.Build(n, rng)
	net := sim.NewNetwork(g)
	alg := core.NewStandalone(alliance.NewFGA(spec))
	daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)
	eng := sim.NewEngine(net, alg, daemon)
	res := eng.Run(sim.InitialConfiguration(alg, net), sim.WithMaxSteps(maxSteps))
	return res, net
}

// allianceCell is one (spec, topology, size) point of the dense sweep.
type allianceCell struct {
	spec alliance.Spec
	top  Topology
	n    int
}

// allianceSweepCells enumerates the (spec × dense topology × size) grid in
// table order.
func allianceSweepCells(cfg Config) []allianceCell {
	var cells []allianceCell
	for _, spec := range allianceSpecs() {
		for _, top := range DenseTopologies() {
			for _, n := range cfg.Sizes {
				cells = append(cells, allianceCell{spec: spec, top: top, n: n})
			}
		}
	}
	return cells
}

// RunE7FGAMoves measures the total moves of FGA alone against the
// 16·Δ·m + 36·m + 24·n bound of Corollary 11.
func RunE7FGAMoves(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E7",
		Title:   "FGA termination moves vs the O(Δ·m) bound (Corollary 11)",
		Columns: []string{"spec", "topology", "n", "m", "Δ", "moves(max)", "bound", "within"},
	}
	cells := allianceSweepCells(cfg)
	type trial struct {
		moves, bound, m, delta int
		terminated             bool
	}
	results := mapGrid(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		c := cells[ci]
		seed := cfg.Seed + int64(tr)*7001
		res, net := runStandaloneFGA(c.spec, c.top, c.n, seed, cfg.MaxSteps)
		g := net.Graph()
		return trial{
			moves:      res.Moves,
			bound:      alliance.MaxStandaloneMoves(g.N(), g.M(), g.MaxDegree()),
			m:          g.M(),
			delta:      g.MaxDegree(),
			terminated: res.Terminated,
		}
	})
	for ci, c := range cells {
		maxMoves, bound, m, delta := 0, 0, 0, 0
		for _, tr := range results[ci] {
			maxMoves = maxInt(maxMoves, tr.moves)
			bound, m, delta = tr.bound, tr.m, tr.delta
			if !tr.terminated {
				t.Violations++
			}
		}
		within := maxMoves <= bound
		if !within {
			t.Violations++
		}
		t.AddRow(c.spec.Name, c.top.Name, itoa(c.n), itoa(m), itoa(delta), itoa(maxMoves), itoa(bound), boolCell(within))
	}
	return t
}

// RunE8FGARounds measures the rounds FGA alone needs to terminate from its
// pre-defined initial configuration against the 5n+4 bound of Theorem 10.
func RunE8FGARounds(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E8",
		Title:   "FGA termination rounds from γ_init vs the 5n+4 bound (Theorem 10)",
		Columns: []string{"spec", "topology", "n", "rounds(max)", "bound 5n+4", "within"},
	}
	cells := allianceSweepCells(cfg)
	type trial struct{ rounds, bound int }
	results := mapGrid(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		c := cells[ci]
		seed := cfg.Seed + int64(tr)*8009
		res, net := runStandaloneFGA(c.spec, c.top, c.n, seed, cfg.MaxSteps)
		return trial{rounds: res.Rounds, bound: alliance.MaxStandaloneRounds(net.N())}
	})
	for ci, c := range cells {
		maxRounds, bound := 0, 0
		for _, tr := range results[ci] {
			maxRounds = maxInt(maxRounds, tr.rounds)
			bound = tr.bound
		}
		within := maxRounds <= bound
		if !within {
			t.Violations++
		}
		t.AddRow(c.spec.Name, c.top.Name, itoa(c.n), itoa(maxRounds), itoa(bound), boolCell(within))
	}
	return t
}

// RunE9AllianceStabilization measures the stabilization cost of FGA ∘ SDR
// from corrupted configurations against the O(Δ·n·m) move bound (Theorem 12)
// and the 8n+4 round bound (Theorem 14), and checks that the terminal
// configuration is a 1-minimal alliance (Theorem 11).
func RunE9AllianceStabilization(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E9",
		Title:   "FGA∘SDR stabilization from corrupted states (Theorems 11-14)",
		Columns: []string{"spec", "topology", "n", "scenario", "moves(max)", "move-bound", "rounds(max)", "round-bound", "1-minimal", "within"},
	}
	type cell struct {
		allianceCell
		scenarioName string
	}
	var cells []cell
	for _, spec := range allianceSpecs() {
		for _, top := range DenseTopologies() {
			for _, n := range cfg.Sizes {
				for _, scenarioName := range []string{"random-all", "fake-wave"} {
					cells = append(cells, cell{allianceCell{spec, top, n}, scenarioName})
				}
			}
		}
	}
	type trial struct {
		moves, rounds, moveBound, roundBound int
		minimal                              bool
	}
	results := mapGrid(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		c := cells[ci]
		seed := cfg.Seed + int64(tr)*9001
		rng := rand.New(rand.NewSource(seed))
		g := c.top.Build(c.n, rng)
		net := sim.NewNetwork(g)
		comp := alliance.NewSelfStabilizing(c.spec)
		start := corruptedStart(scenarioByName(c.scenarioName), comp, net, rng)
		daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)
		eng := sim.NewEngine(net, comp, daemon)
		res := eng.Run(start, sim.WithMaxSteps(cfg.MaxSteps))
		return trial{
			moves:      res.Moves,
			rounds:     res.Rounds,
			moveBound:  alliance.MaxStabilizationMoves(g.N(), g.M(), g.MaxDegree()),
			roundBound: alliance.MaxStabilizationRounds(g.N()),
			minimal:    res.Terminated && alliance.Is1Minimal(g, c.spec, alliance.Members(res.Final)),
		}
	})
	for ci, c := range cells {
		maxMoves, maxRounds, moveBound, roundBound := 0, 0, 0, 0
		allMinimal := true
		for _, tr := range results[ci] {
			maxMoves = maxInt(maxMoves, tr.moves)
			maxRounds = maxInt(maxRounds, tr.rounds)
			moveBound, roundBound = tr.moveBound, tr.roundBound
			allMinimal = allMinimal && tr.minimal
		}
		within := maxMoves <= moveBound && maxRounds <= roundBound && allMinimal
		if !within {
			t.Violations++
		}
		t.AddRow(c.spec.Name, c.top.Name, itoa(c.n), c.scenarioName,
			itoa(maxMoves), itoa(moveBound), itoa(maxRounds), itoa(roundBound),
			boolCell(allMinimal), boolCell(within))
	}
	return t
}

// RunE10Correctness checks the end-to-end correctness claims: every special
// case of Section 6.1 yields a 1-minimal (f,g)-alliance through FGA ∘ SDR
// (Theorem 11), and U ∘ SDR satisfies unison safety and liveness after
// stabilization (Corollary 7, Lemma 19).
func RunE10Correctness(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E10",
		Title:   "output correctness: 1-minimal alliances for all §6.1 instances; unison safety and liveness",
		Columns: []string{"instance", "topology", "n", "check", "ok"},
	}
	n := cfg.Sizes[len(cfg.Sizes)-1]

	// Alliance instances.
	for _, spec := range alliance.StandardSpecs() {
		for _, top := range []Topology{DenseTopologies()[0], DenseTopologies()[1]} {
			seed := cfg.Seed * 11
			rng := rand.New(rand.NewSource(seed))
			g := top.Build(n, rng)
			if spec.Validate(g) != nil {
				t.AddRow(spec.Name, top.Name, itoa(g.N()), "skipped (δ_u < max(f,g) on this topology)", boolCell(true))
				continue
			}
			net := sim.NewNetwork(g)
			comp := alliance.NewSelfStabilizing(spec)
			start := corruptedStart(scenarioByName("random-all"), comp, net, rng)
			daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)
			eng := sim.NewEngine(net, comp, daemon)
			res := eng.Run(start, sim.WithMaxSteps(cfg.MaxSteps))
			ok := res.Terminated && alliance.Is1Minimal(g, spec, alliance.Members(res.Final))
			if !ok {
				t.Violations++
			}
			t.AddRow(spec.Name, top.Name, itoa(g.N()), "terminal configuration is a 1-minimal (f,g)-alliance", boolCell(ok))
		}
	}

	// Unison safety and liveness after stabilization.
	for _, top := range StandardTopologies() {
		seed := cfg.Seed * 13
		rng := rand.New(rand.NewSource(seed))
		w := buildUnisonWorkload(top, n, rng)
		start := corruptedStart(scenarioByName("random-all"), w.comp, w.net, rng)
		daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)

		// Run to a normal configuration first.
		m := runComposed(w.comp, w.net, daemon, start, cfg.MaxSteps, true)
		reached := m.result.LegitimateReached

		// From the normal configuration, run a bounded suffix and check that
		// safety always holds and every process ticks at least once.
		ticker := unison.NewTickCounter(w.net.N())
		safety := unison.SafetyPredicate(w.algo, w.net)
		safe := true
		hook := func(info sim.StepInfo) {
			if !safety(info.After) {
				safe = false
			}
		}
		eng := sim.NewEngine(w.net, w.comp, daemon)
		eng.Run(m.result.Final,
			sim.WithMaxSteps(20*w.net.N()*w.net.N()),
			sim.WithStepHook(ticker.Hook()),
			sim.WithStepHook(hook),
		)
		live := ticker.Min() >= 1
		ok := reached && safe && live
		if !ok {
			t.Violations++
		}
		t.AddRow("unison", top.Name, itoa(w.net.N()), "safety holds and every clock ticks after stabilization", boolCell(ok))
	}
	return t
}
