package bench

import (
	"errors"
	"strings"

	"sdr/internal/alliance"
	"sdr/internal/scenario"
	"sdr/internal/sim"
	"sdr/internal/unison"
)

// Experiments E7-E10 exercise the (f,g)-alliance instantiation FGA and
// FGA ∘ SDR (Section 6) and the end-to-end correctness claims of both
// instantiations.

// allianceSpecNames returns the alliance registry names swept by E7-E9: one
// degree-independent and one degree-dependent instance.
func allianceSpecNames() []string {
	return []string{"dominating-set", "global-powerful-alliance"}
}

// standaloneNames appends the -standalone registry suffix to each name.
func standaloneNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = n + "-standalone"
	}
	return out
}

// specCell strips the -standalone suffix for the table's spec column.
func specCell(algorithm string) string {
	return strings.TrimSuffix(algorithm, "-standalone")
}

// RunE7FGAMoves measures the total moves of FGA alone against the
// 16·Δ·m + 36·m + 24·n bound of Corollary 11.
func RunE7FGAMoves(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E7",
		Title:   "FGA termination moves vs the O(Δ·m) bound (Corollary 11)",
		Columns: []string{"spec", "topology", "n", "m", "Δ", "moves(max)", "bound", "within"},
	}
	sweep := sweepFor(cfg, 7001, standaloneNames(allianceSpecNames()), DenseTopologies(), []string{"distributed-random"}, []string{"none"})
	cells := sweep.Cells()
	shares := cfg.memoShares(len(cells))
	type trial struct {
		moves, bound, m, delta int
		terminated             bool
	}
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		m := runPlain(sweep.Trial(cells[ci], tr), memoOpt(shares, ci, tr)...)
		g := m.run.Graph
		return trial{
			moves:      m.result.Moves,
			bound:      alliance.MaxStandaloneMoves(g.N(), g.M(), g.MaxDegree()),
			m:          g.M(),
			delta:      g.MaxDegree(),
			terminated: m.result.Terminated,
		}
	})
	for ci, c := range cells {
		maxMoves, bound, m, delta := 0, 0, 0, 0
		for _, tr := range results[ci] {
			maxMoves = maxInt(maxMoves, tr.moves)
			bound, m, delta = tr.bound, tr.m, tr.delta
			if !tr.terminated {
				t.Violations++
			}
		}
		within := maxMoves <= bound
		if !within {
			t.Violations++
		}
		t.AddRow(specCell(c.Algorithm), c.Topology, itoa(c.N), itoa(m), itoa(delta), itoa(maxMoves), itoa(bound), boolCell(within))
	}
	return t
}

// RunE8FGARounds measures the rounds FGA alone needs to terminate from its
// pre-defined initial configuration against the 5n+4 bound of Theorem 10.
func RunE8FGARounds(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E8",
		Title:   "FGA termination rounds from γ_init vs the 5n+4 bound (Theorem 10)",
		Columns: []string{"spec", "topology", "n", "rounds(max)", "bound 5n+4", "within"},
	}
	sweep := sweepFor(cfg, 8009, standaloneNames(allianceSpecNames()), DenseTopologies(), []string{"distributed-random"}, []string{"none"})
	cells := sweep.Cells()
	shares := cfg.memoShares(len(cells))
	type trial struct{ rounds, bound int }
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		m := runPlain(sweep.Trial(cells[ci], tr), memoOpt(shares, ci, tr)...)
		return trial{rounds: m.result.Rounds, bound: alliance.MaxStandaloneRounds(m.run.Net.N())}
	})
	for ci, c := range cells {
		maxRounds, bound := 0, 0
		for _, tr := range results[ci] {
			maxRounds = maxInt(maxRounds, tr.rounds)
			bound = tr.bound
		}
		within := maxRounds <= bound
		if !within {
			t.Violations++
		}
		t.AddRow(specCell(c.Algorithm), c.Topology, itoa(c.N), itoa(maxRounds), itoa(bound), boolCell(within))
	}
	return t
}

// RunE9AllianceStabilization measures the stabilization cost of FGA ∘ SDR
// from corrupted configurations against the O(Δ·n·m) move bound (Theorem 12)
// and the 8n+4 round bound (Theorem 14), and checks that the terminal
// configuration is a 1-minimal alliance (Theorem 11).
func RunE9AllianceStabilization(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E9",
		Title:   "FGA∘SDR stabilization from corrupted states (Theorems 11-14)",
		Columns: []string{"spec", "topology", "n", "scenario", "moves(max)", "move-bound", "rounds(max)", "round-bound", "1-minimal", "within"},
	}
	sweep := sweepFor(cfg, 9001, allianceSpecNames(), DenseTopologies(), []string{"distributed-random"}, []string{"random-all", "fake-wave"})
	cells := sweep.Cells()
	shares := cfg.memoShares(len(cells))
	type trial struct {
		moves, rounds, moveBound, roundBound int
		minimal                              bool
	}
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		m := runPlain(sweep.Trial(cells[ci], tr), memoOpt(shares, ci, tr)...)
		g := m.run.Graph
		return trial{
			moves:      m.result.Moves,
			rounds:     m.result.Rounds,
			moveBound:  alliance.MaxStabilizationMoves(g.N(), g.M(), g.MaxDegree()),
			roundBound: alliance.MaxStabilizationRounds(g.N()),
			minimal:    m.run.Report(m.result).OK,
		}
	})
	for ci, c := range cells {
		maxMoves, maxRounds, moveBound, roundBound := 0, 0, 0, 0
		allMinimal := true
		for _, tr := range results[ci] {
			maxMoves = maxInt(maxMoves, tr.moves)
			maxRounds = maxInt(maxRounds, tr.rounds)
			moveBound, roundBound = tr.moveBound, tr.roundBound
			allMinimal = allMinimal && tr.minimal
		}
		within := maxMoves <= moveBound && maxRounds <= roundBound && allMinimal
		if !within {
			t.Violations++
		}
		t.AddRow(c.Algorithm, c.Topology, itoa(c.N), c.Fault,
			itoa(maxMoves), itoa(moveBound), itoa(maxRounds), itoa(roundBound),
			boolCell(allMinimal), boolCell(within))
	}
	return t
}

// RunE10Correctness checks the end-to-end correctness claims: every special
// case of Section 6.1 yields a 1-minimal (f,g)-alliance through FGA ∘ SDR
// (Theorem 11), and U ∘ SDR satisfies unison safety and liveness after
// stabilization (Corollary 7, Lemma 19).
func RunE10Correctness(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E10",
		Title:   "output correctness: 1-minimal alliances for all §6.1 instances; unison safety and liveness",
		Columns: []string{"instance", "topology", "n", "check", "ok"},
	}
	n := cfg.Sizes[len(cfg.Sizes)-1]

	// Alliance instances: every Section 6.1 spec is its own registry entry.
	for _, spec := range alliance.StandardSpecs() {
		for _, top := range DenseTopologies()[:2] {
			sp := scenario.Spec{
				Algorithm: spec.Name,
				Topology:  top,
				N:         n,
				Daemon:    "distributed-random",
				Fault:     "random-all",
				Seed:      cfg.Seed * 11,
				MaxSteps:  cfg.MaxSteps,
			}
			run, err := sp.Resolve()
			if errors.Is(err, scenario.ErrUnsatisfiable) {
				t.AddRow(spec.Name, top, itoa(n), "skipped (δ_u < max(f,g) on this topology)", boolCell(true))
				continue
			}
			if err != nil {
				panic(err)
			}
			res := run.Execute(cfg.memoSelf()...)
			ok := run.Report(res).OK
			if !ok {
				t.Violations++
			}
			t.AddRow(spec.Name, top, itoa(run.Net.N()), "terminal configuration is a 1-minimal (f,g)-alliance", boolCell(ok))
		}
	}

	// Unison safety and liveness after stabilization.
	for _, top := range StandardTopologies() {
		sp := scenario.Spec{
			Algorithm: "unison",
			Topology:  top,
			N:         n,
			Daemon:    "distributed-random",
			Fault:     "random-all",
			Seed:      cfg.Seed * 13,
			MaxSteps:  cfg.MaxSteps,
		}
		run := sp.MustResolve()

		// Run to a normal configuration first.
		res := run.Execute(cfg.memoSelf()...)
		reached := res.LegitimateReached

		// From the normal configuration, run a bounded suffix under the same
		// (stateful) daemon and check that safety always holds and every
		// process ticks at least once.
		nn := run.Net.N()
		ticker := unison.NewTickCounter(nn)
		safety := unison.SafetyPredicate(run.Inner.(*unison.Unison), run.Net)
		safe := true
		hook := func(info sim.StepInfo) {
			if !safety(info.After) {
				safe = false
			}
		}
		run.Engine.Run(res.Final,
			sim.WithMaxSteps(20*nn*nn),
			sim.WithStepHook(ticker.Hook()),
			sim.WithStepHook(hook),
		)
		live := ticker.Min() >= 1
		ok := reached && safe && live
		if !ok {
			t.Violations++
		}
		t.AddRow("unison", top, itoa(nn), "safety holds and every clock ticks after stabilization", boolCell(ok))
	}
	return t
}
