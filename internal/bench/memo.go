package bench

import (
	"fmt"

	"sdr/internal/sim"
)

// Cross-trial transition memoization: every sweep cell (one table row in the
// making) gets its own sim.MemoShare, trial 0 of the cell fills and donates
// the cell's table — MapGridWarm completes it before any other trial of the
// grid starts — and the remaining trials answer their guard questions from
// the frozen table read-only. The warm/read-only split keeps the per-trial
// hit statistics deterministic at every parallelism level, the same property
// the tables themselves already have.

// memoShares returns one transition-memo share per sweep cell, or nil when
// the configuration disables memoization (Config.MemoOff).
func (c Config) memoShares(cells int) []*sim.MemoShare {
	if c.MemoOff {
		return nil
	}
	shares := make([]*sim.MemoShare, cells)
	for i := range shares {
		shares[i] = sim.NewMemoShare(c.MemoCap)
	}
	return shares
}

// memoOpt returns the engine option attaching cell ci's share to one trial:
// trial 0 runs the donating (cache-filling) protocol, every later trial
// reads the frozen table without donating — so a cell whose trial 0 was
// skipped as unsatisfiable never lets the remaining trials race for
// donation. nil shares (memo off) contribute no option.
func memoOpt(shares []*sim.MemoShare, ci, trial int) []sim.Option {
	if shares == nil {
		return nil
	}
	if trial == 0 {
		return []sim.Option{sim.WithMemo(shares[ci])}
	}
	return []sim.Option{sim.WithMemoReadOnly(shares[ci])}
}

// memoSelf returns a run-private memo option for the non-grid runners (one
// independent run per row, nothing to share across), or nothing when
// memoization is off.
func (c Config) memoSelf() []sim.Option {
	if c.MemoOff {
		return nil
	}
	return []sim.Option{sim.WithMemo(sim.NewMemoShare(c.MemoCap))}
}

// memoHitCell renders a cell's pooled memo statistics as a hit-rate
// percentage column ("-" when memoization was off or nothing was looked up).
func memoHitCell(stats sim.MemoStats) string {
	if stats.Lookups() == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*stats.HitRate())
}
