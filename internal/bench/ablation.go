package bench

import (
	"sdr/internal/core"
	"sdr/internal/scenario"
	"sdr/internal/stats"
	"sdr/internal/unison"
)

// Ablations A1-A3: design-choice experiments called out in DESIGN.md. They do
// not correspond to paper claims; they quantify why the paper's design
// decisions matter.

// RunA1NoCooperation compares the cooperative composition U ∘ SDR against the
// uncooperative variant in which every joining process becomes the root of
// its own reset (distance 0) instead of hooking under a neighbouring reset.
func RunA1NoCooperation(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:    "A1",
		Title: "cooperative vs uncooperative resets: stabilization cost and reset structure of U∘SDR",
		Columns: []string{
			"topology", "n",
			"coop-moves(mean)", "uncoop-moves(mean)", "ratio",
			"coop-sdr/proc(max)", "uncoop-sdr/proc(max)", "bound 3n+3",
			"coop-root-creations", "uncoop-root-creations",
		},
	}
	sweep := sweepFor(cfg, 10007, []string{"unison"}, StandardTopologies(), []string{"distributed-random"}, []string{"inner-only"})
	cells := sweep.Cells()
	coopShares := cfg.memoShares(len(cells))
	uncoopShares := cfg.memoShares(len(cells))
	type trial struct {
		coopMoves, uncoopMoves           int
		coopSDR, uncoopSDR               int
		coopRoots, uncoopRoots           int
		bound                            int
		coopStabilized, uncoopStabilized bool
	}
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		coopSpec := sweep.Trial(cells[ci], tr)
		m := runObserved(coopSpec, memoOpt(coopShares, ci, tr)...)

		// Same seed for the uncooperative variant: the resolved topology,
		// corrupted start and daemon are identical, so the two runs differ
		// only in the compute(u) macro. The observer quantifies what the
		// loss of coordination costs: joining processes become roots of
		// their own resets, so alive roots are created mid-execution and the
		// per-process reset work is no longer tied to the 3n+3 bound's proof
		// argument.
		uncoopSpec := coopSpec
		uncoopSpec.Algorithm = "unison-uncoop"
		m2 := runObserved(uncoopSpec, memoOpt(uncoopShares, ci, tr)...)

		return trial{
			coopMoves:        m.result.StabilizationMoves,
			uncoopMoves:      m2.result.StabilizationMoves,
			coopSDR:          m.observer.MaxSDRMoves(),
			uncoopSDR:        m2.observer.MaxSDRMoves(),
			coopRoots:        m.observer.AliveRootViolations(),
			uncoopRoots:      m2.observer.AliveRootViolations(),
			bound:            core.MaxSDRMovesPerProcess(m.run.Net.N()),
			coopStabilized:   m.result.StabilizationMoves >= 0,
			uncoopStabilized: m2.result.StabilizationMoves >= 0,
		}
	})
	var ratios []float64
	for ci, c := range cells {
		var coop, uncoop []int
		coopSDR, uncoopSDR, coopRoots, uncoopRoots, bound := 0, 0, 0, 0, 0
		for _, tr := range results[ci] {
			if tr.coopStabilized {
				coop = append(coop, tr.coopMoves)
			}
			if tr.uncoopStabilized {
				uncoop = append(uncoop, tr.uncoopMoves)
			}
			coopSDR = maxInt(coopSDR, tr.coopSDR)
			uncoopSDR = maxInt(uncoopSDR, tr.uncoopSDR)
			coopRoots += tr.coopRoots
			uncoopRoots += tr.uncoopRoots
			bound = tr.bound
		}
		coopMean := stats.SummarizeInts(coop).Mean
		uncoopMean := stats.SummarizeInts(uncoop).Mean
		ratio := stats.Ratio(uncoopMean, coopMean)
		ratios = append(ratios, ratio)
		if coopRoots > 0 || coopSDR > bound {
			// The cooperative variant must respect the paper's structure.
			t.Violations++
		}
		t.AddRow(c.Topology, itoa(c.N),
			ftoa(coopMean), ftoa(uncoopMean), ftoa(ratio),
			itoa(coopSDR), itoa(uncoopSDR), itoa(bound),
			itoa(coopRoots), itoa(uncoopRoots))
	}
	t.AddNote("mean uncooperative/cooperative move ratio: %.2f; cooperation's guarantee is structural: "+
		"the cooperative runs never create alive roots (Theorem 3) while the uncooperative variant does",
		stats.Summarize(ratios).Mean)
	return t
}

// RunA2Daemons runs the same U ∘ SDR workload under every registered daemon
// and reports the spread of stabilization rounds and moves; every daemon is
// a legal schedule of the distributed unfair daemon, so all measurements
// must stay within the paper's bounds.
func RunA2Daemons(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "A2",
		Title:   "daemon sensitivity of U∘SDR stabilization",
		Columns: []string{"daemon", "n", "rounds(max)", "bound 3n", "moves(max)", "move-bound", "within"},
	}
	n := cfg.Sizes[len(cfg.Sizes)-1]
	sweep := sweepFor(cfg, 11003, []string{"unison"}, StandardTopologies()[:1], scenario.Daemons(), []string{"random-all"})
	sweep.Sizes = []int{n}
	cells := sweep.Cells()
	shares := cfg.memoShares(len(cells))
	type trial struct{ rounds, moves, roundBound, moveBound int }
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		m := runObserved(sweep.Trial(cells[ci], tr), memoOpt(shares, ci, tr)...)
		return trial{
			rounds:     m.result.StabilizationRounds,
			moves:      m.result.StabilizationMoves,
			roundBound: unison.MaxStabilizationRounds(m.run.Net.N()),
			moveBound:  unison.MaxStabilizationMoves(m.run.Net.N(), m.run.Graph.Diameter()),
		}
	})
	for ci, c := range cells {
		maxRounds, maxMoves, roundBound, moveBound := 0, 0, 0, 0
		for _, tr := range results[ci] {
			maxRounds = maxInt(maxRounds, tr.rounds)
			maxMoves = maxInt(maxMoves, tr.moves)
			roundBound, moveBound = tr.roundBound, tr.moveBound
		}
		within := maxRounds <= roundBound && maxMoves <= moveBound
		if !within {
			t.Violations++
		}
		t.AddRow(c.Daemon, itoa(c.N), itoa(maxRounds), itoa(roundBound), itoa(maxMoves), itoa(moveBound), boolCell(within))
	}
	return t
}

// RunA3Period measures the sensitivity of U ∘ SDR to the clock period K:
// the paper only requires K > n, and the stabilization bounds are independent
// of K, so the measured costs should stay flat as K grows.
func RunA3Period(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "A3",
		Title:   "unison period sensitivity: K = n+1 vs 2n vs 4n",
		Columns: []string{"topology", "n", "K", "rounds(max)", "moves(mean)", "bound 3n", "within"},
	}
	top := StandardTopologies()[0]
	type cell struct{ n, factor int }
	var cells []cell
	for _, n := range cfg.Sizes {
		for _, factor := range []int{1, 2, 4} {
			cells = append(cells, cell{n: n, factor: factor})
		}
	}
	shares := cfg.memoShares(len(cells))
	type trial struct{ rounds, moves, bound, k int }
	results := MapGridWarm(cfg.Parallel, len(cells), cfg.Trials, func(ci, tr int) trial {
		c := cells[ci]
		// The ring topology has exactly n processes, so the period can be
		// derived from the requested size.
		k := c.factor*c.n + 1
		m := runObserved(scenario.Spec{
			Algorithm: "unison",
			Topology:  top,
			N:         c.n,
			Daemon:    "distributed-random",
			Fault:     "random-all",
			Seed:      cfg.Seed + int64(tr)*12007,
			MaxSteps:  cfg.MaxSteps,
			Params:    scenario.Params{K: k},
		}, memoOpt(shares, ci, tr)...)
		return trial{
			rounds: m.result.StabilizationRounds,
			moves:  m.result.StabilizationMoves,
			bound:  unison.MaxStabilizationRounds(m.run.Net.N()),
			k:      k,
		}
	})
	for ci, c := range cells {
		var moves []int
		maxRounds, bound, k := 0, 0, 0
		for _, tr := range results[ci] {
			maxRounds = maxInt(maxRounds, tr.rounds)
			bound, k = tr.bound, tr.k
			if tr.moves >= 0 {
				moves = append(moves, tr.moves)
			}
		}
		within := maxRounds <= bound
		if !within {
			t.Violations++
		}
		t.AddRow(top, itoa(c.n), itoa(k), itoa(maxRounds), ftoa(stats.SummarizeInts(moves).Mean), itoa(bound), boolCell(within))
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
