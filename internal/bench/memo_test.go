package bench

import (
	"reflect"
	"strings"
	"testing"

	"sdr/internal/scenario"
)

func memoTestSweep() scenario.Sweep {
	return scenario.Sweep{
		Algorithms: []string{"unison", "bfstree"},
		Topologies: []string{"ring", "grid"},
		Daemons:    []string{"synchronous"},
		Faults:     []string{"random-all"},
		Sizes:      []int{6},
		Trials:     3,
		Seed:       3,
		MaxSteps:   200_000,
	}
}

// TestRunSweepMemoHitRates checks the telemetry column: with shared tables
// and several trials per cell, every cell of the sweep must report a
// non-trivial hit rate, and disabling memoization must blank the column while
// leaving every measured value identical.
func TestRunSweepMemoHitRates(t *testing.T) {
	on, err := RunSweep(memoTestSweep(), Config{Parallel: 2})
	if err != nil {
		t.Fatalf("RunSweep(memo on): %v", err)
	}
	col := -1
	for i, c := range on.Columns {
		if c == "memo-hit%" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("SWEEP table has no memo-hit%% column: %v", on.Columns)
	}
	for _, row := range on.Rows {
		cell := row[col]
		if cell == "-" || cell == "0.0%" || !strings.HasSuffix(cell, "%") {
			t.Errorf("row %v: memo-hit%% = %q, want a non-zero percentage", row[:5], cell)
		}
	}

	off, err := RunSweep(memoTestSweep(), Config{Parallel: 2, MemoOff: true})
	if err != nil {
		t.Fatalf("RunSweep(memo off): %v", err)
	}
	for ri, row := range off.Rows {
		if row[col] != "-" {
			t.Errorf("memo off, row %v: memo-hit%% = %q, want -", row[:5], row[col])
		}
		for i := range row {
			if i != col && row[i] != on.Rows[ri][i] {
				t.Errorf("row %d col %s differs with memoization: %q (on) vs %q (off)",
					ri, on.Columns[i], on.Rows[ri][i], row[i])
			}
		}
	}
}

// TestRunSweepMemoDeterministicAcrossParallelism extends the parallelism
// determinism contract to the cache telemetry: the designated-donor protocol
// (trial 0 fills, later trials read frozen) makes the hit rates — not just
// the measurements — identical at every worker count.
func TestRunSweepMemoDeterministicAcrossParallelism(t *testing.T) {
	seq, err := RunSweep(memoTestSweep(), Config{Parallel: 1})
	if err != nil {
		t.Fatalf("RunSweep(parallel=1): %v", err)
	}
	par, err := RunSweep(memoTestSweep(), Config{Parallel: 8})
	if err != nil {
		t.Fatalf("RunSweep(parallel=8): %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("SWEEP table differs across parallelism:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestExperimentTablesUnchangedByMemo pins the bit-identity acceptance
// criterion at the table level: memoization is a pure cache, so every
// experiment table must be byte-identical with it on and off.
func TestExperimentTablesUnchangedByMemo(t *testing.T) {
	if testing.Short() {
		t.Skip("memo A/B sweep skipped in -short mode")
	}
	cfg := Config{Sizes: []int{6}, Trials: 2, Seed: 11, MaxSteps: 200_000, Parallel: 4}
	for _, e := range []string{"E1", "E3", "E6", "E9", "A1", "X1"} {
		exp, err := ExperimentByID(e)
		if err != nil {
			t.Fatal(err)
		}
		off := cfg
		off.MemoOff = true
		memoTable := exp.Run(cfg)
		plainTable := exp.Run(off)
		if !reflect.DeepEqual(memoTable, plainTable) {
			t.Errorf("%s: memoized table differs from unmemoized table:\n%+v\n%+v", e, memoTable, plainTable)
		}
	}
}
