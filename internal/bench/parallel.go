package bench

import (
	"sync"
)

// The experiment runners fan the (cell × trial) grid out over a bounded
// worker pool, where a cell is one table row in the making (a topology ×
// size × daemon × scenario point) and a trial is one seeded execution.
// Every trial builds its topology, workload, daemon and fault injection from
// its own seed, so the tables are bit-identical regardless of Parallel; the
// workers only change wall-clock time.

// gridJob addresses one (cell, trial) pair.
type gridJob struct{ cell, trial int }

// MapGrid runs fn(cell, trial) for every pair in [0,cells) × [0,trials) and
// returns the results indexed [cell][trial]. With workers ≤ 1 the grid runs
// sequentially in order; otherwise the pairs are fanned out over a bounded
// worker pool. fn must not touch shared mutable state (trials derive
// everything from their seeds). Exported for internal/campaign, which fans
// its per-cell trial batches out over the same pool.
func MapGrid[T any](workers, cells, trials int, fn func(cell, trial int) T) [][]T {
	out := make([][]T, cells)
	for c := range out {
		out[c] = make([]T, trials)
	}
	if total := cells * trials; workers > total {
		workers = total
	}
	if workers <= 1 {
		for c := 0; c < cells; c++ {
			for tr := 0; tr < trials; tr++ {
				out[c][tr] = fn(c, tr)
			}
		}
		return out
	}
	jobs := make(chan gridJob, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out[j.cell][j.trial] = fn(j.cell, j.trial)
			}
		}()
	}
	for c := 0; c < cells; c++ {
		for tr := 0; tr < trials; tr++ {
			jobs <- gridJob{cell: c, trial: tr}
		}
	}
	close(jobs)
	wg.Wait()
	return out
}

// MapGridWarm is MapGrid with a warm-up phase: trial 0 of every cell runs
// (in parallel across cells) and completes before any trial ≥ 1 starts. The
// experiment runners use it to drive the memo-share protocol — the cell's
// first trial fills and donates the cell's transition table, and the barrier
// guarantees every remaining trial sees the frozen table from construction,
// making per-trial cache telemetry (not just the measurements) independent
// of the worker count. With one trial per cell the warm phase is the whole
// grid.
func MapGridWarm[T any](workers, cells, trials int, fn func(cell, trial int) T) [][]T {
	if trials <= 1 {
		return MapGrid(workers, cells, trials, fn)
	}
	warm := MapGrid(workers, cells, 1, fn)
	rest := MapGrid(workers, cells, trials-1, func(cell, trial int) T {
		return fn(cell, trial+1)
	})
	out := make([][]T, cells)
	for c := range out {
		out[c] = append(warm[c], rest[c]...)
	}
	return out
}
