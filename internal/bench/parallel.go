package bench

import (
	"context"
	"sync"
)

// The experiment runners fan the (cell × trial) grid out over a bounded
// worker pool, where a cell is one table row in the making (a topology ×
// size × daemon × scenario point) and a trial is one seeded execution.
// Every trial builds its topology, workload, daemon and fault injection from
// its own seed, so the tables are bit-identical regardless of Parallel; the
// workers only change wall-clock time.

// gridJob addresses one (cell, trial) pair.
type gridJob struct{ cell, trial int }

// MapGrid runs fn(cell, trial) for every pair in [0,cells) × [0,trials) and
// returns the results indexed [cell][trial]. With workers ≤ 1 the grid runs
// sequentially in order; otherwise the pairs are fanned out over a bounded
// worker pool. fn must not touch shared mutable state (trials derive
// everything from their seeds). Exported for internal/campaign and
// internal/server, which fan their per-cell trial batches out over the same
// pool.
func MapGrid[T any](workers, cells, trials int, fn func(cell, trial int) T) [][]T {
	return MapGridContext(context.Background(), workers, cells, trials, fn)
}

// MapGridWarm is MapGrid with a warm-up phase: trial 0 of every cell runs
// (in parallel across cells) and completes before any trial ≥ 1 starts. The
// experiment runners use it to drive the memo-share protocol — the cell's
// first trial fills and donates the cell's transition table, and the barrier
// guarantees every remaining trial sees the frozen table from construction,
// making per-trial cache telemetry (not just the measurements) independent
// of the worker count. With one trial per cell the warm phase is the whole
// grid.
func MapGridWarm[T any](workers, cells, trials int, fn func(cell, trial int) T) [][]T {
	return MapGridWarmContext(context.Background(), workers, cells, trials, fn)
}

// MapGridContext is MapGrid under a cancellation context: once ctx is done no
// further fn calls start (in-flight calls complete), and the skipped entries
// of the result keep their zero value. Because pairs are dispatched in
// (cell, trial) order and in-flight calls finish, the executed pairs always
// form a prefix of that order — callers detect the cut by marking executed
// results (see internal/campaign) and can therefore stop at a clean record
// boundary.
func MapGridContext[T any](ctx context.Context, workers, cells, trials int, fn func(cell, trial int) T) [][]T {
	return mapGrid(ctx, workers, cells, trials, false, fn)
}

// MapGridWarmContext is MapGridWarm under a cancellation context, with the
// same prefix guarantee per phase as MapGridContext.
func MapGridWarmContext[T any](ctx context.Context, workers, cells, trials int, fn func(cell, trial int) T) [][]T {
	return mapGrid(ctx, workers, cells, trials, true, fn)
}

// mapGrid is the one worker-pool implementation behind every MapGrid
// variant, parameterized by the warm barrier: with warm set, trial 0 of
// every cell completes before any trial ≥ 1 is dispatched.
func mapGrid[T any](ctx context.Context, workers, cells, trials int, warm bool, fn func(cell, trial int) T) [][]T {
	if warm && trials > 1 {
		warmed := mapGrid(ctx, workers, cells, 1, false, fn)
		rest := mapGrid(ctx, workers, cells, trials-1, false, func(cell, trial int) T {
			return fn(cell, trial+1)
		})
		out := make([][]T, cells)
		for c := range out {
			out[c] = append(warmed[c], rest[c]...)
		}
		return out
	}
	out := make([][]T, cells)
	for c := range out {
		out[c] = make([]T, trials)
	}
	if total := cells * trials; workers > total {
		workers = total
	}
	if workers <= 1 {
		for c := 0; c < cells; c++ {
			for tr := 0; tr < trials; tr++ {
				if ctx.Err() != nil {
					return out
				}
				out[c][tr] = fn(c, tr)
			}
		}
		return out
	}
	jobs := make(chan gridJob, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out[j.cell][j.trial] = fn(j.cell, j.trial)
			}
		}()
	}
dispatch:
	for c := 0; c < cells; c++ {
		for tr := 0; tr < trials; tr++ {
			select {
			case jobs <- gridJob{cell: c, trial: tr}:
			case <-ctx.Done():
				break dispatch
			}
		}
	}
	close(jobs)
	wg.Wait()
	return out
}
