package graph

import (
	"math/rand"
	"testing"
)

// randomSimple builds a random simple connected graph in overlay (mutable)
// form: a spanning path plus extra random edges.
func randomSimple(t *testing.T, n int, extra int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 1; u < n; u++ {
		g.MustAddEdge(u-1, u)
	}
	for added := 0; added < extra; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
		added++
	}
	return g
}

// TestCSRStructure checks the invariants of the compacted arrays: offsets
// are monotone with off[0]=0 and off[n]=2m, every row is strictly sorted,
// and the relation is symmetric.
func TestCSRStructure(t *testing.T) {
	g := randomSimple(t, 200, 300, 7)
	off, tgt := g.CSR()
	if len(off) != g.N()+1 {
		t.Fatalf("len(off) = %d, want %d", len(off), g.N()+1)
	}
	if off[0] != 0 || int(off[g.N()]) != 2*g.M() {
		t.Fatalf("off bounds = [%d, %d], want [0, %d]", off[0], off[g.N()], 2*g.M())
	}
	if len(tgt) != 2*g.M() {
		t.Fatalf("len(tgt) = %d, want %d", len(tgt), 2*g.M())
	}
	for u := 0; u < g.N(); u++ {
		if off[u] > off[u+1] {
			t.Fatalf("off not monotone at %d: %d > %d", u, off[u], off[u+1])
		}
		row := tgt[off[u]:off[u+1]]
		for i, v := range row {
			if i > 0 && row[i-1] >= v {
				t.Fatalf("row %d not strictly sorted: %v", u, row)
			}
			if !g.HasEdge(int(v), u) {
				t.Fatalf("edge {%d,%d} present but not its mirror", u, v)
			}
		}
	}
}

// TestCSRReadsMatchOverlay checks that Degree, Neighbor, Neighbors and
// HasEdge answer identically from the mutable overlay and from the compacted
// CSR form of the same graph.
func TestCSRReadsMatchOverlay(t *testing.T) {
	overlay := randomSimple(t, 150, 200, 11)
	compacted := overlay.Clone()
	compacted.CSR() // force compaction; overlay stays in mutable form
	if overlay.adj == nil {
		t.Fatal("overlay graph unexpectedly compacted")
	}
	if compacted.adj != nil {
		t.Fatal("compacted graph still has the overlay")
	}
	for u := 0; u < overlay.N(); u++ {
		if do, dc := overlay.Degree(u), compacted.Degree(u); do != dc {
			t.Fatalf("Degree(%d): overlay %d, csr %d", u, do, dc)
		}
		for i := 0; i < overlay.Degree(u); i++ {
			if no, nc := overlay.Neighbor(u, i), compacted.Neighbor(u, i); no != nc {
				t.Fatalf("Neighbor(%d,%d): overlay %d, csr %d", u, i, no, nc)
			}
		}
	}
	for u := 0; u < overlay.N(); u++ {
		for v := 0; v < overlay.N(); v++ {
			if overlay.HasEdge(u, v) != compacted.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) disagrees between forms", u, v)
			}
		}
	}
	if !overlay.Equal(compacted) || !compacted.Equal(overlay) {
		t.Fatal("Equal disagrees between forms")
	}
}

// TestCSRMutationRoundTrip checks that edits after compaction re-enter the
// overlay, are visible immediately, and compact back into consistent arrays.
func TestCSRMutationRoundTrip(t *testing.T) {
	g := randomSimple(t, 64, 40, 3)
	g.CSR()
	m := g.M()
	g.MustRemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.M() != m-1 {
		t.Fatalf("remove not visible: HasEdge=%v m=%d", g.HasEdge(0, 1), g.M())
	}
	if g.adj == nil {
		t.Fatal("mutation did not re-enter the overlay form")
	}
	g.MustAddEdge(0, 63)
	off, tgt := g.CSR()
	if int(off[g.N()]) != 2*g.M() || len(tgt) != 2*g.M() {
		t.Fatalf("recompaction inconsistent: off[n]=%d len(tgt)=%d m=%d", off[g.N()], len(tgt), g.M())
	}
	if !g.HasEdge(0, 63) || g.HasEdge(0, 1) {
		t.Fatal("edits lost across recompaction")
	}
	// A second CSR call without edits must return the same backing arrays.
	off2, tgt2 := g.CSR()
	if &off2[0] != &off[0] || &tgt2[0] != &tgt[0] {
		t.Fatal("CSR recompacted without pending edits")
	}
}

// TestCSREdgeless covers isolated nodes: empty rows and empty targets.
func TestCSREdgeless(t *testing.T) {
	g := New(3)
	off, tgt := g.CSR()
	if len(off) != 4 || len(tgt) != 0 {
		t.Fatalf("edgeless CSR: off=%v tgt=%v", off, tgt)
	}
	for _, o := range off {
		if o != 0 {
			t.Fatalf("edgeless offsets must be zero: %v", off)
		}
	}
	if g.Degree(1) != 0 {
		t.Fatalf("Degree(1) = %d on edgeless graph", g.Degree(1))
	}
}
