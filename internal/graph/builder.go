package graph

import (
	"fmt"
	"slices"
)

// Builder accumulates an edge list and compiles it into a Graph directly in
// CSR form, without ever materializing per-node slices. Structured
// generators (rings, tori, hypercubes, ...) know their full edge set up
// front, so they build through it: two counting passes plus one sort per
// node replace m insertSorted calls and n incremental slice growths, which
// is what makes million-node topologies cheap to generate.
type Builder struct {
	n      int
	us, vs []int32
}

// NewBuilder returns a builder for a graph on n nodes, pre-sizing the edge
// list for edgeHint edges (0 is fine). It panics if n is negative.
func NewBuilder(n, edgeHint int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	if edgeHint < 0 {
		edgeHint = 0
	}
	return &Builder{
		n:  n,
		us: make([]int32, 0, edgeHint),
		vs: make([]int32, 0, edgeHint),
	}
}

// Add records the undirected edge {u, v}. Range violations and self-loops
// panic immediately (they are generator bugs); duplicate edges are detected
// at Graph time.
func (b *Builder) Add(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on node %d is not allowed", u))
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
}

// Graph compiles the accumulated edges into a compact CSR graph: count
// degrees, prefix-sum into offsets, scatter both edge directions, sort each
// node's range, and reject duplicates. The builder can be reused afterwards
// only by discarding it; the returned graph owns fresh arrays.
func (b *Builder) Graph() (*Graph, error) {
	off := make([]int32, b.n+1)
	for i := range b.us {
		off[b.us[i]+1]++
		off[b.vs[i]+1]++
	}
	for u := 0; u < b.n; u++ {
		off[u+1] += off[u]
	}
	tgt := make([]int32, 2*len(b.us))
	next := make([]int32, b.n)
	copy(next, off[:b.n])
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		tgt[next[u]] = v
		next[u]++
		tgt[next[v]] = u
		next[v]++
	}
	for u := 0; u < b.n; u++ {
		row := tgt[off[u]:off[u+1]]
		slices.Sort(row)
		for i := 1; i < len(row); i++ {
			if row[i] == row[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge {%d,%d}", u, row[i])
			}
		}
	}
	return &Graph{n: b.n, m: len(b.us), off: off, tgt: tgt}, nil
}

// MustGraph is Graph for edge sets known to be duplicate-free (structured
// generators); it panics on error.
func (b *Builder) MustGraph() *Graph {
	g, err := b.Graph()
	if err != nil {
		panic(err)
	}
	return g
}
