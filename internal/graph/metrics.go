package graph

import "fmt"

// This file contains structural metrics used by the complexity experiments:
// BFS distances, diameter D, number of edges m, maximum degree Δ, the
// cyclomatic number (used to parameterise the Boulinier-Petit-Villain unison
// baseline), and an estimate of the longest chordless cycle length T_G.

// BFS returns the vector of hop distances from src to every node.
// Unreachable nodes get distance -1. It panics when src is out of range.
func (g *Graph) BFS(src int) []int {
	if src < 0 || src >= g.n {
		panic(fmt.Sprintf("graph: BFS source %d out of range [0,%d)", src, g.n))
	}
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.row(u) {
			v := int(w)
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Distance returns the hop distance between u and v, or -1 when disconnected.
func (g *Graph) Distance(u, v int) int {
	return g.BFS(u)[v]
}

// Eccentricity returns the eccentricity of u: the maximum distance from u to
// any other node. It returns -1 when the graph is disconnected.
func (g *Graph) Eccentricity(u int) int {
	ecc := 0
	for _, d := range g.BFS(u) {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns D, the maximum distance between any pair of nodes.
// It returns -1 when the graph is disconnected and 0 for a single node.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return 0
	}
	diam := 0
	for u := 0; u < g.n; u++ {
		ecc := g.Eccentricity(u)
		if ecc < 0 {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// Radius returns the minimum eccentricity over all nodes, or -1 when the
// graph is disconnected.
func (g *Graph) Radius() int {
	if g.n == 0 {
		return 0
	}
	radius := -1
	for u := 0; u < g.n; u++ {
		ecc := g.Eccentricity(u)
		if ecc < 0 {
			return -1
		}
		if radius < 0 || ecc < radius {
			radius = ecc
		}
	}
	return radius
}

// CyclomaticNumber returns m - n + c where c is the number of connected
// components. For a connected graph this is the dimension of the cycle space,
// i.e. the number of independent cycles; it is 0 exactly for trees/forests.
func (g *Graph) CyclomaticNumber() int {
	return g.m - g.n + g.componentCount()
}

func (g *Graph) componentCount() int {
	seen := make([]bool, g.n)
	count := 0
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		count++
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.row(u) {
				v := int(w)
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return count
}

// IsTree reports whether the graph is a tree (connected and acyclic).
func (g *Graph) IsTree() bool {
	return g.Connected() && g.m == g.n-1
}

// Girth returns the length of the shortest cycle, or 0 when the graph is
// acyclic. It runs a BFS from every node, which is sufficient for the modest
// network sizes used in simulation.
func (g *Graph) Girth() int {
	best := 0
	for s := 0; s < g.n; s++ {
		dist := make([]int, g.n)
		parent := make([]int, g.n)
		for i := range dist {
			dist[i] = -1
			parent[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.row(u) {
				v := int(w)
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					parent[v] = u
					queue = append(queue, v)
				} else if parent[u] != v {
					cycle := dist[u] + dist[v] + 1
					if best == 0 || cycle < best {
						best = cycle
					}
				}
			}
		}
	}
	return best
}

// LongestChordlessCycle returns T_G, the length of the longest chordless
// (induced) cycle, or 0 when the graph is acyclic. The Boulinier-Petit-Villain
// unison baseline requires a parameter α ≥ T_G - 2, so T_G is needed to run
// the baseline with its smallest legal parameters.
//
// The computation enumerates induced cycles by depth-first search from each
// start node; it is exponential in the worst case but the simulated networks
// are small (tens of nodes). maxLen caps the search; pass 0 for no cap.
func (g *Graph) LongestChordlessCycle(maxLen int) int {
	if maxLen <= 0 || maxLen > g.n {
		maxLen = g.n
	}
	best := 0
	inPath := make([]bool, g.n)
	path := make([]int, 0, maxLen)

	var dfs func(start, cur int)
	dfs = func(start, cur int) {
		if len(path) > maxLen {
			return
		}
		for _, w := range g.row(cur) {
			next := int(w)
			if next == start && len(path) >= 3 {
				// Candidate cycle: verify chordlessness (the path is induced
				// by construction except possibly for chords to the start).
				if isChordlessCycle(g, path) && len(path) > best {
					best = len(path)
				}
				continue
			}
			// Only extend to larger-indexed nodes than start to avoid
			// enumerating every rotation of the same cycle.
			if next <= start || inPath[next] {
				continue
			}
			// Induced-path check: next may only be adjacent to cur among the
			// current path nodes (and possibly to start, forming the cycle
			// closure which is checked above).
			ok := true
			for _, p := range path {
				if p != cur && p != start && g.HasEdge(next, p) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			inPath[next] = true
			path = append(path, next)
			dfs(start, next)
			path = path[:len(path)-1]
			inPath[next] = false
		}
	}

	for s := 0; s < g.n; s++ {
		inPath[s] = true
		path = append(path[:0], s)
		dfs(s, s)
		inPath[s] = false
	}
	return best
}

func isChordlessCycle(g *Graph, cycle []int) bool {
	k := len(cycle)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			adjacentOnCycle := j == i+1 || (i == 0 && j == k-1)
			if !adjacentOnCycle && g.HasEdge(cycle[i], cycle[j]) {
				return false
			}
		}
	}
	return true
}

// Stats bundles the structural quantities the complexity bounds depend on.
type Stats struct {
	N          int // number of processes n
	M          int // number of edges m
	MaxDegree  int // Δ
	Diameter   int // D
	Cyclomatic int // m - n + 1 for connected graphs
	IsTree     bool
}

// ComputeStats returns the structural statistics of the graph.
func (g *Graph) ComputeStats() Stats {
	return Stats{
		N:          g.n,
		M:          g.m,
		MaxDegree:  g.MaxDegree(),
		Diameter:   g.Diameter(),
		Cyclomatic: g.CyclomaticNumber(),
		IsTree:     g.IsTree(),
	}
}
