package graph

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Errorf("N() = %d, want 5", g.N())
	}
	if g.M() != 0 {
		t.Errorf("M() = %d, want 0", g.M())
	}
	if g.Connected() {
		t.Errorf("5 isolated nodes reported connected")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdge(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {0,1} not symmetric")
	}
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Errorf("unexpected degrees %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	cases := []struct {
		name string
		u, v int
	}{
		{"self-loop", 1, 1},
		{"out of range low", -1, 0},
		{"out of range high", 0, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := g.AddEdge(tc.u, tc.v); err == nil {
				t.Errorf("AddEdge(%d,%d) succeeded, want error", tc.u, tc.v)
			}
		})
	}
	g.MustAddEdge(0, 1)
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(2, 1)
	ns := g.Neighbors(2)
	want := []int{0, 1, 3, 4}
	if len(ns) != len(want) {
		t.Fatalf("neighbours = %v, want %v", ns, want)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("neighbours = %v, want %v", ns, want)
		}
	}
}

func TestNeighborsCopyIsolation(t *testing.T) {
	g := Ring(4)
	c := g.NeighborsCopy(0)
	c[0] = 99
	if g.Neighbors(0)[0] == 99 {
		t.Error("NeighborsCopy returned a slice aliasing internal storage")
	}
}

func TestCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomConnected(20, 0.2, rng)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.MustAddEdge(firstNonEdge(c))
	if g.Equal(c) {
		t.Fatal("graphs with different edge sets reported equal")
	}
}

func firstNonEdge(g *Graph) (int, int) {
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if !g.HasEdge(u, v) {
				return u, v
			}
		}
	}
	panic("graph is complete")
}

func TestValidate(t *testing.T) {
	if err := New(0).Validate(); err == nil {
		t.Error("empty graph validated")
	}
	if err := New(3).Validate(); err == nil {
		t.Error("disconnected graph validated")
	}
	if err := Ring(5).Validate(); err != nil {
		t.Errorf("ring failed validation: %v", err)
	}
}

func TestGeneratorsBasicShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name     string
		g        *Graph
		n, m     int
		diameter int // -1 to skip
	}{
		{"ring5", Ring(5), 5, 5, 2},
		{"ring6", Ring(6), 6, 6, 3},
		{"path4", Path(4), 4, 3, 3},
		{"path1", Path(1), 1, 0, 0},
		{"star6", Star(6), 6, 5, 2},
		{"complete4", Complete(4), 4, 6, 1},
		{"binarytree7", BinaryTree(7), 7, 6, 4},
		{"grid3x3", Grid(3, 3), 9, 12, 4},
		{"torus3x3", Torus(3, 3), 9, 18, 2},
		{"hypercube3", Hypercube(3), 8, 12, 3},
		{"caterpillar", Caterpillar(3, 2), 9, 8, 4},
		{"lollipop", Lollipop(4, 3), 7, 9, 4},
		{"randomtree", RandomTree(10, rng), 10, 9, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n {
				t.Errorf("N = %d, want %d", tc.g.N(), tc.n)
			}
			if tc.g.M() != tc.m {
				t.Errorf("M = %d, want %d", tc.g.M(), tc.m)
			}
			if !tc.g.Connected() {
				t.Error("generator produced a disconnected graph")
			}
			if tc.diameter >= 0 {
				if d := tc.g.Diameter(); d != tc.diameter {
					t.Errorf("Diameter = %d, want %d", d, tc.diameter)
				}
			}
		})
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"ring too small", func() { Ring(2) }},
		{"path zero", func() { Path(0) }},
		{"star one", func() { Star(1) }},
		{"complete zero", func() { Complete(0) }},
		{"grid zero", func() { Grid(0, 3) }},
		{"torus small", func() { Torus(2, 3) }},
		{"hypercube zero", func() { Hypercube(0) }},
		{"caterpillar", func() { Caterpillar(0, 1) }},
		{"lollipop", func() { Lollipop(2, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		n := 1 + rng.Intn(40)
		p := rng.Float64() * 0.3
		g := RandomConnected(n, p, rng)
		if !g.Connected() {
			t.Fatalf("RandomConnected(%d, %v) not connected", n, p)
		}
		if g.N() != n {
			t.Fatalf("node count %d, want %d", g.N(), n)
		}
	}
}

func TestRandomRegularishMinDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, minDeg := range []int{1, 2, 3, 5} {
		g := RandomRegularish(12, minDeg, rng)
		if !g.Connected() {
			t.Fatalf("minDegree=%d: not connected", minDeg)
		}
		if g.MinDegree() < minDeg {
			t.Fatalf("minDegree=%d: got min degree %d", minDeg, g.MinDegree())
		}
	}
}

func TestBFSAndDistances(t *testing.T) {
	g := Path(5)
	dist := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	if d := g.Distance(1, 4); d != 3 {
		t.Errorf("Distance(1,4) = %d, want 3", d)
	}
	disconnected := New(3)
	disconnected.MustAddEdge(0, 1)
	if d := disconnected.Distance(0, 2); d != -1 {
		t.Errorf("Distance in disconnected graph = %d, want -1", d)
	}
	if diam := disconnected.Diameter(); diam != -1 {
		t.Errorf("Diameter of disconnected graph = %d, want -1", diam)
	}
}

func TestEccentricityRadius(t *testing.T) {
	g := Path(5)
	if ecc := g.Eccentricity(2); ecc != 2 {
		t.Errorf("Eccentricity(2) = %d, want 2", ecc)
	}
	if ecc := g.Eccentricity(0); ecc != 4 {
		t.Errorf("Eccentricity(0) = %d, want 4", ecc)
	}
	if r := g.Radius(); r != 2 {
		t.Errorf("Radius = %d, want 2", r)
	}
}

func TestCyclomaticNumber(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"tree", BinaryTree(7), 0},
		{"ring", Ring(6), 1},
		{"complete4", Complete(4), 3},
		{"grid2x3", Grid(2, 3), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.CyclomaticNumber(); got != tc.want {
				t.Errorf("CyclomaticNumber = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestIsTree(t *testing.T) {
	if !BinaryTree(15).IsTree() {
		t.Error("binary tree not recognised as tree")
	}
	if Ring(5).IsTree() {
		t.Error("ring recognised as tree")
	}
	if New(3).IsTree() {
		t.Error("disconnected graph recognised as tree")
	}
}

func TestGirth(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"tree", Path(6), 0},
		{"triangle", Complete(3), 3},
		{"ring7", Ring(7), 7},
		{"grid", Grid(3, 3), 4},
		{"complete5", Complete(5), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.Girth(); got != tc.want {
				t.Errorf("Girth = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestLongestChordlessCycle(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"tree", BinaryTree(7), 0},
		{"ring8", Ring(8), 8},
		{"complete5", Complete(5), 3},
		{"grid3x3", Grid(3, 3), 8}, // outer boundary of the 3x3 grid is induced
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.LongestChordlessCycle(0); got != tc.want {
				t.Errorf("LongestChordlessCycle = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestComputeStats(t *testing.T) {
	s := Ring(10).ComputeStats()
	if s.N != 10 || s.M != 10 || s.MaxDegree != 2 || s.Diameter != 5 || s.Cyclomatic != 1 || s.IsTree {
		t.Errorf("unexpected stats %+v", s)
	}
}

func TestDOT(t *testing.T) {
	g := Path(3)
	dot := g.DOT("")
	if dot == "" {
		t.Fatal("empty DOT output")
	}
	for _, want := range []string{"graph G {", "0 -- 1;", "1 -- 2;"} {
		if !contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (haystack == needle || indexOf(haystack, needle) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomConnected(15, 0.2, rng)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !g.Equal(&back) {
		t.Error("JSON round trip changed the graph")
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"n": 2, "edges": [[0, 5]]}`), &g); err == nil {
		t.Error("invalid edge accepted")
	}
	if err := json.Unmarshal([]byte(`not json`), &g); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if !g.Equal(Path(4)) {
		t.Error("FromEdges did not reproduce the path")
	}
	if _, err := FromEdges(2, [][2]int{{0, 0}}); err == nil {
		t.Error("FromEdges accepted a self-loop")
	}
}

// Property: the handshake lemma holds for every generated graph.
func TestQuickHandshakeLemma(t *testing.T) {
	f := func(seed int64, size uint8, prob uint8) bool {
		n := 1 + int(size)%50
		p := float64(prob%100) / 100
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, p, rng)
		sum := 0
		for u := 0; u < g.N(); u++ {
			sum += g.Degree(u)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: BFS distances satisfy the triangle-like edge condition
// |dist(u) - dist(v)| <= 1 for every edge {u, v}.
func TestQuickBFSEdgeCondition(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := 2 + int(size)%40
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, 0.15, rng)
		dist := g.BFS(0)
		for _, e := range g.Edges() {
			d := dist[e[0]] - dist[e[1]]
			if d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: diameter of a ring of n nodes is floor(n/2); of a path, n-1.
func TestQuickKnownDiameters(t *testing.T) {
	f := func(size uint8) bool {
		n := 3 + int(size)%30
		if Ring(n).Diameter() != n/2 {
			return false
		}
		return Path(n).Diameter() == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
