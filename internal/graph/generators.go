package graph

import (
	"fmt"
	"math/rand"
)

// The generators in this file build the topology families used by the
// experiments: rings and paths (worst cases for wave algorithms), trees,
// grids and tori (bounded-degree topologies), stars (low diameter / high
// degree), hypercubes, random connected graphs, and a few pathological
// shapes (caterpillar, lollipop) used to stress the daemon.
//
// Structured families compile their edge set through a Builder straight
// into CSR form; only the random families that probe the partial graph
// while building (RandomConnected, RandomRegularish) grow incrementally.

// Ring returns a cycle C_n. It panics for n < 3.
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: ring requires n >= 3, got %d", n))
	}
	b := NewBuilder(n, n)
	for u := 0; u < n; u++ {
		b.Add(u, (u+1)%n)
	}
	return b.MustGraph()
}

// Path returns a path P_n. It panics for n < 1.
func Path(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: path requires n >= 1, got %d", n))
	}
	b := NewBuilder(n, n-1)
	for u := 0; u+1 < n; u++ {
		b.Add(u, u+1)
	}
	return b.MustGraph()
}

// Star returns a star K_{1,n-1} with node 0 at the centre. It panics for n < 2.
func Star(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: star requires n >= 2, got %d", n))
	}
	b := NewBuilder(n, n-1)
	for u := 1; u < n; u++ {
		b.Add(0, u)
	}
	return b.MustGraph()
}

// Complete returns the complete graph K_n. It panics for n < 1.
func Complete(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: complete graph requires n >= 1, got %d", n))
	}
	b := NewBuilder(n, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.Add(u, v)
		}
	}
	return b.MustGraph()
}

// BinaryTree returns a complete-ish binary tree with n nodes rooted at 0.
// It panics for n < 1.
func BinaryTree(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: binary tree requires n >= 1, got %d", n))
	}
	b := NewBuilder(n, n-1)
	for u := 1; u < n; u++ {
		b.Add(u, (u-1)/2)
	}
	return b.MustGraph()
}

// Grid returns an rows x cols grid graph. It panics when rows or cols < 1.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("graph: grid requires positive dimensions, got %dx%d", rows, cols))
	}
	b := NewBuilder(rows*cols, 2*rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.Add(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.Add(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustGraph()
}

// Torus returns an rows x cols torus (grid with wrap-around edges).
// It panics when rows or cols < 3 (smaller sizes create multi-edges).
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: torus requires dimensions >= 3, got %dx%d", rows, cols))
	}
	b := NewBuilder(rows*cols, 2*rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.Add(id(r, c), id(r, (c+1)%cols))
			b.Add(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.MustGraph()
}

// Hypercube returns the d-dimensional hypercube Q_d with 2^d nodes.
// It panics for d < 1 or d > 20.
func Hypercube(d int) *Graph {
	if d < 1 || d > 20 {
		panic(fmt.Sprintf("graph: hypercube dimension must be in [1,20], got %d", d))
	}
	n := 1 << uint(d)
	b := NewBuilder(n, n*d/2)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << uint(bit))
			if u < v {
				b.Add(u, v)
			}
		}
	}
	return b.MustGraph()
}

// Caterpillar returns a caterpillar tree: a spine path of length spine with
// legs pendant nodes attached to every spine node. Total nodes: spine*(legs+1).
// It panics when spine < 1 or legs < 0.
func Caterpillar(spine, legs int) *Graph {
	if spine < 1 || legs < 0 {
		panic(fmt.Sprintf("graph: caterpillar requires spine >= 1 and legs >= 0, got %d, %d", spine, legs))
	}
	n := spine * (legs + 1)
	b := NewBuilder(n, n-1)
	for s := 0; s+1 < spine; s++ {
		b.Add(s, s+1)
	}
	next := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			b.Add(s, next)
			next++
		}
	}
	return b.MustGraph()
}

// Lollipop returns a lollipop graph: a clique of size cliqueSize joined to a
// path of length pathLen by a single edge. It panics when cliqueSize < 3 or
// pathLen < 1.
func Lollipop(cliqueSize, pathLen int) *Graph {
	if cliqueSize < 3 || pathLen < 1 {
		panic(fmt.Sprintf("graph: lollipop requires clique >= 3 and path >= 1, got %d, %d", cliqueSize, pathLen))
	}
	b := NewBuilder(cliqueSize+pathLen, cliqueSize*(cliqueSize-1)/2+pathLen)
	for u := 0; u < cliqueSize; u++ {
		for v := u + 1; v < cliqueSize; v++ {
			b.Add(u, v)
		}
	}
	b.Add(cliqueSize-1, cliqueSize)
	for u := cliqueSize; u+1 < cliqueSize+pathLen; u++ {
		b.Add(u, u+1)
	}
	return b.MustGraph()
}

// RandomTree returns a uniformly random labelled tree on n nodes built from a
// random Prüfer-like attachment: node i attaches to a uniformly random node
// in [0, i). It panics for n < 1.
func RandomTree(n int, rng *rand.Rand) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: random tree requires n >= 1, got %d", n))
	}
	b := NewBuilder(n, n-1)
	for u := 1; u < n; u++ {
		b.Add(u, rng.Intn(u))
	}
	return b.MustGraph()
}

// RandomConnected returns a random connected graph on n nodes: a random tree
// plus each remaining pair added independently with probability p.
// It panics when n < 1 or p is outside [0, 1].
func RandomConnected(n int, p float64, rng *rand.Rand) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: random connected graph requires n >= 1, got %d", n))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: edge probability must be in [0,1], got %v", p))
	}
	g := RandomTree(n, rng)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// RandomRegularish returns a random connected graph where every node has
// degree at least minDegree (when feasible). It starts from a random tree and
// adds random edges until the minimum degree constraint is met or the graph
// becomes complete. It panics when n < 1 or minDegree < 1.
func RandomRegularish(n, minDegree int, rng *rand.Rand) *Graph {
	if n < 1 || minDegree < 1 {
		panic(fmt.Sprintf("graph: invalid parameters n=%d minDegree=%d", n, minDegree))
	}
	g := RandomTree(n, rng)
	if minDegree >= n {
		minDegree = n - 1
	}
	maxEdges := n * (n - 1) / 2
	for g.MinDegree() < minDegree && g.M() < maxEdges {
		u := rng.Intn(n)
		if g.Degree(u) >= minDegree {
			continue
		}
		v := rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
	}
	return g
}
