// Package graph provides the undirected network model used throughout the
// reproduction of "Self-Stabilizing Distributed Cooperative Reset"
// (Devismes & Johnen, 2019).
//
// The communication network of the paper is a simple undirected connected
// graph G = (V, E) where V is the set of processes and E the set of edges.
// Algorithms never change the topology, they only read it; a Graph value is
// therefore immutable during execution steps. The churn subsystem, however,
// mutates the edge set *between* steps (AddEdge/RemoveEdge) to model
// topology faults — see internal/churn for the scheduling of such events.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over nodes 0..N-1.
//
// The zero value is an empty graph; use New or a generator to build one.
// Neighbour lists are kept sorted so that iteration order is deterministic,
// which keeps simulations reproducible.
type Graph struct {
	n   int
	adj [][]int
	m   int
}

// New returns an empty graph with n isolated nodes.
// It panics if n is negative.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{
		n:   n,
		adj: make([][]int, n),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge adds the undirected edge {u, v}.
// Self-loops and duplicate edges are rejected with an error, as the paper
// considers simple graphs only.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d is not allowed", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.m++
	return nil
}

// MustAddEdge adds the edge {u, v} and panics on error.
// It is intended for generators and tests where the edge is known to be valid.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge removes the undirected edge {u, v}. Removing an edge that is
// not present is rejected with an error. Removal may disconnect the graph;
// callers that need connectivity (the paper's model requires it for static
// networks) must re-check with Connected or Validate.
func (g *Graph) RemoveEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	if !g.HasEdge(u, v) {
		return fmt.Errorf("graph: edge {%d,%d} is not present", u, v)
	}
	g.adj[u] = deleteSorted(g.adj[u], v)
	g.adj[v] = deleteSorted(g.adj[v], u)
	g.m--
	return nil
}

// MustRemoveEdge removes the edge {u, v} and panics on error.
func (g *Graph) MustRemoveEdge(u, v int) {
	if err := g.RemoveEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is an edge of the graph.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	ns := g.adj[u]
	i := sort.SearchInts(ns, v)
	return i < len(ns) && ns[i] == v
}

// Neighbors returns the sorted neighbour list of u.
// The returned slice must not be modified by the caller.
func (g *Graph) Neighbors(u int) []int {
	return g.adj[u]
}

// NeighborsCopy returns a copy of the neighbour list of u.
func (g *Graph) NeighborsCopy(u int) []int {
	ns := g.adj[u]
	out := make([]int, len(ns))
	copy(out, ns)
	return out
}

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns Δ, the maximum degree of the graph (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) > d {
			d = len(g.adj[u])
		}
	}
	return d
}

// MinDegree returns the minimum degree of the graph (0 for an empty graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	d := len(g.adj[0])
	for u := 1; u < g.n; u++ {
		if len(g.adj[u]) < d {
			d = len(g.adj[u])
		}
	}
	return d
}

// Edges returns all edges {u, v} with u < v, in deterministic order.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return edges
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for u := 0; u < g.n; u++ {
		c.adj[u] = append([]int(nil), g.adj[u]...)
	}
	return c
}

// Equal reports whether g and h have the same node count and edge set.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for i, v := range g.adj[u] {
			if h.adj[u][i] != v {
				return false
			}
		}
	}
	return true
}

// Connected reports whether the graph is connected.
// The empty graph and the single-node graph are considered connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.n
}

// Validate returns an error when the graph is not a valid network for the
// paper's model: it must be non-empty and connected.
func (g *Graph) Validate() error {
	if g.n == 0 {
		return fmt.Errorf("graph: network must contain at least one process")
	}
	if !g.Connected() {
		return fmt.Errorf("graph: network must be connected (%d nodes, %d edges)", g.n, g.m)
	}
	return nil
}

// String returns a short human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, Δ=%d)", g.n, g.m, g.MaxDegree())
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func deleteSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
