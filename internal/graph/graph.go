// Package graph provides the undirected network model used throughout the
// reproduction of "Self-Stabilizing Distributed Cooperative Reset"
// (Devismes & Johnen, 2019).
//
// The communication network of the paper is a simple undirected connected
// graph G = (V, E) where V is the set of processes and E the set of edges.
// Algorithms never change the topology, they only read it; a Graph value is
// therefore immutable during execution steps. The churn subsystem, however,
// mutates the edge set *between* steps (AddEdge/RemoveEdge) to model
// topology faults — see internal/churn for the scheduling of such events.
//
// # Storage layout
//
// The canonical adjacency layout is CSR (compressed sparse row): one
// offsets array of n+1 int32 entries and one targets array holding the 2m
// neighbour indices, sorted within each node's range. Compared to the
// per-node []int slices it replaced, CSR removes n slice headers and n
// separate allocations, halves the bytes per neighbour entry, and lays all
// adjacency out contiguously — the layout the sharded engine streams over a
// million-node topology. Mutation (AddEdge/RemoveEdge) works on a per-node
// overlay that is compacted back into CSR on the next CSR() call; reads
// (Degree, Neighbor, HasEdge, iteration) are served from whichever form is
// current, so generators and churn events interleave edits and reads freely.
//
// Once compacted, the CSR arrays are only ever read, so any number of
// goroutines may call Degree/Neighbor/CSR concurrently; mutations are not
// synchronized and must happen between parallel phases (the engine's
// between-step injection boundary).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over nodes 0..N-1.
//
// The zero value is an empty graph; use New, a Builder or a generator to
// build one. Neighbour lists are kept sorted so that iteration order is
// deterministic, which keeps simulations reproducible.
type Graph struct {
	n int
	m int
	// Compact CSR form: off has n+1 entries and tgt holds the 2m neighbour
	// indices, sorted within each node's off[u]:off[u+1] range. Valid when
	// adj is nil.
	off []int32
	tgt []int32
	// Mutable overlay: per-node sorted neighbour lists, non-nil while the
	// graph is being built or edited. CSR() compacts it away.
	adj [][]int32
}

// New returns an empty graph with n isolated nodes, in mutable (overlay)
// form. It panics if n is negative.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{
		n:   n,
		adj: make([][]int32, n),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// ensureMutable explodes the CSR form into the per-node overlay so that an
// edge edit can be applied. The compact arrays are dropped; the next CSR()
// call rebuilds them.
func (g *Graph) ensureMutable() {
	if g.adj != nil {
		return
	}
	adj := make([][]int32, g.n)
	for u := 0; u < g.n; u++ {
		row := g.tgt[g.off[u]:g.off[u+1]]
		adj[u] = append(make([]int32, 0, len(row)), row...)
	}
	g.adj = adj
	g.off, g.tgt = nil, nil
}

// CSR returns the compact adjacency arrays (offsets, targets): the
// neighbours of u are targets[offsets[u]:offsets[u+1]], sorted. The graph is
// compacted first if it has pending edits. The returned slices are the
// graph's own storage — callers must not modify them, and a later mutation
// invalidates them. Call CSR (or any read) before fanning adjacency reads
// out to multiple goroutines so the compaction happens on one.
func (g *Graph) CSR() (offsets, targets []int32) {
	if g.adj != nil {
		g.compact()
	}
	return g.off, g.tgt
}

// compact rebuilds the CSR arrays from the overlay and drops it.
func (g *Graph) compact() {
	off := make([]int32, g.n+1)
	total := 0
	for u := 0; u < g.n; u++ {
		total += len(g.adj[u])
		off[u+1] = int32(total)
	}
	tgt := make([]int32, total)
	for u := 0; u < g.n; u++ {
		copy(tgt[off[u]:off[u+1]], g.adj[u])
	}
	g.off, g.tgt = off, tgt
	g.adj = nil
}

// AddEdge adds the undirected edge {u, v}.
// Self-loops and duplicate edges are rejected with an error, as the paper
// considers simple graphs only.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d is not allowed", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.ensureMutable()
	g.adj[u] = insertSorted(g.adj[u], int32(v))
	g.adj[v] = insertSorted(g.adj[v], int32(u))
	g.m++
	return nil
}

// MustAddEdge adds the edge {u, v} and panics on error.
// It is intended for generators and tests where the edge is known to be valid.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge removes the undirected edge {u, v}. Removing an edge that is
// not present is rejected with an error. Removal may disconnect the graph;
// callers that need connectivity (the paper's model requires it for static
// networks) must re-check with Connected or Validate.
func (g *Graph) RemoveEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	if !g.HasEdge(u, v) {
		return fmt.Errorf("graph: edge {%d,%d} is not present", u, v)
	}
	g.ensureMutable()
	g.adj[u] = deleteSorted(g.adj[u], int32(v))
	g.adj[v] = deleteSorted(g.adj[v], int32(u))
	g.m--
	return nil
}

// MustRemoveEdge removes the edge {u, v} and panics on error.
func (g *Graph) MustRemoveEdge(u, v int) {
	if err := g.RemoveEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is an edge of the graph.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	ns := g.row(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= int32(v) })
	return i < len(ns) && ns[i] == int32(v)
}

// row returns u's sorted neighbour list in whichever form is current.
func (g *Graph) row(u int) []int32 {
	if g.adj != nil {
		return g.adj[u]
	}
	return g.tgt[g.off[u]:g.off[u+1]]
}

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int {
	if g.adj != nil {
		return len(g.adj[u])
	}
	return int(g.off[u+1] - g.off[u])
}

// Neighbor returns the i-th neighbour of u (0 ≤ i < Degree(u)), in sorted
// order. Together with Degree it is the allocation-free iteration API that
// replaced the Neighbors slice accessor.
func (g *Graph) Neighbor(u, i int) int {
	if g.adj != nil {
		return int(g.adj[u][i])
	}
	return int(g.tgt[int(g.off[u])+i])
}

// Neighbors returns the sorted neighbour list of u as a fresh slice.
//
// Deprecated: Neighbors allocates on every call since the adjacency moved to
// the compact CSR layout. Iterate with Degree(u) and Neighbor(u, i), or grab
// the raw arrays with CSR(), instead.
func (g *Graph) Neighbors(u int) []int {
	ns := g.row(u)
	out := make([]int, len(ns))
	for i, v := range ns {
		out[i] = int(v)
	}
	return out
}

// NeighborsCopy returns a copy of the neighbour list of u.
//
// Deprecated: identical to Neighbors, which now always returns a fresh
// slice; iterate with Degree and Neighbor instead.
func (g *Graph) NeighborsCopy(u int) []int {
	return g.Neighbors(u)
}

// MaxDegree returns Δ, the maximum degree of the graph (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if deg := g.Degree(u); deg > d {
			d = deg
		}
	}
	return d
}

// MinDegree returns the minimum degree of the graph (0 for an empty graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	d := g.Degree(0)
	for u := 1; u < g.n; u++ {
		if deg := g.Degree(u); deg < d {
			d = deg
		}
	}
	return d
}

// Edges returns all edges {u, v} with u < v, in deterministic order.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.row(u) {
			if int32(u) < v {
				edges = append(edges, [2]int{u, int(v)})
			}
		}
	}
	return edges
}

// Clone returns a deep copy of the graph, in the same (compact or mutable)
// form.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, m: g.m}
	if g.adj != nil {
		c.adj = make([][]int32, g.n)
		for u := 0; u < g.n; u++ {
			c.adj[u] = append([]int32(nil), g.adj[u]...)
		}
		return c
	}
	c.off = append([]int32(nil), g.off...)
	c.tgt = append([]int32(nil), g.tgt...)
	return c
}

// Equal reports whether g and h have the same node count and edge set.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for u := 0; u < g.n; u++ {
		gr, hr := g.row(u), h.row(u)
		if len(gr) != len(hr) {
			return false
		}
		for i, v := range gr {
			if hr[i] != v {
				return false
			}
		}
	}
	return true
}

// Connected reports whether the graph is connected.
// The empty graph and the single-node graph are considered connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.row(u) {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, int(v))
			}
		}
	}
	return count == g.n
}

// Validate returns an error when the graph is not a valid network for the
// paper's model: it must be non-empty and connected.
func (g *Graph) Validate() error {
	if g.n == 0 {
		return fmt.Errorf("graph: network must contain at least one process")
	}
	if !g.Connected() {
		return fmt.Errorf("graph: network must be connected (%d nodes, %d edges)", g.n, g.m)
	}
	return nil
}

// String returns a short human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, Δ=%d)", g.n, g.m, g.MaxDegree())
}

func insertSorted(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func deleteSorted(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
