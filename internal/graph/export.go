package graph

import (
	"encoding/json"
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz DOT syntax, one edge per line, nodes
// labelled by their index. Useful for debugging topologies from the CLI.
func (g *Graph) DOT(name string) string {
	if name == "" {
		name = "G"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", name)
	for u := 0; u < g.n; u++ {
		if g.Degree(u) == 0 {
			fmt.Fprintf(&b, "  %d;\n", u)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %d -- %d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

// jsonGraph is the serialisation schema for MarshalJSON/UnmarshalJSON.
type jsonGraph struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// MarshalJSON encodes the graph as {"n": ..., "edges": [[u,v], ...]}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonGraph{N: g.n, Edges: g.Edges()})
}

// UnmarshalJSON decodes a graph encoded by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decoding JSON: %w", err)
	}
	fresh := New(jg.N)
	for _, e := range jg.Edges {
		if err := fresh.AddEdge(e[0], e[1]); err != nil {
			return fmt.Errorf("graph: decoding JSON: %w", err)
		}
	}
	*g = *fresh
	return nil
}

// FromEdges builds a graph with n nodes and the given edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}
