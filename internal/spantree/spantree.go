// Package spantree implements a third instantiation of the cooperative reset:
// a silent self-stabilizing breadth-first spanning tree construction for
// rooted identified networks, obtained by composing a simple
// (non self-stabilizing) BFS algorithm with Algorithm SDR.
//
// The paper presents SDR as a general method: any locally checkable input
// algorithm becomes self-stabilizing through the composition, and static
// specifications yield silent algorithms (Section 1.1). The unison and
// (f,g)-alliance instantiations are the two the paper evaluates; this package
// exercises the claim on the classical BFS-tree benchmark used by the related
// work the paper cites (Huang-Chen, and the silent BFS constructions revisited
// in [22]).
//
// Algorithm B: every process u maintains a distance dist_u and a parent
// pointer par_u (the identifier of a neighbour, or ⊥). The root keeps
// (0, ⊥); every other process starts at (maxDist, ⊥) and repeatedly adopts
// min_{v ∈ N(u)} dist_v + 1 as its distance, pointing par_u at a neighbour
// realising the minimum. Distances only decrease, so B terminates from its
// initial configuration; at termination dist equals the true breadth-first
// distance from the root and the parent pointers form a BFS spanning tree.
package spantree

import (
	"fmt"
	"strconv"

	"sdr/internal/core"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

// NoParent is the ⊥ value of the parent pointer.
const NoParent = -1

// NodeState is the local state of Algorithm B: the distance estimate and the
// parent pointer (a neighbour identifier, or NoParent).
type NodeState struct {
	// Dist is the current distance estimate to the root.
	Dist int
	// Parent is the identifier of the parent neighbour, or NoParent.
	Parent int
}

var _ sim.State = NodeState{}

// Clone implements sim.State.
func (s NodeState) Clone() sim.State { return s }

// Equal implements sim.State.
func (s NodeState) Equal(other sim.State) bool {
	o, ok := other.(NodeState)
	return ok && s == o
}

// String implements sim.State.
func (s NodeState) String() string {
	if s.Parent == NoParent {
		return fmt.Sprintf("d=%d p=⊥", s.Dist)
	}
	return fmt.Sprintf("d=%d p=%d", s.Dist, s.Parent)
}

// AppendStateKey implements sim.KeyAppender: exactly the String() bytes,
// without allocating.
func (s NodeState) AppendStateKey(dst []byte) []byte {
	dst = append(dst, "d="...)
	dst = strconv.AppendInt(dst, int64(s.Dist), 10)
	dst = append(dst, " p="...)
	if s.Parent == NoParent {
		return append(dst, "⊥"...)
	}
	return strconv.AppendInt(dst, int64(s.Parent), 10)
}

// Key64 implements sim.KeyedState: the zigzagged distance and parent packed
// half-and-half, when both fit 32 bits.
func (s NodeState) Key64() (uint64, bool) {
	zd, zp := sim.ZigZag64(s.Dist), sim.ZigZag64(s.Parent)
	if zd >= 1<<32 || zp >= 1<<32 {
		return 0, false
	}
	return zd<<32 | zp, true
}

// BFS is Algorithm B, designed to be composed with SDR. It implements
// core.Resettable for a fixed root identifier and a fixed distance cap
// maxDist (the "infinity" value of unreached processes; any value at least
// the number of processes works).
type BFS struct {
	rootID  int
	maxDist int
}

var (
	_ core.Resettable      = (*BFS)(nil)
	_ core.InnerEnumerable = (*BFS)(nil)
)

// New returns Algorithm B rooted at the process with identifier rootID,
// using maxDist as the unreached-distance value. It panics when maxDist < 1.
func New(rootID, maxDist int) *BFS {
	if maxDist < 1 {
		panic(fmt.Sprintf("spantree: maxDist must be at least 1, got %d", maxDist))
	}
	return &BFS{rootID: rootID, maxDist: maxDist}
}

// NewFor returns Algorithm B for the given topology, rooted at the process
// with index rootProcess (identifier rootProcess under the default identifier
// assignment) and maxDist = n.
func NewFor(g *graph.Graph, rootProcess int) *BFS {
	if rootProcess < 0 || rootProcess >= g.N() {
		panic(fmt.Sprintf("spantree: root %d out of range [0,%d)", rootProcess, g.N()))
	}
	return New(rootProcess, g.N())
}

// RootID returns the identifier of the root.
func (b *BFS) RootID() int { return b.rootID }

// MaxDist returns the unreached-distance value.
func (b *BFS) MaxDist() int { return b.maxDist }

// Name implements core.Resettable.
func (b *BFS) Name() string { return fmt.Sprintf("BFS(root=%d)", b.rootID) }

// isRoot reports whether the viewed process is the root.
func (b *BFS) isRoot(v core.InnerView) bool { return v.ID() == b.rootID }

// stateOf extracts a NodeState, panicking on foreign types.
func stateOf(s sim.State) NodeState {
	ns, ok := s.(NodeState)
	if !ok {
		panic(fmt.Sprintf("spantree: expected NodeState, got %T", s))
	}
	return ns
}

// resetFor returns the pre-defined state of a process: (0, ⊥) for the root,
// (maxDist, ⊥) for every other process.
func (b *BFS) resetFor(id int) NodeState {
	if id == b.rootID {
		return NodeState{Dist: 0, Parent: NoParent}
	}
	return NodeState{Dist: b.maxDist, Parent: NoParent}
}

// InitialInner implements core.Resettable.
func (b *BFS) InitialInner(u int, net *sim.Network) sim.State { return b.resetFor(net.ID(u)) }

// ResetState implements core.Resettable.
func (b *BFS) ResetState(u int, net *sim.Network) sim.State { return b.resetFor(net.ID(u)) }

// IsReset implements core.Resettable: P_reset(u) recognises exactly the
// pre-defined state of process u — (0, ⊥) for the root, (maxDist, ⊥) for
// every other process. The distinction matters: accepting (0, ⊥) at a
// non-root would let a reset terminate in a locally incorrect state,
// breaking Requirement 2d and the no-alive-root-creation property.
func (b *BFS) IsReset(u int, net *sim.Network, inner sim.State) bool {
	s, ok := inner.(NodeState)
	if !ok {
		return false
	}
	return s.Equal(b.resetFor(net.ID(u)))
}

// parentDist returns the distance of the neighbour the parent pointer names,
// and whether such a neighbour exists.
func (b *BFS) parentDist(v core.InnerView, parent int) (int, bool) {
	for i := 0; i < v.Degree(); i++ {
		if v.NeighborID(i) == parent {
			return stateOf(v.Neighbor(i)).Dist, true
		}
	}
	return 0, false
}

// minNeighborDist returns the minimum distance among the neighbours and the
// identifier of the smallest-identifier neighbour realising it.
func (b *BFS) minNeighborDist(v core.InnerView) (dist, id int) {
	dist, id = b.maxDist, NoParent
	for i := 0; i < v.Degree(); i++ {
		d := stateOf(v.Neighbor(i)).Dist
		nid := v.NeighborID(i)
		if d < dist || (d == dist && (id == NoParent || nid < id)) {
			dist, id = d, nid
		}
	}
	return dist, id
}

// ICorrect implements core.Resettable. The local invariant is:
//
//	root u:     dist_u = 0 ∧ par_u = ⊥
//	other u:    1 ≤ dist_u ≤ maxDist ∧
//	            (dist_u = maxDist ∧ par_u = ⊥) ∨
//	            (par_u ∈ N(u) ∧ dist_u ≥ dist_{par_u} + 1)
//
// It holds in the pre-defined configuration, is closed under Algorithm B's
// moves (distances only decrease), and, in a terminal configuration, forces
// dist to be the exact BFS distance and the parent pointers to form a BFS
// spanning tree.
func (b *BFS) ICorrect(v core.InnerView) bool {
	self := stateOf(v.Self())
	if b.isRoot(v) {
		return self.Dist == 0 && self.Parent == NoParent
	}
	if self.Dist < 1 || self.Dist > b.maxDist {
		return false
	}
	if self.Parent == NoParent {
		return self.Dist == b.maxDist
	}
	pd, ok := b.parentDist(v, self.Parent)
	return ok && self.Dist >= pd+1
}

// RuleAdopt is the name of Algorithm B's single rule.
const RuleAdopt = "adopt"

// InnerRules implements core.Resettable: a non-root process adopts the
// minimum neighbour distance plus one whenever that improves its own
// distance.
func (b *BFS) InnerRules() []core.InnerRule {
	return []core.InnerRule{{
		Name: RuleAdopt,
		Guard: func(v core.InnerView) bool {
			if !v.Clean() || b.isRoot(v) {
				return false
			}
			minDist, _ := b.minNeighborDist(v)
			return minDist+1 < stateOf(v.Self()).Dist
		},
		Action: func(v core.InnerView) sim.State {
			minDist, id := b.minNeighborDist(v)
			return NodeState{Dist: minDist + 1, Parent: id}
		},
	}}
}

// EnumerateInner implements core.InnerEnumerable: distances 0..maxDist and
// parents in {⊥} ∪ identifiers of the neighbourhood.
func (b *BFS) EnumerateInner(u int, net *sim.Network) []sim.State {
	parents := []int{NoParent}
	for i, deg := 0, net.Degree(u); i < deg; i++ {
		parents = append(parents, net.ID(net.Neighbor(u, i)))
	}
	var out []sim.State
	for d := 0; d <= b.maxDist; d++ {
		for _, p := range parents {
			out = append(out, NodeState{Dist: d, Parent: p})
		}
	}
	return out
}

// InnerStateCount implements core.InnerIndexedEnumerable.
func (b *BFS) InnerStateCount(u int, net *sim.Network) int {
	return (b.maxDist + 1) * (net.Degree(u) + 1)
}

// InnerStateAt implements core.InnerIndexedEnumerable, reproducing
// EnumerateInner's order: distances outermost, the parent pointer (⊥ first,
// then the neighbours in local-label order) innermost.
func (b *BFS) InnerStateAt(u int, net *sim.Network, i int) sim.State {
	span := net.Degree(u) + 1
	d, pi := i/span, i%span
	if pi == 0 {
		return NodeState{Dist: d, Parent: NoParent}
	}
	return NodeState{Dist: d, Parent: net.ID(net.Neighbor(u, pi-1))}
}

// NewSelfStabilizing returns the silent self-stabilizing BFS spanning tree
// construction B ∘ SDR for the given topology and root process.
func NewSelfStabilizing(g *graph.Graph, rootProcess int) *core.Composed {
	return core.Compose(NewFor(g, rootProcess))
}

// Distances extracts the per-process distance estimates from a configuration
// of B (plain NodeState) or of B ∘ SDR (composed states).
func Distances(c *sim.Configuration) []int {
	out := make([]int, c.N())
	for u := 0; u < c.N(); u++ {
		out[u] = stateOf(innerOf(c.State(u))).Dist
	}
	return out
}

// Parents extracts the per-process parent identifiers from a configuration of
// B or of B ∘ SDR.
func Parents(c *sim.Configuration) []int {
	out := make([]int, c.N())
	for u := 0; u < c.N(); u++ {
		out[u] = stateOf(innerOf(c.State(u))).Parent
	}
	return out
}

func innerOf(s sim.State) sim.State {
	if cs, ok := s.(core.ComposedState); ok {
		return cs.Inner
	}
	return s
}

// VerifyTree checks that the distances and parent pointers of the
// configuration form a correct BFS spanning tree of g rooted at rootProcess
// (under the default identifier assignment id(u) = u): every distance equals
// the true breadth-first distance, the root has no parent, and every other
// process's parent is a neighbour one step closer to the root.
func VerifyTree(g *graph.Graph, rootProcess int, c *sim.Configuration) error {
	trueDist := g.BFS(rootProcess)
	dists := Distances(c)
	parents := Parents(c)
	for u := 0; u < g.N(); u++ {
		if dists[u] != trueDist[u] {
			return fmt.Errorf("spantree: process %d has distance %d, true distance is %d", u, dists[u], trueDist[u])
		}
		if u == rootProcess {
			if parents[u] != NoParent {
				return fmt.Errorf("spantree: the root %d has parent %d", u, parents[u])
			}
			continue
		}
		p := parents[u]
		if p == NoParent {
			return fmt.Errorf("spantree: process %d has no parent", u)
		}
		if !g.HasEdge(u, p) {
			return fmt.Errorf("spantree: process %d's parent %d is not a neighbour", u, p)
		}
		if trueDist[p] != trueDist[u]-1 {
			return fmt.Errorf("spantree: process %d (distance %d) points at %d (distance %d)", u, trueDist[u], p, trueDist[p])
		}
	}
	return nil
}

// MaxStandaloneMoves bounds the moves of Algorithm B alone from its
// pre-defined configuration: every move strictly decreases a distance, which
// starts at maxDist and ends at least at 1, so each process moves fewer than
// maxDist times.
func MaxStandaloneMoves(n, maxDist int) int { return n * maxDist }
