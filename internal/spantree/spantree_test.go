package spantree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sdr/internal/checker"
	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with maxDist < 1 must panic")
		}
	}()
	New(0, 0)
}

func TestNewForValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFor with an out-of-range root must panic")
		}
	}()
	NewFor(graph.Ring(4), 9)
}

func TestNodeStateBasics(t *testing.T) {
	s := NodeState{Dist: 2, Parent: 5}
	if !s.Equal(s.Clone()) || s.Equal(NodeState{Dist: 2, Parent: NoParent}) {
		t.Error("NodeState equality must be by value")
	}
	if !strings.Contains(s.String(), "p=5") {
		t.Errorf("String = %q should show the parent", s.String())
	}
	if !strings.Contains((NodeState{Dist: 4, Parent: NoParent}).String(), "⊥") {
		t.Error("a missing parent renders as ⊥")
	}
}

func TestResettableContract(t *testing.T) {
	g := graph.Ring(6)
	net := sim.NewNetwork(g)
	b := NewFor(g, 2)
	if b.RootID() != 2 || b.MaxDist() != 6 {
		t.Errorf("accessors: root=%d maxDist=%d", b.RootID(), b.MaxDist())
	}
	if !strings.Contains(b.Name(), "BFS") {
		t.Errorf("name %q should mention BFS", b.Name())
	}
	if err := core.CheckRequirements(b, net); err != nil {
		t.Errorf("Algorithm B must satisfy the composition requirements: %v", err)
	}
	if !b.IsReset(2, net, b.ResetState(2, net)) || !b.IsReset(0, net, b.ResetState(0, net)) {
		t.Error("each process's pre-defined state must satisfy its own P_reset")
	}
	if b.IsReset(0, net, NodeState{Dist: 3, Parent: NoParent}) || b.IsReset(0, net, NodeState{Dist: 6, Parent: 1}) {
		t.Error("intermediate states must not satisfy P_reset")
	}
	if b.IsReset(0, net, NodeState{Dist: 0, Parent: NoParent}) {
		t.Error("the root's reset state must not satisfy P_reset at a non-root process")
	}
	if b.IsReset(2, net, NodeState{Dist: 6, Parent: NoParent}) {
		t.Error("a non-root's reset state must not satisfy P_reset at the root")
	}
	// The root's pre-defined state is (0, ⊥); the others start unreached.
	if got := b.InitialInner(2, net).(NodeState); got.Dist != 0 {
		t.Errorf("the root starts at distance 0, got %v", got)
	}
	if got := b.InitialInner(0, net).(NodeState); got.Dist != 6 {
		t.Errorf("non-roots start at maxDist, got %v", got)
	}
}

func TestEnumerateInner(t *testing.T) {
	g := graph.Star(4)
	net := sim.NewNetwork(g)
	b := NewFor(g, 0)
	// (maxDist+1) distances × (degree+1) parents for the centre.
	if got, want := len(b.EnumerateInner(0, net)), 5*4; got != want {
		t.Errorf("centre enumerates %d states, want %d", got, want)
	}
	// The indexed enumeration must agree positionally at every process.
	for u := 0; u < net.N(); u++ {
		states := b.EnumerateInner(u, net)
		if got := b.InnerStateCount(u, net); got != len(states) {
			t.Fatalf("InnerStateCount(%d) = %d, want %d", u, got, len(states))
		}
		for i, want := range states {
			if got := b.InnerStateAt(u, net, i); !got.Equal(want) {
				t.Fatalf("InnerStateAt(%d, %d) = %s, want %s", u, i, got, want)
			}
		}
	}
}

func TestICorrectInvariant(t *testing.T) {
	g := graph.Path(3)
	net := sim.NewNetwork(g)
	b := NewFor(g, 0)
	view := func(c *sim.Configuration, u int) core.InnerView {
		return core.NewStandaloneView(net.View(c, u))
	}
	mk := func(states ...NodeState) *sim.Configuration {
		out := make([]sim.State, len(states))
		for i, s := range states {
			out[i] = s
		}
		return sim.NewConfiguration(out)
	}

	// The exact BFS tree is correct everywhere.
	tree := mk(NodeState{0, NoParent}, NodeState{1, 0}, NodeState{2, 1})
	for u := 0; u < 3; u++ {
		if !b.ICorrect(view(tree, u)) {
			t.Errorf("process %d of the exact tree should be I-correct", u)
		}
	}
	// The pre-defined configuration is correct everywhere (Requirement 2d).
	start := mk(NodeState{0, NoParent}, NodeState{3, NoParent}, NodeState{3, NoParent})
	for u := 0; u < 3; u++ {
		if !b.ICorrect(view(start, u)) {
			t.Errorf("process %d of γ_init should be I-correct", u)
		}
	}
	// A corrupted root is incorrect.
	if b.ICorrect(view(mk(NodeState{2, NoParent}, NodeState{3, NoParent}, NodeState{3, NoParent}), 0)) {
		t.Error("a root with a non-zero distance must be I-incorrect")
	}
	// A non-root with a distance smaller than its parent's plus one is
	// incorrect (distance cycles are locally detectable).
	if b.ICorrect(view(mk(NodeState{0, NoParent}, NodeState{1, 2}, NodeState{1, 1}), 1)) {
		t.Error("a process whose distance is not larger than its parent's must be I-incorrect")
	}
	// A dangling parent pointer is incorrect.
	if b.ICorrect(view(mk(NodeState{0, NoParent}, NodeState{1, 9}, NodeState{3, NoParent}), 1)) {
		t.Error("a parent outside the neighbourhood must be I-incorrect")
	}
	// An unreached process with a parent pointer is incorrect only when the
	// parent inequality fails; (maxDist, ⊥) is the only parentless non-root
	// state allowed.
	if b.ICorrect(view(mk(NodeState{0, NoParent}, NodeState{2, NoParent}, NodeState{3, NoParent}), 1)) {
		t.Error("a parentless non-root below maxDist must be I-incorrect")
	}
}

func TestStandaloneBFSBuildsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	topologies := []*graph.Graph{
		graph.Ring(8),
		graph.Path(7),
		graph.Grid(3, 4),
		graph.RandomConnected(12, 0.3, rng),
		graph.Star(9),
	}
	for _, g := range topologies {
		for _, root := range []int{0, g.N() - 1} {
			b := NewFor(g, root)
			alg := core.NewStandalone(b)
			net := sim.NewNetwork(g)
			daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(int64(root+7))), 0.5)
			res := sim.NewEngine(net, alg, daemon).Run(sim.InitialConfiguration(alg, net), sim.WithMaxSteps(200_000))
			if !res.Terminated {
				t.Fatalf("n=%d root=%d: Algorithm B did not terminate", g.N(), root)
			}
			if err := VerifyTree(g, root, res.Final); err != nil {
				t.Errorf("n=%d root=%d: %v", g.N(), root, err)
			}
			if res.Moves > MaxStandaloneMoves(g.N(), b.MaxDist()) {
				t.Errorf("n=%d root=%d: %d moves exceed the n·maxDist bound", g.N(), root, res.Moves)
			}
		}
	}
}

func TestSelfStabilizingBFSFromCorruptedStates(t *testing.T) {
	// The composition B ∘ SDR is silent and self-stabilizing: from random
	// configurations it terminates in a configuration whose distances and
	// parent pointers form the exact BFS tree.
	rng := rand.New(rand.NewSource(15))
	topologies := []*graph.Graph{
		graph.Ring(7),
		graph.Grid(3, 3),
		graph.RandomConnected(9, 0.35, rng),
	}
	for _, g := range topologies {
		root := g.N() / 2
		comp := NewSelfStabilizing(g, root)
		net := sim.NewNetwork(g)
		for trial := 0; trial < 5; trial++ {
			trialRng := rand.New(rand.NewSource(int64(trial*13 + g.N())))
			start := faults.MustRandomConfiguration(comp, net, trialRng)
			daemon := sim.NewDistributedRandomDaemon(trialRng, 0.5)
			res := sim.NewEngine(net, comp, daemon).Run(start, sim.WithMaxSteps(400_000))
			if !res.Terminated {
				t.Fatalf("n=%d trial %d: B∘SDR did not terminate (not silent)", g.N(), trial)
			}
			if err := VerifyTree(g, root, res.Final); err != nil {
				t.Errorf("n=%d trial %d: %v", g.N(), trial, err)
			}
			if res.Rounds > 0 && res.StabilizationRounds > core.MaxResetRounds(g.N())+innerRoundAllowance(g) {
				t.Errorf("n=%d trial %d: suspiciously many rounds (%d)", g.N(), trial, res.StabilizationRounds)
			}
		}
	}
}

// innerRoundAllowance returns the extra-round allowance for the inner
// algorithm: every process improves its distance at most maxDist times and
// each improvement takes at most one round once its neighbourhood is stable.
func innerRoundAllowance(g *graph.Graph) int { return g.N() * g.N() }

func TestSelfStabilizingBFSSurvivesTargetedFaults(t *testing.T) {
	g := graph.Grid(3, 4)
	root := 0
	comp := NewSelfStabilizing(g, root)
	net := sim.NewNetwork(g)
	rng := rand.New(rand.NewSource(44))

	// Converge, then corrupt only the reset machinery, then only the inner
	// states, and re-converge each time.
	daemon := sim.NewDistributedRandomDaemon(rng, 0.5)
	eng := sim.NewEngine(net, comp, daemon)
	res := eng.Run(sim.InitialConfiguration(comp, net), sim.WithMaxSteps(200_000))
	if err := VerifyTree(g, root, res.Final); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}

	waved := faults.FakeResetWave(net, res.Final, 0.5, g.N(), rng)
	res2 := eng.Run(waved, sim.WithMaxSteps(200_000))
	if !res2.Terminated {
		t.Fatal("did not terminate after a fake reset wave")
	}
	if err := VerifyTree(g, root, res2.Final); err != nil {
		t.Errorf("after a fake reset wave: %v", err)
	}

	corrupted := faults.MustCorruptedInner(comp.Inner(), net, res2.Final, 0.6, rng)
	res3 := eng.Run(corrupted, sim.WithMaxSteps(200_000))
	if !res3.Terminated {
		t.Fatal("did not terminate after inner corruption")
	}
	if err := VerifyTree(g, root, res3.Final); err != nil {
		t.Errorf("after inner corruption: %v", err)
	}
}

func TestExhaustiveConvergenceTinyPath(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration skipped in -short mode")
	}
	g := graph.Path(3)
	root := 0
	comp := NewSelfStabilizing(g, root)
	net := sim.NewNetwork(g)

	perProcess := make([][]sim.State, net.N())
	for u := 0; u < net.N(); u++ {
		perProcess[u] = comp.EnumerateStates(u, net)
	}
	// The full product of per-process states is ~560k starting
	// configurations; exploring all of them takes ~10s, which dominated the
	// package's test time. By default a deterministic stride sample of the
	// product seeds the exploration — every reachable configuration from a
	// sampled start is still explored exhaustively, so closure and
	// terminal-correctness are checked on the whole reachable sub-space.
	// Every 7th start keeps all three per-process coordinates cycling
	// (7 is coprime with the per-process state counts).
	stride := 7
	idx := 0
	var starts []*sim.Configuration
	for _, a := range perProcess[0] {
		for _, b := range perProcess[1] {
			for _, c := range perProcess[2] {
				if idx%stride == 0 {
					starts = append(starts, sim.NewConfiguration([]sim.State{a.Clone(), b.Clone(), c.Clone()}))
				}
				idx++
			}
		}
	}
	treePredicate := func(c *sim.Configuration) bool { return VerifyTree(g, root, c) == nil }
	report, err := checker.Explore(net, comp, starts, checker.ExploreOptions{
		MaxConfigurations: 800_000,
		TerminalOK:        treePredicate,
	})
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	if !report.Complete {
		t.Fatalf("exploration incomplete after %d configurations", report.Configurations)
	}
	if report.TerminalConfigurations == 0 {
		t.Error("the composition must have reachable terminal configurations (silence)")
	}
}

func TestDistancesParentsAccessors(t *testing.T) {
	cfg := sim.NewConfiguration([]sim.State{
		NodeState{Dist: 0, Parent: NoParent},
		core.ComposedState{SDR: core.CleanSDRState(), Inner: NodeState{Dist: 1, Parent: 0}},
	})
	if d := Distances(cfg); d[0] != 0 || d[1] != 1 {
		t.Errorf("Distances = %v", d)
	}
	if p := Parents(cfg); p[0] != NoParent || p[1] != 0 {
		t.Errorf("Parents = %v", p)
	}
}

func TestVerifyTreeRejectsWrongTrees(t *testing.T) {
	g := graph.Path(3)
	mk := func(states ...NodeState) *sim.Configuration {
		out := make([]sim.State, len(states))
		for i, s := range states {
			out[i] = s
		}
		return sim.NewConfiguration(out)
	}
	good := mk(NodeState{0, NoParent}, NodeState{1, 0}, NodeState{2, 1})
	if err := VerifyTree(g, 0, good); err != nil {
		t.Errorf("the exact tree must verify: %v", err)
	}
	cases := []*sim.Configuration{
		mk(NodeState{0, NoParent}, NodeState{2, 0}, NodeState{2, 1}),        // wrong distance
		mk(NodeState{0, 1}, NodeState{1, 0}, NodeState{2, 1}),               // root with a parent
		mk(NodeState{0, NoParent}, NodeState{1, NoParent}, NodeState{2, 1}), // missing parent
		mk(NodeState{0, NoParent}, NodeState{1, 0}, NodeState{2, 0}),        // parent not a neighbour
		mk(NodeState{0, NoParent}, NodeState{1, 2}, NodeState{2, 1}),        // parent not closer
	}
	for i, cfg := range cases {
		if err := VerifyTree(g, 0, cfg); err == nil {
			t.Errorf("case %d: VerifyTree should reject %s", i, cfg)
		}
	}
}

func TestQuickSelfStabilizationOnRandomTrees(t *testing.T) {
	// Property: on random trees with a random root, B ∘ SDR from a random
	// configuration terminates in the exact BFS (here: the tree itself with
	// correct distances).
	property := func(seed int64, rawN, rawRoot uint8) bool {
		n := int(rawN%8) + 3
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomTree(n, rng)
		root := int(rawRoot) % n
		comp := NewSelfStabilizing(g, root)
		net := sim.NewNetwork(g)
		start := faults.MustRandomConfiguration(comp, net, rng)
		res := sim.NewEngine(net, comp, sim.NewDistributedRandomDaemon(rng, 0.5)).Run(start, sim.WithMaxSteps(300_000))
		return res.Terminated && VerifyTree(g, root, res.Final) == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
