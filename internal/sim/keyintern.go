package sim

import "encoding/binary"

// KeyInterner builds compact map keys for configurations: every distinct
// local state (by its canonical String rendering) is assigned a small
// integer id once, and a configuration's key is the varint encoding of its
// per-process ids. On the product state spaces that exploration and cycle
// detection visit, the number of distinct local states is tiny compared to
// the number of configurations, so interning shrinks both the bytes hashed
// per lookup and the resident key set compared to the deprecated
// Configuration.Key strings.
//
// Keys from the same interner are equal exactly when the configurations
// render equal per-process states, i.e. exactly when the deprecated
// Configuration.Key values are equal; keys from different interners are not
// comparable.
type KeyInterner struct {
	ids map[string]uint64
	buf []byte
}

// NewKeyInterner returns an empty interner.
func NewKeyInterner() *KeyInterner {
	return &KeyInterner{ids: make(map[string]uint64)}
}

// Key returns the compact key of c. The returned string is freshly
// allocated and safe to retain as a map key.
func (ki *KeyInterner) Key(c *Configuration) string {
	ki.buf = ki.buf[:0]
	n := c.N()
	for u := 0; u < n; u++ {
		s := c.State(u).String()
		id, ok := ki.ids[s]
		if !ok {
			id = uint64(len(ki.ids))
			ki.ids[s] = id
		}
		ki.buf = binary.AppendUvarint(ki.buf, id)
	}
	return string(ki.buf)
}

// States returns the number of distinct local states interned so far.
func (ki *KeyInterner) States() int { return len(ki.ids) }
