package sim

import (
	"encoding/binary"
	"sync"
)

// KeyInterner builds compact map keys for configurations: every distinct
// local state (by its canonical String rendering) is assigned a small
// integer id once, and a configuration's key is the varint encoding of its
// per-process ids. On the product state spaces that exploration and cycle
// detection visit, the number of distinct local states is tiny compared to
// the number of configurations, so interning shrinks both the bytes hashed
// per lookup and the resident key set compared to the deprecated
// Configuration.Key strings.
//
// Keys from the same interner are equal exactly when the configurations
// render equal per-process states, i.e. exactly when the deprecated
// Configuration.Key values are equal; keys from different interners are not
// comparable. Ids depend on discovery order, but equal states always receive
// equal ids, so key equality is order-independent even under concurrent
// interning.
//
// The id table is internally synchronised: AppendKey may be called from
// many goroutines (each with its own scratch buffer), which is how the
// checker's parallel exploration interns frontier successors. Key reuses one
// internal buffer and is therefore not safe for concurrent use.
type KeyInterner struct {
	mu  sync.RWMutex
	ids map[string]uint64
	buf []byte
}

// NewKeyInterner returns an empty interner.
func NewKeyInterner() *KeyInterner {
	return &KeyInterner{ids: make(map[string]uint64)}
}

// KeyAppender is the allocation-free rendering bypass of the interner: state
// types that implement it append exactly the bytes of their String()
// rendering to dst instead of building a string per call. The byte-for-byte
// equivalence matters — the interner's id table is keyed by the rendering,
// so a state interned through either path must land on the same id.
type KeyAppender interface {
	AppendStateKey(dst []byte) []byte
}

// AppendStateKey renders s into dst through the KeyAppender bypass when the
// state implements it and through String() otherwise.
func AppendStateKey(dst []byte, s State) []byte {
	if ka, ok := s.(KeyAppender); ok {
		return ka.AppendStateKey(dst)
	}
	return append(dst, s.String()...)
}

// KeyedState is optionally implemented by states that can encode themselves
// into a uint64 such that equal encodings imply equal String() renderings
// (distinct encodings for equal renderings are harmless — they intern to the
// same id). Key64 reports false when this particular value does not fit the
// 64 bits; callers fall back to the rendering path, so implementations can
// assume nothing about field ranges and simply bounds-check. The memo layer
// fronts the shared interner with an evaluator-local map keyed by these
// encodings, turning the per-move re-interning of a state into one unlocked
// integer-map probe instead of a rendering plus a locked string-map lookup.
type KeyedState interface {
	Key64() (uint64, bool)
}

// StateKey64 returns the state's uint64 encoding through the KeyedState
// bypass, or false when the state does not provide (or fit) one.
func StateKey64(s State) (uint64, bool) {
	if ks, ok := s.(KeyedState); ok {
		return ks.Key64()
	}
	return 0, false
}

// ZigZag64 maps a signed int to a uint64 injectively (the varint zigzag
// transform), for KeyedState implementations packing signed fields.
func ZigZag64(v int) uint64 {
	x := int64(v)
	return uint64((x << 1) ^ (x >> 63))
}

// StateID returns the interned id of state s, rendering it into scratch
// (returned grown for reuse). The common path — an already-interned state —
// allocates nothing: the rendering goes through the KeyAppender bypass and
// the map lookup is keyed by the byte slice directly; only the first sight
// of a state materialises the rendering as a string. Safe for concurrent use
// as long as every goroutine passes its own scratch.
func (ki *KeyInterner) StateID(s State, scratch []byte) (uint64, []byte) {
	scratch = AppendStateKey(scratch[:0], s)
	return ki.idBytes(scratch), scratch
}

// idBytes is the byte-slice twin of id: the read path looks the rendering up
// without converting it to a string (the compiler elides the conversion in
// map lookups), so only first sights allocate.
func (ki *KeyInterner) idBytes(b []byte) uint64 {
	ki.mu.RLock()
	id, ok := ki.ids[string(b)]
	ki.mu.RUnlock()
	if ok {
		return id
	}
	ki.mu.Lock()
	defer ki.mu.Unlock()
	if id, ok := ki.ids[string(b)]; ok {
		return id
	}
	id = uint64(len(ki.ids))
	ki.ids[string(b)] = id
	return id
}

// AppendKey renders the compact key of c into buf and returns it as a
// freshly allocated string safe to retain as a map key, together with the
// grown scratch buffer for the next call. It is safe for concurrent use as
// long as every goroutine passes its own buffer.
//
// Each state is rendered into the tail of buf through the KeyAppender bypass
// and looked up by those bytes, then the rendering is overwritten by the
// varint of its id — so the hot path (already-interned states) allocates
// nothing, where the former per-state String() calls allocated one string
// per process per key.
func (ki *KeyInterner) AppendKey(buf []byte, c *Configuration) (string, []byte) {
	buf = buf[:0]
	n := c.N()
	for u := 0; u < n; u++ {
		mark := len(buf)
		buf = AppendStateKey(buf, c.State(u))
		id := ki.idBytes(buf[mark:])
		buf = binary.AppendUvarint(buf[:mark], id)
	}
	return string(buf), buf
}

// Key returns the compact key of c using the interner's internal scratch
// buffer. The returned string is freshly allocated and safe to retain as a
// map key. Not safe for concurrent use; concurrent callers use AppendKey.
func (ki *KeyInterner) Key(c *Configuration) string {
	key, buf := ki.AppendKey(ki.buf, c)
	ki.buf = buf
	return key
}

// States returns the number of distinct local states interned so far.
func (ki *KeyInterner) States() int {
	ki.mu.RLock()
	defer ki.mu.RUnlock()
	return len(ki.ids)
}
