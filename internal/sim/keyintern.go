package sim

import (
	"encoding/binary"
	"sync"
)

// KeyInterner builds compact map keys for configurations: every distinct
// local state (by its canonical String rendering) is assigned a small
// integer id once, and a configuration's key is the varint encoding of its
// per-process ids. On the product state spaces that exploration and cycle
// detection visit, the number of distinct local states is tiny compared to
// the number of configurations, so interning shrinks both the bytes hashed
// per lookup and the resident key set compared to the deprecated
// Configuration.Key strings.
//
// Keys from the same interner are equal exactly when the configurations
// render equal per-process states, i.e. exactly when the deprecated
// Configuration.Key values are equal; keys from different interners are not
// comparable. Ids depend on discovery order, but equal states always receive
// equal ids, so key equality is order-independent even under concurrent
// interning.
//
// The id table is internally synchronised: AppendKey may be called from
// many goroutines (each with its own scratch buffer), which is how the
// checker's parallel exploration interns frontier successors. Key reuses one
// internal buffer and is therefore not safe for concurrent use.
type KeyInterner struct {
	mu  sync.RWMutex
	ids map[string]uint64
	buf []byte
}

// NewKeyInterner returns an empty interner.
func NewKeyInterner() *KeyInterner {
	return &KeyInterner{ids: make(map[string]uint64)}
}

// id returns the interned id of the rendered state s, assigning the next
// free id on first sight. Reads take the shared lock; only a miss upgrades.
func (ki *KeyInterner) id(s string) uint64 {
	ki.mu.RLock()
	id, ok := ki.ids[s]
	ki.mu.RUnlock()
	if ok {
		return id
	}
	ki.mu.Lock()
	defer ki.mu.Unlock()
	if id, ok := ki.ids[s]; ok {
		return id
	}
	id = uint64(len(ki.ids))
	ki.ids[s] = id
	return id
}

// AppendKey renders the compact key of c into buf and returns it as a
// freshly allocated string safe to retain as a map key, together with the
// grown scratch buffer for the next call. It is safe for concurrent use as
// long as every goroutine passes its own buffer.
func (ki *KeyInterner) AppendKey(buf []byte, c *Configuration) (string, []byte) {
	buf = buf[:0]
	n := c.N()
	for u := 0; u < n; u++ {
		buf = binary.AppendUvarint(buf, ki.id(c.State(u).String()))
	}
	return string(buf), buf
}

// Key returns the compact key of c using the interner's internal scratch
// buffer. The returned string is freshly allocated and safe to retain as a
// map key. Not safe for concurrent use; concurrent callers use AppendKey.
func (ki *KeyInterner) Key(c *Configuration) string {
	key, buf := ki.AppendKey(ki.buf, c)
	ki.buf = buf
	return key
}

// States returns the number of distinct local states interned so far.
func (ki *KeyInterner) States() int {
	ki.mu.RLock()
	defer ki.mu.RUnlock()
	return len(ki.ids)
}
