package sim

import "fmt"

// Mid-run fault injection. The paper's algorithms are self-stabilizing: they
// recover from *any* transient fault, not only from a corrupted initial
// configuration. An Injector models repeated transient faults and topology
// churn as events applied between steps; the engine records, for every event,
// the cost of re-stabilizing afterwards (the per-event analogue of the
// stabilization-time fields of Result).
//
// Daemon and round semantics of an injection: an event happens between two
// steps, atomically with respect to the algorithm (no rule executes while the
// event is applied). Because an event may change states and topology
// arbitrarily, the incremental machinery of Run cannot update locally: the
// engine re-evaluates the full enabled set and restarts the
// neutralization-based round accounting — a partial round in progress when
// the event fires is closed (counted, matching the conservative convention
// of Result.Rounds) and a fresh round starts at the perturbed configuration.
// Daemons observe the perturbed enabled set on the next step like any other;
// stateful daemons (round-robin, greedy-adversarial) keep their state across
// events, modelling an adversary that persists through faults.

// StateChange replaces the state of one process as part of an Injection.
type StateChange struct {
	// Process is the simulator-level process index.
	Process int
	// State is the new local state; the engine clones it on installation.
	State State
}

// Injection is one perturbation event: any combination of per-process state
// replacements and edge insertions/removals, applied atomically between two
// steps. Edge endpoints are process indices; the process set itself is fixed
// for the lifetime of a run (a "crashed" process is modelled by a state
// replacement, e.g. a reboot to its initial state).
type Injection struct {
	// Label names the event in the per-event recovery records.
	Label string
	// SetStates lists per-process state replacements.
	SetStates []StateChange
	// DropEdges and AddEdges mutate the network topology in place. Every
	// dropped edge must be present and every added edge absent; a violation
	// is an injector bug and panics.
	DropEdges [][2]int
	AddEdges  [][2]int
}

// InjectionPoint is the engine state an Injector observes at a step
// boundary. Config and Net are live engine structures: injectors must not
// retain them beyond the Inject call, and must not mutate them directly —
// all mutation goes through the returned Injection so that the engine can
// re-seed its incremental state.
type InjectionPoint struct {
	// Step, Round and Moves are the counters of the run so far.
	Step  int
	Round int
	Moves int
	// Config is the current configuration (read-only).
	Config *Configuration
	// Net is the current network (read-only).
	Net *Network
	// Legitimate reports whether Config currently satisfies the run's
	// legitimacy predicate (false when the run has none).
	Legitimate bool
	// Terminal reports whether no process is enabled in Config. When the run
	// is terminal and the injector is not Done, the engine keeps consulting
	// the injector instead of ending the run, so schedules with events
	// beyond the natural termination point fire immediately ("fast-forward").
	Terminal bool
}

// Injector schedules mid-run perturbations. The engine consults it before
// every step and at terminal configurations; returning nil means "no event
// at this boundary". After an event is applied the engine consults the
// injector again at the same boundary, so several events may fire back to
// back; an Injector must therefore return nil after finitely many
// consecutive calls. Done reports that no further event will ever fire; the
// engine then treats terminal configurations and the stop-when-legitimate
// option exactly like an uninjected run.
type Injector interface {
	Inject(p InjectionPoint) *Injection
	Done() bool
}

// WithInjector attaches a mid-run fault injector to the run. Injected runs
// additionally track Result.Events, Result.LegitimateSteps and — when
// combined with WithStopWhenLegitimate — only stop once the injector is Done
// and the configuration is currently legitimate (the first stabilization no
// longer ends the run, since later events would never fire).
func WithInjector(inj Injector) Option {
	return func(o *Options) { o.injector = inj }
}

// EventRecovery is the recovery record of one injected event: the cost of
// reaching the next legitimate configuration after the event. Several events
// may be "open" at once (a second fault hits before the system recovered
// from the first); they all close at the next legitimate configuration, each
// with its own deltas.
type EventRecovery struct {
	// Label names the event (Injection.Label).
	Label string
	// Step and Round locate the event in the run (counters at the moment the
	// event was applied, after closing any partial round).
	Step  int
	Round int
	// LegitimateBefore reports whether the configuration satisfied the
	// legitimacy predicate immediately before the event.
	LegitimateBefore bool
	// Recovered reports whether the legitimacy predicate held again at some
	// point after the event (immediately, if the event did not break it).
	Recovered bool
	// RecoverySteps, RecoveryMoves and RecoveryRounds are the costs incurred
	// from the event until the next legitimate configuration (-1 when the run
	// ended before recovering). RecoveryRounds follows the conservative
	// partial-round convention of Result.Rounds.
	RecoverySteps  int
	RecoveryMoves  int
	RecoveryRounds int
}

// applyInjection installs an event into the live run state: state
// replacements land in curStates (the engine's current buffer) and edge
// edits mutate the network graph in place, so that legitimacy-predicate
// closures, evaluators and daemons holding the *Network keep observing a
// consistent topology. Invalid edits are injector bugs and panic.
func (e *Engine) applyInjection(injn *Injection, curStates []State) {
	n := e.net.N()
	for _, sc := range injn.SetStates {
		checkProcessIndex(sc.Process, n)
		curStates[sc.Process] = sc.State.Clone()
	}
	for _, ed := range injn.DropEdges {
		if err := e.net.g.RemoveEdge(ed[0], ed[1]); err != nil {
			panic(fmt.Sprintf("sim: injection %q: %v", injn.Label, err))
		}
	}
	for _, ed := range injn.AddEdges {
		if err := e.net.g.AddEdge(ed[0], ed[1]); err != nil {
			panic(fmt.Sprintf("sim: injection %q: %v", injn.Label, err))
		}
	}
}
