package sim

import "testing"

// TestMakeShardsPartition checks the white-box invariants of the shard
// layout: the shards cover [0,n) contiguously without gaps or overlap, every
// boundary is word-aligned (so each bitset word has exactly one owner), the
// word ranges partition [0,⌈n/64⌉), and the count is clamped to [1,⌈n/64⌉].
func TestMakeShardsPartition(t *testing.T) {
	cases := []struct{ n, k int }{
		{1, 1}, {1, 8}, {63, 2}, {64, 2}, {65, 2}, {100, 3},
		{128, 2}, {1000, 7}, {4096, 16}, {100489, 4}, {64, 0}, {64, -3},
	}
	for _, tc := range cases {
		shards := makeShards(tc.n, tc.k)
		words := (tc.n + 63) / 64
		wantK := tc.k
		if wantK > words {
			wantK = words
		}
		if wantK < 1 {
			wantK = 1
		}
		if len(shards) != wantK {
			t.Errorf("makeShards(%d,%d): %d shards, want %d", tc.n, tc.k, len(shards), wantK)
			continue
		}
		prevHi, prevWordHi := 0, 0
		for i, sh := range shards {
			if sh.lo != prevHi || sh.wordLo != prevWordHi {
				t.Errorf("makeShards(%d,%d): shard %d starts at (%d,%d), want (%d,%d)",
					tc.n, tc.k, i, sh.lo, sh.wordLo, prevHi, prevWordHi)
			}
			if sh.lo%64 != 0 {
				t.Errorf("makeShards(%d,%d): shard %d lo=%d not word-aligned", tc.n, tc.k, i, sh.lo)
			}
			if sh.hi%64 != 0 && sh.hi != tc.n {
				t.Errorf("makeShards(%d,%d): shard %d hi=%d neither word-aligned nor n", tc.n, tc.k, i, sh.hi)
			}
			if sh.lo != sh.wordLo*64 {
				t.Errorf("makeShards(%d,%d): shard %d lo=%d does not match wordLo=%d", tc.n, tc.k, i, sh.lo, sh.wordLo)
			}
			prevHi, prevWordHi = sh.hi, sh.wordHi
		}
		if prevHi != tc.n || prevWordHi != words {
			t.Errorf("makeShards(%d,%d): coverage ends at (%d,%d), want (%d,%d)",
				tc.n, tc.k, prevHi, prevWordHi, tc.n, words)
		}
	}
}
