package sim

// This file retains the straightforward engine implementation that predates
// the incremental enabled-set engine: it rescans every process after each
// step, clones the configuration per step, and keeps the round accounting in
// maps. It is deliberately kept simple and obviously correct; the
// differential tests in engine_diff_test.go assert that Run produces
// bit-identical Results to RunReference across algorithms, daemons and
// seeds, and the benchmarks in engine_bench_test.go quantify the speedup.

// RunReference executes the algorithm exactly like Run but with the retained
// reference implementation. It is exported for differential tests and
// benchmarks; simulation code should always use Run.
func (e *Engine) RunReference(start *Configuration, opts ...Option) Result {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		panic(err.Error())
	}
	if o.injector != nil {
		panic("sim: RunReference does not support injectors; it is the differential oracle for static runs")
	}
	if o.shards > 1 {
		panic("sim: RunReference does not support sharding; it is the differential oracle for the sequential loop")
	}
	e.checkStart(start)

	n := e.net.N()
	cur := start.Clone()
	res := newResult(n)

	recordLegit := func(partialRound bool) {
		if res.LegitimateReached || o.legitimate == nil {
			return
		}
		if o.legitimate(cur) {
			res.markLegitimate(partialRound)
		}
	}

	// Round accounting (neutralization-based): pending holds the processes
	// enabled at the start of the current round that have neither moved nor
	// been neutralized yet. roundProgress records whether the current round
	// saw any step, so that a final partial round is counted.
	enabled := EnabledSet(e.alg, e.net, cur)
	pending := make(map[int]bool, len(enabled))
	for _, u := range enabled {
		pending[u] = true
	}
	roundProgress := false

	recordLegit(false)

	rules := e.alg.Rules()
	for len(enabled) > 0 {
		if res.Steps >= o.maxSteps {
			res.HitStepLimit = true
			break
		}
		if o.stopWhenLegitimate && res.LegitimateReached {
			break
		}

		selected := e.daemon.Select(Selection{
			Net:     e.net,
			Alg:     e.alg,
			Config:  cur,
			Enabled: enabled,
			Step:    res.Steps,
		})
		selected = referenceSanitizeSelection(selected, enabled)

		// Composite atomicity: all selected processes read cur and their
		// writes are installed together in next.
		next := NewConfiguration(copyStates(cur))
		ruleNames := make([]string, 0, len(selected))
		for _, u := range selected {
			v := e.net.View(cur, u)
			ri := referenceChooseRule(rules, v, o)
			if ri < 0 {
				// Defensive: the daemon selected a non-enabled process; skip.
				ruleNames = append(ruleNames, "")
				continue
			}
			next.SetState(u, rules[ri].Action(v))
			ruleNames = append(ruleNames, rules[ri].Name)
			res.recordMove(u, rules[ri].Name)
		}

		enabledBefore := enabled
		prev := cur
		cur = next
		enabled = EnabledSet(e.alg, e.net, cur)
		roundProgress = true

		// Update the pending set of the current round.
		activatedSet := make(map[int]bool, len(selected))
		for _, u := range selected {
			activatedSet[u] = true
		}
		enabledAfter := make(map[int]bool, len(enabled))
		for _, u := range enabled {
			enabledAfter[u] = true
		}
		wasEnabled := make(map[int]bool, len(enabledBefore))
		for _, u := range enabledBefore {
			wasEnabled[u] = true
		}
		for u := range pending {
			if activatedSet[u] {
				delete(pending, u)
				continue
			}
			if wasEnabled[u] && !enabledAfter[u] {
				// Neutralized: enabled before the step, not activated, and
				// no longer enabled after it.
				delete(pending, u)
			}
		}

		for _, h := range o.hooks {
			h(StepInfo{
				Step:      res.Steps,
				Activated: selected,
				Rules:     ruleNames,
				Before:    prev,
				After:     cur,
				Round:     res.Rounds,
			})
		}
		res.Steps++

		if len(pending) == 0 {
			// The round is complete; the next one starts at cur.
			res.Rounds++
			roundProgress = false
			pending = make(map[int]bool, len(enabled))
			for _, u := range enabled {
				pending[u] = true
			}
		}

		recordLegit(roundProgress)
	}

	if roundProgress {
		// A partial round was in progress when the run stopped; count it so
		// that round counts are conservative upper estimates.
		res.Rounds++
	}
	res.Terminated = len(enabled) == 0
	res.Final = cur
	res.finish()
	return res
}

// referenceSanitizeSelection is the retained map-based selection sanitizer:
// it keeps only selected processes that are actually enabled and returns
// them sorted and de-duplicated; when the daemon misbehaves and returns an
// empty or fully invalid selection, the first enabled process is used so
// that the run always makes progress.
func referenceSanitizeSelection(selected, enabled []int) []int {
	enabledSet := make(map[int]bool, len(enabled))
	for _, u := range enabled {
		enabledSet[u] = true
	}
	seen := make(map[int]bool, len(selected))
	var out []int
	for _, u := range selected {
		if enabledSet[u] && !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	if len(out) == 0 {
		return []int{enabled[0]}
	}
	referenceSortInts(out)
	return out
}

func referenceSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// referenceChooseRule is the retained rule-choice helper; it allocates the
// enabled-rule slice per call under RandomEnabledRule.
func referenceChooseRule(rules []Rule, v View, o Options) int {
	var enabled []int
	for i, r := range rules {
		if r.Guard(v) {
			if o.ruleChoice == FirstEnabledRule {
				return i
			}
			enabled = append(enabled, i)
		}
	}
	if len(enabled) == 0 {
		return -1
	}
	// Options.validate rejects a nil rng for RandomEnabledRule, so o.rng is
	// always set here.
	return enabled[o.rng.Intn(len(enabled))]
}
