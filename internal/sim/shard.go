package sim

import (
	"math/bits"
	"slices"
	"sync"
	"time"

	"sdr/internal/obs"
)

// Sharded execution. WithShards(k) partitions the processes into k contiguous
// index ranges ("shards") and runs the per-step work — guard re-evaluation
// and rule execution — concurrently, one goroutine per shard. The topology is
// read through the compact CSR adjacency arrays (graph.CSR), which are
// fetched once before the parallel phases and re-fetched at every injection
// boundary, so shards never observe a topology mid-mutation.
//
// Exactness. Under the SynchronousDaemon the sharded loop is bit-identical
// to the sequential one: the daemon activates every enabled process, the
// union of the per-shard selections is exactly the global enabled set, rule
// choice is deterministic (FirstEnabledRule; RandomEnabledRule is rejected,
// see Options.validate), and all accounting is merged in ascending shard
// order. The differential tests in shard_test.go pin this.
//
// Locally-central daemon family. Every other daemon is consulted once per
// shard and step, on the shard's slice of the enabled set, and the step
// activates the union of the per-shard selections. This changes the daemon's
// semantics: a central daemon activates one process per *non-empty shard*
// per step instead of one per step, a round-robin daemon keeps one global
// cursor walked shard by shard, and so on. We call the results the
// "locally-central sharded family" of the base daemons. They remain legal
// schedules of the distributed unfair daemon (every selection is a non-empty
// subset of the enabled set) and are deterministic for a fixed seed and
// shard count, but they are different adversaries than their sequential
// counterparts — complexity measurements under them are not comparable
// across shard counts.
//
// Shard boundaries are aligned to multiples of 64 so that every bitset word
// belongs to exactly one shard: a shard writes only words in its own range
// during re-evaluation, making the phase race-free without atomics. Writes
// to the touched set, whose closed neighbourhoods cross shard boundaries,
// go to a per-shard full-length bitset instead; the per-word OR-merge of
// those bitsets between the apply and re-evaluation phases is the only
// boundary exchange of a step.

// WithShards sets the number of shards of the run (default 1, the
// sequential loop). With k > 1 guard evaluation and rule execution run
// concurrently on k contiguous node ranges. Synchronous-daemon runs are
// bit-identical to sequential ones; all other daemons switch to the
// documented locally-central sharded family (one Select call per non-empty
// shard per step). Sharding is incompatible with RandomEnabledRule and with
// WithMemo; Options.validate reports both combinations as errors. Shard
// counts larger than ⌈n/64⌉ are silently capped (boundaries are 64-aligned
// so that bitset words have a single writer).
func WithShards(k int) Option {
	return func(o *Options) { o.shards = k }
}

// engineShard is the per-shard state of a sharded run.
type engineShard struct {
	idx            int // position in the shard slice
	lo, hi         int // node range [lo, hi)
	wordLo, wordHi int // bitset word range [wordLo, wordHi), exclusively owned

	// touched marks the closed neighbourhoods of this shard's activated
	// processes. It is full-length: neighbours of a boundary process live in
	// other shards' ranges, and routing those marks through a private bitset
	// is what keeps the apply phase free of cross-shard writes.
	touched bitset

	// selected is the shard's sanitized selection of the current step;
	// ruleIdxs/ruleNames record the chosen rule per selected process.
	selected  []int
	ruleIdxs  []int
	ruleNames []string

	// scratch buffers reused across steps.
	dedup      bitset
	ruleChoice []int
}

// makeShards partitions [0, n) into at most k word-aligned contiguous
// ranges. Every shard is non-empty; the effective count is min(k, ⌈n/64⌉).
func makeShards(n, k int) []engineShard {
	words := (n + 63) / 64
	if k > words {
		k = words
	}
	if k < 1 {
		k = 1
	}
	shards := make([]engineShard, k)
	for s := range shards {
		wordLo := s * words / k
		wordHi := (s + 1) * words / k
		lo := wordLo * 64
		hi := wordHi * 64
		if hi > n {
			hi = n
		}
		shards[s] = engineShard{
			idx: s,
			lo:  lo, hi: hi,
			wordLo: wordLo, wordHi: wordHi,
			touched: newBitset(n),
			dedup:   newBitset(n),
		}
	}
	return shards
}

// runSharded is the sharded engine loop behind RunE. It mirrors run step for
// step — selection, composite-atomic apply, neutralization-based round
// accounting, injection boundaries — but splits the per-step work across
// shards. run is the reference oracle; the differential tests in
// shard_test.go compare the two.
func (e *Engine) runSharded(start *Configuration, o Options) Result {
	n := e.net.N()
	ev := NewEvaluator(e.alg, e.net)
	rules := ev.Rules()
	shards := makeShards(n, o.shards)

	// Compact the topology before fanning out: the parallel phases read
	// adjacency through the CSR arrays, and compaction must not race.
	e.net.CSR()

	curStates := make([]State, n)
	for u := 0; u < n; u++ {
		curStates[u] = start.State(u).Clone()
	}
	nextStates := make([]State, n)
	curCfg := &Configuration{states: curStates}
	nextCfg := &Configuration{states: nextStates}

	res := newResult(n)

	inj := o.injector
	curLegit := false
	evalLegit := func() {
		if o.legitimate != nil {
			curLegit = o.legitimate(curCfg)
		}
	}
	recordLegit := func(partialRound bool) {
		if res.LegitimateReached || o.legitimate == nil {
			return
		}
		if inj != nil {
			if curLegit {
				res.markLegitimate(partialRound)
			}
			return
		}
		if o.legitimate(curCfg) {
			res.markLegitimate(partialRound)
		}
	}

	type openEvent struct {
		idx, steps, moves, rounds int
	}
	var openEvents []openEvent
	closeRecovered := func(partialRound bool) {
		if !curLegit || len(openEvents) == 0 {
			return
		}
		for _, oe := range openEvents {
			rec := &res.Events[oe.idx]
			rec.Recovered = true
			rec.RecoverySteps = res.Steps - oe.steps
			rec.RecoveryMoves = res.Moves - oe.moves
			rec.RecoveryRounds = res.Rounds - oe.rounds
			if partialRound {
				rec.RecoveryRounds++
			}
		}
		openEvents = openEvents[:0]
	}

	// The initial enabled sweep is the first parallel phase: each shard
	// evaluates its own range, writing only its own bitset words.
	enabledBits := newBitset(n)
	parallelShards(shards, func(sh *engineShard) {
		for u := sh.lo; u < sh.hi; u++ {
			if ev.Enabled(curCfg, u) {
				enabledBits.set(u)
			}
		}
	})
	enabledList := enabledBits.appendIndices(make([]int, 0, n))

	pending := newBitset(n)
	pending.copyFrom(enabledBits)
	wasEnabled := newBitset(n)
	activated := newBitset(n)
	touched := newBitset(n)
	roundProgress := false

	selectedAll := make([]int, 0, n)
	ruleNamesAll := make([]string, 0, n)

	// Phase profiling. Per-shard durations of the parallel phases are
	// measured inside the workers into shardDur — each shard writes only its
	// own slot, and parallelShards' join is the happens-before edge — then
	// handed to the profiler sequentially.
	prof := o.profiler
	var shardDur []time.Duration
	if prof != nil {
		shardDur = make([]time.Duration, len(shards))
	}

	evalLegit()
	recordLegit(false)
	closeRecovered(false)

	for {
		if inj != nil {
			p := InjectionPoint{
				Step:       res.Steps,
				Round:      res.Rounds,
				Moves:      res.Moves,
				Config:     curCfg,
				Net:        e.net,
				Legitimate: curLegit,
				Terminal:   len(enabledList) == 0,
			}
			if injn := inj.Inject(p); injn != nil {
				if roundProgress {
					res.Rounds++
					roundProgress = false
				}
				res.Events = append(res.Events, EventRecovery{
					Label:            injn.Label,
					Step:             res.Steps,
					Round:            res.Rounds,
					LegitimateBefore: curLegit,
					RecoverySteps:    -1,
					RecoveryMoves:    -1,
					RecoveryRounds:   -1,
				})
				openEvents = append(openEvents, openEvent{
					idx:    len(res.Events) - 1,
					steps:  res.Steps,
					moves:  res.Moves,
					rounds: res.Rounds,
				})
				e.applyInjection(injn, curStates)

				// The event may have rewritten states and topology
				// arbitrarily: re-compact the CSR arrays (edge edits leave the
				// graph in its mutable form) and re-seed the enabled set with
				// a fresh parallel sweep, exactly like the initial one.
				e.net.CSR()
				parallelShards(shards, func(sh *engineShard) {
					for u := sh.lo; u < sh.hi; u++ {
						if ev.Enabled(curCfg, u) {
							enabledBits.set(u)
						} else {
							enabledBits.clear(u)
						}
					}
				})
				enabledList = enabledBits.appendIndices(enabledList[:0])
				pending.copyFrom(enabledBits)

				evalLegit()
				recordLegit(false)
				closeRecovered(false)
				continue
			}
		}
		if len(enabledList) == 0 {
			break
		}
		if res.Steps >= o.maxSteps {
			res.HitStepLimit = true
			break
		}
		if o.stopWhenLegitimate {
			if inj == nil {
				if res.LegitimateReached {
					break
				}
			} else if inj.Done() && curLegit {
				break
			}
		}

		profStep := false
		var tStep, t0 time.Time
		if prof != nil {
			if profStep = prof.StartStep(); profStep {
				tStep = time.Now()
				t0 = tStep
			}
		}

		// Selection phase, sequential: the daemon is consulted once per shard
		// holding enabled processes, in ascending shard order, on the shard's
		// contiguous slice of the sorted enabled list. Stateful daemons (rng,
		// cursors) see the sub-calls in that deterministic order.
		selectedAll = selectedAll[:0]
		lo := 0
		for s := range shards {
			sh := &shards[s]
			hi := lo
			for hi < len(enabledList) && enabledList[hi] < sh.hi {
				hi++
			}
			shardEnabled := enabledList[lo:hi]
			lo = hi
			if len(shardEnabled) == 0 {
				sh.selected = sh.selected[:0]
				continue
			}
			raw := e.daemon.Select(Selection{
				Net:     e.net,
				Alg:     e.alg,
				Config:  curCfg,
				Enabled: shardEnabled,
				Step:    res.Steps,
			})
			sh.selected = sanitizeShardSelectionInto(sh.selected[:0], raw, sh.lo, sh.hi, enabledBits, sh.dedup, shardEnabled)
		}
		if profStep {
			prof.Observe(obs.PhaseSelect, time.Since(t0))
			t0 = time.Now()
		}

		// Apply phase, parallel: each shard copies its segment of the double
		// buffer and executes the chosen rule of each of its selected
		// processes, all reading curCfg (composite atomicity). Move
		// accounting is deferred to the sequential merge below — Result's
		// counters and the MovesPerRule map are not safe for concurrent
		// writes.
		parallelShards(shards, func(sh *engineShard) {
			var shardStart time.Time
			if profStep {
				shardStart = time.Now()
			}
			copy(nextStates[sh.lo:sh.hi], curStates[sh.lo:sh.hi])
			sh.ruleIdxs = sh.ruleIdxs[:0]
			for _, u := range sh.selected {
				v := e.net.View(curCfg, u)
				ri := chooseRule(rules, v, o, sh.ruleChoice)
				sh.ruleIdxs = append(sh.ruleIdxs, ri)
				if ri < 0 {
					continue
				}
				nextStates[u] = rules[ri].Action(v)
			}
			// Mark the closed neighbourhoods whose guards must be
			// re-evaluated. The marks go to the shard-private bitset: a
			// boundary process has neighbours in foreign word ranges.
			sh.touched.reset()
			for _, u := range sh.selected {
				sh.touched.set(u)
				for i, deg := 0, e.net.Degree(u); i < deg; i++ {
					sh.touched.set(e.net.Neighbor(u, i))
				}
			}
			if profStep {
				shardDur[sh.idx] = time.Since(shardStart)
			}
		})
		if profStep {
			prof.Observe(obs.PhaseExecute, time.Since(t0))
			for i, d := range shardDur {
				prof.ObserveShard(i, obs.PhaseExecute, d)
			}
			t0 = time.Now()
		}

		// Sequential merge, ascending shard order (= ascending process
		// order, shards are contiguous): selection lists concatenate into
		// the sorted global selection and moves are recorded exactly as the
		// sequential loop would.
		ruleNamesAll = ruleNamesAll[:0]
		for s := range shards {
			sh := &shards[s]
			for i, u := range sh.selected {
				selectedAll = append(selectedAll, u)
				ri := sh.ruleIdxs[i]
				if ri < 0 {
					ruleNamesAll = append(ruleNamesAll, "")
					continue
				}
				ruleNamesAll = append(ruleNamesAll, rules[ri].Name)
				res.recordMove(u, rules[ri].Name)
			}
		}

		wasEnabled.copyFrom(enabledBits)
		activated.reset()
		for _, u := range selectedAll {
			activated.set(u)
		}

		// Install the step.
		curStates, nextStates = nextStates, curStates
		curCfg, nextCfg = nextCfg, curCfg
		if profStep {
			prof.Observe(obs.PhaseMerge, time.Since(t0))
			t0 = time.Now()
		}

		// Boundary exchange + re-evaluation, parallel: each shard OR-merges
		// every shard's touched marks for its own word range — this is the
		// only point where a shard observes its neighbours' writes — and
		// re-evaluates the marked processes of its range, updating
		// exclusively its own enabledBits words.
		parallelShards(shards, func(sh *engineShard) {
			var shardStart time.Time
			if profStep {
				shardStart = time.Now()
			}
			for wi := sh.wordLo; wi < sh.wordHi; wi++ {
				var word uint64
				for s := range shards {
					word |= shards[s].touched[wi]
				}
				touched[wi] = word
				base := wi << 6
				for word != 0 {
					u := base + bits.TrailingZeros64(word)
					word &= word - 1
					if ev.Enabled(curCfg, u) {
						enabledBits.set(u)
					} else {
						enabledBits.clear(u)
					}
				}
			}
			if profStep {
				shardDur[sh.idx] = time.Since(shardStart)
			}
		})
		enabledList = enabledBits.appendIndices(enabledList[:0])
		if profStep {
			prof.Observe(obs.PhaseBoundary, time.Since(t0))
			for i, d := range shardDur {
				prof.ObserveShard(i, obs.PhaseBoundary, d)
			}
			t0 = time.Now()
		}
		roundProgress = true

		pending.subtract(activated)
		pending.subtractDiff(wasEnabled, enabledBits)

		for _, h := range o.hooks {
			h(StepInfo{
				Step:      res.Steps,
				Activated: selectedAll,
				Rules:     ruleNamesAll,
				Before:    nextCfg,
				After:     curCfg,
				Round:     res.Rounds,
			})
		}
		res.Steps++

		if pending.empty() {
			res.Rounds++
			roundProgress = false
			pending.copyFrom(enabledBits)
		}

		if inj != nil {
			evalLegit()
			if curLegit {
				res.LegitimateSteps++
			}
		}
		recordLegit(roundProgress)
		closeRecovered(roundProgress)
		if profStep {
			prof.Observe(obs.PhaseAccount, time.Since(t0))
			prof.EndStep(time.Since(tStep))
		}
	}

	if roundProgress {
		res.Rounds++
	}
	res.Terminated = len(enabledList) == 0
	res.Final = NewConfiguration(curStates)
	res.finish()
	return res
}

// parallelShards runs fn once per shard, concurrently, and waits for all of
// them. The single-shard case stays on the calling goroutine.
func parallelShards(shards []engineShard, fn func(*engineShard)) {
	if len(shards) == 1 {
		fn(&shards[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(shards) - 1)
	for s := 1; s < len(shards); s++ {
		go func(sh *engineShard) {
			defer wg.Done()
			fn(sh)
		}(&shards[s])
	}
	fn(&shards[0])
	wg.Wait()
}

// sanitizeShardSelectionInto is sanitizeSelectionInto restricted to one
// shard's node range: beyond the usual enabledness/deduplication filtering it
// drops selections outside [lo, hi), since a process can only be applied by
// the shard owning its state segment — accepting a foreign index would make
// two shards write the same double-buffer segment concurrently. The fallback
// for an empty or fully invalid selection is the shard's first enabled
// process.
func sanitizeShardSelectionInto(out, selected []int, lo, hi int, enabledBits, dedup bitset, enabled []int) []int {
	for _, u := range selected {
		if u < lo || u >= hi || !enabledBits.get(u) || dedup.get(u) {
			continue
		}
		dedup.set(u)
		out = append(out, u)
	}
	for _, u := range out {
		dedup.clear(u)
	}
	if len(out) == 0 {
		return append(out, enabled[0])
	}
	slices.Sort(out)
	return out
}
