package sim

import (
	"math/rand"
	"testing"

	"sdr/internal/graph"
)

// The memo micro-benchmarks separate the three costs the memo layer trades
// between: direct guard evaluation (the price of a miss's fallback), a
// memoized hit (one neighbourhood sync + one map probe) and a memoized miss
// (hit-path cost plus the fallback plus the insert/bypass). A fourth pair
// measures the interning primitives the key scheme is built on.

// benchConfigs returns a deterministic cycle of configurations so lookups mix
// keys instead of hammering one entry.
func benchConfigs(net *Network, count int, seed int64) []*Configuration {
	rng := rand.New(rand.NewSource(seed))
	configs := make([]*Configuration, count)
	for i := range configs {
		states := make([]State, net.N())
		for u := range states {
			states[u] = intState{v: rng.Intn(4)}
		}
		configs[i] = NewConfiguration(states)
	}
	return configs
}

// BenchmarkEvaluatorEnabled is the unmemoized baseline: every call runs the
// guard loop directly.
func BenchmarkEvaluatorEnabled(b *testing.B) {
	net := NewNetwork(graph.Grid(8, 8))
	ev := NewEvaluator(maxPropagation{}, net)
	configs := benchConfigs(net, 16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := configs[i%len(configs)]
		for u := 0; u < net.N(); u++ {
			ev.Enabled(c, u)
		}
	}
}

// BenchmarkMemoEnabledHit measures the steady-state hit path: the table is
// prewarmed, so every lookup is answered by one map probe.
func BenchmarkMemoEnabledHit(b *testing.B) {
	net := NewNetwork(graph.Grid(8, 8))
	m := NewMemoEvaluator(NewEvaluator(maxPropagation{}, net), nil)
	configs := benchConfigs(net, 16, 1)
	for _, c := range configs { // prewarm
		m.InvalidateAll()
		for u := 0; u < net.N(); u++ {
			m.Enabled(c, u)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := configs[i%len(configs)]
		m.InvalidateAll()
		for u := 0; u < net.N(); u++ {
			m.Enabled(c, u)
		}
	}
	b.StopTimer()
	if st := m.Stats(); st.Hits == 0 || st.Misses > uint64(len(configs)*net.N()) {
		b.Fatalf("hit benchmark did not stay on the hit path: %+v", st)
	}
}

// BenchmarkMemoEnabledMiss measures the steady-state miss path: a one-entry
// cap keeps the table from filling, so every lookup probes, falls back to the
// guards and counts a bypass.
func BenchmarkMemoEnabledMiss(b *testing.B) {
	net := NewNetwork(graph.Grid(8, 8))
	m := NewMemoEvaluator(NewEvaluator(maxPropagation{}, net), NewMemoShare(1))
	configs := benchConfigs(net, 16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := configs[i%len(configs)]
		m.InvalidateAll()
		for u := 0; u < net.N(); u++ {
			m.Enabled(c, u)
		}
	}
	b.StopTimer()
	if st := m.Stats(); st.Bypasses == 0 {
		b.Fatalf("miss benchmark hit the table: %+v", st)
	}
}

// BenchmarkStateID measures interning one already-seen state: the rendering
// bypass plus the byte-keyed id lookup (allocation-free after first sight).
func BenchmarkStateID(b *testing.B) {
	ki := NewKeyInterner()
	states := make([]State, 16)
	for i := range states {
		states[i] = intState{v: i}
	}
	var scratch []byte
	for _, s := range states {
		_, scratch = ki.StateID(s, scratch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, scratch = ki.StateID(states[i%len(states)], scratch)
	}
}

// BenchmarkInternerAppendKey measures building a whole-configuration key from
// already-interned states, the checker's per-configuration cost.
func BenchmarkInternerAppendKey(b *testing.B) {
	net := NewNetwork(graph.Grid(8, 8))
	ki := NewKeyInterner()
	configs := benchConfigs(net, 16, 1)
	var buf []byte
	for _, c := range configs {
		_, buf = ki.AppendKey(buf, c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, buf = ki.AppendKey(buf, configs[i%len(configs)])
	}
}
