package sim

import (
	"math/rand"
	"slices"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := newBitset(130)
	if !b.empty() || b.count() != 0 {
		t.Fatal("new bitset not empty")
	}
	for _, u := range []int{0, 63, 64, 129} {
		b.set(u)
		if !b.get(u) {
			t.Fatalf("bit %d not set", u)
		}
	}
	if b.count() != 4 || b.empty() {
		t.Fatalf("count = %d, want 4", b.count())
	}
	if got := b.appendIndices(nil); !slices.Equal(got, []int{0, 63, 64, 129}) {
		t.Fatalf("appendIndices = %v", got)
	}
	b.clear(64)
	if b.get(64) || b.count() != 3 {
		t.Fatal("clear failed")
	}
	b.reset()
	if !b.empty() {
		t.Fatal("reset left bits behind")
	}
}

func TestBitsetSetAlgebra(t *testing.T) {
	n := 100
	a, was, now := newBitset(n), newBitset(n), newBitset(n)
	for _, u := range []int{1, 2, 3, 70, 71} {
		a.set(u)
	}
	for _, u := range []int{2, 70} {
		was.set(u)
	}
	now.set(70)
	// subtract removes {2, 70}∩a → a = {1, 3, 71} after subtracting `was`.
	c := newBitset(n)
	c.copyFrom(a)
	c.subtract(was)
	if got := c.appendIndices(nil); !slices.Equal(got, []int{1, 3, 71}) {
		t.Fatalf("subtract = %v", got)
	}
	// subtractDiff removes was\now = {2} only.
	d := newBitset(n)
	d.copyFrom(a)
	d.subtractDiff(was, now)
	if got := d.appendIndices(nil); !slices.Equal(got, []int{1, 3, 70, 71}) {
		t.Fatalf("subtractDiff = %v", got)
	}
}

func TestBitsetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 200
	b := newBitset(n)
	ref := map[int]bool{}
	for i := 0; i < 2000; i++ {
		u := rng.Intn(n)
		if rng.Intn(2) == 0 {
			b.set(u)
			ref[u] = true
		} else {
			b.clear(u)
			delete(ref, u)
		}
	}
	var want []int
	for u := range ref {
		want = append(want, u)
	}
	slices.Sort(want)
	if got := b.appendIndices(nil); !slices.Equal(got, want) {
		t.Fatalf("bitset %v != map %v", got, want)
	}
	if b.count() != len(want) {
		t.Fatalf("count %d != %d", b.count(), len(want))
	}
}

func TestSanitizeSelectionInto(t *testing.T) {
	n := 12
	enabledBits := newBitset(n)
	dedup := newBitset(n)
	enabled := []int{1, 3, 5}
	for _, u := range enabled {
		enabledBits.set(u)
	}
	got := sanitizeSelectionInto(nil, []int{5, 3, 3, 9, -2, 40}, n, enabledBits, dedup, enabled)
	if !slices.Equal(got, []int{3, 5}) {
		t.Fatalf("sanitizeSelectionInto = %v, want [3 5]", got)
	}
	if !dedup.empty() {
		t.Fatal("dedup scratch not cleared")
	}
	got = sanitizeSelectionInto(nil, nil, n, enabledBits, dedup, enabled)
	if !slices.Equal(got, []int{1}) {
		t.Fatalf("fallback = %v, want [1]", got)
	}
}
