package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"slices"
	"time"

	"sdr/internal/obs"
)

// DefaultMaxSteps bounds a run when the caller does not override it; it
// protects against non-terminating executions of non-silent algorithms.
const DefaultMaxSteps = 2_000_000

// RuleChoicePolicy decides which enabled rule an activated process executes
// when several of its rules are enabled (the model leaves this
// nondeterministic).
type RuleChoicePolicy int

// Rule choice policies.
const (
	// FirstEnabledRule executes the first enabled rule in declaration order.
	FirstEnabledRule RuleChoicePolicy = iota + 1
	// RandomEnabledRule executes a uniformly random enabled rule.
	RandomEnabledRule
)

// StepInfo describes one executed step, for hooks and traces.
type StepInfo struct {
	// Step is the 0-based index of the step.
	Step int
	// Activated lists the processes that moved, in ascending order.
	Activated []int
	// Rules gives, for each activated process (same order), the name of the
	// rule it executed.
	Rules []string
	// Before and After are the configurations around the step. Like Activated
	// and Rules they are the engine's reusable working buffers: hooks must
	// not retain or modify them beyond the callback (clone if needed).
	Before, After *Configuration
	// Round is the index (0-based) of the round this step belongs to.
	Round int
}

// StepHook observes executed steps.
type StepHook func(StepInfo)

// Options configures a run. Use the With* functions to set them. The
// combination is checked once per run by validate; RunE surfaces violations
// as errors, Run panics on them.
type Options struct {
	maxSteps           int
	legitimate         Predicate
	hooks              []StepHook
	ruleChoice         RuleChoicePolicy
	rng                *rand.Rand
	stopWhenLegitimate bool
	injector           Injector
	memo               *MemoShare
	memoReadOnly       bool
	shards             int
	profiler           *obs.PhaseProfiler
}

// Option customises a run.
type Option func(*Options)

// validate checks the option combination. It is the single place run
// preconditions are enforced, so every constraint reads as one line here
// instead of being scattered across option constructors as panics.
func (o *Options) validate() error {
	if o.maxSteps < 0 {
		return fmt.Errorf("sim: WithMaxSteps(%d): the step bound must be non-negative", o.maxSteps)
	}
	switch o.ruleChoice {
	case FirstEnabledRule, RandomEnabledRule:
	default:
		return fmt.Errorf("sim: WithRuleChoice(%d): unknown rule-choice policy", o.ruleChoice)
	}
	if o.ruleChoice == RandomEnabledRule && o.rng == nil {
		return fmt.Errorf("sim: WithRuleChoice(RandomEnabledRule, nil): the random policy requires a non-nil rng")
	}
	if o.shards < 0 {
		return fmt.Errorf("sim: WithShards(%d): the shard count must be non-negative", o.shards)
	}
	if o.shards > 1 {
		if o.ruleChoice == RandomEnabledRule {
			return fmt.Errorf("sim: WithShards(%d) is incompatible with RandomEnabledRule: shards execute rules concurrently, so draws from the shared rng would consume it in a nondeterministic order", o.shards)
		}
		if o.memo != nil {
			return fmt.Errorf("sim: WithShards(%d) is incompatible with WithMemo: the memoized evaluator is not safe for concurrent guard evaluation", o.shards)
		}
	}
	return nil
}

// WithMaxSteps bounds the number of steps of the run.
func WithMaxSteps(maxSteps int) Option {
	return func(o *Options) { o.maxSteps = maxSteps }
}

// WithLegitimate sets the legitimacy predicate used to measure stabilization
// time: the run records when the predicate first holds (and keeps running
// until termination or the step bound, since legitimate configurations need
// not be terminal).
func WithLegitimate(p Predicate) Option {
	return func(o *Options) { o.legitimate = p }
}

// WithStepHook registers a hook invoked after every step.
func WithStepHook(h StepHook) Option {
	return func(o *Options) { o.hooks = append(o.hooks, h) }
}

// WithRuleChoice sets the rule-choice policy (default FirstEnabledRule). The
// RandomEnabledRule policy requires a non-nil rng: a nil rng would silently
// degrade the policy to deterministic first-rule choice, losing the
// nondeterminism the caller asked for. The violation is reported when the
// run starts (an error from RunE, a panic from Run), not here, so that
// option values can be assembled and inspected freely.
func WithRuleChoice(p RuleChoicePolicy, rng *rand.Rand) Option {
	return func(o *Options) {
		o.ruleChoice = p
		o.rng = rng
	}
}

// WithStopWhenLegitimate makes the run stop as soon as the legitimacy
// predicate holds (useful for non-silent algorithms such as unison, whose
// executions never terminate).
func WithStopWhenLegitimate() Option {
	return func(o *Options) { o.stopWhenLegitimate = true }
}

// WithMemo attaches a neighbourhood-transition memo share to the run: guard
// enabledness is answered from the share's frozen table (and a run-local
// overlay) instead of re-evaluating guards, and the first run to finish
// against an unfrozen share donates its table for the remaining runs of the
// cell. A nil share is a no-op, so callers thread an optional share through
// unconditionally. Memoized runs are bit-identical to unmemoized ones (the
// cache stores pure functions of closed neighbourhoods); Result.Memo carries
// the hit/miss telemetry.
func WithMemo(share *MemoShare) Option {
	return func(o *Options) { o.memo = share; o.memoReadOnly = false }
}

// WithMemoReadOnly is WithMemo without the donation half of the protocol: the
// run answers from the share's frozen table (and a private overlay) but never
// donates its own table, even when the share is still unfrozen. Grid runners
// hand it to every trial except the designated cache-filling one, so a cell
// whose warm trial was skipped keeps per-trial hit counts deterministic
// instead of racing the remaining trials for donation.
func WithMemoReadOnly(share *MemoShare) Option {
	return func(o *Options) { o.memo = share; o.memoReadOnly = true }
}

// WithProfiler attaches a phase profiler to the run: on the profiler's
// sampled steps (see obs.NewPhaseProfiler) the engine records wall time per
// step phase — daemon select, rule execution, guard re-evaluation and
// accounting sequentially; select, per-shard execute, merge, per-shard
// boundary exchange and accounting when sharded. Timing never feeds back
// into the execution, so profiled runs stay bit-identical to unprofiled
// ones, and without a profiler (the default) the loop pays one nil check
// per step and allocates nothing. The profiler belongs to a single run; read
// it with Profile after the run returns.
func WithProfiler(p *obs.PhaseProfiler) Option {
	return func(o *Options) { o.profiler = p }
}

func defaultOptions() Options {
	return Options{
		maxSteps:   DefaultMaxSteps,
		ruleChoice: FirstEnabledRule,
	}
}

// Result summarises an execution.
type Result struct {
	// Steps is the number of executed steps.
	Steps int
	// Moves is the total number of rule executions.
	Moves int
	// MovesPerProcess gives the number of moves of each process.
	MovesPerProcess []int
	// MovesPerRule gives the number of executions of each rule, by name.
	MovesPerRule map[string]int
	// Rounds is the number of rounds elapsed (rounded up if the execution
	// stopped mid-round with progress made in that round).
	Rounds int
	// Terminated reports whether the run reached a terminal configuration.
	Terminated bool
	// HitStepLimit reports whether the run stopped because of the step bound.
	HitStepLimit bool
	// Final is the last configuration of the run.
	Final *Configuration
	// LegitimateReached reports whether the legitimacy predicate ever held
	// (always false when no predicate was supplied).
	LegitimateReached bool
	// StabilizationMoves, StabilizationRounds and StabilizationSteps are the
	// costs incurred strictly before the first legitimate configuration
	// (0 if the initial configuration is already legitimate, -1 when the
	// predicate never held or was not supplied). StabilizationRounds follows
	// the same conservative-upper-estimate convention as Rounds: a round
	// still in progress when legitimacy is first reached counts as one full
	// round.
	StabilizationMoves  int
	StabilizationRounds int
	StabilizationSteps  int
	// MaxMovesPerProcess is the maximum entry of MovesPerProcess.
	MaxMovesPerProcess int
	// StabilizationMovesPerProcessMax is the maximum number of moves any
	// single process executed before the first legitimate configuration
	// (-1 when the predicate never held).
	StabilizationMovesPerProcessMax int
	// Events holds the per-event recovery records of an injected run (see
	// WithInjector), in the order the events fired. Empty for uninjected
	// runs.
	Events []EventRecovery
	// LegitimateSteps counts the executed steps whose resulting
	// configuration satisfied the legitimacy predicate. It is only
	// maintained for injected runs with a predicate (static runs keep the
	// predicate evaluation out of the hot loop once the first legitimate
	// configuration is recorded).
	LegitimateSteps int
	// Memo carries the transition-memoization telemetry of the run (all
	// zero when the run executed without WithMemo).
	Memo MemoStats
}

// Availability returns the fraction of executed steps whose resulting
// configuration was legitimate (0 when no step executed). It is only
// meaningful for injected runs — see LegitimateSteps.
func (r *Result) Availability() float64 {
	if r.Steps == 0 {
		return 0
	}
	return float64(r.LegitimateSteps) / float64(r.Steps)
}

// newResult returns a Result with the accounting fields initialised for n
// processes.
func newResult(n int) Result {
	return Result{
		MovesPerProcess:                 make([]int, n),
		MovesPerRule:                    make(map[string]int),
		StabilizationMoves:              -1,
		StabilizationRounds:             -1,
		StabilizationSteps:              -1,
		StabilizationMovesPerProcessMax: -1,
	}
}

// recordMove accounts one rule execution by process u.
func (r *Result) recordMove(u int, rule string) {
	r.Moves++
	r.MovesPerProcess[u]++
	r.MovesPerRule[rule]++
}

// markLegitimate records the costs incurred up to the first legitimate
// configuration. partialRound reports whether a round was still in progress
// when the configuration was reached; it counts as one round, matching the
// conservative convention of the final Rounds count.
func (r *Result) markLegitimate(partialRound bool) {
	r.LegitimateReached = true
	r.StabilizationMoves = r.Moves
	r.StabilizationSteps = r.Steps
	r.StabilizationRounds = r.Rounds
	if partialRound {
		r.StabilizationRounds++
	}
	maxMoves := 0
	for _, m := range r.MovesPerProcess {
		if m > maxMoves {
			maxMoves = m
		}
	}
	r.StabilizationMovesPerProcessMax = maxMoves
}

// finish computes the derived fields once the run has ended. Both round
// counts share the partial-round convention, so StabilizationRounds never
// exceeds the final Rounds.
func (r *Result) finish() {
	for _, m := range r.MovesPerProcess {
		if m > r.MaxMovesPerProcess {
			r.MaxMovesPerProcess = m
		}
	}
}

// Engine executes an algorithm on a network under a daemon.
type Engine struct {
	net    *Network
	alg    Algorithm
	daemon Daemon
}

// NewEngine builds an engine. It panics when any argument is nil.
func NewEngine(net *Network, alg Algorithm, daemon Daemon) *Engine {
	if net == nil || alg == nil || daemon == nil {
		panic("sim: NewEngine requires a network, an algorithm and a daemon")
	}
	return &Engine{net: net, alg: alg, daemon: daemon}
}

// Network returns the engine's network.
func (e *Engine) Network() *Network { return e.net }

// Algorithm returns the engine's algorithm.
func (e *Engine) Algorithm() Algorithm { return e.alg }

// Daemon returns the engine's daemon.
func (e *Engine) Daemon() Daemon { return e.daemon }

func (e *Engine) checkStart(start *Configuration) {
	if start.N() != e.net.N() {
		panic(fmt.Sprintf("sim: configuration has %d states for %d processes", start.N(), e.net.N()))
	}
}

// Run executes the algorithm from the given starting configuration until a
// terminal configuration is reached or the step bound is hit. The starting
// configuration is not modified. It is RunE with invalid option combinations
// turned into panics; callers that prefer errors use RunE directly.
func (e *Engine) Run(start *Configuration, opts ...Option) Result {
	res, err := e.RunE(start, opts...)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// RunE executes the algorithm from the given starting configuration until a
// terminal configuration is reached or the step bound is hit, reporting
// invalid option combinations as errors. The starting configuration is not
// modified.
//
// The loop is incremental and allocation-free in the steady state: the
// enabled set is maintained as a bitset and, after a step, only the
// activated processes and their neighbours are re-evaluated — rule guards
// read closed neighbourhoods only (the locally shared memory model), so
// enabledness cannot change anywhere else. The configuration is
// double-buffered instead of cloned per step, and the neutralization-based
// round accounting runs on reusable bitsets. RunReference retains the
// straightforward implementation; the two are differentially tested to
// produce bit-identical Results.
//
// With WithShards(k), k > 1, the run executes the sharded loop of
// runSharded instead: guard evaluation and rule execution are partitioned
// across k contiguous node ranges and run concurrently (see WithShards for
// the daemon semantics).
func (e *Engine) RunE(start *Configuration, opts ...Option) (Result, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		return Result{}, err
	}
	e.checkStart(start)
	if o.shards > 1 {
		return e.runSharded(start, o), nil
	}
	return e.run(start, o), nil
}

// run is the sequential engine loop behind Run and RunE.
func (e *Engine) run(start *Configuration, o Options) Result {
	n := e.net.N()
	ev := NewEvaluator(e.alg, e.net)
	rules := ev.Rules()

	// With a memo share attached, enabledness questions go through the
	// memoized evaluator (nil when the rule set cannot be memoized, falling
	// back to direct evaluation). The memoized answers are bit-identical to
	// ev.Enabled by construction — the cache stores pure functions of closed
	// neighbourhoods — so the rest of the loop is oblivious to the choice.
	var memo *MemoEvaluator
	if o.memo != nil {
		memo = NewMemoEvaluator(ev, o.memo)
		if memo != nil && o.memoReadOnly {
			memo.donor = false
		}
	}
	enabledAt := ev.Enabled
	if memo != nil {
		enabledAt = memo.Enabled
	}

	// Double-buffered state vectors: guards and the daemon read cur, the
	// step's writes land in next, and the two swap after every step.
	curStates := make([]State, n)
	for u := 0; u < n; u++ {
		curStates[u] = start.State(u).Clone()
	}
	nextStates := make([]State, n)
	curCfg := &Configuration{states: curStates}
	nextCfg := &Configuration{states: nextStates}

	res := newResult(n)

	// With an injector attached the predicate is evaluated once per boundary
	// into curLegit (recovery tracking needs the *current* verdict, not the
	// sticky first-stabilization one); recordLegit then reuses it instead of
	// re-evaluating.
	inj := o.injector
	curLegit := false
	evalLegit := func() {
		if o.legitimate != nil {
			curLegit = o.legitimate(curCfg)
		}
	}

	recordLegit := func(partialRound bool) {
		if res.LegitimateReached || o.legitimate == nil {
			return
		}
		if inj != nil {
			if curLegit {
				res.markLegitimate(partialRound)
			}
			return
		}
		if o.legitimate(curCfg) {
			res.markLegitimate(partialRound)
		}
	}

	// openEvents tracks injected events whose recovery has not completed yet:
	// the counter values at the moment each event fired. All open events
	// close together at the next legitimate configuration.
	type openEvent struct {
		idx, steps, moves, rounds int
	}
	var openEvents []openEvent
	closeRecovered := func(partialRound bool) {
		if !curLegit || len(openEvents) == 0 {
			return
		}
		for _, oe := range openEvents {
			rec := &res.Events[oe.idx]
			rec.Recovered = true
			rec.RecoverySteps = res.Steps - oe.steps
			rec.RecoveryMoves = res.Moves - oe.moves
			rec.RecoveryRounds = res.Rounds - oe.rounds
			if partialRound {
				rec.RecoveryRounds++
			}
		}
		openEvents = openEvents[:0]
	}

	// enabledBits is the authoritative enabled set; enabledList is its sorted
	// materialisation handed to daemons.
	enabledBits := newBitset(n)
	for u := 0; u < n; u++ {
		if enabledAt(curCfg, u) {
			enabledBits.set(u)
		}
	}
	enabledList := enabledBits.appendIndices(make([]int, 0, n))

	// Round accounting (neutralization-based): pending holds the processes
	// enabled at the start of the current round that have neither moved nor
	// been neutralized yet. roundProgress records whether the current round
	// saw any step, so that a final partial round is counted.
	pending := newBitset(n)
	pending.copyFrom(enabledBits)
	wasEnabled := newBitset(n)
	activated := newBitset(n)
	touched := newBitset(n)
	roundProgress := false

	// Reusable per-step scratch buffers.
	selectedBuf := make([]int, 0, n)
	ruleNames := make([]string, 0, n)
	ruleIdx := make([]int, 0, len(rules))
	dedup := newBitset(n)

	evalLegit()
	recordLegit(false)
	closeRecovered(false)

	for {
		if inj != nil {
			// Injection boundary: consult the injector before selecting the
			// next step (and again after each applied event — several events
			// may fire back to back, and at a terminal configuration the
			// injector gets to perturb the system instead of ending the run).
			p := InjectionPoint{
				Step:       res.Steps,
				Round:      res.Rounds,
				Moves:      res.Moves,
				Config:     curCfg,
				Net:        e.net,
				Legitimate: curLegit,
				Terminal:   len(enabledList) == 0,
			}
			if injn := inj.Inject(p); injn != nil {
				// Close the partial round in progress: rounds after the event
				// belong to its recovery.
				if roundProgress {
					res.Rounds++
					roundProgress = false
				}
				res.Events = append(res.Events, EventRecovery{
					Label:            injn.Label,
					Step:             res.Steps,
					Round:            res.Rounds,
					LegitimateBefore: curLegit,
					RecoverySteps:    -1,
					RecoveryMoves:    -1,
					RecoveryRounds:   -1,
				})
				openEvents = append(openEvents, openEvent{
					idx:    len(res.Events) - 1,
					steps:  res.Steps,
					moves:  res.Moves,
					rounds: res.Rounds,
				})
				e.applyInjection(injn, curStates)

				// Re-seed the incremental machinery: states and topology may
				// have changed arbitrarily, so the whole enabled set is
				// recomputed and a fresh round starts at the perturbed
				// configuration. The memo's per-process state-id mirror is
				// stale for the same reason (the memo tables themselves stay
				// valid: keys self-describe the neighbourhood, so entries for
				// the old topology are simply never probed again).
				if memo != nil {
					memo.InvalidateAll()
				}
				for u := 0; u < n; u++ {
					if enabledAt(curCfg, u) {
						enabledBits.set(u)
					} else {
						enabledBits.clear(u)
					}
				}
				enabledList = enabledBits.appendIndices(enabledList[:0])
				pending.copyFrom(enabledBits)

				evalLegit()
				recordLegit(false)
				closeRecovered(false)
				continue
			}
		}
		if len(enabledList) == 0 {
			break
		}
		if res.Steps >= o.maxSteps {
			res.HitStepLimit = true
			break
		}
		if o.stopWhenLegitimate {
			if inj == nil {
				if res.LegitimateReached {
					break
				}
			} else if inj.Done() && curLegit {
				// Injected runs may not stop at the first legitimate
				// configuration: later events would never fire. They stop
				// once the schedule is exhausted and the system recovered.
				break
			}
		}

		// Phase profiling: on sampled steps the loop records the wall time of
		// each phase. The clock reads sit between phases, never inside them,
		// and nothing here feeds back into the execution.
		profStep := false
		var tStep, t0 time.Time
		if o.profiler != nil {
			if profStep = o.profiler.StartStep(); profStep {
				tStep = time.Now()
				t0 = tStep
			}
		}

		raw := e.daemon.Select(Selection{
			Net:     e.net,
			Alg:     e.alg,
			Config:  curCfg,
			Enabled: enabledList,
			Step:    res.Steps,
		})
		selected := sanitizeSelectionInto(selectedBuf[:0], raw, n, enabledBits, dedup, enabledList)
		selectedBuf = selected[:0]
		if profStep {
			o.profiler.Observe(obs.PhaseSelect, time.Since(t0))
			t0 = time.Now()
		}

		// Composite atomicity: all selected processes read cur and their
		// writes are installed together in next.
		copy(nextStates, curStates)
		ruleNames = ruleNames[:0]
		for _, u := range selected {
			v := e.net.View(curCfg, u)
			var ri int
			if memo != nil {
				ri = chooseRuleFromMask(memo.Mask(curCfg, u), o)
			} else {
				ri = chooseRule(rules, v, o, ruleIdx)
			}
			if ri < 0 {
				// Defensive: the daemon selected a non-enabled process; skip.
				ruleNames = append(ruleNames, "")
				continue
			}
			nextStates[u] = rules[ri].Action(v)
			ruleNames = append(ruleNames, rules[ri].Name)
			res.recordMove(u, rules[ri].Name)
		}
		if profStep {
			o.profiler.Observe(obs.PhaseExecute, time.Since(t0))
			t0 = time.Now()
		}

		// Snapshot the pre-step enabled set for neutralization accounting and
		// mark the closed neighbourhoods whose guards must be re-evaluated.
		wasEnabled.copyFrom(enabledBits)
		activated.reset()
		touched.reset()
		for _, u := range selected {
			activated.set(u)
			touched.set(u)
			for i, deg := 0, e.net.Degree(u); i < deg; i++ {
				touched.set(e.net.Neighbor(u, i))
			}
		}

		// Install the step and refresh enabledness only where it can change.
		// Only the activated processes hold new states, so only their memoized
		// ids go stale.
		curStates, nextStates = nextStates, curStates
		curCfg, nextCfg = nextCfg, curCfg
		if memo != nil {
			for _, u := range selected {
				memo.Invalidate(u)
			}
		}
		for wi, word := range touched {
			base := wi << 6
			for word != 0 {
				u := base + bits.TrailingZeros64(word)
				word &= word - 1
				if enabledAt(curCfg, u) {
					enabledBits.set(u)
				} else {
					enabledBits.clear(u)
				}
			}
		}
		enabledList = enabledBits.appendIndices(enabledList[:0])
		if profStep {
			o.profiler.Observe(obs.PhaseGuard, time.Since(t0))
			t0 = time.Now()
		}
		roundProgress = true

		// pending loses the activated processes and the neutralized ones
		// (enabled before the step, not activated, not enabled after it).
		pending.subtract(activated)
		pending.subtractDiff(wasEnabled, enabledBits)

		for _, h := range o.hooks {
			h(StepInfo{
				Step:      res.Steps,
				Activated: selected,
				Rules:     ruleNames,
				Before:    nextCfg,
				After:     curCfg,
				Round:     res.Rounds,
			})
		}
		res.Steps++

		if pending.empty() {
			// The round is complete; the next one starts at cur.
			res.Rounds++
			roundProgress = false
			pending.copyFrom(enabledBits)
		}

		if inj != nil {
			evalLegit()
			if curLegit {
				res.LegitimateSteps++
			}
		}
		recordLegit(roundProgress)
		closeRecovered(roundProgress)
		if profStep {
			o.profiler.Observe(obs.PhaseAccount, time.Since(t0))
			o.profiler.EndStep(time.Since(tStep))
		}
	}

	if roundProgress {
		// A partial round was in progress when the run stopped; count it so
		// that round counts are conservative upper estimates.
		res.Rounds++
	}
	res.Terminated = len(enabledList) == 0
	res.Final = NewConfiguration(curStates)
	res.finish()
	if memo != nil {
		res.Memo = memo.Stats()
		memo.Finish()
	}
	return res
}

// sanitizeSelectionInto is the allocation-free selection sanitizer of the hot
// loop: it appends to out the selected processes that are actually enabled,
// de-duplicated (via the dedup scratch bitset, left cleared) and sorted; when
// the daemon misbehaves and returns an empty or fully invalid selection, the
// first enabled process is used so that the run always makes progress
// (matching the "distributed" requirement that at least one enabled process
// moves).
func sanitizeSelectionInto(out, selected []int, n int, enabledBits, dedup bitset, enabled []int) []int {
	for _, u := range selected {
		if u < 0 || u >= n || !enabledBits.get(u) || dedup.get(u) {
			continue
		}
		dedup.set(u)
		out = append(out, u)
	}
	for _, u := range out {
		dedup.clear(u)
	}
	if len(out) == 0 {
		return append(out, enabled[0])
	}
	slices.Sort(out)
	return out
}

// chooseRule returns the index of the rule process v executes, or -1 when no
// rule is enabled. scratch is a reusable buffer for the RandomEnabledRule
// policy; it must have capacity for all rule indices.
func chooseRule(rules []Rule, v View, o Options, scratch []int) int {
	enabled := scratch[:0]
	for i, r := range rules {
		if r.Guard(v) {
			if o.ruleChoice == FirstEnabledRule {
				return i
			}
			enabled = append(enabled, i)
		}
	}
	if len(enabled) == 0 {
		return -1
	}
	// Options.validate rejects a nil rng for RandomEnabledRule, so o.rng is
	// always set here.
	return enabled[o.rng.Intn(len(enabled))]
}

// chooseRuleFromMask is chooseRule over a memoized enabled-rule bitmask. It
// consumes the rng identically (one Intn over the same count, selecting set
// bits in ascending index order), so memoized and direct runs stay
// bit-identical under both policies.
func chooseRuleFromMask(mask uint64, o Options) int {
	if mask == 0 {
		return -1
	}
	if o.ruleChoice == FirstEnabledRule {
		return bits.TrailingZeros64(mask)
	}
	pick := o.rng.Intn(bits.OnesCount64(mask))
	for ; pick > 0; pick-- {
		mask &= mask - 1
	}
	return bits.TrailingZeros64(mask)
}
