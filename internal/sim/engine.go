package sim

import (
	"fmt"
	"math/rand"
)

// DefaultMaxSteps bounds a run when the caller does not override it; it
// protects against non-terminating executions of non-silent algorithms.
const DefaultMaxSteps = 2_000_000

// RuleChoicePolicy decides which enabled rule an activated process executes
// when several of its rules are enabled (the model leaves this
// nondeterministic).
type RuleChoicePolicy int

// Rule choice policies.
const (
	// FirstEnabledRule executes the first enabled rule in declaration order.
	FirstEnabledRule RuleChoicePolicy = iota + 1
	// RandomEnabledRule executes a uniformly random enabled rule.
	RandomEnabledRule
)

// StepInfo describes one executed step, for hooks and traces.
type StepInfo struct {
	// Step is the 0-based index of the step.
	Step int
	// Activated lists the processes that moved, in ascending order.
	Activated []int
	// Rules gives, for each activated process (same order), the name of the
	// rule it executed.
	Rules []string
	// Before and After are the configurations around the step. They are the
	// engine's working copies: hooks must not retain or modify them beyond
	// the callback (clone if needed).
	Before, After *Configuration
	// Round is the index (0-based) of the round this step belongs to.
	Round int
}

// StepHook observes executed steps.
type StepHook func(StepInfo)

// Options configures a run. Use the With* functions to set them.
type Options struct {
	maxSteps           int
	legitimate         Predicate
	hooks              []StepHook
	ruleChoice         RuleChoicePolicy
	rng                *rand.Rand
	stopWhenLegitimate bool
}

// Option customises a run.
type Option func(*Options)

// WithMaxSteps bounds the number of steps of the run.
func WithMaxSteps(maxSteps int) Option {
	return func(o *Options) { o.maxSteps = maxSteps }
}

// WithLegitimate sets the legitimacy predicate used to measure stabilization
// time: the run records when the predicate first holds (and keeps running
// until termination or the step bound, since legitimate configurations need
// not be terminal).
func WithLegitimate(p Predicate) Option {
	return func(o *Options) { o.legitimate = p }
}

// WithStepHook registers a hook invoked after every step.
func WithStepHook(h StepHook) Option {
	return func(o *Options) { o.hooks = append(o.hooks, h) }
}

// WithRuleChoice sets the rule-choice policy (default FirstEnabledRule).
func WithRuleChoice(p RuleChoicePolicy, rng *rand.Rand) Option {
	return func(o *Options) {
		o.ruleChoice = p
		o.rng = rng
	}
}

// WithStopWhenLegitimate makes the run stop as soon as the legitimacy
// predicate holds (useful for non-silent algorithms such as unison, whose
// executions never terminate).
func WithStopWhenLegitimate() Option {
	return func(o *Options) { o.stopWhenLegitimate = true }
}

func defaultOptions() Options {
	return Options{
		maxSteps:   DefaultMaxSteps,
		ruleChoice: FirstEnabledRule,
	}
}

// Result summarises an execution.
type Result struct {
	// Steps is the number of executed steps.
	Steps int
	// Moves is the total number of rule executions.
	Moves int
	// MovesPerProcess gives the number of moves of each process.
	MovesPerProcess []int
	// MovesPerRule gives the number of executions of each rule, by name.
	MovesPerRule map[string]int
	// Rounds is the number of rounds elapsed (rounded up if the execution
	// stopped mid-round with progress made in that round).
	Rounds int
	// Terminated reports whether the run reached a terminal configuration.
	Terminated bool
	// HitStepLimit reports whether the run stopped because of the step bound.
	HitStepLimit bool
	// Final is the last configuration of the run.
	Final *Configuration
	// LegitimateReached reports whether the legitimacy predicate ever held
	// (always false when no predicate was supplied).
	LegitimateReached bool
	// StabilizationMoves, StabilizationRounds and StabilizationSteps are the
	// costs incurred strictly before the first legitimate configuration
	// (0 if the initial configuration is already legitimate, -1 when the
	// predicate never held or was not supplied).
	StabilizationMoves  int
	StabilizationRounds int
	StabilizationSteps  int
	// MaxMovesPerProcess is the maximum entry of MovesPerProcess.
	MaxMovesPerProcess int
	// StabilizationMovesPerProcessMax is the maximum number of moves any
	// single process executed before the first legitimate configuration
	// (-1 when the predicate never held).
	StabilizationMovesPerProcessMax int
}

// Engine executes an algorithm on a network under a daemon.
type Engine struct {
	net    *Network
	alg    Algorithm
	daemon Daemon
}

// NewEngine builds an engine. It panics when any argument is nil.
func NewEngine(net *Network, alg Algorithm, daemon Daemon) *Engine {
	if net == nil || alg == nil || daemon == nil {
		panic("sim: NewEngine requires a network, an algorithm and a daemon")
	}
	return &Engine{net: net, alg: alg, daemon: daemon}
}

// Network returns the engine's network.
func (e *Engine) Network() *Network { return e.net }

// Algorithm returns the engine's algorithm.
func (e *Engine) Algorithm() Algorithm { return e.alg }

// Daemon returns the engine's daemon.
func (e *Engine) Daemon() Daemon { return e.daemon }

// Run executes the algorithm from the given starting configuration until a
// terminal configuration is reached or the step bound is hit. The starting
// configuration is not modified.
func (e *Engine) Run(start *Configuration, opts ...Option) Result {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if start.N() != e.net.N() {
		panic(fmt.Sprintf("sim: configuration has %d states for %d processes", start.N(), e.net.N()))
	}

	n := e.net.N()
	cur := start.Clone()
	res := Result{
		MovesPerProcess:                 make([]int, n),
		MovesPerRule:                    make(map[string]int),
		StabilizationMoves:              -1,
		StabilizationRounds:             -1,
		StabilizationSteps:              -1,
		StabilizationMovesPerProcessMax: -1,
	}

	recordLegit := func() {
		if res.LegitimateReached || o.legitimate == nil {
			return
		}
		if o.legitimate(cur) {
			res.LegitimateReached = true
			res.StabilizationMoves = res.Moves
			res.StabilizationSteps = res.Steps
			res.StabilizationRounds = res.Rounds
			maxMoves := 0
			for _, m := range res.MovesPerProcess {
				if m > maxMoves {
					maxMoves = m
				}
			}
			res.StabilizationMovesPerProcessMax = maxMoves
		}
	}

	// Round accounting (neutralization-based): pending holds the processes
	// enabled at the start of the current round that have neither moved nor
	// been neutralized yet. roundProgress records whether the current round
	// saw any step, so that a final partial round is counted.
	enabled := EnabledSet(e.alg, e.net, cur)
	pending := make(map[int]bool, len(enabled))
	for _, u := range enabled {
		pending[u] = true
	}
	roundProgress := false

	recordLegit()

	rules := e.alg.Rules()
	for len(enabled) > 0 {
		if res.Steps >= o.maxSteps {
			res.HitStepLimit = true
			break
		}
		if o.stopWhenLegitimate && res.LegitimateReached {
			break
		}

		selected := e.daemon.Select(Selection{
			Net:     e.net,
			Alg:     e.alg,
			Config:  cur,
			Enabled: enabled,
			Step:    res.Steps,
		})
		selected = sanitizeSelection(selected, enabled)

		// Composite atomicity: all selected processes read cur and their
		// writes are installed together in next.
		next := NewConfiguration(copyStates(cur))
		ruleNames := make([]string, 0, len(selected))
		for _, u := range selected {
			v := e.net.View(cur, u)
			ri := chooseRule(rules, v, o)
			if ri < 0 {
				// Defensive: the daemon selected a non-enabled process; skip.
				ruleNames = append(ruleNames, "")
				continue
			}
			next.SetState(u, rules[ri].Action(v))
			ruleNames = append(ruleNames, rules[ri].Name)
			res.Moves++
			res.MovesPerProcess[u]++
			res.MovesPerRule[rules[ri].Name]++
		}

		enabledBefore := enabled
		prev := cur
		cur = next
		enabled = EnabledSet(e.alg, e.net, cur)
		roundProgress = true

		// Update the pending set of the current round.
		activatedSet := make(map[int]bool, len(selected))
		for _, u := range selected {
			activatedSet[u] = true
		}
		enabledAfter := make(map[int]bool, len(enabled))
		for _, u := range enabled {
			enabledAfter[u] = true
		}
		wasEnabled := make(map[int]bool, len(enabledBefore))
		for _, u := range enabledBefore {
			wasEnabled[u] = true
		}
		for u := range pending {
			if activatedSet[u] {
				delete(pending, u)
				continue
			}
			if wasEnabled[u] && !enabledAfter[u] {
				// Neutralized: enabled before the step, not activated, and
				// no longer enabled after it.
				delete(pending, u)
			}
		}

		for _, h := range o.hooks {
			h(StepInfo{
				Step:      res.Steps,
				Activated: selected,
				Rules:     ruleNames,
				Before:    prev,
				After:     cur,
				Round:     res.Rounds,
			})
		}
		res.Steps++

		if len(pending) == 0 {
			// The round is complete; the next one starts at cur.
			res.Rounds++
			roundProgress = false
			pending = make(map[int]bool, len(enabled))
			for _, u := range enabled {
				pending[u] = true
			}
		}

		recordLegit()
	}

	if roundProgress {
		// A partial round was in progress when the run stopped; count it so
		// that round counts are conservative upper estimates.
		res.Rounds++
	}
	res.Terminated = len(enabled) == 0
	res.Final = cur
	for _, m := range res.MovesPerProcess {
		if m > res.MaxMovesPerProcess {
			res.MaxMovesPerProcess = m
		}
	}
	if res.LegitimateReached && res.StabilizationRounds > res.Rounds {
		res.StabilizationRounds = res.Rounds
	}
	return res
}

// sanitizeSelection keeps only selected processes that are actually enabled
// and returns them sorted and de-duplicated; when the daemon misbehaves and
// returns an empty or fully invalid selection, the first enabled process is
// used so that the run always makes progress (matching the "distributed"
// requirement that at least one enabled process moves).
func sanitizeSelection(selected, enabled []int) []int {
	enabledSet := make(map[int]bool, len(enabled))
	for _, u := range enabled {
		enabledSet[u] = true
	}
	seen := make(map[int]bool, len(selected))
	var out []int
	for _, u := range selected {
		if enabledSet[u] && !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	if len(out) == 0 {
		return []int{enabled[0]}
	}
	sortInts(out)
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func chooseRule(rules []Rule, v View, o Options) int {
	var enabled []int
	for i, r := range rules {
		if r.Guard(v) {
			if o.ruleChoice == FirstEnabledRule {
				return i
			}
			enabled = append(enabled, i)
		}
	}
	if len(enabled) == 0 {
		return -1
	}
	if o.rng == nil {
		return enabled[0]
	}
	return enabled[o.rng.Intn(len(enabled))]
}
