package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"sdr/internal/graph"
)

func TestPackKey(t *testing.T) {
	if key, ok := packKey([]uint64{5}); !ok || key != 5 {
		t.Fatalf("single component: key=%d ok=%v, want 5 true", key, ok)
	}
	// A single component uses the full 64 bits.
	if key, ok := packKey([]uint64{1 << 63}); !ok || key != 1<<63 {
		t.Fatalf("wide single component: key=%d ok=%v, want 1<<63 true", key, ok)
	}
	if key, ok := packKey([]uint64{1, 2}); !ok || key != 1<<32|2 {
		t.Fatalf("two components: key=%#x ok=%v, want 1<<32|2 true", key, ok)
	}
	// A component exceeding its field spills.
	if _, ok := packKey([]uint64{1 << 32, 0}); ok {
		t.Fatal("oversized component packed")
	}
	// More than 64 components leave zero bits per component.
	if _, ok := packKey(make([]uint64, 65)); ok {
		t.Fatal("65 components packed")
	}
	// Distinct component sequences of the same length pack to distinct keys.
	a, _ := packKey([]uint64{1, 2, 3})
	b, _ := packKey([]uint64{3, 2, 1})
	if a == b {
		t.Fatal("order-sensitive components collided")
	}
}

func TestMemoTableCapAndFreeze(t *testing.T) {
	tab := newMemoTable("a", 4, false, 2)
	var buf []byte
	var ok bool
	if ok, buf = tab.insert(1, []uint64{1, 2}, 0b101, buf); !ok {
		t.Fatal("first insert refused")
	}
	if ok, buf = tab.insert(1, []uint64{1, 3}, 0b010, buf); !ok {
		t.Fatal("second insert refused")
	}
	if ok, buf = tab.insert(1, []uint64{1, 4}, 0b001, buf); ok {
		t.Fatal("insert past the entry cap accepted")
	}
	if tab.Entries() != 2 {
		t.Fatalf("Entries = %d, want 2", tab.Entries())
	}
	var mask uint64
	if mask, ok, buf = tab.lookup(1, []uint64{1, 2}, buf); !ok || mask != 0b101 {
		t.Fatalf("lookup after cap: mask=%b ok=%v, want 101 true", mask, ok)
	}
	if _, ok, buf = tab.lookup(1, []uint64{1, 4}, buf); ok {
		t.Fatal("uncached key found")
	}
	if _, ok, buf = tab.lookup(2, []uint64{1, 2}, buf); ok {
		t.Fatal("degree classes not segregated")
	}
	tab.frozen = true
	if ok, _ = tab.insert(3, []uint64{9}, 1, buf); ok {
		t.Fatal("insert into frozen table accepted")
	}
}

func TestMemoTableSpillPath(t *testing.T) {
	tab := newMemoTable("a", 4, false, 0)
	wide := []uint64{1 << 40, 1 << 41, 7} // cannot pack: 3 components, 21 bits each
	var buf []byte
	var ok bool
	if ok, buf = tab.insert(2, wide, 0b11, buf); !ok {
		t.Fatal("spill insert refused")
	}
	var mask uint64
	if mask, ok, _ = tab.lookup(2, wide, buf); !ok || mask != 0b11 {
		t.Fatalf("spill lookup: mask=%b ok=%v, want 11 true", mask, ok)
	}
}

func TestMemoTableCompatible(t *testing.T) {
	tab := newMemoTable("alg", 4, true, 0)
	if !tab.compatible("alg", 4, true) {
		t.Fatal("table incompatible with its own shape")
	}
	if tab.compatible("other", 4, true) || tab.compatible("alg", 5, true) || tab.compatible("alg", 4, false) {
		t.Fatal("mismatched shape reported compatible")
	}
	var nilTab *MemoTable
	if nilTab.compatible("alg", 4, true) {
		t.Fatal("nil table reported compatible")
	}
}

func TestMemoShareDonateFirstWins(t *testing.T) {
	share := NewMemoShare(0)
	if share.Frozen() != nil {
		t.Fatal("fresh share already frozen")
	}
	first := newMemoTable("a", 1, false, 0)
	second := newMemoTable("a", 1, false, 0)
	if !share.donate(first) {
		t.Fatal("first donation rejected")
	}
	if share.donate(second) {
		t.Fatal("second donation accepted")
	}
	if share.Frozen() != first {
		t.Fatal("frozen table is not the first donation")
	}
	if !first.frozen || !second.frozen {
		t.Fatal("donated tables not marked frozen")
	}
}

func TestZigzag(t *testing.T) {
	cases := map[int]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4}
	for v, want := range cases {
		if got := ZigZag64(v); got != want {
			t.Errorf("ZigZag64(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestMemoStats(t *testing.T) {
	s := MemoStats{Hits: 3, Misses: 1, Fills: 1}
	if s.Lookups() != 4 {
		t.Fatalf("Lookups = %d, want 4", s.Lookups())
	}
	if s.HitRate() != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", s.HitRate())
	}
	if (MemoStats{}).HitRate() != 0 {
		t.Fatal("empty HitRate != 0")
	}
	s.Add(MemoStats{Hits: 1, Misses: 2, Fills: 1, Bypasses: 1})
	if s != (MemoStats{Hits: 4, Misses: 3, Fills: 2, Bypasses: 1}) {
		t.Fatalf("Add: %+v", s)
	}
}

func TestAlgorithmUsesIdentifiersDefault(t *testing.T) {
	if !AlgorithmUsesIdentifiers(maxPropagation{}) {
		t.Fatal("algorithm without a declaration not treated as identified")
	}
}

// manyRules is an unmemoizable algorithm: more rules than fit the bitmask.
type manyRules struct{ n int }

func (a manyRules) Name() string { return fmt.Sprintf("many-rules(%d)", a.n) }
func (a manyRules) Rules() []Rule {
	rules := make([]Rule, a.n)
	for i := range rules {
		rules[i] = Rule{
			Name:   fmt.Sprintf("r%d", i),
			Guard:  func(View) bool { return false },
			Action: func(v View) State { return v.Self() },
		}
	}
	return rules
}
func (a manyRules) InitialState(int, *Network) State { return intState{} }

func TestNewMemoEvaluatorTooManyRules(t *testing.T) {
	net := NewNetwork(graph.Ring(4))
	if m := NewMemoEvaluator(NewEvaluator(manyRules{n: 65}, net), nil); m != nil {
		t.Fatal("65-rule algorithm memoized")
	}
	if m := NewMemoEvaluator(NewEvaluator(manyRules{n: 64}, net), nil); m == nil {
		t.Fatal("64-rule algorithm refused")
	}
}

// TestMemoEvaluatorMatchesEvaluator cross-checks every memoized answer
// against the direct evaluator on random configurations, revisiting each
// configuration so both the miss and the hit path are exercised.
func TestMemoEvaluatorMatchesEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomConnected(9, 0.4, rng)
	net := NewNetwork(g)
	ev := NewEvaluator(maxPropagation{}, net)
	m := NewMemoEvaluator(ev, nil)
	if m == nil {
		t.Fatal("NewMemoEvaluator returned nil")
	}
	configs := make([]*Configuration, 8)
	for i := range configs {
		states := make([]State, net.N())
		for u := range states {
			states[u] = intState{v: rng.Intn(4)}
		}
		configs[i] = NewConfiguration(states)
	}
	for pass := 0; pass < 2; pass++ {
		for _, c := range configs {
			m.InvalidateAll() // switching configurations invalidates the id mirror
			for u := 0; u < net.N(); u++ {
				mask := m.Mask(c, u)
				var want uint64
				if ev.Enabled(c, u) {
					want = 1 // maxPropagation has a single rule
				}
				if mask != want {
					t.Fatalf("pass %d config %v u %d: mask %b, want %b", pass, c, u, mask, want)
				}
				if got, ref := m.Enabled(c, u), ev.Enabled(c, u); got != ref {
					t.Fatalf("Enabled(%d) = %v, evaluator %v", u, got, ref)
				}
				gotRules := m.AppendEnabledRules(nil, c, u)
				refRules := ev.AppendEnabledRules(nil, c, u)
				if len(gotRules) != len(refRules) {
					t.Fatalf("AppendEnabledRules(%d) = %v, evaluator %v", u, gotRules, refRules)
				}
				for i := range gotRules {
					if gotRules[i] != refRules[i] {
						t.Fatalf("AppendEnabledRules(%d) = %v, evaluator %v", u, gotRules, refRules)
					}
				}
				first := m.FirstEnabledRule(c, u)
				if len(refRules) == 0 && first != -1 {
					t.Fatalf("FirstEnabledRule(%d) = %d on disabled process", u, first)
				}
				if len(refRules) > 0 && first != refRules[0] {
					t.Fatalf("FirstEnabledRule(%d) = %d, want %d", u, first, refRules[0])
				}
			}
			gotSet := m.AppendEnabled(nil, c)
			refSet := ev.AppendEnabled(nil, c)
			if len(gotSet) != len(refSet) {
				t.Fatalf("AppendEnabled = %v, evaluator %v", gotSet, refSet)
			}
			for i := range gotSet {
				if gotSet[i] != refSet[i] {
					t.Fatalf("AppendEnabled = %v, evaluator %v", gotSet, refSet)
				}
			}
		}
	}
	st := m.Stats()
	if st.Lookups() != st.Hits+st.Misses {
		t.Fatalf("Lookups() inconsistent: %+v", st)
	}
	if st.Misses != st.Fills+st.Bypasses {
		t.Fatalf("misses not split into fills+bypasses: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("revisited configurations produced no hits: %+v", st)
	}
	if st.Bypasses != 0 {
		t.Fatalf("unexpected bypasses under the default cap: %+v", st)
	}
}

// TestMemoShareAcrossRuns drives the engine twice against one share: the
// first run donates its table and the second answers mostly from it, with
// results identical to an unmemoized run.
func TestMemoShareAcrossRuns(t *testing.T) {
	g := graph.RandomConnected(10, 0.3, rand.New(rand.NewSource(3)))
	net := NewNetwork(g)
	alg := maxPropagation{}
	start := InitialConfiguration(alg, net)
	df := StandardDaemonFactories()[0]

	share := NewMemoShare(0)
	run := func(opts ...Option) Result {
		return NewEngine(net, alg, df.New(5)).Run(start, opts...)
	}
	plain := run(WithMaxSteps(10_000))
	first := run(WithMaxSteps(10_000), WithMemo(share))
	if share.Frozen() == nil {
		t.Fatal("first run did not donate its table")
	}
	if first.Memo.Fills == 0 {
		t.Fatalf("first run filled nothing: %+v", first.Memo)
	}
	second := run(WithMaxSteps(10_000), WithMemo(share))
	if second.Memo.Hits == 0 {
		t.Fatalf("second run hit nothing: %+v", second.Memo)
	}
	if second.Memo.HitRate() < first.Memo.HitRate() {
		t.Fatalf("hit rate did not improve: first %+v second %+v", first.Memo, second.Memo)
	}
	for _, r := range []Result{first, second} {
		if r.Steps != plain.Steps || r.Moves != plain.Moves || r.Rounds != plain.Rounds ||
			!r.Final.Equal(plain.Final) {
			t.Fatalf("memoized run diverged from plain run: %+v vs %+v", r, plain)
		}
	}
	if plain.Memo != (MemoStats{}) {
		t.Fatalf("unmemoized run reported memo stats: %+v", plain.Memo)
	}
}

// TestMemoEntryCapBypasses caps the table at one entry and checks that the
// overflow degrades to counted bypasses, not wrong answers.
func TestMemoEntryCapBypasses(t *testing.T) {
	g := graph.RandomConnected(10, 0.3, rand.New(rand.NewSource(3)))
	net := NewNetwork(g)
	alg := maxPropagation{}
	start := InitialConfiguration(alg, net)
	df := StandardDaemonFactories()[0]

	plain := NewEngine(net, alg, df.New(5)).Run(start, WithMaxSteps(10_000))
	capped := NewEngine(net, alg, df.New(5)).Run(start,
		WithMaxSteps(10_000), WithMemo(NewMemoShare(1)))
	if capped.Memo.Bypasses == 0 {
		t.Fatalf("cap of 1 produced no bypasses: %+v", capped.Memo)
	}
	if capped.Memo.Fills > 1 {
		t.Fatalf("cap of 1 exceeded: %+v", capped.Memo)
	}
	if capped.Steps != plain.Steps || capped.Moves != plain.Moves || !capped.Final.Equal(plain.Final) {
		t.Fatal("capped memoized run diverged from plain run")
	}
}
