// Package sim implements the computational model of the paper: the locally
// shared memory model with composite atomicity, driven by a daemon.
//
// A distributed algorithm is a set of guarded rules per process. In a step,
// the daemon selects a non-empty subset of the enabled processes; every
// selected process atomically executes one of its enabled rules, all reading
// the configuration at the beginning of the step and writing the new
// configuration at the end. Executions are maximal sequences of steps.
//
// Time is measured in moves (rule executions) and in rounds (the
// neutralization-based definition of Dolev, Israeli and Moran used by the
// paper). Both are tracked by the Engine.
package sim

import (
	"fmt"
	"strings"
)

// State is the local state of a single process: the values of all its
// locally shared variables. Implementations must be value-like — Clone must
// return an independent copy and Equal must compare by value.
type State interface {
	// Clone returns a deep copy of the state.
	Clone() State
	// Equal reports whether the other state has the same variable values.
	Equal(other State) bool
	// String renders the state compactly for traces and debugging.
	String() string
}

// Configuration is a vector of process states, indexed by process.
type Configuration struct {
	states []State
}

// NewConfiguration builds a configuration from the given per-process states.
// The slice is copied; the states themselves are not cloned.
func NewConfiguration(states []State) *Configuration {
	c := &Configuration{states: make([]State, len(states))}
	copy(c.states, states)
	return c
}

// N returns the number of processes.
func (c *Configuration) N() int { return len(c.states) }

// State returns the state of process u.
func (c *Configuration) State(u int) State { return c.states[u] }

// SetState replaces the state of process u.
func (c *Configuration) SetState(u int, s State) { c.states[u] = s }

// Clone returns a deep copy of the configuration (all states cloned).
func (c *Configuration) Clone() *Configuration {
	states := make([]State, len(c.states))
	for i, s := range c.states {
		states[i] = s.Clone()
	}
	return &Configuration{states: states}
}

// Equal reports whether both configurations assign equal states to every
// process.
func (c *Configuration) Equal(other *Configuration) bool {
	if other == nil || len(c.states) != len(other.states) {
		return false
	}
	for i, s := range c.states {
		if !s.Equal(other.states[i]) {
			return false
		}
	}
	return true
}

// String renders the configuration as "[s0 | s1 | ...]".
func (c *Configuration) String() string {
	parts := make([]string, len(c.states))
	for i, s := range c.states {
		parts[i] = s.String()
	}
	return "[" + strings.Join(parts, " | ") + "]"
}

// Key returns a canonical string usable as a map key.
//
// Deprecated: Key renders every local state to a string on every call,
// which dominates the cost of state-space exploration and cycle detection.
// Hold a KeyInterner instead: its varint keys have the same equality
// semantics at a fraction of the bytes hashed and retained.
func (c *Configuration) Key() string {
	var b strings.Builder
	for i, s := range c.states {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// ForEach calls fn for every process index and state.
func (c *Configuration) ForEach(fn func(u int, s State)) {
	for u, s := range c.states {
		fn(u, s)
	}
}

// Predicate is a predicate over configurations, e.g. a legitimacy predicate.
type Predicate func(*Configuration) bool

// ProcessPredicate is a predicate over the closed neighbourhood of one
// process, evaluated through its View.
type ProcessPredicate func(View) bool

// AllProcesses lifts a per-process predicate to a configuration predicate
// with respect to a fixed network: it holds when the per-process predicate
// holds at every process.
func AllProcesses(net *Network, p ProcessPredicate) Predicate {
	return func(c *Configuration) bool {
		for u := 0; u < net.N(); u++ {
			if !p(net.View(c, u)) {
				return false
			}
		}
		return true
	}
}

func checkProcessIndex(u, n int) {
	if u < 0 || u >= n {
		panic(fmt.Sprintf("sim: process index %d out of range [0,%d)", u, n))
	}
}
