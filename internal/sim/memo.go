package sim

import (
	"encoding/binary"
	"math/bits"
	"sync/atomic"
)

// This file implements neighbourhood-transition memoization: a cache from a
// process's closed-neighbourhood state (its own state plus its neighbours'
// states, as interned ids) to the bitmask of its enabled rules. Guards in the
// locally shared memory model read closed neighbourhoods only, so the mask is
// a pure function of that key — the same observation PR 1's incremental
// engine rests on. A campaign cell re-answers the same neighbourhood
// questions millions of times across its seeded trials; the memo layer
// answers repeats with one map lookup instead of re-running every guard.
//
// Cache-key scheme. A key is the sequence (own state id, neighbour state ids
// in local-label order), prefixed with the process's identifier and its
// neighbours' identifiers for algorithms that read View.ID/NeighborID. The
// neighbour ids are deliberately NOT sorted (the guard sees neighbours
// through ordered local labels, so permuting them is not semantics-
// preserving in general); keys self-describe the neighbourhood, which makes
// them valid across processes, trials and even topology mutations — churn
// needs no invalidation of the table, only of the per-run id mirror. Tables
// are segregated per degree class; small neighbourhoods pack their ids into
// one uint64 (no allocation, single map probe), wider ones spill to a
// varint-encoded string key.
//
// Sharing protocol. A MemoShare is the per-cell rendezvous: the first run to
// finish against an unfrozen share donates its table, which is atomically
// published frozen (immutable — lock-free on the hit path) to every run that
// starts afterwards. Later runs layer a private writable table over the
// frozen one for neighbourhoods the donor never saw. bench.MapGridWarm and
// the campaign runner complete trial 0 of a cell before its remaining trials
// start, so the donor is always trial 0 and per-trial hit counts are
// deterministic (independent of the worker count).

// DefaultMemoEntries bounds a memo table's entry count when the share does
// not override it. Past the cap a table stops filling and keeps serving its
// existing entries, so unbounded local state spaces degrade gracefully to
// direct guard evaluation (counted as bypasses).
const DefaultMemoEntries = 1 << 18

// memoMaxRules bounds the rule sets the memo layer handles: the enabled set
// of one process must fit a uint64 bitmask. NewMemoEvaluator returns nil for
// larger rule sets and callers fall back to the plain Evaluator.
const memoMaxRules = 64

// MemoStats counts the outcomes of memoized enabledness lookups. Every
// lookup is a hit or a miss; every miss falls back to direct guard
// evaluation and then either fills the local table or is bypassed (entry cap
// reached).
type MemoStats struct {
	// Hits counts lookups answered without guard evaluation: from the
	// per-process mask cache, the frozen shared table or the run-local
	// table.
	Hits uint64
	// Misses counts lookups that fell back to direct guard evaluation.
	Misses uint64
	// Fills counts misses whose result was added to the run-local table.
	Fills uint64
	// Bypasses counts misses that could not be cached because the entry cap
	// was reached.
	Bypasses uint64
}

// Lookups returns the total number of memoized lookups.
func (s MemoStats) Lookups() uint64 { return s.Hits + s.Misses }

// HitRate returns Hits/Lookups, or 0 when nothing was looked up.
func (s MemoStats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits) / float64(l)
	}
	return 0
}

// Add accumulates o into s.
func (s *MemoStats) Add(o MemoStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Fills += o.Fills
	s.Bypasses += o.Bypasses
}

// IdentifierUser is optionally implemented by algorithms to declare whether
// their rule guards read View.ID/NeighborID (directly or through composed
// predicates). Algorithms that do not implement it are conservatively
// assumed to read identifiers, which only makes memo keys longer — anonymous
// algorithms (unison, BPV) declare false and share cache entries across
// processes with equal neighbourhood states.
type IdentifierUser interface {
	UsesIdentifiers() bool
}

// AlgorithmUsesIdentifiers reports whether memo keys for the algorithm must
// include process identifiers: false only when the algorithm explicitly
// declares itself identifier-free.
func AlgorithmUsesIdentifiers(a Algorithm) bool {
	if iu, ok := a.(IdentifierUser); ok {
		return iu.UsesIdentifiers()
	}
	return true
}

// memoClass is the per-degree-class table: neighbourhoods whose ids fit one
// uint64 live in packed, the rest spill to varint-encoded string keys.
type memoClass struct {
	packed map[uint64]uint64
	spill  map[string]uint64
}

// MemoTable maps interned neighbourhood keys to enabled-rule bitmasks for
// one (algorithm, identifier-mode) pair. A table is either private to one
// MemoEvaluator or frozen (immutable) inside a MemoShare; only frozen tables
// may be read concurrently.
type MemoTable struct {
	alg        string
	rules      int
	identified bool
	maxEntries int
	entries    int
	frozen     bool
	// classes is indexed by degree (degrees are bounded by the network
	// size, so a slice beats a map on the hit path); nil entries are
	// classes never filled.
	classes []*memoClass
}

// newMemoTable returns an empty table for the evaluator's shape.
func newMemoTable(alg string, rules int, identified bool, maxEntries int) *MemoTable {
	if maxEntries <= 0 {
		maxEntries = DefaultMemoEntries
	}
	return &MemoTable{
		alg:        alg,
		rules:      rules,
		identified: identified,
		maxEntries: maxEntries,
	}
}

// Entries returns the number of cached neighbourhoods.
func (t *MemoTable) Entries() int { return t.entries }

// compatible reports whether the table caches the same (algorithm, rule set,
// identifier mode) the evaluator asks about; a frozen table from a
// mismatched share is ignored rather than consulted unsoundly.
func (t *MemoTable) compatible(alg string, rules int, identified bool) bool {
	return t != nil && t.alg == alg && t.rules == rules && t.identified == identified
}

// packKey packs the component ids into one uint64 key, giving each of the
// len(comps) components 64/len(comps) bits. ok is false when a component
// does not fit (the neighbourhood spills to the string key).
func packKey(comps []uint64) (key uint64, ok bool) {
	width := uint(64 / len(comps))
	if width == 0 {
		return 0, false
	}
	if width < 64 { // a single component always fits its full 64 bits
		limit := uint64(1) << width
		for _, c := range comps {
			if c >= limit {
				return 0, false
			}
		}
	}
	for _, c := range comps {
		key = key<<width | c
	}
	return key, true
}

// spillKey renders the component ids as a varint string into buf.
func spillKey(comps []uint64, buf []byte) ([]byte, []byte) {
	buf = buf[:0]
	for _, c := range comps {
		buf = binary.AppendUvarint(buf, c)
	}
	return buf, buf
}

// lookup probes the degree class for the neighbourhood key. buf is the
// caller's scratch for the spill rendering; it is returned grown.
func (t *MemoTable) lookup(degree int, comps []uint64, buf []byte) (mask uint64, ok bool, _ []byte) {
	if degree >= len(t.classes) || t.classes[degree] == nil {
		return 0, false, buf
	}
	cl := t.classes[degree]
	if key, packed := packKey(comps); packed {
		mask, ok = cl.packed[key]
		return mask, ok, buf
	}
	var k []byte
	k, buf = spillKey(comps, buf)
	mask, ok = cl.spill[string(k)]
	return mask, ok, buf
}

// insert caches the mask for the neighbourhood key; it reports false when
// the entry cap is reached or the table is frozen (the caller counts a
// bypass). buf is the caller's spill scratch, returned grown.
func (t *MemoTable) insert(degree int, comps []uint64, mask uint64, buf []byte) (bool, []byte) {
	if t.frozen || t.entries >= t.maxEntries {
		return false, buf
	}
	for degree >= len(t.classes) {
		t.classes = append(t.classes, nil)
	}
	cl := t.classes[degree]
	if cl == nil {
		cl = &memoClass{packed: make(map[uint64]uint64)}
		t.classes[degree] = cl
	}
	if key, packed := packKey(comps); packed {
		cl.packed[key] = mask
	} else {
		var k []byte
		k, buf = spillKey(comps, buf)
		if cl.spill == nil {
			cl.spill = make(map[string]uint64)
		}
		cl.spill[string(k)] = mask
	}
	t.entries++
	return true, buf
}

// MemoShare is the cross-trial rendezvous of one sweep cell: the shared
// state interner (so ids mean the same thing in every trial's keys) and the
// frozen table donated by the cell's first completed run. It is safe for
// concurrent use; the frozen table is read lock-free.
type MemoShare struct {
	interner   *KeyInterner
	maxEntries int
	frozen     atomic.Pointer[MemoTable]
}

// NewMemoShare returns an empty share. maxEntries bounds donated and local
// tables; ≤ 0 means DefaultMemoEntries.
func NewMemoShare(maxEntries int) *MemoShare {
	if maxEntries <= 0 {
		maxEntries = DefaultMemoEntries
	}
	return &MemoShare{interner: NewKeyInterner(), maxEntries: maxEntries}
}

// Interner returns the share's state interner, for callers (the checker)
// that also intern whole-configuration keys and want one id space.
func (s *MemoShare) Interner() *KeyInterner { return s.interner }

// Frozen returns the published read-only table, or nil before donation.
func (s *MemoShare) Frozen() *MemoTable { return s.frozen.Load() }

// donate freezes t and publishes it as the share's read-only table unless
// another run won the race; it reports whether t was published.
func (s *MemoShare) donate(t *MemoTable) bool {
	t.frozen = true
	return s.frozen.CompareAndSwap(nil, t)
}

// MemoEvaluator answers enabledness questions through the memo tables,
// falling back to the wrapped Evaluator's guards on a miss. It mirrors each
// process's current interned state id and revalidates ids lazily, so engine
// integration costs one Invalidate per activated process per step. A
// MemoEvaluator is single-goroutine state (the share behind it is not).
type MemoEvaluator struct {
	ev         *Evaluator
	net        *Network
	rules      []Rule
	interner   *KeyInterner
	share      *MemoShare
	frozen     *MemoTable // published table snapshotted at construction
	local      *MemoTable // private writable overlay
	donor      bool       // no table was frozen when this run started
	identified bool

	ids       []uint64 // interned id of each process's current state
	valid     bitset
	masks     []uint64 // cached enabled-rule mask of each process
	maskValid bitset
	fast      map[uint64]uint64 // Key64 encoding → interned id, lock-free front
	comps     []uint64          // reusable key-component buffer
	render    []byte            // reusable state-rendering scratch
	spill     []byte            // reusable spill-key scratch
	stats     MemoStats
}

// NewMemoEvaluator wraps ev with memo tables attached to share; a nil share
// gives a run-private cache. It returns nil when the rule set cannot be
// memoized (more rules than fit the bitmask) — callers fall back to ev.
func NewMemoEvaluator(ev *Evaluator, share *MemoShare) *MemoEvaluator {
	rules := ev.Rules()
	if len(rules) > memoMaxRules {
		return nil
	}
	n := ev.Network().N()
	m := &MemoEvaluator{
		ev:         ev,
		net:        ev.Network(),
		rules:      rules,
		share:      share,
		identified: AlgorithmUsesIdentifiers(ev.Algorithm()),
		ids:        make([]uint64, n),
		valid:      newBitset(n),
		masks:      make([]uint64, n),
		maskValid:  newBitset(n),
		fast:       make(map[uint64]uint64),
	}
	alg := ev.Algorithm().Name()
	maxEntries := 0
	if share != nil {
		m.interner = share.interner
		maxEntries = share.maxEntries
		if f := share.Frozen(); f.compatible(alg, len(rules), m.identified) {
			m.frozen = f
		} else if f == nil {
			m.donor = true
		}
	} else {
		m.interner = NewKeyInterner()
	}
	m.local = newMemoTable(alg, len(rules), m.identified, maxEntries)
	return m
}

// Evaluator returns the wrapped direct evaluator.
func (m *MemoEvaluator) Evaluator() *Evaluator { return m.ev }

// Stats returns the lookup counters accumulated so far.
func (m *MemoEvaluator) Stats() MemoStats { return m.stats }

// Invalidate drops the cached state id and mask of process u, plus the
// cached masks of u's neighbours — their closed neighbourhoods contain u
// (call after u moves).
func (m *MemoEvaluator) Invalidate(u int) {
	m.valid.clear(u)
	m.maskValid.clear(u)
	for i, deg := 0, m.net.Degree(u); i < deg; i++ {
		m.maskValid.clear(m.net.Neighbor(u, i))
	}
}

// InvalidateAll drops every cached state id and mask (call after an
// injection or when switching to a different configuration).
func (m *MemoEvaluator) InvalidateAll() {
	m.valid.reset()
	m.maskValid.reset()
}

// stateID interns s, preferring the evaluator-local Key64 front (one
// unlocked integer-map probe, no rendering) over the shared interner.
func (m *MemoEvaluator) stateID(s State) uint64 {
	if k, ok := StateKey64(s); ok {
		if id, hit := m.fast[k]; hit {
			return id
		}
		var id uint64
		id, m.render = m.interner.StateID(s, m.render)
		m.fast[k] = id
		return id
	}
	var id uint64
	id, m.render = m.interner.StateID(s, m.render)
	return id
}

// syncNeighborhood revalidates the interned state ids of u's closed
// neighbourhood against c.
func (m *MemoEvaluator) syncNeighborhood(c *Configuration, u int) {
	if !m.valid.get(u) {
		m.ids[u] = m.stateID(c.State(u))
		m.valid.set(u)
	}
	for i, deg := 0, m.net.Degree(u); i < deg; i++ {
		w := m.net.Neighbor(u, i)
		if !m.valid.get(w) {
			m.ids[w] = m.stateID(c.State(w))
			m.valid.set(w)
		}
	}
}

// Mask returns the bitmask of the rules enabled at process u in c (bit i set
// iff rule i's guard holds), answering from the per-process mask cache or
// the memo tables when possible. The caller must Invalidate the processes
// whose states changed since the previous call (the engine invalidates
// activated processes per step).
func (m *MemoEvaluator) Mask(c *Configuration, u int) uint64 {
	if m.maskValid.get(u) {
		m.stats.Hits++
		return m.masks[u]
	}
	mask := m.lookupMask(c, u)
	m.masks[u] = mask
	m.maskValid.set(u)
	return mask
}

// lookupMask answers a mask question the per-process cache could not: from
// the frozen or local memo table, or by direct guard evaluation on a miss.
func (m *MemoEvaluator) lookupMask(c *Configuration, u int) uint64 {
	m.syncNeighborhood(c, u)
	degree := m.net.Degree(u)
	comps := m.comps[:0]
	if m.identified {
		comps = append(comps, ZigZag64(m.net.ID(u)), m.ids[u])
		for i := 0; i < degree; i++ {
			w := m.net.Neighbor(u, i)
			comps = append(comps, ZigZag64(m.net.ID(w)), m.ids[w])
		}
	} else {
		comps = append(comps, m.ids[u])
		for i := 0; i < degree; i++ {
			comps = append(comps, m.ids[m.net.Neighbor(u, i)])
		}
	}
	m.comps = comps

	var mask uint64
	var ok bool
	if m.frozen != nil {
		if mask, ok, m.spill = m.frozen.lookup(degree, comps, m.spill); ok {
			m.stats.Hits++
			return mask
		}
	}
	if mask, ok, m.spill = m.local.lookup(degree, comps, m.spill); ok {
		m.stats.Hits++
		return mask
	}
	m.stats.Misses++
	mask = m.computeMask(c, u)
	var filled bool
	if filled, m.spill = m.local.insert(degree, comps, mask, m.spill); filled {
		m.stats.Fills++
	} else {
		m.stats.Bypasses++
	}
	return mask
}

// computeMask evaluates every rule guard directly.
func (m *MemoEvaluator) computeMask(c *Configuration, u int) uint64 {
	v := m.net.View(c, u)
	var mask uint64
	for i := range m.rules {
		if m.rules[i].Guard(v) {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// Enabled reports whether process u has at least one enabled rule in c.
func (m *MemoEvaluator) Enabled(c *Configuration, u int) bool {
	return m.Mask(c, u) != 0
}

// FirstEnabledRule returns the lowest-index enabled rule of u in c, or -1.
func (m *MemoEvaluator) FirstEnabledRule(c *Configuration, u int) int {
	mask := m.Mask(c, u)
	if mask == 0 {
		return -1
	}
	return bits.TrailingZeros64(mask)
}

// AppendEnabledRules appends the indices of the rules enabled at u in c to
// dst, like Evaluator.AppendEnabledRules.
func (m *MemoEvaluator) AppendEnabledRules(dst []int, c *Configuration, u int) []int {
	mask := m.Mask(c, u)
	for mask != 0 {
		dst = append(dst, bits.TrailingZeros64(mask))
		mask &= mask - 1
	}
	return dst
}

// AppendEnabled appends the sorted set of enabled processes in c to dst,
// like Evaluator.AppendEnabled.
func (m *MemoEvaluator) AppendEnabled(dst []int, c *Configuration) []int {
	for u := 0; u < m.net.N(); u++ {
		if m.Enabled(c, u) {
			dst = append(dst, u)
		}
	}
	return dst
}

// Finish donates the run-local table to the share when this run started
// against an unfrozen share (the cell's cache-filling phase). Call once,
// when the run ends; the table becomes immutable either way.
func (m *MemoEvaluator) Finish() {
	m.local.frozen = true
	if m.share != nil && m.donor && m.local.entries > 0 {
		m.share.donate(m.local)
	}
}
