package sim

// Evaluator is the shared guard-evaluation path of the package: it snapshots
// an algorithm's rule set once and answers enabledness questions against it.
// The engine's hot loop, the package-level Enabled/EnabledSet/Terminal
// helpers and the checker's state-space exploration all evaluate guards
// through it, so callers that ask many enabledness questions about the same
// algorithm (exhaustive exploration, lookahead daemons, benchmark checkers)
// fetch the rule slice once instead of per process per call.
type Evaluator struct {
	net   *Network
	alg   Algorithm
	rules []Rule
}

// NewEvaluator builds an evaluator for the algorithm on the network. It
// panics when either argument is nil.
func NewEvaluator(alg Algorithm, net *Network) *Evaluator {
	if alg == nil || net == nil {
		panic("sim: NewEvaluator requires an algorithm and a network")
	}
	return &Evaluator{net: net, alg: alg, rules: alg.Rules()}
}

// Algorithm returns the evaluated algorithm.
func (e *Evaluator) Algorithm() Algorithm { return e.alg }

// Network returns the network guards are evaluated on.
func (e *Evaluator) Network() *Network { return e.net }

// Rules returns the snapshotted rule set (not to be modified).
func (e *Evaluator) Rules() []Rule { return e.rules }

// Enabled reports whether process u has at least one enabled rule in c.
func (e *Evaluator) Enabled(c *Configuration, u int) bool {
	v := e.net.View(c, u)
	for i := range e.rules {
		if e.rules[i].Guard(v) {
			return true
		}
	}
	return false
}

// AppendEnabledRules appends the indices of the rules enabled at process u
// in c to dst and returns it; it allocates nothing when dst has capacity.
func (e *Evaluator) AppendEnabledRules(dst []int, c *Configuration, u int) []int {
	v := e.net.View(c, u)
	for i := range e.rules {
		if e.rules[i].Guard(v) {
			dst = append(dst, i)
		}
	}
	return dst
}

// AppendEnabled appends the sorted set of enabled processes in c to dst and
// returns it; it allocates nothing when dst has capacity.
func (e *Evaluator) AppendEnabled(dst []int, c *Configuration) []int {
	for u := 0; u < e.net.N(); u++ {
		if e.Enabled(c, u) {
			dst = append(dst, u)
		}
	}
	return dst
}

// Terminal reports whether c is a terminal configuration (no process
// enabled).
func (e *Evaluator) Terminal(c *Configuration) bool {
	for u := 0; u < e.net.N(); u++ {
		if e.Enabled(c, u) {
			return false
		}
	}
	return true
}
