package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sdr/internal/graph"
)

// intState is a trivial one-variable state used by the test algorithms.
type intState struct{ v int }

func (s intState) Clone() State { return intState{v: s.v} }
func (s intState) Equal(other State) bool {
	o, ok := other.(intState)
	return ok && o.v == s.v
}
func (s intState) String() string { return fmt.Sprintf("%d", s.v) }

// maxPropagation is a silent algorithm: every process adopts the maximum
// value seen in its closed neighbourhood. It terminates when all values are
// equal to the global maximum; from the initial configuration value(u) = u,
// that takes at most diameter rounds.
type maxPropagation struct{}

func (maxPropagation) Name() string { return "max-propagation" }

func (maxPropagation) Rules() []Rule {
	return []Rule{{
		Name: "adopt-max",
		Guard: func(v View) bool {
			return maxNeighbor(v) > v.Self().(intState).v
		},
		Action: func(v View) State {
			return intState{v: maxNeighbor(v)}
		},
	}}
}

func maxNeighbor(v View) int {
	best := v.Self().(intState).v
	for i := 0; i < v.Degree(); i++ {
		if nv := v.Neighbor(i).(intState).v; nv > best {
			best = nv
		}
	}
	return best
}

func (maxPropagation) InitialState(u int, _ *Network) State { return intState{v: u} }

// ticker is a non-terminating algorithm: every process is always enabled and
// increments its value modulo 4. Used to exercise step bounds.
type ticker struct{}

func (ticker) Name() string { return "ticker" }
func (ticker) Rules() []Rule {
	return []Rule{{
		Name:   "tick",
		Guard:  func(View) bool { return true },
		Action: func(v View) State { return intState{v: (v.Self().(intState).v + 1) % 4} },
	}}
}
func (ticker) InitialState(int, *Network) State { return intState{v: 0} }

// twoRules has two simultaneously enabled rules so rule-choice policies can
// be tested: "up" adds 2, "down" adds 1, both only when the value is 0.
type twoRules struct{}

func (twoRules) Name() string { return "two-rules" }
func (twoRules) Rules() []Rule {
	return []Rule{
		{
			Name:   "up",
			Guard:  func(v View) bool { return v.Self().(intState).v == 0 },
			Action: func(v View) State { return intState{v: 2} },
		},
		{
			Name:   "down",
			Guard:  func(v View) bool { return v.Self().(intState).v == 0 },
			Action: func(v View) State { return intState{v: 1} },
		},
	}
}
func (twoRules) InitialState(int, *Network) State { return intState{v: 0} }

func TestConfigurationBasics(t *testing.T) {
	c := NewConfiguration([]State{intState{1}, intState{2}})
	if c.N() != 2 {
		t.Fatalf("N = %d, want 2", c.N())
	}
	clone := c.Clone()
	if !c.Equal(clone) {
		t.Error("clone not equal")
	}
	clone.SetState(0, intState{9})
	if c.Equal(clone) {
		t.Error("modified clone still equal")
	}
	if c.State(0).(intState).v != 1 {
		t.Error("clone mutation leaked into original")
	}
	if c.Equal(nil) {
		t.Error("Equal(nil) = true")
	}
	if c.String() == "" || c.Key() == "" {
		t.Error("empty String/Key")
	}
	if c.Key() == clone.Key() {
		t.Error("distinct configurations share a key")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewNetwork accepted a disconnected graph")
		}
	}()
	NewNetwork(graph.New(3))
}

func TestNewNetworkWithIDs(t *testing.T) {
	g := graph.Ring(4)
	if _, err := NewNetworkWithIDs(g, []int{1, 2, 3}); err == nil {
		t.Error("accepted wrong identifier count")
	}
	if _, err := NewNetworkWithIDs(g, []int{1, 2, 2, 3}); err == nil {
		t.Error("accepted duplicate identifiers")
	}
	net, err := NewNetworkWithIDs(g, []int{40, 30, 20, 10})
	if err != nil {
		t.Fatalf("NewNetworkWithIDs: %v", err)
	}
	if net.ID(0) != 40 || net.ID(3) != 10 {
		t.Error("identifier assignment not respected")
	}
	if _, err := NewNetworkWithIDs(graph.New(2), []int{0, 1}); err == nil {
		t.Error("accepted a disconnected graph")
	}
}

func TestViewAccessors(t *testing.T) {
	g := graph.Star(4) // centre 0, leaves 1..3
	net := NewNetwork(g)
	c := NewConfiguration([]State{intState{10}, intState{11}, intState{12}, intState{13}})
	v := net.View(c, 0)
	if v.Degree() != 3 {
		t.Fatalf("Degree = %d, want 3", v.Degree())
	}
	if v.Self().(intState).v != 10 {
		t.Error("Self wrong")
	}
	if v.Neighbor(1).(intState).v != 12 {
		t.Error("Neighbor(1) wrong")
	}
	if v.ID() != 0 || v.NeighborID(2) != 3 {
		t.Error("identifier accessors wrong")
	}
	if v.Process() != 0 {
		t.Error("Process() wrong")
	}
	if !v.AnyNeighbor(func(s State) bool { return s.(intState).v == 13 }) {
		t.Error("AnyNeighbor missed a matching neighbour")
	}
	if v.AllNeighbors(func(s State) bool { return s.(intState).v > 11 }) {
		t.Error("AllNeighbors over-matched")
	}
	if got := v.CountNeighbors(func(s State) bool { return s.(intState).v >= 12 }); got != 2 {
		t.Errorf("CountNeighbors = %d, want 2", got)
	}
}

func TestEnabledHelpers(t *testing.T) {
	net := NewNetwork(graph.Path(3))
	alg := maxPropagation{}
	c := InitialConfiguration(alg, net)
	// Initial values 0,1,2: processes 0 and 1 are enabled, 2 is not.
	if !Enabled(alg, net, c, 0) || !Enabled(alg, net, c, 1) || Enabled(alg, net, c, 2) {
		t.Error("unexpected enabled statuses")
	}
	set := EnabledSet(alg, net, c)
	if len(set) != 2 || set[0] != 0 || set[1] != 1 {
		t.Errorf("EnabledSet = %v, want [0 1]", set)
	}
	if Terminal(alg, net, c) {
		t.Error("non-terminal configuration reported terminal")
	}
	if rules := EnabledRules(alg, net, c, 2); rules != nil {
		t.Errorf("EnabledRules at disabled process = %v, want nil", rules)
	}
}

func TestRunMaxPropagationTerminates(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"path8", graph.Path(8)},
		{"ring9", graph.Ring(9)},
		{"star6", graph.Star(6)},
		{"grid4x4", graph.Grid(4, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := NewNetwork(tc.g)
			for _, df := range StandardDaemonFactories() {
				eng := NewEngine(net, maxPropagation{}, df.New(1))
				res := eng.Run(InitialConfiguration(maxPropagation{}, net))
				if !res.Terminated {
					t.Fatalf("daemon %s: did not terminate", df.Name)
				}
				want := tc.g.N() - 1
				res.Final.ForEach(func(u int, s State) {
					if s.(intState).v != want {
						t.Fatalf("daemon %s: process %d final value %d, want %d", df.Name, u, s.(intState).v, want)
					}
				})
				if res.Moves == 0 || res.Steps == 0 || res.Rounds == 0 {
					t.Fatalf("daemon %s: empty accounting %+v", df.Name, res)
				}
			}
		})
	}
}

func TestRunRoundsBoundedByEccentricity(t *testing.T) {
	// Under any daemon, max-propagation stabilizes within ecc(v*) rounds
	// where v* is the node with the maximum value (here node n-1).
	g := graph.Path(10)
	net := NewNetwork(g)
	bound := g.Eccentricity(g.N() - 1)
	for _, df := range StandardDaemonFactories() {
		for seed := int64(0); seed < 3; seed++ {
			eng := NewEngine(net, maxPropagation{}, df.New(seed))
			res := eng.Run(InitialConfiguration(maxPropagation{}, net))
			if res.Rounds > bound {
				t.Errorf("daemon %s seed %d: %d rounds, want <= %d", df.Name, seed, res.Rounds, bound)
			}
		}
	}
}

func TestRunSynchronousRoundsEqualSteps(t *testing.T) {
	// Under the synchronous daemon every step is a round.
	net := NewNetwork(graph.Path(6))
	eng := NewEngine(net, maxPropagation{}, SynchronousDaemon{})
	res := eng.Run(InitialConfiguration(maxPropagation{}, net))
	if res.Rounds != res.Steps {
		t.Errorf("synchronous: rounds %d != steps %d", res.Rounds, res.Steps)
	}
}

func TestRunStepLimit(t *testing.T) {
	net := NewNetwork(graph.Ring(4))
	eng := NewEngine(net, ticker{}, SynchronousDaemon{})
	res := eng.Run(InitialConfiguration(ticker{}, net), WithMaxSteps(25))
	if !res.HitStepLimit {
		t.Error("step limit not reported")
	}
	if res.Terminated {
		t.Error("non-terminating algorithm reported terminated")
	}
	if res.Steps != 25 {
		t.Errorf("Steps = %d, want 25", res.Steps)
	}
	if res.Moves != 25*4 {
		t.Errorf("Moves = %d, want 100", res.Moves)
	}
}

func TestRunLegitimateTracking(t *testing.T) {
	g := graph.Path(5)
	net := NewNetwork(g)
	legit := func(c *Configuration) bool {
		for u := 0; u < c.N(); u++ {
			if c.State(u).(intState).v != g.N()-1 {
				return false
			}
		}
		return true
	}
	eng := NewEngine(net, maxPropagation{}, SynchronousDaemon{})
	res := eng.Run(InitialConfiguration(maxPropagation{}, net), WithLegitimate(legit))
	if !res.LegitimateReached {
		t.Fatal("legitimate configuration not detected")
	}
	if res.StabilizationMoves < 0 || res.StabilizationMoves > res.Moves {
		t.Errorf("StabilizationMoves = %d out of range", res.StabilizationMoves)
	}
	if res.StabilizationRounds < 0 || res.StabilizationRounds > res.Rounds {
		t.Errorf("StabilizationRounds = %d out of range", res.StabilizationRounds)
	}
	if res.StabilizationMovesPerProcessMax > res.MaxMovesPerProcess {
		t.Error("per-process stabilization moves exceed total per-process moves")
	}

	// Already-legitimate start: zero stabilization cost.
	final := res.Final.Clone()
	res2 := eng.Run(final, WithLegitimate(legit))
	if !res2.LegitimateReached || res2.StabilizationMoves != 0 || res2.StabilizationRounds != 0 {
		t.Errorf("legitimate start not recognised: %+v", res2)
	}
}

func TestRunStopWhenLegitimate(t *testing.T) {
	net := NewNetwork(graph.Ring(5))
	legitAfter := func(c *Configuration) bool {
		return c.State(0).(intState).v >= 2
	}
	eng := NewEngine(net, ticker{}, SynchronousDaemon{})
	res := eng.Run(InitialConfiguration(ticker{}, net),
		WithLegitimate(legitAfter), WithStopWhenLegitimate(), WithMaxSteps(1000))
	if !res.LegitimateReached {
		t.Fatal("legitimate configuration never reached")
	}
	if res.HitStepLimit {
		t.Error("run did not stop at the legitimate configuration")
	}
	if res.Steps != 2 {
		t.Errorf("Steps = %d, want 2", res.Steps)
	}
}

func TestRunStartConfigurationNotModified(t *testing.T) {
	net := NewNetwork(graph.Path(4))
	start := InitialConfiguration(maxPropagation{}, net)
	want := start.Clone()
	NewEngine(net, maxPropagation{}, SynchronousDaemon{}).Run(start)
	if !start.Equal(want) {
		t.Error("Run modified the starting configuration")
	}
}

func TestRunPanicsOnMismatchedConfiguration(t *testing.T) {
	net := NewNetwork(graph.Path(4))
	eng := NewEngine(net, maxPropagation{}, SynchronousDaemon{})
	defer func() {
		if recover() == nil {
			t.Error("mismatched configuration accepted")
		}
	}()
	eng.Run(NewConfiguration([]State{intState{0}}))
}

func TestNewEnginePanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEngine(nil, nil, nil) did not panic")
		}
	}()
	NewEngine(nil, nil, nil)
}

func TestStepHookObservesMoves(t *testing.T) {
	net := NewNetwork(graph.Path(4))
	var hookMoves int
	hook := func(info StepInfo) {
		if len(info.Activated) != len(info.Rules) {
			t.Errorf("step %d: %d activated vs %d rules", info.Step, len(info.Activated), len(info.Rules))
		}
		hookMoves += len(info.Activated)
		if info.Before == nil || info.After == nil {
			t.Error("hook saw nil configurations")
		}
	}
	eng := NewEngine(net, maxPropagation{}, SynchronousDaemon{})
	res := eng.Run(InitialConfiguration(maxPropagation{}, net), WithStepHook(hook))
	if hookMoves != res.Moves {
		t.Errorf("hook saw %d moves, result says %d", hookMoves, res.Moves)
	}
}

func TestRuleChoicePolicies(t *testing.T) {
	net := NewNetwork(graph.Path(2))
	alg := twoRules{}

	eng := NewEngine(net, alg, SynchronousDaemon{})
	res := eng.Run(InitialConfiguration(alg, net))
	if res.MovesPerRule["up"] != 2 || res.MovesPerRule["down"] != 0 {
		t.Errorf("first-enabled policy: %v", res.MovesPerRule)
	}

	rng := rand.New(rand.NewSource(5))
	sawDown := false
	for i := 0; i < 20 && !sawDown; i++ {
		res := eng.Run(InitialConfiguration(alg, net), WithRuleChoice(RandomEnabledRule, rng))
		if res.MovesPerRule["down"] > 0 {
			sawDown = true
		}
	}
	if !sawDown {
		t.Error("random rule choice never picked the second rule in 20 runs")
	}
}

func TestDaemonsSelectOnlyEnabledProcesses(t *testing.T) {
	g := graph.RandomConnected(12, 0.25, rand.New(rand.NewSource(11)))
	net := NewNetwork(g)
	for _, df := range StandardDaemonFactories() {
		daemon := df.New(3)
		alg := maxPropagation{}
		c := InitialConfiguration(alg, net)
		for step := 0; step < 20; step++ {
			enabled := EnabledSet(alg, net, c)
			if len(enabled) == 0 {
				break
			}
			sel := daemon.Select(Selection{Net: net, Alg: alg, Config: c, Enabled: enabled, Step: step})
			if len(sel) == 0 {
				t.Fatalf("daemon %s returned an empty selection", df.Name)
			}
			enabledSet := map[int]bool{}
			for _, u := range enabled {
				enabledSet[u] = true
			}
			for _, u := range sel {
				if !enabledSet[u] {
					t.Fatalf("daemon %s selected disabled process %d", df.Name, u)
				}
			}
			// Apply the step like the engine would.
			next := NewConfiguration(copyStates(c))
			for _, u := range sel {
				v := net.View(c, u)
				for _, r := range alg.Rules() {
					if r.Guard(v) {
						next.SetState(u, r.Action(v))
						break
					}
				}
			}
			c = next
		}
	}
}

func TestLocallyCentralDaemonIndependence(t *testing.T) {
	g := graph.Complete(6)
	net := NewNetwork(g)
	d := NewLocallyCentralDaemon(rand.New(rand.NewSource(2)))
	alg := ticker{}
	c := InitialConfiguration(alg, net)
	enabled := EnabledSet(alg, net, c)
	for trial := 0; trial < 10; trial++ {
		sel := d.Select(Selection{Net: net, Alg: alg, Config: c, Enabled: enabled, Step: trial})
		if len(sel) != 1 {
			t.Fatalf("locally central daemon on a clique selected %d processes, want 1", len(sel))
		}
	}
}

func TestStarvingDaemon(t *testing.T) {
	net := NewNetwork(graph.Ring(5))
	d := NewStarvingDaemon(2, rand.New(rand.NewSource(1)))
	alg := ticker{}
	c := InitialConfiguration(alg, net)
	enabled := EnabledSet(alg, net, c)
	for i := 0; i < 50; i++ {
		sel := d.Select(Selection{Net: net, Alg: alg, Config: c, Enabled: enabled, Step: i})
		for _, u := range sel {
			if u == 2 {
				t.Fatal("starving daemon activated the victim although others were enabled")
			}
		}
	}
	// Victim is activated when it is the only enabled process.
	sel := d.Select(Selection{Net: net, Alg: alg, Config: c, Enabled: []int{2}, Step: 0})
	if len(sel) != 1 || sel[0] != 2 {
		t.Errorf("starving daemon with only the victim enabled selected %v", sel)
	}
	if d.Name() == "" {
		t.Error("empty daemon name")
	}
}

func TestRoundRobinDaemonIsWeaklyFair(t *testing.T) {
	net := NewNetwork(graph.Ring(6))
	d := NewRoundRobinDaemon()
	alg := ticker{}
	c := InitialConfiguration(alg, net)
	enabled := EnabledSet(alg, net, c)
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		sel := d.Select(Selection{Net: net, Alg: alg, Config: c, Enabled: enabled, Step: i})
		if len(sel) != 1 {
			t.Fatalf("round robin selected %d processes", len(sel))
		}
		seen[sel[0]] = true
	}
	if len(seen) != 6 {
		t.Errorf("round robin covered %d processes in 6 steps, want 6", len(seen))
	}
}

func TestSanitizeSelection(t *testing.T) {
	got := referenceSanitizeSelection([]int{5, 3, 3, 9}, []int{1, 3, 5})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("referenceSanitizeSelection = %v, want [3 5]", got)
	}
	got = referenceSanitizeSelection(nil, []int{2, 4})
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("referenceSanitizeSelection fallback = %v, want [2]", got)
	}
}

func TestAllProcessesPredicate(t *testing.T) {
	net := NewNetwork(graph.Path(3))
	pred := AllProcesses(net, func(v View) bool { return v.Self().(intState).v >= 0 })
	c := NewConfiguration([]State{intState{0}, intState{1}, intState{2}})
	if !pred(c) {
		t.Error("predicate should hold")
	}
	c.SetState(1, intState{-1})
	if pred(c) {
		t.Error("predicate should fail")
	}
}

// Property: total moves equal the sum of per-process moves and the sum of
// per-rule moves, for random graphs and daemons.
func TestQuickMoveAccountingConsistent(t *testing.T) {
	factories := StandardDaemonFactories()
	f := func(seed int64, size, daemonIdx uint8) bool {
		n := 2 + int(size)%20
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, 0.2, rng)
		net := NewNetwork(g)
		df := factories[int(daemonIdx)%len(factories)]
		eng := NewEngine(net, maxPropagation{}, df.New(seed))
		res := eng.Run(InitialConfiguration(maxPropagation{}, net))
		if !res.Terminated {
			return false
		}
		perProcess := 0
		for _, m := range res.MovesPerProcess {
			perProcess += m
		}
		perRule := 0
		for _, m := range res.MovesPerRule {
			perRule += m
		}
		return perProcess == res.Moves && perRule == res.Moves
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: max-propagation always converges to the true maximum regardless
// of daemon and topology (a basic sanity check of composite atomicity).
func TestQuickMaxPropagationCorrect(t *testing.T) {
	factories := StandardDaemonFactories()
	f := func(seed int64, size, daemonIdx uint8) bool {
		n := 2 + int(size)%15
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, 0.3, rng)
		net := NewNetwork(g)
		df := factories[int(daemonIdx)%len(factories)]
		eng := NewEngine(net, maxPropagation{}, df.New(seed+1))
		res := eng.Run(InitialConfiguration(maxPropagation{}, net))
		if !res.Terminated {
			return false
		}
		ok := true
		res.Final.ForEach(func(u int, s State) {
			if s.(intState).v != n-1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStabilizationRoundsCountsPartialRound pins the round-accounting
// convention shared by Rounds and StabilizationRounds: legitimacy reached
// while a round is still in progress counts that round, so both are
// conservative upper estimates. Run and RunReference must agree.
func TestStabilizationRoundsCountsPartialRound(t *testing.T) {
	net := NewNetwork(graph.Ring(3))
	legit := func(c *Configuration) bool { return c.State(0).(intState).v >= 1 }
	opts := func() []Option {
		return []Option{WithLegitimate(legit), WithStopWhenLegitimate(), WithMaxSteps(100)}
	}
	// Round-robin activates exactly one process per step, so after the first
	// step (process 0 moves) the predicate holds while processes 1 and 2 are
	// still pending in the first round: the round in progress counts.
	res := NewEngine(net, ticker{}, NewRoundRobinDaemon()).Run(
		InitialConfiguration(ticker{}, net), opts()...)
	if !res.LegitimateReached || res.StabilizationSteps != 1 {
		t.Fatalf("expected legitimacy after exactly one step, got %+v", res)
	}
	if res.StabilizationRounds != 1 {
		t.Errorf("StabilizationRounds = %d, want 1 (mid-round legitimacy counts the round in progress)",
			res.StabilizationRounds)
	}
	if res.StabilizationRounds > res.Rounds {
		t.Errorf("StabilizationRounds %d exceeds Rounds %d", res.StabilizationRounds, res.Rounds)
	}
	ref := NewEngine(net, ticker{}, NewRoundRobinDaemon()).RunReference(
		InitialConfiguration(ticker{}, net), opts()...)
	if ref.StabilizationRounds != res.StabilizationRounds || ref.Rounds != res.Rounds {
		t.Errorf("RunReference rounds %d/%d diverge from Run %d/%d",
			ref.StabilizationRounds, ref.Rounds, res.StabilizationRounds, res.Rounds)
	}

	// At a round boundary the count is exact: under the synchronous daemon
	// every round is one step, and legitimacy at the end of round 1 must not
	// be inflated by a phantom partial round.
	sync := NewEngine(net, ticker{}, SynchronousDaemon{}).Run(
		InitialConfiguration(ticker{}, net), opts()...)
	if !sync.LegitimateReached || sync.StabilizationRounds != 1 || sync.Rounds != 1 {
		t.Errorf("synchronous stabilization = %d rounds (total %d), want exactly 1",
			sync.StabilizationRounds, sync.Rounds)
	}
}

// TestWithRuleChoiceRejectsNilRNG pins that the random rule-choice policy can
// never silently degrade to deterministic first-rule choice: RunE reports the
// missing rng as a validation error and Run panics on it.
func TestWithRuleChoiceRejectsNilRNG(t *testing.T) {
	g := graph.Ring(4)
	net := NewNetwork(g)
	eng := NewEngine(net, ticker{}, SynchronousDaemon{})
	start := InitialConfiguration(ticker{}, net)

	if _, err := eng.RunE(start, WithRuleChoice(RandomEnabledRule, nil)); err == nil {
		t.Error("RunE with WithRuleChoice(RandomEnabledRule, nil) must return an error")
	}

	defer func() {
		if recover() == nil {
			t.Error("Run with WithRuleChoice(RandomEnabledRule, nil) must panic")
		}
	}()
	eng.Run(start, WithRuleChoice(RandomEnabledRule, nil))
}
