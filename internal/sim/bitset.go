package sim

import "math/bits"

// bitset is a fixed-capacity set of process indices packed into 64-bit
// words. The engine's hot loop uses it for the enabled set and the
// neutralization-based round accounting, where the per-step set algebra
// (difference, copy, emptiness) runs word-wise instead of through maps.
type bitset []uint64

// newBitset returns an empty bitset able to hold indices in [0, n).
func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

// set adds u to the set.
func (b bitset) set(u int) { b[u>>6] |= 1 << uint(u&63) }

// clear removes u from the set.
func (b bitset) clear(u int) { b[u>>6] &^= 1 << uint(u&63) }

// get reports whether u is in the set.
func (b bitset) get(u int) bool { return b[u>>6]&(1<<uint(u&63)) != 0 }

// reset empties the set.
func (b bitset) reset() {
	for i := range b {
		b[i] = 0
	}
}

// copyFrom makes b an exact copy of o (same capacity required).
func (b bitset) copyFrom(o bitset) { copy(b, o) }

// subtract removes every element of o from b.
func (b bitset) subtract(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

// subtractDiff removes (was \ now) from b, i.e. the elements that left the
// set between the two snapshots.
func (b bitset) subtractDiff(was, now bitset) {
	for i := range b {
		b[i] &^= was[i] &^ now[i]
	}
}

// empty reports whether the set has no elements.
func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// count returns the number of elements in the set.
func (b bitset) count() int {
	total := 0
	for _, w := range b {
		total += bits.OnesCount64(w)
	}
	return total
}

// appendIndices appends the elements of the set to dst in ascending order
// and returns the extended slice.
func (b bitset) appendIndices(dst []int) []int {
	for wi, word := range b {
		base := wi << 6
		for word != 0 {
			dst = append(dst, base+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return dst
}
