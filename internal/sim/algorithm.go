package sim

import (
	"fmt"

	"sdr/internal/graph"
)

// Network couples a topology with an identifier assignment. The paper's
// reset and unison algorithms run on anonymous networks (identifiers exist in
// the simulator but must not be read by the algorithm); the (f,g)-alliance
// algorithm requires an identified network, so identifiers are exposed
// through the View for algorithms that declare they need them.
type Network struct {
	g   *graph.Graph
	ids []int
}

// NewNetwork builds a network over g with the default identifier assignment
// id(u) = u. It panics when the graph is invalid (empty or disconnected),
// since the paper only considers connected networks.
func NewNetwork(g *graph.Graph) *Network {
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	ids := make([]int, g.N())
	for i := range ids {
		ids[i] = i
	}
	return &Network{g: g, ids: ids}
}

// NewNetworkWithIDs builds a network with an explicit identifier assignment.
// Identifiers must be pairwise distinct. Permuting identifiers is used in
// tests to check that anonymous algorithms do not depend on them.
func NewNetworkWithIDs(g *graph.Graph, ids []int) (*Network, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if len(ids) != g.N() {
		return nil, fmt.Errorf("sim: %d identifiers for %d processes", len(ids), g.N())
	}
	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("sim: duplicate identifier %d", id)
		}
		seen[id] = true
	}
	return &Network{g: g, ids: append([]int(nil), ids...)}, nil
}

// N returns the number of processes.
func (n *Network) N() int { return n.g.N() }

// Graph returns the underlying topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// ID returns the identifier of process u.
func (n *Network) ID(u int) int { return n.ids[u] }

// Degree returns the degree of process u.
func (n *Network) Degree(u int) int { return n.g.Degree(u) }

// Neighbor returns the i-th neighbour of process u (0 ≤ i < Degree(u)), in
// sorted order. Together with Degree it is the allocation-free adjacency
// iteration API; hot loops that stream whole neighbourhoods grab the raw
// arrays with CSR instead.
func (n *Network) Neighbor(u, i int) int { return n.g.Neighbor(u, i) }

// CSR returns the compact adjacency arrays of the topology (see graph.CSR):
// the neighbours of u are targets[offsets[u]:offsets[u+1]]. The arrays are
// read-only and are invalidated by a topology mutation (churn events); the
// engine re-fetches them at every injection boundary.
func (n *Network) CSR() (offsets, targets []int32) { return n.g.CSR() }

// Neighbors returns the neighbour process indices of u, sorted.
//
// Deprecated: Neighbors allocates a fresh slice on every call since the
// topology moved to the CSR layout. Iterate with Degree(u) and
// Neighbor(u, i), or use CSR, instead.
func (n *Network) Neighbors(u int) []int { return n.g.Neighbors(u) }

// View returns the view of process u on configuration c.
func (n *Network) View(c *Configuration, u int) View {
	checkProcessIndex(u, n.N())
	return View{net: n, cfg: c, u: u}
}

// View is the read access a rule has when evaluated at a process: its own
// state and the states of its neighbours, reached through local labels
// (neighbour indices 0..Degree()-1). Anonymous algorithms must only use
// Self, Degree and Neighbor; identified algorithms may additionally use ID
// and NeighborID.
type View struct {
	net *Network
	cfg *Configuration
	u   int
}

// Self returns the state of the process itself.
func (v View) Self() State { return v.cfg.State(v.u) }

// Degree returns the number of neighbours.
func (v View) Degree() int { return v.net.Degree(v.u) }

// Neighbor returns the state of the i-th neighbour (local label i).
func (v View) Neighbor(i int) State {
	return v.cfg.State(v.net.Neighbor(v.u, i))
}

// ID returns the identifier of the process. Only identified algorithms may
// use it.
func (v View) ID() int { return v.net.ID(v.u) }

// NeighborID returns the identifier of the i-th neighbour. Only identified
// algorithms may use it.
func (v View) NeighborID(i int) int {
	return v.net.ID(v.net.Neighbor(v.u, i))
}

// Process returns the simulator-level index of the process. It exists for
// instrumentation (traces, metrics) and must not be used in algorithm logic
// of anonymous algorithms.
func (v View) Process() int { return v.u }

// Network returns the network the view belongs to. It exists for framework
// code (composition, checkers); algorithm rules must not use it to look past
// their closed neighbourhood.
func (v View) Network() *Network { return v.net }

// AnyNeighbor reports whether some neighbour state satisfies pred.
func (v View) AnyNeighbor(pred func(State) bool) bool {
	for i := 0; i < v.Degree(); i++ {
		if pred(v.Neighbor(i)) {
			return true
		}
	}
	return false
}

// AllNeighbors reports whether every neighbour state satisfies pred.
func (v View) AllNeighbors(pred func(State) bool) bool {
	for i := 0; i < v.Degree(); i++ {
		if !pred(v.Neighbor(i)) {
			return false
		}
	}
	return true
}

// CountNeighbors returns the number of neighbour states satisfying pred.
func (v View) CountNeighbors(pred func(State) bool) int {
	count := 0
	for i := 0; i < v.Degree(); i++ {
		if pred(v.Neighbor(i)) {
			count++
		}
	}
	return count
}

// Rule is a guarded action <label>: <guard> -> <action>. The guard reads the
// view; the action returns the new local state of the process. Actions must
// not mutate neighbour states (the model only allows writing one's own
// variables); the Engine enforces this by only installing the returned state.
type Rule struct {
	// Name identifies the rule in traces and move statistics.
	Name string
	// Guard reports whether the rule is enabled at the viewed process.
	Guard func(View) bool
	// Action computes the new state of the viewed process.
	Action func(View) State
}

// Algorithm is a distributed algorithm: one local program (set of rules) per
// process, plus the pre-defined initial state used by non-stabilizing runs.
type Algorithm interface {
	// Name returns a short name used in traces and benchmark tables.
	Name() string
	// Rules returns the rules of the local program. The slice is shared by
	// all processes (the program is uniform); it must not be modified.
	Rules() []Rule
	// InitialState returns the pre-defined initial state of process u
	// (the configuration γ_init of the paper's non-stabilizing algorithms).
	InitialState(u int, net *Network) State
}

// Enumerable is implemented by algorithms whose per-process state space can
// be enumerated, enabling exhaustive verification on small networks.
type Enumerable interface {
	// EnumerateStates returns every possible local state of process u,
	// bounded as documented by the implementation (e.g. distances capped at
	// n so that the space is finite).
	EnumerateStates(u int, net *Network) []State
}

// IndexedEnumerable is optionally implemented alongside Enumerable by
// algorithms that can address their state space by position without
// materializing it. The contract is positional equality with the
// enumeration: StateCount(u, net) == len(EnumerateStates(u, net)) and
// StateAt(u, net, i) equals EnumerateStates(u, net)[i] for every i in
// [0, StateCount). The fault injectors prefer this interface to draw uniform
// states in O(1) picks instead of rebuilding the (often product-shaped)
// space for every draw; positional equality is what keeps seeded
// configurations bit-identical whichever path runs.
type IndexedEnumerable interface {
	Enumerable
	// StateCount returns the size of process u's enumerated state space.
	StateCount(u int, net *Network) int
	// StateAt returns the i-th state of the enumeration order, for
	// 0 ≤ i < StateCount(u, net). The value is freshly allocated: the
	// caller owns it and may install it in a configuration directly.
	StateAt(u int, net *Network, i int) State
}

// InitialConfiguration builds γ_init for the algorithm on the network.
func InitialConfiguration(a Algorithm, net *Network) *Configuration {
	states := make([]State, net.N())
	for u := range states {
		states[u] = a.InitialState(u, net)
	}
	return NewConfiguration(states)
}

// EnabledRules returns the indices of the rules of a enabled at process u in
// configuration c. Callers that ask repeatedly about the same algorithm
// should hold an Evaluator instead.
func EnabledRules(a Algorithm, net *Network, c *Configuration, u int) []int {
	return NewEvaluator(a, net).AppendEnabledRules(nil, c, u)
}

// Enabled reports whether process u has at least one enabled rule. Callers
// that ask repeatedly about the same algorithm should hold an Evaluator
// instead.
func Enabled(a Algorithm, net *Network, c *Configuration, u int) bool {
	return NewEvaluator(a, net).Enabled(c, u)
}

// EnabledSet returns the sorted set of enabled processes in c. Callers that
// ask repeatedly about the same algorithm should hold an Evaluator instead.
func EnabledSet(a Algorithm, net *Network, c *Configuration) []int {
	return NewEvaluator(a, net).AppendEnabled(nil, c)
}

// Terminal reports whether c is a terminal configuration (no process
// enabled). Callers that ask repeatedly about the same algorithm should hold
// an Evaluator instead.
func Terminal(a Algorithm, net *Network, c *Configuration) bool {
	return NewEvaluator(a, net).Terminal(c)
}
