package sim_test

import (
	"math/rand"
	"testing"

	"sdr/internal/alliance"
	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
	"sdr/internal/spantree"
	"sdr/internal/unison"
)

// The sharded engine's exactness contract: under the SynchronousDaemon a run
// with WithShards(k) is bit-identical to the sequential run for every k,
// because the union of the per-shard selections is exactly the global
// enabled set and all accounting merges in ascending shard order. Under
// every other daemon the sharded run is a different (but deterministic)
// adversary — the locally-central sharded family — so the tests there pin
// determinism and schedule legality rather than equality.

// shardWorkloads builds medium-sized instantiations: large enough that the
// requested shard counts survive the 64-alignment cap (7 shards need
// n ≥ 7·64).
func shardWorkloads(seed int64) []diffWorkload {
	rng := rand.New(rand.NewSource(seed))
	var ws []diffWorkload

	// U∘SDR on a torus from a fully corrupted configuration, with
	// legitimacy tracking and early stop.
	{
		g := graph.Torus(8, 60)
		net := sim.NewNetwork(g)
		u := unison.New(unison.DefaultPeriod(g.N()))
		comp := core.Compose(u)
		start := faults.MustRandomConfiguration(comp, net, rng)
		ws = append(ws, diffWorkload{
			name:  "unison∘SDR/torus480",
			net:   net,
			alg:   comp,
			start: start,
			opts: []sim.Option{
				sim.WithMaxSteps(600),
				sim.WithLegitimate(core.NormalPredicate(u, net)),
				sim.WithStopWhenLegitimate(),
			},
		})
	}

	// B∘SDR (BFS spanning tree) on a grid, run to termination (silent).
	{
		g := graph.Grid(20, 25)
		net := sim.NewNetwork(g)
		comp := spantree.NewSelfStabilizing(g, 7)
		start := faults.MustRandomConfiguration(comp, net, rng)
		ws = append(ws, diffWorkload{
			name:  "B∘SDR/grid500",
			net:   net,
			alg:   comp,
			start: start,
			opts:  []sim.Option{sim.WithMaxSteps(5_000)},
		})
	}

	// FGA∘SDR on a random connected graph.
	{
		g := graph.RandomConnected(300, 0.02, rng)
		net := sim.NewNetwork(g)
		comp := alliance.NewSelfStabilizing(alliance.DominatingSet())
		start := faults.MustRandomConfiguration(comp, net, rng)
		ws = append(ws, diffWorkload{
			name:  "FGA∘SDR/random300",
			net:   net,
			alg:   comp,
			start: start,
			opts:  []sim.Option{sim.WithMaxSteps(2_000)},
		})
	}
	return ws
}

// TestShardedSynchronousBitIdentical is the pinned exactness check of the
// acceptance criteria: sharded synchronous runs at shard counts 1, 2 and 7
// reproduce the sequential Result bit for bit, across the paper's
// instantiations.
func TestShardedSynchronousBitIdentical(t *testing.T) {
	for _, w := range shardWorkloads(11) {
		seq := sim.NewEngine(w.net, w.alg, sim.SynchronousDaemon{}).Run(w.start, w.opts...)
		for _, shards := range []int{1, 2, 7} {
			opts := append(append([]sim.Option{}, w.opts...), sim.WithShards(shards))
			sharded, err := sim.NewEngine(w.net, w.alg, sim.SynchronousDaemon{}).RunE(w.start, opts...)
			if err != nil {
				t.Fatalf("%s/shards=%d: %v", w.name, shards, err)
			}
			assertResultsIdentical(t, w.name+"/shards="+string(rune('0'+shards)), sharded, seq)
		}
	}
}

// TestShardedHooksMatchSequentialSynchronous extends the exactness check to
// the step-by-step trace: the sharded loop must hand hooks the same
// activation sets, rule names and round indices as the sequential loop.
func TestShardedHooksMatchSequentialSynchronous(t *testing.T) {
	type step struct {
		step, round int
		activated   []int
		rules       []string
	}
	record := func(dst *[]step) sim.StepHook {
		return func(info sim.StepInfo) {
			*dst = append(*dst, step{
				step:      info.Step,
				round:     info.Round,
				activated: append([]int(nil), info.Activated...),
				rules:     append([]string(nil), info.Rules...),
			})
		}
	}
	g := graph.Torus(8, 20)
	net := sim.NewNetwork(g)
	u := unison.New(unison.DefaultPeriod(g.N()))
	comp := core.Compose(u)
	start := faults.MustRandomConfiguration(comp, net, rand.New(rand.NewSource(23)))

	var seqSteps, shSteps []step
	sim.NewEngine(net, comp, sim.SynchronousDaemon{}).Run(start,
		sim.WithMaxSteps(200), sim.WithStepHook(record(&seqSteps)))
	if _, err := sim.NewEngine(net, comp, sim.SynchronousDaemon{}).RunE(start,
		sim.WithMaxSteps(200), sim.WithStepHook(record(&shSteps)), sim.WithShards(3)); err != nil {
		t.Fatal(err)
	}
	if len(seqSteps) != len(shSteps) {
		t.Fatalf("%d sequential steps vs %d sharded steps", len(seqSteps), len(shSteps))
	}
	for i := range seqSteps {
		a, b := shSteps[i], seqSteps[i]
		if a.step != b.step || a.round != b.round {
			t.Fatalf("step %d: step/round %d/%d vs %d/%d", i, a.step, a.round, b.step, b.round)
		}
		if len(a.activated) != len(b.activated) {
			t.Fatalf("step %d: %d activated vs %d", i, len(a.activated), len(b.activated))
		}
		for j := range a.activated {
			if a.activated[j] != b.activated[j] || a.rules[j] != b.rules[j] {
				t.Fatalf("step %d: (%d,%q) vs (%d,%q)",
					i, a.activated[j], a.rules[j], b.activated[j], b.rules[j])
			}
		}
	}
}

// TestShardedLocallyCentralFamilyDeterministic pins the documented semantics
// of non-synchronous daemons under sharding: for a fixed daemon seed and
// shard count the run is deterministic (two executions are bit-identical),
// and every step activates at least one process per non-empty shard — the
// union of per-shard selections is a legal unfair-daemon schedule.
func TestShardedLocallyCentralFamilyDeterministic(t *testing.T) {
	g := graph.Ring(200)
	net := sim.NewNetwork(g)
	u := unison.New(unison.DefaultPeriod(g.N()))
	comp := core.Compose(u)
	start := faults.MustRandomConfiguration(comp, net, rand.New(rand.NewSource(31)))

	for _, df := range sim.StandardDaemonFactories() {
		runOnce := func() sim.Result {
			res, err := sim.NewEngine(net, comp, df.New(5)).RunE(start,
				sim.WithMaxSteps(300), sim.WithShards(3))
			if err != nil {
				t.Fatalf("%s: %v", df.Name, err)
			}
			return res
		}
		first := runOnce()
		second := runOnce()
		assertResultsIdentical(t, "locally-central-family/"+df.Name, first, second)
		if first.Steps == 0 {
			t.Fatalf("%s: sharded run executed no steps", df.Name)
		}
	}
}

// TestShardedInjectorCrossShardChurn drives a mid-run topology-churn event
// whose dropped and added edges cross a shard boundary (with 128 processes
// and 2 shards the boundary sits between 63 and 64), plus state corruption
// on both sides of it. The sharded synchronous run must match the sequential
// one bit for bit, per-event recovery records included: the injection
// boundary re-fetches the CSR arrays and re-seeds the enabled set, so churn
// is exact under sharding too.
func TestShardedInjectorCrossShardChurn(t *testing.T) {
	makeInjector := func() sim.Injector {
		return &scriptedInjector{
			at: 10,
			build: func(sim.InjectionPoint) *sim.Injection {
				injn := &sim.Injection{
					Label:     "cross-shard-churn",
					DropEdges: [][2]int{{63, 64}},
					AddEdges:  [][2]int{{60, 70}},
				}
				for _, proc := range []int{63, 64} {
					injn.SetStates = append(injn.SetStates, sim.StateChange{
						Process: proc,
						State:   core.ComposedState{SDR: core.SDRState{St: core.StatusRB, D: 0}, Inner: unison.ClockState{C: 1}},
					})
				}
				return injn
			},
		}
	}

	start := faults.MustRandomConfiguration(
		core.Compose(unison.New(unison.DefaultPeriod(128))),
		sim.NewNetwork(graph.Ring(128)),
		rand.New(rand.NewSource(41)))

	// The injector mutates the live graph, so each run needs a fresh
	// topology (and network) of its own.
	runWith := func(shards int) sim.Result {
		g := graph.Ring(128)
		net := sim.NewNetwork(g)
		u := unison.New(unison.DefaultPeriod(g.N()))
		comp := core.Compose(u)
		o := []sim.Option{
			sim.WithMaxSteps(50_000),
			sim.WithLegitimate(core.NormalPredicate(u, net)),
			sim.WithStopWhenLegitimate(),
			sim.WithInjector(makeInjector()),
			sim.WithShards(shards),
		}
		res, err := sim.NewEngine(net, comp, sim.SynchronousDaemon{}).RunE(start, o...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	seq := runWith(1)
	sharded := runWith(2)
	assertResultsIdentical(t, "cross-shard-churn", sharded, seq)
	if len(seq.Events) != 1 || len(sharded.Events) != 1 {
		t.Fatalf("expected exactly one event: sequential %d, sharded %d", len(seq.Events), len(sharded.Events))
	}
	a, b := sharded.Events[0], seq.Events[0]
	if a != b {
		t.Fatalf("event records diverged:\n  sharded    %+v\n  sequential %+v", a, b)
	}
	if !a.Recovered {
		t.Fatal("the run never recovered from the cross-shard churn event")
	}
}

// TestShardOptionValidation pins the documented invalid combinations: a
// negative shard count, sharding with the random rule-choice policy, and
// sharding with memoization are all reported as errors by RunE (and panics
// by Run), never silently degraded.
func TestShardOptionValidation(t *testing.T) {
	g := graph.Ring(8)
	net := sim.NewNetwork(g)
	u := unison.New(unison.DefaultPeriod(g.N()))
	comp := core.Compose(u)
	start := sim.InitialConfiguration(comp, net)
	eng := sim.NewEngine(net, comp, sim.SynchronousDaemon{})

	cases := []struct {
		name string
		opts []sim.Option
	}{
		{"negative-shards", []sim.Option{sim.WithShards(-1)}},
		{"shards+random-rule-choice", []sim.Option{
			sim.WithShards(2),
			sim.WithRuleChoice(sim.RandomEnabledRule, rand.New(rand.NewSource(1))),
		}},
		{"shards+memo", []sim.Option{
			sim.WithShards(2),
			sim.WithMemo(sim.NewMemoShare(1 << 16)),
		}},
		{"negative-max-steps", []sim.Option{sim.WithMaxSteps(-1)}},
	}
	for _, tc := range cases {
		if _, err := eng.RunE(start, tc.opts...); err == nil {
			t.Errorf("%s: RunE accepted an invalid option combination", tc.name)
		}
	}

	// A huge shard count is not an error: it is capped at ⌈n/64⌉ (here 1)
	// and the run proceeds sequentially.
	res, err := eng.RunE(start, sim.WithShards(1000), sim.WithMaxSteps(100))
	if err != nil {
		t.Fatalf("WithShards(1000) on a small graph: %v", err)
	}
	if res.Steps == 0 {
		t.Fatal("capped sharded run executed no steps")
	}
}
