package sim_test

import (
	"math/rand"
	"testing"

	"sdr/internal/alliance"
	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
	"sdr/internal/spantree"
	"sdr/internal/unison"
)

// The differential tests assert that the incremental engine (Run) produces
// bit-identical Results to the retained reference engine (RunReference) for
// fixed seeds, across every standard daemon and the paper's instantiations:
// the SDR rules through U∘SDR, FGA∘SDR and B∘SDR, plus standalone FGA and
// the BPV baseline. Both engines consume daemon randomness through the same
// sorted enabled sets, so any divergence in enabled-set maintenance, round
// accounting or rule choice shows up as a Result mismatch.

// assertResultsIdentical compares every field of the two Results (and the
// final configurations by value).
func assertResultsIdentical(t *testing.T, label string, inc, ref sim.Result) {
	t.Helper()
	if inc.Steps != ref.Steps || inc.Moves != ref.Moves || inc.Rounds != ref.Rounds {
		t.Fatalf("%s: steps/moves/rounds = %d/%d/%d, reference %d/%d/%d",
			label, inc.Steps, inc.Moves, inc.Rounds, ref.Steps, ref.Moves, ref.Rounds)
	}
	if inc.Terminated != ref.Terminated || inc.HitStepLimit != ref.HitStepLimit {
		t.Fatalf("%s: terminated/hitLimit = %v/%v, reference %v/%v",
			label, inc.Terminated, inc.HitStepLimit, ref.Terminated, ref.HitStepLimit)
	}
	if inc.LegitimateReached != ref.LegitimateReached ||
		inc.StabilizationMoves != ref.StabilizationMoves ||
		inc.StabilizationRounds != ref.StabilizationRounds ||
		inc.StabilizationSteps != ref.StabilizationSteps ||
		inc.StabilizationMovesPerProcessMax != ref.StabilizationMovesPerProcessMax {
		t.Fatalf("%s: stabilization accounting diverged: %+v vs %+v", label, inc, ref)
	}
	if inc.MaxMovesPerProcess != ref.MaxMovesPerProcess {
		t.Fatalf("%s: MaxMovesPerProcess %d != %d", label, inc.MaxMovesPerProcess, ref.MaxMovesPerProcess)
	}
	for u := range inc.MovesPerProcess {
		if inc.MovesPerProcess[u] != ref.MovesPerProcess[u] {
			t.Fatalf("%s: MovesPerProcess[%d] = %d, reference %d",
				label, u, inc.MovesPerProcess[u], ref.MovesPerProcess[u])
		}
	}
	if len(inc.MovesPerRule) != len(ref.MovesPerRule) {
		t.Fatalf("%s: MovesPerRule %v != %v", label, inc.MovesPerRule, ref.MovesPerRule)
	}
	for rule, m := range ref.MovesPerRule {
		if inc.MovesPerRule[rule] != m {
			t.Fatalf("%s: MovesPerRule[%q] = %d, reference %d", label, rule, inc.MovesPerRule[rule], m)
		}
	}
	if !inc.Final.Equal(ref.Final) {
		t.Fatalf("%s: final configurations differ:\n  incremental %s\n  reference   %s",
			label, inc.Final, ref.Final)
	}
}

// diffWorkload is one (algorithm, start, options) point of the parity sweep.
type diffWorkload struct {
	name  string
	net   *sim.Network
	alg   sim.Algorithm
	start *sim.Configuration
	opts  []sim.Option
}

// diffWorkloads builds the instantiation sweep for one seed. Step bounds are
// small enough to keep the sweep fast but large enough that most runs
// terminate (both outcomes are compared either way).
func diffWorkloads(seed int64) []diffWorkload {
	rng := rand.New(rand.NewSource(seed))
	var ws []diffWorkload

	// U∘SDR from a fully corrupted configuration, with legitimacy tracking.
	{
		g := graph.RandomConnected(10, 0.3, rng)
		net := sim.NewNetwork(g)
		u := unison.New(unison.DefaultPeriod(g.N()))
		comp := core.Compose(u)
		start := faults.MustRandomConfiguration(comp, net, rng)
		ws = append(ws, diffWorkload{
			name:  "unison∘SDR",
			net:   net,
			alg:   comp,
			start: start,
			opts: []sim.Option{
				sim.WithMaxSteps(20_000),
				sim.WithLegitimate(core.NormalPredicate(u, net)),
				sim.WithStopWhenLegitimate(),
			},
		})
	}

	// FGA∘SDR from a corrupted configuration, run to termination.
	{
		g := graph.RandomConnected(9, 0.5, rng)
		net := sim.NewNetwork(g)
		comp := alliance.NewSelfStabilizing(alliance.DominatingSet())
		start := faults.MustRandomConfiguration(comp, net, rng)
		ws = append(ws, diffWorkload{
			name:  "FGA∘SDR",
			net:   net,
			alg:   comp,
			start: start,
			opts:  []sim.Option{sim.WithMaxSteps(50_000)},
		})
	}

	// B∘SDR (BFS spanning tree) from a corrupted configuration.
	{
		g := graph.Grid(3, 3)
		net := sim.NewNetwork(g)
		comp := spantree.NewSelfStabilizing(g, int(seed)%g.N())
		start := faults.MustRandomConfiguration(comp, net, rng)
		ws = append(ws, diffWorkload{
			name:  "B∘SDR",
			net:   net,
			alg:   comp,
			start: start,
			opts:  []sim.Option{sim.WithMaxSteps(50_000)},
		})
	}

	// Standalone FGA from its pre-defined initial configuration.
	{
		g := graph.RandomConnected(8, 0.5, rng)
		net := sim.NewNetwork(g)
		alg := core.NewStandalone(alliance.NewFGA(alliance.GlobalDefensiveAlliance()))
		ws = append(ws, diffWorkload{
			name:  "FGA-standalone",
			net:   net,
			alg:   alg,
			start: sim.InitialConfiguration(alg, net),
			opts:  []sim.Option{sim.WithMaxSteps(50_000)},
		})
	}

	// The BPV baseline (non-terminating) under a step bound, with
	// legitimacy tracking but no early stop, so the bounded-suffix and
	// step-limit paths are compared too.
	{
		g := graph.Ring(8)
		net := sim.NewNetwork(g)
		bpv := unison.NewBPVFor(g)
		start := faults.MustRandomConfiguration(bpv, net, rng)
		ws = append(ws, diffWorkload{
			name:  "BPV",
			net:   net,
			alg:   bpv,
			start: start,
			opts: []sim.Option{
				sim.WithMaxSteps(300),
				sim.WithLegitimate(bpv.LegitimatePredicate(g)),
			},
		})
	}
	return ws
}

// TestEngineMatchesReference is the golden parity sweep: every standard
// daemon × every instantiation × several fixed seeds.
func TestEngineMatchesReference(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, df := range sim.StandardDaemonFactories() {
			for _, w := range diffWorkloads(seed) {
				// Fresh daemons from the same factory seed: daemons are
				// stateful, so each engine needs its own instance.
				inc := sim.NewEngine(w.net, w.alg, df.New(seed)).Run(w.start, w.opts...)
				ref := sim.NewEngine(w.net, w.alg, df.New(seed)).RunReference(w.start, w.opts...)
				assertResultsIdentical(t, w.name+"/"+df.Name, inc, ref)
			}
		}
	}
}

// TestEngineMatchesReferenceRandomRuleChoice covers the RandomEnabledRule
// policy: both engines must consume the rule-choice rng identically.
func TestEngineMatchesReferenceRandomRuleChoice(t *testing.T) {
	g := graph.RandomConnected(9, 0.35, rand.New(rand.NewSource(7)))
	net := sim.NewNetwork(g)
	u := unison.New(unison.DefaultPeriod(g.N()))
	comp := core.Compose(u)
	start := faults.MustRandomConfiguration(comp, net, rand.New(rand.NewSource(8)))
	for _, df := range sim.StandardDaemonFactories() {
		optsFor := func(seed int64) []sim.Option {
			return []sim.Option{
				sim.WithMaxSteps(5_000),
				sim.WithRuleChoice(sim.RandomEnabledRule, rand.New(rand.NewSource(seed))),
			}
		}
		inc := sim.NewEngine(net, comp, df.New(9)).Run(start, optsFor(21)...)
		ref := sim.NewEngine(net, comp, df.New(9)).RunReference(start, optsFor(21)...)
		assertResultsIdentical(t, "random-rule-choice/"+df.Name, inc, ref)
	}
}

// TestEngineHooksMatchReference compares the step-by-step trace the hooks
// observe (activated processes, rule names, rounds), not just the end-of-run
// summary.
func TestEngineHooksMatchReference(t *testing.T) {
	type step struct {
		step, round int
		activated   []int
		rules       []string
	}
	record := func(dst *[]step) sim.StepHook {
		return func(info sim.StepInfo) {
			*dst = append(*dst, step{
				step:      info.Step,
				round:     info.Round,
				activated: append([]int(nil), info.Activated...),
				rules:     append([]string(nil), info.Rules...),
			})
		}
	}
	g := graph.RandomConnected(8, 0.4, rand.New(rand.NewSource(17)))
	net := sim.NewNetwork(g)
	comp := alliance.NewSelfStabilizing(alliance.DominatingSet())
	start := faults.MustRandomConfiguration(comp, net, rand.New(rand.NewSource(18)))
	for _, df := range sim.StandardDaemonFactories() {
		var incSteps, refSteps []step
		sim.NewEngine(net, comp, df.New(4)).Run(start,
			sim.WithMaxSteps(20_000), sim.WithStepHook(record(&incSteps)))
		sim.NewEngine(net, comp, df.New(4)).RunReference(start,
			sim.WithMaxSteps(20_000), sim.WithStepHook(record(&refSteps)))
		if len(incSteps) != len(refSteps) {
			t.Fatalf("%s: %d steps vs %d reference steps", df.Name, len(incSteps), len(refSteps))
		}
		for i := range incSteps {
			a, b := incSteps[i], refSteps[i]
			if a.step != b.step || a.round != b.round {
				t.Fatalf("%s step %d: step/round %d/%d vs %d/%d", df.Name, i, a.step, a.round, b.step, b.round)
			}
			if len(a.activated) != len(b.activated) {
				t.Fatalf("%s step %d: activated %v vs %v", df.Name, i, a.activated, b.activated)
			}
			for j := range a.activated {
				if a.activated[j] != b.activated[j] || a.rules[j] != b.rules[j] {
					t.Fatalf("%s step %d: (%d,%q) vs (%d,%q)",
						df.Name, i, a.activated[j], a.rules[j], b.activated[j], b.rules[j])
				}
			}
		}
	}
}
