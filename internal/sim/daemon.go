package sim

import (
	"fmt"
	"math/rand"
	"slices"
)

// Daemon is the scheduling adversary of the model. Given the set of enabled
// processes of the current configuration, it selects the non-empty subset
// that is activated in the next step. The distributed unfair daemon of the
// paper is the set of all such selections; concrete daemons here are
// particular strategies (samples) of that adversary.
type Daemon interface {
	// Name identifies the daemon in benchmark tables.
	Name() string
	// Select returns a non-empty subset of sel.Enabled.
	Select(sel Selection) []int
}

// Selection is the information offered to a daemon when it picks a step.
// Config and Enabled are the engine's reusable working buffers: daemons must
// not retain or modify them beyond the Select call (clone if needed).
type Selection struct {
	// Net is the network the algorithm runs on.
	Net *Network
	// Alg is the algorithm being scheduled.
	Alg Algorithm
	// Config is the current configuration.
	Config *Configuration
	// Enabled is the sorted non-empty set of enabled processes.
	Enabled []int
	// Step is the index of the step about to be taken (0-based).
	Step int
}

// SynchronousDaemon activates every enabled process in every step.
type SynchronousDaemon struct{}

var _ Daemon = SynchronousDaemon{}

// Name implements Daemon.
func (SynchronousDaemon) Name() string { return "synchronous" }

// Select implements Daemon.
func (SynchronousDaemon) Select(sel Selection) []int { return sel.Enabled }

// CentralRandomDaemon activates exactly one enabled process chosen uniformly
// at random. It models the central (sequential) daemon.
type CentralRandomDaemon struct {
	rng *rand.Rand
}

var _ Daemon = (*CentralRandomDaemon)(nil)

// NewCentralRandomDaemon returns a central daemon seeded by rng.
func NewCentralRandomDaemon(rng *rand.Rand) *CentralRandomDaemon {
	return &CentralRandomDaemon{rng: rng}
}

// Name implements Daemon.
func (*CentralRandomDaemon) Name() string { return "central-random" }

// Select implements Daemon.
func (d *CentralRandomDaemon) Select(sel Selection) []int {
	return []int{sel.Enabled[d.rng.Intn(len(sel.Enabled))]}
}

// DistributedRandomDaemon activates each enabled process independently with
// probability P, re-drawing until the selection is non-empty. It samples the
// distributed unfair daemon uniformly-ish.
type DistributedRandomDaemon struct {
	rng *rand.Rand
	p   float64
}

var _ Daemon = (*DistributedRandomDaemon)(nil)

// NewDistributedRandomDaemon returns a distributed random daemon that
// activates each enabled process with probability p (clamped to (0,1]).
func NewDistributedRandomDaemon(rng *rand.Rand, p float64) *DistributedRandomDaemon {
	if p <= 0 || p > 1 {
		p = 0.5
	}
	return &DistributedRandomDaemon{rng: rng, p: p}
}

// Name implements Daemon.
func (*DistributedRandomDaemon) Name() string { return "distributed-random" }

// Select implements Daemon.
func (d *DistributedRandomDaemon) Select(sel Selection) []int {
	for {
		var out []int
		for _, u := range sel.Enabled {
			if d.rng.Float64() < d.p {
				out = append(out, u)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
}

// LocallyCentralDaemon activates a random maximal independent subset of the
// enabled processes: no two activated processes are neighbours. Some prior
// alliance algorithms require this daemon; the paper's algorithms do not,
// but it is useful for ablation A2.
type LocallyCentralDaemon struct {
	rng *rand.Rand
}

var _ Daemon = (*LocallyCentralDaemon)(nil)

// NewLocallyCentralDaemon returns a locally central daemon seeded by rng.
func NewLocallyCentralDaemon(rng *rand.Rand) *LocallyCentralDaemon {
	return &LocallyCentralDaemon{rng: rng}
}

// Name implements Daemon.
func (*LocallyCentralDaemon) Name() string { return "locally-central" }

// Select implements Daemon.
func (d *LocallyCentralDaemon) Select(sel Selection) []int {
	perm := d.rng.Perm(len(sel.Enabled))
	taken := make(map[int]bool)
	var out []int
	for _, i := range perm {
		u := sel.Enabled[i]
		conflict := false
		for j, deg := 0, sel.Net.Degree(u); j < deg; j++ {
			if taken[sel.Net.Neighbor(u, j)] {
				conflict = true
				break
			}
		}
		if !conflict {
			taken[u] = true
			out = append(out, u)
		}
	}
	if len(out) == 0 {
		// Cannot happen (the first process never conflicts), but keep the
		// contract explicit.
		out = []int{sel.Enabled[0]}
	}
	return out
}

// RoundRobinDaemon activates one process per step, cycling through process
// indices. It is weakly fair: an continuously enabled process is eventually
// activated.
type RoundRobinDaemon struct {
	next int
}

var _ Daemon = (*RoundRobinDaemon)(nil)

// NewRoundRobinDaemon returns a weakly fair round-robin daemon.
func NewRoundRobinDaemon() *RoundRobinDaemon { return &RoundRobinDaemon{} }

// Name implements Daemon.
func (*RoundRobinDaemon) Name() string { return "round-robin" }

// Select implements Daemon. Enabled is sorted, so the first enabled process
// at or after the cursor is found by binary search (wrapping to the smallest
// enabled process when none remains above the cursor).
func (d *RoundRobinDaemon) Select(sel Selection) []int {
	i, _ := slices.BinarySearch(sel.Enabled, d.next)
	if i == len(sel.Enabled) {
		i = 0
	}
	u := sel.Enabled[i]
	d.next = (u + 1) % sel.Net.N()
	return []int{u}
}

// GreedyAdversarialDaemon activates the single enabled process whose
// activation leaves the largest number of processes enabled afterwards
// (one-step lookahead). Since it activates exactly one process per step it
// is a legal unfair-daemon schedule that tends to maximise the number of
// moves; it is used to probe worst-case move complexity.
type GreedyAdversarialDaemon struct {
	rng     *rand.Rand
	scratch []State
	best    []int
	ev      *Evaluator
}

var _ Daemon = (*GreedyAdversarialDaemon)(nil)

// NewGreedyAdversarialDaemon returns the adversarial daemon; rng breaks ties.
func NewGreedyAdversarialDaemon(rng *rand.Rand) *GreedyAdversarialDaemon {
	return &GreedyAdversarialDaemon{rng: rng}
}

// Name implements Daemon.
func (*GreedyAdversarialDaemon) Name() string { return "greedy-adversarial" }

// Select implements Daemon. The lookahead is neighbourhood-scoped: moving u
// changes only u's state, and guards read closed neighbourhoods only, so the
// enabled count after the move differs from |Enabled| exactly by the
// enabledness changes at u and its neighbours — O(Δ·|rules|) per candidate
// instead of rescanning all n processes.
func (d *GreedyAdversarialDaemon) Select(sel Selection) []int {
	n := sel.Net.N()
	if cap(d.scratch) < n {
		d.scratch = make([]State, n)
	}
	if d.ev == nil || d.ev.Algorithm() != sel.Alg || d.ev.Network() != sel.Net {
		d.ev = NewEvaluator(sel.Alg, sel.Net)
	}
	states := d.scratch[:n]
	for u := 0; u < n; u++ {
		states[u] = sel.Config.State(u)
	}
	patched := &Configuration{states: states}
	base := len(sel.Enabled)
	bestScore := -1
	best := d.best[:0]
	for _, u := range sel.Enabled {
		v := sel.Net.View(sel.Config, u)
		moved := false
		for _, r := range d.ev.Rules() {
			if r.Guard(v) {
				states[u] = r.Action(v)
				moved = true
				break
			}
		}
		score := base
		if moved {
			// u was enabled before the move by construction.
			if !d.ev.Enabled(patched, u) {
				score--
			}
			for i, deg := 0, sel.Net.Degree(u); i < deg; i++ {
				w := sel.Net.Neighbor(u, i)
				_, before := slices.BinarySearch(sel.Enabled, w)
				after := d.ev.Enabled(patched, w)
				if after && !before {
					score++
				} else if !after && before {
					score--
				}
			}
			states[u] = sel.Config.State(u)
		}
		if score > bestScore {
			bestScore = score
			best = best[:0]
			best = append(best, u)
		} else if score == bestScore {
			best = append(best, u)
		}
	}
	d.best = best
	return []int{best[d.rng.Intn(len(best))]}
}

// applySingleMove returns the configuration obtained by letting only u move
// (executing its first enabled rule) from c. It is the naive lookahead the
// greedy daemon's neighbourhood-scoped Select replaced; the differential
// test in daemon_greedy_test.go uses it as the reference.
func applySingleMove(a Algorithm, net *Network, c *Configuration, u int) *Configuration {
	v := net.View(c, u)
	next := NewConfiguration(copyStates(c))
	for _, r := range a.Rules() {
		if r.Guard(v) {
			next.SetState(u, r.Action(v))
			return next
		}
	}
	return next
}

func copyStates(c *Configuration) []State {
	states := make([]State, c.N())
	for i := 0; i < c.N(); i++ {
		states[i] = c.State(i)
	}
	return states
}

// StarvingDaemon activates one enabled process per step, always preferring
// processes other than the designated victim; the victim is only activated
// when it is the sole enabled process. It exercises the unfairness the
// distributed unfair daemon permits.
type StarvingDaemon struct {
	victim int
	rng    *rand.Rand
}

var _ Daemon = (*StarvingDaemon)(nil)

// NewStarvingDaemon returns a daemon that starves process victim.
func NewStarvingDaemon(victim int, rng *rand.Rand) *StarvingDaemon {
	return &StarvingDaemon{victim: victim, rng: rng}
}

// Name implements Daemon.
func (d *StarvingDaemon) Name() string { return fmt.Sprintf("starving(%d)", d.victim) }

// Select implements Daemon.
func (d *StarvingDaemon) Select(sel Selection) []int {
	var candidates []int
	for _, u := range sel.Enabled {
		if u != d.victim {
			candidates = append(candidates, u)
		}
	}
	if len(candidates) == 0 {
		return []int{d.victim}
	}
	return []int{candidates[d.rng.Intn(len(candidates))]}
}

// DaemonFactory builds a fresh daemon from a seed; benchmark sweeps use it to
// get independent daemons per trial while remaining reproducible.
type DaemonFactory struct {
	// Name of the daemons produced by this factory.
	Name string
	// New builds a daemon from the given seed.
	New func(seed int64) Daemon
}

// StandardDaemonFactories returns the factories of the daemons used across
// the experiment suite.
func StandardDaemonFactories() []DaemonFactory {
	return []DaemonFactory{
		{Name: "synchronous", New: func(int64) Daemon { return SynchronousDaemon{} }},
		{Name: "central-random", New: func(seed int64) Daemon {
			return NewCentralRandomDaemon(rand.New(rand.NewSource(seed)))
		}},
		{Name: "distributed-random", New: func(seed int64) Daemon {
			return NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)
		}},
		{Name: "locally-central", New: func(seed int64) Daemon {
			return NewLocallyCentralDaemon(rand.New(rand.NewSource(seed)))
		}},
		{Name: "round-robin", New: func(int64) Daemon { return NewRoundRobinDaemon() }},
		{Name: "greedy-adversarial", New: func(seed int64) Daemon {
			return NewGreedyAdversarialDaemon(rand.New(rand.NewSource(seed)))
		}},
	}
}
