package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"sdr/internal/graph"
)

// evaluatorTestSetup builds the max-propagation test algorithm on a ring in
// a random configuration, so that enabledness varies across processes.
func evaluatorTestSetup(t *testing.T) (*Network, Algorithm, *Configuration) {
	t.Helper()
	net := NewNetwork(graph.Ring(6))
	alg := maxPropagation{}
	states := make([]State, net.N())
	rng := rand.New(rand.NewSource(7))
	for u := range states {
		states[u] = intState{v: rng.Intn(4)}
	}
	return net, alg, NewConfiguration(states)
}

// TestEvaluatorMatchesHelpers is the shared-guard-path contract: the
// Evaluator answers exactly what the package-level helpers answer, and the
// helpers are now defined through it.
func TestEvaluatorMatchesHelpers(t *testing.T) {
	net, alg, c := evaluatorTestSetup(t)
	ev := NewEvaluator(alg, net)
	for u := 0; u < net.N(); u++ {
		if got, want := ev.Enabled(c, u), Enabled(alg, net, c, u); got != want {
			t.Errorf("Enabled(%d) = %v, helper says %v", u, got, want)
		}
		got := ev.AppendEnabledRules(nil, c, u)
		want := EnabledRules(alg, net, c, u)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("EnabledRules(%d) = %v, helper says %v", u, got, want)
		}
	}
	if got, want := ev.AppendEnabled(nil, c), EnabledSet(alg, net, c); !reflect.DeepEqual(got, want) {
		t.Errorf("AppendEnabled = %v, helper says %v", got, want)
	}
	if got, want := ev.Terminal(c), Terminal(alg, net, c); got != want {
		t.Errorf("Terminal = %v, helper says %v", got, want)
	}
}

func TestEvaluatorReusesBuffers(t *testing.T) {
	net, alg, c := evaluatorTestSetup(t)
	ev := NewEvaluator(alg, net)
	buf := make([]int, 0, net.N())
	out := ev.AppendEnabled(buf, c)
	if len(out) > 0 && &out[0] != &buf[:1][0] {
		t.Error("AppendEnabled reallocated despite sufficient capacity")
	}
}

// TestKeyInternerEquivalence pins the interner to the deprecated
// Configuration.Key: within one interner, two configurations get equal keys
// exactly when their Key() strings are equal.
func TestKeyInternerEquivalence(t *testing.T) {
	net, alg, _ := evaluatorTestSetup(t)
	_ = alg
	rng := rand.New(rand.NewSource(3))
	var configs []*Configuration
	for i := 0; i < 64; i++ {
		states := make([]State, net.N())
		for u := range states {
			states[u] = intState{v: rng.Intn(3)}
		}
		configs = append(configs, NewConfiguration(states))
	}
	ki := NewKeyInterner()
	interned := make([]string, len(configs))
	for i, c := range configs {
		interned[i] = ki.Key(c)
	}
	for i, a := range configs {
		for j, b := range configs {
			keyEqual := a.Key() == b.Key()
			internEqual := interned[i] == interned[j]
			if keyEqual != internEqual {
				t.Fatalf("configs %d and %d: Key equality %v but interned equality %v", i, j, keyEqual, internEqual)
			}
		}
	}
	if ki.States() == 0 || ki.States() > 3 {
		t.Errorf("interner tracked %d distinct local states, want 1..3", ki.States())
	}
	// Interned keys must be stable: re-keying returns the same bytes.
	for i, c := range configs {
		if ki.Key(c) != interned[i] {
			t.Fatalf("re-keying config %d changed the key", i)
		}
	}
}
