package sim_test

import (
	"reflect"
	"testing"

	"sdr/internal/obs"
	"sdr/internal/scenario"
	"sdr/internal/sim"
)

func profiledRun(t *testing.T, extra ...sim.Option) (sim.Result, sim.Result, *obs.PhaseProfiler) {
	t.Helper()
	spec := scenario.Spec{
		Algorithm: "unison",
		Topology:  "ring",
		N:         64,
		Daemon:    "synchronous",
		Fault:     "random-all",
		Seed:      7,
		MaxSteps:  200,
	}
	run, err := spec.Resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	plain := run.Execute(extra...)
	prof := obs.NewPhaseProfiler(2)
	profiled := run.Execute(append(append([]sim.Option{}, extra...), sim.WithProfiler(prof))...)
	return plain, profiled, prof
}

// TestProfilerBitIdentical pins the tentpole's safety property: attaching a
// profiler must not change a single bit of the run's Result, sequential or
// sharded.
func TestProfilerBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name  string
		extra []sim.Option
	}{
		{"sequential", nil},
		{"sharded", []sim.Option{sim.WithShards(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain, profiled, _ := profiledRun(t, tc.extra...)
			if !reflect.DeepEqual(plain, profiled) {
				t.Errorf("profiled result differs from unprofiled one:\nplain:    %+v\nprofiled: %+v", plain, profiled)
			}
		})
	}
}

func TestProfilerSequentialPhases(t *testing.T) {
	_, res, prof := profiledRun(t)
	ep := prof.Profile()
	if ep.Steps != res.Steps {
		t.Fatalf("profiler saw %d steps, engine ran %d", ep.Steps, res.Steps)
	}
	// Steps 0,2,4,… are sampled.
	if want := (res.Steps + 1) / 2; ep.SampledSteps != want {
		t.Fatalf("sampled %d steps, want %d of %d", ep.SampledSteps, want, res.Steps)
	}
	wantPhases := []string{obs.PhaseSelect, obs.PhaseExecute, obs.PhaseGuard, obs.PhaseAccount}
	if len(ep.Phases) != len(wantPhases) {
		t.Fatalf("phases = %+v, want %v", ep.Phases, wantPhases)
	}
	for i, ph := range ep.Phases {
		if ph.Phase != wantPhases[i] {
			t.Errorf("phase %d = %q, want %q", i, ph.Phase, wantPhases[i])
		}
		if ph.Count != ep.SampledSteps {
			t.Errorf("phase %q count = %d, want one per sampled step (%d)", ph.Phase, ph.Count, ep.SampledSteps)
		}
	}
	if len(ep.Shards) != 0 {
		t.Errorf("sequential run reported shard breakdowns: %+v", ep.Shards)
	}
	// The four phases bracket the whole loop body, so their sum cannot
	// exceed the measured step wall time.
	if ep.PhaseTotal() > ep.StepWall {
		t.Errorf("phase total %v exceeds step wall %v", ep.PhaseTotal(), ep.StepWall)
	}
	if ep.StepWall <= 0 {
		t.Error("no step wall time recorded")
	}
}

func TestProfilerShardedPhases(t *testing.T) {
	_, _, prof := profiledRun(t, sim.WithShards(4))
	ep := prof.Profile()
	wantPhases := []string{obs.PhaseSelect, obs.PhaseExecute, obs.PhaseMerge, obs.PhaseBoundary, obs.PhaseAccount}
	if len(ep.Phases) != len(wantPhases) {
		t.Fatalf("phases = %+v, want %v", ep.Phases, wantPhases)
	}
	for i, ph := range ep.Phases {
		if ph.Phase != wantPhases[i] {
			t.Errorf("phase %d = %q, want %q", i, ph.Phase, wantPhases[i])
		}
	}
	// n=64 yields a single 64-aligned word, so the effective shard count is
	// clamped — re-run at a size that actually shards.
	spec := scenario.Spec{
		Algorithm: "unison",
		Topology:  "ring",
		N:         256,
		Daemon:    "synchronous",
		Fault:     "random-all",
		Seed:      7,
		MaxSteps:  50,
		Shards:    4,
	}
	run, err := spec.Resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	prof = obs.NewPhaseProfiler(1)
	run.Execute(sim.WithProfiler(prof))
	ep = prof.Profile()
	if len(ep.Shards) != 4 {
		t.Fatalf("shard breakdowns = %d, want 4", len(ep.Shards))
	}
	for _, sb := range ep.Shards {
		phases := map[string]bool{}
		for _, ph := range sb.Phases {
			phases[ph.Phase] = true
			if ph.Total < 0 {
				t.Errorf("shard %d phase %q has negative total", sb.Shard, ph.Phase)
			}
		}
		if !phases[obs.PhaseExecute] || !phases[obs.PhaseBoundary] {
			t.Errorf("shard %d missing execute/boundary breakdown: %+v", sb.Shard, sb.Phases)
		}
	}
}
