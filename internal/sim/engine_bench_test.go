package sim

import (
	"math/rand"
	"testing"

	"sdr/internal/graph"
)

// The engine micro-benchmarks measure the cost of the stepping hot loop
// itself, independent of any concrete paper algorithm: ticker keeps every
// process permanently enabled (steady-state stepping, bounded by
// WithMaxSteps), and maxPropagation exercises a shrinking enabled set until
// termination. Each benchmark reports allocations so regressions of the
// allocation-free loop are caught by inspection.

func benchmarkEngineRun(b *testing.B, run func(e *Engine, start *Configuration, opts ...Option) Result, alg Algorithm, g *graph.Graph, newDaemon func() Daemon, opts ...Option) {
	b.Helper()
	net := NewNetwork(g)
	start := InitialConfiguration(alg, net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(net, alg, newDaemon())
		res := run(eng, start, opts...)
		if res.Steps == 0 {
			b.Fatal("benchmark run took no steps")
		}
	}
}

func runIncremental(e *Engine, start *Configuration, opts ...Option) Result {
	return e.Run(start, opts...)
}

func runReference(e *Engine, start *Configuration, opts ...Option) Result {
	return e.RunReference(start, opts...)
}

// BenchmarkEngineStepsSynchronous measures steady-state stepping with every
// process enabled in every step (ticker under the synchronous daemon).
func BenchmarkEngineStepsSynchronous(b *testing.B) {
	benchmarkEngineRun(b, runIncremental, ticker{}, graph.Ring(64),
		func() Daemon { return SynchronousDaemon{} }, WithMaxSteps(1000))
}

// BenchmarkEngineStepsSynchronousReference is the same workload on the
// retained reference engine, for before/after comparison.
func BenchmarkEngineStepsSynchronousReference(b *testing.B) {
	benchmarkEngineRun(b, runReference, ticker{}, graph.Ring(64),
		func() Daemon { return SynchronousDaemon{} }, WithMaxSteps(1000))
}

// BenchmarkEngineStepsCentral measures stepping under a central daemon, where
// only one process moves per step and incremental enabled-set maintenance
// touches a single neighbourhood.
func BenchmarkEngineStepsCentral(b *testing.B) {
	benchmarkEngineRun(b, runIncremental, ticker{}, graph.Ring(64),
		func() Daemon { return NewCentralRandomDaemon(rand.New(rand.NewSource(7))) },
		WithMaxSteps(1000))
}

// BenchmarkEngineStepsCentralReference is the reference-engine counterpart.
func BenchmarkEngineStepsCentralReference(b *testing.B) {
	benchmarkEngineRun(b, runReference, ticker{}, graph.Ring(64),
		func() Daemon { return NewCentralRandomDaemon(rand.New(rand.NewSource(7))) },
		WithMaxSteps(1000))
}

// BenchmarkEngineMaxPropagation runs a terminating algorithm (max
// propagation on a grid) to completion, covering the shrinking-enabled-set
// and round-accounting paths.
func BenchmarkEngineMaxPropagation(b *testing.B) {
	benchmarkEngineRun(b, runIncremental, maxPropagation{}, graph.Grid(8, 8),
		func() Daemon { return NewDistributedRandomDaemon(rand.New(rand.NewSource(3)), 0.5) })
}

// BenchmarkEngineMaxPropagationReference is the reference-engine counterpart.
func BenchmarkEngineMaxPropagationReference(b *testing.B) {
	benchmarkEngineRun(b, runReference, maxPropagation{}, graph.Grid(8, 8),
		func() Daemon { return NewDistributedRandomDaemon(rand.New(rand.NewSource(3)), 0.5) })
}

// BenchmarkEngineGreedyAdversarial exercises the greedy adversarial daemon's
// lookahead (neighbourhood-scoped in the current engine).
func BenchmarkEngineGreedyAdversarial(b *testing.B) {
	benchmarkEngineRun(b, runIncremental, maxPropagation{}, graph.Grid(6, 6),
		func() Daemon { return NewGreedyAdversarialDaemon(rand.New(rand.NewSource(5))) })
}

// BenchmarkEngineGreedyAdversarialReference is the reference-engine
// counterpart (full-rescan lookahead cost shows up here only through the
// engine loop; the daemon itself is shared).
func BenchmarkEngineGreedyAdversarialReference(b *testing.B) {
	benchmarkEngineRun(b, runReference, maxPropagation{}, graph.Grid(6, 6),
		func() Daemon { return NewGreedyAdversarialDaemon(rand.New(rand.NewSource(5))) })
}
