package sim_test

import (
	"math/rand"
	"testing"

	"sdr/internal/alliance"
	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
	"sdr/internal/unison"
)

// emptyInjector is an injector with no events: an injected run with it must
// behave exactly like an uninjected one.
type emptyInjector struct{}

func (emptyInjector) Inject(sim.InjectionPoint) *sim.Injection { return nil }
func (emptyInjector) Done() bool                               { return true }

// scriptedInjector fires a single scripted event at the first boundary at or
// after step at (or at a terminal configuration, via the engine's
// fast-forward).
type scriptedInjector struct {
	at    int
	build func(p sim.InjectionPoint) *sim.Injection
	fired bool
}

func (s *scriptedInjector) Inject(p sim.InjectionPoint) *sim.Injection {
	if s.fired || (p.Step < s.at && !p.Terminal) {
		return nil
	}
	s.fired = true
	return s.build(p)
}

func (s *scriptedInjector) Done() bool { return s.fired }

// TestEmptyInjectorMatchesReference pins the static-case oracle: a run with
// an event-free injector produces bit-identical Results to RunReference (and
// hence to the uninjected Run) across every standard daemon and workload.
func TestEmptyInjectorMatchesReference(t *testing.T) {
	for _, df := range sim.StandardDaemonFactories() {
		for _, w := range diffWorkloads(1) {
			injected := sim.NewEngine(w.net, w.alg, df.New(1)).
				Run(w.start, append(append([]sim.Option{}, w.opts...), sim.WithInjector(emptyInjector{}))...)
			ref := sim.NewEngine(w.net, w.alg, df.New(1)).RunReference(w.start, w.opts...)
			assertResultsIdentical(t, w.name+"/"+df.Name+"/empty-injector", injected, ref)
			if len(injected.Events) != 0 {
				t.Fatalf("%s/%s: event-free injector recorded events: %+v", w.name, df.Name, injected.Events)
			}
		}
	}
}

// TestReStabilizationAccounting is the re-stabilization contract: a run that
// stabilizes, is perturbed, and recovers must report the *first*
// stabilization in the Stabilization* fields (identical to the unperturbed
// run) and the recovery separately in the per-event record.
func TestReStabilizationAccounting(t *testing.T) {
	g := graph.Ring(8)
	net := sim.NewNetwork(g)
	u := unison.New(unison.DefaultPeriod(g.N()))
	comp := core.Compose(u)
	start := faults.MustRandomConfiguration(comp, net, rand.New(rand.NewSource(21)))
	legit := core.NormalPredicate(u, net)
	opts := func(extra ...sim.Option) []sim.Option {
		return append([]sim.Option{
			sim.WithMaxSteps(100_000),
			sim.WithLegitimate(legit),
			sim.WithStopWhenLegitimate(),
		}, extra...)
	}

	static := sim.NewEngine(net, comp, sim.SynchronousDaemon{}).Run(start, opts()...)
	if !static.LegitimateReached {
		t.Fatal("baseline run never stabilized")
	}

	// Perturb well after the first stabilization: corrupt three processes
	// with the last state of their enumerated spaces.
	enum := comp
	inj := &scriptedInjector{
		at: static.StabilizationSteps + 25,
		build: func(p sim.InjectionPoint) *sim.Injection {
			injn := &sim.Injection{Label: "scripted-corrupt"}
			for _, proc := range []int{1, 4, 6} {
				options := enum.EnumerateStates(proc, p.Net)
				injn.SetStates = append(injn.SetStates, sim.StateChange{Process: proc, State: options[len(options)-1]})
			}
			return injn
		},
	}
	perturbed := sim.NewEngine(net, comp, sim.SynchronousDaemon{}).Run(start, opts(sim.WithInjector(inj))...)

	// First stabilization: unchanged, bit-identical to the static run.
	if perturbed.StabilizationMoves != static.StabilizationMoves ||
		perturbed.StabilizationRounds != static.StabilizationRounds ||
		perturbed.StabilizationSteps != static.StabilizationSteps {
		t.Errorf("first stabilization changed under churn: moves/rounds/steps %d/%d/%d, static %d/%d/%d",
			perturbed.StabilizationMoves, perturbed.StabilizationRounds, perturbed.StabilizationSteps,
			static.StabilizationMoves, static.StabilizationRounds, static.StabilizationSteps)
	}

	// The recovery is reported separately, per event.
	if len(perturbed.Events) != 1 {
		t.Fatalf("recorded %d events, want 1: %+v", len(perturbed.Events), perturbed.Events)
	}
	ev := perturbed.Events[0]
	if ev.Label != "scripted-corrupt" {
		t.Errorf("event label %q", ev.Label)
	}
	if !ev.LegitimateBefore {
		t.Errorf("the event fired after stabilization, LegitimateBefore must hold: %+v", ev)
	}
	if !ev.Recovered {
		t.Fatalf("the system never recovered from the event: %+v", ev)
	}
	if ev.RecoverySteps <= 0 || ev.RecoveryMoves <= 0 || ev.RecoveryRounds <= 0 {
		t.Errorf("corrupting three unison clocks must cost a positive recovery: %+v", ev)
	}
	if ev.Step < static.StabilizationSteps {
		t.Errorf("event at step %d, before the first stabilization at %d", ev.Step, static.StabilizationSteps)
	}

	// The run only stops once the injector is done and the system is
	// legitimate again, so the final step count covers the recovery.
	if perturbed.Steps < ev.Step+ev.RecoverySteps {
		t.Errorf("run ended at step %d, before the recovery at %d+%d",
			perturbed.Steps, ev.Step, ev.RecoverySteps)
	}
	if perturbed.LegitimateSteps <= 0 || perturbed.LegitimateSteps >= perturbed.Steps {
		t.Errorf("availability %d/%d should be strictly between 0 and 1",
			perturbed.LegitimateSteps, perturbed.Steps)
	}
}

// TestTopologyInjectionMatchesFreshRun checks that the engine's incremental
// state is correctly re-seeded after a topology event: the suffix of an
// injected run equals a reference run started from the post-event
// configuration on an equally mutated graph (the synchronous daemon is
// stateless, so the suffix is exactly reproducible).
func TestTopologyInjectionMatchesFreshRun(t *testing.T) {
	g := graph.Ring(8)
	pristine := g.Clone()
	net := sim.NewNetwork(g)
	u := unison.New(unison.DefaultPeriod(g.N()))
	comp := core.Compose(u)
	start := faults.MustRandomConfiguration(comp, net, rand.New(rand.NewSource(31)))

	const eventAt, maxSteps = 40, 400
	var snapshot *sim.Configuration
	var movesAtEvent, stepAtEvent int
	inj := &scriptedInjector{
		at: eventAt,
		build: func(p sim.InjectionPoint) *sim.Injection {
			snapshot = p.Config.Clone()
			movesAtEvent, stepAtEvent = p.Moves, p.Step
			return &sim.Injection{
				Label:     "rewire",
				DropEdges: [][2]int{{0, 1}},
				AddEdges:  [][2]int{{0, 4}},
			}
		},
	}
	injected := sim.NewEngine(net, comp, sim.SynchronousDaemon{}).
		Run(start, sim.WithMaxSteps(maxSteps), sim.WithInjector(inj))
	if snapshot == nil {
		t.Fatal("the event never fired")
	}

	// Reference: same mutation applied to a pristine copy, reference engine
	// from the snapshot, for the remaining step budget.
	refGraph := pristine
	refGraph.MustRemoveEdge(0, 1)
	refGraph.MustAddEdge(0, 4)
	refNet := sim.NewNetwork(refGraph)
	ref := sim.NewEngine(refNet, comp, sim.SynchronousDaemon{}).
		RunReference(snapshot, sim.WithMaxSteps(maxSteps-stepAtEvent))

	if !injected.Final.Equal(ref.Final) {
		t.Errorf("post-event suffix diverged:\n  injected %s\n  reference %s", injected.Final, ref.Final)
	}
	if got, want := injected.Moves-movesAtEvent, ref.Moves; got != want {
		t.Errorf("suffix moves %d, reference %d", got, want)
	}
	if got, want := injected.Steps-stepAtEvent, ref.Steps; got != want {
		t.Errorf("suffix steps %d, reference %d", got, want)
	}
}

// TestInjectionFastForwardAtTerminal checks that a terminating run does not
// end while the injector still has pending events: the event fires at the
// terminal boundary and the run continues.
func TestInjectionFastForwardAtTerminal(t *testing.T) {
	g := graph.RandomConnected(8, 0.5, rand.New(rand.NewSource(41)))
	net := sim.NewNetwork(g)
	comp := alliance.NewSelfStabilizing(alliance.DominatingSet())
	start := sim.InitialConfiguration(comp, net)
	enum := comp

	inj := &scriptedInjector{
		at: 1 << 30, // far beyond termination: only the fast-forward can fire it
		build: func(p sim.InjectionPoint) *sim.Injection {
			if !p.Terminal {
				t.Errorf("the scripted event should only fire at the terminal boundary")
			}
			injn := &sim.Injection{Label: "post-terminal-corrupt"}
			for proc := 0; proc < 3; proc++ {
				options := enum.EnumerateStates(proc, p.Net)
				injn.SetStates = append(injn.SetStates, sim.StateChange{Process: proc, State: options[len(options)-1]})
			}
			return injn
		},
	}
	res := sim.NewEngine(net, comp, sim.SynchronousDaemon{}).
		Run(start, sim.WithMaxSteps(100_000), sim.WithInjector(inj))
	if len(res.Events) != 1 {
		t.Fatalf("recorded %d events, want 1", len(res.Events))
	}
	if !res.Terminated {
		t.Errorf("run did not re-terminate after the post-terminal event")
	}
	if res.HitStepLimit {
		t.Errorf("run hit the step limit instead of terminating")
	}
}
