package sim_test

import (
	"math/rand"
	"testing"

	"sdr/internal/alliance"
	"sdr/internal/churn"
	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
	"sdr/internal/spantree"
	"sdr/internal/unison"
)

// The memo differential tests pin the tentpole guarantee of the memoization
// layer: a memoized Run is bit-identical to the unmemoized reference engine —
// same daemons, same rule choices, same counters, same final configuration —
// across every standard daemon, the paper's instantiations, both rule-choice
// policies and churn schedules. The memo layer may only change how fast
// enabledness questions are answered, never their answers.

// TestMemoMatchesReference is the memoized twin of TestEngineMatchesReference:
// every standard daemon × every instantiation × fixed seeds, memoized Run
// against the unmemoized reference engine.
func TestMemoMatchesReference(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, df := range sim.StandardDaemonFactories() {
			for _, w := range diffWorkloads(seed) {
				memoOpts := append(append([]sim.Option(nil), w.opts...),
					sim.WithMemo(sim.NewMemoShare(0)))
				inc := sim.NewEngine(w.net, w.alg, df.New(seed)).Run(w.start, memoOpts...)
				ref := sim.NewEngine(w.net, w.alg, df.New(seed)).RunReference(w.start, w.opts...)
				assertResultsIdentical(t, "memo/"+w.name+"/"+df.Name, inc, ref)
				if inc.Steps > 0 && inc.Memo.Lookups() == 0 {
					t.Errorf("%s/%s: memoized run recorded no lookups", w.name, df.Name)
				}
			}
		}
	}
}

// TestMemoSharedTableMatchesReference covers the read-only sharing protocol:
// a first run donates its table to the share, and a second run answering from
// the frozen table must still match the reference bit for bit.
func TestMemoSharedTableMatchesReference(t *testing.T) {
	for _, df := range sim.StandardDaemonFactories() {
		for _, w := range diffWorkloads(5) {
			share := sim.NewMemoShare(0)
			memoOpts := append(append([]sim.Option(nil), w.opts...), sim.WithMemo(share))
			sim.NewEngine(w.net, w.alg, df.New(5)).Run(w.start, memoOpts...)
			if share.Frozen() == nil {
				t.Fatalf("%s/%s: first run did not donate", w.name, df.Name)
			}
			second := sim.NewEngine(w.net, w.alg, df.New(5)).Run(w.start, memoOpts...)
			ref := sim.NewEngine(w.net, w.alg, df.New(5)).RunReference(w.start, w.opts...)
			assertResultsIdentical(t, "memo-shared/"+w.name+"/"+df.Name, second, ref)
			if second.Memo.Hits == 0 {
				t.Errorf("%s/%s: second run never hit the frozen table", w.name, df.Name)
			}
		}
	}
}

// TestMemoRandomRuleChoiceMatchesReference pins rng parity of the mask-based
// rule choice: picking the k-th set bit must consume the rule-choice rng
// exactly like picking the k-th element of the enabled-rule slice.
func TestMemoRandomRuleChoiceMatchesReference(t *testing.T) {
	g := graph.RandomConnected(9, 0.35, rand.New(rand.NewSource(7)))
	net := sim.NewNetwork(g)
	u := unison.New(unison.DefaultPeriod(g.N()))
	comp := core.Compose(u)
	start := faults.MustRandomConfiguration(comp, net, rand.New(rand.NewSource(8)))
	for _, df := range sim.StandardDaemonFactories() {
		optsFor := func(extra ...sim.Option) []sim.Option {
			return append([]sim.Option{
				sim.WithMaxSteps(5_000),
				sim.WithRuleChoice(sim.RandomEnabledRule, rand.New(rand.NewSource(21))),
			}, extra...)
		}
		inc := sim.NewEngine(net, comp, df.New(9)).Run(start,
			optsFor(sim.WithMemo(sim.NewMemoShare(0)))...)
		ref := sim.NewEngine(net, comp, df.New(9)).RunReference(start, optsFor()...)
		assertResultsIdentical(t, "memo-random-rule/"+df.Name, inc, ref)
	}
}

// TestMemoChurnMatchesPlain compares a memoized and an unmemoized run under
// an identical churn schedule (state corruption, crash-reboot and topology
// mutation). Churn mutates the network in place, so each run gets its own
// freshly built network, injector and start configuration from the same
// seeds. Keys self-describe the neighbourhood, so topology mutations must
// need no cache invalidation beyond the engine's per-injection id-mirror
// reset.
func TestMemoChurnMatchesPlain(t *testing.T) {
	sched := churn.Schedule{
		Pattern: churn.Periodic,
		Events:  6,
		Every:   150,
		Start:   100,
		EventKinds: []churn.Kind{
			churn.CorruptFraction, churn.EdgeDrop, churn.EdgeAdd, churn.NodeCrash,
		},
		Fraction: 0.3,
		Count:    1,
	}
	type setup struct {
		net   *sim.Network
		alg   sim.Algorithm
		start *sim.Configuration
		opts  []sim.Option
	}
	build := func(extra ...sim.Option) setup {
		rng := rand.New(rand.NewSource(41))
		g := graph.RandomConnected(10, 0.35, rng)
		net := sim.NewNetwork(g)
		u := unison.New(unison.DefaultPeriod(g.N()))
		comp := core.Compose(u)
		start := faults.MustRandomConfiguration(comp, net, rng)
		inj, err := churn.NewInjector(sched, comp, u, net, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		opts := append([]sim.Option{
			sim.WithMaxSteps(4_000),
			sim.WithLegitimate(core.NormalPredicate(u, net)),
			sim.WithInjector(inj),
		}, extra...)
		return setup{net: net, alg: comp, start: start, opts: opts}
	}
	for _, df := range sim.StandardDaemonFactories() {
		plainSetup := build()
		memoSetup := build(sim.WithMemo(sim.NewMemoShare(0)))
		plain := sim.NewEngine(plainSetup.net, plainSetup.alg, df.New(13)).
			Run(plainSetup.start, plainSetup.opts...)
		memo := sim.NewEngine(memoSetup.net, memoSetup.alg, df.New(13)).
			Run(memoSetup.start, memoSetup.opts...)
		assertResultsIdentical(t, "memo-churn/"+df.Name, memo, plain)
		if len(memo.Events) != len(plain.Events) {
			t.Fatalf("%s: %d events vs %d", df.Name, len(memo.Events), len(plain.Events))
		}
		for i := range memo.Events {
			if memo.Events[i] != plain.Events[i] {
				t.Fatalf("%s event %d: %+v vs %+v", df.Name, i, memo.Events[i], plain.Events[i])
			}
		}
		if memo.LegitimateSteps != plain.LegitimateSteps {
			t.Fatalf("%s: LegitimateSteps %d vs %d", df.Name, memo.LegitimateSteps, plain.LegitimateSteps)
		}
		if memo.Memo.Lookups() == 0 {
			t.Fatalf("%s: churned memoized run recorded no lookups", df.Name)
		}
	}
}

// TestAppendStateKeyMatchesString pins the KeyAppender contract for every
// state type with a rendering bypass: the appended bytes must equal the
// String() rendering exactly, because the interner's id table is keyed by the
// rendering.
func TestAppendStateKeyMatchesString(t *testing.T) {
	states := []sim.State{
		unison.ClockState{C: 0},
		unison.ClockState{C: 17},
		unison.BPVState{R: 0},
		unison.BPVState{R: -5},
		unison.BPVState{R: 12},
		alliance.FGAState{Col: false, Scr: -1, CanQ: false, Ptr: alliance.NoPointer},
		alliance.FGAState{Col: true, Scr: 0, CanQ: true, Ptr: 7},
		alliance.FGAState{Col: true, Scr: 1, CanQ: false, Ptr: 0},
		alliance.ResetFGAState(),
		spantree.NodeState{Dist: 0, Parent: spantree.NoParent},
		spantree.NodeState{Dist: 3, Parent: 5},
		core.ComposedState{SDR: core.CleanSDRState(), Inner: unison.ClockState{C: 4}},
		core.ComposedState{
			SDR:   core.SDRState{St: core.StatusRB, D: 2},
			Inner: alliance.FGAState{Col: true, Scr: -1, CanQ: true, Ptr: alliance.NoPointer},
		},
		core.ComposedState{
			SDR:   core.SDRState{St: core.StatusRF, D: 0},
			Inner: spantree.NodeState{Dist: 9, Parent: spantree.NoParent},
		},
	}
	for _, s := range states {
		if _, ok := s.(sim.KeyAppender); !ok {
			t.Errorf("%T does not implement sim.KeyAppender", s)
			continue
		}
		if got, want := string(sim.AppendStateKey(nil, s)), s.String(); got != want {
			t.Errorf("%T: AppendStateKey %q != String %q", s, got, want)
		}
	}
	// The generic fallback renders through String().
	fallback := fallbackState{}
	if got := string(sim.AppendStateKey(nil, fallback)); got != fallback.String() {
		t.Errorf("fallback: %q != %q", got, fallback.String())
	}
}

// fallbackState has no KeyAppender bypass.
type fallbackState struct{}

func (fallbackState) Clone() sim.State       { return fallbackState{} }
func (fallbackState) Equal(o sim.State) bool { _, ok := o.(fallbackState); return ok }
func (fallbackState) String() string         { return "fallback" }
