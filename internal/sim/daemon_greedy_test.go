package sim

import (
	"math/rand"
	"testing"

	"sdr/internal/graph"
)

// naiveGreedySelect is the original full-rescan lookahead: apply each
// candidate's move to a cloned configuration and count the whole enabled set.
// The optimised neighbourhood-scoped lookahead must agree with it exactly
// (same scores ⇒ same tie set ⇒ same rng consumption ⇒ same selection).
func naiveGreedySelect(rng *rand.Rand, sel Selection) []int {
	bestScore := -1
	var best []int
	for _, u := range sel.Enabled {
		next := applySingleMove(sel.Alg, sel.Net, sel.Config, u)
		score := len(EnabledSet(sel.Alg, sel.Net, next))
		if score > bestScore {
			bestScore = score
			best = best[:0]
			best = append(best, u)
		} else if score == bestScore {
			best = append(best, u)
		}
	}
	return []int{best[rng.Intn(len(best))]}
}

func TestGreedyAdversarialMatchesNaiveLookahead(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		g := graph.RandomConnected(10, 0.35, rng)
		net := NewNetwork(g)
		alg := maxPropagation{}

		scoped := NewGreedyAdversarialDaemon(rand.New(rand.NewSource(seed)))
		naiveRng := rand.New(rand.NewSource(seed))

		c := InitialConfiguration(alg, net)
		for step := 0; step < 200; step++ {
			enabled := EnabledSet(alg, net, c)
			if len(enabled) == 0 {
				break
			}
			sel := Selection{Net: net, Alg: alg, Config: c, Enabled: enabled, Step: step}
			got := scoped.Select(sel)
			want := naiveGreedySelect(naiveRng, sel)
			if len(got) != 1 || got[0] != want[0] {
				t.Fatalf("seed %d step %d: scoped lookahead selected %v, naive selected %v",
					seed, step, got, want)
			}
			c = applySingleMove(alg, net, c, got[0])
		}
	}
}
