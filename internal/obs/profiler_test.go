package obs

import (
	"testing"
	"time"
)

func TestProfilerSampling(t *testing.T) {
	p := NewPhaseProfiler(3)
	sampled := 0
	for i := 0; i < 10; i++ {
		if p.StartStep() {
			sampled++
			p.Observe(PhaseSelect, time.Millisecond)
			p.Observe(PhaseExecute, 2*time.Millisecond)
			p.EndStep(4 * time.Millisecond)
		}
	}
	// Steps 0,3,6,9 are sampled.
	if sampled != 4 {
		t.Fatalf("sampled %d steps, want 4", sampled)
	}
	ep := p.Profile()
	if ep.Steps != 10 || ep.SampledSteps != 4 || ep.Every != 3 {
		t.Fatalf("profile steps=%d sampled=%d every=%d, want 10/4/3", ep.Steps, ep.SampledSteps, ep.Every)
	}
	if len(ep.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(ep.Phases))
	}
	if ep.Phases[0].Phase != PhaseSelect || ep.Phases[0].Count != 4 || ep.Phases[0].Total != 4*time.Millisecond {
		t.Errorf("select stat = %+v", ep.Phases[0])
	}
	if ep.Phases[1].Phase != PhaseExecute || ep.Phases[1].Total != 8*time.Millisecond {
		t.Errorf("execute stat = %+v", ep.Phases[1])
	}
	if got := ep.PhaseTotal(); got != 12*time.Millisecond {
		t.Errorf("PhaseTotal = %v, want 12ms", got)
	}
	if got := ep.Coverage(); got != 0.75 {
		t.Errorf("Coverage = %v, want 0.75", got)
	}
}

func TestProfilerEveryClamps(t *testing.T) {
	p := NewPhaseProfiler(0)
	for i := 0; i < 5; i++ {
		if !p.StartStep() {
			t.Fatalf("every<1 must sample every step; step %d skipped", i)
		}
	}
}

func TestProfilerShardBreakdown(t *testing.T) {
	p := NewPhaseProfiler(1)
	p.StartStep()
	p.Observe(PhaseExecute, 3*time.Millisecond)
	p.ObserveShard(0, PhaseExecute, time.Millisecond)
	p.ObserveShard(1, PhaseExecute, 2*time.Millisecond)
	p.ObserveShard(1, PhaseBoundary, time.Millisecond)
	p.EndStep(5 * time.Millisecond)
	ep := p.Profile()
	if len(ep.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(ep.Shards))
	}
	if ep.Shards[0].Shard != 0 || len(ep.Shards[0].Phases) != 1 || ep.Shards[0].Phases[0].Total != time.Millisecond {
		t.Errorf("shard 0 = %+v", ep.Shards[0])
	}
	if ep.Shards[1].Shard != 1 || len(ep.Shards[1].Phases) != 1 {
		t.Errorf("shard 1 = %+v", ep.Shards[1])
	}
	// PhaseBoundary was never observed globally, so it is absent from the
	// shard view too (shard rows mirror the global phase order).
	if ep.Shards[1].Phases[0].Phase != PhaseExecute {
		t.Errorf("shard 1 first phase = %q, want execute", ep.Shards[1].Phases[0].Phase)
	}
}

func TestProfileMetrics(t *testing.T) {
	p := NewPhaseProfiler(1)
	for i := 0; i < 2; i++ {
		p.StartStep()
		p.Observe(PhaseSelect, time.Microsecond)
		p.EndStep(2 * time.Microsecond)
	}
	m := p.Profile().Metrics()
	if got := m["phase_select_ns"]; got != 1000 {
		t.Errorf("phase_select_ns = %v, want 1000", got)
	}
	if got := m["phase_step_ns"]; got != 2000 {
		t.Errorf("phase_step_ns = %v, want 2000", got)
	}
	var empty PhaseProfiler
	if got := empty.Profile().Metrics(); got != nil {
		t.Errorf("empty profile metrics = %v, want nil", got)
	}
}
