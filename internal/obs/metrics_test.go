package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("jobs_total", "Jobs."); again != c {
		t.Fatal("re-registering the same counter did not return the existing one")
	}
	g := r.Gauge("queue_depth", "Depth.")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestCounterLabelsAreDistinctSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("http_requests_total", "Requests.", "route", "/a")
	b := r.Counter("http_requests_total", "Requests.", "route", "/b")
	if a == b {
		t.Fatal("different label sets returned the same series")
	}
	a.Add(2)
	b.Inc()
	out := render(t, r)
	for _, want := range []string{
		`http_requests_total{route="/a"} 2`,
		`http_requests_total{route="/b"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1, 1.5, 3, 3, 5, 7, 9, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 9 {
		t.Fatalf("count = %d, want 9", got)
	}
	if got := h.Sum(); got != 130 {
		t.Fatalf("sum = %v, want 130", got)
	}
	// 0.5 and 1 land in le=1 (le is inclusive), 1.5 in le=2, the two 3s in
	// le=4, 5 and 7 in le=8, 9 and 100 overflow to +Inf.
	wantBuckets := []uint64{2, 1, 2, 2, 2}
	for i, want := range wantBuckets {
		if got := h.buckets[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	// The median rank (4.5 of 9) falls in the le=4 bucket (cumulative 3→5):
	// interpolating 1.5/2 through (2,4] gives 3.5. A quantile deep in the
	// +Inf bucket clamps to the highest finite bound.
	if got := h.Quantile(0.5); got != 3.5 {
		t.Errorf("q50 = %v, want 3.5", got)
	}
	if got := h.Quantile(1); got != 8 {
		t.Errorf("q100 = %v, want 8 (clamped to highest finite bound)", got)
	}
	if got := h.Quantile(0); got < 0 || got > 1 {
		t.Errorf("q0 = %v, want within first occupied bucket [0,1]", got)
	}
}

// TestHistogramUnboundedWindow pins the property that replaced the server's
// fixed 512-sample latency ring: the histogram keeps counting past any
// window size instead of overwriting old samples, and out-of-range values
// are retained in the +Inf bucket rather than dropped.
func TestHistogramUnboundedWindow(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	const n = 2048 // 4× the old latencyWindow
	for i := 0; i < n; i++ {
		h.Observe(5)
	}
	h.Observe(1e9) // far beyond the last bound
	if got := h.Count(); got != n+1 {
		t.Fatalf("count = %d, want %d (no wraparound)", got, n+1)
	}
	if got := h.buckets[len(h.bounds)].Load(); got != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", got)
	}
	if got := h.Quantile(0.5); got <= 1 || got > 10 {
		t.Fatalf("q50 = %v, want in (1,10]", got)
	}
	// The overflow sample keeps the estimate finite.
	if got := h.Quantile(0.9999); math.IsInf(got, 1) || got > 100 {
		t.Fatalf("q99.99 = %v, want clamped to 100", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); got != workers*per*1.5 {
		t.Fatalf("sum = %v, want %v", got, workers*per*1.5)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("sdrd_jobs_done_total", "Completed jobs.").Add(3)
	r.Gauge("sdrd_queue_depth", "Queued jobs.").Set(2)
	r.GaugeFunc("sdrd_queue_capacity", "Queue capacity.", func() float64 { return 16 })
	h := r.Histogram("sdrd_job_duration_ms", "Job wall time.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	out := render(t, r)
	want := `# HELP sdrd_jobs_done_total Completed jobs.
# TYPE sdrd_jobs_done_total counter
sdrd_jobs_done_total 3
# HELP sdrd_queue_depth Queued jobs.
# TYPE sdrd_queue_depth gauge
sdrd_queue_depth 2
# HELP sdrd_queue_capacity Queue capacity.
# TYPE sdrd_queue_capacity gauge
sdrd_queue_capacity 16
# HELP sdrd_job_duration_ms Job wall time.
# TYPE sdrd_job_duration_ms histogram
sdrd_job_duration_ms_bucket{le="1"} 1
sdrd_job_duration_ms_bucket{le="10"} 2
sdrd_job_duration_ms_bucket{le="+Inf"} 3
sdrd_job_duration_ms_sum 55.5
sdrd_job_duration_ms_count 3
`
	if out != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "W.", "path", "a\"b\\c\nd").Inc()
	out := render(t, r)
	if !strings.Contains(out, `weird_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("labels not escaped:\n%s", out)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; !equalF(exp, want) {
		t.Errorf("ExponentialBuckets = %v, want %v", exp, want)
	}
	lin := LinearBuckets(0, 5, 3)
	if want := []float64{0, 5, 10}; !equalF(lin, want) {
		t.Errorf("LinearBuckets = %v, want %v", lin, want)
	}
}

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}
