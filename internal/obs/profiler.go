package obs

import (
	"fmt"
	"time"
)

// Engine phase names recorded by sim's step loop. The sequential engine
// reports select/execute/guard_eval/account; the sharded engine reports
// select/execute/merge/boundary_exchange/account globally plus per-shard
// execute and boundary_exchange breakdowns.
const (
	PhaseSelect   = "select"
	PhaseExecute  = "execute"
	PhaseGuard    = "guard_eval"
	PhaseAccount  = "account"
	PhaseMerge    = "merge"
	PhaseBoundary = "boundary_exchange"
)

// PhaseProfiler accumulates per-phase wall time for a sampled subset of
// engine steps: step i is sampled when i ≡ 0 (mod every), so every=1 times
// every step. It belongs to a single run — the engine drives it from the
// step loop's goroutine only (per-shard durations are measured inside the
// shard workers but handed over sequentially after the join) — so it needs
// no locking and costs nothing when not attached.
type PhaseProfiler struct {
	every    int
	steps    int // steps seen by StartStep
	sampled  int // steps that were sampled
	stepWall time.Duration

	order  []string
	totals map[string]time.Duration
	counts map[string]int

	shards []map[string]time.Duration
}

// NewPhaseProfiler returns a profiler sampling every k-th step (k < 1 is
// treated as 1, i.e. every step).
func NewPhaseProfiler(every int) *PhaseProfiler {
	if every < 1 {
		every = 1
	}
	return &PhaseProfiler{
		every:  every,
		totals: make(map[string]time.Duration),
		counts: make(map[string]int),
	}
}

// StartStep registers one engine step and reports whether this step should
// be timed.
func (p *PhaseProfiler) StartStep() bool {
	s := p.steps
	p.steps++
	return s%p.every == 0
}

// Observe adds one timed occurrence of a phase on the current sampled step.
func (p *PhaseProfiler) Observe(phase string, d time.Duration) {
	if _, ok := p.totals[phase]; !ok {
		p.order = append(p.order, phase)
	}
	p.totals[phase] += d
	p.counts[phase]++
}

// ObserveShard adds one timed occurrence of a phase attributed to a single
// shard of the sharded engine.
func (p *PhaseProfiler) ObserveShard(shard int, phase string, d time.Duration) {
	for len(p.shards) <= shard {
		p.shards = append(p.shards, nil)
	}
	if p.shards[shard] == nil {
		p.shards[shard] = make(map[string]time.Duration)
	}
	p.shards[shard][phase] += d
}

// EndStep closes a sampled step, recording its total wall time.
func (p *PhaseProfiler) EndStep(wall time.Duration) {
	p.sampled++
	p.stepWall += wall
}

// PhaseStat is the accumulated time of one phase over all sampled steps.
type PhaseStat struct {
	Phase string
	Count int
	Total time.Duration
}

// ShardBreakdown is the per-shard share of the parallel phases.
type ShardBreakdown struct {
	Shard  int
	Phases []PhaseStat
}

// EngineProfile is an immutable snapshot of a profiler.
type EngineProfile struct {
	Every        int
	Steps        int
	SampledSteps int
	StepWall     time.Duration // total wall time of the sampled steps
	Phases       []PhaseStat   // in first-observation order
	Shards       []ShardBreakdown
}

// Profile snapshots the accumulated timings.
func (p *PhaseProfiler) Profile() EngineProfile {
	ep := EngineProfile{
		Every:        p.every,
		Steps:        p.steps,
		SampledSteps: p.sampled,
		StepWall:     p.stepWall,
	}
	for _, name := range p.order {
		ep.Phases = append(ep.Phases, PhaseStat{Phase: name, Count: p.counts[name], Total: p.totals[name]})
	}
	for i, m := range p.shards {
		if m == nil {
			continue
		}
		sb := ShardBreakdown{Shard: i}
		// Report shard phases in the global observation order so rows line
		// up across shards.
		for _, name := range p.order {
			if d, ok := m[name]; ok {
				sb.Phases = append(sb.Phases, PhaseStat{Phase: name, Count: p.counts[name], Total: d})
			}
		}
		ep.Shards = append(ep.Shards, sb)
	}
	return ep
}

// PhaseTotal is the sum of all global phase totals; on a healthy profile it
// accounts for nearly all of StepWall (the difference is loop glue and the
// timing calls themselves).
func (p EngineProfile) PhaseTotal() time.Duration {
	var sum time.Duration
	for _, ph := range p.Phases {
		sum += ph.Total
	}
	return sum
}

// Coverage is PhaseTotal/StepWall, the fraction of sampled step wall time
// attributed to a named phase (0 with no samples).
func (p EngineProfile) Coverage() float64 {
	if p.StepWall <= 0 {
		return 0
	}
	return float64(p.PhaseTotal()) / float64(p.StepWall)
}

// Metrics renders the profile as flat metric values for the campaign layer:
// phase_<name>_ns is the mean nanoseconds per sampled step for each global
// phase, and phase_step_ns the mean sampled-step wall time. Empty with no
// sampled steps.
func (p EngineProfile) Metrics() map[string]float64 {
	if p.SampledSteps == 0 {
		return nil
	}
	m := make(map[string]float64, len(p.Phases)+1)
	n := float64(p.SampledSteps)
	for _, ph := range p.Phases {
		m[fmt.Sprintf("phase_%s_ns", ph.Phase)] = float64(ph.Total.Nanoseconds()) / n
	}
	m["phase_step_ns"] = float64(p.StepWall.Nanoseconds()) / n
	return m
}
