// Package obs is the shared observability layer: a zero-dependency metrics
// core (counters, gauges, fixed-bucket histograms with atomic hot paths and
// Prometheus text-format exposition) and a sampled engine phase profiler.
// The sim engine, the sdrd job manager, and the HTTP layer all record into
// the same primitives, so /v1/stats, /metrics, and the -profile-steps tables
// report from one source instead of parallel ad-hoc instruments.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use; Inc/Add are single atomic adds, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down, stored as atomic bits.
// The zero value is ready to use and reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (CAS loop; delta may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets (an implicit
// +Inf bucket catches overflow). Observe is a bucket search plus two atomic
// adds; Sum accumulates via CAS on float bits. All methods are safe for
// concurrent use.
type Histogram struct {
	bounds  []float64 // strictly increasing finite upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns Sum/Count, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket containing the target rank, the same estimate Prometheus'
// histogram_quantile computes. Samples in the +Inf bucket clamp to the
// highest finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: no finite upper edge to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// ExponentialBuckets returns count upper bounds starting at start and
// multiplying by factor: start, start·factor, …
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	bs := make([]float64, count)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// LinearBuckets returns count upper bounds starting at start and stepping by
// width.
func LinearBuckets(start, width float64, count int) []float64 {
	if width <= 0 || count < 1 {
		panic("obs: LinearBuckets needs width > 0, count >= 1")
	}
	bs := make([]float64, count)
	for i := range bs {
		bs[i] = start + float64(i)*width
	}
	return bs
}

// DefBuckets are general-purpose latency-in-seconds bounds (5ms … ~40s).
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 40}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

type series struct {
	labels  string // rendered `k="v",k2="v2"` without braces, "" when unlabeled
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

func (f *family) find(labels string) *series {
	for _, s := range f.series {
		if s.labels == labels {
			return s
		}
	}
	return nil
}

// Registry holds named metric families, each with one or more label series.
// Registration is get-or-create: asking twice for the same name and labels
// returns the same metric, so callers can register lazily on hot-ish paths
// (e.g. per-status-code request counters). Registering the same name with a
// different kind panics — that is a programming error, not runtime input.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// renderLabels turns k1,v1,k2,v2 pairs into the exposition label body.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key,value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Counter returns the counter for name with the given label pairs, creating
// it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	ls := renderLabels(labels)
	if s := f.find(ls); s != nil {
		return s.counter
	}
	s := &series{labels: ls, counter: &Counter{}}
	f.series = append(f.series, s)
	return s.counter
}

// Gauge returns the gauge for name with the given label pairs, creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	ls := renderLabels(labels)
	if s := f.find(ls); s != nil {
		return s.gauge
	}
	s := &series{labels: ls, gauge: &Gauge{}}
	f.series = append(f.series, s)
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time —
// for values that already live elsewhere (queue depth, cache sizes). A
// second registration with the same name and labels keeps the first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGaugeFunc)
	ls := renderLabels(labels)
	if f.find(ls) != nil {
		return
	}
	f.series = append(f.series, &series{labels: ls, gaugeFn: fn})
}

// Histogram returns the histogram for name with the given label pairs,
// creating it with the given upper bounds on first use (later calls reuse
// the existing buckets and ignore the bounds argument).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	ls := renderLabels(labels)
	if s := f.find(ls); s != nil {
		return s.hist
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	s := &series{labels: ls, hist: newHistogram(bounds)}
	f.series = append(f.series, s)
	return s.hist
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, one line per
// series, cumulative _bucket/_sum/_count lines for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.labels), s.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, braced(s.labels), ftoa(s.gauge.Value()))
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, braced(s.labels), ftoa(s.gaugeFn()))
		return err
	case kindHistogram:
		h := s.hist
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bracedLe(s.labels, ftoa(bound)), cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bracedLe(s.labels, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(s.labels), ftoa(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(s.labels), h.Count())
		return err
	}
	return nil
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func bracedLe(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labels + `,le="` + le + `"}`
}

func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
