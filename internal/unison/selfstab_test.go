package unison

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdr/internal/checker"
	"sdr/internal/core"
	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

func TestNewSelfStabilizingBuildsComposition(t *testing.T) {
	comp := NewSelfStabilizing(9)
	if comp.Inner().Name() != New(9).Name() {
		t.Errorf("composition wraps %q, want %q", comp.Inner().Name(), New(9).Name())
	}
	uncoop := NewSelfStabilizingUncooperative(9)
	if uncoop.Name() == comp.Name() {
		t.Error("the uncooperative variant must be distinguishable by name")
	}
}

func TestSelfStabilizationRoundsAndMoves(t *testing.T) {
	// Theorems 6 and 7: from arbitrary configurations, U ∘ SDR reaches a
	// normal configuration within 3n rounds and within the explicit
	// (3D+3)n² + (3D+1)(n−1) + 1 move bound.
	topologies := []*graph.Graph{
		graph.Ring(8),
		graph.Star(8),
		graph.Grid(3, 3),
		graph.RandomConnected(10, 0.3, rand.New(rand.NewSource(4))),
	}
	for _, g := range topologies {
		n, d := g.N(), g.Diameter()
		u := New(DefaultPeriod(n))
		comp := core.Compose(u)
		net := sim.NewNetwork(g)
		normal := core.NormalPredicate(u, net)

		for trial := 0; trial < 4; trial++ {
			rng := rand.New(rand.NewSource(int64(100*n + trial)))
			start := faults.MustRandomConfiguration(comp, net, rng)
			daemon := sim.NewDistributedRandomDaemon(rng, 0.5)
			res := sim.NewEngine(net, comp, daemon).Run(start,
				sim.WithMaxSteps(500_000),
				sim.WithLegitimate(normal),
				sim.WithStopWhenLegitimate(),
			)
			if !res.LegitimateReached {
				t.Fatalf("n=%d trial %d: did not stabilize", n, trial)
			}
			if res.StabilizationRounds > MaxStabilizationRounds(n) {
				t.Errorf("n=%d trial %d: %d rounds exceed the 3n bound %d",
					n, trial, res.StabilizationRounds, MaxStabilizationRounds(n))
			}
			if res.StabilizationMoves > MaxStabilizationMoves(n, d) {
				t.Errorf("n=%d trial %d: %d moves exceed the O(D·n²) bound %d",
					n, trial, res.StabilizationMoves, MaxStabilizationMoves(n, d))
			}
		}
	}
}

func TestSpecificationHoldsAfterStabilization(t *testing.T) {
	// After reaching a normal configuration, the unison specification holds:
	// safety in every subsequent configuration and liveness for every process.
	g := graph.Torus(3, 4)
	n := g.N()
	u := New(DefaultPeriod(n))
	comp := core.Compose(u)
	net := sim.NewNetwork(g)
	rng := rand.New(rand.NewSource(21))
	start := faults.MustRandomConfiguration(comp, net, rng)
	daemon := sim.NewDistributedRandomDaemon(rng, 0.5)
	eng := sim.NewEngine(net, comp, daemon)

	res := eng.Run(start,
		sim.WithLegitimate(core.NormalPredicate(u, net)),
		sim.WithStopWhenLegitimate(),
	)
	if !res.LegitimateReached {
		t.Fatal("did not stabilize")
	}

	safety := SafetyPredicate(u, net)
	ticker := NewTickCounter(n)
	safeViolations := 0
	hook := func(info sim.StepInfo) {
		if !safety(info.After) {
			safeViolations++
		}
	}
	eng.Run(res.Final,
		sim.WithMaxSteps(80*n),
		sim.WithStepHook(hook),
		sim.WithStepHook(ticker.Hook()),
	)
	if safeViolations > 0 {
		t.Errorf("unison safety violated %d times after stabilization", safeViolations)
	}
	if ticker.Min() == 0 {
		t.Error("some process never ticked after stabilization (liveness)")
	}
	if d := MaxDrift(u, net, res.Final); d > 1 {
		t.Errorf("drift %d > 1 in a normal configuration", d)
	}
}

func TestNormalPredicateClosedForUnison(t *testing.T) {
	g := graph.Ring(6)
	u := New(DefaultPeriod(g.N()))
	comp := core.Compose(u)
	net := sim.NewNetwork(g)
	start := sim.InitialConfiguration(comp, net)
	for _, df := range sim.StandardDaemonFactories() {
		if err := checker.CheckClosure(net, comp, df.New(1), start, NormalPredicate(u, net), 3_000); err != nil {
			t.Errorf("normal set not closed under %s: %v", df.Name, err)
		}
	}
}

func TestExhaustiveUnisonConvergenceTinyRing(t *testing.T) {
	// Exhaustive convergence of U ∘ SDR on a 3-ring with K=4: from every
	// possible configuration, under every daemon choice, the legitimate set
	// is reached and never left.
	if testing.Short() {
		t.Skip("exhaustive exploration skipped in -short mode")
	}
	g := graph.Ring(3)
	u := New(4)
	comp := core.Compose(u)
	net := sim.NewNetwork(g)

	perProcess := make([][]sim.State, net.N())
	for p := 0; p < net.N(); p++ {
		perProcess[p] = comp.EnumerateStates(p, net)
	}
	var starts []*sim.Configuration
	for _, a := range perProcess[0] {
		for _, b := range perProcess[1] {
			for _, c := range perProcess[2] {
				starts = append(starts, sim.NewConfiguration([]sim.State{a.Clone(), b.Clone(), c.Clone()}))
			}
		}
	}
	report, err := checker.Explore(net, comp, starts, checker.ExploreOptions{
		MaxConfigurations: 600_000,
		Legitimate:        NormalPredicate(u, net),
	})
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	if !report.Complete {
		t.Fatalf("exploration incomplete after %d configurations", report.Configurations)
	}
	if report.TerminalConfigurations != 0 {
		t.Errorf("U ∘ SDR should have no terminal configuration (unison is live), found %d", report.TerminalConfigurations)
	}
}

func TestUncooperativeVariantStillStabilizes(t *testing.T) {
	// The A1 ablation changes efficiency, not correctness: the uncooperative
	// composition still converges to normal configurations.
	g := graph.Ring(7)
	u := New(DefaultPeriod(g.N()))
	comp := core.Compose(u, core.WithUncooperativeResets())
	net := sim.NewNetwork(g)
	rng := rand.New(rand.NewSource(8))
	start := faults.MustRandomConfiguration(comp, net, rng)
	res := sim.NewEngine(net, comp, sim.NewDistributedRandomDaemon(rng, 0.5)).Run(start,
		sim.WithMaxSteps(500_000),
		sim.WithLegitimate(core.NormalPredicate(u, net)),
		sim.WithStopWhenLegitimate(),
	)
	if !res.LegitimateReached {
		t.Fatal("the uncooperative composition did not stabilize")
	}
}

func TestTickCounter(t *testing.T) {
	tc := NewTickCounter(3)
	hook := tc.Hook()
	hook(sim.StepInfo{Activated: []int{0, 2}, Rules: []string{core.InnerRuleName(RuleTick), "SDR:RB"}})
	hook(sim.StepInfo{Activated: []int{0}, Rules: []string{core.InnerRuleName(RuleTick)}})
	counts := tc.Counts()
	if counts[0] != 2 || counts[1] != 0 || counts[2] != 0 {
		t.Errorf("counts = %v, want [2 0 0]", counts)
	}
	if tc.Min() != 0 {
		t.Errorf("Min = %d, want 0", tc.Min())
	}
	standalone := NewStandaloneTickCounter(2)
	standalone.Hook()(sim.StepInfo{Activated: []int{1}, Rules: []string{RuleTick}})
	if got := standalone.Counts(); got[1] != 1 {
		t.Errorf("standalone counter = %v, want a tick at process 1", got)
	}
	if empty := NewTickCounter(0); empty.Min() != 0 {
		t.Error("Min of an empty counter is 0")
	}
}

func TestQuickSafetyPreservedByTicks(t *testing.T) {
	// Property (Lemma 17): from any configuration satisfying P_ICorrect
	// everywhere, one synchronous step of Algorithm U preserves it.
	g := graph.Ring(5)
	u := New(9)
	alg := core.NewStandalone(u)
	net := sim.NewNetwork(g)
	safety := StandaloneSafetyPredicate(u, g)

	property := func(raw [5]uint8) bool {
		states := make([]sim.State, 5)
		base := int(raw[0]) % u.K()
		for i := range states {
			// Build configurations that satisfy safety by construction:
			// every clock within ±1 of a base value.
			offset := int(raw[i])%3 - 1
			states[i] = ClockState{C: mod(base+offset, u.K())}
		}
		cfg := sim.NewConfiguration(states)
		if !safety(cfg) {
			return true // only configurations satisfying safety are premises
		}
		res := sim.NewEngine(net, alg, sim.SynchronousDaemon{}).Run(cfg, sim.WithMaxSteps(1))
		return safety(res.Final)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
