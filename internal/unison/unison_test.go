package unison

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdr/internal/core"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(1) must panic: the period must be at least 2")
		}
	}()
	New(1)
}

func TestValidatePeriod(t *testing.T) {
	net := sim.NewNetwork(graph.Ring(5))
	if err := New(6).ValidatePeriod(net); err != nil {
		t.Errorf("K=6 > n=5 should be accepted: %v", err)
	}
	if err := New(5).ValidatePeriod(net); err == nil {
		t.Error("K=5 = n must be rejected (the paper requires K > n)")
	}
}

func TestClockStateBasics(t *testing.T) {
	s := ClockState{C: 3}
	if !s.Equal(s.Clone()) {
		t.Error("clone must equal the original")
	}
	if s.Equal(ClockState{C: 4}) {
		t.Error("different clocks must not be equal")
	}
	if s.Equal(BPVState{R: 3}) {
		t.Error("a clock state must not equal a foreign state type")
	}
	if s.String() != "c=3" {
		t.Errorf("String = %q, want c=3", s.String())
	}
}

func TestResettableContract(t *testing.T) {
	u := New(7)
	net := sim.NewNetwork(graph.Ring(5))
	if u.Name() == "" {
		t.Error("name must not be empty")
	}
	if !u.IsReset(0, net, u.ResetState(0, net)) {
		t.Error("the reset state must satisfy P_reset (Requirement 2e)")
	}
	if !u.IsReset(0, net, u.InitialInner(0, net)) {
		t.Error("γ_init is the all-zero configuration, which is the reset state")
	}
	if u.IsReset(0, net, ClockState{C: 3}) {
		t.Error("a non-zero clock is not the reset state")
	}
	if err := core.CheckRequirements(u, net); err != nil {
		t.Errorf("Algorithm U must satisfy the composition requirements: %v", err)
	}
	if got := len(u.EnumerateInner(0, net)); got != 7 {
		t.Errorf("EnumerateInner returned %d states, want K=7", got)
	}
	// The indexed enumeration must agree positionally.
	states := u.EnumerateInner(0, net)
	if got := u.InnerStateCount(0, net); got != len(states) {
		t.Fatalf("InnerStateCount = %d, want %d", got, len(states))
	}
	for i, want := range states {
		if got := u.InnerStateAt(0, net, i); !got.Equal(want) {
			t.Fatalf("InnerStateAt(%d) = %s, want %s", i, got, want)
		}
	}
}

func TestCircularDistance(t *testing.T) {
	cases := []struct {
		a, b, k, want int
	}{
		{0, 0, 10, 0},
		{0, 1, 10, 1},
		{1, 0, 10, 1},
		{0, 9, 10, 1},
		{9, 0, 10, 1},
		{2, 7, 10, 5},
		{7, 2, 10, 5},
		{3, 3, 4, 0},
	}
	for _, c := range cases {
		if got := CircularDistance(c.a, c.b, c.k); got != c.want {
			t.Errorf("CircularDistance(%d,%d,%d) = %d, want %d", c.a, c.b, c.k, got, c.want)
		}
	}
}

func TestQuickCircularDistanceProperties(t *testing.T) {
	// Symmetry, range and the triangle property of the circular distance.
	f := func(a, b uint8, kRaw uint8) bool {
		k := int(kRaw%20) + 2
		x, y := int(a)%k, int(b)%k
		d := CircularDistance(x, y, k)
		if d != CircularDistance(y, x, k) {
			return false
		}
		if d < 0 || d > k/2 {
			return false
		}
		return (d == 0) == (x == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestICorrectAndGuards(t *testing.T) {
	u := New(6)
	g := graph.Path(3)
	net := sim.NewNetwork(g)

	mk := func(values ...int) *sim.Configuration {
		states := make([]sim.State, len(values))
		for i, v := range values {
			states[i] = ClockState{C: v}
		}
		return sim.NewConfiguration(states)
	}
	iview := func(c *sim.Configuration, p int) core.InnerView {
		return core.NewStandaloneView(net.View(c, p))
	}

	// Clocks 0-1-2: all correct; wrap-around 5-0-1 also correct.
	for _, cfg := range []*sim.Configuration{mk(0, 1, 2), mk(5, 0, 1)} {
		for p := 0; p < 3; p++ {
			if !u.ICorrect(iview(cfg, p)) {
				t.Errorf("process %d should be I-correct in %s", p, cfg)
			}
		}
	}
	// Clocks 0-2-2: process 0 and 1 disagree by 2.
	bad := mk(0, 2, 2)
	if u.ICorrect(iview(bad, 0)) || u.ICorrect(iview(bad, 1)) {
		t.Error("a drift of 2 must be detected as incorrect")
	}
	if !u.ICorrect(iview(bad, 2)) {
		t.Error("process 2 only sees its neighbour at distance 0 and is correct")
	}

	// The tick guard: a process may tick when every neighbour is at its value
	// or one ahead.
	rules := u.InnerRules()
	if len(rules) != 1 || rules[0].Name != RuleTick {
		t.Fatalf("Algorithm U has one rule named %q", RuleTick)
	}
	tick := rules[0]
	cfg := mk(1, 1, 2)
	if !tick.Guard(iview(cfg, 0)) {
		t.Error("process 0 (neighbour at same value) should be allowed to tick")
	}
	if !tick.Guard(iview(cfg, 1)) {
		t.Error("process 1 (neighbours at 1 and 2) should be allowed to tick")
	}
	if tick.Guard(iview(cfg, 2)) {
		t.Error("process 2 (neighbour one behind) must wait")
	}
	next := tick.Action(iview(cfg, 1))
	if next.(ClockState).C != 2 {
		t.Errorf("tick increments the clock: got %v", next)
	}

	// Wrap-around: at K-1 with neighbours at K-1 or 0 the process ticks to 0.
	wrap := mk(5, 5, 0)
	if !tick.Guard(iview(wrap, 1)) {
		t.Error("process 1 should be allowed to tick across the wrap-around")
	}
	if got := tick.Action(iview(wrap, 1)).(ClockState).C; got != 0 {
		t.Errorf("ticking at K-1 wraps to 0, got %d", got)
	}
}

func TestStandaloneUnisonFromInitSatisfiesSpecification(t *testing.T) {
	// Theorem 5: starting from γ_init, Algorithm U alone satisfies safety
	// always and liveness (every clock keeps incrementing).
	topologies := []*graph.Graph{graph.Ring(6), graph.Path(5), graph.RandomConnected(7, 0.4, rand.New(rand.NewSource(2)))}
	for _, g := range topologies {
		u := New(DefaultPeriod(g.N()))
		alg := core.NewStandalone(u)
		net := sim.NewNetwork(g)
		safety := StandaloneSafetyPredicate(u, g)
		ticker := NewStandaloneTickCounter(g.N())

		violations := 0
		hook := func(info sim.StepInfo) {
			if !safety(info.After) {
				violations++
			}
		}
		daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(5)), 0.5)
		eng := sim.NewEngine(net, alg, daemon)
		res := eng.Run(sim.InitialConfiguration(alg, net),
			sim.WithMaxSteps(60*g.N()),
			sim.WithStepHook(hook),
			sim.WithStepHook(ticker.Hook()),
		)
		if violations > 0 {
			t.Errorf("n=%d: unison safety violated %d times", g.N(), violations)
		}
		if res.Terminated {
			t.Errorf("n=%d: Algorithm U must never terminate from γ_init (Lemma 18)", g.N())
		}
		if ticker.Min() == 0 {
			t.Errorf("n=%d: some process never ticked in %d steps (liveness, Lemma 19)", g.N(), res.Steps)
		}
	}
}

func TestStandaloneUnisonFreezesWhenIncorrect(t *testing.T) {
	// Property behind Lemma 20: started from a configuration that is not
	// correct everywhere, the standalone algorithm eventually freezes (the
	// incorrect processes never move, and the wave of allowed moves dies out
	// within 3D per process).
	g := graph.Path(6)
	u := New(8)
	alg := core.NewStandalone(u)
	net := sim.NewNetwork(g)
	states := []sim.State{
		ClockState{C: 0}, ClockState{C: 4}, ClockState{C: 4},
		ClockState{C: 4}, ClockState{C: 4}, ClockState{C: 4},
	}
	start := sim.NewConfiguration(states)
	res := sim.NewEngine(net, alg, sim.SynchronousDaemon{}).Run(start, sim.WithMaxSteps(10_000))
	if !res.Terminated {
		t.Fatal("an incorrect standalone configuration must lead to a terminal (frozen) configuration")
	}
	if res.MaxMovesPerProcess > MaxStandaloneMovesPerProcess(g.Diameter()) {
		t.Errorf("a process moved %d times, exceeding the 3D bound of Lemma 20", res.MaxMovesPerProcess)
	}
	// The frozen processes adjacent to the fault never moved.
	if res.MovesPerProcess[0] != 0 || res.MovesPerProcess[1] != 0 {
		t.Errorf("the processes adjacent to the inconsistency must never move, got %v", res.MovesPerProcess)
	}
}

func TestMaxDrift(t *testing.T) {
	u := New(10)
	g := graph.Ring(4)
	net := sim.NewNetwork(g)
	states := make([]sim.State, 4)
	// Ring edges {0,1},{1,2},{2,3},{3,0}; clocks 0-2-1-1 put a drift of 2 on
	// edge {0,1} and a drift of 1 elsewhere.
	for i, v := range []int{0, 2, 1, 1} {
		states[i] = core.ComposedState{SDR: core.CleanSDRState(), Inner: ClockState{C: v}}
	}
	cfg := sim.NewConfiguration(states)
	if got := MaxDrift(u, net, cfg); got != 2 {
		t.Errorf("MaxDrift = %d, want 2", got)
	}
	states[1] = core.ComposedState{SDR: core.CleanSDRState(), Inner: ClockState{C: 1}}
	if got := MaxDrift(u, net, sim.NewConfiguration(states)); got != 1 {
		t.Errorf("MaxDrift = %d, want 1", got)
	}
}

func TestDefaultPeriod(t *testing.T) {
	if DefaultPeriod(10) != 11 {
		t.Errorf("DefaultPeriod(10) = %d, want 11", DefaultPeriod(10))
	}
}

func TestBoundsFormulas(t *testing.T) {
	if MaxStabilizationRounds(10) != 30 {
		t.Errorf("MaxStabilizationRounds(10) = %d, want 30", MaxStabilizationRounds(10))
	}
	// (3D+3)n² + (3D+1)(n-1) + 1 with n=4, D=2: 9·16 + 7·3 + 1 = 166.
	if got := MaxStabilizationMoves(4, 2); got != 166 {
		t.Errorf("MaxStabilizationMoves(4,2) = %d, want 166", got)
	}
	if MaxStandaloneMovesPerProcess(5) != 15 {
		t.Errorf("MaxStandaloneMovesPerProcess(5) = %d, want 15", MaxStandaloneMovesPerProcess(5))
	}
}
