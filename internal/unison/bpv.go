package unison

import (
	"fmt"
	"strconv"

	"sdr/internal/graph"
	"sdr/internal/sim"
)

// BPV is the baseline self-stabilizing asynchronous unison in the style of
// Boulinier, Petit and Villain (PODC 2004), the algorithm the paper compares
// U ∘ SDR against in Section 5.3.
//
// Each process holds an extended clock value in the "tailed ring"
// χ = {-Alpha, ..., -1} ∪ {0, ..., K-1}: negative values form the reset tail
// and non-negative values the unison ring. Two actions drive the protocol:
//
//   - the normal action NA increments the clock (φ(x) = x+1, wrapping K-1 to
//     0) when the process is a local minimum: every neighbour is on time or
//     one increment ahead (ring) / not behind (tail), and a process at the
//     end of the tail only enters the ring when all its neighbours are
//     around 0;
//   - the reset action RA sends a ring process whose neighbourhood is
//     incoherent (some neighbour more than one increment away) back to the
//     bottom of the tail (-Alpha).
//
// The parameters follow the paper's description of [11]: K must exceed the
// cyclomatic characteristic of the network and Alpha ≥ T_G - 2 where T_G is
// the length of the longest chordless cycle. ParametersFor derives legal
// values for a given topology.
//
// The reproduction is used as a move-complexity comparator (experiment E6);
// its stabilization time in moves is O(D·n³ + α·n²) versus O(D·n²) for
// U ∘ SDR.
type BPV struct {
	k     int
	alpha int
}

var _ sim.Algorithm = (*BPV)(nil)

// BPVState is the extended clock of the baseline: R ∈ {-Alpha, ..., K-1}.
type BPVState struct {
	// R is the extended clock value (negative values are tail values).
	R int
}

var _ sim.State = BPVState{}

// Clone implements sim.State.
func (s BPVState) Clone() sim.State { return BPVState{R: s.R} }

// Equal implements sim.State.
func (s BPVState) Equal(other sim.State) bool {
	o, ok := other.(BPVState)
	return ok && o.R == s.R
}

// String implements sim.State.
func (s BPVState) String() string { return fmt.Sprintf("r=%d", s.R) }

// AppendStateKey implements sim.KeyAppender: exactly the String() bytes,
// without allocating.
func (s BPVState) AppendStateKey(dst []byte) []byte {
	dst = append(dst, "r="...)
	return strconv.AppendInt(dst, int64(s.R), 10)
}

// Key64 implements sim.KeyedState: the zigzagged extended clock always fits.
func (s BPVState) Key64() (uint64, bool) { return sim.ZigZag64(s.R), true }

// NewBPV returns the baseline with period k and tail length alpha.
// It panics when k < 2 or alpha < 1.
func NewBPV(k, alpha int) *BPV {
	if k < 2 {
		panic(fmt.Sprintf("unison: BPV period K must be at least 2, got %d", k))
	}
	if alpha < 1 {
		panic(fmt.Sprintf("unison: BPV tail length Alpha must be at least 1, got %d", alpha))
	}
	return &BPV{k: k, alpha: alpha}
}

// ParametersFor returns legal (K, Alpha) parameters for the given topology:
// K = n + 1 (which exceeds the cyclomatic characteristic, itself at most the
// longest cycle length ≤ n) and Alpha = max(T_G - 2, 1).
func ParametersFor(g *graph.Graph) (k, alpha int) {
	k = g.N() + 1
	tg := g.LongestChordlessCycle(0)
	alpha = tg - 2
	if alpha < 1 {
		alpha = 1
	}
	return k, alpha
}

// NewBPVFor returns the baseline instantiated with ParametersFor(g).
func NewBPVFor(g *graph.Graph) *BPV {
	return NewBPV(ParametersFor(g))
}

// K returns the period.
func (b *BPV) K() int { return b.k }

// Alpha returns the tail length.
func (b *BPV) Alpha() int { return b.alpha }

// UsesIdentifiers implements sim.IdentifierUser: the baseline is anonymous
// (guards compare extended clock values only).
func (b *BPV) UsesIdentifiers() bool { return false }

// Name implements sim.Algorithm.
func (b *BPV) Name() string { return fmt.Sprintf("BPV(K=%d,α=%d)", b.k, b.alpha) }

// InitialState implements sim.Algorithm: the canonical initial configuration
// has every clock at 0.
func (b *BPV) InitialState(int, *sim.Network) sim.State { return BPVState{R: 0} }

// EnumerateStates implements sim.Enumerable: all values of the tailed ring.
func (b *BPV) EnumerateStates(int, *sim.Network) []sim.State {
	var out []sim.State
	for r := -b.alpha; r < b.k; r++ {
		out = append(out, BPVState{R: r})
	}
	return out
}

// StateCount implements sim.IndexedEnumerable.
func (b *BPV) StateCount(int, *sim.Network) int { return b.alpha + b.k }

// StateAt implements sim.IndexedEnumerable: the enumeration is the extended
// clock values -Alpha, ..., K-1 in increasing order.
func (b *BPV) StateAt(_ int, _ *sim.Network, i int) sim.State {
	return BPVState{R: i - b.alpha}
}

// Rule names of the baseline.
const (
	// RuleBPVNormal is the clock-increment action NA.
	RuleBPVNormal = "NA"
	// RuleBPVReset is the correction action RA.
	RuleBPVReset = "RA"
)

// Rules implements sim.Algorithm.
func (b *BPV) Rules() []sim.Rule {
	return []sim.Rule{
		{
			Name:  RuleBPVNormal,
			Guard: func(v sim.View) bool { return b.canIncrement(v) },
			Action: func(v sim.View) sim.State {
				return BPVState{R: b.phi(bpvClock(v.Self()))}
			},
		},
		{
			Name:  RuleBPVReset,
			Guard: func(v sim.View) bool { return b.mustReset(v) },
			Action: func(v sim.View) sim.State {
				return BPVState{R: -b.alpha}
			},
		},
	}
}

func bpvClock(s sim.State) int {
	cs, ok := s.(BPVState)
	if !ok {
		panic(fmt.Sprintf("unison: expected BPVState, got %T", s))
	}
	return cs.R
}

// phi is the increment function on the tailed ring: tail values move towards
// 0, ring values wrap modulo K.
func (b *BPV) phi(x int) int {
	if x == b.k-1 {
		return 0
	}
	return x + 1
}

// similar reports whether two extended clock values are at most one
// increment apart: circular distance on the ring, linear distance when a
// tail value is involved.
func (b *BPV) similar(x, y int) bool {
	if x < 0 || y < 0 {
		d := x - y
		if d < 0 {
			d = -d
		}
		return d <= 1
	}
	return CircularDistance(x, y, b.k) <= 1
}

// canFollow reports whether a process with value x may increment given a
// neighbour at value y.
func (b *BPV) canFollow(x, y int) bool {
	switch {
	case x < -1:
		// Deep in the tail: the process climbs whenever it is a local
		// minimum in the extended order (every ring value counts as above
		// every tail value).
		return y >= x
	case x == -1:
		// Leaving the tail: every neighbour must be around the ring origin
		// so that entering the ring immediately satisfies the drift bound.
		return y == -1 || y == 0 || y == 1
	default:
		// Ring: the neighbour must be on time or one increment ahead.
		return y >= 0 && (y == x || y == (x+1)%b.k)
	}
}

func (b *BPV) canIncrement(v sim.View) bool {
	x := bpvClock(v.Self())
	for i := 0; i < v.Degree(); i++ {
		if !b.canFollow(x, bpvClock(v.Neighbor(i))) {
			return false
		}
	}
	return true
}

func (b *BPV) mustReset(v sim.View) bool {
	x := bpvClock(v.Self())
	if x < 0 {
		return false
	}
	for i := 0; i < v.Degree(); i++ {
		if !b.similar(x, bpvClock(v.Neighbor(i))) {
			return true
		}
	}
	return false
}

// LegitimatePredicate returns the legitimacy predicate of the baseline on g:
// every clock is in the ring and every edge satisfies the unison drift bound.
func (b *BPV) LegitimatePredicate(g *graph.Graph) sim.Predicate {
	return func(c *sim.Configuration) bool {
		for u := 0; u < c.N(); u++ {
			if bpvClock(c.State(u)) < 0 {
				return false
			}
		}
		for _, e := range g.Edges() {
			if CircularDistance(bpvClock(c.State(e[0])), bpvClock(c.State(e[1])), b.k) > 1 {
				return false
			}
		}
		return true
	}
}

// MaxBaselineStabilizationMoves is the asymptotic move bound of the baseline
// reported by the paper (as analysed in [23]): O(D·n³ + α·n²). The constant
// is unspecified in the paper; the returned value D·n³ + α·n² is used purely
// for plotting the expected shape next to measurements.
func MaxBaselineStabilizationMoves(n, d, alpha int) int {
	return d*n*n*n + alpha*n*n
}
