package unison

import (
	"math/rand"
	"strings"
	"testing"

	"sdr/internal/faults"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

func TestNewBPVValidation(t *testing.T) {
	for _, c := range []struct{ k, alpha int }{{1, 3}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBPV(%d,%d) must panic", c.k, c.alpha)
				}
			}()
			NewBPV(c.k, c.alpha)
		}()
	}
	b := NewBPV(6, 2)
	if b.K() != 6 || b.Alpha() != 2 {
		t.Errorf("accessors returned K=%d α=%d", b.K(), b.Alpha())
	}
	if !strings.Contains(b.Name(), "BPV") {
		t.Errorf("name %q should mention BPV", b.Name())
	}
}

func TestParametersFor(t *testing.T) {
	g := graph.Ring(6)
	k, alpha := ParametersFor(g)
	if k != 7 {
		t.Errorf("K = %d, want n+1 = 7", k)
	}
	if alpha != 4 {
		t.Errorf("α = %d, want T_G - 2 = 4 for a 6-ring", alpha)
	}
	// Trees have no cycles; α falls back to 1.
	_, alphaTree := ParametersFor(graph.Path(5))
	if alphaTree != 1 {
		t.Errorf("α = %d for a path, want the minimum 1", alphaTree)
	}
}

func TestBPVStateBasics(t *testing.T) {
	s := BPVState{R: -2}
	if !s.Equal(s.Clone()) || s.Equal(BPVState{R: 0}) || s.Equal(ClockState{C: -2}) {
		t.Error("BPVState equality must be by value and type")
	}
	if s.String() != "r=-2" {
		t.Errorf("String = %q, want r=-2", s.String())
	}
}

func TestBPVEnumerateStates(t *testing.T) {
	b := NewBPV(5, 3)
	states := b.EnumerateStates(0, sim.NewNetwork(graph.Ring(4)))
	if len(states) != 8 {
		t.Fatalf("enumerated %d states, want α+K = 8", len(states))
	}
	if states[0].(BPVState).R != -3 || states[len(states)-1].(BPVState).R != 4 {
		t.Errorf("state range is [%v, %v], want [-3, 4]", states[0], states[len(states)-1])
	}
	// The indexed enumeration must agree positionally.
	net := sim.NewNetwork(graph.Ring(4))
	if got := b.StateCount(0, net); got != len(states) {
		t.Fatalf("StateCount = %d, want %d", got, len(states))
	}
	for i, want := range states {
		if got := b.StateAt(0, net, i); !got.Equal(want) {
			t.Fatalf("StateAt(%d) = %s, want %s", i, got, want)
		}
	}
}

func TestBPVFromInitBehavesAsUnison(t *testing.T) {
	// From the all-zero configuration the baseline is a correct unison: the
	// legitimate predicate always holds and clocks keep incrementing.
	g := graph.Ring(6)
	b := NewBPVFor(g)
	net := sim.NewNetwork(g)
	legit := b.LegitimatePredicate(g)

	violations := 0
	ticks := make([]int, g.N())
	hook := func(info sim.StepInfo) {
		if !legit(info.After) {
			violations++
		}
		for i, u := range info.Activated {
			if info.Rules[i] == RuleBPVNormal {
				ticks[u]++
			}
		}
	}
	daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(9)), 0.5)
	res := sim.NewEngine(net, b, daemon).Run(sim.InitialConfiguration(b, net),
		sim.WithMaxSteps(60*g.N()),
		sim.WithStepHook(hook),
	)
	if violations > 0 {
		t.Errorf("the baseline violated its legitimate predicate %d times from γ_init", violations)
	}
	if res.Terminated {
		t.Error("the baseline must not terminate from γ_init")
	}
	for u, c := range ticks {
		if c == 0 {
			t.Errorf("process %d never executed the normal action", u)
		}
	}
}

func TestBPVStabilizesFromRandomConfigurations(t *testing.T) {
	topologies := []*graph.Graph{graph.Ring(6), graph.RandomConnected(8, 0.3, rand.New(rand.NewSource(12)))}
	for _, g := range topologies {
		b := NewBPVFor(g)
		net := sim.NewNetwork(g)
		legit := b.LegitimatePredicate(g)
		for trial := 0; trial < 5; trial++ {
			rng := rand.New(rand.NewSource(int64(trial * 31)))
			start := faults.MustRandomConfiguration(b, net, rng)
			res := sim.NewEngine(net, b, sim.NewDistributedRandomDaemon(rng, 0.5)).Run(start,
				sim.WithMaxSteps(400_000),
				sim.WithLegitimate(legit),
				sim.WithStopWhenLegitimate(),
			)
			if !res.LegitimateReached {
				t.Fatalf("n=%d trial %d: the baseline did not stabilize from %s", g.N(), trial, start)
			}
		}
	}
}

func TestBPVLegitimatePredicate(t *testing.T) {
	g := graph.Path(3)
	b := NewBPV(5, 2)
	legit := b.LegitimatePredicate(g)
	mk := func(values ...int) *sim.Configuration {
		states := make([]sim.State, len(values))
		for i, v := range values {
			states[i] = BPVState{R: v}
		}
		return sim.NewConfiguration(states)
	}
	if !legit(mk(1, 2, 2)) {
		t.Error("ring values within drift 1 are legitimate")
	}
	if legit(mk(-1, 0, 0)) {
		t.Error("a tail value is not legitimate")
	}
	if legit(mk(0, 2, 2)) {
		t.Error("a drift of 2 is not legitimate")
	}
}

func TestMaxBaselineStabilizationMoves(t *testing.T) {
	if got := MaxBaselineStabilizationMoves(4, 2, 3); got != 2*64+3*16 {
		t.Errorf("MaxBaselineStabilizationMoves(4,2,3) = %d, want %d", got, 2*64+3*16)
	}
}
