// Package unison implements the asynchronous unison instantiations of the
// paper (Section 5): Algorithm U, its self-stabilizing composition U ∘ SDR,
// and the Boulinier-Petit-Villain baseline the paper compares against.
//
// The unison problem: every process holds a periodic clock (period K); each
// process must increment its clock infinitely often (liveness) while the
// clocks of neighbours never differ by more than one increment (safety).
package unison

import (
	"fmt"
	"strconv"

	"sdr/internal/core"
	"sdr/internal/sim"
)

// ClockState is the local state of Algorithm U: a single clock value
// c_u ∈ {0, ..., K-1}.
type ClockState struct {
	// C is the clock value.
	C int
}

var _ sim.State = ClockState{}

// Clone implements sim.State.
func (s ClockState) Clone() sim.State { return ClockState{C: s.C} }

// Equal implements sim.State.
func (s ClockState) Equal(other sim.State) bool {
	o, ok := other.(ClockState)
	return ok && o.C == s.C
}

// String implements sim.State.
func (s ClockState) String() string { return fmt.Sprintf("c=%d", s.C) }

// AppendStateKey implements sim.KeyAppender: exactly the String() bytes,
// without allocating.
func (s ClockState) AppendStateKey(dst []byte) []byte {
	dst = append(dst, "c="...)
	return strconv.AppendInt(dst, int64(s.C), 10)
}

// Key64 implements sim.KeyedState: the zigzagged clock always fits.
func (s ClockState) Key64() (uint64, bool) { return sim.ZigZag64(s.C), true }

// Unison is Algorithm U (Algorithm 2 of the paper): anonymous, non
// self-stabilizing unison with period K > n, designed to be composed with
// SDR. It implements core.Resettable.
type Unison struct {
	k int
}

var (
	_ core.Resettable      = (*Unison)(nil)
	_ core.InnerEnumerable = (*Unison)(nil)
)

// New returns Algorithm U with period k. It panics when k < 2; the
// requirement K > n is network-dependent and checked by ValidatePeriod.
func New(k int) *Unison {
	if k < 2 {
		panic(fmt.Sprintf("unison: period K must be at least 2, got %d", k))
	}
	return &Unison{k: k}
}

// K returns the period.
func (u *Unison) K() int { return u.k }

// UsesIdentifiers implements sim.IdentifierUser: Algorithm U is anonymous —
// its rules and predicates (including P_reset and P_ICorrect used by the
// SDR composition) read clock values only — so memoized guard caches may be
// shared across processes with equal neighbourhood states.
func (u *Unison) UsesIdentifiers() bool { return false }

// ValidatePeriod checks the paper's requirement K > n for the given network.
func (u *Unison) ValidatePeriod(net *sim.Network) error {
	if u.k <= net.N() {
		return fmt.Errorf("unison: period K=%d must exceed the number of processes n=%d", u.k, net.N())
	}
	return nil
}

// Name implements core.Resettable.
func (u *Unison) Name() string { return fmt.Sprintf("U(K=%d)", u.k) }

// InitialInner implements core.Resettable: in γ_init every clock is 0.
func (u *Unison) InitialInner(int, *sim.Network) sim.State { return ClockState{C: 0} }

// ResetState implements core.Resettable: the reset(u) macro sets c_u := 0.
func (u *Unison) ResetState(int, *sim.Network) sim.State { return ClockState{C: 0} }

// IsReset implements core.Resettable: P_reset(u) ≡ c_u = 0. The reset state
// is the same for every process, so the process index and network are unused.
func (u *Unison) IsReset(_ int, _ *sim.Network, inner sim.State) bool {
	s, ok := inner.(ClockState)
	return ok && s.C == 0
}

// clockOf extracts a clock value, panicking on foreign state types so that
// wiring mistakes surface immediately.
func clockOf(s sim.State) int {
	cs, ok := s.(ClockState)
	if !ok {
		panic(fmt.Sprintf("unison: expected ClockState, got %T", s))
	}
	return cs.C
}

// ok is P_Ok(u, v) ≡ c_v ∈ {(c_u-1)%K, c_u, (c_u+1)%K}.
func (u *Unison) ok(cu, cv int) bool {
	return cv == cu || cv == mod(cu+1, u.k) || cv == mod(cu-1, u.k)
}

// ICorrect implements core.Resettable:
// P_ICorrect(u) ≡ ∀v ∈ N(u), P_Ok(u, v).
func (u *Unison) ICorrect(v core.InnerView) bool {
	cu := clockOf(v.Self())
	for i := 0; i < v.Degree(); i++ {
		if !u.ok(cu, clockOf(v.Neighbor(i))) {
			return false
		}
	}
	return true
}

// pUp is P_Up(u) ≡ ∀v ∈ N(u), c_v ∈ {c_u, (c_u+1)%K}: u is on time or one
// increment late with respect to every neighbour, so it may tick.
func (u *Unison) pUp(v core.InnerView) bool {
	cu := clockOf(v.Self())
	for i := 0; i < v.Degree(); i++ {
		cv := clockOf(v.Neighbor(i))
		if cv != cu && cv != mod(cu+1, u.k) {
			return false
		}
	}
	return true
}

// RuleTick is the name of Algorithm U's single rule.
const RuleTick = "tick"

// InnerRules implements core.Resettable. The single rule is
// rule_U(u): P_Clean(u) ∧ P_Up(u) → c_u := (c_u + 1) % K.
// P_Clean is supplied by the view (vacuously true standalone); the
// composition additionally enforces P_ICorrect, which P_Up implies.
func (u *Unison) InnerRules() []core.InnerRule {
	return []core.InnerRule{{
		Name: RuleTick,
		Guard: func(v core.InnerView) bool {
			return v.Clean() && u.pUp(v)
		},
		Action: func(v core.InnerView) sim.State {
			return ClockState{C: mod(clockOf(v.Self())+1, u.k)}
		},
	}}
}

// EnumerateInner implements core.InnerEnumerable: all K clock values.
func (u *Unison) EnumerateInner(int, *sim.Network) []sim.State {
	out := make([]sim.State, u.k)
	for c := 0; c < u.k; c++ {
		out[c] = ClockState{C: c}
	}
	return out
}

// InnerStateCount implements core.InnerIndexedEnumerable.
func (u *Unison) InnerStateCount(int, *sim.Network) int { return u.k }

// InnerStateAt implements core.InnerIndexedEnumerable: the enumeration is
// the clock values in increasing order.
func (u *Unison) InnerStateAt(_ int, _ *sim.Network, i int) sim.State {
	return ClockState{C: i}
}

// mod returns x modulo k in [0, k).
func mod(x, k int) int {
	r := x % k
	if r < 0 {
		r += k
	}
	return r
}

// CircularDistance returns the circular distance between two clock values
// modulo k: min((a-b) mod k, (b-a) mod k). It is the drift measure used by
// the unison safety specification.
func CircularDistance(a, b, k int) int {
	d1 := mod(a-b, k)
	d2 := mod(b-a, k)
	if d1 < d2 {
		return d1
	}
	return d2
}
