package unison

import (
	"sdr/internal/core"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

// NewSelfStabilizing returns the self-stabilizing unison U ∘ SDR with period
// k (Theorem 6): the composition of Algorithm U with the cooperative reset.
func NewSelfStabilizing(k int) *core.Composed {
	return core.Compose(New(k))
}

// NewSelfStabilizingUncooperative returns the ablation variant of U ∘ SDR in
// which resets do not cooperate (see core.WithUncooperativeResets).
func NewSelfStabilizingUncooperative(k int) *core.Composed {
	return core.Compose(New(k), core.WithUncooperativeResets())
}

// DefaultPeriod returns the smallest period the paper allows for a network
// of n processes: K = n + 1 (the requirement is K > n).
func DefaultPeriod(n int) int { return n + 1 }

// MaxStabilizationRounds is the round bound of Theorem 7: U ∘ SDR stabilizes
// within at most 3n rounds.
func MaxStabilizationRounds(n int) int { return core.MaxResetRounds(n) }

// MaxStabilizationMoves is the move bound derived in Section 5.5 for
// Theorem 6: at most (3D+3)·n² + (3D+1)·(n-1) + 1 moves to reach a normal
// configuration, i.e. O(D·n²).
func MaxStabilizationMoves(n, d int) int {
	return (3*d+3)*n*n + (3*d+1)*(n-1) + 1
}

// MaxStandaloneMovesPerProcess is the bound of Lemma 20: in any execution of
// U (alone) starting from a configuration that is not clean-and-correct
// everywhere, each process moves at most 3D times.
func MaxStandaloneMovesPerProcess(d int) int { return 3 * d }

// NormalPredicate returns the legitimacy predicate of U ∘ SDR on the given
// network: the normal configurations of the composition (P_Clean ∧
// P_ICorrect everywhere), which is exactly the legitimate set used in the
// paper's self-stabilization proof.
func NormalPredicate(u *Unison, net *sim.Network) sim.Predicate {
	return core.NormalPredicate(u, net)
}

// SafetyPredicate returns the unison safety condition on the given network
// for composed states: the clocks of every two neighbours are at most one
// increment apart (circular distance ≤ 1 modulo K).
func SafetyPredicate(u *Unison, net *sim.Network) sim.Predicate {
	return func(c *sim.Configuration) bool {
		g := net.Graph()
		for _, e := range g.Edges() {
			a := clockOf(core.InnerPart(c.State(e[0])))
			b := clockOf(core.InnerPart(c.State(e[1])))
			if CircularDistance(a, b, u.K()) > 1 {
				return false
			}
		}
		return true
	}
}

// StandaloneSafetyPredicate is SafetyPredicate for plain (non-composed)
// ClockState configurations, used when running Algorithm U alone.
func StandaloneSafetyPredicate(u *Unison, g *graph.Graph) sim.Predicate {
	return func(c *sim.Configuration) bool {
		for _, e := range g.Edges() {
			a := clockOf(c.State(e[0]))
			b := clockOf(c.State(e[1]))
			if CircularDistance(a, b, u.K()) > 1 {
				return false
			}
		}
		return true
	}
}

// MaxDrift returns the maximum circular clock distance over all edges of the
// network in the given composed configuration. A value of at most 1 means
// the unison safety condition holds.
func MaxDrift(u *Unison, net *sim.Network, c *sim.Configuration) int {
	maxDrift := 0
	for _, e := range net.Graph().Edges() {
		a := clockOf(core.InnerPart(c.State(e[0])))
		b := clockOf(core.InnerPart(c.State(e[1])))
		if d := CircularDistance(a, b, u.K()); d > maxDrift {
			maxDrift = d
		}
	}
	return maxDrift
}

// TickCounter counts, per process, the number of clock increments (executions
// of the tick rule) observed through a step hook. It is used to check the
// liveness part of the unison specification on finite run prefixes.
type TickCounter struct {
	counts   []int
	ruleName string
}

// NewTickCounter returns a counter for a network of n processes observing
// executions of the composed algorithm (rule name "I:tick").
func NewTickCounter(n int) *TickCounter {
	return &TickCounter{counts: make([]int, n), ruleName: core.InnerRuleName(RuleTick)}
}

// NewStandaloneTickCounter returns a counter for runs of Algorithm U alone
// (rule name "tick").
func NewStandaloneTickCounter(n int) *TickCounter {
	return &TickCounter{counts: make([]int, n), ruleName: RuleTick}
}

// Hook returns the sim.StepHook to register with sim.WithStepHook.
func (t *TickCounter) Hook() sim.StepHook {
	return func(info sim.StepInfo) {
		for i, u := range info.Activated {
			if info.Rules[i] == t.ruleName {
				t.counts[u]++
			}
		}
	}
}

// Counts returns the per-process tick counts.
func (t *TickCounter) Counts() []int {
	out := make([]int, len(t.counts))
	copy(out, t.counts)
	return out
}

// Min returns the minimum tick count over all processes.
func (t *TickCounter) Min() int {
	if len(t.counts) == 0 {
		return 0
	}
	minTicks := t.counts[0]
	for _, c := range t.counts[1:] {
		if c < minTicks {
			minTicks = c
		}
	}
	return minTicks
}
