package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"

	"sdr/internal/bench"
)

// BaselineSchemaVersion versions the on-disk baseline format; Compare
// refuses to diff baselines written by an incompatible schema.
const BaselineSchemaVersion = 1

// Meta fingerprints the environment a baseline was measured in. It is
// informational: Compare prints differing fingerprints but never fails on
// them (seeded move/round metrics are deterministic across hosts; only
// duration_ns is hardware-bound).
type Meta struct {
	// Commit is the VCS revision the campaign ran at.
	Commit string `json:"commit,omitempty"`
	// GoVersion is the runtime.Version() of the campaign binary.
	GoVersion string `json:"go_version,omitempty"`
	// Host is the machine fingerprint (hostname, OS and architecture).
	Host string `json:"host,omitempty"`
	// GoMaxProcs and NumCPU record the parallelism context of the run:
	// wall-clock metrics (duration_ns, phase_*) are only comparable between
	// baselines measured with similar CPU budgets.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"num_cpu,omitempty"`
	// Shards is the engine shard count the campaign ran with (omitted when
	// sequential), stamped by Snapshot rather than Fingerprint: it is a
	// property of the spec, not the host.
	Shards int `json:"shards,omitempty"`
	// CreatedAt is the RFC 3339 UTC snapshot time.
	CreatedAt string `json:"created_at,omitempty"`
}

var (
	fingerprintOnce sync.Once
	fingerprint     Meta
)

// Fingerprint returns the environment fingerprint (VCS commit, Go version,
// host), best-effort: a missing git binary or repository simply leaves
// Commit empty. It is the one helper behind both baseline Meta snapshots
// and the sdrd /v1/version endpoint, computed once per process (the commit
// lookup execs git).
func Fingerprint() Meta {
	fingerprintOnce.Do(func() {
		fingerprint = Meta{
			GoVersion:  runtime.Version(),
			Host:       runtime.GOOS + "/" + runtime.GOARCH,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		}
		if host, err := os.Hostname(); err == nil {
			fingerprint.Host = host + " " + fingerprint.Host
		}
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			fingerprint.Commit = strings.TrimSpace(string(out))
		}
	})
	return fingerprint
}

// CollectMeta stamps the environment fingerprint with the current time, the
// form baseline snapshots embed.
func CollectMeta() Meta {
	m := Fingerprint()
	m.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	return m
}

// Baseline is a versioned snapshot of a campaign's aggregates: the artifact
// committed under baselines/ and diffed by Compare.
type Baseline struct {
	SchemaVersion int `json:"schema_version"`
	// ID is the campaign id the snapshot came from.
	ID string `json:"id"`
	// Metric is the campaign's primary metric, the default Compare axis.
	Metric string `json:"metric"`
	// Meta fingerprints the measuring environment.
	Meta Meta `json:"meta,omitzero"`
	// Cells are the per-cell aggregates in sweep order.
	Cells []CellAggregate `json:"cells"`
}

// Snapshot captures the campaign result as a baseline stamped with meta.
// Pass a zero Meta to keep the snapshot byte-reproducible; a non-zero meta
// additionally gains the spec's shard count (sequential campaigns omit it,
// keeping pre-existing baseline bytes unchanged).
func (r *Result) Snapshot(meta Meta) Baseline {
	if meta != (Meta{}) && r.Spec.Shards > 1 {
		meta.Shards = r.Spec.Shards
	}
	return Baseline{
		SchemaVersion: BaselineSchemaVersion,
		ID:            r.Spec.ID,
		Metric:        r.Spec.PrimaryMetric(),
		Meta:          meta,
		Cells:         r.Cells,
	}
}

// WriteBaseline writes the baseline as indented JSON.
func WriteBaseline(w io.Writer, b Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("campaign: encode baseline: %w", err)
	}
	return nil
}

// LoadBaseline reads a baseline file and checks its schema version.
func LoadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, fmt.Errorf("campaign: read baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("campaign: parse baseline %s: %w", path, err)
	}
	if b.SchemaVersion != BaselineSchemaVersion {
		return Baseline{}, fmt.Errorf("campaign: baseline %s has schema version %d, this binary writes %d",
			path, b.SchemaVersion, BaselineSchemaVersion)
	}
	return b, nil
}

// Table renders the campaign aggregates as a bench table (one row per cell),
// so -campaign output slots into the same text/markdown/JSON pipeline as the
// experiment tables. The table id is the upper-cased campaign id.
func (r *Result) Table() bench.Table {
	metric := r.Spec.PrimaryMetric()
	minTrials, maxTrials := r.Spec.trialBounds()
	policy := fmt.Sprintf("%d trials per cell", minTrials)
	if r.Spec.CITarget > 0 {
		policy = fmt.Sprintf("%d-%d trials per cell, stop at CI ±%.1f%%", minTrials, maxTrials, r.Spec.CITarget*100)
	}
	// The churn column only appears when the campaign sweeps churn, so
	// static campaigns render exactly as before.
	hasChurn := len(r.Spec.Churns) > 0
	cols := []string{"algorithm", "topology", "n", "daemon", "fault"}
	if hasChurn {
		cols = append(cols, "churn")
	}
	t := bench.Table{
		ID:    strings.ToUpper(r.Spec.ID),
		Title: fmt.Sprintf("campaign %s (%s, base seed %d)", r.Spec.ID, policy, r.Spec.Seed),
		Columns: append(cols, "trials",
			metric+"(mean±ci95)", metric+"(p50)", metric+"(p95)", metric+"(p99)", "ok"),
	}
	for _, c := range r.Cells {
		row := []string{c.Cell.Algorithm, c.Cell.Topology, fmt.Sprintf("%d", c.Cell.N), c.Cell.Daemon, c.Cell.Fault}
		if hasChurn {
			row = append(row, c.Cell.Churn)
		}
		row = append(row, fmt.Sprintf("%d", c.Trials))
		if c.Skipped {
			t.AddRow(append(row, "skipped", "-", "-", "-", "yes")...)
			continue
		}
		ok := "yes"
		if !c.OK {
			ok = "no"
			t.Violations++
		}
		// Cells whose runs never produced the metric (e.g. stab_* when no
		// run reached legitimacy) render as unmeasured, not as zero cost.
		mean, p50, p95, p99 := "unmeasured", "-", "-", "-"
		if m, measured := c.Metrics[metric]; measured {
			mean = fmt.Sprintf("%.1f±%.1f", m.Mean, m.CIHalfWidth())
			p50 = fmt.Sprintf("%.1f", m.P50)
			p95 = fmt.Sprintf("%.1f", m.P95)
			p99 = fmt.Sprintf("%.1f", m.P99)
		}
		t.AddRow(append(row, mean, p50, p95, p99, ok)...)
	}
	return t
}
