package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// The JSONL stream is both the campaign's raw-result artifact and its
// checkpoint. Line one is a header carrying the full Spec; every further
// line is one TrialRecord, appended in (cell, trial) order as trials
// complete. Because per-trial seeds and adaptive stopping decisions are pure
// functions of the spec and the recorded values, resuming from any prefix of
// the stream reproduces the uninterrupted stream byte-for-byte (unless
// RecordTime injects wall-clock noise).

// fileHeader is the first line of a campaign JSONL stream.
type fileHeader struct {
	Type string `json:"type"`
	Spec Spec   `json:"spec"`
}

// Sink receives a campaign stream line by line: the header, then one
// TrialRecord per completed trial, in (cell, trial) order. Every WriteLine
// must be durable (or at least visible to readers) on return — the stream
// doubles as the checkpoint. The file sink behind Run and the in-memory
// record log of internal/server both implement it, which is what makes the
// served stream byte-identical to the offline JSONL file.
type Sink interface {
	WriteLine(v any) error
}

// MarshalLine renders one stream line (header or record) exactly as every
// sink writes it: compact JSON plus a trailing newline. Sharing the encoder
// is what pins served streams to offline files byte-for-byte.
func MarshalLine(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("campaign: encode record: %w", err)
	}
	return append(data, '\n'), nil
}

// ErrExists reports an existing JSONL sink opened without resume permission.
var ErrExists = errors.New("campaign: output exists (resume it or remove it)")

// sink appends JSONL lines to the campaign stream.
type sink struct {
	f *os.File
	w *bufio.Writer
}

// newSink creates the stream file and writes the header. It refuses to
// overwrite an existing file: interrupted campaigns are resumed, not
// silently restarted.
func newSink(path string, spec Spec) (*sink, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("%w: %s", ErrExists, path)
		}
		return nil, fmt.Errorf("campaign: create %s: %w", path, err)
	}
	s := &sink{f: f, w: bufio.NewWriter(f)}
	if err := s.WriteLine(fileHeader{Type: "campaign", Spec: spec}); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// resumeSink reopens an existing stream for appending, discarding a trailing
// partially written line (goodSize is the validated prefix length returned
// by readStream).
func resumeSink(path string, goodSize int64) (*sink, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: reopen %s: %w", path, err)
	}
	if err := f.Truncate(goodSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: truncate partial line of %s: %w", path, err)
	}
	if _, err := f.Seek(goodSize, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: seek %s: %w", path, err)
	}
	return &sink{f: f, w: bufio.NewWriter(f)}, nil
}

// WriteLine appends one JSON value as a line and flushes it, so every
// completed trial is durable as soon as it is recorded.
func (s *sink) WriteLine(v any) error {
	data, err := MarshalLine(v)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(data); err != nil {
		return fmt.Errorf("campaign: write record: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("campaign: flush record: %w", err)
	}
	return nil
}

// Close flushes and closes the stream.
func (s *sink) Close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return fmt.Errorf("campaign: flush stream: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("campaign: close stream: %w", err)
	}
	return nil
}

// readStream parses an existing campaign stream, validating its header
// against the spec, and returns the trial records in file order plus the
// byte length of the validated prefix (a trailing line interrupted mid-write
// is excluded; anything else malformed is an error).
func readStream(path string, spec Spec) (recs []TrialRecord, goodSize int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("campaign: open %s: %w", path, err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	sawHeader := false
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A non-terminated trailing line was cut off mid-write; the
			// resumed run rewrites it.
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("campaign: read %s: %w", path, err)
		}
		if !sawHeader {
			var h fileHeader
			if err := json.Unmarshal(line, &h); err != nil || h.Type != "campaign" {
				return nil, 0, fmt.Errorf("campaign: %s does not start with a campaign header", path)
			}
			if !specsEqual(h.Spec, spec) {
				return nil, 0, fmt.Errorf("campaign: %s was produced by a different spec; refusing to mix campaigns", path)
			}
			sawHeader = true
			goodSize += int64(len(line))
			continue
		}
		var rec TrialRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A corrupt line followed by further lines is not a clean
			// interruption; only a trailing partial line is recoverable.
			if _, peekErr := r.Peek(1); peekErr == io.EOF {
				break
			}
			return nil, 0, fmt.Errorf("campaign: corrupt record in %s: %w", path, err)
		}
		if rec.Type != "trial" {
			return nil, 0, fmt.Errorf("campaign: unexpected %q record in %s", rec.Type, path)
		}
		recs = append(recs, rec)
		goodSize += int64(len(line))
	}
	if !sawHeader {
		return nil, 0, fmt.Errorf("campaign: %s has no complete campaign header", path)
	}
	return recs, goodSize, nil
}

// specsEqual compares two specs via their canonical JSON encoding.
func specsEqual(a, b Spec) bool {
	ja, errA := json.Marshal(a)
	jb, errB := json.Marshal(b)
	return errA == nil && errB == nil && bytes.Equal(ja, jb)
}
