package campaign

import (
	"fmt"
	"io"
	"math"

	"sdr/internal/stats"
)

// DefaultThreshold is the relative mean regression a comparison flags when
// no explicit threshold is given: +10% on the compared metric.
const DefaultThreshold = 0.10

// CompareOptions configures a baseline comparison.
type CompareOptions struct {
	// Metric selects the compared metric; "" uses the old baseline's primary
	// metric (falling back to moves).
	Metric string
	// Threshold is the relative mean increase flagged as a regression
	// (0.10 = +10%); ≤ 0 means DefaultThreshold. All campaign metrics are
	// costs, so higher is always worse.
	Threshold float64
}

// Delta is the per-cell outcome of a comparison.
type Delta struct {
	Cell CellKey
	// Old and New are the compared aggregates (zero when Missing is set).
	Old, New stats.Aggregate
	// Delta is the relative mean change (new-old)/old; +Inf when a zero mean
	// became non-zero.
	Delta float64
	// Significant reports that the means differ by more than the sum of the
	// two 95% CI half-widths — the noise gate: zero-variance seeded reruns
	// of the same binary are never significant, and noisy cells need a mean
	// shift that clears their own spread.
	Significant bool
	// Regression and Improvement flag significant changes beyond the
	// threshold, in either direction.
	Regression  bool
	Improvement bool
	// Missing marks a cell present on only one side ("old" or "new"), and
	// Skipped one without measurements on a side; such cells carry no delta.
	Missing string
	Skipped bool
}

// Comparison is the outcome of diffing two baselines on one metric.
type Comparison struct {
	Metric    string
	Threshold float64
	OldID     string
	NewID     string
	OldMeta   Meta
	NewMeta   Meta
	Deltas    []Delta
	// Compared counts the cells that actually produced a delta (matched on
	// both sides with the metric measured). A gate must treat Compared == 0
	// as a failure: zero matched cells means nothing was checked, not that
	// nothing regressed (wrong artifact path, renamed campaign, metric
	// never recorded).
	Compared int
	// Regressions counts cells flagged as significant regressions; a gate
	// fails when it is non-zero. Improvements counts the opposite direction.
	Regressions  int
	Improvements int
}

// Compare diffs two baselines cell by cell on one metric. Cells are matched
// by key; old-side order is kept, new-only cells are appended. It never
// fails on metadata differences — only measured values matter.
func Compare(old, cur Baseline, opts CompareOptions) (Comparison, error) {
	metric := opts.Metric
	if metric == "" {
		metric = old.Metric
	}
	if metric == "" {
		metric = MetricMoves
	}
	if !validMetric(metric) {
		return Comparison{}, fmt.Errorf("campaign: unknown metric %q (known: %v)", metric, Metrics())
	}
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	c := Comparison{Metric: metric, Threshold: threshold,
		OldID: old.ID, NewID: cur.ID, OldMeta: old.Meta, NewMeta: cur.Meta}

	curIndex := make(map[CellKey]CellAggregate, len(cur.Cells))
	for _, cell := range cur.Cells {
		curIndex[cell.Cell] = cell
	}
	seen := make(map[CellKey]bool, len(old.Cells))
	for _, o := range old.Cells {
		seen[o.Cell] = true
		n, ok := curIndex[o.Cell]
		if !ok {
			c.Deltas = append(c.Deltas, Delta{Cell: o.Cell, Missing: "new"})
			continue
		}
		c.Deltas = append(c.Deltas, compareCell(o, n, metric, threshold))
	}
	for _, n := range cur.Cells {
		if !seen[n.Cell] {
			c.Deltas = append(c.Deltas, Delta{Cell: n.Cell, Missing: "old"})
		}
	}
	for _, d := range c.Deltas {
		if d.Missing == "" && !d.Skipped {
			c.Compared++
		}
		if d.Regression {
			c.Regressions++
		}
		if d.Improvement {
			c.Improvements++
		}
	}
	return c, nil
}

// compareCell diffs one matched cell pair on the metric.
func compareCell(o, n CellAggregate, metric string, threshold float64) Delta {
	d := Delta{Cell: o.Cell}
	oldAgg, oldOK := o.Metrics[metric]
	newAgg, newOK := n.Metrics[metric]
	if !oldOK || !newOK {
		d.Skipped = true
		return d
	}
	d.Old, d.New = oldAgg, newAgg
	diff := newAgg.Mean - oldAgg.Mean
	switch {
	case oldAgg.Mean != 0:
		d.Delta = diff / oldAgg.Mean
	case diff != 0:
		d.Delta = math.Inf(1)
		if diff < 0 {
			d.Delta = math.Inf(-1)
		}
	}
	// Noise gate: the mean shift must clear the combined 95% CI half-widths
	// before a delta counts as a real change rather than trial noise.
	d.Significant = math.Abs(diff) > oldAgg.CIHalfWidth()+newAgg.CIHalfWidth()
	d.Regression = d.Significant && d.Delta > threshold
	d.Improvement = d.Significant && d.Delta < -threshold
	return d
}

// Render writes the comparison as a benchstat-style aligned table with a
// one-line summary.
func (c Comparison) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "compare on %s (regression threshold +%.1f%%)\n", c.Metric, c.Threshold*100); err != nil {
		return fmt.Errorf("campaign: render comparison: %w", err)
	}
	if c.OldID != c.NewID {
		if _, err := fmt.Fprintf(w, "  warning: comparing different campaigns (%q vs %q)\n", c.OldID, c.NewID); err != nil {
			return fmt.Errorf("campaign: render comparison: %w", err)
		}
	}
	if c.OldMeta.Commit != "" || c.NewMeta.Commit != "" {
		if _, err := fmt.Fprintf(w, "  old: %s\n  new: %s\n", describeMeta(c.OldMeta), describeMeta(c.NewMeta)); err != nil {
			return fmt.Errorf("campaign: render comparison: %w", err)
		}
	}
	rows := [][]string{{"cell", "old " + c.Metric, "new " + c.Metric, "delta", "verdict"}}
	for _, d := range c.Deltas {
		rows = append(rows, d.row())
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		line := "  "
		for i, cell := range row {
			line += fmt.Sprintf("%-*s  ", widths[i], cell)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return fmt.Errorf("campaign: render comparison: %w", err)
		}
	}
	summary := fmt.Sprintf("%d cell(s), %d compared: %d regression(s), %d improvement(s)",
		len(c.Deltas), c.Compared, c.Regressions, c.Improvements)
	if _, err := fmt.Fprintf(w, "  %s\n", summary); err != nil {
		return fmt.Errorf("campaign: render comparison: %w", err)
	}
	return nil
}

// row renders one delta as table cells.
func (d Delta) row() []string {
	name := d.Cell.String()
	switch {
	case d.Missing != "":
		return []string{name, "-", "-", "-", "missing in " + d.Missing}
	case d.Skipped:
		return []string{name, "-", "-", "-", "skipped"}
	}
	deltaCell := "~"
	if d.Significant {
		deltaCell = fmt.Sprintf("%+.1f%%", d.Delta*100)
		if math.IsInf(d.Delta, 1) {
			deltaCell = "+∞"
		}
	}
	verdict := "ok"
	switch {
	case d.Regression:
		verdict = "REGRESSION"
	case d.Improvement:
		verdict = "improvement"
	}
	return []string{name,
		fmt.Sprintf("%.1f ±%.1f", d.Old.Mean, d.Old.CIHalfWidth()),
		fmt.Sprintf("%.1f ±%.1f", d.New.Mean, d.New.CIHalfWidth()),
		deltaCell, verdict}
}

// describeMeta renders a one-line environment fingerprint.
func describeMeta(m Meta) string {
	commit := m.Commit
	if len(commit) > 12 {
		commit = commit[:12]
	}
	if commit == "" {
		commit = "unknown-commit"
	}
	parts := commit
	if m.GoVersion != "" {
		parts += " " + m.GoVersion
	}
	if m.Host != "" {
		parts += " " + m.Host
	}
	if m.CreatedAt != "" {
		parts += " " + m.CreatedAt
	}
	return parts
}
