package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testSpec is a small fixed-trial campaign over a 2-cell grid.
func testSpec() Spec {
	return Spec{
		ID:         "test",
		Algorithms: []string{"unison"},
		Topologies: []string{"ring"},
		Daemons:    []string{"synchronous", "distributed-random"},
		Faults:     []string{"random-all"},
		Sizes:      []int{6},
		Seed:       1,
		MinTrials:  3,
	}
}

func runInto(t *testing.T, spec Spec, opts Options) (*Result, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "CAMPAIGN_"+spec.ID+".jsonl")
	res, err := Run(spec, path, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, path
}

func readLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
}

func TestRunStreamsRecordsAndAggregates(t *testing.T) {
	res, path := runInto(t, testSpec(), Options{})
	lines := readLines(t, path)
	if len(lines) != 1+2*3 {
		t.Fatalf("expected header + 6 trial lines, got %d:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	var h fileHeader
	if err := json.Unmarshal([]byte(lines[0]), &h); err != nil || h.Type != "campaign" || h.Spec.ID != "test" {
		t.Fatalf("bad header line %q: %v", lines[0], err)
	}
	for i, line := range lines[1:] {
		var rec TrialRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trial line %d: %v", i, err)
		}
		if rec.Type != "trial" || rec.Skipped || !rec.OK {
			t.Errorf("trial %d not an ok trial: %+v", i, rec)
		}
		if rec.Metrics[MetricMoves] <= 0 || rec.Metrics[MetricRounds] <= 0 {
			t.Errorf("trial %d has empty metrics: %+v", i, rec.Metrics)
		}
		if _, timed := rec.Metrics[MetricDuration]; timed {
			t.Errorf("trial %d records wall-clock time without RecordTime", i)
		}
	}
	if len(res.Cells) != 2 {
		t.Fatalf("expected 2 cell aggregates, got %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Trials != 3 || !c.OK || c.Skipped {
			t.Errorf("unexpected aggregate: %+v", c)
		}
		m := c.Metrics[MetricMoves]
		if m.Count != 3 || m.Mean <= 0 || m.P50 < m.Min || m.P99 > m.Max {
			t.Errorf("bad moves aggregate: %+v", m)
		}
	}
}

// churnSpec is testSpec with a churn axis and the recovery primary metric.
func churnSpec() Spec {
	s := testSpec()
	s.ID = "churntest"
	s.Daemons = []string{"distributed-random"}
	s.Churns = []string{"periodic:events=2,every=100"}
	s.Metric = MetricRecoveryRounds
	s.MaxSteps = 300_000
	return s
}

func TestChurnCampaignRecordsRecoveryMetrics(t *testing.T) {
	res, path := runInto(t, churnSpec(), Options{})
	lines := readLines(t, path)
	for i, line := range lines[1:] {
		var rec TrialRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trial line %d: %v", i, err)
		}
		if rec.Churn != "periodic:events=2,every=100" {
			t.Errorf("trial %d misses the churn cell key: %+v", i, rec.CellKey)
		}
		if !rec.OK {
			t.Errorf("trial %d failed (an event never recovered): %+v", i, rec)
		}
		for _, m := range []string{MetricRecoveryRounds, MetricRecoveryMoves, MetricRecoverySteps, MetricAvailability} {
			if _, ok := rec.Metrics[m]; !ok {
				t.Errorf("trial %d misses %s: %+v", i, m, rec.Metrics)
			}
		}
	}
	for _, c := range res.Cells {
		agg, ok := c.Metrics[MetricRecoveryRounds]
		if !ok || agg.Mean < 0 {
			t.Errorf("cell %s has no recovery_rounds aggregate: %+v", c.Cell, c.Metrics)
		}
		avail := c.Metrics[MetricAvailability]
		if avail.Mean <= 0 || avail.Mean >= 1 {
			t.Errorf("cell %s availability %v outside (0,1)", c.Cell, avail.Mean)
		}
	}
}

func TestChurnCampaignAdaptiveOnRecoveryMetric(t *testing.T) {
	// The recovery metric drives the CI stopping rule like any built-in one.
	spec := churnSpec()
	spec.CITarget = 2.0 // generous: stop as soon as the CI is assessable
	spec.MinTrials = 3
	spec.MaxTrials = 8
	res, _ := runInto(t, spec, Options{Parallel: 4})
	for _, c := range res.Cells {
		if c.Trials < 3 || c.Trials > 8 {
			t.Errorf("adaptive churn cell ran %d trials: %+v", c.Trials, c)
		}
	}
}

// TestInterruptFlushesAndResumes pins the graceful-interrupt contract: a
// campaign stopped via Options.Interrupt leaves a clean resumable stream, and
// resuming it produces the byte-identical uninterrupted stream.
func TestInterruptFlushesAndResumes(t *testing.T) {
	spec := testSpec()
	_, wholePath := runInto(t, spec, Options{})
	whole, err := os.ReadFile(wholePath)
	if err != nil {
		t.Fatal(err)
	}

	// The progress writer closes the interrupt channel after the first
	// completed cell, so the interrupted run deterministically covers cell 1
	// and stops before cell 2's first trial wave.
	stop := make(chan struct{})
	var once bool
	progress := writerFunc(func(p []byte) (int, error) {
		if !once {
			once = true
			close(stop)
		}
		return len(p), nil
	})
	path := filepath.Join(t.TempDir(), "CAMPAIGN_test.jsonl")
	_, err = Run(spec, path, Options{Progress: progress, Interrupt: stop})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	partial, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(readLines(t, path)), 1+3; got != want {
		t.Fatalf("interrupted stream has %d lines, want header + first cell's 3 trials:\n%s", got, partial)
	}
	if !bytes.HasPrefix(whole, partial) {
		t.Fatalf("interrupted stream is not a prefix of the uninterrupted one:\n%q\nvs\n%q", partial, whole)
	}

	if _, err := Run(spec, path, Options{Resume: true}); err != nil {
		t.Fatalf("resume after interrupt: %v", err)
	}
	resumed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, whole) {
		t.Errorf("resume after interrupt diverged:\n%q\nvs\n%q", resumed, whole)
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestRunParallelByteIdentical(t *testing.T) {
	spec := testSpec()
	_, seq := runInto(t, spec, Options{Parallel: 1})
	_, par := runInto(t, spec, Options{Parallel: 8})
	a, _ := os.ReadFile(seq)
	b, _ := os.ReadFile(par)
	if !bytes.Equal(a, b) {
		t.Errorf("parallelism changed the stream:\n%s\nvs\n%s", a, b)
	}
}

func TestRunRefusesExistingStream(t *testing.T) {
	spec := testSpec()
	_, path := runInto(t, spec, Options{})
	if _, err := Run(spec, path, Options{}); !errors.Is(err, ErrExists) {
		t.Fatalf("rerunning onto an existing stream must fail with ErrExists, got %v", err)
	}
}

func TestRecordTimeAddsDuration(t *testing.T) {
	spec := testSpec()
	spec.RecordTime = true
	res, path := runInto(t, spec, Options{})
	lines := readLines(t, path)
	var rec TrialRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := rec.Metrics[MetricDuration]; !ok {
		t.Errorf("RecordTime should add %s: %+v", MetricDuration, rec.Metrics)
	}
	if _, ok := res.Cells[0].Metrics[MetricDuration]; !ok {
		t.Error("duration missing from the aggregates")
	}
}

// TestProfileStepsAddsPhaseMetrics runs a campaign with step profiling on:
// every trial record must carry phase_* timing metrics, the aggregates must
// cover them, and a phase_* primary metric must drive the adaptive stopping
// rule without tripping validation.
func TestProfileStepsAddsPhaseMetrics(t *testing.T) {
	spec := testSpec()
	spec.ID = "proftest"
	spec.ProfileSteps = 1
	spec.Metric = "phase_step_ns"
	res, path := runInto(t, spec, Options{})
	lines := readLines(t, path)
	for i, line := range lines[1:] {
		var rec TrialRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Metrics["phase_step_ns"] <= 0 {
			t.Errorf("trial %d: missing phase_step_ns: %+v", i, rec.Metrics)
		}
		// Both daemons of the grid run the sequential engine, so the
		// select/execute phases must have been sampled.
		for _, m := range []string{"phase_select_ns", "phase_execute_ns"} {
			if _, ok := rec.Metrics[m]; !ok {
				t.Errorf("trial %d: missing %s: %+v", i, m, rec.Metrics)
			}
		}
	}
	for _, c := range res.Cells {
		if m, ok := c.Metrics["phase_step_ns"]; !ok || m.Count != c.Trials {
			t.Errorf("cell %s: phase_step_ns aggregate missing or short: %+v", c.Cell, c.Metrics)
		}
	}
}

// TestProfileStepsKeepsStreamDeterministic pins that profiling is purely
// observational: the deterministic metrics of a profiled run are identical to
// an unprofiled run of the same spec (only the spec header and the wall-clock
// phase_* values may differ).
func TestProfileStepsKeepsStreamDeterministic(t *testing.T) {
	plain := testSpec()
	profiled := testSpec()
	profiled.ProfileSteps = 2
	resPlain, _ := runInto(t, plain, Options{})
	resProf, _ := runInto(t, profiled, Options{})
	if len(resPlain.Cells) != len(resProf.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(resPlain.Cells), len(resProf.Cells))
	}
	for i := range resPlain.Cells {
		a, b := resPlain.Cells[i], resProf.Cells[i]
		for _, m := range []string{MetricMoves, MetricRounds, MetricSteps} {
			if a.Metrics[m] != b.Metrics[m] {
				t.Errorf("cell %s metric %s changed under profiling: %+v vs %+v",
					a.Cell, m, a.Metrics[m], b.Metrics[m])
			}
		}
	}
}

// TestResumeByteIdentity is the pinned checkpoint/resume contract: a
// campaign interrupted at any point — between records or mid-line — and
// resumed produces byte-identical JSONL and aggregates to an uninterrupted
// run.
func TestResumeByteIdentity(t *testing.T) {
	spec := testSpec()
	wholeRes, wholePath := runInto(t, spec, Options{})
	whole, err := os.ReadFile(wholePath)
	if err != nil {
		t.Fatal(err)
	}
	wholeSnap, err := json.Marshal(wholeRes.Snapshot(Meta{}))
	if err != nil {
		t.Fatal(err)
	}

	lines := bytes.SplitAfter(whole, []byte("\n"))
	// Cut points: after the header, mid-campaign, mid-cell, after the last
	// record (a completed stream), and mid-line (interrupted write).
	cuts := []int{
		len(lines[0]),                 // header only
		len(lines[0]) + len(lines[1]), // one record
		len(lines[0]) + len(lines[1]) + len(lines[2]) + len(lines[3]), // first cell + one trial of the second
		len(whole),                         // fully complete
		len(whole) - 7,                     // last line cut mid-write
		len(lines[0]) + len(lines[1]) + 12, // second record cut mid-write
	}
	for _, cut := range cuts {
		path := filepath.Join(t.TempDir(), "CAMPAIGN_test.jsonl")
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Run(spec, path, Options{Resume: true, Parallel: 4})
		if err != nil {
			t.Fatalf("resume from byte %d: %v", cut, err)
		}
		resumed, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resumed, whole) {
			t.Errorf("resume from byte %d diverged:\n%q\nvs\n%q", cut, resumed, whole)
		}
		snap, err := json.Marshal(res.Snapshot(Meta{}))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap, wholeSnap) {
			t.Errorf("resume from byte %d changed the aggregates:\n%s\nvs\n%s", cut, snap, wholeSnap)
		}
	}
}

func TestResumeOfMissingFileStartsFresh(t *testing.T) {
	spec := testSpec()
	path := filepath.Join(t.TempDir(), "CAMPAIGN_test.jsonl")
	if _, err := Run(spec, path, Options{Resume: true}); err != nil {
		t.Fatalf("resuming a not-yet-started campaign must start it: %v", err)
	}
}

func TestResumeRejectsForeignSpec(t *testing.T) {
	spec := testSpec()
	_, path := runInto(t, spec, Options{})
	other := spec
	other.Seed = 99
	if _, err := Run(other, path, Options{Resume: true}); err == nil {
		t.Fatal("resuming with a different spec must fail")
	}
}

func TestResumeRejectsCorruptStream(t *testing.T) {
	spec := testSpec()
	_, path := runInto(t, spec, Options{})
	whole, _ := os.ReadFile(path)
	lines := bytes.SplitAfter(whole, []byte("\n"))

	// A corrupt record followed by further lines is unrecoverable.
	bad := append([]byte{}, lines[0]...)
	bad = append(bad, []byte("not json\n")...)
	bad = append(bad, lines[1]...)
	corrupt := filepath.Join(t.TempDir(), "c.jsonl")
	os.WriteFile(corrupt, bad, 0o644)
	if _, err := Run(spec, corrupt, Options{Resume: true}); err == nil {
		t.Error("a corrupt interior record must fail the resume")
	}

	// A record with a gap in trial indices is rejected.
	var rec TrialRecord
	json.Unmarshal(bytes.TrimSuffix(lines[1], []byte("\n")), &rec)
	rec.Trial = 2
	gapLine, _ := json.Marshal(rec)
	gap := append([]byte{}, lines[0]...)
	gap = append(gap, gapLine...)
	gap = append(gap, '\n')
	gapPath := filepath.Join(t.TempDir(), "g.jsonl")
	os.WriteFile(gapPath, gap, 0o644)
	if _, err := Run(spec, gapPath, Options{Resume: true}); err == nil {
		t.Error("a trial-index gap must fail the resume")
	}

	// A missing header is rejected.
	noHeader := filepath.Join(t.TempDir(), "h.jsonl")
	os.WriteFile(noHeader, lines[1], 0o644)
	if _, err := Run(spec, noHeader, Options{Resume: true}); err == nil {
		t.Error("a stream without a campaign header must fail the resume")
	}
}

func TestAdaptiveStopsAtZeroVariance(t *testing.T) {
	// Without fault injection every seeded trial of a cell is identical, so
	// the CI collapses immediately and the cell stops at the minimum.
	spec := testSpec()
	spec.Faults = []string{"none"}
	spec.CITarget = 0.01
	spec.MinTrials = 3
	spec.MaxTrials = 12
	res, path := runInto(t, spec, Options{})
	for _, c := range res.Cells {
		if c.Trials != 3 {
			t.Errorf("zero-variance cell ran %d trials, want 3: %+v", c.Trials, c)
		}
	}
	if lines := readLines(t, path); len(lines) != 1+2*3 {
		t.Errorf("stream should hold exactly the recorded trials, got %d lines", len(lines))
	}
}

func TestAdaptiveRunsToMaxOnNoise(t *testing.T) {
	// An unreachable precision target drives noisy cells to MaxTrials.
	spec := testSpec()
	spec.Daemons = []string{"distributed-random"}
	spec.CITarget = 1e-9
	spec.MinTrials = 3
	spec.MaxTrials = 6
	res, _ := runInto(t, spec, Options{Parallel: 4})
	if got := res.Cells[0].Trials; got != 6 {
		t.Errorf("noisy cell ran %d trials, want the 6-trial cap", got)
	}
}

func TestAdaptiveParallelByteIdentical(t *testing.T) {
	// Speculative wave trials beyond the stop point must be discarded, so
	// the stream is identical at any parallelism even with adaptive counts.
	spec := testSpec()
	spec.CITarget = 0.25
	spec.MinTrials = 3
	spec.MaxTrials = 10
	_, seq := runInto(t, spec, Options{Parallel: 1})
	_, par := runInto(t, spec, Options{Parallel: 8})
	a, _ := os.ReadFile(seq)
	b, _ := os.ReadFile(par)
	if !bytes.Equal(a, b) {
		t.Errorf("adaptive stream depends on parallelism:\n%s\nvs\n%s", a, b)
	}
}

func TestUnsatisfiableCellsAreSkipped(t *testing.T) {
	// A path's endpoints have degree 1 < the 2-tuple-domination requirement,
	// so every trial of that cell is skipped.
	spec := testSpec()
	spec.Algorithms = []string{"2-tuple-domination"}
	spec.Topologies = []string{"path"}
	spec.Daemons = []string{"synchronous"}
	spec.Faults = nil
	res, _ := runInto(t, spec, Options{})
	c := res.Cells[0]
	if !c.Skipped || c.Trials != 3 || len(c.Metrics) != 0 {
		t.Errorf("unsatisfiable cell should be skipped after MinTrials: %+v", c)
	}
}

func TestSpecValidate(t *testing.T) {
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := map[string]func(*Spec){
		"empty id":                    func(s *Spec) { s.ID = "" },
		"bad id chars":                func(s *Spec) { s.ID = "a b" },
		"unknown algorithm":           func(s *Spec) { s.Algorithms = []string{"nope"} },
		"unknown metric":              func(s *Spec) { s.Metric = "nope" },
		"duration sans time":          func(s *Spec) { s.Metric = MetricDuration },
		"ci without max":              func(s *Spec) { s.CITarget = 0.1 },
		"max below min":               func(s *Spec) { s.CITarget = 0.1; s.MinTrials = 8; s.MaxTrials = 4 },
		"negative trials":             func(s *Spec) { s.MinTrials = -1 },
		"negative ci target":          func(s *Spec) { s.CITarget = -0.5 },
		"phase metric sans profiling": func(s *Spec) { s.Metric = "phase_step_ns" },
		"negative profile steps":      func(s *Spec) { s.ProfileSteps = -1 },
	}
	for name, mutate := range cases {
		s := testSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
}

func TestLoadSpecRoundTrip(t *testing.T) {
	spec := testSpec()
	spec.CITarget = 0.05
	spec.MaxTrials = 10
	path := filepath.Join(t.TempDir(), "spec.json")
	data, _ := json.MarshalIndent(spec, "", "  ")
	os.WriteFile(path, data, 0o644)
	loaded, err := LoadSpec(path)
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	if !specsEqual(loaded, spec) {
		t.Errorf("round trip changed the spec: %+v vs %+v", loaded, spec)
	}
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("a missing spec file must fail")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(badPath, []byte("{"), 0o644)
	if _, err := LoadSpec(badPath); err == nil {
		t.Error("unparseable spec must fail")
	}
}

func TestProgressStream(t *testing.T) {
	var buf bytes.Buffer
	spec := testSpec()
	path := filepath.Join(t.TempDir(), "p.jsonl")
	if _, err := Run(spec, path, Options{Progress: &buf}); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	count := 0
	for sc.Scan() {
		if !strings.Contains(sc.Text(), "trials=3") {
			t.Errorf("unexpected progress line %q", sc.Text())
		}
		count++
	}
	if count != 2 {
		t.Errorf("expected one progress line per cell, got %d", count)
	}
}

func TestTableRendersCells(t *testing.T) {
	res, _ := runInto(t, testSpec(), Options{})
	table := res.Table()
	if table.ID != "TEST" || len(table.Rows) != 2 || table.Violations != 0 {
		t.Fatalf("unexpected table: %+v", table)
	}
	var buf bytes.Buffer
	if err := table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"campaign test", "moves(mean±ci95)", "unison", "OK"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered table missing %q:\n%s", want, buf.String())
		}
	}
}
