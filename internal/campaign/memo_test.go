package campaign

import (
	"encoding/json"
	"testing"
)

// TestCampaignRecordsMemoHitRate checks the memo telemetry of the trial
// stream: with memoization on (the default) every trial records a hit rate in
// (0, 1], later trials of a cell hit at least as often as its donor trial 0,
// and MemoOff removes the metric while leaving every other metric untouched.
func TestCampaignRecordsMemoHitRate(t *testing.T) {
	spec := testSpec()
	res, path := runInto(t, spec, Options{Parallel: 4})
	perCell := make(map[CellKey][]TrialRecord)
	for i, line := range readLines(t, path)[1:] {
		var rec TrialRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trial line %d: %v", i, err)
		}
		perCell[rec.CellKey] = append(perCell[rec.CellKey], rec)
		hr, ok := rec.Metrics[MetricMemoHitRate]
		if !ok || hr <= 0 || hr > 1 {
			t.Errorf("trial %d: memo_hit_rate = %v (recorded %v), want one in (0,1]", i, hr, ok)
		}
	}
	for key, recs := range perCell {
		donor := recs[0].Metrics[MetricMemoHitRate]
		for _, rec := range recs[1:] {
			if rec.Metrics[MetricMemoHitRate] < donor {
				t.Errorf("cell %s trial %d hits less (%v) than the donor trial (%v) despite the frozen table",
					key, rec.Trial, rec.Metrics[MetricMemoHitRate], donor)
			}
		}
	}
	for _, c := range res.Cells {
		agg, ok := c.Metrics[MetricMemoHitRate]
		if !ok || agg.Count != c.Trials {
			t.Errorf("cell %s: memo_hit_rate aggregate missing or short: %+v", c.Cell, agg)
		}
	}

	off := spec
	off.MemoOff = true
	offRes, offPath := runInto(t, off, Options{Parallel: 4})
	for i, line := range readLines(t, offPath)[1:] {
		var rec TrialRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad memo-off trial line %d: %v", i, err)
		}
		if _, ok := rec.Metrics[MetricMemoHitRate]; ok {
			t.Errorf("memo-off trial %d still records memo_hit_rate: %+v", i, rec.Metrics)
		}
	}
	for ci, c := range offRes.Cells {
		for _, m := range []string{MetricMoves, MetricRounds, MetricSteps} {
			if c.Metrics[m] != res.Cells[ci].Metrics[m] {
				t.Errorf("cell %s: %s differs with memoization: %+v vs %+v",
					c.Cell, m, res.Cells[ci].Metrics[m], c.Metrics[m])
			}
		}
	}
}
