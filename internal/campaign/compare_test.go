package campaign

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"sdr/internal/stats"
)

// baselineOf builds a baseline with one cell per sample set on the moves
// metric.
func baselineOf(id string, samples ...[]int) Baseline {
	b := Baseline{SchemaVersion: BaselineSchemaVersion, ID: id, Metric: MetricMoves}
	for i, xs := range samples {
		b.Cells = append(b.Cells, CellAggregate{
			Cell:    CellKey{Algorithm: "unison", Topology: "ring", N: 6 + 2*i, Daemon: "synchronous", Fault: "none"},
			Trials:  len(xs),
			OK:      true,
			Metrics: map[string]stats.Aggregate{MetricMoves: stats.AggregateInts(xs)},
		})
	}
	return b
}

func TestCompareIdenticalBaselines(t *testing.T) {
	// Seeded re-runs of the same binary reproduce the same samples exactly;
	// the gate must tolerate them.
	old := baselineOf("gate", []int{100, 100, 100}, []int{240, 250, 260})
	cur := baselineOf("gate", []int{100, 100, 100}, []int{240, 250, 260})
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressions != 0 || c.Improvements != 0 {
		t.Fatalf("identical baselines must compare clean: %+v", c)
	}
	for _, d := range c.Deltas {
		if d.Significant || d.Regression {
			t.Errorf("identical cell flagged: %+v", d)
		}
	}
}

func TestCompareFlagsInjectedSlowdown(t *testing.T) {
	// A deterministic (zero-variance) cell slowed down by 25% is a
	// significant regression under the default +10% threshold.
	old := baselineOf("gate", []int{100, 100, 100})
	cur := baselineOf("gate", []int{125, 125, 125})
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressions != 1 || !c.Deltas[0].Regression || !c.Deltas[0].Significant {
		t.Fatalf("a 25%% zero-variance slowdown must regress: %+v", c.Deltas[0])
	}
	// The same delta in the other direction is an improvement, not a gate
	// failure.
	c, err = Compare(cur, old, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressions != 0 || c.Improvements != 1 {
		t.Fatalf("a 20%% speedup must count as an improvement: %+v", c)
	}
}

func TestCompareNoiseGate(t *testing.T) {
	// A +15% mean shift buried under wide CIs is not significant: the means
	// differ by less than the combined CI half-widths.
	old := baselineOf("gate", []int{100, 120, 140})
	cur := baselineOf("gate", []int{115, 138, 161})
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := c.Deltas[0]
	if d.Significant || d.Regression || c.Regressions != 0 {
		t.Fatalf("a shift within the noise must not regress: %+v", d)
	}
	// The same relative shift with tight CIs is significant.
	old = baselineOf("gate", []int{100, 101, 100, 101})
	cur = baselineOf("gate", []int{115, 116, 115, 116})
	c, err = Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Deltas[0].Significant || c.Regressions != 1 {
		t.Fatalf("a tight-CI +15%% shift must regress: %+v", c.Deltas[0])
	}
}

func TestCompareThreshold(t *testing.T) {
	old := baselineOf("gate", []int{100, 100, 100})
	cur := baselineOf("gate", []int{115, 115, 115})
	// +15% passes a +20% threshold but fails the default +10%.
	c, err := Compare(old, cur, CompareOptions{Threshold: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressions != 0 || !c.Deltas[0].Significant {
		t.Fatalf("+15%% under a +20%% threshold must pass (but stay significant): %+v", c.Deltas[0])
	}
	if c, _ = Compare(old, cur, CompareOptions{}); c.Regressions != 1 {
		t.Fatalf("+15%% under the default threshold must fail: %+v", c)
	}
}

func TestCompareMissingAndSkippedCells(t *testing.T) {
	old := baselineOf("gate", []int{100}, []int{200})
	cur := baselineOf("gate", []int{100})
	cur.Cells = append(cur.Cells, CellAggregate{
		Cell: CellKey{Algorithm: "bfstree", Topology: "tree", N: 8, Daemon: "synchronous", Fault: "none"},
	})
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Deltas) != 3 {
		t.Fatalf("expected 3 deltas (matched, missing-new, missing-old): %+v", c.Deltas)
	}
	if c.Deltas[1].Missing != "new" || c.Deltas[2].Missing != "old" {
		t.Errorf("missing sides wrong: %+v", c.Deltas[1:])
	}
	if c.Regressions != 0 {
		t.Errorf("missing cells must not count as regressions: %+v", c)
	}
	if c.Compared != 1 {
		t.Errorf("only the matched cell counts as compared: %+v", c)
	}

	// A cell without the compared metric on one side is skipped.
	old = baselineOf("gate", []int{100})
	cur = baselineOf("gate", []int{100})
	cur.Cells[0].Metrics = nil
	if c, _ = Compare(old, cur, CompareOptions{}); !c.Deltas[0].Skipped || c.Compared != 0 {
		t.Errorf("metric-less cell should be skipped and not compared: %+v", c.Deltas[0])
	}
}

func TestCompareCountsNothingOnDisjointBaselines(t *testing.T) {
	// Two baselines without a single shared cell (e.g. the wrong artifact
	// path fed to the gate) compare with Compared == 0 — the caller must
	// treat that as a gate failure, and Render warns about the id mismatch.
	old := baselineOf("gate", []int{100})
	cur := baselineOf("nightly", []int{100})
	cur.Cells[0].Cell.Algorithm = "bfstree"
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Compared != 0 || c.Regressions != 0 {
		t.Fatalf("disjoint baselines must compare nothing: %+v", c)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`warning: comparing different campaigns ("gate" vs "nightly")`, "0 compared"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestCompareZeroMeanTransitions(t *testing.T) {
	old := baselineOf("gate", []int{0, 0, 0})
	cur := baselineOf("gate", []int{50, 50, 50})
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressions != 1 {
		t.Fatalf("a zero mean becoming non-zero must regress: %+v", c.Deltas[0])
	}
	if c, _ = Compare(old, old, CompareOptions{}); c.Regressions != 0 {
		t.Fatalf("identical zero means must pass: %+v", c)
	}
}

func TestCompareMetricSelection(t *testing.T) {
	old := baselineOf("gate", []int{100})
	cur := baselineOf("gate", []int{100})
	if _, err := Compare(old, cur, CompareOptions{Metric: "nope"}); err == nil {
		t.Error("an unknown metric must be rejected")
	}
	c, err := Compare(old, cur, CompareOptions{Metric: MetricRounds})
	if err != nil {
		t.Fatal(err)
	}
	// The baselines only aggregate moves, so the rounds comparison skips.
	if c.Metric != MetricRounds || !c.Deltas[0].Skipped {
		t.Errorf("explicit metric not honoured: %+v", c)
	}
	// An old baseline without a primary metric falls back to moves.
	old.Metric = ""
	if c, _ = Compare(old, cur, CompareOptions{}); c.Metric != MetricMoves {
		t.Errorf("default metric = %q, want moves", c.Metric)
	}
}

func TestComparisonRender(t *testing.T) {
	old := baselineOf("gate", []int{100, 100}, []int{200, 200})
	old.Meta = Meta{Commit: "0123456789abcdef", GoVersion: "go1.24.0"}
	cur := baselineOf("gate", []int{130, 130}, []int{200, 200})
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"compare on moves", "+10.0%", "0123456789ab", "REGRESSION", "+30.0%", "~",
		"2 cell(s), 2 compared: 1 regression(s), 0 improvement(s)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered comparison missing %q:\n%s", want, text)
		}
	}
}

func TestTableRendersUnmeasuredMetric(t *testing.T) {
	// A cell whose runs never produced the primary metric must not render
	// as a measured zero cost.
	res := &Result{
		Spec: Spec{ID: "x", Metric: MetricStabMoves, MinTrials: 2},
		Cells: []CellAggregate{{
			Cell:    CellKey{Algorithm: "bfstree", Topology: "ring", N: 6, Daemon: "synchronous", Fault: "none"},
			Trials:  2,
			OK:      true,
			Metrics: map[string]stats.Aggregate{MetricMoves: stats.AggregateInts([]int{3, 5})},
		}},
	}
	var buf bytes.Buffer
	table := res.Table()
	if err := table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "unmeasured") || strings.Contains(buf.String(), "0.0±0.0") {
		t.Errorf("unmeasured metric rendered as a value:\n%s", buf.String())
	}
}

func TestSnapshotAndBaselineRoundTrip(t *testing.T) {
	res, _ := runInto(t, testSpec(), Options{})
	meta := Meta{Commit: "abc", GoVersion: "go1.24.0", Host: "ci"}
	b := res.Snapshot(meta)
	if b.SchemaVersion != BaselineSchemaVersion || b.ID != "test" || b.Metric != MetricMoves || len(b.Cells) != 2 {
		t.Fatalf("unexpected snapshot: %+v", b)
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/BENCH_TEST.json"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ID != b.ID || loaded.Meta != b.Meta || len(loaded.Cells) != len(b.Cells) {
		t.Errorf("round trip changed the baseline: %+v vs %+v", loaded, b)
	}
	// A future schema version is refused.
	loaded.SchemaVersion = BaselineSchemaVersion + 1
	buf.Reset()
	WriteBaseline(&buf, loaded)
	os.WriteFile(path, buf.Bytes(), 0o644)
	if _, err := LoadBaseline(path); err == nil {
		t.Error("a foreign schema version must be refused")
	}
	// The comparison of a baseline against itself is clean.
	c, err := Compare(b, b, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressions != 0 || c.Improvements != 0 {
		t.Errorf("self-comparison must be clean: %+v", c)
	}
}
