package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"sdr/internal/bench"
	"sdr/internal/obs"
	"sdr/internal/scenario"
	"sdr/internal/sim"
	"sdr/internal/stats"
)

// Options configures one campaign execution.
type Options struct {
	// Parallel bounds the number of concurrently executed trials; ≤ 1 runs
	// sequentially. It changes wall-clock time only: the JSONL stream and
	// the aggregates are identical for every value.
	Parallel int
	// MemoCap bounds each cell's memo table entry count; 0 means
	// sim.DefaultMemoEntries. Ignored when the spec sets MemoOff.
	MemoCap int
	// Resume permits continuing an existing JSONL stream from its last
	// completed trial. Without it an existing output file is an error.
	Resume bool
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
	// Interrupt, when non-nil, requests a graceful stop: the channel is
	// polled synchronously before every trial wave, and once it is closed
	// Run flushes the sink (every completed trial is already durable) and
	// returns ErrInterrupted. The stream is a clean resumable prefix, so a
	// later Run with Resume continues it to the byte-identical full stream.
	Interrupt <-chan struct{}
	// Context, when non-nil, cancels the campaign with the same
	// record-boundary semantics as Interrupt: no new trial starts after
	// cancellation, in-flight trials complete, and the recorded stream is a
	// clean resumable prefix. internal/server aborts and drains jobs
	// through it.
	Context context.Context
}

// ErrInterrupted reports a campaign stopped by Options.Interrupt or a
// cancelled Options.Context. The stream holds every trial completed before
// the stop and can be resumed.
var ErrInterrupted = errors.New("campaign: interrupted")

// interrupted reports whether the interrupt channel is closed or the
// context is cancelled.
func (o Options) interrupted() bool {
	select {
	case <-o.Interrupt:
		return true
	default:
	}
	return o.Context != nil && o.Context.Err() != nil
}

// context returns the cancellation context trial waves run under.
func (o Options) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Result is a finished campaign: the spec and the per-cell aggregates, in
// sweep cell order.
type Result struct {
	Spec  Spec
	Cells []CellAggregate
}

// Run executes the campaign described by spec, streaming every trial record
// to the JSONL file at path, and returns the per-cell aggregates. Cells run
// in sweep order; within a cell, trials are fanned out in waves over the
// bench worker pool but recorded strictly in trial order, and — when the
// spec sets a CI target — the stopping rule is re-evaluated after every
// recorded trial, so the stream is independent of Parallel and of any
// interruption/resume history.
func Run(spec Spec, path string, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sw := spec.sweep()
	cells := sw.Cells()

	existing := make([][]TrialRecord, len(cells))
	var out *sink
	if _, err := os.Stat(path); err == nil && opts.Resume {
		recs, goodSize, err := readStream(path, spec)
		if err != nil {
			return nil, err
		}
		if existing, err = groupRecords(spec, cells, recs); err != nil {
			return nil, err
		}
		if out, err = resumeSink(path, goodSize); err != nil {
			return nil, err
		}
	} else {
		// A resume of a not-yet-started campaign starts it; an existing file
		// without Resume is refused by newSink.
		var err error
		if out, err = newSink(path, spec); err != nil {
			return nil, err
		}
	}
	res, err := runStream(spec, sw, cells, existing, out, opts)
	cerr := out.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	return res, nil
}

// RunSink executes the campaign described by spec against an arbitrary Sink:
// the header line, then every trial record, exactly as Run writes them to
// the JSONL file — the entry point internal/server jobs run through, so
// served streams are byte-identical to offline files. Unlike Run it always
// starts fresh (serving resumes by re-reading the sink's lines, not by
// re-running), and cancellation arrives through Options.Context.
func RunSink(spec Spec, out Sink, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sw := spec.sweep()
	cells := sw.Cells()
	if err := out.WriteLine(fileHeader{Type: "campaign", Spec: spec}); err != nil {
		return nil, err
	}
	return runStream(spec, sw, cells, make([][]TrialRecord, len(cells)), out, opts)
}

// runStream is the campaign core shared by Run (file sink) and RunSink
// (caller-provided sink): it drives every cell through its trial waves,
// records strictly in trial order, and stops at a record boundary when
// interrupted or cancelled.
func runStream(spec Spec, sw scenario.Sweep, cells []scenario.Cell, existing [][]TrialRecord, out Sink, opts Options) (*Result, error) {
	_, maxTrials := spec.trialBounds()
	result := &Result{Spec: spec, Cells: make([]CellAggregate, 0, len(cells))}
	for ci, cell := range cells {
		recs := existing[ci]
		// Per-cell transition memo: the cell's first satisfiable trial runs
		// alone, fills the share's table and donates it; every later trial
		// reads it frozen. Keeping the donor designated (rather than letting
		// concurrent trials race to donate) makes the recorded hit rates as
		// independent of Parallel as the cost metrics. Sharded cells run
		// unmemoized: the memoized evaluator is sequential-only (see
		// sim.WithShards), so a sharded campaign simply drops the
		// memo_hit_rate metric.
		var share *sim.MemoShare
		if !spec.MemoOff && spec.Shards <= 1 {
			share = sim.NewMemoShare(opts.MemoCap)
		}
		donated := false
		// Replay the resumed prefix into the accumulator; groupRecords has
		// already rejected prefixes that overshoot the stopping rule, so the
		// cell is complete iff the rule fires at the last record.
		var acc stopAccum
		done := false
		donorTrial := -1
		for i, r := range recs {
			acc.observe(spec, r)
			done = spec.stopAfter(i+1, &acc)
			if donorTrial < 0 && !r.Skipped {
				donorTrial = r.Trial
			}
		}
		if share != nil && donorTrial >= 0 {
			donated = true
			if !done {
				// Resume warm-up: reconstruct the frozen table the interrupted
				// run's remaining trials would have seen by re-running the
				// cell's donor trial; its record is already in the stream and
				// the re-run's is discarded.
				if tr := runTrial(sw, cell, donorTrial, false, 0, sim.WithMemo(share)); tr.err != nil {
					return nil, tr.err
				}
			}
		}
		for !done {
			if opts.interrupted() {
				return nil, fmt.Errorf("%w before cell %s", ErrInterrupted, cellKey(cell))
			}
			// One wave of trials: sized by the worker budget (bounded
			// memory), recorded in trial order, cut short the moment the
			// stopping rule fires so the stream never depends on Parallel.
			// While the memo donor is still pending (every earlier trial was
			// skipped as unsatisfiable) waves stay solo.
			wave := opts.Parallel
			if share != nil && !donated {
				wave = 1
			}
			if wave < 1 {
				wave = 1
			}
			if rest := maxTrials - len(recs); wave > rest {
				wave = rest
			}
			first := len(recs)
			memoOpts := memoTrialOpt(share, donated)
			batch := bench.MapGridContext(opts.context(), opts.Parallel, 1, wave, func(_, k int) trialOutcome {
				tr := runTrial(sw, cells[ci], first+k, spec.RecordTime, spec.ProfileSteps, memoOpts...)
				tr.executed = true
				return tr
			})
			for _, tr := range batch[0] {
				if !tr.executed {
					// The context was cancelled mid-wave. Executed trials form
					// a prefix of the wave (MapGridContext dispatches in order
					// and lets in-flight calls finish), and every one of them
					// is already recorded — the stream is a clean resumable
					// prefix cut at a record boundary.
					return nil, fmt.Errorf("%w in cell %s", ErrInterrupted, cellKey(cell))
				}
				if tr.err != nil {
					return nil, tr.err
				}
				recs = append(recs, tr.rec)
				acc.observe(spec, tr.rec)
				if !tr.rec.Skipped {
					donated = true
				}
				if err := out.WriteLine(tr.rec); err != nil {
					return nil, err
				}
				if spec.stopAfter(len(recs), &acc) {
					done = true
					break // discard speculative trials beyond the stop point
				}
			}
		}
		agg := aggregateCell(cellKey(cell), recs)
		result.Cells = append(result.Cells, agg)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "  %-44s %s\n", agg.Cell, progressSummary(spec, agg))
		}
	}
	return result, nil
}

// trialOutcome carries one executed trial through the worker pool. executed
// distinguishes a trial that ran from a zero value left by a cancelled
// dispatch.
type trialOutcome struct {
	rec      TrialRecord
	err      error
	executed bool
}

// memoTrialOpt returns the memo option for one trial of a cell: the donating
// (cache-filling) protocol until a satisfiable trial has donated the cell's
// table, the read-only protocol afterwards, nothing when memoization is off.
func memoTrialOpt(share *sim.MemoShare, donated bool) []sim.Option {
	if share == nil {
		return nil
	}
	if donated {
		return []sim.Option{sim.WithMemoReadOnly(share)}
	}
	return []sim.Option{sim.WithMemo(share)}
}

// runTrial resolves and executes one (cell, trial) point and extracts its
// metric record. Unsatisfiable cells record a skipped trial; any other
// resolution error aborts the campaign. When profileEvery > 0 the run is
// profiled (every profileEvery-th step phase-timed, see obs.PhaseProfiler)
// and the per-phase means land in the record as phase_* metrics — wall-clock
// measurements, so like duration_ns they are excluded from -compare's
// deterministic byte-identity expectations.
func runTrial(sw scenario.Sweep, cell scenario.Cell, trial int, recordTime bool, profileEvery int, memo ...sim.Option) trialOutcome {
	sp := sw.Trial(cell, trial)
	rec := TrialRecord{Type: "trial", CellKey: cellKey(cell), Trial: trial, Seed: sp.Seed}
	run, err := sp.Resolve()
	if err != nil {
		if errors.Is(err, scenario.ErrUnsatisfiable) {
			rec.Skipped = true
			rec.OK = true
			return trialOutcome{rec: rec}
		}
		return trialOutcome{err: err}
	}
	opts := memo
	var prof *obs.PhaseProfiler
	if profileEvery > 0 {
		prof = obs.NewPhaseProfiler(profileEvery)
		// Full slice expression: appending must never scribble on a shared
		// memo option slice another trial of the wave is reading.
		opts = append(opts[:len(opts):len(opts)], sim.WithProfiler(prof))
	}
	start := time.Now()
	res := run.Execute(opts...)
	elapsed := time.Since(start)
	rec.OK = run.Report(res).OK
	rec.Metrics = map[string]float64{
		MetricMoves:  float64(res.Moves),
		MetricRounds: float64(res.Rounds),
		MetricSteps:  float64(res.Steps),
	}
	if res.StabilizationMoves >= 0 {
		rec.Metrics[MetricStabMoves] = float64(res.StabilizationMoves)
		rec.Metrics[MetricStabRounds] = float64(res.StabilizationRounds)
		rec.Metrics[MetricStabSteps] = float64(res.StabilizationSteps)
	}
	if run.Spec.Churn != "" {
		rec.Metrics[MetricAvailability] = res.Availability()
		var rounds, moves, steps, recovered float64
		for _, ev := range res.Events {
			if ev.Recovered {
				recovered++
				rounds += float64(ev.RecoveryRounds)
				moves += float64(ev.RecoveryMoves)
				steps += float64(ev.RecoverySteps)
			}
		}
		// Per-trial recovery cost: the mean over the trial's recovered
		// events. A trial none of whose events recovered within the step
		// budget records no recovery metrics (and fails its check below).
		if recovered > 0 {
			rec.Metrics[MetricRecoveryRounds] = rounds / recovered
			rec.Metrics[MetricRecoveryMoves] = moves / recovered
			rec.Metrics[MetricRecoverySteps] = steps / recovered
		}
		for _, ev := range res.Events {
			if !ev.Recovered {
				rec.OK = false
			}
		}
	}
	if res.Memo.Lookups() > 0 {
		rec.Metrics[MetricMemoHitRate] = res.Memo.HitRate()
	}
	if recordTime {
		rec.Metrics[MetricDuration] = float64(elapsed.Nanoseconds())
	}
	if prof != nil {
		for name, v := range prof.Profile().Metrics() {
			rec.Metrics[name] = v
		}
	}
	return trialOutcome{rec: rec}
}

// stopAccum incrementally accumulates the primary-metric samples of one
// cell in record order. The streaming writer and the resume validator share
// it (and stopAfter), so the adaptive stopping rule costs O(1) per recorded
// trial and — crucially — both paths run the identical floating-point
// arithmetic: a resumed campaign makes exactly the decisions the
// uninterrupted one would.
type stopAccum struct {
	n          int
	sum, sumSq float64
}

// observe accounts one record's primary metric (skipped trials and trials
// without the metric contribute nothing).
func (a *stopAccum) observe(s Spec, r TrialRecord) {
	if r.Skipped {
		return
	}
	if v, ok := r.Metrics[s.PrimaryMetric()]; ok {
		a.n++
		a.sum += v
		a.sumSq += v * v
	}
}

// relHalfWidthLE reports whether the relative Student-t 95% CI half-width of
// the accumulated samples is within target. A zero mean stops only when the
// interval is exactly degenerate (all samples zero).
func (a *stopAccum) relHalfWidthLE(target float64) bool {
	if a.n < 2 {
		return false
	}
	n := float64(a.n)
	mean := a.sum / n
	variance := (a.sumSq - a.sum*a.sum/n) / (n - 1)
	if variance < 0 {
		variance = 0 // guard the one-pass formula against rounding
	}
	half := stats.TQuantile975(a.n-1) * math.Sqrt(variance/n)
	if mean == 0 {
		return half == 0
	}
	return half/math.Abs(mean) <= target
}

// stopAfter reports whether a cell is complete after count recorded trials
// whose primary metric accumulated into acc.
func (s Spec) stopAfter(count int, acc *stopAccum) bool {
	minTrials, maxTrials := s.trialBounds()
	if count >= maxTrials {
		return true
	}
	if count < minTrials {
		return false
	}
	if s.CITarget <= 0 {
		return true // fixed trial count: stop exactly at the minimum
	}
	return acc.relHalfWidthLE(s.CITarget)
}

// stopIndex returns the index of the recorded trial after which the cell is
// complete, or -1 while more trials are needed. A well-formed stream stops a
// cell exactly at its stop index, which depends only on the spec and the
// recorded metric values — the property resume correctness rests on.
func (s Spec) stopIndex(recs []TrialRecord) int {
	var acc stopAccum
	for t, r := range recs {
		acc.observe(s, r)
		if s.stopAfter(t+1, &acc) {
			return t
		}
	}
	return -1
}

// groupRecords maps a resumed stream's records onto cell indices and checks
// that they form a resumable prefix: records arrive in sweep cell order with
// consecutive trial indices, and every recorded cell except the last is
// complete under the stopping rule (a well-formed writer never produces
// anything else).
func groupRecords(spec Spec, cells []scenario.Cell, recs []TrialRecord) ([][]TrialRecord, error) {
	index := make(map[CellKey]int, len(cells))
	for i, c := range cells {
		index[cellKey(c)] = i
	}
	grouped := make([][]TrialRecord, len(cells))
	current := 0
	for _, rec := range recs {
		ci, ok := index[rec.CellKey]
		if !ok {
			return nil, fmt.Errorf("campaign: resumed stream contains cell %s outside the spec", rec.CellKey)
		}
		if ci != current {
			if ci != current+1 {
				return nil, fmt.Errorf("campaign: resumed stream jumps from cell %s to %s", cellKey(cells[current]), rec.CellKey)
			}
			if stop := spec.stopIndex(grouped[current]); stop < 0 {
				return nil, fmt.Errorf("campaign: resumed stream advances past incomplete cell %s", cellKey(cells[current]))
			}
			current = ci
		}
		if rec.Trial != len(grouped[ci]) {
			return nil, fmt.Errorf("campaign: resumed stream has trial %d of %s where trial %d was expected",
				rec.Trial, rec.CellKey, len(grouped[ci]))
		}
		grouped[ci] = append(grouped[ci], rec)
	}
	for ci, g := range grouped {
		if stop := spec.stopIndex(g); stop >= 0 && stop < len(g)-1 {
			return nil, fmt.Errorf("campaign: resumed stream overshoots the stopping rule in cell %s", cellKey(cells[ci]))
		}
	}
	return grouped, nil
}

// progressSummary renders one cell's outcome for the progress stream.
func progressSummary(spec Spec, agg CellAggregate) string {
	if agg.Skipped {
		return fmt.Sprintf("skipped (%d unsatisfiable trials)", agg.Trials)
	}
	verdict := "ok"
	if !agg.OK {
		verdict = "FAILED"
	}
	m, measured := agg.Metrics[spec.PrimaryMetric()]
	if !measured {
		return fmt.Sprintf("trials=%d %s=unmeasured %s", agg.Trials, spec.PrimaryMetric(), verdict)
	}
	return fmt.Sprintf("trials=%d %s=%.1f±%.1f %s", agg.Trials, spec.PrimaryMetric(), m.Mean, m.CIHalfWidth(), verdict)
}
