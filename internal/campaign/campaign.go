// Package campaign is the experiment-frame layer of the reproduction: it
// separates *what* to measure (a Spec: a scenario sweep plus a trial policy)
// from the machinery that runs it, the same split DEVS-style simulation
// frameworks make between model and experiment frame.
//
// A campaign streams every completed trial to a JSONL sink as it finishes,
// so cells can run thousands of trials in bounded memory; the sink doubles
// as a checkpoint, and an interrupted campaign resumed from it produces
// byte-identical output to an uninterrupted run (per-trial seeds are derived
// deterministically, and adaptive stopping decisions depend only on recorded
// metric values). Per-cell aggregation goes through internal/stats
// (mean, sample stddev, p50/p95/p99, Student-t 95% confidence intervals);
// cells with a CI precision target stop early once the relative CI
// half-width of the primary metric falls under it. Aggregates snapshot into
// versioned Baselines (commit, Go version, host fingerprint) that Compare
// diffs with noise-aware thresholds — the regression gate cmd/sdrbench
// -campaign / -compare and the CI workflows are built on.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"

	"sdr/internal/scenario"
	"sdr/internal/stats"
)

// Metric names a per-trial measurement recorded by every campaign trial.
// The stabilization metrics are only present on trials whose run reached a
// legitimate configuration under an algorithm that defines legitimacy.
const (
	MetricMoves      = "moves"
	MetricRounds     = "rounds"
	MetricSteps      = "steps"
	MetricStabMoves  = "stab_moves"
	MetricStabRounds = "stab_rounds"
	MetricStabSteps  = "stab_steps"
	// The recovery metrics are only present on churn trials (cells with a
	// Churns axis entry): the mean per-event recovery cost over the trial's
	// recovered events, and the availability (fraction of executed steps
	// spent in a legitimate configuration). Any of them can drive CITarget
	// and the -compare regression gate like the built-in cost metrics.
	MetricRecoveryRounds = "recovery_rounds"
	MetricRecoveryMoves  = "recovery_moves"
	MetricRecoverySteps  = "recovery_steps"
	MetricAvailability   = "availability"
	// MetricMemoHitRate is the fraction of the trial's memoized enabledness
	// lookups answered from cache, recorded on trials that performed at least
	// one lookup (memoization on and the algorithm's rule set memoizable).
	// The cache-filling protocol is deterministic, so the value is as
	// reproducible as the cost metrics.
	MetricMemoHitRate = "memo_hit_rate"
	// MetricDuration is the wall-clock nanoseconds of the trial, recorded
	// only when Spec.RecordTime is set (it makes resumed output differ from
	// uninterrupted output byte-for-byte).
	MetricDuration = "duration_ns"
	// MetricPhasePrefix prefixes the engine phase-timing metrics recorded
	// when Spec.ProfileSteps is set: phase_<name>_ns is the mean wall time
	// (nanoseconds) of that engine phase per sampled step, and phase_step_ns
	// the mean sampled-step wall time (see internal/obs.PhaseProfiler). Like
	// duration_ns they are wall-clock measurements, not deterministic counts.
	MetricPhasePrefix = "phase_"
)

// Metrics lists every metric name a campaign can aggregate, in render order.
func Metrics() []string {
	return []string{MetricMoves, MetricRounds, MetricSteps,
		MetricStabMoves, MetricStabRounds, MetricStabSteps,
		MetricRecoveryRounds, MetricRecoveryMoves, MetricRecoverySteps,
		MetricAvailability, MetricMemoHitRate, MetricDuration}
}

// DefaultMinTrials is the per-cell trial count used when a Spec leaves
// MinTrials at zero.
const DefaultMinTrials = 4

// adaptiveMinTrials is the floor on MinTrials when a CI precision target is
// set: a confidence interval needs at least two samples, and three keeps the
// t-multiplier out of its df=1 blow-up.
const adaptiveMinTrials = 3

var specIDPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_-]*$`)

// Spec declaratively describes one campaign: the scenario sweep to cover and
// the per-cell trial policy. It is the schema of the JSON campaign files
// cmd/sdrbench -campaign runs.
type Spec struct {
	// ID names the campaign; it becomes the CAMPAIGN_<ID>.jsonl /
	// BENCH_<ID>.json file stem and must match [A-Za-z0-9][A-Za-z0-9_-]*.
	ID string `json:"id"`
	// Algorithms, Topologies, Daemons and Faults name scenario registry
	// entries; empty Faults defaults to {"none"}.
	Algorithms []string `json:"algorithms"`
	Topologies []string `json:"topologies"`
	Daemons    []string `json:"daemons"`
	Faults     []string `json:"faults,omitempty"`
	// Churns names churn schedules (registry entries or grammar forms, see
	// scenario.ResolveChurn) swept as an additional axis; empty means no
	// mid-run perturbation (static runs, the previous behaviour — the field
	// marshals away entirely, so existing spec files and streams are
	// unaffected).
	Churns []string `json:"churns,omitempty"`
	// Sizes is the sweep of network sizes n.
	Sizes []int `json:"sizes"`
	// Seed is the base seed; trial t of every cell derives seed
	// Seed + t·SeedStride (scenario.TrialSeedStride when SeedStride is 0).
	Seed       int64 `json:"seed"`
	SeedStride int64 `json:"seed_stride,omitempty"`
	// MaxSteps bounds each execution; 0 means sim.DefaultMaxSteps.
	MaxSteps int `json:"max_steps,omitempty"`
	// Shards is the engine shard count every trial runs with (see
	// sim.WithShards); 0 or 1 means the sequential engine — the field
	// marshals away, so existing spec files, streams and baselines keep
	// their byte encoding. Sharded cells run without memoization (the
	// memoized evaluator is sequential-only); synchronous-daemon cells are
	// bit-identical across shard counts, other daemons switch to the
	// locally-central sharded family.
	Shards int `json:"shards,omitempty"`
	// Params carries the entry-specific scenario knobs shared by every cell.
	Params scenario.Params `json:"params,omitzero"`
	// MinTrials is the number of trials every cell always runs
	// (0 means DefaultMinTrials; a CI target raises it to at least 3).
	MinTrials int `json:"min_trials,omitempty"`
	// MaxTrials caps adaptive cells; it must be ≥ the effective MinTrials
	// when CITarget is set and is ignored otherwise.
	MaxTrials int `json:"max_trials,omitempty"`
	// CITarget, when positive, stops a cell as soon as at least MinTrials
	// trials ran and the relative 95% CI half-width of the primary metric is
	// ≤ CITarget (e.g. 0.05 = ±5% of the mean). 0 runs exactly MinTrials.
	// Cells that never record the metric (e.g. stab_* when no run reaches
	// legitimacy) cannot be assessed and run to MaxTrials.
	CITarget float64 `json:"ci_target,omitempty"`
	// Metric is the primary metric driving CITarget and the default Compare
	// axis; "" means moves.
	Metric string `json:"metric,omitempty"`
	// RecordTime adds wall-clock duration_ns to every trial record. It is
	// off by default because timings are non-deterministic: a resumed
	// campaign no longer reproduces an uninterrupted one byte-for-byte.
	RecordTime bool `json:"record_time,omitempty"`
	// ProfileSteps, when positive, attaches an engine phase profiler to
	// every trial, sampling every ProfileSteps-th step, and adds the
	// phase_* timing metrics to each trial record. Off by default for the
	// same reason as RecordTime: timings are non-deterministic, so profiled
	// streams are not byte-reproducible.
	ProfileSteps int `json:"profile_steps,omitempty"`
	// MemoOff disables the per-cell transition memoization (the zero value
	// keeps it on: each cell's first satisfiable trial fills a shared
	// read-only guard cache for the rest of the cell). Measurements are
	// bit-identical either way; the switch only removes the memo_hit_rate
	// metric from the records — which is why it is part of the spec, and a
	// stream cannot be resumed under the opposite setting.
	MemoOff bool `json:"memo_off,omitempty"`
}

// LoadSpec reads and validates a JSON campaign spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: read spec: %w", err)
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parse spec %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("campaign: spec %s: %w", path, err)
	}
	return s, nil
}

// Validate checks the trial policy and that every axis resolves to a
// scenario registry entry.
func (s Spec) Validate() error {
	if !specIDPattern.MatchString(s.ID) {
		return fmt.Errorf("campaign: invalid id %q (want %s)", s.ID, specIDPattern)
	}
	if s.Metric != "" && !validMetric(s.Metric) {
		return fmt.Errorf("campaign: unknown metric %q (known: %v)", s.Metric, Metrics())
	}
	if s.Metric == MetricDuration && !s.RecordTime {
		return fmt.Errorf("campaign: metric %q needs record_time", MetricDuration)
	}
	if strings.HasPrefix(s.Metric, MetricPhasePrefix) && s.ProfileSteps <= 0 {
		return fmt.Errorf("campaign: metric %q needs profile_steps", s.Metric)
	}
	if s.ProfileSteps < 0 {
		return fmt.Errorf("campaign: negative profile_steps")
	}
	if s.MinTrials < 0 || s.MaxTrials < 0 {
		return fmt.Errorf("campaign: negative trial counts")
	}
	if s.Shards < 0 {
		return fmt.Errorf("campaign: negative shards")
	}
	if s.CITarget < 0 {
		return fmt.Errorf("campaign: negative ci_target")
	}
	if s.CITarget > 0 {
		if s.MaxTrials == 0 {
			return fmt.Errorf("campaign: ci_target needs max_trials")
		}
		if min, _ := s.trialBounds(); s.MaxTrials < min {
			return fmt.Errorf("campaign: max_trials %d below the effective min_trials %d", s.MaxTrials, min)
		}
	}
	return s.sweep().Validate()
}

// sweep maps the Spec axes onto the scenario cross-product it covers.
func (s Spec) sweep() scenario.Sweep {
	return scenario.Sweep{
		Algorithms: s.Algorithms,
		Topologies: s.Topologies,
		Daemons:    s.Daemons,
		Faults:     s.Faults,
		Churns:     s.Churns,
		Sizes:      s.Sizes,
		Seed:       s.Seed,
		SeedStride: s.SeedStride,
		MaxSteps:   s.MaxSteps,
		Shards:     s.Shards,
		Params:     s.Params,
		Trials:     1, // trials are driven per cell by the campaign runner
	}
}

// PrimaryMetric returns the metric driving adaptive stopping and the default
// Compare axis.
func (s Spec) PrimaryMetric() string {
	if s.Metric == "" {
		return MetricMoves
	}
	return s.Metric
}

// trialBounds returns the effective [min, max] trial counts of every cell.
func (s Spec) trialBounds() (min, max int) {
	min = s.MinTrials
	if min <= 0 {
		min = DefaultMinTrials
	}
	if s.CITarget > 0 && min < adaptiveMinTrials {
		min = adaptiveMinTrials
	}
	max = s.MaxTrials
	if s.CITarget <= 0 || max < min {
		max = min
	}
	return min, max
}

func validMetric(name string) bool {
	for _, m := range Metrics() {
		if m == name {
			return true
		}
	}
	// The phase-timing metrics are open-ended (phase names come from the
	// engine), so they are validated by prefix; Validate additionally ties
	// them to ProfileSteps.
	return len(name) > len(MetricPhasePrefix) && strings.HasPrefix(name, MetricPhasePrefix)
}

// CellKey identifies one cell of a campaign: one point of the sweep
// cross-product.
type CellKey struct {
	Algorithm string `json:"algorithm"`
	Topology  string `json:"topology"`
	N         int    `json:"n"`
	Daemon    string `json:"daemon"`
	Fault     string `json:"fault"`
	// Churn is the churn schedule of the cell; it marshals away for static
	// cells, so streams and baselines from churn-free campaigns keep their
	// pre-churn byte encoding.
	Churn string `json:"churn,omitempty"`
}

func cellKey(c scenario.Cell) CellKey {
	return CellKey{Algorithm: c.Algorithm, Topology: c.Topology, N: c.N, Daemon: c.Daemon, Fault: c.Fault, Churn: c.Churn}
}

// String renders the key compactly ("unison/ring n=8 synchronous none").
func (k CellKey) String() string {
	s := fmt.Sprintf("%s/%s n=%d %s %s", k.Algorithm, k.Topology, k.N, k.Daemon, k.Fault)
	if k.Churn != "" {
		s += " " + k.Churn
	}
	return s
}

// TrialRecord is one line of a campaign's JSONL stream: the outcome of one
// seeded execution of one cell. Records are written in (cell, trial) order
// as trials complete; map keys marshal sorted, so the bytes of a record are
// a pure function of the trial's seed and the binary.
type TrialRecord struct {
	// Type is "trial"; the first line of a stream is a "campaign" header.
	Type string `json:"type"`
	CellKey
	// Trial is the repetition index within the cell; Seed is the derived
	// seed the trial ran under.
	Trial int   `json:"trial"`
	Seed  int64 `json:"seed"`
	// Skipped reports a cell unsatisfiable on its resolved topology for this
	// seed (e.g. an alliance requirement exceeding a node degree); skipped
	// trials carry no metrics and never count as violations.
	Skipped bool `json:"skipped,omitempty"`
	// OK is the correctness verdict of the algorithm's own output check.
	OK bool `json:"ok"`
	// Metrics holds the per-trial measurements by metric name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// CellAggregate is the aggregated outcome of one cell: the per-metric
// statistics over its recorded (non-skipped) trials.
type CellAggregate struct {
	Cell CellKey `json:"cell"`
	// Trials counts the recorded trials, including skipped ones.
	Trials int `json:"trials"`
	// Skipped reports a cell all of whose trials were unsatisfiable.
	Skipped bool `json:"skipped,omitempty"`
	// OK reports that every non-skipped trial passed its correctness check.
	OK bool `json:"ok"`
	// Metrics aggregates each recorded metric over the non-skipped trials.
	Metrics map[string]stats.Aggregate `json:"metrics,omitempty"`
}

// aggregateCell reduces a cell's trial records to their aggregate.
func aggregateCell(key CellKey, recs []TrialRecord) CellAggregate {
	agg := CellAggregate{Cell: key, Trials: len(recs), OK: true}
	samples := make(map[string][]float64)
	measured := 0
	for _, r := range recs {
		if r.Skipped {
			continue
		}
		measured++
		agg.OK = agg.OK && r.OK
		for name, v := range r.Metrics {
			samples[name] = append(samples[name], v)
		}
	}
	if measured == 0 {
		agg.Skipped = true
		return agg
	}
	agg.Metrics = make(map[string]stats.Aggregate, len(samples))
	for name, xs := range samples {
		agg.Metrics[name] = stats.AggregateSamples(xs)
	}
	return agg
}

// metricNames returns the aggregated metric names in render order: the
// canonical Metrics() order first, then any unknown names sorted.
func (a CellAggregate) metricNames() []string {
	var names []string
	for _, m := range Metrics() {
		if _, ok := a.Metrics[m]; ok {
			names = append(names, m)
		}
	}
	var extra []string
	for name := range a.Metrics {
		if !validMetric(name) {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}
