package server

import (
	"sync"

	"sdr/internal/campaign"
	"sdr/internal/obs"
)

// recordLog is the in-memory record stream of one job: a campaign.Sink that
// accumulates the exact bytes the offline JSONL file sink would write (via
// campaign.MarshalLine), readable concurrently while the job is still
// running. Readers follow the log line-by-line — GET /v1/jobs/{id}/records
// streams lines[from:] and then blocks on the change channel until more
// arrive or the log finishes, which is what makes the endpoint resumable:
// a client that saw k lines reconnects with ?from=k and misses nothing.
type recordLog struct {
	// records, when non-nil, counts every appended line into the manager's
	// shared sdrd_campaign_records_total counter (rate() over it is the
	// service's records/sec).
	records *obs.Counter

	mu     sync.Mutex
	lines  [][]byte
	closed bool
	// change is closed and replaced on every append and on finish, waking
	// all pending readers.
	change chan struct{}
}

func newRecordLog(records *obs.Counter) *recordLog {
	return &recordLog{records: records, change: make(chan struct{})}
}

// WriteLine implements campaign.Sink: the line is visible to readers as soon
// as WriteLine returns, the serving analogue of the file sink's per-line
// flush.
func (l *recordLog) WriteLine(v any) error {
	data, err := campaign.MarshalLine(v)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.lines = append(l.lines, data)
	l.broadcastLocked()
	l.mu.Unlock()
	if l.records != nil {
		l.records.Inc()
	}
	return nil
}

// finish marks the stream complete: no further lines will arrive.
func (l *recordLog) finish() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		l.broadcastLocked()
	}
	l.mu.Unlock()
}

func (l *recordLog) broadcastLocked() {
	close(l.change)
	l.change = make(chan struct{})
}

// len returns the number of lines written so far.
func (l *recordLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines)
}

// next returns the lines from index `from` on, whether the log is finished,
// and a channel that closes on the next change. The returned slices are
// append-only views and must not be mutated.
func (l *recordLog) next(from int) ([][]byte, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out [][]byte
	if from >= 0 && from < len(l.lines) {
		out = l.lines[from:len(l.lines):len(l.lines)]
	}
	return out, l.closed, l.change
}
