package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"sdr/internal/campaign"
	"sdr/internal/obs"
	"sdr/internal/scenario"
)

// A submitted job is a model plus an experiment frame: every request kind —
// a single scenario spec, a sweep grid, or a full campaign — normalizes into
// one campaign.Spec, so the service has exactly one execution path (the
// campaign stream core) and exactly one output format (the campaign JSONL
// stream). Seeds and churn schedules are part of the request, which is what
// makes the content hash of the normalized spec a sound dedup key: equal
// hashes mean equal streams, byte for byte.

// SpecRequest is the job-request form of a single scenario.Spec: one
// seeded execution of one algorithm × topology × daemon × fault point.
type SpecRequest struct {
	Algorithm string `json:"algorithm"`
	Topology  string `json:"topology"`
	N         int    `json:"n"`
	Daemon    string `json:"daemon"`
	Fault     string `json:"fault,omitempty"`
	Churn     string `json:"churn,omitempty"`
	Seed      int64  `json:"seed"`
	MaxSteps  int    `json:"max_steps,omitempty"`
	// Shards is the engine shard count of the run (see sim.WithShards);
	// omitted or 1 means the sequential engine, so existing requests keep
	// their byte encoding and dedup hashes.
	Shards int             `json:"shards,omitempty"`
	Params scenario.Params `json:"params,omitzero"`
}

// SweepRequest is the job-request form of a scenario.Sweep: a cross-product
// grid with a fixed number of seeded trials per cell.
type SweepRequest struct {
	Algorithms []string `json:"algorithms"`
	Topologies []string `json:"topologies"`
	Daemons    []string `json:"daemons"`
	Faults     []string `json:"faults,omitempty"`
	Churns     []string `json:"churns,omitempty"`
	Sizes      []int    `json:"sizes"`
	Trials     int      `json:"trials,omitempty"`
	Seed       int64    `json:"seed"`
	SeedStride int64    `json:"seed_stride,omitempty"`
	MaxSteps   int      `json:"max_steps,omitempty"`
	// Shards is the engine shard count shared by every cell; omitted or 1
	// means the sequential engine.
	Shards int             `json:"shards,omitempty"`
	Params scenario.Params `json:"params,omitzero"`
}

// JobRequest is the body of POST /v1/jobs: exactly one of Spec, Sweep or
// Campaign. Kind is optional and, when set, must name the populated field.
type JobRequest struct {
	Kind     string         `json:"kind,omitempty"`
	Spec     *SpecRequest   `json:"spec,omitempty"`
	Sweep    *SweepRequest  `json:"sweep,omitempty"`
	Campaign *campaign.Spec `json:"campaign,omitempty"`
}

// Normalize maps the request onto the one campaign.Spec the job executes
// and validates it against the scenario registries. Spec and sweep requests
// get a deterministic content-derived ID, so resubmitting the same request
// always lands on the same job spec (and therefore the same dedup hash).
func (r JobRequest) Normalize() (campaign.Spec, error) {
	set := 0
	kind := ""
	for _, c := range []struct {
		name string
		ok   bool
	}{{"spec", r.Spec != nil}, {"sweep", r.Sweep != nil}, {"campaign", r.Campaign != nil}} {
		if c.ok {
			set++
			kind = c.name
		}
	}
	if set != 1 {
		return campaign.Spec{}, fmt.Errorf("exactly one of spec, sweep or campaign must be set (got %d)", set)
	}
	if r.Kind != "" && r.Kind != kind {
		return campaign.Spec{}, fmt.Errorf("kind %q does not match the populated field %q", r.Kind, kind)
	}
	var cs campaign.Spec
	switch kind {
	case "spec":
		s := *r.Spec
		cs = campaign.Spec{
			Algorithms: []string{s.Algorithm},
			Topologies: []string{s.Topology},
			Sizes:      []int{s.N},
			Daemons:    []string{s.Daemon},
			Seed:       s.Seed,
			MaxSteps:   s.MaxSteps,
			Shards:     s.Shards,
			Params:     s.Params,
			MinTrials:  1,
		}
		if s.Fault != "" {
			cs.Faults = []string{s.Fault}
		}
		if s.Churn != "" {
			cs.Churns = []string{s.Churn}
		}
	case "sweep":
		s := *r.Sweep
		trials := s.Trials
		if trials <= 0 {
			trials = 1
		}
		cs = campaign.Spec{
			Algorithms: s.Algorithms,
			Topologies: s.Topologies,
			Daemons:    s.Daemons,
			Faults:     s.Faults,
			Churns:     s.Churns,
			Sizes:      s.Sizes,
			Seed:       s.Seed,
			SeedStride: s.SeedStride,
			MaxSteps:   s.MaxSteps,
			Shards:     s.Shards,
			Params:     s.Params,
			MinTrials:  trials,
		}
	case "campaign":
		cs = *r.Campaign
	}
	if kind != "campaign" {
		cs.ID = deriveID(cs)
	}
	if err := cs.Validate(); err != nil {
		return campaign.Spec{}, err
	}
	return cs, nil
}

// deriveID names a spec/sweep job from its content: the hash of the spec
// with a blank ID, so the name never feeds back into itself.
func deriveID(cs campaign.Spec) string {
	cs.ID = ""
	return "job-" + specHash(cs)[:12]
}

// specHash is the dedup cache key: the SHA-256 of the spec's canonical JSON
// encoding (the same encoding the stream header pins, so equal hashes mean
// byte-identical streams).
func specHash(cs campaign.Spec) string {
	data, err := json.Marshal(cs)
	if err != nil {
		// campaign.Spec is a plain data struct; marshalling cannot fail.
		panic(fmt.Sprintf("server: hash spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// JobState is the lifecycle state of a job.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: a worker is executing the campaign.
	StateRunning JobState = "running"
	// StateDone: completed; the record stream is final.
	StateDone JobState = "done"
	// StateFailed: aborted on an execution error.
	StateFailed JobState = "failed"
	// StateInterrupted: stopped at a record boundary by a cancel or a drain;
	// the recorded stream is a clean prefix of the full stream.
	StateInterrupted JobState = "interrupted"
)

// Job is one deduplicated unit of work: a normalized campaign spec plus its
// record stream.
type Job struct {
	// ID and Hash are immutable after construction.
	ID   string
	Hash string
	Spec campaign.Spec

	log *recordLog

	mu         sync.Mutex
	state      JobState
	err        string
	violations int
	dedupHits  int
	cancel     func()
	submitted  time.Time
	started    time.Time
	finished   time.Time
}

// JobStatus is the JSON rendering of a job's state (GET /v1/jobs/{id}).
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Records counts the stream lines written so far (header included), the
	// offset to pass as ?from= when resuming the record stream.
	Records int `json:"records"`
	// DedupHits counts submissions answered by this job beyond the first.
	DedupHits int `json:"dedup_hits"`
	// Violations counts cells that failed their correctness check (done
	// jobs only).
	Violations  int    `json:"violations,omitempty"`
	Error       string `json:"error,omitempty"`
	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

func newJob(id, hash string, spec campaign.Spec, now time.Time, records *obs.Counter) *Job {
	return &Job{ID: id, Hash: hash, Spec: spec, log: newRecordLog(records), state: StateQueued, submitted: now}
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		State:       j.state,
		Records:     j.log.len(),
		DedupHits:   j.dedupHits,
		Violations:  j.violations,
		Error:       j.err,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339)
	}
	return st
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel requests an abort at the next record boundary. It reports whether
// the job was still cancellable (queued or running).
func (j *Job) Cancel(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		// Mark interrupted in place: the worker skips jobs it cannot claim.
		j.state = StateInterrupted
		j.err = "cancelled before start"
		j.finished = now
		return true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true
	default:
		return false
	}
}

// claimRun transitions queued → running; false when the job was cancelled
// while it sat in the queue (the worker then skips it).
func (j *Job) claimRun(cancel func(), now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.started = now
	return true
}

// finishAs records the job's terminal state.
func (j *Job) finishAs(state JobState, errMsg string, violations int, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.err = errMsg
	j.violations = violations
	j.finished = now
	j.cancel = nil
}

// addDedupHit counts one submission answered by this job.
func (j *Job) addDedupHit() {
	j.mu.Lock()
	j.dedupHits++
	j.mu.Unlock()
}
