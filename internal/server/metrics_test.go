package server

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sdr/internal/campaign"
)

func scrapeMetrics(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	return string(data), resp.Header.Get("Content-Type")
}

// metricValue finds the value of the exposition line starting with the given
// series name (exact match up to the space), or fails.
func metricValue(t *testing.T, out, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s has unparseable value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, out)
	return 0
}

// TestMetricsEndpoint is the /metrics e2e test: run a job through the full
// HTTP path, trigger a cached dedup hit, and require the exposition to be
// well-formed Prometheus text carrying the job, queue, dedup, record and
// request-latency series — the same numbers /v1/stats reports.
func TestMetricsEndpoint(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Parallel: 1})

	resp, sr, _ := postJob(t, ts, specBody(t, 42))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	job, _ := m.Get(sr.ID)
	awaitState(t, job, StateDone)
	if resp, sr2, _ := postJob(t, ts, specBody(t, 42)); resp.StatusCode != http.StatusOK || !sr2.Deduped {
		t.Fatalf("resubmit: status %d deduped %v, want cached dedup hit", resp.StatusCode, sr2.Deduped)
	}

	out, ctype := scrapeMetrics(t, ts.URL)
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ctype)
	}

	// Structural validity: every non-comment, non-blank line is
	// `series value` with a parseable float value, and every series has a
	// preceding # TYPE header for its family.
	typed := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				typed[strings.Fields(rest)[0]] = true
			}
			continue
		}
		// Split at the last space: label values ("GET /v1/jobs") may
		// themselves contain spaces.
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name, value := line[:cut], line[cut+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("line %q: unparseable value: %v", line, err)
		}
		family := name
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		trimmed := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(family, "_bucket"), "_sum"), "_count")
		if !typed[family] && !typed[trimmed] {
			t.Fatalf("series %q has no # TYPE header", name)
		}
	}

	if got := metricValue(t, out, "sdrd_jobs_accepted_total"); got != 1 {
		t.Errorf("jobs_accepted = %v, want 1", got)
	}
	if got := metricValue(t, out, `sdrd_jobs_finished_total{state="done"}`); got != 1 {
		t.Errorf("jobs_finished{done} = %v, want 1", got)
	}
	if got := metricValue(t, out, `sdrd_dedup_hits_total{kind="cached"}`); got != 1 {
		t.Errorf("dedup cached = %v, want 1", got)
	}
	if got := metricValue(t, out, "sdrd_queue_depth"); got != 0 {
		t.Errorf("queue_depth = %v, want 0", got)
	}
	if got := metricValue(t, out, "sdrd_queue_capacity"); got != 4 {
		t.Errorf("queue_capacity = %v, want 4", got)
	}
	if got := metricValue(t, out, "sdrd_job_duration_ms_count"); got != 1 {
		t.Errorf("job_duration count = %v, want 1", got)
	}
	if got := metricValue(t, out, "sdrd_campaign_records_total"); got < 2 {
		t.Errorf("records_total = %v, want >= 2 (header + at least one record)", got)
	}
	if got := metricValue(t, out, `sdrd_http_request_duration_seconds_count{route="POST /v1/jobs"}`); got != 2 {
		t.Errorf("request histogram count for POST /v1/jobs = %v, want 2", got)
	}
	if got := metricValue(t, out, `sdrd_http_requests_total{route="POST /v1/jobs",code="202"}`); got != 1 {
		t.Errorf("requests{202} = %v, want 1", got)
	}
	if got := metricValue(t, out, `sdrd_http_requests_total{route="POST /v1/jobs",code="200"}`); got != 1 {
		t.Errorf("requests{200} = %v, want 1", got)
	}

	// One source of truth: /v1/stats must agree with the scrape.
	s := m.Stats()
	if float64(s.JobsDone) != metricValue(t, out, `sdrd_jobs_finished_total{state="done"}`) {
		t.Errorf("stats JobsDone %d disagrees with /metrics", s.JobsDone)
	}
	if float64(s.DedupHitsCached) != metricValue(t, out, `sdrd_dedup_hits_total{kind="cached"}`) {
		t.Errorf("stats DedupHitsCached %d disagrees with /metrics", s.DedupHitsCached)
	}
}

// TestLatencySummaryOutlivesOldRing feeds more finished jobs through
// finalize than the replaced 512-sample ring could hold: the histogram-backed
// summary must keep counting (no wraparound) and still produce ordered,
// in-range percentile estimates.
func TestLatencySummaryOutlivesOldRing(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 1})
	defer m.Drain()
	const n = 600 // > the old latencyWindow of 512
	for i := 1; i <= n; i++ {
		job := newJob(fmt.Sprintf("t%06d", i), fmt.Sprintf("hash%d", i), specForTest(t, int64(i)), time.Now(), nil)
		job.log.finish()
		m.finalize(job, StateDone, nil, time.Duration(i)*time.Millisecond)
	}
	s := m.Stats()
	if s.JobLatency.Count != n {
		t.Fatalf("latency count = %d, want %d (histogram must not wrap)", s.JobLatency.Count, n)
	}
	l := s.JobLatency
	if l.MeanMS <= 0 || l.P50MS <= 0 {
		t.Fatalf("degenerate summary: %+v", l)
	}
	if !(l.P50MS <= l.P95MS && l.P95MS <= l.P99MS) {
		t.Errorf("percentiles out of order: %+v", l)
	}
	// Durations were 1..600ms uniform; the bucketed median estimate must
	// land near 300ms (within the covering power-of-two bucket).
	if l.P50MS < 128 || l.P50MS > 512 {
		t.Errorf("p50 = %vms, want within (128, 512] for uniform 1..600ms", l.P50MS)
	}
}

// syncBuffer makes a bytes.Buffer safe for the concurrent writes of worker
// and request goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestStructuredLifecycleLogs(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	m, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Parallel: 1, Logger: logger})

	_, sr, _ := postJob(t, ts, specBody(t, 99))
	job, _ := m.Get(sr.ID)
	awaitState(t, job, StateDone)
	postJob(t, ts, specBody(t, 99)) // dedup hit
	m.Drain()

	out := buf.String()
	for _, want := range []string{
		"job accepted", "job started", "job finished", "job dedup hit",
		"job=" + job.ID, "hash=" + shortHash(job.Hash),
		"msg=request", "path=/v1/jobs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("logs missing %q:\n%s", want, out)
		}
	}
}

func specForTest(t *testing.T, seed int64) campaign.Spec {
	t.Helper()
	req := JobRequest{Spec: &SpecRequest{
		Algorithm: "unison", Topology: "ring", N: 6,
		Daemon: "distributed-random", Fault: "random-all", Seed: seed,
	}}
	spec, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}
