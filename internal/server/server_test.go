package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdr/internal/campaign"
	"sdr/internal/scenario"
)

// newTestServer starts a manager plus its HTTP front end and tears both down
// with the test.
func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m := NewManager(cfg)
	ts := httptest.NewServer(New(m))
	t.Cleanup(func() {
		m.Drain() // finishes every record log, releasing any followers
		ts.Close()
	})
	return m, ts
}

// blockWorkers installs the test hook that parks every claimed job until
// release is closed, reporting each claim on started.
func blockWorkers(m *Manager, started chan<- *Job, release <-chan struct{}) {
	m.mu.Lock()
	m.testJobStart = func(j *Job) {
		started <- j
		<-release
	}
	m.mu.Unlock()
}

func postJob(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, SubmitResponse, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var sr SubmitResponse
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatalf("parse submit response %s: %v", data, err)
		}
	}
	return resp, sr, data
}

func specBody(t *testing.T, seed int64) []byte {
	t.Helper()
	body, err := json.Marshal(JobRequest{Spec: &SpecRequest{
		Algorithm: "unison", Topology: "ring", N: 6,
		Daemon: "distributed-random", Fault: "random-all", Seed: seed,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func awaitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for j.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", j.ID, j.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRegistryEndpointMatchesDump(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := scenario.WriteRegistryJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("/v1/registry body diverged from scenario.WriteRegistryJSON:\ngot:\n%s\nwant:\n%s", got, want.Bytes())
	}
}

func TestVersionEndpointIsTheBaselineFingerprint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got campaign.Meta
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if want := campaign.Fingerprint(); got != want {
		t.Errorf("/v1/version = %+v, want the campaign fingerprint %+v", got, want)
	}
}

// TestRecordStreamByteIdentity is the acceptance check of the tentpole: for
// a fixed spec and seed, the served record stream must be byte-identical to
// the CAMPAIGN_<id>.jsonl file an offline sdrbench -campaign run writes.
func TestRecordStreamByteIdentity(t *testing.T) {
	spec := campaign.Spec{
		ID:         "svc-identity",
		Algorithms: []string{"unison"},
		Topologies: []string{"ring", "star"},
		Daemons:    []string{"distributed-random"},
		Sizes:      []int{6},
		Seed:       11,
		MinTrials:  3,
	}

	offline := filepath.Join(t.TempDir(), "CAMPAIGN_svc-identity.jsonl")
	if _, err := campaign.Run(spec, offline, campaign.Options{Parallel: 3}); err != nil {
		t.Fatalf("offline campaign run: %v", err)
	}
	want, err := os.ReadFile(offline)
	if err != nil {
		t.Fatal(err)
	}

	m, ts := newTestServer(t, Config{Workers: 1, Parallel: 2})
	body, err := json.Marshal(JobRequest{Campaign: &spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, sr, raw := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	job, ok := m.Get(sr.ID)
	if !ok {
		t.Fatalf("job %s not retained", sr.ID)
	}
	awaitState(t, job, StateDone)

	recResp, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID + "/records")
	if err != nil {
		t.Fatal(err)
	}
	defer recResp.Body.Close()
	got, err := io.ReadAll(recResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("served stream diverged from the offline campaign file:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Resuming from a line offset serves exactly the remaining lines.
	wantLines := bytes.SplitAfter(want, []byte("\n"))
	fromResp, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID + "/records?from=2")
	if err != nil {
		t.Fatal(err)
	}
	defer fromResp.Body.Close()
	gotFrom, err := io.ReadAll(fromResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	wantFrom := bytes.Join(wantLines[2:], nil)
	if !bytes.Equal(gotFrom, wantFrom) {
		t.Errorf("?from=2 stream diverged:\ngot:\n%s\nwant:\n%s", gotFrom, wantFrom)
	}
}

func TestDedupConcurrentAndCached(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	started := make(chan *Job, 4)
	release := make(chan struct{})
	blockWorkers(m, started, release)

	body := specBody(t, 1)
	resp1, sr1, raw := postJob(t, ts, body)
	if resp1.StatusCode != http.StatusAccepted || sr1.Deduped {
		t.Fatalf("first submit: %s deduped=%v: %s", resp1.Status, sr1.Deduped, raw)
	}
	job := <-started // the worker claimed it and is now parked

	// An identical submission while the job is in flight attaches to it.
	resp2, sr2, raw := postJob(t, ts, body)
	if resp2.StatusCode != http.StatusOK || !sr2.Deduped || sr2.ID != sr1.ID {
		t.Fatalf("in-flight duplicate: %s deduped=%v id=%s (want %s): %s",
			resp2.Status, sr2.Deduped, sr2.ID, sr1.ID, raw)
	}
	if s := m.Stats(); s.DedupHitsInFlight != 1 || s.JobsAccepted != 1 {
		t.Errorf("stats after in-flight duplicate: %+v", s)
	}

	close(release)
	awaitState(t, job, StateDone)

	// A duplicate of the completed job is served from the result cache.
	resp3, sr3, raw := postJob(t, ts, body)
	if resp3.StatusCode != http.StatusOK || !sr3.Deduped || sr3.ID != sr1.ID || sr3.State != StateDone {
		t.Fatalf("cached duplicate: %s deduped=%v id=%s state=%s: %s",
			resp3.Status, sr3.Deduped, sr3.ID, sr3.State, raw)
	}
	s := m.Stats()
	if s.DedupHits != 2 || s.DedupHitsCached != 1 || s.JobsDone != 1 || s.JobsAccepted != 1 {
		t.Errorf("final stats: %+v", s)
	}
	if st, _ := m.Get(sr1.ID); st.Status().DedupHits != 2 {
		t.Errorf("job dedup hit counter = %d, want 2", st.Status().DedupHits)
	}
}

func TestBackpressure429WhenQueueFull(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	started := make(chan *Job, 4)
	release := make(chan struct{})
	blockWorkers(m, started, release)

	respA, _, rawA := postJob(t, ts, specBody(t, 1))
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A: %s: %s", respA.Status, rawA)
	}
	jobA := <-started // A occupies the worker, the queue is empty again

	respB, _, rawB := postJob(t, ts, specBody(t, 2))
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B: %s: %s", respB.Status, rawB)
	}

	respC, _, rawC := postJob(t, ts, specBody(t, 3))
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit C with a full queue: %s (want 429): %s", respC.Status, rawC)
	}
	if respC.Header.Get("Retry-After") == "" {
		t.Error("429 response is missing Retry-After")
	}
	if !strings.Contains(string(rawC), "queue full") {
		t.Errorf("429 body should name the full queue: %s", rawC)
	}

	close(release)
	awaitState(t, jobA, StateDone)
}

// TestDrainStopsAtRecordBoundary submits a long campaign, waits until its
// stream is flowing, then drains: the job must end interrupted with a clean
// JSONL prefix, and further submissions must be refused with 503.
func TestDrainStopsAtRecordBoundary(t *testing.T) {
	spec := campaign.Spec{
		ID:         "svc-drain",
		Algorithms: []string{"unison"},
		Topologies: []string{"ring"},
		Daemons:    []string{"distributed-random"},
		Sizes:      []int{8},
		Seed:       5,
		MinTrials:  50_000,
	}
	m, ts := newTestServer(t, Config{Workers: 1, Parallel: 2})
	body, err := json.Marshal(JobRequest{Campaign: &spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, sr, raw := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	job, _ := m.Get(sr.ID)
	deadline := time.Now().Add(30 * time.Second)
	for job.log.len() < 5 {
		if time.Now().After(deadline) {
			t.Fatal("no records flowed before the deadline")
		}
		time.Sleep(time.Millisecond)
	}

	m.Drain()

	if st := job.State(); st != StateInterrupted {
		t.Fatalf("job state after drain = %q, want %q", st, StateInterrupted)
	}
	recResp, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID + "/records")
	if err != nil {
		t.Fatal(err)
	}
	defer recResp.Body.Close()
	stream, err := io.ReadAll(recResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(stream, []byte("\n")), []byte("\n"))
	if len(lines) < 5 || len(lines) >= 50_001 {
		t.Fatalf("drained stream has %d lines, want a proper prefix ≥ 5", len(lines))
	}
	for i, ln := range lines {
		if !json.Valid(ln) {
			t.Fatalf("line %d of the drained stream is not valid JSON: %s", i, ln)
		}
	}
	var header struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(lines[0], &header); err != nil || header.Type != "campaign" {
		t.Errorf("first line should be the campaign header, got %s", lines[0])
	}

	respPost, _, rawPost := postJob(t, ts, specBody(t, 9))
	if respPost.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %s (want 503): %s", respPost.Status, rawPost)
	}
	s := m.Stats()
	if !s.Draining || s.JobsInterrupted != 1 {
		t.Errorf("stats after drain: %+v", s)
	}
}

func TestCancelAndNotFound(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	started := make(chan *Job, 4)
	release := make(chan struct{})
	blockWorkers(m, started, release)

	for _, method := range []string{http.MethodGet, http.MethodDelete} {
		req, _ := http.NewRequest(method, ts.URL+"/v1/jobs/nope", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s unknown job: %s (want 404)", method, resp.Status)
		}
	}

	respA, srA, _ := postJob(t, ts, specBody(t, 1))
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A: %s", respA.Status)
	}
	jobA := <-started
	respB, srB, _ := postJob(t, ts, specBody(t, 2))
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B: %s", respB.Status)
	}

	// B is still queued; cancelling it must settle it without running.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+srB.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued B: %s", resp.Status)
	}
	jobB, _ := m.Get(srB.ID)
	if jobB.State() != StateInterrupted {
		t.Errorf("cancelled queued job state = %q, want interrupted", jobB.State())
	}

	close(release)
	awaitState(t, jobA, StateDone)
	awaitState(t, jobB, StateInterrupted)

	// Cancelling a finished job is a conflict.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+srA.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel finished job: %s (want 409)", resp.Status)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"invalid json", "{"},
		{"no kind populated", "{}"},
		{"two kinds populated", `{"spec":{"algorithm":"unison","topology":"ring","n":6,"daemon":"synchronous","seed":1},"campaign":{"id":"x","algorithms":["unison"],"topologies":["ring"],"daemons":["synchronous"],"sizes":[6],"seed":1}}`},
		{"kind mismatch", `{"kind":"sweep","spec":{"algorithm":"unison","topology":"ring","n":6,"daemon":"synchronous","seed":1}}`},
		{"unknown algorithm", `{"spec":{"algorithm":"no-such-algo","topology":"ring","n":6,"daemon":"synchronous","seed":1}}`},
		{"unknown field", `{"spec":{"algorithm":"unison","topology":"ring","n":6,"daemon":"synchronous","seed":1},"bogus":true}`},
	}
	for _, tc := range cases {
		resp, _, raw := postJob(t, ts, []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %s (want 400): %s", tc.name, resp.Status, raw)
		}
	}
}

// TestResultCacheEviction pins the memory bound: once the LRU overflows, the
// oldest finished job disappears entirely — status, stream and dedup entry.
func TestResultCacheEviction(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, ResultCache: 1})

	resp1, sr1, _ := postJob(t, ts, specBody(t, 1))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: %s", resp1.Status)
	}
	job1, _ := m.Get(sr1.ID)
	awaitState(t, job1, StateDone)

	resp2, sr2, _ := postJob(t, ts, specBody(t, 2))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: %s", resp2.Status)
	}
	job2, _ := m.Get(sr2.ID)
	awaitState(t, job2, StateDone)

	if _, ok := m.Get(sr1.ID); ok {
		t.Error("job 1 should have been evicted from the result cache")
	}
	statusResp, err := http.Get(ts.URL + "/v1/jobs/" + sr1.ID)
	if err != nil {
		t.Fatal(err)
	}
	statusResp.Body.Close()
	if statusResp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job status: %s (want 404)", statusResp.Status)
	}

	// An evicted job no longer dedups: resubmitting runs it fresh.
	resp3, sr3, _ := postJob(t, ts, specBody(t, 1))
	if resp3.StatusCode != http.StatusAccepted || sr3.Deduped {
		t.Errorf("resubmit of evicted spec: %s deduped=%v (want a fresh 202)", resp3.Status, sr3.Deduped)
	}
	if s := m.Stats(); s.CachedJobs != 1 {
		t.Errorf("cached jobs = %d, want 1", s.CachedJobs)
	}
}

// TestStatsLatencyAndMemoRates checks that finished jobs feed the latency
// percentiles and the memoization hit-rate average surfaced by /v1/stats.
func TestStatsLatencyAndMemoRates(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	resp, sr, _ := postJob(t, ts, specBody(t, 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	job, _ := m.Get(sr.ID)
	awaitState(t, job, StateDone)

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var s Stats
	if err := json.NewDecoder(statsResp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.JobLatency.Count != 1 || s.JobLatency.MeanMS <= 0 {
		t.Errorf("job latency not recorded: %+v", s.JobLatency)
	}
	if s.MemoHitRateMean <= 0 {
		t.Errorf("memo hit rate mean = %v, want > 0 (memoization is on by default)", s.MemoHitRateMean)
	}
}

// TestDeriveIDIsStable pins the content-derived job naming: equal requests
// in different kinds map to distinct specs, equal requests to equal IDs.
func TestDeriveIDIsStable(t *testing.T) {
	req := JobRequest{Spec: &SpecRequest{Algorithm: "unison", Topology: "ring", N: 6, Daemon: "synchronous", Seed: 3}}
	a, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID || specHash(a) != specHash(b) {
		t.Errorf("normalization is not stable: %q/%q", a.ID, b.ID)
	}
	other := JobRequest{Spec: &SpecRequest{Algorithm: "unison", Topology: "ring", N: 6, Daemon: "synchronous", Seed: 4}}
	c, err := other.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if specHash(a) == specHash(c) {
		t.Error("different seeds must hash differently")
	}
	if !strings.HasPrefix(a.ID, "job-") {
		t.Errorf("derived id %q should carry the job- prefix", a.ID)
	}
}

// TestRecordsFollowLiveStream verifies a follower connected before the job
// finishes still receives the complete stream.
func TestRecordsFollowLiveStream(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	started := make(chan *Job, 1)
	release := make(chan struct{})
	blockWorkers(m, started, release)

	resp, sr, _ := postJob(t, ts, specBody(t, 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	job := <-started

	type streamResult struct {
		data []byte
		err  error
	}
	results := make(chan streamResult, 1)
	go func() {
		r, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID + "/records")
		if err != nil {
			results <- streamResult{nil, err}
			return
		}
		defer r.Body.Close()
		data, err := io.ReadAll(r.Body)
		results <- streamResult{data, err}
	}()

	time.Sleep(10 * time.Millisecond) // let the follower attach before any output
	close(release)
	awaitState(t, job, StateDone)

	res := <-results
	if res.err != nil {
		t.Fatalf("follow stream: %v", res.err)
	}
	lines := bytes.Split(bytes.TrimSuffix(res.data, []byte("\n")), []byte("\n"))
	if want := job.log.len(); len(lines) != want {
		t.Errorf("follower saw %d lines, log holds %d", len(lines), want)
	}
	for i, ln := range lines {
		if !json.Valid(ln) {
			t.Fatalf("followed line %d is not valid JSON: %s", i, ln)
		}
	}
}
