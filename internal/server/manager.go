package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sdr/internal/campaign"
	"sdr/internal/stats"
)

// Config sizes the job manager.
type Config struct {
	// Workers is the number of jobs executed concurrently; each job fans its
	// own trials out over Parallel workers of the bench pool.
	Workers int
	// QueueDepth bounds the number of accepted-but-not-started jobs; a full
	// queue is backpressure (Submit returns ErrQueueFull → HTTP 429).
	QueueDepth int
	// Parallel is the per-job trial parallelism (campaign.Options.Parallel);
	// 0 means one per CPU. Streams are identical for every value.
	Parallel int
	// ResultCache bounds the number of finished jobs whose record streams
	// (and statuses) are retained, LRU-evicted; completed jobs serve
	// duplicate submissions from this cache.
	ResultCache int
	// MemoCap bounds each cell's transition-memo table (0 = sim default).
	MemoCap int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.NumCPU()
	}
	if c.ResultCache <= 0 {
		c.ResultCache = 64
	}
	return c
}

// latencyWindow is the number of recent job run durations the latency
// percentiles are computed over.
const latencyWindow = 512

// ErrQueueFull reports a submission rejected because the job queue is at
// capacity — the backpressure signal (HTTP 429 + Retry-After).
var ErrQueueFull = errors.New("server: job queue full")

// ErrDraining reports a submission rejected because the manager is shutting
// down (HTTP 503).
var ErrDraining = errors.New("server: draining, not accepting jobs")

// Manager owns the job lifecycle: a bounded queue feeding a bounded worker
// pool, content-hash dedup of identical (spec, seed) submissions —
// concurrent duplicates attach to the in-flight job, completed ones are
// served from a bounded LRU of result streams — and graceful drain that
// stops every in-flight campaign at a record boundary.
type Manager struct {
	cfg      Config
	queue    chan *Job
	drainCtx context.Context
	drainAll context.CancelFunc
	wg       sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job          // every retained job by id
	byHash   map[string]*Job          // dedup index: in-flight + completed-done jobs
	lru      *list.List               // finished jobs, most recently used first
	lruIndex map[string]*list.Element // job id → lru element
	draining bool
	seq      int

	submitted, done, failed, interrupted int
	running                              int
	dedupInFlight, dedupCached           int
	memoRateSum                          float64
	memoRateN                            int
	latencies                            []float64 // run durations (ms), ring of latencyWindow
	latNext                              int

	// testJobStart, when set, is called by a worker right after claiming a
	// job and before executing it — the deterministic gate the lifecycle
	// tests block workers on.
	testJobStart func(*Job)
}

// NewManager starts the worker pool.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:      cfg,
		queue:    make(chan *Job, cfg.QueueDepth),
		drainCtx: ctx,
		drainAll: cancel,
		jobs:     make(map[string]*Job),
		byHash:   make(map[string]*Job),
		lru:      list.New(),
		lruIndex: make(map[string]*list.Element),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit normalizes and validates the request, then either attaches it to
// an existing job with the same content hash (dedup — the request performs
// no work) or enqueues a new job. It reports the job and whether it was
// newly created. Errors: validation errors, ErrQueueFull, ErrDraining.
func (m *Manager) Submit(req JobRequest) (*Job, bool, error) {
	spec, err := req.Normalize()
	if err != nil {
		return nil, false, err
	}
	hash := specHash(spec)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, false, ErrDraining
	}
	if j := m.byHash[hash]; j != nil {
		j.addDedupHit()
		if el, ok := m.lruIndex[j.ID]; ok {
			m.lru.MoveToFront(el)
			m.dedupCached++
		} else {
			m.dedupInFlight++
		}
		return j, false, nil
	}
	m.seq++
	job := newJob(fmt.Sprintf("j%06d", m.seq), hash, spec, time.Now())
	select {
	case m.queue <- job:
	default:
		return nil, false, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.byHash[hash] = job
	m.submitted++
	return job, true, nil
}

// Get returns the job with the given id, if it is still retained.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel aborts the job at its next record boundary. It reports whether the
// job existed and was still cancellable.
func (m *Manager) Cancel(id string) (bool, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false, false
	}
	return true, j.Cancel(time.Now())
}

// Drain stops accepting submissions, cancels every in-flight campaign (they
// stop at their next record boundary — the same checkpoint semantics the
// CLI's SIGINT handling uses), waits for the workers to exit, and marks
// still-queued jobs interrupted. Safe to call more than once.
func (m *Manager) Drain() {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	m.drainAll()
	m.wg.Wait()
	if already {
		return
	}
	for {
		select {
		case job := <-m.queue:
			job.Cancel(time.Now())
			job.log.finish()
			m.finalize(job, StateInterrupted, nil, 0)
		default:
			return
		}
	}
}

// worker executes queued jobs until drain.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case job := <-m.queue:
			m.process(job)
		case <-m.drainCtx.Done():
			return
		}
	}
}

// process runs one job through the campaign stream core, its cancellation
// context parented on the drain context so both a per-job DELETE and a
// server drain stop it at a record boundary.
func (m *Manager) process(job *Job) {
	jctx, cancel := context.WithCancel(m.drainCtx)
	defer cancel()
	if !job.claimRun(cancel, time.Now()) {
		// Cancelled while queued: never started, nothing recorded.
		job.log.finish()
		m.finalize(job, StateInterrupted, nil, 0)
		return
	}
	m.mu.Lock()
	m.running++
	hook := m.testJobStart
	m.mu.Unlock()
	if hook != nil {
		hook(job)
	}
	start := time.Now()
	res, err := campaign.RunSink(job.Spec, job.log, campaign.Options{
		Parallel: m.cfg.Parallel,
		MemoCap:  m.cfg.MemoCap,
		Context:  jctx,
	})
	elapsed := time.Since(start)
	job.log.finish()
	switch {
	case errors.Is(err, campaign.ErrInterrupted):
		job.finishAs(StateInterrupted, err.Error(), 0, time.Now())
		m.finalize(job, StateInterrupted, nil, elapsed)
	case err != nil:
		job.finishAs(StateFailed, err.Error(), 0, time.Now())
		m.finalize(job, StateFailed, nil, elapsed)
	default:
		violations := 0
		for _, c := range res.Cells {
			if !c.Skipped && !c.OK {
				violations++
			}
		}
		job.finishAs(StateDone, "", violations, time.Now())
		m.finalize(job, StateDone, res, elapsed)
	}
}

// finalize moves a finished job into the bounded result cache and updates
// the counters. Only done jobs stay in the dedup index: an interrupted or
// failed job's stream is not the full answer, so an identical resubmission
// runs fresh.
func (m *Manager) finalize(job *Job, state JobState, res *campaign.Result, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch state {
	case StateDone:
		m.done++
	case StateFailed:
		m.failed++
		delete(m.byHash, job.Hash)
	case StateInterrupted:
		m.interrupted++
		delete(m.byHash, job.Hash)
	}
	if elapsed > 0 {
		m.running--
		ms := float64(elapsed.Nanoseconds()) / 1e6
		if len(m.latencies) < latencyWindow {
			m.latencies = append(m.latencies, ms)
		} else {
			m.latencies[m.latNext] = ms
			m.latNext = (m.latNext + 1) % latencyWindow
		}
	}
	if res != nil {
		for _, c := range res.Cells {
			if agg, ok := c.Metrics[campaign.MetricMemoHitRate]; ok {
				m.memoRateSum += agg.Mean
				m.memoRateN++
			}
		}
	}
	m.lruIndex[job.ID] = m.lru.PushFront(job)
	for m.lru.Len() > m.cfg.ResultCache {
		el := m.lru.Back()
		old := m.lru.Remove(el).(*Job)
		delete(m.lruIndex, old.ID)
		delete(m.jobs, old.ID)
		if cur := m.byHash[old.Hash]; cur == old {
			delete(m.byHash, old.Hash)
		}
	}
}

// LatencySummary are percentiles over the recent job run durations.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Stats is the GET /v1/stats snapshot.
type Stats struct {
	Workers       int  `json:"workers"`
	Draining      bool `json:"draining,omitempty"`
	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"`
	// JobsAccepted counts newly created jobs (deduplicated submissions do
	// not create jobs and are counted under the dedup fields).
	JobsAccepted    int `json:"jobs_accepted"`
	JobsRunning     int `json:"jobs_running"`
	JobsDone        int `json:"jobs_done"`
	JobsFailed      int `json:"jobs_failed"`
	JobsInterrupted int `json:"jobs_interrupted"`
	// DedupHits = DedupHitsInFlight (attached to a queued/running job) +
	// DedupHitsCached (served from the completed-job LRU).
	DedupHits         int `json:"dedup_hits"`
	DedupHitsInFlight int `json:"dedup_hits_in_flight"`
	DedupHitsCached   int `json:"dedup_hits_cached"`
	CachedJobs        int `json:"cached_jobs"`
	// MemoHitRateMean averages the memo_hit_rate metric over every completed
	// cell that recorded it (see internal/sim memoization).
	MemoHitRateMean float64 `json:"memo_hit_rate_mean"`
	// JobLatency summarises run durations of recently finished jobs.
	JobLatency LatencySummary `json:"job_latency"`
}

// Stats snapshots the manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Workers:           m.cfg.Workers,
		Draining:          m.draining,
		QueueDepth:        len(m.queue),
		QueueCapacity:     m.cfg.QueueDepth,
		JobsAccepted:      m.submitted,
		JobsRunning:       m.running,
		JobsDone:          m.done,
		JobsFailed:        m.failed,
		JobsInterrupted:   m.interrupted,
		DedupHits:         m.dedupInFlight + m.dedupCached,
		DedupHitsInFlight: m.dedupInFlight,
		DedupHitsCached:   m.dedupCached,
		CachedJobs:        m.lru.Len(),
	}
	if m.memoRateN > 0 {
		s.MemoHitRateMean = m.memoRateSum / float64(m.memoRateN)
	}
	if len(m.latencies) > 0 {
		agg := stats.AggregateSamples(m.latencies)
		s.JobLatency = LatencySummary{Count: agg.Count, MeanMS: agg.Mean, P50MS: agg.P50, P95MS: agg.P95, P99MS: agg.P99}
	}
	return s
}
